package themis

import (
	"testing"

	"themis/internal/experiments"
)

// TestExperimentOptions sanity-checks the two experiment scales the
// repository ships (benchmarks use Quick, cmd/expdriver defaults to
// Default).
func TestExperimentOptions(t *testing.T) {
	for name, opts := range map[string]experiments.Options{
		"default": experiments.Default(),
		"quick":   experiments.Quick(),
	} {
		if err := opts.Validate(); err != nil {
			t.Errorf("%s options invalid: %v", name, err)
		}
	}
}

// TestFigure2Smoke runs the cheapest figure end-to-end from the root package
// so `go test` exercises the experiment harness even without -bench.
func TestFigure2Smoke(t *testing.T) {
	rows := experiments.Figure2()
	if len(rows) != 5 {
		t.Fatalf("Figure 2 produced %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Slowdown <= 0 || r.Slowdown > 1 {
			t.Errorf("%s slowdown %v outside (0,1]", r.Model, r.Slowdown)
		}
	}
}
