package themis

import (
	"fmt"
)

// Option configures a Simulation. Options are applied in order by
// NewSimulation; later options override earlier ones, and any error they
// report aborts construction.
type Option func(*settings) error

// settings is the resolved configuration a Simulation is built from.
type settings struct {
	topology    *Topology
	clusterName string

	// Exactly one workload source must be set.
	apps           []*App
	spec           *WorkloadSpec
	trace          *Trace
	tracePath      string
	scenarioName   string
	scenarioParams ScenarioParams

	policyName   string
	policy       SchedulerPolicy
	policyCfg    PolicyConfig
	policyCfgSet bool // a policy-level knob option was used

	packerName string // "" = policies place their own grants

	leaseDuration   float64
	restartOverhead float64
	horizon         float64
	seed            int64
	failures        []Failure
}

// defaultSettings mirrors the paper's configuration (§8.1/§8.2): the 50-GPU
// testbed topology, the Themis policy with f = 0.8, 20-minute leases and the
// measured checkpoint/restart overhead.
func defaultSettings() *settings {
	return &settings{
		clusterName:     ClusterTestbed,
		policyName:      "themis",
		policyCfg:       DefaultPolicyConfig(),
		leaseDuration:   20,
		restartOverhead: 0.75,
		seed:            1,
	}
}

// WithCluster selects a registered topology by name: "testbed" (50 GPUs, the
// default), "sim" (256 GPUs), "sim-fabric" (the same 256 GPUs across three
// fabric domains), or anything added via RegisterCluster.
func WithCluster(name string) Option {
	return func(s *settings) error {
		if _, err := Cluster(name); err != nil {
			return err
		}
		s.clusterName = name
		s.topology = nil
		return nil
	}
}

// WithTopology supplies a custom cluster topology (see ClusterConfig.Build).
func WithTopology(topo *Topology) Option {
	return func(s *settings) error {
		if topo == nil {
			return fmt.Errorf("themis: WithTopology(nil)")
		}
		s.topology = topo
		return nil
	}
}

// WithApps runs the simulation over explicitly constructed apps (see NewApp
// and NewJob). The apps' runtime state is mutated by the run; rebuild or
// regenerate them to reuse across runs.
func WithApps(apps ...*App) Option {
	return func(s *settings) error {
		if len(apps) == 0 {
			return fmt.Errorf("themis: WithApps needs at least one app")
		}
		s.apps = apps
		s.spec, s.trace, s.tracePath, s.scenarioName = nil, nil, "", ""
		return nil
	}
}

// WithWorkload generates a synthetic workload from the spec at construction
// time (zero-valued fields default as in GenerateWorkload). The simulation
// seed (WithSeed) applies when the spec's own Seed is zero.
func WithWorkload(spec WorkloadSpec) Option {
	return func(s *settings) error {
		s.spec = &spec
		s.apps, s.trace, s.tracePath, s.scenarioName = nil, nil, "", ""
		return nil
	}
}

// WithScenario generates the workload from a registered scenario (see
// Scenarios and RegisterScenario) at construction time. The optional params
// override the scenario's app count and load knobs; a zero params.Seed
// inherits the simulation seed (WithSeed), so seeded sweeps replay
// identically across scenarios.
func WithScenario(name string, params ...ScenarioParams) Option {
	return func(s *settings) error {
		if name == "" {
			return fmt.Errorf("themis: WithScenario needs a name")
		}
		if len(params) > 1 {
			return fmt.Errorf("themis: WithScenario takes at most one params, got %d", len(params))
		}
		if _, err := DescribeScenario(name); err != nil {
			return err
		}
		s.scenarioName = name
		s.scenarioParams = ScenarioParams{}
		if len(params) == 1 {
			s.scenarioParams = params[0]
		}
		s.apps, s.spec, s.trace, s.tracePath = nil, nil, nil, ""
		return nil
	}
}

// WithTrace replays a previously captured trace.
func WithTrace(tr Trace) Option {
	return func(s *settings) error {
		s.trace = &tr
		s.apps, s.spec, s.tracePath, s.scenarioName = nil, nil, "", ""
		return nil
	}
}

// WithTraceFile replays a trace loaded from a file at construction time.
func WithTraceFile(path string) Option {
	return func(s *settings) error {
		if path == "" {
			return fmt.Errorf("themis: WithTraceFile needs a path")
		}
		s.tracePath = path
		s.apps, s.spec, s.trace, s.scenarioName = nil, nil, nil, ""
		return nil
	}
}

// WithPolicy selects a registered scheduling policy by name (see Policies).
// The policy is constructed at NewSimulation time from the accumulated
// PolicyConfig (fairness knob, lease duration, bid error).
func WithPolicy(name string) Option {
	return func(s *settings) error {
		if name == "" {
			return fmt.Errorf("themis: WithPolicy needs a name")
		}
		s.policyName = name
		s.policy = nil
		return nil
	}
}

// WithPolicyInstance supplies a pre-built policy, bypassing the registry.
// The instance must be fresh (policies accumulate per-run agent state) and
// carry its own knobs: combining it with WithFairnessKnob or WithBidError is
// an error, since those only configure registry-built policies.
func WithPolicyInstance(p SchedulerPolicy) Option {
	return func(s *settings) error {
		if p == nil {
			return fmt.Errorf("themis: WithPolicyInstance(nil)")
		}
		s.policy = p
		return nil
	}
}

// WithFairnessKnob sets Themis's f ∈ [0,1] (§5; the paper settles on 0.8,
// and f = 0 offers GPUs to every app as in the Figure 4a sweep).
func WithFairnessKnob(f float64) Option {
	return func(s *settings) error {
		if f < 0 || f > 1 {
			return fmt.Errorf("themis: fairness knob %v outside [0,1]", f)
		}
		s.policyCfg.FairnessKnob = f
		s.policyCfgSet = true
		return nil
	}
}

// WithLeaseDuration sets the GPU lease length in minutes (paper default 20).
func WithLeaseDuration(minutes float64) Option {
	return func(s *settings) error {
		if minutes <= 0 {
			return fmt.Errorf("themis: lease duration %v must be positive", minutes)
		}
		s.leaseDuration = minutes
		return nil
	}
}

// WithRestartOverhead sets the wall-clock pause (minutes) an app suffers
// when its allocation changes, modelling checkpoint and container churn.
func WithRestartOverhead(minutes float64) Option {
	return func(s *settings) error {
		if minutes < 0 {
			return fmt.Errorf("themis: restart overhead %v must be non-negative", minutes)
		}
		s.restartOverhead = minutes
		return nil
	}
}

// WithHorizon caps simulated time in minutes; 0 (the default) runs until the
// workload completes.
func WithHorizon(minutes float64) Option {
	return func(s *settings) error {
		if minutes < 0 {
			return fmt.Errorf("themis: horizon %v must be non-negative", minutes)
		}
		s.horizon = minutes
		return nil
	}
}

// WithBidError perturbs Themis agents' ρ estimates by ±θ (Figure 11's error
// model); θ = 0 disables perturbation.
func WithBidError(theta float64) Option {
	return func(s *settings) error {
		if theta < 0 || theta >= 1 {
			return fmt.Errorf("themis: bid error theta %v outside [0,1)", theta)
		}
		s.policyCfg.BidErrorTheta = theta
		if theta != 0 {
			s.policyCfgSet = true
		}
		return nil
	}
}

// WithSeed seeds workload generation and the bid-error model.
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithFailures injects machine failures into the run.
func WithFailures(failures ...Failure) Option {
	return func(s *settings) error {
		s.failures = failures
		return nil
	}
}
