package themis

// Cross-encoding replay identity: a trace saved as JSON and as the v3 binary
// container must be interchangeable all the way through the facade — same
// ToApps output, same Report, byte for byte. This is the top-level guard for
// the binary encoding (internal/trace pins the wire format itself) and for
// the simulator's pooled hot loop (a pooling bug that perturbed event order
// would diverge the serialized reports).

import (
	"context"
	"path/filepath"
	"testing"
)

// binaryReplayTrace captures the golden workload as a trace.
func binaryReplayTrace(t *testing.T) Trace {
	t.Helper()
	spec := DefaultWorkloadSpec()
	spec.Seed = 11
	spec.NumApps = 10
	spec.JobsPerAppMedian = 3
	spec.MaxJobsPerApp = 6
	spec.MeanInterArrival = 8
	spec.DurationScale = 0.2
	apps, err := GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	return NewTrace("binary-replay", apps)
}

func replayReport(t *testing.T, tracePath string) string {
	t.Helper()
	sim, err := NewSimulation(
		WithCluster(ClusterTestbed),
		WithTraceFile(tracePath),
		WithPolicy("themis"),
		WithSeed(11),
		WithHorizon(20000),
	)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return serializeReport(report)
}

func TestBinaryTraceReplayMatchesJSON(t *testing.T) {
	tr := binaryReplayTrace(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "trace.json")
	binPath := filepath.Join(dir, "trace.bin")
	if err := SaveTrace(jsonPath, tr); err != nil {
		t.Fatal(err)
	}
	if err := SaveTraceBinary(binPath, tr); err != nil {
		t.Fatal(err)
	}

	// Wire-level metadata distinguishes the encodings; the traces do not.
	jt, jinfo, err := LoadTraceWithInfo(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	bt, binfo, err := LoadTraceWithInfo(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if jinfo.Encoding != TraceFormatJSON || jinfo.WireVersion != TraceFormatVersion {
		t.Errorf("json info = %+v, want encoding %s version %d", jinfo, TraceFormatJSON, TraceFormatVersion)
	}
	if binfo.Encoding != TraceFormatBinary || binfo.WireVersion != 3 {
		t.Errorf("binary info = %+v, want encoding %s version 3", binfo, TraceFormatBinary)
	}

	jApps, err := jt.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	bApps, err := bt.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(jApps) != len(bApps) {
		t.Fatalf("app counts differ: json %d, binary %d", len(jApps), len(bApps))
	}

	jsonReport := replayReport(t, jsonPath)
	binReport := replayReport(t, binPath)
	if jsonReport != binReport {
		t.Errorf("replay reports diverge between JSON and binary encodings\n%s",
			diffSnippet(jsonReport, binReport))
	}
}
