package core

import (
	"math"
	"testing"

	"themis/internal/cluster"
	"themis/internal/hyperparam"
	"themis/internal/placement"
	"themis/internal/workload"
)

func agentFor(topo *cluster.Topology, app *workload.App) *Agent {
	return NewAgent(topo, app, hyperparam.ForApp(app), nil)
}

func TestBidTableValidateAndAccessors(t *testing.T) {
	offer := cluster.Alloc{0: 4}
	good := BidTable{App: "a", Entries: []BidEntry{
		{Alloc: cluster.NewAlloc(), Rho: 8},
		{Alloc: cluster.Alloc{0: 4}, Rho: 2},
	}}
	if err := good.Validate(offer); err != nil {
		t.Errorf("valid bid rejected: %v", err)
	}
	if got := good.CurrentRho(); got != 8 {
		t.Errorf("CurrentRho = %v, want 8", got)
	}
	if got := good.Best(); got.Rho != 2 {
		t.Errorf("Best rho = %v, want 2", got.Rho)
	}
	noEmpty := BidTable{App: "a", Entries: []BidEntry{{Alloc: cluster.Alloc{0: 1}, Rho: 2}}}
	if err := noEmpty.Validate(offer); err == nil {
		t.Error("bid without empty row should fail validation")
	}
	tooBig := BidTable{App: "a", Entries: []BidEntry{
		{Alloc: cluster.NewAlloc(), Rho: 8},
		{Alloc: cluster.Alloc{0: 9}, Rho: 2},
	}}
	if err := tooBig.Validate(offer); err == nil {
		t.Error("bid exceeding offer should fail validation")
	}
	badRho := BidTable{App: "a", Entries: []BidEntry{{Alloc: cluster.NewAlloc(), Rho: 0}}}
	if err := badRho.Validate(offer); err == nil {
		t.Error("non-positive rho should fail validation")
	}
	if got := (BidTable{App: "x"}).CurrentRho(); got != Unbounded {
		t.Errorf("CurrentRho of empty table = %v, want Unbounded", got)
	}
}

func TestBidEntryValueHomogeneity(t *testing.T) {
	// V = 1/ρ: halving ρ doubles the value.
	a := BidEntry{Rho: 4}
	b := BidEntry{Rho: 2}
	if math.Abs(b.Value()/a.Value()-2) > 1e-9 {
		t.Errorf("value not inversely proportional to rho")
	}
	if (BidEntry{Rho: 0}).Value() <= 0 {
		t.Error("zero rho must still map to a positive value")
	}
}

func TestAgentPrepareBid(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	app := testApp("a", 0, placement.VGG16, 2, 200, 4)
	ag := agentFor(topo, app)
	offer := cluster.Alloc{0: 4, 1: 4, 2: 2}
	bid := ag.PrepareBid(0, offer, cluster.NewAlloc())
	if err := bid.Validate(offer); err != nil {
		t.Fatalf("prepared bid invalid: %v", err)
	}
	if len(bid.Entries) < 2 {
		t.Fatalf("bid should contain candidate allocations, got %d entries", len(bid.Entries))
	}
	if len(bid.Entries) > DefaultMaxBidRows {
		t.Errorf("bid has %d rows, cap is %d", len(bid.Entries), DefaultMaxBidRows)
	}
	// The empty row carries the (unbounded) current rho; all non-empty rows
	// must improve on it.
	cur := bid.CurrentRho()
	for _, e := range bid.Entries {
		if e.Alloc.Total() > 0 && e.Rho > cur {
			t.Errorf("allocation row %v has worse rho %v than current %v", e.Alloc, e.Rho, cur)
		}
	}
	// More GPUs should never hurt: the best row should use several GPUs.
	if bid.Best().Alloc.Total() < 4 {
		t.Errorf("best bid row uses only %d GPUs", bid.Best().Alloc.Total())
	}
}

func TestAgentUnmetParallelism(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	app := testApp("a", 0, placement.ResNet50, 2, 100, 4)
	ag := agentFor(topo, app)
	if got := ag.UnmetParallelism(cluster.NewAlloc()); got != 8 {
		t.Errorf("UnmetParallelism = %d, want 8", got)
	}
	if got := ag.UnmetParallelism(cluster.Alloc{0: 3}); got != 5 {
		t.Errorf("UnmetParallelism = %d, want 5", got)
	}
	if got := ag.UnmetParallelism(cluster.Alloc{0: 4, 1: 4}); got != 0 {
		t.Errorf("UnmetParallelism = %d, want 0", got)
	}
}

func TestAgentSplitForJobs(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	app := testApp("a", 0, placement.VGG16, 3, 100, 4)
	ag := agentFor(topo, app)
	split := ag.SplitForJobs(cluster.Alloc{0: 4, 1: 4})
	total := cluster.NewAlloc()
	for _, alloc := range split {
		total = total.Add(alloc)
	}
	if total.Total() != 8 {
		t.Errorf("split total = %d, want 8", total.Total())
	}
	for id, alloc := range split {
		if alloc.Total() > 4 {
			t.Errorf("job %s got %d GPUs, above its parallelism limit", id, alloc.Total())
		}
	}
}

func TestCandidateSizes(t *testing.T) {
	sizes := candidateSizes(16, 12, 4)
	if len(sizes) == 0 {
		t.Fatal("no candidate sizes")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not strictly increasing: %v", sizes)
		}
	}
	if sizes[len(sizes)-1] != 12 {
		t.Errorf("largest candidate %d, want the unmet parallelism 12", sizes[len(sizes)-1])
	}
	if candidateSizes(0, 5, 4) != nil || candidateSizes(5, 0, 4) != nil {
		t.Error("no sizes should be produced when offer or need is zero")
	}
	one := candidateSizes(100, 3, 0)
	if one[len(one)-1] != 3 {
		t.Errorf("gang 0 should default to 1, got %v", one)
	}
}

func TestPartialAllocationBasics(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	offer := cluster.Alloc{0: 4, 1: 4}
	// App a is far from fair (huge current rho), app b is close to fair.
	bids := []BidTable{
		{App: "a", Entries: []BidEntry{
			{Alloc: cluster.NewAlloc(), Rho: 20},
			{Alloc: cluster.Alloc{0: 4}, Rho: 4},
			{Alloc: cluster.Alloc{0: 4, 1: 4}, Rho: 2.5},
		}},
		{App: "b", Entries: []BidEntry{
			{Alloc: cluster.NewAlloc(), Rho: 2},
			{Alloc: cluster.Alloc{1: 4}, Rho: 1.6},
		}},
	}
	res, err := RunPartialAllocation(topo, offer, bids, AuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// All winners' allocations plus the leftover must exactly cover the offer.
	covered := res.Leftover.Clone()
	for _, w := range res.Winners {
		covered = covered.Add(w)
	}
	if !covered.Equal(offer) {
		t.Errorf("winners+leftover %v != offer %v", covered, offer)
	}
	// The far-from-fair app must win GPUs.
	if res.Winners["a"].Total() == 0 {
		t.Error("far-from-fair app won nothing")
	}
	// Hidden payments are fractions in [0,1].
	for id, ci := range res.HiddenPayment {
		if ci < 0 || ci > 1 {
			t.Errorf("hidden payment for %s = %v outside [0,1]", id, ci)
		}
	}
	// Winners never exceed their proportional-fair share.
	for id, w := range res.Winners {
		if w.Total() > res.ProportionalFair[id].Total() {
			t.Errorf("app %s final %d exceeds pf %d", id, w.Total(), res.ProportionalFair[id].Total())
		}
	}
}

func TestPartialAllocationEmptyInputs(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	res, err := RunPartialAllocation(topo, cluster.NewAlloc(), nil, AuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) != 0 || res.Leftover.Total() != 0 {
		t.Errorf("empty auction should produce nothing: %+v", res)
	}
	res, err = RunPartialAllocation(topo, cluster.Alloc{0: 2}, nil, AuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leftover.Total() != 2 {
		t.Errorf("auction with no bids should leave everything over")
	}
}

func TestPartialAllocationRejectsInvalidBid(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	bids := []BidTable{{App: "a", Entries: []BidEntry{{Alloc: cluster.Alloc{0: 9}, Rho: 1}}}}
	if _, err := RunPartialAllocation(topo, cluster.Alloc{0: 4}, bids, AuctionOptions{}); err == nil {
		t.Error("invalid bid should be rejected")
	}
}

// TestTruthTellingIncentive verifies the mechanism's central property: an
// app that exaggerates how much it would improve (over-reports its valuation
// for GPU subsets) does not end up better off in true-valuation terms,
// because the hidden payment grows with the distortion it imposes on others.
func TestTruthTellingIncentive(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	offer := cluster.Alloc{0: 4, 1: 4}
	truthB := BidTable{App: "b", Entries: []BidEntry{
		{Alloc: cluster.NewAlloc(), Rho: 6},
		{Alloc: cluster.Alloc{0: 4}, Rho: 3},
		{Alloc: cluster.Alloc{1: 4}, Rho: 3.2},
		{Alloc: cluster.Alloc{0: 4, 1: 4}, Rho: 2.4},
	}}
	other := BidTable{App: "a", Entries: []BidEntry{
		{Alloc: cluster.NewAlloc(), Rho: 7},
		{Alloc: cluster.Alloc{0: 4}, Rho: 2.8},
		{Alloc: cluster.Alloc{0: 4, 1: 4}, Rho: 1.9},
	}}
	trueRho := func(alloc cluster.Alloc) float64 {
		best := truthB.CurrentRho()
		for _, e := range truthB.Entries {
			if e.Alloc.Total() <= alloc.Total() && e.Rho < best {
				best = e.Rho
			}
		}
		return best
	}

	honest, err := RunPartialAllocation(topo, offer, []BidTable{other, truthB}, AuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Lying: b claims implausibly good improvements (rho 100× lower).
	liarB := BidTable{App: "b"}
	for _, e := range truthB.Entries {
		r := e.Rho
		if e.Alloc.Total() > 0 {
			r = e.Rho / 100
		}
		liarB.Entries = append(liarB.Entries, BidEntry{Alloc: e.Alloc, Rho: r})
	}
	lying, err := RunPartialAllocation(topo, offer, []BidTable{other, liarB}, AuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	honestUtility := trueRho(honest.Winners["b"])
	lyingUtility := trueRho(lying.Winners["b"])
	// Allow a tiny tolerance for the discretisation of c_i into whole GPUs.
	if lyingUtility < honestUtility*0.95 {
		t.Errorf("lying improved b's true outcome: honest ρ=%v lying ρ=%v (hidden payments honest=%v lying=%v)",
			honestUtility, lyingUtility, honest.HiddenPayment["b"], lying.HiddenPayment["b"])
	}
	// The liar must pay a larger hidden payment (keep a smaller fraction).
	if lying.HiddenPayment["b"] > honest.HiddenPayment["b"]+1e-9 {
		t.Errorf("lying reduced b's hidden payment: %v vs %v", lying.HiddenPayment["b"], honest.HiddenPayment["b"])
	}
}

// TestParetoEfficiencyOfProportionalFair: no app's valuation can be improved
// without hurting another's in the proportional-fair assignment. We verify a
// necessary condition: no GPU bundle that an app values strictly more is
// left entirely unused by the pf assignment.
func TestParetoEfficiencyOfProportionalFair(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	offer := cluster.Alloc{0: 4, 1: 4, 2: 2}
	bids := []BidTable{
		{App: "a", Entries: []BidEntry{
			{Alloc: cluster.NewAlloc(), Rho: 9},
			{Alloc: cluster.Alloc{0: 4}, Rho: 3},
			{Alloc: cluster.Alloc{0: 4, 1: 4}, Rho: 2},
		}},
		{App: "b", Entries: []BidEntry{
			{Alloc: cluster.NewAlloc(), Rho: 5},
			{Alloc: cluster.Alloc{1: 4}, Rho: 2.5},
			{Alloc: cluster.Alloc{2: 2}, Rho: 4},
		}},
	}
	res, err := RunPartialAllocation(topo, offer, bids, AuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pfUsed := cluster.NewAlloc()
	for _, pf := range res.ProportionalFair {
		pfUsed = pfUsed.Add(pf)
	}
	free, _ := offer.Sub(pfUsed)
	for _, b := range bids {
		cur := res.ProportionalFair[b.App]
		curRho := Unbounded
		for _, e := range b.Entries {
			if e.Alloc.Equal(cur) {
				curRho = e.Rho
			}
		}
		for _, e := range b.Entries {
			if e.Rho >= curRho {
				continue
			}
			// A strictly better bundle must not fit entirely in the unused pool.
			extra, err := e.Alloc.Sub(cur)
			if err != nil {
				continue // not a superset of the current allocation
			}
			if fitsWithin(extra, free) {
				t.Errorf("app %s could take %v from unused GPUs and improve from ρ=%v to ρ=%v", b.App, extra, curRho, e.Rho)
			}
		}
	}
}

func fitsWithin(a, pool cluster.Alloc) bool {
	for m, n := range a {
		if n > pool[m] {
			return false
		}
	}
	return true
}

func TestAllocateLeftovers(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	leftover := cluster.Alloc{0: 2, 3: 1}
	currents := map[workload.AppID]cluster.Alloc{
		"a": {0: 2}, // machine-local extension possible
		"b": {1: 4}, // no leftover on its machines
	}
	wants := map[workload.AppID]int{"a": 4, "b": 1}
	chunks := map[workload.AppID]int{"a": 2, "b": 1}
	grants := AllocateLeftovers(topo, leftover, currents, wants, chunks)
	total := cluster.NewAlloc()
	for _, g := range grants {
		total = total.Add(g)
	}
	if total.Total() != 3 {
		t.Errorf("leftovers not fully allocated: %v", grants)
	}
	// App a should receive the GPUs on machine 0 (extends its allocation).
	if grants["a"][0] == 0 {
		t.Errorf("app a should extend its machine-0 allocation, got %v", grants["a"])
	}
	// Nobody exceeds its want.
	for id, g := range grants {
		if g.Total() > wants[id] {
			t.Errorf("app %s granted %d above its want %d", id, g.Total(), wants[id])
		}
	}
	// With no candidates, nothing is granted.
	if got := AllocateLeftovers(topo, leftover, nil, nil, nil); len(got) != 0 {
		t.Errorf("grants with no candidates: %v", got)
	}
	// Wants of zero leave GPUs unallocated.
	none := AllocateLeftovers(topo, leftover, currents, map[workload.AppID]int{"a": 0, "b": 0}, chunks)
	if len(none) != 0 {
		t.Errorf("grants despite zero wants: %v", none)
	}
}

func TestLeaseTable(t *testing.T) {
	lt := NewLeaseTable()
	lt.Grant("a", cluster.Alloc{0: 2}, 0, 20)
	lt.Grant("a", cluster.Alloc{1: 2}, 5, 20)
	lt.Grant("b", cluster.Alloc{2: 4}, 10, 20)
	lt.Grant("c", cluster.NewAlloc(), 0, 20) // ignored
	if lt.Len() != 3 {
		t.Fatalf("Len = %d, want 3", lt.Len())
	}
	if got := lt.HeldBy("a").Total(); got != 4 {
		t.Errorf("HeldBy(a) = %d, want 4", got)
	}
	next, ok := lt.NextExpiry()
	if !ok || next != 20 {
		t.Errorf("NextExpiry = %v,%v want 20,true", next, ok)
	}
	exp := lt.Expired(21)
	if len(exp) != 1 || exp[0].App != "a" {
		t.Errorf("Expired(21) = %v", exp)
	}
	if lt.Len() != 2 {
		t.Errorf("Len after expiry = %d, want 2", lt.Len())
	}
	rel := lt.ReleaseApp("b")
	if len(rel) != 1 || rel[0].Alloc.Total() != 4 {
		t.Errorf("ReleaseApp(b) = %v", rel)
	}
	out := lt.Outstanding()
	if len(out) != 1 || out[0].App != "a" {
		t.Errorf("Outstanding = %v", out)
	}
	if _, ok := NewLeaseTable().NextExpiry(); ok {
		t.Error("empty table should have no next expiry")
	}
}
