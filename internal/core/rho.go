// Package core implements Themis's scheduling contribution: the finish-time
// fairness metric ρ, Agents that estimate it and bid with it, and the
// Arbiter that runs semi-optimistic partial-allocation auctions to assign
// leased GPUs so that the maximum ρ across apps is minimised over the long
// term while placement-efficient allocations are favoured in the short term
// (§3–§5 of the paper).
package core

import (
	"math"

	"themis/internal/cluster"
	"themis/internal/estimator"
	"themis/internal/hyperparam"
	"themis/internal/placement"
	"themis/internal/workload"
)

// Unbounded is the ρ value reported by an app that currently holds no GPUs:
// with no allocation its shared finish time is unbounded (§5.1, "any non-zero
// GPU allocation to that app will lead to a huge improvement"). Using a large
// finite value keeps the max/min arithmetic well behaved.
const Unbounded = 1e12

// RhoEstimator computes finish-time fairness estimates for a single app — the
// Agent-side procedure of §5.2: given the app's current and hypothetical GPU
// allocations it estimates the shared running time T_SH, the ideal
// (dedicated-cluster) running time T_ID and their ratio ρ.
type RhoEstimator struct {
	Topo  *cluster.Topology
	App   *workload.App
	Tuner hyperparam.Tuner
	// Errors optionally perturbs estimates, modelling mis-profiled work or
	// placement sensitivity (Figure 11). Nil disables perturbation.
	Errors *estimator.ErrorModel

	// Estimator scratch, recycled across calls: the split output/ordering
	// slices, the "remaining" map, the per-job pick maps, the aggregate
	// total of Rho's current+extra, and the active-jobs buffer. Everything
	// an estimate touches is either caller-owned input (read only) or one
	// of these buffers, so a steady-state ρ probe allocates nothing;
	// SplitForJobs clones the per-job maps before handing them out. An
	// estimator is per-app, per-goroutine state, so plain fields suffice.
	splitOut    []cluster.Alloc
	splitOrder  []int
	splitFree   cluster.Alloc
	splitMaps   []cluster.Alloc
	emptyAnchor cluster.Alloc
	total       cluster.Alloc
	jobs        []*workload.Job
	picker      placement.Picker
}

// activeJobs returns the app's active jobs in an estimator-owned buffer,
// valid until the next call.
func (e *RhoEstimator) activeJobs() []*workload.Job {
	e.jobs = e.App.AppendActiveJobs(e.jobs[:0])
	return e.jobs
}

// NewRhoEstimator returns an estimator for app using the given tuner for
// work-left estimates.
func NewRhoEstimator(topo *cluster.Topology, app *workload.App, tuner hyperparam.Tuner) *RhoEstimator {
	return &RhoEstimator{Topo: topo, App: app, Tuner: tuner}
}

// TIdeal returns the app's estimated running time with its ideal GPU
// allocation in a dedicated cluster: min over constituent jobs of
// W_j / G_ideal_j with perfect placement (§5.2 step 5). Completed or killed
// jobs are excluded; if nothing is active the last known value (or a small
// epsilon) is returned so ρ stays defined while the app drains.
func (e *RhoEstimator) TIdeal() float64 {
	best := math.Inf(1)
	for _, j := range e.App.Jobs {
		g := j.MaxParallelism
		if g <= 0 {
			g = j.GangSize
		}
		if g <= 0 {
			continue
		}
		t := j.TotalWork / float64(g)
		if t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) || best <= 0 {
		return 1e-6
	}
	return best
}

// TShared estimates the app's total shared running time if, from time now
// onward, it holds the aggregate allocation total until completion (§5.2
// step 4): elapsed time so far plus the time for the quickest constituent
// job to finish given a greedy placement-sensitive split of total across
// jobs. It returns Unbounded when total is empty and work remains.
func (e *RhoEstimator) TShared(now float64, total cluster.Alloc) float64 {
	elapsed := now - e.App.SubmitTime
	if elapsed < 0 {
		elapsed = 0
	}
	active := e.activeJobs()
	if len(active) == 0 {
		return elapsed
	}
	if total.Total() == 0 {
		// With no GPUs the shared finish time is unbounded. Scaling by the
		// time already waited keeps starving apps ordered by how long they
		// have been starved, so ties among GPU-less apps resolve in favour
		// of the one waiting longest.
		return Unbounded * (1 + elapsed)
	}
	split := e.splitAcrossJobs(total, active)
	best := math.Inf(1)
	for idx, j := range active {
		alloc := split[idx]
		g := alloc.Total()
		// A job whose allocation violates its placement constraint — the §6
		// floor/cap or a trace v2 domain/flavor affinity — has S = 0: it
		// contributes no finish time, so a bid built on such an allocation
		// values out at an unbounded ρ.
		c, ok := j.PlacementConstraint(e.Topo)
		if g == 0 || !ok || !placement.Satisfies(e.Topo, alloc, c) {
			continue
		}
		s := e.App.Profile.SOf(e.Topo, alloc)
		left := e.Tuner.WorkLeft(j)
		t := elapsed + left/(float64(g)*s)
		if t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) {
		return Unbounded
	}
	return best
}

// Rho estimates the finish-time fairness metric ρ = T_SH / T_ID the app
// would achieve if extra were added to current and held until completion
// (§5.2 steps 1–7). Perturbation, if configured, is applied to the result.
func (e *RhoEstimator) Rho(now float64, current, extra cluster.Alloc) float64 {
	tsh := e.TShared(now, e.totalInto(current, extra))
	tid := e.TIdeal()
	return e.Errors.Perturb(tsh / tid)
}

// totalInto computes current.Add(extra) into the estimator's reused total
// buffer; the result is read-only and valid until the next Rho call.
func (e *RhoEstimator) totalInto(current, extra cluster.Alloc) cluster.Alloc {
	if e.total == nil {
		e.total = cluster.NewAlloc()
	}
	t := e.total
	clear(t)
	for m, n := range current {
		if n != 0 {
			t[m] = n
		}
	}
	for m, n := range extra {
		if n == 0 {
			continue
		}
		t[m] += n
		if t[m] == 0 {
			delete(t, m)
		}
	}
	return t
}

// CurrentRho estimates ρ with the app's present allocation only — the value
// the Arbiter probes before each auction (step 1 in Figure 3).
func (e *RhoEstimator) CurrentRho(now float64, current cluster.Alloc) float64 {
	if e.emptyAnchor == nil {
		e.emptyAnchor = cluster.NewAlloc()
	}
	return e.Rho(now, current, e.emptyAnchor)
}

// FinalRho returns the realised finish-time fairness of a finished app:
// actual shared running time over ideal running time. For unfinished apps it
// returns the estimate at time now.
func (e *RhoEstimator) FinalRho(now float64, current cluster.Alloc) float64 {
	if e.App.Finished() {
		return (e.App.FinishedAt - e.App.SubmitTime) / e.TIdeal()
	}
	return e.CurrentRho(now, current)
}

// splitAcrossJobs divides the app-level allocation among active jobs in a
// placement-sensitive greedy manner, honouring each job's MaxParallelism
// (§5.2 step 4). Jobs with the least work left are assigned first so the
// fastest-finishing job (which determines T_SH) is placed best.
func (e *RhoEstimator) splitAcrossJobs(total cluster.Alloc, active []*workload.Job) []cluster.Alloc {
	out := e.splitOut[:0]
	order := e.splitOrder[:0]
	for i := range active {
		out = append(out, nil)
		order = append(order, i)
	}
	e.splitOut, e.splitOrder = out, order
	// Assign jobs closest to completion first.
	for i := 0; i < len(order); i++ {
		for k := i + 1; k < len(order); k++ {
			if e.Tuner.WorkLeft(active[order[k]]) < e.Tuner.WorkLeft(active[order[i]]) {
				order[i], order[k] = order[k], order[i]
			}
		}
	}
	if e.splitFree == nil {
		e.splitFree = cluster.NewAlloc()
	}
	if e.emptyAnchor == nil {
		e.emptyAnchor = cluster.NewAlloc()
	}
	remaining := e.splitFree
	clear(remaining)
	for m, n := range total {
		if n != 0 {
			remaining[m] = n
		}
	}
	for len(e.splitMaps) < len(active) {
		e.splitMaps = append(e.splitMaps, cluster.NewAlloc())
	}
	for _, idx := range order {
		j := active[idx]
		want := j.MaxParallelism
		if want <= 0 {
			want = j.GangSize
		}
		picked := e.picker.PickInto(e.splitMaps[idx], e.Topo, remaining, e.emptyAnchor, want)
		if c, ok := j.PlacementConstraint(e.Topo); ok && !c.IsZero() && !placement.Satisfies(e.Topo, picked, c) {
			// The unconstrained pick would strand these GPUs on an unrunnable
			// shape; re-pick constraint-aware so the bid values what the
			// simulator's job split would actually run.
			picked = placement.PickConstrained(e.Topo, remaining, e.emptyAnchor, want, c)
		}
		out[idx] = picked
		for m, n := range picked {
			if remaining[m] < n {
				panic("core: splitAcrossJobs internal inconsistency: picked exceeds remaining")
			}
			remaining[m] -= n
			if remaining[m] == 0 {
				delete(remaining, m)
			}
		}
	}
	return out
}
