package core

import (
	"fmt"
	"math/rand"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/workload"
)

// randomBids builds a random but well-formed set of bid tables over an offer.
func randomBids(rng *rand.Rand, offer cluster.Alloc, nApps int) []BidTable {
	machines := offer.Machines()
	bids := make([]BidTable, 0, nApps)
	for i := 0; i < nApps; i++ {
		current := 5 + rng.Float64()*20
		table := BidTable{App: workload.AppID(fmt.Sprintf("app-%02d", i))}
		table.Entries = append(table.Entries, BidEntry{Alloc: cluster.NewAlloc(), Rho: current})
		for k := 0; k < 1+rng.Intn(5); k++ {
			alloc := cluster.NewAlloc()
			for _, m := range machines {
				if rng.Float64() < 0.5 {
					if n := rng.Intn(offer[m] + 1); n > 0 {
						alloc[m] = n
					}
				}
			}
			if alloc.Total() == 0 {
				continue
			}
			// Valuations improve (ρ falls) with more GPUs, keeping bids
			// shaped like real agent bids.
			rho := current / (1 + float64(alloc.Total())*(0.2+rng.Float64()))
			table.Entries = append(table.Entries, BidEntry{Alloc: alloc, Rho: rho})
		}
		bids = append(bids, table)
	}
	return bids
}

// TestAuctionInvariantsOnRandomBids checks, across many random auctions,
// the mechanism's structural invariants: winners plus leftover exactly cover
// the offer, hidden payments stay in [0,1], and no winner exceeds its
// proportional-fair share.
func TestAuctionInvariantsOnRandomBids(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	topo := testTopo(t, 8, 4, 4)
	for trial := 0; trial < 60; trial++ {
		offer := cluster.NewAlloc()
		for m := 0; m < 8; m++ {
			if n := rng.Intn(5); n > 0 {
				offer[cluster.MachineID(m)] = n
			}
		}
		if offer.Total() == 0 {
			continue
		}
		bids := randomBids(rng, offer, 1+rng.Intn(6))
		res, err := RunPartialAllocation(topo, offer, bids, AuctionOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		covered := res.Leftover.Clone()
		for _, w := range res.Winners {
			covered = covered.Add(w)
		}
		if !covered.Equal(offer) {
			t.Fatalf("trial %d: winners+leftover %v != offer %v", trial, covered, offer)
		}
		for id, ci := range res.HiddenPayment {
			if ci < 0 || ci > 1+1e-9 {
				t.Fatalf("trial %d: hidden payment for %s = %v", trial, id, ci)
			}
		}
		for id, w := range res.Winners {
			if w.Total() > res.ProportionalFair[id].Total() {
				t.Fatalf("trial %d: %s final %d exceeds pf share %d", trial, id, w.Total(), res.ProportionalFair[id].Total())
			}
			for m, n := range w {
				if n > offer[m] {
					t.Fatalf("trial %d: %s allocated %d on machine %d, offer had %d", trial, id, n, m, offer[m])
				}
			}
		}
	}
}

// TestHiddenPaymentProperties checks two facets of the hidden payments:
// bidders that impose no externality on each other (disjoint demands) pay
// nothing, and even on adversarially overlapping random bids the payments
// never swallow the whole proportional-fair allocation (whatever is
// forfeited returns to the pool as leftovers and is re-granted work
// conservingly).
func TestHiddenPaymentProperties(t *testing.T) {
	topo := testTopo(t, 8, 4, 4)

	// Disjoint demands: each app wants a different machine, so removing one
	// bidder does not change what the others can get — c_i must be 1 and no
	// GPUs are forfeited.
	offer := cluster.Alloc{0: 4, 1: 4, 2: 4}
	disjoint := []BidTable{
		{App: "a", Entries: []BidEntry{{Alloc: cluster.NewAlloc(), Rho: 10}, {Alloc: cluster.Alloc{0: 4}, Rho: 2}}},
		{App: "b", Entries: []BidEntry{{Alloc: cluster.NewAlloc(), Rho: 10}, {Alloc: cluster.Alloc{1: 4}, Rho: 2}}},
		{App: "c", Entries: []BidEntry{{Alloc: cluster.NewAlloc(), Rho: 10}, {Alloc: cluster.Alloc{2: 4}, Rho: 2}}},
	}
	res, err := RunPartialAllocation(topo, offer, disjoint, AuctionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for id, ci := range res.HiddenPayment {
		if ci < 0.999 {
			t.Errorf("non-competing bidder %s pays a hidden payment: c=%v", id, ci)
		}
		if res.Winners[id].Total() != 4 {
			t.Errorf("non-competing bidder %s kept %d GPUs, want 4", id, res.Winners[id].Total())
		}
	}

	// Overlapping random bids: payments are extracted but never everything.
	rng := rand.New(rand.NewSource(7))
	full := cluster.NewAlloc()
	for m := 0; m < 8; m++ {
		full[cluster.MachineID(m)] = 4
	}
	pfTotal, keptTotal := 0, 0
	for trial := 0; trial < 40; trial++ {
		bids := randomBids(rng, full, 2+rng.Intn(5))
		res, err := RunPartialAllocation(topo, full, bids, AuctionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for id, pf := range res.ProportionalFair {
			pfTotal += pf.Total()
			keptTotal += res.Winners[id].Total()
		}
	}
	if pfTotal == 0 {
		t.Fatal("no GPUs were proportionally allocated across trials")
	}
	lossFrac := float64(pfTotal-keptTotal) / float64(pfTotal)
	if lossFrac > 0.8 {
		t.Errorf("hidden payments forfeit %.2f of the proportional-fair allocation even on adversarial bids", lossFrac)
	}
	if lossFrac == 0 {
		t.Error("adversarially overlapping bids should extract some payment")
	}
}

// TestArbiterEndToEndWithConstrainedApp: an app whose jobs demand 4
// co-located GPUs must never be granted a spread allocation it cannot use by
// the auction path (the leftover path may still hand it GPUs it will decline
// to run on, but auction wins follow its own bids, which are constraint
// aware).
func TestArbiterEndToEndWithConstrainedApp(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	app := testApp("constrained", 0, placement.VGG16, 1, 200, 4)
	app.Jobs[0].MinGPUsPerMachine = 4
	agent := agentFor(topo, app)

	// Offer only fragmented capacity: 2 GPUs on each of four machines. No
	// subset satisfies the constraint, so no bid row may claim an
	// improvement over the app's current (GPU-less, unbounded) ρ.
	offer := cluster.Alloc{0: 2, 1: 2, 2: 2, 3: 2}
	bid := agent.PrepareBid(0, offer, cluster.NewAlloc())
	current := bid.CurrentRho()
	for _, e := range bid.Entries {
		if e.Alloc.Total() == 0 {
			continue
		}
		if !placement.SatisfiesMinPerMachine(e.Alloc, 4) && e.Rho < current*0.999 {
			t.Errorf("constraint-violating bid row %v claims improvement: rho %v vs current %v", e.Alloc, e.Rho, current)
		}
	}
}

// TestRhoEstimateConsistentWithSimulatedOutcome: for a lone app on a
// dedicated cluster, the Agent's ρ estimate at submission matches the
// realised ρ (≈1) — the property that makes long-term fairness enforcement
// meaningful.
func TestRhoEstimateConsistentWithSimulatedOutcome(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	app := testApp("solo", 0, placement.ResNet50, 1, 240, 4)
	est := NewRhoEstimator(topo, app, fixedTuner{})
	full := cluster.Alloc{0: 4}
	predicted := est.Rho(0, cluster.NewAlloc(), full)
	if predicted < 0.95 || predicted > 1.05 {
		t.Errorf("predicted rho on a dedicated cluster = %v, want ≈1", predicted)
	}
	// Simulate the run by hand: 240 serial minutes on 4 perfect GPUs.
	app.Jobs[0].Advance(0, 60, 4, 1)
	app.FinishedAt = app.Jobs[0].DoneAt
	realized := est.FinalRho(app.FinishedAt, full)
	if realized < 0.95 || realized > 1.05 {
		t.Errorf("realized rho = %v, want ≈1", realized)
	}
}

// fixedTuner is a trivial tuner for estimator tests.
type fixedTuner struct{}

func (fixedTuner) Name() string                     { return "fixed" }
func (fixedTuner) Update(float64, *workload.App)    {}
func (fixedTuner) WorkLeft(j *workload.Job) float64 { return j.RemainingWork() }
func (fixedTuner) Done(a *workload.App) bool        { return len(a.ActiveJobs()) == 0 }
