package core

import (
	"math"
	"testing"

	"themis/internal/cluster"
	"themis/internal/estimator"
	"themis/internal/hyperparam"
	"themis/internal/placement"
	"themis/internal/workload"
)

// testTopo builds a homogeneous test topology.
func testTopo(t *testing.T, machines, gpus, perRack int) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: machines, GPUs: gpus, SlotSize: 2}},
		MachinesPerRack: perRack,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// testApp builds an app with nJobs identical trials of the given serial work
// and gang size.
func testApp(id workload.AppID, submit float64, profile placement.Profile, nJobs int, work float64, gang int) *workload.App {
	jobs := make([]*workload.Job, nJobs)
	for i := 0; i < nJobs; i++ {
		j := workload.NewJob(id, i, work, gang)
		j.Quality = float64(i+1) / float64(nJobs+1)
		j.Seed = int64(i + 1)
		jobs[i] = j
	}
	return workload.NewApp(id, submit, profile, jobs)
}

func TestTIdeal(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	app := testApp("a", 0, placement.ResNet50, 3, 120, 4)
	est := NewRhoEstimator(topo, app, hyperparam.NewSingle())
	// Each job: 120 serial minutes on up to 4 GPUs → 30 minutes; min = 30.
	if got := est.TIdeal(); math.Abs(got-30) > 1e-9 {
		t.Errorf("TIdeal = %v, want 30", got)
	}
	// A shorter job lowers the ideal time.
	app.Jobs[1].TotalWork = 40
	if got := est.TIdeal(); math.Abs(got-10) > 1e-9 {
		t.Errorf("TIdeal = %v, want 10", got)
	}
}

func TestTSharedAndRho(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	app := testApp("a", 100, placement.ResNet50, 2, 120, 4)
	est := NewRhoEstimator(topo, app, hyperparam.NewSingle())

	// No allocation: unbounded (and growing with waiting time).
	if got := est.TShared(130, cluster.NewAlloc()); got < Unbounded {
		t.Errorf("TShared with no GPUs = %v, want ≥ Unbounded", got)
	}
	if est.TShared(200, cluster.NewAlloc()) <= est.TShared(130, cluster.NewAlloc()) {
		t.Error("starving longer should raise the unbounded TShared estimate")
	}
	if got := est.CurrentRho(130, cluster.NewAlloc()); got < Unbounded/100 {
		t.Errorf("CurrentRho with no GPUs = %v, want very large", got)
	}

	// 4 GPUs on one machine at t=130 (30 min elapsed): the faster job gets
	// all 4 GPUs → finishes in 30 more minutes → TSH = 60.
	alloc := cluster.Alloc{0: 4}
	if got := est.TShared(130, alloc); math.Abs(got-60) > 1e-9 {
		t.Errorf("TShared = %v, want 60", got)
	}
	// TIdeal = 30, so ρ = 2.
	if got := est.CurrentRho(130, alloc); math.Abs(got-2) > 1e-9 {
		t.Errorf("Rho = %v, want 2", got)
	}
	// Adding GPUs can only improve (lower) ρ for a placement-insensitive app.
	rhoMore := est.Rho(130, alloc, cluster.Alloc{1: 4})
	if rhoMore > 2+1e-9 {
		t.Errorf("more GPUs worsened rho: %v", rhoMore)
	}
}

func TestRhoPlacementSensitivity(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	// Network-intensive app: 1 job needing 4 GPUs.
	app := testApp("a", 0, placement.VGG16, 1, 200, 4)
	est := NewRhoEstimator(topo, app, hyperparam.NewSingle())
	packed := est.Rho(0, cluster.NewAlloc(), cluster.Alloc{0: 4})
	spread := est.Rho(0, cluster.NewAlloc(), cluster.Alloc{0: 2, 2: 2})
	if packed >= spread {
		t.Errorf("packed rho %v should beat cross-rack rho %v for VGG16", packed, spread)
	}
	// Compute-intensive app barely cares.
	appR := testApp("b", 0, placement.ResNet50, 1, 200, 4)
	estR := NewRhoEstimator(topo, appR, hyperparam.NewSingle())
	packedR := estR.Rho(0, cluster.NewAlloc(), cluster.Alloc{0: 4})
	spreadR := estR.Rho(0, cluster.NewAlloc(), cluster.Alloc{0: 2, 2: 2})
	if spreadR/packedR > 1.1 {
		t.Errorf("ResNet50 rho should be nearly placement-insensitive: %v vs %v", packedR, spreadR)
	}
}

func TestRhoRespectsMaxParallelism(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	app := testApp("a", 0, placement.ResNet50, 1, 100, 4)
	app.Jobs[0].MaxParallelism = 2
	est := NewRhoEstimator(topo, app, hyperparam.NewSingle())
	// Even with 8 GPUs offered, the single job can use only 2: TSH = 50.
	if got := est.TShared(0, cluster.Alloc{0: 4, 1: 4}); math.Abs(got-50) > 1e-9 {
		t.Errorf("TShared = %v, want 50 (parallelism capped at 2)", got)
	}
}

func TestFinalRho(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	app := testApp("a", 10, placement.ResNet50, 1, 120, 4)
	est := NewRhoEstimator(topo, app, hyperparam.NewSingle())
	app.FinishedAt = 100 // ran 90 minutes against an ideal of 30
	if got := est.FinalRho(100, cluster.NewAlloc()); math.Abs(got-3) > 1e-9 {
		t.Errorf("FinalRho = %v, want 3", got)
	}
}

func TestRhoErrorInjection(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	app := testApp("a", 0, placement.ResNet50, 1, 120, 4)
	est := NewRhoEstimator(topo, app, hyperparam.NewSingle())
	est.Errors = estimator.NewErrorModel(0.2, 3)
	alloc := cluster.Alloc{0: 4}
	base := 30.0 / est.TIdeal()
	got := est.CurrentRho(0, alloc)
	if got < base*0.8-1e-9 || got > base*1.2+1e-9 {
		t.Errorf("perturbed rho %v outside ±20%% of %v", got, base)
	}
}

func TestTSharedDrainedApp(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	app := testApp("a", 0, placement.ResNet50, 1, 100, 4)
	app.Jobs[0].Advance(0, 1000, 4, 1)
	est := NewRhoEstimator(topo, app, hyperparam.NewSingle())
	// No active jobs: TShared equals elapsed time.
	if got := est.TShared(40, cluster.NewAlloc()); got != 40 {
		t.Errorf("TShared for finished app = %v, want 40", got)
	}
}
