package core

import (
	"testing"
	"time"
)

// TestOfferResourcesRecordsRoundPhases pins the phase instrumentation the
// serving layer's telemetry reads after every round: the breakdown accounts
// for the whole round, the counts match the round's outcome, and the
// cumulative stats advance with it.
func TestOfferResourcesRecordsRoundPhases(t *testing.T) {
	ps, free := valuationFixture(t, 12)
	topo := ps[0].state.Agent.(*Agent).Estimator.Topo
	arb, err := NewArbiter(topo, Config{FairnessKnob: 0.5, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	states := make([]AgentState, 0, len(ps))
	for _, p := range ps {
		states = append(states, p.state)
	}

	decisions, err := arb.OfferResources(0, free, states)
	if err != nil {
		t.Fatal(err)
	}
	rp := arb.LastRound()

	if rp.Agents != len(states) {
		t.Errorf("Agents = %d, want %d", rp.Agents, len(states))
	}
	if rp.Participants < 1 || rp.Participants > len(states) {
		t.Errorf("Participants = %d outside [1,%d]", rp.Participants, len(states))
	}
	if rp.OfferedGPUs != free.Total() {
		t.Errorf("OfferedGPUs = %d, want %d", rp.OfferedGPUs, free.Total())
	}
	if rp.Total <= 0 {
		t.Errorf("Total = %v, want > 0", rp.Total)
	}
	if sum := rp.Probe + rp.Bid + rp.Solve + rp.Leftover; sum > rp.Total {
		t.Errorf("phase sum %v exceeds round total %v", sum, rp.Total)
	}
	var granted, winners int
	for _, d := range decisions {
		granted += d.Alloc.Total()
		if d.FromAuction {
			winners++
		}
	}
	if rp.GrantedGPUs != granted {
		t.Errorf("GrantedGPUs = %d, want %d", rp.GrantedGPUs, granted)
	}
	// Winners counts non-empty auction allocations; decisions may merge an
	// app's auction win with a leftover grant, so compare against the
	// FromAuction entries directly.
	if rp.Winners != winners {
		t.Errorf("Winners = %d, want %d", rp.Winners, winners)
	}

	if arb.Stats.ProbeTime != rp.Probe || arb.Stats.SolveTime != rp.Solve {
		t.Errorf("cumulative stats %v/%v do not match first round %v/%v",
			arb.Stats.ProbeTime, arb.Stats.SolveTime, rp.Probe, rp.Solve)
	}
	if arb.Stats.AuctionWinners != rp.Winners {
		t.Errorf("Stats.AuctionWinners = %d, want %d", arb.Stats.AuctionWinners, rp.Winners)
	}

	// A second round overwrites LastRound and accumulates the stats.
	before := arb.Stats.SolveTime
	if _, err := arb.OfferResources(1, free, states); err != nil {
		t.Fatal(err)
	}
	if arb.Stats.SolveTime < before {
		t.Error("cumulative SolveTime went backwards")
	}
	if arb.Stats.Auctions != 2 {
		t.Errorf("Auctions = %d, want 2", arb.Stats.Auctions)
	}
	if got := arb.LastRound().Total; got <= 0 || got > time.Minute {
		t.Errorf("second round Total = %v, implausible", got)
	}
}
