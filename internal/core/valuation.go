package core

import (
	"sort"

	"themis/internal/cluster"
	"themis/internal/placement"
)

// BidValuator batches bid-table preparation across the participants of one
// auction round, reusing the scratch that a standalone PrepareBid call
// allocates per app: the candidate-size set and slice, the gang-size counts,
// the candidate dedup map, the per-participant entry buffers and the bid
// slice itself. The Arbiter owns one valuator and runs every round's step 3
// through it, so in steady state bid preparation recycles one round's
// buffers into the next instead of leaving them to the collector.
//
// Batching is an optimisation only: the tables produced are bit-identical to
// per-app PrepareBid calls (same candidate enumeration order, same float
// math), which TestBatchedBidEquivalence pins. A valuator must not be shared
// across goroutines; each Arbiter (and each sweep worker's policy) owns its
// own.
type BidValuator struct {
	sizeSet map[int]bool
	sizes   []int
	counts  map[int]int
	bids    []BidTable
	entries [][]BidEntry

	// arena lends the round's candidate Alloc maps (the per-entry
	// allocations that previously escaped into auction results and defeated
	// pooling). The Arbiter resets it once the round's grants have been
	// applied; everything kept past the round is cloned out first.
	arena *cluster.AllocArena
	// picker reuses placement scratch across candidate picks.
	picker placement.Picker
}

// Arena returns the valuator's round-scoped allocation arena, creating it on
// first use.
func (v *BidValuator) Arena() *cluster.AllocArena {
	if v.arena == nil {
		v.arena = cluster.NewAllocArena()
	}
	return v.arena
}

// EndRound recycles every candidate allocation lent during the round. Call
// only after the round's results have been applied (or cloned): the bid
// tables returned by prepareBids alias the arena's maps.
func (v *BidValuator) EndRound() {
	if v.arena != nil {
		v.arena.Reset()
	}
}

// prepareBids values an offer for every bidding participant. In-process
// *Agent bidders run through the scratch-reusing path; any other Bidder
// (e.g. the rpc package's remote agents) falls back to its own PrepareBid.
// The returned slice and the Entries backing arrays are owned by the
// valuator and valid until the next prepareBids call — exactly the lifetime
// OfferResources needs (the auction copies what it keeps).
func (v *BidValuator) prepareBids(now float64, offer cluster.Alloc, bidding []probedAgent) []BidTable {
	bids := v.bids[:0]
	for len(v.entries) < len(bidding) {
		v.entries = append(v.entries, nil)
	}
	for i, p := range bidding {
		if ag, ok := p.state.Agent.(*Agent); ok {
			table := ag.prepareBidInto(now, offer, p.state.Current, v, v.entries[i][:0])
			v.entries[i] = table.Entries
			bids = append(bids, table)
		} else {
			bids = append(bids, p.state.Agent.PrepareBid(now, offer, p.state.Current))
		}
	}
	v.bids = bids
	return bids
}

// candidateSizes computes the GPU counts an Agent bids on (see the package
// function candidateSizes for the enumeration contract), reusing the
// valuator's set and output slice. The returned slice is valid until the
// next call.
func (v *BidValuator) candidateSizes(offered, unmet, gang int) []int {
	if offered <= 0 || unmet <= 0 {
		return nil
	}
	max := offered
	if unmet < max {
		max = unmet
	}
	if gang <= 0 {
		gang = 1
	}
	if v.sizeSet == nil {
		v.sizeSet = make(map[int]bool)
	}
	clear(v.sizeSet)
	sizes := v.sizeSet
	// Gang multiples: 1×, 2×, 3×, 4× the gang size.
	for k := 1; k <= 4; k++ {
		if s := k * gang; s <= max {
			sizes[s] = true
		}
	}
	// Doublings to reach large offers quickly.
	for s := gang * 8; s < max; s *= 2 {
		sizes[s] = true
	}
	sizes[max] = true
	if gang > 1 && max >= 1 {
		sizes[min(gang/2, max)] = true // a half-gang row for constrained offers
	}
	out := v.sizes[:0]
	for s := range sizes {
		if s > 0 {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	v.sizes = out
	return out
}

// gangCounts returns the cleared gang-size tally map.
func (v *BidValuator) gangCounts() map[int]int {
	if v.counts == nil {
		v.counts = make(map[int]int)
	}
	clear(v.counts)
	return v.counts
}
