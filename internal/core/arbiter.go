package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"themis/internal/cluster"
	"themis/internal/solver"
	"themis/internal/workload"
)

// Config holds the Arbiter's tunables.
type Config struct {
	// FairnessKnob is f ∈ [0,1] (§5): available GPUs are offered to the
	// worst 1−f fraction of apps by finish-time fairness. Higher f gives
	// stronger fairness guarantees; lower f widens visibility and lets the
	// Arbiter find more placement-efficient allocations. The paper settles
	// on 0.8.
	FairnessKnob float64
	// LeaseDuration is how long (minutes) a granted allocation is held
	// before the GPUs return to the pool. The paper settles on 20 minutes.
	LeaseDuration float64
	// Auction configures the partial-allocation mechanism.
	Auction AuctionOptions
}

// DefaultConfig returns the configuration the paper converges on (§8.2):
// f = 0.8 and a 20-minute lease.
func DefaultConfig() Config {
	return Config{FairnessKnob: 0.8, LeaseDuration: 20}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.FairnessKnob < 0 || c.FairnessKnob > 1 {
		return fmt.Errorf("fairness knob %v outside [0,1]", c.FairnessKnob)
	}
	if c.LeaseDuration <= 0 {
		return fmt.Errorf("lease duration %v must be positive", c.LeaseDuration)
	}
	return nil
}

// Arbiter is the cross-app scheduler (bottom level of the two-level
// architecture): it pools available GPUs, offers them to the worst-off
// fraction of apps, runs the partial-allocation auction over their bids and
// hands out leftovers work-conservingly (§3.1 steps 1–5, Pseudocode 1).
type Arbiter struct {
	cfg  Config
	topo *cluster.Topology

	// val batches each round's bid preparation, recycling the valuation
	// scratch (candidate-size sets, gang tallies, dedup maps, entry buffers)
	// across auctions instead of reallocating it per participant.
	val BidValuator

	// Stats accumulates scheduling telemetry (auction counts, latencies).
	Stats ArbiterStats

	// lastRound is the phase breakdown of the most recent OfferResources
	// call. Written by OfferResources, so reading it is only safe when no
	// round is in flight — the rpc layer reads it under its auctionMu,
	// immediately after the round returns.
	lastRound RoundPhases
}

// LastRound returns the phase breakdown of the most recent auction round.
// It must not be called concurrently with OfferResources; the serving layer
// reads it under the same lock that serialises rounds.
func (a *Arbiter) LastRound() RoundPhases { return a.lastRound }

// ArbiterStats records telemetry about the auctions an Arbiter has run,
// mirroring the overheads the paper reports in §8.3.2 plus the per-phase
// breakdown the runtime telemetry exposes (cumulative across rounds; see
// LastRound for the most recent round alone).
type ArbiterStats struct {
	Auctions           int
	OffersMade         int
	GPUsAuctioned      int
	GPUsLeftOver       int
	TotalAuctionTime   time.Duration
	MaxAuctionTime     time.Duration
	TruthfulPayments   float64 // sum of (1 − c_i) over winners
	WinnersWithNothing int
	// Cumulative per-phase time across all rounds: ρ probes + offer
	// selection, bid preparation, winner determination (solver + hidden
	// payments), and the leftover pass.
	ProbeTime    time.Duration
	BidTime      time.Duration
	SolveTime    time.Duration
	LeftoverTime time.Duration
	// AuctionWinners counts apps that won a non-empty auction allocation.
	AuctionWinners int
}

// RoundPhases is one auction round's phase breakdown — what OfferResources
// just spent its time on, and what came out. The rpc layer copies it into
// round-duration metrics and the /debug/rounds trace ring after every round;
// experiments.ShardedLoadStudy aggregates it into its summary.
type RoundPhases struct {
	// Probe covers the ρ probes and worst-1−f offer selection; Bid the
	// batched bid preparation; Solve the partial-allocation auction (winner
	// determination + hidden payments); Leftover the work-conserving
	// leftover pass. Total is the whole OfferResources call.
	Probe    time.Duration
	Bid      time.Duration
	Solve    time.Duration
	Leftover time.Duration
	Total    time.Duration

	Agents       int // agents probed
	Participants int // agents that received the offer and bid
	Winners      int // apps with a non-empty auction allocation
	OfferedGPUs  int
	GrantedGPUs  int // auction wins + leftover grants
	LeftoverGPUs int // unallocated by the auction, before the leftover pass
}

// NewArbiter builds an Arbiter over topo with the given configuration.
func NewArbiter(topo *cluster.Topology, cfg Config) (*Arbiter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid arbiter config: %w", err)
	}
	return &Arbiter{cfg: cfg, topo: topo}, nil
}

// Config returns the Arbiter's configuration.
func (a *Arbiter) Config() Config { return a.cfg }

// Topology returns the topology the Arbiter schedules.
func (a *Arbiter) Topology() *cluster.Topology { return a.topo }

// Bidder is the Arbiter-facing interface of an Agent. The in-process *Agent
// implements it directly; the rpc package provides a remote implementation
// that forwards each call to an agent daemon over HTTP.
type Bidder interface {
	// ID returns the app the bidder represents.
	ID() workload.AppID
	// ReportRho answers a ρ probe given the app's current allocation.
	ReportRho(now float64, current cluster.Alloc) float64
	// PrepareBid returns the app's valuation table for an offer.
	PrepareBid(now float64, offer, current cluster.Alloc) BidTable
	// UnmetParallelism returns how many more GPUs the app can use.
	UnmetParallelism(current cluster.Alloc) int
	// GangSize returns the app's typical gang size (leftover-grant chunk).
	GangSize() int
}

// AgentState is one app's view presented to the Arbiter at auction time: its
// Agent plus the allocation it currently holds.
type AgentState struct {
	Agent   Bidder
	Current cluster.Alloc
}

// Allocation is one allocation decision produced by OfferResources.
type Allocation struct {
	App   workload.AppID
	Alloc cluster.Alloc
	// FromAuction distinguishes auction winnings from leftover grants.
	FromAuction bool
	// Rho is the winning bid's estimated finish-time fairness (auction
	// grants only).
	Rho float64
}

// OfferResources implements Pseudocode 1. Given the GPUs currently available
// it probes every agent for its finish-time fairness estimate, offers the
// GPUs to the worst 1−f fraction, runs the partial-allocation auction over
// their bids, distributes leftovers to the remaining apps placement
// sensitively, and returns the resulting allocation decisions. The caller
// (simulator or RPC server) applies the decisions and starts leases of
// Config().LeaseDuration.
func (a *Arbiter) OfferResources(now float64, free cluster.Alloc, agents []AgentState) ([]Allocation, error) {
	if free.Total() == 0 || len(agents) == 0 {
		return nil, nil
	}
	// The round's candidate allocations are lent from the valuator's arena;
	// they are only referenced by the bid tables and the auction's internal
	// results, both dead once the decisions (which hold fresh maps) are
	// returned. Recycle them when the round is over, whichever way it ends.
	defer a.val.EndRound()
	start := time.Now()
	a.Stats.Auctions++
	a.Stats.GPUsAuctioned += free.Total()
	a.lastRound = RoundPhases{Agents: len(agents), OfferedGPUs: free.Total()}

	// Step 1: probe every app for its current ρ.
	ps := make([]probedAgent, 0, len(agents))
	for _, st := range agents {
		ps = append(ps, probedAgent{state: st, rho: st.Agent.ReportRho(now, st.Current)})
	}
	// Step 2: sort by decreasing ρ (worst-off first) and offer to the worst
	// 1−f fraction, always at least one app.
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].rho > ps[j].rho })
	n := len(ps)
	participants := int(math.Ceil((1 - a.cfg.FairnessKnob) * float64(n)))
	if participants < 1 {
		participants = 1
	}
	if participants > n {
		participants = n
	}
	a.Stats.OffersMade += participants
	probed := time.Now()
	a.lastRound.Probe = probed.Sub(start)
	a.lastRound.Participants = participants

	// Step 3: collect bids from the participants, batched through the
	// Arbiter's valuator so the round reuses the previous round's scratch.
	bidding := ps[:participants]
	bids := a.val.prepareBids(now, free, bidding)
	bid := time.Now()
	a.lastRound.Bid = bid.Sub(probed)

	// Step 4: partial allocation over the bids.
	auction, err := RunPartialAllocation(a.topo, free, bids, a.cfg.Auction)
	solved := time.Now()
	a.lastRound.Solve = solved.Sub(bid)
	if err != nil {
		return nil, err
	}

	var out []Allocation
	bidByApp := make(map[workload.AppID]BidTable, len(bids))
	for _, b := range bids {
		bidByApp[b.App] = b
	}
	for id, alloc := range auction.Winners {
		a.Stats.TruthfulPayments += 1 - auction.HiddenPayment[id]
		if alloc.Total() == 0 {
			a.Stats.WinnersWithNothing++
			continue
		}
		a.lastRound.Winners++
		out = append(out, Allocation{App: id, Alloc: alloc, FromAuction: true, Rho: rhoOfWin(bidByApp[id], alloc)})
	}
	a.Stats.AuctionWinners += a.lastRound.Winners

	// Step 5 (leftovers): GPUs unallocated by the auction go to apps that
	// did not participate, one at a time, placement sensitively; if none can
	// use them, participants may take them so no GPU is left idle.
	leftover := auction.Leftover
	a.Stats.GPUsLeftOver += leftover.Total()
	a.lastRound.LeftoverGPUs = leftover.Total()
	if leftover.Total() > 0 {
		nonParticipants := ps[participants:]
		grants := make(map[workload.AppID]cluster.Alloc)
		for id, g := range a.grantLeftovers(leftover, nonParticipants, out) {
			grants[id] = g
		}
		if remaining := subtractGrants(leftover, grants); remaining.Total() > 0 {
			// Work conservation: let auction participants absorb the rest.
			extra := a.grantLeftovers(remaining, bidding, out)
			for id, g := range extra {
				grants[id] = grants[id].Add(g)
			}
		}
		for id, g := range grants {
			if g.Total() > 0 {
				out = append(out, Allocation{App: id, Alloc: g, FromAuction: false})
			}
		}
	}

	end := time.Now()
	elapsed := end.Sub(start)
	a.Stats.TotalAuctionTime += elapsed
	if elapsed > a.Stats.MaxAuctionTime {
		a.Stats.MaxAuctionTime = elapsed
	}
	a.lastRound.Leftover = end.Sub(solved)
	a.lastRound.Total = elapsed
	for _, d := range out {
		a.lastRound.GrantedGPUs += d.Alloc.Total()
	}
	a.Stats.ProbeTime += a.lastRound.Probe
	a.Stats.BidTime += a.lastRound.Bid
	a.Stats.SolveTime += a.lastRound.Solve
	a.Stats.LeftoverTime += a.lastRound.Leftover
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out, nil
}

// probedAgent pairs an agent's state with the ρ it reported to this auction.
type probedAgent struct {
	state AgentState
	rho   float64
}

// grantLeftovers runs the leftover-allocation rule over a candidate set,
// taking into account allocations already decided in this auction round.
func (a *Arbiter) grantLeftovers(leftover cluster.Alloc, candidates []probedAgent, decided []Allocation) map[workload.AppID]cluster.Alloc {
	if len(candidates) == 0 || leftover.Total() == 0 {
		return nil
	}
	decidedBy := make(map[workload.AppID]cluster.Alloc)
	for _, d := range decided {
		decidedBy[d.App] = decidedBy[d.App].Add(d.Alloc)
	}
	currents := make(map[workload.AppID]cluster.Alloc)
	wants := make(map[workload.AppID]int)
	chunks := make(map[workload.AppID]int)
	for _, c := range candidates {
		id := c.state.Agent.ID()
		// Most candidates at scale neither won anything this round nor have
		// unmet demand; weed them out before they cost a merged-allocation
		// clone and three map inserts. Candidates without a fresh win keep
		// their (caller-owned, read-only) Current as-is.
		cur := c.state.Current
		if d := decidedBy[id]; d.Total() > 0 {
			cur = cur.Add(d)
		}
		want := c.state.Agent.UnmetParallelism(cur)
		if want <= 0 {
			continue
		}
		currents[id] = cur
		wants[id] = want
		chunks[id] = c.state.Agent.GangSize()
	}
	return AllocateLeftovers(a.topo, leftover, currents, wants, chunks)
}

func subtractGrants(leftover cluster.Alloc, grants map[workload.AppID]cluster.Alloc) cluster.Alloc {
	remaining := leftover.Clone()
	for _, g := range grants {
		var err error
		remaining, err = remaining.Sub(g)
		if err != nil {
			panic("core: leftover grants exceed leftover pool: " + err.Error())
		}
	}
	return remaining
}

// rhoOfWin finds the ρ the winning app estimated for the allocation it
// received (or the closest not-larger bid row).
func rhoOfWin(bid BidTable, won cluster.Alloc) float64 {
	best := bid.CurrentRho()
	for _, e := range bid.Entries {
		if e.Alloc.Total() > 0 && e.Alloc.Total() <= won.Total() && e.Rho < best {
			best = e.Rho
		}
	}
	return best
}

// SolverOptions exposes the solver options used by the auction, for
// benchmarks that want to compare exact and heuristic winner determination.
func (c *Config) SolverOptions() *solver.Options { return &c.Auction.Solver }

// ValuationArenaStats reports the valuator arena's sparse-map accounting
// (maps currently lent, maps parked in the free list). Tests use it to pin
// that auction rounds recycle their candidate allocations.
func (a *Arbiter) ValuationArenaStats() (lent, free int) {
	ar := a.val.Arena()
	return ar.Lent(), ar.FreeSparse()
}
