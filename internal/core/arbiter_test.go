package core

import (
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{FairnessKnob: -0.1, LeaseDuration: 20},
		{FairnessKnob: 1.1, LeaseDuration: 20},
		{FairnessKnob: 0.5, LeaseDuration: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if _, err := NewArbiter(nil, Config{FairnessKnob: 2, LeaseDuration: 1}); err == nil {
		t.Error("NewArbiter should reject invalid config")
	}
}

// buildAgents sets up n apps: the first `starved` of them hold nothing (so
// their ρ is unbounded), the rest hold 4 GPUs each on distinct machines.
func buildAgents(t *testing.T, topo *cluster.Topology, n, starved int) ([]AgentState, *cluster.State) {
	t.Helper()
	cs := cluster.NewState(topo)
	states := make([]AgentState, 0, n)
	for i := 0; i < n; i++ {
		app := testApp(workload.AppID(appName(i)), 0, placement.VGG16, 2, 400, 4)
		ag := agentFor(topo, app)
		cur := cluster.NewAlloc()
		if i >= starved {
			cur = cluster.Alloc{cluster.MachineID(i): 4}
			if err := cs.Grant(string(app.ID), cur); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, AgentState{Agent: ag, Current: cur})
	}
	return states, cs
}

func appName(i int) string { return string(rune('a'+i)) + "-app" }

func TestArbiterOffersToWorstApps(t *testing.T) {
	topo := testTopo(t, 8, 4, 4)
	arb, err := NewArbiter(topo, Config{FairnessKnob: 0.5, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 4 apps, first 2 starved; machines 6,7 free (8 GPUs).
	agents, cs := buildAgents(t, topo, 4, 2)
	free := cs.FreeVector()
	if free.Total() != 24 {
		t.Fatalf("free = %d, want 24", free.Total())
	}
	allocs, err := arb.OfferResources(10, free, agents)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) == 0 {
		t.Fatal("no allocations produced")
	}
	got := make(map[workload.AppID]int)
	total := 0
	for _, al := range allocs {
		got[al.App] += al.Alloc.Total()
		total += al.Alloc.Total()
		// Decisions must fit within the free pool.
		for m, n := range al.Alloc {
			if n > free[m] {
				t.Errorf("allocation on machine %d exceeds free: %d > %d", m, n, free[m])
			}
		}
	}
	if total > free.Total() {
		t.Errorf("allocated %d GPUs, only %d free", total, free.Total())
	}
	// The starved apps (worst ρ) must be the auction participants and win.
	starvedGot := got[agents[0].Agent.ID()] + got[agents[1].Agent.ID()]
	if starvedGot == 0 {
		t.Errorf("starved apps won nothing: %v", got)
	}
	if arb.Stats.Auctions != 1 || arb.Stats.OffersMade != 2 {
		t.Errorf("stats = %+v, want 1 auction with 2 offers", arb.Stats)
	}
}

func TestArbiterFairnessKnobControlsVisibility(t *testing.T) {
	topo := testTopo(t, 12, 4, 4)
	agents, cs := buildAgents(t, topo, 10, 5)
	free := cs.FreeVector()

	// f = 0.9: only 1 app (the worst) sees the offer.
	arbHigh, _ := NewArbiter(topo, Config{FairnessKnob: 0.9, LeaseDuration: 20})
	if _, err := arbHigh.OfferResources(0, free, agents); err != nil {
		t.Fatal(err)
	}
	if arbHigh.Stats.OffersMade != 1 {
		t.Errorf("f=0.9 made %d offers, want 1", arbHigh.Stats.OffersMade)
	}
	// f = 0: every app sees the offer.
	arbLow, _ := NewArbiter(topo, Config{FairnessKnob: 0, LeaseDuration: 20})
	if _, err := arbLow.OfferResources(0, free, agents); err != nil {
		t.Fatal(err)
	}
	if arbLow.Stats.OffersMade != 10 {
		t.Errorf("f=0 made %d offers, want 10", arbLow.Stats.OffersMade)
	}
}

func TestArbiterWorkConserving(t *testing.T) {
	topo := testTopo(t, 6, 4, 3)
	arb, _ := NewArbiter(topo, DefaultConfig())
	// 3 apps, 1 starved; plenty of free GPUs. With f=0.8 only the starved
	// app participates, but leftovers must flow to the others while they can
	// still use GPUs.
	agents, cs := buildAgents(t, topo, 3, 1)
	free := cs.FreeVector()
	allocs, err := arb.OfferResources(0, free, agents)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	perApp := make(map[workload.AppID]int)
	for _, al := range allocs {
		total += al.Alloc.Total()
		perApp[al.App] += al.Alloc.Total()
	}
	// Each app can use at most 8 GPUs (2 jobs × gang 4); the starved one
	// should reach its full parallelism and the rest absorb leftovers up to
	// their unmet parallelism (they already hold 4 each).
	want := 8 + 4 + 4
	if total != want {
		t.Errorf("allocated %d GPUs, want %d (work conservation)", total, want)
	}
	for i, st := range agents {
		id := st.Agent.ID()
		unmet := st.Agent.UnmetParallelism(st.Current.Add(cluster.NewAlloc()))
		if perApp[id] > unmet {
			t.Errorf("app %d granted %d above its unmet parallelism %d", i, perApp[id], unmet)
		}
	}
}

func TestArbiterNoFreeGPUs(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	arb, _ := NewArbiter(topo, DefaultConfig())
	agents, _ := buildAgents(t, topo, 2, 0)
	allocs, err := arb.OfferResources(0, cluster.NewAlloc(), agents)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 0 {
		t.Errorf("allocations produced with no free GPUs: %v", allocs)
	}
	if allocs, err := arb.OfferResources(0, cluster.Alloc{0: 4}, nil); err != nil || len(allocs) != 0 {
		t.Errorf("allocations produced with no agents: %v err=%v", allocs, err)
	}
}

func TestArbiterAllocationsAreDisjoint(t *testing.T) {
	topo := testTopo(t, 10, 4, 5)
	arb, _ := NewArbiter(topo, Config{FairnessKnob: 0.4, LeaseDuration: 20})
	agents, cs := buildAgents(t, topo, 6, 3)
	free := cs.FreeVector()
	allocs, err := arb.OfferResources(5, free, agents)
	if err != nil {
		t.Fatal(err)
	}
	// Granting every allocation onto the live cluster state must succeed —
	// i.e. allocations are disjoint and within the free pool.
	for _, al := range allocs {
		if err := cs.Grant(string(al.App), al.Alloc); err != nil {
			t.Fatalf("allocation conflict: %v", err)
		}
	}
	if err := cs.Validate(); err != nil {
		t.Errorf("cluster state invalid after grants: %v", err)
	}
}
