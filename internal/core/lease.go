package core

import (
	"sort"

	"themis/internal/cluster"
	"themis/internal/workload"
)

// Lease records one granted allocation and when it expires. Every GPU in a
// Themis cluster is held under a lease; when a lease expires the GPUs return
// to the free pool and are re-auctioned (§3.1).
type Lease struct {
	App     workload.AppID
	Alloc   cluster.Alloc
	Granted float64
	Expiry  float64
}

// LeaseTable tracks the outstanding leases of a cluster. It is a plain data
// structure (no locking); the Arbiter or simulator owning it serialises
// access.
type LeaseTable struct {
	leases []Lease
	nextID int
}

// NewLeaseTable returns an empty lease table.
func NewLeaseTable() *LeaseTable { return &LeaseTable{} }

// Grant records a lease for app over alloc from now until now+duration.
// Empty allocations are ignored.
func (t *LeaseTable) Grant(app workload.AppID, alloc cluster.Alloc, now, duration float64) {
	if alloc.Total() == 0 {
		return
	}
	t.leases = append(t.leases, Lease{App: app, Alloc: alloc.Clone(), Granted: now, Expiry: now + duration})
}

// Expired removes and returns all leases with expiry ≤ now.
func (t *LeaseTable) Expired(now float64) []Lease {
	var expired, live []Lease
	for _, l := range t.leases {
		if l.Expiry <= now {
			expired = append(expired, l)
		} else {
			live = append(live, l)
		}
	}
	t.leases = live
	sort.Slice(expired, func(i, j int) bool { return expired[i].Expiry < expired[j].Expiry })
	return expired
}

// ReleaseApp removes and returns all leases held by app (used when an app
// finishes and its GPUs return to the pool before their leases expire).
func (t *LeaseTable) ReleaseApp(app workload.AppID) []Lease {
	var released, live []Lease
	for _, l := range t.leases {
		if l.App == app {
			released = append(released, l)
		} else {
			live = append(live, l)
		}
	}
	t.leases = live
	return released
}

// NextExpiry returns the earliest expiry time of any outstanding lease and
// whether one exists.
func (t *LeaseTable) NextExpiry() (float64, bool) {
	if len(t.leases) == 0 {
		return 0, false
	}
	best := t.leases[0].Expiry
	for _, l := range t.leases[1:] {
		if l.Expiry < best {
			best = l.Expiry
		}
	}
	return best, true
}

// Outstanding returns a copy of all live leases, soonest expiry first.
func (t *LeaseTable) Outstanding() []Lease {
	out := make([]Lease, len(t.leases))
	copy(out, t.leases)
	sort.Slice(out, func(i, j int) bool { return out[i].Expiry < out[j].Expiry })
	return out
}

// HeldBy returns the total allocation currently leased to app.
func (t *LeaseTable) HeldBy(app workload.AppID) cluster.Alloc {
	total := cluster.NewAlloc()
	for _, l := range t.leases {
		if l.App == app {
			total = total.Add(l.Alloc)
		}
	}
	return total
}

// Len returns the number of outstanding leases.
func (t *LeaseTable) Len() int { return len(t.leases) }
