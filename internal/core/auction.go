package core

import (
	"fmt"
	"math"
	"sort"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/solver"
	"themis/internal/workload"
)

// AuctionResult is the outcome of one partial-allocation auction.
type AuctionResult struct {
	// Winners holds each bidding app's final allocation after hidden
	// payments (possibly empty).
	Winners map[workload.AppID]cluster.Alloc
	// ProportionalFair holds the intrinsically proportionally fair
	// allocation each app would have received before hidden payments.
	ProportionalFair map[workload.AppID]cluster.Alloc
	// HiddenPayment holds each app's c_i ∈ [0,1]: the fraction of its
	// proportional-fair allocation it actually keeps (§5.1 step 2).
	HiddenPayment map[workload.AppID]float64
	// Leftover is the part of the offer not allocated to any bidder, to be
	// handed out work-conservingly (§5.1 step 3).
	Leftover cluster.Alloc
	// Objective is the log-product objective of the proportional-fair
	// solution.
	Objective float64
}

// AuctionOptions tunes the partial-allocation mechanism.
type AuctionOptions struct {
	// Solver configures the proportional-fair winner determination.
	Solver solver.Options
	// DisableHiddenPayments turns off the c_i scaling. This removes the
	// mechanism's truth-telling incentive and exists only for the ablation
	// benchmarks; production auctions keep it enabled.
	DisableHiddenPayments bool
}

// RunPartialAllocation executes the partial allocation mechanism of
// Pseudocode 2 over the given offer and bid tables: it computes the
// proportionally fair allocation maximising the product of valuations,
// scales every winner's allocation down by its hidden payment c_i, and
// reports whatever is left over.
func RunPartialAllocation(topo *cluster.Topology, offer cluster.Alloc, bids []BidTable, opts AuctionOptions) (AuctionResult, error) {
	res := AuctionResult{
		Winners:          make(map[workload.AppID]cluster.Alloc),
		ProportionalFair: make(map[workload.AppID]cluster.Alloc),
		HiddenPayment:    make(map[workload.AppID]float64),
		Leftover:         offer.Clone(),
	}
	if len(bids) == 0 || offer.Total() == 0 {
		return res, nil
	}
	for _, b := range bids {
		if err := b.Validate(offer); err != nil {
			return res, fmt.Errorf("core: invalid bid: %w", err)
		}
	}

	bidders := make([]solver.Bidder, 0, len(bids))
	for _, b := range bids {
		bidders = append(bidders, toBidder(b))
	}
	full, objective, err := solver.Solve(offer, bidders, opts.Solver)
	if err != nil {
		return res, fmt.Errorf("core: proportional-fair solve: %w", err)
	}
	res.Objective = objective

	allocated := cluster.NewAlloc()
	for _, b := range bids {
		id := b.App
		pf := full[string(id)].Alloc
		res.ProportionalFair[id] = pf
		ci := 1.0
		if !opts.DisableHiddenPayments {
			ci = hiddenPayment(offer, bidders, full, string(id), opts.Solver)
		}
		res.HiddenPayment[id] = ci
		final := scaleAllocation(topo, pf, ci)
		res.Winners[id] = final
		allocated = allocated.Add(final)
	}
	leftover, err := offer.Sub(allocated)
	if err != nil {
		return res, fmt.Errorf("core: auction allocated more than offered: %w", err)
	}
	res.Leftover = leftover
	return res, nil
}

// toBidder converts a bid table into a solver bidder using V = 1/ρ values.
func toBidder(b BidTable) solver.Bidder {
	out := solver.Bidder{ID: string(b.App)}
	for _, e := range b.Entries {
		out.Bundles = append(out.Bundles, solver.Bundle{Alloc: e.Alloc, Value: e.Value()})
	}
	return out
}

// hiddenPayment computes c_i for bidder id (Pseudocode 2 lines 7–8): the
// ratio of the other bidders' collective valuation in the market with bidder
// id present to their collective valuation in the market without it. The
// ratio is at most 1; the difference is the "payment" the bidder forfeits,
// which is what makes truthful reporting a dominant strategy.
func hiddenPayment(offer cluster.Alloc, bidders []solver.Bidder, full solver.Assignment, id string, opts solver.Options) float64 {
	var withLog float64
	others := make([]solver.Bidder, 0, len(bidders)-1)
	for _, b := range bidders {
		if b.ID == id {
			continue
		}
		others = append(others, b)
		withLog += math.Log(full[b.ID].Value)
	}
	if len(others) == 0 {
		return 1 // a lone bidder pays nothing
	}
	// Use the solver's index-ordered objective rather than re-summing the
	// assignment map: identical value, but deterministic float accumulation,
	// so repeated auctions produce bit-identical payments.
	_, withoutLog, err := solver.Solve(offer, others, opts)
	if err != nil {
		return 1
	}
	ci := math.Exp(withLog - withoutLog)
	if ci > 1 {
		ci = 1
	}
	if ci < 0 {
		ci = 0
	}
	return ci
}

// scaleAllocation keeps a c_i fraction of a proportional-fair allocation,
// dropping GPUs while preserving locality: the kept subset is picked
// placement-sensitively from the original bundle.
func scaleAllocation(topo *cluster.Topology, pf cluster.Alloc, ci float64) cluster.Alloc {
	total := pf.Total()
	if total == 0 {
		return cluster.NewAlloc()
	}
	keep := int(math.Floor(ci*float64(total) + 1e-9))
	if keep >= total {
		return pf.Clone()
	}
	if keep <= 0 {
		return cluster.NewAlloc()
	}
	return placement.Pick(topo, pf, cluster.NewAlloc(), keep)
}

// AllocateLeftovers distributes leftover GPUs placement-sensitively among
// candidate apps (§5.1 step 3): each grant extends an app's existing
// allocation — a machine it already uses when possible, otherwise the
// tightest-packing pick from what remains. Apps are visited in a
// deterministic rotation (the paper breaks ties randomly; a rotation keeps
// simulations reproducible without biasing any app), receiving a chunk of up
// to chunkSize GPUs per visit so different apps' grants do not interleave on
// the same machines.
//
// currents maps each candidate app to its existing allocation; wants maps it
// to the maximum number of additional GPUs it can still use; chunks maps it
// to the app's preferred grant granularity (its gang size — zero means one
// GPU at a time). The function returns the per-app grants; GPUs nobody can
// use remain unallocated.
func AllocateLeftovers(topo *cluster.Topology, leftover cluster.Alloc, currents map[workload.AppID]cluster.Alloc, wants, chunks map[workload.AppID]int) map[workload.AppID]cluster.Alloc {
	grants := make(map[workload.AppID]cluster.Alloc)
	if leftover.Total() == 0 || len(currents) == 0 {
		return grants
	}
	apps := make([]workload.AppID, 0, len(currents))
	for id := range currents {
		if wants[id] > 0 {
			apps = append(apps, id)
		}
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
	if len(apps) == 0 {
		return grants
	}
	remaining := leftover.Clone()
	granted := make(map[workload.AppID]int)
	rotation := 0
	for remaining.Total() > 0 {
		progress := false
		for k := 0; k < len(apps) && remaining.Total() > 0; k++ {
			id := apps[(rotation+k)%len(apps)]
			want := wants[id] - granted[id]
			if want <= 0 {
				continue
			}
			chunk := chunks[id]
			if chunk <= 0 {
				chunk = 1
			}
			if chunk > want {
				chunk = want
			}
			anchor := currents[id].Add(grants[id])
			pick := placement.Pick(topo, remaining, anchor, chunk)
			if pick.Total() == 0 {
				continue
			}
			grants[id] = grants[id].Add(pick)
			granted[id] += pick.Total()
			var err error
			remaining, err = remaining.Sub(pick)
			if err != nil {
				panic("core: AllocateLeftovers internal inconsistency: " + err.Error())
			}
			rotation++
			progress = true
		}
		if !progress {
			break // nobody can take more
		}
	}
	return grants
}
