package core

import (
	"themis/internal/cluster"
	"themis/internal/estimator"
	"themis/internal/hyperparam"
	"themis/internal/workload"
)

// Agent is the per-app intermediary between the app's own scheduler (its
// hyperparameter tuner) and the cross-app Arbiter (§3.1). It answers the
// Arbiter's ρ probes and prepares bid tables for offers, using the narrow
// API the tuner exposes: per-job work left, per-job maximum parallelism and
// the app's placement-sensitivity profile.
type Agent struct {
	App       *workload.App
	Tuner     hyperparam.Tuner
	Estimator *RhoEstimator

	// MaxBidRows caps the bid table size; zero means DefaultMaxBidRows.
	MaxBidRows int
	// PlacementBlind makes the Agent bid on arbitrarily spread GPU subsets
	// instead of placement-packed ones. It exists only for the ablation
	// benchmarks that quantify the value of placement-aware bidding; the
	// real system always bids placement-sensitively.
	PlacementBlind bool
}

// DefaultMaxBidRows bounds the size of a prepared bid table.
const DefaultMaxBidRows = 12

// NewAgent builds an Agent for app on topo, with an optional error model for
// the Figure 11 sensitivity study.
func NewAgent(topo *cluster.Topology, app *workload.App, tuner hyperparam.Tuner, errs *estimator.ErrorModel) *Agent {
	est := NewRhoEstimator(topo, app, tuner)
	est.Errors = errs
	return &Agent{App: app, Tuner: tuner, Estimator: est}
}

// ID returns the app's identifier.
func (ag *Agent) ID() workload.AppID { return ag.App.ID }

// ReportRho answers the Arbiter's probe (Figure 3 step 1) with the app's
// current finish-time fairness estimate given its present allocation.
func (ag *Agent) ReportRho(now float64, current cluster.Alloc) float64 {
	return ag.Estimator.CurrentRho(now, current)
}

// UnmetParallelism returns how many more GPUs the app could still use: the
// sum of its active jobs' maximum parallelism minus what it already holds.
func (ag *Agent) UnmetParallelism(current cluster.Alloc) int {
	want := 0
	for _, j := range ag.App.Jobs {
		if !j.Active() {
			continue
		}
		p := j.MaxParallelism
		if p <= 0 {
			p = j.GangSize
		}
		want += p
	}
	unmet := want - current.Total()
	if unmet < 0 {
		return 0
	}
	return unmet
}

// PrepareBid responds to an offer (Figure 3 step 3): it enumerates candidate
// subsets of the offered GPUs — placement-sensitively anchored on the app's
// existing allocation — and values each subset with the ρ the app would
// achieve after receiving it. The empty subset (current ρ) is always
// included.
//
// A standalone call allocates its own scratch; the Arbiter batches the
// round's calls through one BidValuator instead (same result, recycled
// buffers).
func (ag *Agent) PrepareBid(now float64, offer, current cluster.Alloc) BidTable {
	var v BidValuator
	return ag.prepareBidInto(now, offer, current, &v, nil)
}

// prepareBidInto is PrepareBid with caller-owned scratch: the valuator
// provides the candidate-size, gang-count and dedup buffers, and entries is
// the (possibly recycled) backing buffer for the table rows. The candidate
// enumeration order and the valuation math are exactly PrepareBid's — the
// batched and standalone paths must stay bit-identical.
func (ag *Agent) prepareBidInto(now float64, offer, current cluster.Alloc, v *BidValuator, entries []BidEntry) BidTable {
	arena := v.Arena()
	table := BidTable{App: ag.App.ID, Entries: entries}
	table.Entries = append(table.Entries, BidEntry{
		Alloc: arena.Sparse(),
		Rho:   ag.Estimator.CurrentRho(now, current),
	})
	gang := ag.typicalGangSizeWith(v)
	sizes := v.candidateSizes(offer.Total(), ag.UnmetParallelism(current), gang)
	maxRows := ag.MaxBidRows
	if maxRows <= 0 {
		maxRows = DefaultMaxBidRows
	}
	for _, size := range sizes {
		if len(table.Entries) >= maxRows {
			break
		}
		var candidate cluster.Alloc
		if ag.PlacementBlind {
			candidate = spreadCandidate(offer, size)
		} else {
			candidate = v.picker.PickInto(arena.Sparse(), ag.Estimator.Topo, offer, current, size)
		}
		if candidate.Total() == 0 {
			continue
		}
		// Dedup against the rows already accepted (replacing the old
		// canonical-Key string set: Equal over ≤MaxBidRows rows is cheaper
		// than rendering keys and allocates nothing). The empty row at
		// index 0 can never match: candidates here have a non-zero total.
		dup := false
		for _, e := range table.Entries {
			if e.Alloc.Equal(candidate) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		table.Entries = append(table.Entries, BidEntry{
			Alloc: candidate,
			Rho:   ag.Estimator.Rho(now, current, candidate),
		})
	}
	return table
}

// spreadCandidate picks count GPUs one machine at a time in ID order — the
// placement-oblivious candidate generation used by the ablation benchmarks.
func spreadCandidate(offer cluster.Alloc, count int) cluster.Alloc {
	picked := cluster.NewAlloc()
	remaining := offer.Clone()
	for count > 0 && remaining.Total() > 0 {
		progress := false
		for _, m := range remaining.Machines() {
			if count == 0 {
				break
			}
			if remaining[m] <= 0 {
				continue
			}
			picked[m]++
			remaining[m]--
			count--
			progress = true
		}
		if !progress {
			break
		}
	}
	return picked
}

// GangSize returns the gang size the app's active jobs typically need (the
// mode across active jobs, falling back to 1); the Arbiter uses it as the
// chunk size for leftover grants.
func (ag *Agent) GangSize() int { return ag.typicalGangSize() }

// typicalGangSize returns the gang size the app's active jobs need (the mode
// across active jobs, falling back to 1).
func (ag *Agent) typicalGangSize() int {
	var v BidValuator
	return ag.typicalGangSizeWith(&v)
}

// typicalGangSizeWith is typicalGangSize over the valuator's reused tally
// map. The mode tie-break ((count, gang) lexicographic max) is independent of
// map iteration order, so the result is deterministic.
func (ag *Agent) typicalGangSizeWith(v *BidValuator) int {
	counts := v.gangCounts()
	for _, j := range ag.App.Jobs {
		if !j.Active() {
			continue
		}
		counts[j.GangSize]++
	}
	best, bestN := 1, 0
	for g, n := range counts {
		if n > bestN || (n == bestN && g > best) {
			best, bestN = g, n
		}
	}
	return best
}

// SplitForJobs maps an app-level allocation onto the app's active jobs in a
// placement-sensitive manner, honouring per-job parallelism limits. The
// simulator uses it to drive per-job progress; a real deployment's Agent
// would hand these to the tuner (Figure 3 step 5).
func (ag *Agent) SplitForJobs(total cluster.Alloc) map[workload.JobID]cluster.Alloc {
	active := ag.Estimator.activeJobs()
	splits := ag.Estimator.splitAcrossJobs(total, active)
	out := make(map[workload.JobID]cluster.Alloc, len(active))
	for i, j := range active {
		// The split allocations are estimator-pooled scratch; hand the
		// caller its own copies.
		out[j.ID] = splits[i].Clone()
	}
	return out
}
