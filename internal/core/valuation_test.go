package core

import (
	"fmt"
	"reflect"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/race"
	"themis/internal/workload"
)

// valuationFixture builds n agents with varied gang sizes and current
// allocations over a 16×4 cluster, plus the free vector left over.
func valuationFixture(tb testing.TB, n int) ([]probedAgent, cluster.Alloc) {
	tb.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 16, GPUs: 4, SlotSize: 2, GPU: cluster.GPUTypeP100}},
		MachinesPerRack: 8,
	}.Build()
	if err != nil {
		tb.Fatal(err)
	}
	cs := cluster.NewState(topo)
	profiles := []placement.Profile{placement.VGG16, placement.ResNet50, placement.GNMT}
	ps := make([]probedAgent, 0, n)
	for i := 0; i < n; i++ {
		id := workload.AppID(fmt.Sprintf("val-%03d", i))
		gang := 1 << (i % 3) // gangs of 1, 2, 4
		app := testApp(id, 0, profiles[i%len(profiles)], 1+i%3, 400, gang)
		ag := agentFor(topo, app)
		cur := cluster.NewAlloc()
		if i%2 == 1 { // odd agents already hold GPUs on machine i%16
			cur = cluster.Alloc{cluster.MachineID(i % 16): 2}
			if err := cs.Grant(string(id), cur); err != nil {
				tb.Fatal(err)
			}
		}
		ps = append(ps, probedAgent{state: AgentState{Agent: ag, Current: cur}, rho: float64(n - i)})
	}
	return ps, cs.FreeVector()
}

// foreignBidder wraps an Agent behind a type the valuator cannot fast-path,
// standing in for the rpc package's remote bidders.
type foreignBidder struct{ *Agent }

// TestBatchedBidEquivalence pins the valuator's contract: batching a round's
// bid preparation through one BidValuator produces tables bit-identical to
// standalone per-agent PrepareBid calls, on the first round and on a scratch-
// reusing second round, for in-process Agents and for foreign Bidders alike.
func TestBatchedBidEquivalence(t *testing.T) {
	ps, free := valuationFixture(t, 12)
	// Route one participant through the foreign-Bidder fallback path.
	ps[5].state.Agent = foreignBidder{ps[5].state.Agent.(*Agent)}

	want := make([]BidTable, 0, len(ps))
	for _, p := range ps {
		want = append(want, p.state.Agent.PrepareBid(0, free, p.state.Current))
	}

	var v BidValuator
	for round := 0; round < 3; round++ {
		got := v.prepareBids(0, free, ps)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d tables, want %d", round, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("round %d: table %d differs:\n got %v\nwant %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestValuatorCandidateSizesMatchesPackage pins that the valuator's scratch-
// reusing size enumeration is the package function's (which now delegates to
// it), including across repeated calls that reuse the internal set.
func TestValuatorCandidateSizesMatchesPackage(t *testing.T) {
	var v BidValuator
	cases := []struct{ offered, unmet, gang int }{
		{0, 10, 2}, {10, 0, 2}, {64, 64, 1}, {64, 17, 4}, {5, 100, 8}, {3, 3, 2}, {128, 96, 2},
	}
	for _, c := range cases {
		want := candidateSizes(c.offered, c.unmet, c.gang)
		got := v.candidateSizes(c.offered, c.unmet, c.gang)
		if !reflect.DeepEqual(append([]int(nil), got...), want) {
			t.Errorf("candidateSizes(%d,%d,%d): valuator %v, package %v", c.offered, c.unmet, c.gang, got, want)
		}
	}
}

// TestBidValuationBatchZeroAlloc pins the core half of the PR's allocation
// contract (TestEventCoreZeroAlloc in internal/sim is the sim half): once the
// valuator's scratch, arena and picker have reached steady-state capacity, a
// full round lifecycle — every participant's bid table prepared, then the
// round's candidate allocations recycled by EndRound — is 0 allocs/op.
func TestBidValuationBatchZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc contract is checked without -race")
	}
	ps, free := valuationFixture(t, 16)
	var v BidValuator
	for i := 0; i < 8; i++ { // warm up scratch, arena free list, entry buffers
		v.prepareBids(0, free, ps)
		v.EndRound()
	}
	allocs := testing.AllocsPerRun(200, func() {
		v.prepareBids(0, free, ps)
		v.EndRound()
	})
	if allocs != 0 {
		t.Errorf("steady-state valuation round allocates %.1f objects/op, want 0", allocs)
	}
}

// TestArbiterRecyclesValuationArena pins the arena lifecycle at the Arbiter
// level: every candidate allocation lent to a round's bid tables is back on
// the arena free list when OfferResources returns, and subsequent rounds run
// on the recycled maps instead of growing the arena.
func TestArbiterRecyclesValuationArena(t *testing.T) {
	ps, free := valuationFixture(t, 12)
	topo := ps[0].state.Agent.(*Agent).Estimator.Topo
	arb, err := NewArbiter(topo, Config{FairnessKnob: 0.5, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	states := make([]AgentState, 0, len(ps))
	for _, p := range ps {
		states = append(states, p.state)
	}
	var freeListAfterFirst int
	for round := 0; round < 3; round++ {
		if _, err := arb.OfferResources(float64(round), free, states); err != nil {
			t.Fatal(err)
		}
		lent, parked := arb.ValuationArenaStats()
		if lent != 0 {
			t.Fatalf("round %d: %d candidate allocations still lent after OfferResources", round, lent)
		}
		if parked == 0 {
			t.Fatalf("round %d: arena free list empty — candidates were never arena-lent", round)
		}
		if round == 0 {
			freeListAfterFirst = parked
		} else if parked != freeListAfterFirst {
			t.Errorf("round %d: arena free list %d, want steady-state %d (maps should be recycled, not re-made)",
				round, parked, freeListAfterFirst)
		}
	}
}

// BenchmarkBidValuationBatch measures one auction round's batched bid
// preparation — the internal/core hot path the arena work targets. Each
// iteration is a full round lifecycle as the Arbiter drives it: prepare every
// participant's table, then EndRound returns the candidate allocations to the
// arena, so in steady state the round runs on recycled maps.
func BenchmarkBidValuationBatch(b *testing.B) {
	ps, free := valuationFixture(b, 16)
	var v BidValuator
	v.prepareBids(0, free, ps) // prime the scratch
	v.EndRound()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.prepareBids(0, free, ps)
		v.EndRound()
	}
}

// BenchmarkBidPreparePerAgent is the unbatched baseline for comparison.
func BenchmarkBidPreparePerAgent(b *testing.B) {
	ps, free := valuationFixture(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			p.state.Agent.PrepareBid(0, free, p.state.Current)
		}
	}
}
