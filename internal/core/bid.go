package core

import (
	"fmt"
	"sort"
	"strings"

	"themis/internal/cluster"
	"themis/internal/workload"
)

// BidEntry is one row of an Agent's valuation table (Figure 3b): a candidate
// subset of the offered GPUs and the new finish-time fairness metric the app
// estimates it would achieve with that subset added to its current
// allocation.
type BidEntry struct {
	Alloc cluster.Alloc
	Rho   float64
}

// Value returns the entry's auction valuation. The partial allocation
// mechanism maximises a product of valuations where higher must mean better,
// so the valuation is the reciprocal of the (always positive) finish-time
// fairness estimate: V = 1/ρ. This keeps the valuation homogeneous of degree
// one in the allocation, the property the mechanism's truthfulness relies on
// (§5.1): scaling an allocation k× improves ρ — and hence V — k×.
func (b BidEntry) Value() float64 {
	if b.Rho <= 0 {
		return 1 / 1e-9
	}
	return 1 / b.Rho
}

// BidTable is an Agent's reply to an offer: its valuation for selected
// subsets of the offered GPUs, always including the empty subset (the app's
// current ρ).
type BidTable struct {
	App     workload.AppID
	Entries []BidEntry
}

// CurrentRho returns the ρ of the empty-allocation row (the app's current
// finish-time fairness), or Unbounded if the table has no such row.
func (t BidTable) CurrentRho() float64 {
	for _, e := range t.Entries {
		if e.Alloc.Total() == 0 {
			return e.Rho
		}
	}
	return Unbounded
}

// Best returns the entry with the lowest ρ (highest value).
func (t BidTable) Best() BidEntry {
	best := BidEntry{Rho: Unbounded, Alloc: cluster.NewAlloc()}
	for _, e := range t.Entries {
		if e.Rho < best.Rho {
			best = e
		}
	}
	return best
}

// String renders the table in the paper's Figure 3b style, one row per line.
func (t BidTable) String() string {
	rows := make([]string, 0, len(t.Entries))
	for _, e := range t.Entries {
		rows = append(rows, fmt.Sprintf("%s -> ρ=%.3f", e.Alloc, e.Rho))
	}
	sort.Strings(rows)
	return fmt.Sprintf("bid[%s]{%s}", t.App, strings.Join(rows, "; "))
}

// Validate checks that the table only requests GPUs present in the offer and
// contains an empty row.
func (t BidTable) Validate(offer cluster.Alloc) error {
	hasEmpty := false
	for _, e := range t.Entries {
		if e.Alloc.Total() == 0 {
			hasEmpty = true
		}
		for m, n := range e.Alloc {
			if n < 0 {
				return fmt.Errorf("bid for app %s has negative GPUs on machine %d", t.App, m)
			}
			if n > offer[m] {
				return fmt.Errorf("bid for app %s wants %d GPUs on machine %d but only %d offered", t.App, n, m, offer[m])
			}
		}
		if e.Rho <= 0 {
			return fmt.Errorf("bid for app %s has non-positive ρ %v", t.App, e.Rho)
		}
	}
	if !hasEmpty {
		return fmt.Errorf("bid for app %s lacks the empty-allocation row", t.App)
	}
	return nil
}

// candidateSizes returns the GPU counts an Agent bids on, given the total
// offered GPUs, the app's unmet parallelism and its gang size. The Agent
// bids on every gang-size multiple up to a small cap, then doubles, always
// including the largest useful size — bounding the table so bid preparation
// stays cheap (§8.3.2) while covering the allocations that matter. The
// enumeration itself lives on BidValuator so the Arbiter's batched rounds
// can reuse its scratch; this wrapper serves standalone callers and tests.
func candidateSizes(offered, unmet, gang int) []int {
	var v BidValuator
	return v.candidateSizes(offered, unmet, gang)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
