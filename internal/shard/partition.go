package shard

import (
	"fmt"
	"sort"

	"themis/internal/cluster"
)

// Partition is one shard's slice of the cluster: a self-contained Topology
// whose machine IDs are shard-local (dense, starting at 0) plus the mapping
// back to the global IDs of the full topology. Racks and fabric domains keep
// their global IDs, so locality structure inside the partition — slots,
// racks, domains — prices exactly as it does in the full cluster.
type Partition struct {
	// Index is the shard's position in the Split result.
	Index int
	// Topo is the shard-local topology the shard's Arbiter schedules.
	Topo *cluster.Topology

	global  []cluster.MachineID                     // local ID -> global ID
	toLocal map[cluster.MachineID]cluster.MachineID // global ID -> local ID
}

// GlobalID maps a shard-local machine ID to the full topology's ID.
func (p *Partition) GlobalID(local cluster.MachineID) (cluster.MachineID, error) {
	if int(local) < 0 || int(local) >= len(p.global) {
		return 0, fmt.Errorf("shard: no local machine %d in partition %d", local, p.Index)
	}
	return p.global[local], nil
}

// ToGlobal translates an allocation from shard-local machine IDs to global
// ones. Machines outside the partition are impossible by construction for
// allocations produced against Topo; unknown IDs panic loudly rather than
// silently mis-attributing GPUs.
func (p *Partition) ToGlobal(a cluster.Alloc) cluster.Alloc {
	out := cluster.NewAlloc()
	for m, n := range a {
		if n == 0 {
			continue
		}
		g, err := p.GlobalID(m)
		if err != nil {
			panic("shard: " + err.Error())
		}
		out[g] += n
	}
	return out
}

// FromGlobal translates an allocation from global machine IDs to this
// partition's local ones. It errors if the allocation touches machines the
// partition does not own — a remote agent bidding outside its shard's
// capacity slice.
func (p *Partition) FromGlobal(a cluster.Alloc) (cluster.Alloc, error) {
	out := cluster.NewAlloc()
	for m, n := range a {
		if n == 0 {
			continue
		}
		l, ok := p.toLocal[m]
		if !ok {
			return nil, fmt.Errorf("shard: machine %d is outside partition %d", m, p.Index)
		}
		out[l] += n
	}
	return out, nil
}

// Machines returns the number of machines in the partition.
func (p *Partition) Machines() int { return len(p.global) }

// Split carves a topology into n capacity partitions of roughly equal GPU
// capacity. Whole racks are assigned greedily to the least-loaded shard
// (racks in ID order, ties to the lowest shard index) so rack locality
// survives sharding; when the cluster has fewer racks than shards the split
// falls back to machine granularity. Every shard receives at least one
// machine, otherwise Split errors.
func Split(topo *cluster.Topology, n int) ([]*Partition, error) {
	if topo == nil {
		return nil, fmt.Errorf("shard: nil topology")
	}
	if n <= 0 {
		return nil, fmt.Errorf("shard: shard count %d must be positive", n)
	}
	if n > topo.NumMachines() {
		return nil, fmt.Errorf("shard: cannot split %d machines into %d shards", topo.NumMachines(), n)
	}

	// Group assignment units: whole racks when there are enough, single
	// machines otherwise.
	var groups [][]cluster.MachineID
	if topo.NumRacks() >= n {
		for _, r := range topo.Racks() {
			groups = append(groups, topo.MachinesInRack(r))
		}
	} else {
		for _, m := range topo.Machines() {
			groups = append(groups, []cluster.MachineID{m.ID})
		}
	}

	gpus := func(ids []cluster.MachineID) int {
		total := 0
		for _, id := range ids {
			total += topo.Machine(id).NumGPUs
		}
		return total
	}
	// Largest groups first tightens the balance; ties keep ID order for
	// determinism.
	sort.SliceStable(groups, func(i, j int) bool { return gpus(groups[i]) > gpus(groups[j]) })

	assigned := make([][]cluster.MachineID, n)
	load := make([]int, n)
	for _, g := range groups {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assigned[best] = append(assigned[best], g...)
		load[best] += gpus(g)
	}

	parts := make([]*Partition, n)
	for s := 0; s < n; s++ {
		if len(assigned[s]) == 0 {
			return nil, fmt.Errorf("shard: partition %d received no machines (%d machines over %d shards)", s, topo.NumMachines(), n)
		}
		sort.Slice(assigned[s], func(i, j int) bool { return assigned[s][i] < assigned[s][j] })
		machines := make([]cluster.Machine, 0, len(assigned[s]))
		global := make([]cluster.MachineID, 0, len(assigned[s]))
		toLocal := make(map[cluster.MachineID]cluster.MachineID, len(assigned[s]))
		for local, gid := range assigned[s] {
			m := topo.Machine(gid)
			m.ID = cluster.MachineID(local)
			machines = append(machines, m)
			global = append(global, gid)
			toLocal[gid] = cluster.MachineID(local)
		}
		sub, err := cluster.NewTopology(machines)
		if err != nil {
			return nil, fmt.Errorf("shard: building partition %d: %w", s, err)
		}
		parts[s] = &Partition{Index: s, Topo: sub, global: global, toLocal: toLocal}
	}
	return parts, nil
}
