package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock is a deterministic time source shared by the members of a test.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func testConfig(name string, clk *fakeClock) MembershipConfig {
	return MembershipConfig{
		Name:         name,
		Addr:         "http://" + name + ".invalid",
		SuspectAfter: 3 * time.Second,
		DeadAfter:    10 * time.Second,
		Clock:        clk.Now,
	}
}

// serveMembership starts an HTTP server for a membership whose advertised
// Addr is the server's own URL — the chicken-and-egg a real arbiterd
// resolves with -advertise.
func serveMembership(t *testing.T, name string, clk *fakeClock) (*Membership, *httptest.Server) {
	t.Helper()
	var m *Membership
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.Handler().ServeHTTP(w, r)
	}))
	cfg := testConfig(name, clk)
	cfg.Addr = ts.URL
	var err error
	m, err = NewMembership(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, ts
}

func stateOf(t *testing.T, m *Membership, name string) MemberState {
	t.Helper()
	for _, mem := range m.Members() {
		if mem.Name == name {
			return mem.State
		}
	}
	t.Fatalf("member %s unknown to %s", name, m.Name())
	return ""
}

func TestMembershipConfigValidation(t *testing.T) {
	if _, err := NewMembership(MembershipConfig{}); err == nil {
		t.Error("nameless membership should be rejected")
	}
	if _, err := NewMembership(MembershipConfig{
		Name: "a", SuspectAfter: 10 * time.Second, DeadAfter: time.Second,
	}); err == nil {
		t.Error("DeadAfter < SuspectAfter should be rejected")
	}
}

func TestMembershipFailureDetector(t *testing.T) {
	clk := newFakeClock()
	m, err := NewMembership(testConfig("a", clk))
	if err != nil {
		t.Fatal(err)
	}
	m.Merge([]Member{{Name: "b", Addr: "http://b", Incarnation: 1, State: StateAlive}})

	// Fresh member: alive through the suspicion window.
	clk.Advance(2 * time.Second)
	if changed := m.Sweep(); len(changed) != 0 {
		t.Fatalf("sweep before SuspectAfter changed %v", changed)
	}
	if got := stateOf(t, m, "b"); got != StateAlive {
		t.Fatalf("b = %s, want alive", got)
	}

	// Past SuspectAfter: suspect.
	clk.Advance(2 * time.Second)
	if changed := m.Sweep(); len(changed) != 1 || changed[0] != "b" {
		t.Fatalf("sweep past SuspectAfter changed %v, want [b]", changed)
	}
	if got := stateOf(t, m, "b"); got != StateSuspect {
		t.Fatalf("b = %s, want suspect", got)
	}

	// Past DeadAfter: dead, and no longer in the ring's alive set.
	clk.Advance(7 * time.Second)
	m.Sweep()
	if got := stateOf(t, m, "b"); got != StateDead {
		t.Fatalf("b = %s, want dead", got)
	}
	if alive := m.Alive(); len(alive) != 1 || alive[0] != "a" {
		t.Errorf("alive = %v, want [a]", alive)
	}
	if r := m.Ring(8); r.Size() != 1 || r.Lookup("app-1") != "a" {
		t.Errorf("ring should only contain the alive member")
	}
}

func TestMembershipRefutationByIncarnation(t *testing.T) {
	clk := newFakeClock()
	m, err := NewMembership(testConfig("a", clk))
	if err != nil {
		t.Fatal(err)
	}
	// Someone claims we are suspect at our incarnation: we refute by
	// bumping past it and staying alive.
	m.Merge([]Member{{Name: "a", Incarnation: 1, State: StateSuspect}})
	self := m.Members()[0]
	if self.State != StateAlive || self.Incarnation != 2 {
		t.Fatalf("self after refutation = %+v, want alive at incarnation 2", self)
	}
	// A stale rumour (lower incarnation) changes nothing.
	m.Merge([]Member{{Name: "a", Incarnation: 1, State: StateDead}})
	if got := m.Members()[0]; got.State != StateAlive || got.Incarnation != 2 {
		t.Fatalf("stale rumour moved self to %+v", got)
	}

	// Peer refutation: a suspect peer gossiping a higher incarnation comes
	// back alive; the same incarnation does not (worse state wins ties).
	m.Merge([]Member{{Name: "b", Incarnation: 3, State: StateSuspect}})
	m.Merge([]Member{{Name: "b", Incarnation: 3, State: StateAlive}})
	if got := stateOf(t, m, "b"); got != StateSuspect {
		t.Fatalf("equal-incarnation alive claim revived b: %s", got)
	}
	m.Merge([]Member{{Name: "b", Incarnation: 4, State: StateAlive}})
	if got := stateOf(t, m, "b"); got != StateAlive {
		t.Fatalf("higher-incarnation refutation ignored: %s", got)
	}
}

func TestMembershipGossipExchangeOverHTTP(t *testing.T) {
	clk := newFakeClock()
	a, err := NewMembership(testConfig("a", clk))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMembership(testConfig("b", clk))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewMembership(testConfig("c", clk))
	if err != nil {
		t.Fatal(err)
	}

	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	ctx := context.Background()
	// c joins via a; a and b have already met.
	if err := b.Join(ctx, tsA.URL); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(ctx, tsA.URL); err != nil {
		t.Fatal(err)
	}
	// One exchange synchronises both directions: c learned b from a's table.
	for _, m := range []*Membership{c} {
		if got := len(m.Members()); got != 3 {
			t.Fatalf("%s knows %d members (%v), want 3", m.Name(), got, m.Members())
		}
	}
	// a heard from both directly.
	if got := a.Alive(); len(got) != 3 {
		t.Fatalf("a's alive set = %v, want 3 members", got)
	}
	// Rings computed from the same membership agree on routing.
	ra, rc := a.Ring(16), c.Ring(16)
	if ra.Size() != 3 {
		t.Fatalf("ring size %d, want 3", ra.Size())
	}
	for _, app := range []string{"app-1", "app-2", "app-3", "app-4"} {
		if ra.Lookup(app) != rc.Lookup(app) {
			t.Errorf("a and c disagree on the home of %s", app)
		}
	}

	if a.AddrOf("a") == "" || a.AddrOf("nope") != "" {
		t.Error("AddrOf misbehaves")
	}
}

func TestMembershipTickGossipsAndDetectsFailure(t *testing.T) {
	clk := newFakeClock()
	a, err := NewMembership(testConfig("a", clk))
	if err != nil {
		t.Fatal(err)
	}
	_, tsB := serveMembership(t, "b", clk)

	if err := a.Join(context.Background(), tsB.URL); err != nil {
		t.Fatal(err)
	}
	// While b serves, ticks keep it alive arbitrarily long.
	for i := 0; i < 5; i++ {
		clk.Advance(2 * time.Second)
		a.Tick(context.Background())
	}
	if got := stateOf(t, a, "b"); got != StateAlive {
		t.Fatalf("reachable peer = %s, want alive", got)
	}

	// Kill b: silence accumulates and the detector downgrades it.
	tsB.Close()
	clk.Advance(4 * time.Second)
	a.Tick(context.Background())
	if got := stateOf(t, a, "b"); got != StateSuspect {
		t.Fatalf("silent peer = %s, want suspect", got)
	}
	clk.Advance(11 * time.Second)
	a.Tick(context.Background())
	if got := stateOf(t, a, "b"); got != StateDead {
		t.Fatalf("long-silent peer = %s, want dead", got)
	}
}

func TestMembershipHandlerRejectsBadRequests(t *testing.T) {
	clk := newFakeClock()
	m, _ := NewMembership(testConfig("a", clk))
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/gossip")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET gossip = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/gossip", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty gossip body = %d, want 400", resp.StatusCode)
	}
}
