package shard

import (
	"fmt"
	"testing"
)

func TestRingDeterministicLookup(t *testing.T) {
	// The mapping must depend only on the member set, never on insertion
	// order: every process computing the ring from a membership snapshot has
	// to agree on routing.
	a := NewRing(0)
	for _, m := range []string{"shard-0", "shard-1", "shard-2", "shard-3"} {
		a.Add(m)
	}
	b := NewRing(0)
	for _, m := range []string{"shard-3", "shard-1", "shard-0", "shard-2"} {
		b.Add(m)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("app-%d", i)
		if got, want := a.Lookup(key), b.Lookup(key); got != want {
			t.Fatalf("lookup(%q) depends on insertion order: %q vs %q", key, got, want)
		}
	}
	if a.Size() != 4 {
		t.Errorf("size = %d, want 4", a.Size())
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	n := 4
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	counts := make(map[string]int)
	keys := 10000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("app-%d", i))]++
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d members own keys: %v", len(counts), n, counts)
	}
	for m, c := range counts {
		frac := float64(c) / float64(keys)
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys, want a roughly even split: %v",
				m, 100*frac, counts)
		}
	}
}

func TestRingRemoveOnlyRemapsRemovedOwner(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	before := make(map[string]string)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("app-%d", i)
		before[key] = r.Lookup(key)
	}
	r.Remove("shard-2")
	for key, owner := range before {
		after := r.Lookup(key)
		if owner == "shard-2" {
			if after == "shard-2" {
				t.Fatalf("key %q still maps to removed member", key)
			}
			continue
		}
		if after != owner {
			t.Errorf("key %q moved %q -> %q though its owner stayed", key, owner, after)
		}
	}
	if r.Size() != 3 {
		t.Errorf("size after remove = %d, want 3", r.Size())
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(8)
	if r.Lookup("anything") != "" {
		t.Error("empty ring should return empty owner")
	}
	r.Add("")
	if r.Size() != 0 {
		t.Error("empty member name must be ignored")
	}
	r.Add("only")
	r.Add("only") // re-add is a no-op
	if r.Size() != 1 || len(r.Members()) != 1 {
		t.Errorf("re-add changed membership: %v", r.Members())
	}
	if r.Lookup("x") != "only" || r.Lookup("y") != "only" {
		t.Error("single member must own every key")
	}
	r.Remove("ghost") // unknown removal is a no-op
	if r.Size() != 1 {
		t.Error("removing unknown member changed the ring")
	}
}
