package shard

import (
	"testing"

	"themis/internal/cluster"
)

func buildTopo(t *testing.T, specs []cluster.MachineSpec, perRack int) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Config{MachineSpecs: specs, MachinesPerRack: perRack}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestSplitCoversClusterExactly(t *testing.T) {
	// 8 racks of 4 machines x 4 GPUs = 128 GPUs over 4 shards.
	topo := buildTopo(t, []cluster.MachineSpec{{Count: 32, GPUs: 4, SlotSize: 2}}, 4)
	parts, err := Split(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d partitions, want 4", len(parts))
	}
	seen := make(map[cluster.MachineID]int)
	gpus := 0
	for i, p := range parts {
		if p.Index != i {
			t.Errorf("partition %d has Index %d", i, p.Index)
		}
		gpus += p.Topo.TotalGPUs()
		for local := 0; local < p.Machines(); local++ {
			gid, err := p.GlobalID(cluster.MachineID(local))
			if err != nil {
				t.Fatal(err)
			}
			seen[gid]++
			// Machine attributes must survive the re-numbering.
			if p.Topo.Machine(cluster.MachineID(local)).NumGPUs != topo.Machine(gid).NumGPUs {
				t.Errorf("partition %d machine %d lost its GPU count", i, local)
			}
		}
	}
	if gpus != topo.TotalGPUs() {
		t.Errorf("partition GPUs sum to %d, want %d", gpus, topo.TotalGPUs())
	}
	if len(seen) != topo.NumMachines() {
		t.Errorf("partitions cover %d machines, want %d", len(seen), topo.NumMachines())
	}
	for gid, n := range seen {
		if n != 1 {
			t.Errorf("machine %d appears in %d partitions", gid, n)
		}
	}
	// With whole racks per shard, GPU balance should be perfect here.
	for i, p := range parts {
		if p.Topo.TotalGPUs() != 32 {
			t.Errorf("partition %d has %d GPUs, want 32", i, p.Topo.TotalGPUs())
		}
	}
}

func TestSplitKeepsRacksTogether(t *testing.T) {
	topo := buildTopo(t, []cluster.MachineSpec{{Count: 12, GPUs: 8, SlotSize: 4}}, 3)
	parts, err := Split(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	owner := make(map[cluster.RackID]int)
	for i, p := range parts {
		for local := 0; local < p.Machines(); local++ {
			gid, _ := p.GlobalID(cluster.MachineID(local))
			rack := topo.Machine(gid).Rack
			if prev, ok := owner[rack]; ok && prev != i {
				t.Errorf("rack %d split across partitions %d and %d", rack, prev, i)
			}
			owner[rack] = i
		}
	}
}

func TestSplitMachineGranularityFallback(t *testing.T) {
	// One rack, four machines, four shards: rack granularity cannot work, so
	// Split must fall back to assigning single machines.
	topo := buildTopo(t, []cluster.MachineSpec{{Count: 4, GPUs: 4, SlotSize: 2}}, 16)
	parts, err := Split(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p.Machines() != 1 || p.Topo.TotalGPUs() != 4 {
			t.Errorf("partition %d: %d machines / %d GPUs, want 1 / 4", i, p.Machines(), p.Topo.TotalGPUs())
		}
	}
}

func TestSplitErrors(t *testing.T) {
	topo := buildTopo(t, []cluster.MachineSpec{{Count: 2, GPUs: 4, SlotSize: 2}}, 16)
	if _, err := Split(nil, 2); err == nil {
		t.Error("nil topology should error")
	}
	if _, err := Split(topo, 0); err == nil {
		t.Error("zero shards should error")
	}
	if _, err := Split(topo, 3); err == nil {
		t.Error("more shards than machines should error")
	}
}

func TestPartitionTranslation(t *testing.T) {
	topo := buildTopo(t, []cluster.MachineSpec{{Count: 8, GPUs: 4, SlotSize: 2}}, 2)
	parts, err := Split(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := parts[1]
	local := cluster.Alloc{0: 2, 1: 4}
	global := p.ToGlobal(local)
	if global.Total() != 6 {
		t.Fatalf("ToGlobal lost GPUs: %v", global)
	}
	back, err := p.FromGlobal(global)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(local) {
		t.Errorf("round trip %v != %v", back, local)
	}
	// A global machine owned by the other partition must be rejected.
	foreign, _ := parts[0].GlobalID(0)
	if _, err := p.FromGlobal(cluster.Alloc{foreign: 1}); err == nil {
		t.Error("FromGlobal should reject machines outside the partition")
	}
	if _, err := p.GlobalID(cluster.MachineID(p.Machines())); err == nil {
		t.Error("GlobalID should reject out-of-range local IDs")
	}
	// Translating an allocation with an unknown local ID is a programming
	// error and must panic rather than mis-attribute GPUs.
	defer func() {
		if recover() == nil {
			t.Error("ToGlobal should panic on unknown local machine")
		}
	}()
	p.ToGlobal(cluster.Alloc{cluster.MachineID(99): 1})
}
