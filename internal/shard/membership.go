package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"themis/internal/telemetry"
)

// membershipTelemetry holds the gossip metric handles: how many members the
// local failure detector sees in each state, this member's incarnation (a
// refutation bumps it, so a climbing incarnation means the group keeps
// suspecting us), and exchange outcomes.
type membershipTelemetry struct {
	alive       *telemetry.Gauge
	suspect     *telemetry.Gauge
	dead        *telemetry.Gauge
	incarnation *telemetry.Gauge
	exchangeOK  *telemetry.Counter
	exchangeErr *telemetry.Counter
}

func newMembershipTelemetry() *membershipTelemetry {
	reg := telemetry.Default()
	return &membershipTelemetry{
		alive:       reg.Gauge("themis_gossip_members", "Members by failure-detector state, self included.", telemetry.L("state", "alive")),
		suspect:     reg.Gauge("themis_gossip_members", "Members by failure-detector state, self included.", telemetry.L("state", "suspect")),
		dead:        reg.Gauge("themis_gossip_members", "Members by failure-detector state, self included.", telemetry.L("state", "dead")),
		incarnation: reg.Gauge("themis_gossip_incarnation", "This member's own incarnation number."),
		exchangeOK:  reg.Counter("themis_gossip_exchanges_total", "Gossip exchanges by outcome.", telemetry.L("outcome", "ok")),
		exchangeErr: reg.Counter("themis_gossip_exchanges_total", "Gossip exchanges by outcome.", telemetry.L("outcome", "error")),
	}
}

// MemberState is a member's health as seen by the local failure detector.
type MemberState string

// Member lifecycle: alive → suspect (no heartbeat for SuspectAfter) → dead
// (no heartbeat for DeadAfter). A suspected member refutes by gossiping a
// higher incarnation.
const (
	StateAlive   MemberState = "alive"
	StateSuspect MemberState = "suspect"
	StateDead    MemberState = "dead"
)

// severity orders states for the merge rule: at equal incarnation the worse
// claim wins, so death and suspicion propagate while stale liveness does not.
func severity(s MemberState) int {
	switch s {
	case StateDead:
		return 2
	case StateSuspect:
		return 1
	default:
		return 0
	}
}

// Member is one arbiterd process in the gossip group.
type Member struct {
	Name string `json:"name"`
	// Addr is the member's HTTP base URL, e.g. "http://10.0.0.7:7100".
	Addr        string      `json:"addr"`
	Incarnation uint64      `json:"incarnation"`
	State       MemberState `json:"state"`
}

// GossipMsg is the payload exchanged on POST /v1/gossip: the sender's view
// of the group. The response carries the receiver's (merged) view back, so
// one exchange synchronises both sides.
type GossipMsg struct {
	From    string   `json:"from"`
	Members []Member `json:"members"`
}

// MembershipConfig tunes the gossip/heartbeat protocol.
type MembershipConfig struct {
	// Name uniquely identifies this member; Addr is its gossip endpoint.
	Name string
	Addr string
	// HeartbeatInterval is the pause between gossip rounds (default 1s).
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a member may stay silent before it is
	// suspected (default 3s); DeadAfter before it is declared dead
	// (default 10s). These are the suspicion timeouts: raise them on flaky
	// networks, lower them when fast failover matters more than stability.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Clock supplies the current time; tests inject a deterministic one.
	Clock func() time.Time
	// HTTPClient performs gossip exchanges; nil uses a short-timeout client.
	HTTPClient *http.Client
}

func (c MembershipConfig) withDefaults() (MembershipConfig, error) {
	if c.Name == "" {
		return c, fmt.Errorf("shard: membership needs a member name")
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * time.Second
	}
	if c.DeadAfter < c.SuspectAfter {
		return c, fmt.Errorf("shard: DeadAfter (%v) must be >= SuspectAfter (%v)", c.DeadAfter, c.SuspectAfter)
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
	return c, nil
}

type memberEntry struct {
	Member
	lastSeen time.Time
}

// Membership runs the lightweight gossip/heartbeat protocol: each Tick it
// exchanges membership tables with one peer (round-robin over the alive
// set) and sweeps the failure detector. State converges because every
// exchange merges both directions and worse news always wins at equal
// incarnation.
type Membership struct {
	cfg MembershipConfig
	tel *membershipTelemetry

	mu    sync.Mutex
	self  memberEntry
	peers map[string]*memberEntry
	next  int // round-robin cursor over sorted alive peers
}

// NewMembership starts a membership of one (this process) from cfg.
func NewMembership(cfg MembershipConfig) (*Membership, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Membership{
		cfg: cfg,
		tel: newMembershipTelemetry(),
		self: memberEntry{
			Member:   Member{Name: cfg.Name, Addr: cfg.Addr, Incarnation: 1, State: StateAlive},
			lastSeen: cfg.Clock(),
		},
		peers: make(map[string]*memberEntry),
	}
	m.mu.Lock()
	m.updateGaugesLocked()
	m.mu.Unlock()
	return m, nil
}

// updateGaugesLocked recomputes the state gauges from the table. Callers hold
// mu; the walk is over a handful of members, so holding the lock through it
// is cheaper than the bookkeeping to avoid it.
func (m *Membership) updateGaugesLocked() {
	var alive, suspect, dead int64
	count := func(s MemberState) {
		switch s {
		case StateDead:
			dead++
		case StateSuspect:
			suspect++
		default:
			alive++
		}
	}
	count(m.self.State)
	for _, p := range m.peers {
		count(p.State)
	}
	m.tel.alive.Set(alive)
	m.tel.suspect.Set(suspect)
	m.tel.dead.Set(dead)
	m.tel.incarnation.Set(int64(m.self.Incarnation))
}

// Name returns this member's name.
func (m *Membership) Name() string { return m.cfg.Name }

// Members returns every known member (self included), sorted by name.
func (m *Membership) Members() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.peers)+1)
	out = append(out, m.self.Member)
	for _, p := range m.peers {
		out = append(out, p.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Alive returns the names of the members currently believed alive (self
// included), sorted — the set the consistent-hash ring is built over.
func (m *Membership) Alive() []string {
	var out []string
	for _, mem := range m.Members() {
		if mem.State == StateAlive {
			out = append(out, mem.Name)
		}
	}
	return out
}

// Ring builds a consistent-hash ring over the alive members.
func (m *Membership) Ring(vnodes int) *Ring {
	r := NewRing(vnodes)
	for _, name := range m.Alive() {
		r.Add(name)
	}
	return r
}

// AddrOf returns the gossip address of a member, or "" if unknown.
func (m *Membership) AddrOf(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if name == m.cfg.Name {
		return m.self.Addr
	}
	if p, ok := m.peers[name]; ok {
		return p.Addr
	}
	return ""
}

// snapshot returns the wire view of the table (self included).
func (m *Membership) snapshot() GossipMsg {
	m.mu.Lock()
	defer m.mu.Unlock()
	msg := GossipMsg{From: m.cfg.Name}
	msg.Members = append(msg.Members, m.self.Member)
	for _, p := range m.peers {
		msg.Members = append(msg.Members, p.Member)
	}
	sort.Slice(msg.Members, func(i, j int) bool { return msg.Members[i].Name < msg.Members[j].Name })
	return msg
}

// Merge folds a remote view into the local table. Rules, per member:
//
//   - news about self: a claim of suspicion/death at our incarnation or
//     higher is refuted by bumping our incarnation past it (we are, after
//     all, demonstrably running this code).
//   - unknown members are adopted as heard.
//   - otherwise the higher incarnation wins outright; at equal incarnation
//     the more severe state wins.
//
// Members adopted as alive get a fresh lastSeen so the failure detector
// starts their suspicion window now, not at the epoch.
func (m *Membership) Merge(remote []Member) {
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.updateGaugesLocked()
	for _, r := range remote {
		if r.Name == m.cfg.Name {
			if r.State != StateAlive && r.Incarnation >= m.self.Incarnation {
				m.self.Incarnation = r.Incarnation + 1
				m.self.State = StateAlive
			}
			continue
		}
		p, known := m.peers[r.Name]
		if !known {
			e := &memberEntry{Member: r, lastSeen: now}
			m.peers[r.Name] = e
			continue
		}
		if r.Incarnation > p.Incarnation ||
			(r.Incarnation == p.Incarnation && severity(r.State) > severity(p.State)) {
			wasAlive := p.State == StateAlive
			p.Member = r
			if r.State == StateAlive && !wasAlive {
				p.lastSeen = now
			}
		}
		if r.Addr != "" {
			p.Addr = r.Addr
		}
	}
}

// observed marks a peer as directly heard from now.
func (m *Membership) observed(name string) {
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.updateGaugesLocked()
	if p, ok := m.peers[name]; ok {
		p.lastSeen = now
		if p.State != StateAlive {
			// Direct contact trumps rumour: the peer is reachable, so adopt
			// a fresh view of it at a bumped incarnation (it will gossip its
			// own refutation too).
			p.State = StateAlive
			p.Incarnation++
		}
	}
}

// Sweep runs the failure detector: peers silent past SuspectAfter become
// suspect, past DeadAfter dead. It returns the names whose state changed.
func (m *Membership) Sweep() []string {
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.updateGaugesLocked()
	var changed []string
	for name, p := range m.peers {
		silent := now.Sub(p.lastSeen)
		switch {
		case p.State == StateAlive && silent > m.cfg.DeadAfter:
			p.State = StateDead
			changed = append(changed, name)
		case p.State == StateAlive && silent > m.cfg.SuspectAfter:
			p.State = StateSuspect
			changed = append(changed, name)
		case p.State == StateSuspect && silent > m.cfg.DeadAfter:
			p.State = StateDead
			changed = append(changed, name)
		}
	}
	sort.Strings(changed)
	return changed
}

// Handler returns the HTTP handler for POST /v1/gossip: merge the sender's
// view, answer with ours. Mount it on the arbiter's mux (the sharded server
// does this automatically).
func (m *Membership) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		var msg GossipMsg
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		m.Merge(msg.Members)
		if msg.From != "" {
			m.observed(msg.From)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.snapshot())
	})
}

// exchange gossips with the peer at addr: push our table, merge the reply.
func (m *Membership) exchange(ctx context.Context, name, addr string) (err error) {
	defer func() {
		if err != nil {
			m.tel.exchangeErr.Inc()
		} else {
			m.tel.exchangeOK.Inc()
		}
	}()
	body, err := json.Marshal(m.snapshot())
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/gossip", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: gossip with %s returned %d", addr, resp.StatusCode)
	}
	var reply GossipMsg
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return err
	}
	m.Merge(reply.Members)
	if name != "" {
		m.observed(name)
	} else if reply.From != "" {
		m.observed(reply.From)
	}
	return nil
}

// Join introduces this member to the group via any existing member's
// address.
func (m *Membership) Join(ctx context.Context, addr string) error {
	if err := m.exchange(ctx, "", addr); err != nil {
		return fmt.Errorf("shard: joining via %s: %w", addr, err)
	}
	return nil
}

// Tick runs one heartbeat round: sweep the failure detector, then gossip
// with the next alive peer in round-robin order (dead peers are skipped; a
// failed exchange simply leaves the peer to the suspicion timeouts).
func (m *Membership) Tick(ctx context.Context) {
	m.Sweep()

	m.mu.Lock()
	var candidates []memberEntry
	for _, p := range m.peers {
		if p.State != StateDead {
			candidates = append(candidates, *p)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Name < candidates[j].Name })
	if len(candidates) == 0 {
		m.mu.Unlock()
		return
	}
	pick := candidates[m.next%len(candidates)]
	m.next++
	m.mu.Unlock()

	_ = m.exchange(ctx, pick.Name, pick.Addr)
}

// Run ticks at the configured heartbeat interval until ctx is cancelled.
func (m *Membership) Run(ctx context.Context) {
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.Tick(ctx)
		}
	}
}
