// Package shard partitions a Themis deployment across arbiter shards: a
// consistent-hash ring maps every app to its home shard, Split carves the
// cluster topology into per-shard capacity partitions, and Membership keeps
// a lightweight HTTP gossip/heartbeat protocol (with configurable suspicion
// timeouts) so arbiterd processes discover each other and agree on the ring.
//
// The package is deliberately self-contained — plain data structures plus
// net/http — so both the in-process sharded arbiter (arbiterd -shards) and
// the multi-process deployment (arbiterd -join) build on the same pieces.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring points per member when a Ring is
// built with vnodes <= 0. More points smooth the key distribution; 64 keeps
// the per-member imbalance under ~15% for small member counts.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring with virtual nodes. The app→shard mapping
// depends only on the member set and the vnode count — never on insertion
// order — so every process that knows the same membership computes the same
// routing. Ring is a value-style structure: not safe for concurrent mutation,
// cheap to rebuild from a membership snapshot.
type Ring struct {
	vnodes  int
	members map[string]bool
	points  []ringPoint // sorted by (hash, owner)
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing returns an empty ring with the given virtual-node count per member
// (<= 0 uses DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hash64 is the ring's point and key hash: FNV-1a finished with a
// splitmix64-style avalanche. Raw FNV clusters badly on the short,
// near-identical strings ring points are made of ("shard-0#17"), which
// skews key ownership several-fold; the mixer spreads those clusters over
// the whole ring. Pure function of the string, so every process agrees.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member; re-adding is a no-op.
func (r *Ring) Add(member string) {
	if member == "" || r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", member, v)), owner: member})
	}
	r.sortPoints()
}

// Remove deletes a member; removing an unknown member is a no-op. Only the
// keys the member owned remap (to their next point clockwise) — everything
// else keeps its owner, the property that makes membership churn cheap.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.owner != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].owner < r.points[j].owner
	})
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Lookup returns the member owning key: the owner of the first ring point at
// or after the key's hash, wrapping around. An empty ring returns "".
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}
