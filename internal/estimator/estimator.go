// Package estimator reproduces the profiling machinery the Themis Agent uses
// to prepare bids (§5.2, §7): it synthesises per-trial loss curves, fits
// sub-/super-linear convergence curves to the observed prefix of a curve,
// projects the iterations remaining to reach a target loss (the tuners'
// "work left" input), and injects controlled error into bid valuations for
// the Figure 11 sensitivity study.
package estimator

import (
	"fmt"
	"math"
	"math/rand"

	"themis/internal/workload"
)

// LossCurve is a synthetic convergence curve: loss as a function of SGD
// iteration. Curves follow the shifted power law
//
//	loss(i) = Floor + (Init − Floor) · (1 + i/Scale)^(−Alpha)
//
// which covers both sub-linear (Alpha < 1) and super-linear-looking
// (Alpha > 1) convergence, the two families the paper's profiler fits.
type LossCurve struct {
	Init  float64 // loss at iteration 0
	Floor float64 // asymptotic loss
	Scale float64 // iterations over which loss decays appreciably
	Alpha float64 // decay exponent
}

// CurveForJob derives a deterministic loss curve for a trial from its seed
// and latent quality: better (lower-quality-value) trials converge to lower
// floors and decay faster, so tuners that watch loss curves will keep them.
func CurveForJob(j *workload.Job) LossCurve {
	rng := rand.New(rand.NewSource(j.Seed))
	return LossCurve{
		Init:  2.0 + rng.Float64()*1.0,
		Floor: 0.05 + j.Quality*0.8,
		Scale: 40 + rng.Float64()*160,
		Alpha: 0.6 + (1-j.Quality)*0.9 + rng.Float64()*0.2,
	}
}

// Loss returns the loss at iteration i (i ≥ 0).
func (c LossCurve) Loss(i int) float64 {
	if i < 0 {
		i = 0
	}
	return c.Floor + (c.Init-c.Floor)*math.Pow(1+float64(i)/c.Scale, -c.Alpha)
}

// IterationsToLoss returns the first iteration at which the curve reaches
// target, or max if it never does within max iterations.
func (c LossCurve) IterationsToLoss(target float64, max int) int {
	if target >= c.Init {
		return 0
	}
	if target <= c.Floor {
		return max
	}
	// Invert the power law analytically.
	ratio := (target - c.Floor) / (c.Init - c.Floor)
	i := c.Scale * (math.Pow(ratio, -1/c.Alpha) - 1)
	if i < 0 {
		return 0
	}
	if i > float64(max) {
		return max
	}
	return int(math.Ceil(i))
}

// Sample returns the losses observed at the given iterations, with optional
// multiplicative observation noise of relative magnitude noise (e.g. 0.01
// for ±1%), deterministic under seed.
func (c LossCurve) Sample(iters []int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, len(iters))
	for k, i := range iters {
		l := c.Loss(i)
		if noise > 0 {
			l *= 1 + (rng.Float64()*2-1)*noise
		}
		out[k] = l
	}
	return out
}

// Fit is a fitted convergence curve together with the fit's goodness.
type Fit struct {
	Curve LossCurve
	// RMSE is the root-mean-square error of the fit over the observations.
	RMSE float64
	// Points is the number of observations used.
	Points int
}

// FitCurve fits a shifted power law to observed (iteration, loss) pairs by a
// coarse-to-fine grid search over (Floor, Alpha, Scale) minimising squared
// error, mirroring the best-fit sub-linear/super-linear curve fitting the
// paper's profiler performs on TensorFlow loss logs. At least three points
// are required.
func FitCurve(iters []int, losses []float64) (Fit, error) {
	if len(iters) != len(losses) {
		return Fit{}, fmt.Errorf("estimator: %d iterations but %d losses", len(iters), len(losses))
	}
	if len(iters) < 3 {
		return Fit{}, fmt.Errorf("estimator: need at least 3 observations, got %d", len(iters))
	}
	init := losses[0]
	minLoss := losses[0]
	for _, l := range losses {
		if l < minLoss {
			minLoss = l
		}
	}
	best := Fit{RMSE: math.Inf(1)}
	// Grid search: floors below the minimum observed loss, a range of decay
	// exponents and scales. The grid is deliberately small — bid preparation
	// must stay in the low-millisecond range (§8.3.2).
	for _, floorFrac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		floor := minLoss * floorFrac
		for _, alpha := range []float64{0.4, 0.6, 0.8, 1.0, 1.3, 1.6, 2.0} {
			for _, scale := range []float64{20, 50, 100, 200, 400, 800} {
				c := LossCurve{Init: init, Floor: floor, Scale: scale, Alpha: alpha}
				rmse := rmse(c, iters, losses)
				if rmse < best.RMSE {
					best = Fit{Curve: c, RMSE: rmse, Points: len(iters)}
				}
			}
		}
	}
	return best, nil
}

func rmse(c LossCurve, iters []int, losses []float64) float64 {
	var sum float64
	for k, i := range iters {
		d := c.Loss(i) - losses[k]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(iters)))
}

// ProjectRemainingIterations estimates, from a fitted curve, how many more
// iterations a trial needs to reach the target loss given it has already run
// done iterations. The projection is capped at maxIterations (beyond which
// tuners classify a trial as poor).
func (f Fit) ProjectRemainingIterations(done int, targetLoss float64, maxIterations int) int {
	total := f.Curve.IterationsToLoss(targetLoss, maxIterations)
	if total <= done {
		return 0
	}
	return total - done
}

// WorkEstimate converts a remaining-iteration projection into serial
// GPU-minutes using the trial's declared per-iteration cost.
func WorkEstimate(j *workload.Job, remainingIterations int) float64 {
	if j.TotalIterations <= 0 {
		return j.RemainingWork()
	}
	perIter := j.TotalWork / float64(j.TotalIterations)
	return perIter * float64(remainingIterations)
}

// ErrorModel perturbs bid valuations to study Themis's robustness to
// mis-estimated ρ (Figure 11). A Theta of 0.1 means each valuation is
// multiplied by a factor drawn uniformly from [0.9, 1.1].
type ErrorModel struct {
	// Theta is the maximum relative error magnitude; 0 disables perturbation.
	Theta float64
	rng   *rand.Rand
}

// NewErrorModel returns an error model with the given magnitude and seed.
func NewErrorModel(theta float64, seed int64) *ErrorModel {
	if theta < 0 {
		theta = 0
	}
	return &ErrorModel{Theta: theta, rng: rand.New(rand.NewSource(seed))}
}

// Perturb returns v multiplied by a uniform factor in [1−Theta, 1+Theta].
// A nil model or zero Theta returns v unchanged.
func (e *ErrorModel) Perturb(v float64) float64 {
	if e == nil || e.Theta == 0 {
		return v
	}
	return v * (1 + (e.rng.Float64()*2-1)*e.Theta)
}
