package estimator

import (
	"math"
	"testing"
	"testing/quick"

	"themis/internal/workload"
)

func TestLossCurveMonotone(t *testing.T) {
	c := LossCurve{Init: 2.5, Floor: 0.2, Scale: 100, Alpha: 0.9}
	prev := math.Inf(1)
	for i := 0; i <= 2000; i += 50 {
		l := c.Loss(i)
		if l > prev+1e-12 {
			t.Fatalf("loss increased at iteration %d: %v > %v", i, l, prev)
		}
		if l < c.Floor-1e-12 {
			t.Fatalf("loss %v fell below floor %v", l, c.Floor)
		}
		prev = l
	}
	if got := c.Loss(-5); got != c.Loss(0) {
		t.Errorf("negative iteration should clamp to 0")
	}
}

func TestIterationsToLoss(t *testing.T) {
	c := LossCurve{Init: 2.0, Floor: 0.1, Scale: 100, Alpha: 1.0}
	if got := c.IterationsToLoss(2.5, 10000); got != 0 {
		t.Errorf("target above init should need 0 iterations, got %d", got)
	}
	if got := c.IterationsToLoss(0.05, 10000); got != 10000 {
		t.Errorf("unreachable target should return max, got %d", got)
	}
	iters := c.IterationsToLoss(0.5, 100000)
	// Verify by evaluating.
	if c.Loss(iters) > 0.5+1e-6 {
		t.Errorf("loss at projected iteration %d is %v, above target", iters, c.Loss(iters))
	}
	if iters > 0 && c.Loss(iters-1) < 0.5-1e-6 {
		t.Errorf("projection %d not tight: loss(%d)=%v already below target", iters, iters-1, c.Loss(iters-1))
	}
}

func TestCurveForJobQualityOrdering(t *testing.T) {
	good := workload.NewJob("a", 0, 100, 4)
	good.Quality, good.Seed = 0.05, 42
	bad := workload.NewJob("a", 1, 100, 4)
	bad.Quality, bad.Seed = 0.95, 43
	cg, cb := CurveForJob(good), CurveForJob(bad)
	if cg.Floor >= cb.Floor {
		t.Errorf("better trial should reach a lower floor: %v vs %v", cg.Floor, cb.Floor)
	}
	// Deterministic under the same seed.
	if CurveForJob(good) != cg {
		t.Error("CurveForJob not deterministic")
	}
}

func TestFitCurveRecoversProjection(t *testing.T) {
	truth := LossCurve{Init: 2.2, Floor: 0.3, Scale: 120, Alpha: 0.9}
	iters := []int{0, 10, 20, 40, 80, 120, 160, 200}
	losses := truth.Sample(iters, 0.005, 99)
	fit, err := FitCurve(iters, losses)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSE > 0.08 {
		t.Errorf("fit RMSE too high: %v", fit.RMSE)
	}
	target := truth.Loss(600)
	trueRemaining := truth.IterationsToLoss(target, 5000) - 200
	fitRemaining := fit.ProjectRemainingIterations(200, target, 5000)
	if trueRemaining <= 0 {
		t.Fatalf("bad test setup: trueRemaining=%d", trueRemaining)
	}
	ratio := float64(fitRemaining) / float64(trueRemaining)
	if ratio < 0.3 || ratio > 3.0 {
		t.Errorf("projected remaining %d too far from true %d", fitRemaining, trueRemaining)
	}
}

func TestFitCurveErrors(t *testing.T) {
	if _, err := FitCurve([]int{1, 2}, []float64{1, 0.5}); err == nil {
		t.Error("fit with <3 points should fail")
	}
	if _, err := FitCurve([]int{1, 2, 3}, []float64{1, 0.5}); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestWorkEstimate(t *testing.T) {
	j := workload.NewJob("a", 0, 500, 4)
	j.TotalIterations = 1000
	if got := WorkEstimate(j, 200); math.Abs(got-100) > 1e-9 {
		t.Errorf("WorkEstimate = %v, want 100", got)
	}
	j.TotalIterations = 0
	if got := WorkEstimate(j, 200); got != j.RemainingWork() {
		t.Errorf("WorkEstimate with no iteration info should fall back to remaining work")
	}
}

func TestErrorModel(t *testing.T) {
	if got := (*ErrorModel)(nil).Perturb(3.0); got != 3.0 {
		t.Errorf("nil model should be identity, got %v", got)
	}
	if got := NewErrorModel(0, 1).Perturb(3.0); got != 3.0 {
		t.Errorf("zero theta should be identity, got %v", got)
	}
	m := NewErrorModel(0.2, 5)
	f := func(v float64) bool {
		v = math.Abs(v)
		if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
		p := m.Perturb(v)
		return p >= v*0.8-1e-12 && p <= v*1.2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Negative theta clamps to zero.
	if NewErrorModel(-1, 1).Theta != 0 {
		t.Error("negative theta should clamp to 0")
	}
}

func TestSampleDeterministic(t *testing.T) {
	c := LossCurve{Init: 2, Floor: 0.2, Scale: 50, Alpha: 1}
	a := c.Sample([]int{0, 10, 20}, 0.05, 7)
	b := c.Sample([]int{0, 10, 20}, 0.05, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sample not deterministic under same seed")
		}
	}
}
