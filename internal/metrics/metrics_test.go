package metrics

import (
	"context"
	"math"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/sim"
	"themis/internal/workload"
)

func TestJainsIndex(t *testing.T) {
	if got := JainsIndex(nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if got := JainsIndex([]float64{3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal values = %v, want 1", got)
	}
	// One app hogging everything: index tends to 1/n.
	got := JainsIndex([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("skewed = %v, want 0.25", got)
	}
	if got := JainsIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero = %v, want 1", got)
	}
	mixed := JainsIndex([]float64{1, 2, 3, 4})
	if mixed <= 0.25 || mixed >= 1 {
		t.Errorf("mixed = %v, want strictly between 1/n and 1", mixed)
	}
}

func TestStatHelpers(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if got := Mean(vals); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Max(vals); got != 4 {
		t.Errorf("Max = %v", got)
	}
	if got := Percentile(vals, 0.5); got != 2 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(vals, 1.0); got != 4 {
		t.Errorf("P100 = %v", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Percentile(nil, 0.5) != 0 {
		t.Error("empty inputs should return 0")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 10)
	if len(c.Values) != 10 {
		t.Fatalf("CDF has %d points", len(c.Values))
	}
	if c.Values[9] != 10 || c.Fractions[9] != 1 {
		t.Errorf("CDF tail = (%v,%v)", c.Values[9], c.Fractions[9])
	}
	if got := c.At(5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("At(5) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	empty := NewCDF(nil, 5)
	if len(empty.Values) != 0 || empty.At(3) != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestIdealMaxFairness(t *testing.T) {
	if got := IdealMaxFairness(4.76); got != 4.76 {
		t.Errorf("IdealMaxFairness(4.76) = %v", got)
	}
	if got := IdealMaxFairness(0.5); got != 1 {
		t.Errorf("under-contended cluster should have ideal 1, got %v", got)
	}
}

// fullPolicy grants every app its full demand immediately (test helper).
type fullPolicy struct{}

func (fullPolicy) Name() string { return "full-test" }
func (fullPolicy) Allocate(now float64, free cluster.Alloc, view *sim.View) (map[workload.AppID]cluster.Alloc, error) {
	out := make(map[workload.AppID]cluster.Alloc)
	remaining := free.Clone()
	for _, st := range view.Apps {
		want := st.UnmetDemand()
		if want == 0 || remaining.Total() == 0 {
			continue
		}
		alloc := placement.Pick(view.Topo, remaining, st.Held, want)
		out[st.App.ID] = alloc
		remaining, _ = remaining.Sub(alloc)
	}
	return out, nil
}

func TestSummarizeOnSimulation(t *testing.T) {
	topo, err := cluster.Config{
		MachineSpecs: []cluster.MachineSpec{{Count: 4, GPUs: 4, SlotSize: 2}},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	var apps []*workload.App
	for i := 0; i < 3; i++ {
		j := workload.NewJob(workload.AppID(string(rune('a'+i))), 0, 100, 4)
		apps = append(apps, workload.NewApp(workload.AppID(string(rune('a'+i))), float64(i*5), placement.ResNet50, []*workload.Job{j}))
	}
	s, err := sim.New(sim.Config{Topology: topo, Apps: apps, Policy: fullPolicy{}, LeaseDuration: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(res)
	if sum.Policy != "full-test" {
		t.Errorf("Policy = %q", sum.Policy)
	}
	if sum.AppsFinished != 3 || sum.AppsTotal != 3 {
		t.Errorf("finished %d/%d", sum.AppsFinished, sum.AppsTotal)
	}
	if sum.MaxFairness < sum.MedianFairness || sum.MedianFairness < sum.MinFairness {
		t.Errorf("fairness ordering violated: %+v", sum)
	}
	if sum.JainsIndex <= 0 || sum.JainsIndex > 1 {
		t.Errorf("Jain's index = %v", sum.JainsIndex)
	}
	if sum.GPUTime < 300-1 {
		t.Errorf("GPU time = %v, want ≥ ~300", sum.GPUTime)
	}
	if sum.MeanPlacementScore <= 0 {
		t.Errorf("placement score = %v", sum.MeanPlacementScore)
	}
	times, gpus := TimelineSeries(res, apps[0].ID)
	if len(times) != len(gpus) || len(times) < 2 {
		t.Errorf("timeline series malformed: %v %v", times, gpus)
	}
}
