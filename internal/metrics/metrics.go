// Package metrics computes the evaluation metrics the paper reports (§8.1):
// worst-case ("max") finish-time fairness, Jain's fairness index over ρ,
// placement-score distributions, app-completion-time distributions and GPU
// time, all derived from a simulation Result.
//
// This package is about the *scheduling outcome* of a finished simulation.
// Operational metrics of a *running deployment* — auction round timings, RPC
// latencies, gossip health, served on /metrics — are internal/telemetry's
// job; the two share no code because they answer different questions
// ("was the schedule fair?" vs "is the daemon healthy right now?").
package metrics

import (
	"math"
	"sort"

	"themis/internal/sim"
	"themis/internal/workload"
)

// FairnessValues extracts the realised finish-time fairness (ρ) of every
// finished app in the result.
func FairnessValues(r *sim.Result) []float64 {
	var out []float64
	for _, rec := range r.Finished() {
		out = append(out, rec.FinishTimeFairness)
	}
	return out
}

// MaxFairness returns the worst (largest) finish-time fairness across
// finished apps — the paper's "Max Fairness" metric. Lower is fairer.
func MaxFairness(r *sim.Result) float64 {
	return Max(FairnessValues(r))
}

// MedianFairness returns the median ρ across finished apps.
func MedianFairness(r *sim.Result) float64 {
	return Percentile(FairnessValues(r), 0.5)
}

// MinFairness returns the best (smallest) ρ across finished apps.
func MinFairness(r *sim.Result) float64 {
	vals := FairnessValues(r)
	if len(vals) == 0 {
		return 0
	}
	min := vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// JainsIndex computes Jain's fairness index over the per-app ρ values:
// (Σx)² / (n·Σx²). It is 1 when all apps have identical ρ and approaches
// 1/n as the distribution becomes maximally skewed.
func JainsIndex(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return (sum * sum) / (float64(len(values)) * sumSq)
}

// JainsIndexOf computes Jain's index over the result's finished-app ρ values.
func JainsIndexOf(r *sim.Result) float64 { return JainsIndex(FairnessValues(r)) }

// CompletionTimes returns the completion times (minutes) of finished apps.
func CompletionTimes(r *sim.Result) []float64 {
	var out []float64
	for _, rec := range r.Finished() {
		out = append(out, rec.CompletionTime)
	}
	return out
}

// MeanCompletionTime returns the average app completion time of finished apps.
func MeanCompletionTime(r *sim.Result) float64 { return Mean(CompletionTimes(r)) }

// PlacementScores returns the time-weighted average placement score of every
// app that held GPUs during the run.
func PlacementScores(r *sim.Result) []float64 {
	var out []float64
	for _, rec := range r.Apps {
		if rec.PlacementScore > 0 {
			out = append(out, rec.PlacementScore)
		}
	}
	return out
}

// GPUTime returns the cluster's total GPU time (GPU-minutes in use) — the
// paper's efficiency metric; for the same workload, a scheduler with lower
// GPU time used the cluster more efficiently.
func GPUTime(r *sim.Result) float64 { return r.ClusterGPUTime }

// IdealMaxFairness returns the ρ an ideal scheduler would achieve at the
// observed peak contention: with contention c (demand / capacity), every app
// can at best get a 1/c share, so ρ_ideal ≈ c (the paper reports 4.76 for
// its testbed workload).
func IdealMaxFairness(peakContention float64) float64 {
	if peakContention < 1 {
		return 1
	}
	return peakContention
}

// CDF is an empirical cumulative distribution: Values[i] is the largest
// value within the bottom Fractions[i] of the distribution.
type CDF struct {
	Values    []float64
	Fractions []float64
}

// NewCDF builds an empirical CDF over values with the given number of
// points. It returns an empty CDF for empty input.
func NewCDF(values []float64, points int) CDF {
	if len(values) == 0 || points <= 0 {
		return CDF{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	cdf := CDF{Values: make([]float64, points), Fractions: make([]float64, points)}
	for i := 0; i < points; i++ {
		q := float64(i+1) / float64(points)
		cdf.Values[i] = Percentile(sorted, q)
		cdf.Fractions[i] = q
	}
	return cdf
}

// At returns the fraction of values ≤ x.
func (c CDF) At(x float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	frac := 0.0
	for i, v := range c.Values {
		if v <= x {
			frac = c.Fractions[i]
		}
	}
	return frac
}

// Mean returns the arithmetic mean of values (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Max returns the maximum of values (0 for empty input).
func Max(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	max := values[0]
	for _, v := range values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the q-quantile (0 < q ≤ 1) of values; the input need
// not be sorted.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary condenses one simulation run into the headline numbers the
// comparison figures plot.
type Summary struct {
	Policy             string
	AppsFinished       int
	AppsTotal          int
	MaxFairness        float64
	MedianFairness     float64
	MinFairness        float64
	JainsIndex         float64
	MeanCompletionTime float64
	P95CompletionTime  float64
	MeanPlacementScore float64
	GPUTime            float64
	PeakContention     float64
	Makespan           float64
}

// Summarize computes a Summary from a simulation result.
func Summarize(r *sim.Result) Summary {
	return Summary{
		Policy:             r.Policy,
		AppsFinished:       len(r.Finished()),
		AppsTotal:          len(r.Apps),
		MaxFairness:        MaxFairness(r),
		MedianFairness:     MedianFairness(r),
		MinFairness:        MinFairness(r),
		JainsIndex:         JainsIndexOf(r),
		MeanCompletionTime: MeanCompletionTime(r),
		P95CompletionTime:  Percentile(CompletionTimes(r), 0.95),
		MeanPlacementScore: Mean(PlacementScores(r)),
		GPUTime:            GPUTime(r),
		PeakContention:     r.PeakContention,
		Makespan:           r.Makespan,
	}
}

// TimelineSeries converts an app's allocation timeline into step-series
// points (time, GPUs) suitable for plotting Figure 8.
func TimelineSeries(r *sim.Result, id workload.AppID) (times []float64, gpus []int) {
	for _, e := range r.TimelineFor(id) {
		times = append(times, e.Time)
		gpus = append(gpus, e.GPUs)
	}
	return times, gpus
}
