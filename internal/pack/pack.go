// Package pack implements the deterministic pack-to-empty placement engine
// over the hierarchical topology: gang requests fill one fabric domain
// before spilling into the next, cross-domain cuts are taken only when no
// single domain fits, and all choices are resolved by explicit sort orders
// so identical inputs always produce identical plans.
//
// The heuristic follows the jobtree M2 design: among domains that fit a
// request, choose the one with the least residual free capacity (best fit —
// it empties fastest and keeps large domains whole for large gangs),
// preferring domains the requester already occupies; when no domain fits,
// spill across domains by descending free capacity to minimise the number
// of cuts. Within a domain, machines fill by descending free count then
// ascending ID, packing the gang onto as few machines as possible.
package pack

import (
	"sort"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/topology"
)

// Request asks the engine for GPUs on behalf of one job.
type Request struct {
	// GPUs is the gang size wanted.
	GPUs int
	// Anchor is the requester's existing allocation; the engine prefers
	// extending it in place.
	Anchor cluster.Alloc
	// Constraint carries the job's placement constraints (per-machine floor,
	// machine cap, domain/flavor affinity). The engine never returns an
	// allocation that, combined with Anchor, violates it.
	Constraint placement.Constraint
}

// Plan is the engine's answer to a Request.
type Plan struct {
	// Alloc is the GPUs to add; it may hold fewer than requested (possibly
	// zero) when capacity or constraints do not admit more.
	Alloc cluster.Alloc
	// Granted is Alloc.Total(), for convenience.
	Granted int
	// Domains is the number of fabric domains Alloc+Anchor spans.
	Domains int
	// Locality classifies Alloc+Anchor on the topology.
	Locality cluster.Locality
}

// Engine is a deterministic pack-to-empty placer bound to one topology tree.
// It is stateless beyond the immutable tree, so one Engine is safe for
// concurrent use.
type Engine struct {
	tree *topology.Tree
}

// New returns an Engine packing onto tree.
func New(tree *topology.Tree) *Engine { return &Engine{tree: tree} }

// Tree returns the topology tree the engine packs onto.
func (e *Engine) Tree() *topology.Tree { return e.tree }

// Pack produces the placement plan for req given the current free vector.
func (e *Engine) Pack(free cluster.Alloc, req Request) Plan {
	alloc := e.Place(free, req.Anchor, req.GPUs, req.Constraint)
	topo := e.tree.Topology()
	combined := alloc.Add(req.Anchor)
	domains := make(map[cluster.DomainID]bool)
	for _, m := range combined.Machines() {
		domains[topo.Domain(m)] = true
	}
	return Plan{
		Alloc:    alloc,
		Granted:  alloc.Total(),
		Domains:  len(domains),
		Locality: cluster.LocalityOf(topo, combined),
	}
}

// Place selects up to want GPUs from free for a job anchored at anchor under
// constraint c, implementing the sim.Packer contract. The result never
// exceeds free, never violates c when combined with anchor, and is fully
// determined by its inputs.
func (e *Engine) Place(free cluster.Alloc, anchor cluster.Alloc, want int, c placement.Constraint) cluster.Alloc {
	topo := e.tree.Topology()
	picked := cluster.NewAlloc()
	if want <= 0 {
		return picked
	}
	minPer := c.MinGPUsPerMachine
	if minPer < 1 {
		minPer = 1
	}

	// Eligible free capacity under the constraint's domain/flavor affinity.
	eligible := cluster.NewAlloc()
	for m, n := range free {
		if n > 0 && c.Admits(topo, m) {
			eligible[m] = n
		}
	}

	need := want
	spreadLeft := -1 // machines the plan may still add; -1 = unbounded
	if c.MaxMachines > 0 {
		spreadLeft = c.MaxMachines - len(anchor.Machines())
		if spreadLeft < 0 {
			spreadLeft = 0
		}
	}
	take := func(m cluster.MachineID) {
		if need <= 0 {
			return
		}
		n := eligible[m]
		if n <= 0 {
			return
		}
		if n > need {
			n = need
		}
		base := anchor[m] + picked[m]
		if base+n < minPer {
			return // would leave the machine under the per-machine floor
		}
		if base == 0 {
			if spreadLeft == 0 {
				return // a fresh machine would exceed the spread cap
			}
			if spreadLeft > 0 {
				spreadLeft--
			}
		}
		picked[m] += n
		eligible[m] -= n
		need -= n
	}

	// Step 1: extend the anchor in place — its machines first (largest share
	// first), then the remaining machines of domains it already occupies, so
	// a growing gang stays inside its fabric.
	if anchor.Total() > 0 {
		for _, m := range sortedByShare(anchor) {
			take(m)
		}
		if need > 0 {
			anchorDomains := make(map[cluster.DomainID]bool)
			for _, m := range anchor.Machines() {
				anchorDomains[topo.Domain(m)] = true
			}
			for _, m := range machinesByFree(eligible) {
				if anchorDomains[topo.Domain(m)] {
					take(m)
				}
			}
		}
		if need == 0 {
			return picked
		}
	}

	// Free capacity per domain, over what remains eligible.
	domainFree := make(map[cluster.DomainID]int)
	for m, n := range eligible {
		if n > 0 {
			domainFree[topo.Domain(m)] += n
		}
	}
	domains := make([]cluster.DomainID, 0, len(domainFree))
	for d := range domainFree {
		domains = append(domains, d)
	}

	// Step 2: pack to empty — among domains that fit the remaining need
	// whole, pick the one with the least residual free capacity (ties by
	// lowest ID), so small holes fill first and large domains stay whole.
	var fitting []cluster.DomainID
	for _, d := range domains {
		if domainFree[d] >= need {
			fitting = append(fitting, d)
		}
	}
	if len(fitting) > 0 {
		sort.Slice(fitting, func(i, j int) bool {
			if domainFree[fitting[i]] != domainFree[fitting[j]] {
				return domainFree[fitting[i]] < domainFree[fitting[j]]
			}
			return fitting[i] < fitting[j]
		})
		for _, d := range fitting {
			fillDomain(topo, d, eligible, take)
			if need == 0 {
				return picked
			}
			// Constraints (floor/cap) may have blocked the fit; try the next
			// fitting domain before falling through to the spill.
		}
	}

	// Step 3: no single domain fits — spill across domains by descending
	// free capacity (ties by lowest ID) to minimise the number of cuts.
	sort.Slice(domains, func(i, j int) bool {
		if domainFree[domains[i]] != domainFree[domains[j]] {
			return domainFree[domains[i]] > domainFree[domains[j]]
		}
		return domains[i] < domains[j]
	})
	for _, d := range domains {
		fillDomain(topo, d, eligible, take)
		if need == 0 {
			return picked
		}
	}
	return picked
}

// fillDomain feeds the domain's machines to take in descending-free,
// ascending-ID order.
func fillDomain(topo *cluster.Topology, d cluster.DomainID, eligible cluster.Alloc, take func(cluster.MachineID)) {
	for _, m := range machinesByFree(eligible) {
		if topo.Domain(m) == d {
			take(m)
		}
	}
}

// sortedByShare returns alloc's machines by descending GPU count then
// ascending ID.
func sortedByShare(alloc cluster.Alloc) []cluster.MachineID {
	ids := alloc.Machines()
	sort.Slice(ids, func(i, j int) bool {
		if alloc[ids[i]] != alloc[ids[j]] {
			return alloc[ids[i]] > alloc[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// machinesByFree returns the machines with free GPUs by descending free
// count then ascending ID.
func machinesByFree(free cluster.Alloc) []cluster.MachineID {
	ids := free.Machines()
	sort.Slice(ids, func(i, j int) bool {
		if free[ids[i]] != free[ids[j]] {
			return free[ids[i]] > free[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
