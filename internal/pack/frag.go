package pack

import (
	"sort"

	"themis/internal/cluster"
	"themis/internal/topology"
)

// Bucket is one bar of a residual-capacity histogram: Count units of the
// level (machines, racks or domains) currently hold exactly Residual free
// GPUs.
type Bucket struct {
	Residual int
	Count    int
}

// Histogram is the residual-capacity distribution at one topology level,
// buckets sorted by ascending residual.
type Histogram struct {
	Level   string // "machine", "rack" or "domain"
	Buckets []Bucket
}

// Fragmentation summarises how the free capacity of a cluster is scattered
// across the hierarchy. A perfectly defragmented cluster concentrates all
// free GPUs in few machines of one domain; a fragmented one strands them in
// small per-machine residuals no gang can use.
type Fragmentation struct {
	// FreeGPUs is the total free capacity the histograms describe.
	FreeGPUs int
	// LargestMachineBlock is the largest free GPU count on any one machine —
	// the biggest gang placeable at machine locality.
	LargestMachineBlock int
	// LargestDomainBlock is the largest free GPU count within any one fabric
	// domain — the biggest gang placeable without a cross-domain cut.
	LargestDomainBlock int
	// Score is 1 − LargestMachineBlock/FreeGPUs: the fraction of free
	// capacity a machine-local gang cannot reach. 0 means all free GPUs sit
	// on one machine (or the cluster is fully busy); values near 1 mean the
	// free capacity is dust.
	Score float64
	// Levels holds the per-level residual histograms (machine, rack,
	// domain), units with zero residual included.
	Levels []Histogram
}

// Analyze computes the fragmentation of a free vector over the tree.
func Analyze(tree *topology.Tree, free cluster.Alloc) Fragmentation {
	topo := tree.Topology()

	machineFree := make([]int, topo.NumMachines())
	for m, n := range free {
		if n > 0 {
			machineFree[m] = n
		}
	}
	rackFree := tree.FreeByRack(free)
	domainFree := tree.FreeByDomain(free)

	f := Fragmentation{
		Levels: []Histogram{
			histogram("machine", machineFree),
			histogram("rack", intsOfRackMap(rackFree)),
			histogram("domain", intsOfDomainMap(domainFree)),
		},
	}
	for _, n := range machineFree {
		f.FreeGPUs += n
		if n > f.LargestMachineBlock {
			f.LargestMachineBlock = n
		}
	}
	for _, n := range domainFree {
		if n > f.LargestDomainBlock {
			f.LargestDomainBlock = n
		}
	}
	if f.FreeGPUs > 0 {
		f.Score = 1 - float64(f.LargestMachineBlock)/float64(f.FreeGPUs)
	}
	return f
}

func histogram(level string, residuals []int) Histogram {
	counts := make(map[int]int)
	for _, r := range residuals {
		counts[r]++
	}
	buckets := make([]Bucket, 0, len(counts))
	for r, c := range counts {
		buckets = append(buckets, Bucket{Residual: r, Count: c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Residual < buckets[j].Residual })
	return Histogram{Level: level, Buckets: buckets}
}

func intsOfRackMap(m map[cluster.RackID]int) []int {
	keys := make([]cluster.RackID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func intsOfDomainMap(m map[cluster.DomainID]int) []int {
	keys := make([]cluster.DomainID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
