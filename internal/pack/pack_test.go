package pack

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"strings"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden placement plans")

// buildFabric builds a test fleet of one rack per fabric domain, with the
// given machine count per domain and 4 GPUs (slot 2) per machine.
func buildFabric(t testing.TB, domainSizes ...int) *topology.Tree {
	t.Helper()
	var domains []topology.DomainSpec
	for i, n := range domainSizes {
		domains = append(domains, topology.DomainSpec{
			Name: fmt.Sprintf("pod-%d", i),
			Racks: []topology.RackSpec{{
				Machines: []topology.MachineGroup{{Count: n, GPUs: 4, SlotSize: 2, Flavor: cluster.GPUTypeP100}},
			}},
		})
	}
	tree, err := topology.Spec{
		Name:    "fabric",
		Regions: []topology.RegionSpec{{Name: "r0", Domains: domains}},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func fullyFree(tree *topology.Tree) cluster.Alloc {
	free := cluster.NewAlloc()
	for _, m := range tree.Topology().Machines() {
		free[m.ID] = m.NumGPUs
	}
	return free
}

func TestPackPrefersLeastResidualFittingDomain(t *testing.T) {
	tree := buildFabric(t, 4, 3, 2) // capacities 16, 12, 8
	e := New(tree)
	// 6 GPUs fit in every domain; the 8-GPU domain 2 has least residual.
	plan := e.Pack(fullyFree(tree), Request{GPUs: 6})
	if plan.Granted != 6 || plan.Domains != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	for _, m := range plan.Alloc.Machines() {
		if tree.Topology().Domain(m) != 2 {
			t.Errorf("expected pack into domain 2 (least residual): %v", plan.Alloc)
		}
	}
}

func TestPackNoCutWhenDomainFits(t *testing.T) {
	tree := buildFabric(t, 4, 3, 2)
	e := New(tree)
	// Drain domain 2 entirely and domain 1 partially; an 8-GPU gang still
	// fits whole in domain 0 and must not be cut.
	free := fullyFree(tree)
	delete(free, 7) // domain 2
	delete(free, 8)
	free[4] = 1 // domain 1 mostly busy
	plan := e.Pack(free, Request{GPUs: 8})
	if plan.Granted != 8 {
		t.Fatalf("granted %d, want 8", plan.Granted)
	}
	if plan.Domains != 1 {
		t.Errorf("gang cut across %d domains despite a fitting domain: %v", plan.Domains, plan.Alloc)
	}
}

func TestPackSpillsByDescendingCapacity(t *testing.T) {
	tree := buildFabric(t, 4, 3, 2) // 16 + 12 + 8 GPUs
	e := New(tree)
	// 20 GPUs fit in no single domain: expect domain 0 filled whole (16)
	// and the rest from domain 1, leaving domain 2 untouched — two cuts,
	// not three.
	plan := e.Pack(fullyFree(tree), Request{GPUs: 20})
	if plan.Granted != 20 {
		t.Fatalf("granted %d, want 20", plan.Granted)
	}
	if plan.Domains != 2 {
		t.Errorf("spill spans %d domains, want 2: %v", plan.Domains, plan.Alloc)
	}
	for _, m := range plan.Alloc.Machines() {
		if tree.Topology().Domain(m) == 2 {
			t.Errorf("smallest domain should stay empty: %v", plan.Alloc)
		}
	}
}

func TestPackExtendsAnchorInPlace(t *testing.T) {
	tree := buildFabric(t, 4, 3, 2)
	e := New(tree)
	free := fullyFree(tree)
	anchor := cluster.Alloc{4: 2} // domain 1
	free[4] = 2
	plan := e.Pack(free, Request{GPUs: 4, Anchor: anchor})
	if plan.Granted != 4 {
		t.Fatalf("granted %d, want 4", plan.Granted)
	}
	for _, m := range plan.Alloc.Machines() {
		if tree.Topology().Domain(m) != 1 {
			t.Errorf("extension left the anchor's domain: %v", plan.Alloc)
		}
	}
	if plan.Alloc[4] != 2 {
		t.Errorf("anchor machine should fill first: %v", plan.Alloc)
	}
}

func TestPackHonorsConstraints(t *testing.T) {
	tree := buildFabric(t, 4, 3, 2)
	e := New(tree)
	free := fullyFree(tree)
	free[0] = 1 // a 1-GPU hole the floor must skip

	c := placement.Constraint{MinGPUsPerMachine: 2}
	alloc := e.Place(free, cluster.NewAlloc(), 9, c)
	if !placement.Satisfies(tree.Topology(), alloc, c) {
		t.Errorf("floor violated: %v", alloc)
	}

	c = placement.Constraint{Domain: 1, HasDomain: true}
	alloc = e.Place(free, cluster.NewAlloc(), 20, c)
	for _, m := range alloc.Machines() {
		if tree.Topology().Domain(m) != 1 {
			t.Errorf("domain affinity violated: %v", alloc)
		}
	}
	if alloc.Total() != 12 {
		t.Errorf("domain 1 holds 12 GPUs, granted %d", alloc.Total())
	}

	c = placement.Constraint{MaxMachines: 2}
	alloc = e.Place(free, cluster.NewAlloc(), 12, c)
	if len(alloc.Machines()) > 2 {
		t.Errorf("machine cap violated: %v", alloc)
	}
}

// TestPackDeterministic asserts the engine is a pure function of its inputs
// under map-iteration shuffling: free vectors built in random insertion
// orders (and re-run many times so Go's randomised map iteration varies)
// always produce identical plans.
func TestPackDeterministic(t *testing.T) {
	tree := buildFabric(t, 4, 3, 2)
	e := New(tree)
	rng := rand.New(rand.NewSource(42))
	topo := tree.Topology()
	for trial := 0; trial < 50; trial++ {
		// random free vector
		ids := make([]cluster.MachineID, topo.NumMachines())
		for i := range ids {
			ids[i] = cluster.MachineID(i)
		}
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		free := cluster.NewAlloc()
		for _, id := range ids {
			if n := rng.Intn(topo.Machine(id).NumGPUs + 1); n > 0 {
				free[id] = n
			}
		}
		anchor := cluster.NewAlloc()
		if trial%3 == 0 && free.Total() > 0 {
			m := free.Machines()[0]
			anchor[m] = 1
		}
		want := 1 + rng.Intn(12)
		c := placement.Constraint{}
		if trial%4 == 0 {
			c.MinGPUsPerMachine = 2
		}
		first := e.Place(free.Clone(), anchor.Clone(), want, c)
		for rep := 0; rep < 5; rep++ {
			// rebuild the maps in a fresh random order
			shuffled := cluster.NewAlloc()
			perm := rng.Perm(len(ids))
			for _, k := range perm {
				if n, ok := free[ids[k]]; ok {
					shuffled[ids[k]] = n
				}
			}
			got := e.Place(shuffled, anchor.Clone(), want, c)
			if !got.Equal(first) {
				t.Fatalf("trial %d rep %d: nondeterministic plan:\n  first %v\n  got   %v\n  free %v want %d", trial, rep, first, got, free, want)
			}
		}
	}
}

// TestPackConservation asserts the engine never invents capacity: the plan
// fits within free, never exceeds the request, and grants the full request
// whenever enough unconstrained capacity exists.
func TestPackConservation(t *testing.T) {
	tree := buildFabric(t, 4, 3, 2)
	e := New(tree)
	rng := rand.New(rand.NewSource(99))
	topo := tree.Topology()
	for trial := 0; trial < 200; trial++ {
		free := cluster.NewAlloc()
		for i := 0; i < topo.NumMachines(); i++ {
			if n := rng.Intn(topo.Machine(cluster.MachineID(i)).NumGPUs + 1); n > 0 {
				free[cluster.MachineID(i)] = n
			}
		}
		want := rng.Intn(40)
		got := e.Place(free, cluster.NewAlloc(), want, placement.Constraint{})
		if got.Total() > want {
			t.Fatalf("granted %d > requested %d", got.Total(), want)
		}
		for m, n := range got {
			if n > free[m] {
				t.Fatalf("machine %d: granted %d > free %d", m, n, free[m])
			}
			if n < 0 {
				t.Fatalf("machine %d: negative grant %d", m, n)
			}
		}
		expect := want
		if free.Total() < want {
			expect = free.Total()
		}
		if got.Total() != expect {
			t.Fatalf("granted %d, want %d (free %d, requested %d)", got.Total(), expect, free.Total(), want)
		}
	}
}

func TestAnalyzeFragmentation(t *testing.T) {
	tree := buildFabric(t, 2, 1) // 8 + 4 GPUs
	free := cluster.Alloc{0: 1, 1: 3, 2: 4}
	f := Analyze(tree, free)
	if f.FreeGPUs != 8 {
		t.Errorf("FreeGPUs = %d, want 8", f.FreeGPUs)
	}
	if f.LargestMachineBlock != 4 {
		t.Errorf("LargestMachineBlock = %d, want 4", f.LargestMachineBlock)
	}
	if f.LargestDomainBlock != 4 {
		t.Errorf("LargestDomainBlock = %d, want 4", f.LargestDomainBlock)
	}
	if got := 1 - 4.0/8.0; f.Score != got {
		t.Errorf("Score = %v, want %v", f.Score, got)
	}
	if len(f.Levels) != 3 {
		t.Fatalf("Levels = %v", f.Levels)
	}
	machine := f.Levels[0]
	if machine.Level != "machine" || len(machine.Buckets) != 3 {
		t.Errorf("machine histogram = %+v", machine)
	}
	// machine residuals: 1, 3, 4 → three buckets of count 1
	for _, b := range machine.Buckets {
		if b.Count != 1 {
			t.Errorf("machine bucket %+v, want count 1", b)
		}
	}
	domain := f.Levels[2]
	if domain.Level != "domain" || len(domain.Buckets) != 1 || domain.Buckets[0].Residual != 4 || domain.Buckets[0].Count != 2 {
		t.Errorf("domain histogram = %+v", domain)
	}
}

func TestAnalyzeEmptyFree(t *testing.T) {
	tree := buildFabric(t, 2)
	f := Analyze(tree, cluster.NewAlloc())
	if f.FreeGPUs != 0 || f.Score != 0 || f.LargestMachineBlock != 0 {
		t.Errorf("busy-cluster fragmentation = %+v", f)
	}
}

// TestGoldenPlans pins the engine's plans on the paper's sim and testbed
// topologies: a fixed scripted sequence of requests drains each cluster and
// the resulting plans are compared line-for-line against a snapshot.
// Regenerate deliberately with:
//
//	go test -run TestGoldenPlans -update ./internal/pack/
func TestGoldenPlans(t *testing.T) {
	cases := []struct {
		name string
		tree *topology.Tree
	}{
		{"sim", topology.Lift(cluster.SimulationCluster())},
		{"testbed", topology.Lift(cluster.TestbedCluster())},
		{"fabric", buildFabric(t, 4, 3, 2)},
	}
	requests := []Request{
		{GPUs: 8},
		{GPUs: 4, Constraint: placement.Constraint{MinGPUsPerMachine: 2}},
		{GPUs: 16},
		{GPUs: 2, Constraint: placement.Constraint{MaxMachines: 1}},
		{GPUs: 12},
		{GPUs: 1},
		{GPUs: 6, Constraint: placement.Constraint{MinGPUsPerMachine: 2, MaxMachines: 3}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e := New(c.tree)
			free := fullyFree(c.tree)
			var b strings.Builder
			for i, req := range requests {
				plan := e.Pack(free, req)
				var err error
				free, err = free.Sub(plan.Alloc)
				if err != nil {
					t.Fatalf("request %d: plan exceeds free: %v", i, err)
				}
				fmt.Fprintf(&b, "req %d want %d: granted=%d domains=%d locality=%s alloc=%s\n",
					i, req.GPUs, plan.Granted, plan.Domains, plan.Locality, plan.Alloc.String())
			}
			got := b.String()
			path := filepath.Join("testdata", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("plans diverge from golden %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

func BenchmarkPackSimCluster(b *testing.B) {
	tree := topology.Lift(cluster.SimulationCluster())
	e := New(tree)
	free := fullyFree(tree)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Place(free, cluster.NewAlloc(), 16, placement.Constraint{})
	}
}

func BenchmarkPackConstrained(b *testing.B) {
	tree := topology.Lift(cluster.SimulationCluster())
	e := New(tree)
	free := fullyFree(tree)
	c := placement.Constraint{MinGPUsPerMachine: 2, MaxMachines: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Place(free, cluster.NewAlloc(), 16, c)
	}
}

func BenchmarkAnalyzeFragmentation(b *testing.B) {
	tree := topology.Lift(cluster.SimulationCluster())
	free := fullyFree(tree)
	delete(free, 3)
	free[10] = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(tree, free)
	}
}
