package rpc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/telemetry"
)

// AgentServer exposes one app's Agent over HTTP: the Arbiter probes it for ρ
// (POST /v1/rho), requests bids (POST /v1/bid) and delivers allocations
// (POST /v1/allocation). GET /v1/health reports liveness.
type AgentServer struct {
	agent *core.Agent

	mu      sync.Mutex
	current cluster.Alloc
	expiry  float64
}

// NewAgentServer wraps an Agent for serving.
func NewAgentServer(agent *core.Agent) *AgentServer {
	return &AgentServer{agent: agent, current: cluster.NewAlloc()}
}

// Current returns the allocation the Agent currently believes it holds.
func (s *AgentServer) Current() cluster.Alloc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current.Clone()
}

// Handler returns the HTTP handler implementing the Agent protocol. Protocol
// endpoints carry per-endpoint latency and status-class metrics; /metrics and
// /healthz serve the same operational surface as the arbiter daemons.
func (s *AgentServer) Handler() http.Handler {
	reg := telemetry.Default()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/health", telemetry.Instrument(reg, "/v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok", "app": string(s.agent.ID())})
	}))
	mux.HandleFunc("/v1/rho", telemetry.Instrument(reg, "/v1/rho", s.handleRho))
	mux.HandleFunc("/v1/bid", telemetry.Instrument(reg, "/v1/bid", s.handleBid))
	mux.HandleFunc("/v1/allocation", telemetry.Instrument(reg, "/v1/allocation", s.handleAllocation))
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.Handle("/healthz", telemetry.HealthzHandler())
	return mux
}

func (s *AgentServer) handleRho(w http.ResponseWriter, r *http.Request) {
	var req RhoRequest
	if !readJSON(w, r, &req) {
		return
	}
	current, err := req.Current.ToAlloc()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if len(req.Current) == 0 {
		current = s.current.Clone()
	} else {
		s.current = current.Clone()
	}
	s.mu.Unlock()
	rho := s.agent.ReportRho(req.Now, current)
	writeJSON(w, RhoResponse{App: string(s.agent.ID()), Rho: rho})
}

func (s *AgentServer) handleBid(w http.ResponseWriter, r *http.Request) {
	var req BidRequest
	if !readJSON(w, r, &req) {
		return
	}
	offer, err := req.Offer.ToAlloc()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	current, err := req.Current.ToAlloc()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if len(req.Current) == 0 {
		current = s.current.Clone()
	}
	s.mu.Unlock()
	bid := s.agent.PrepareBid(req.Now, offer, current)
	writeJSON(w, FromBidTable(bid))
}

func (s *AgentServer) handleAllocation(w http.ResponseWriter, r *http.Request) {
	var msg AllocationMsg
	if !readJSON(w, r, &msg) {
		return
	}
	alloc, err := msg.Alloc.ToAlloc()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.current = alloc
	s.expiry = msg.LeaseExpiry
	s.mu.Unlock()
	writeJSON(w, map[string]bool{"ok": true})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response is already partially written; nothing more to do.
		return
	}
}

// readJSON decodes the request body into v, writing an error response and
// returning false on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
