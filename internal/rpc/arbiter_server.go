package rpc

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/workload"
)

// RemoteBidder adapts a registered remote Agent to the Arbiter's Bidder
// interface: every call becomes an HTTP request to the agent daemon. A
// failing or unreachable agent degrades gracefully — it reports an
// out-of-auction ρ and an empty bid, so one dead agent never blocks the
// cluster's auctions.
type RemoteBidder struct {
	AppID   workload.AppID
	Client  *AgentClient
	Demand  int
	Gang    int
	Timeout time.Duration
}

// ID implements core.Bidder.
func (r *RemoteBidder) ID() workload.AppID { return r.AppID }

func (r *RemoteBidder) ctx() (context.Context, context.CancelFunc) {
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return context.WithTimeout(context.Background(), timeout)
}

// ReportRho implements core.Bidder over HTTP.
func (r *RemoteBidder) ReportRho(now float64, current cluster.Alloc) float64 {
	ctx, cancel := r.ctx()
	defer cancel()
	rho, err := r.Client.ProbeRho(ctx, now, current)
	if err != nil || rho <= 0 {
		// An unreachable app cannot use GPUs right now: report it as
		// perfectly satisfied so it never wins an auction it cannot consume.
		return 1
	}
	return rho
}

// PrepareBid implements core.Bidder over HTTP.
func (r *RemoteBidder) PrepareBid(now float64, offer, current cluster.Alloc) core.BidTable {
	ctx, cancel := r.ctx()
	defer cancel()
	bid, err := r.Client.RequestBid(ctx, now, offer, current)
	if err != nil || len(bid.Entries) == 0 {
		return core.BidTable{App: r.AppID, Entries: []core.BidEntry{{Alloc: cluster.NewAlloc(), Rho: 1}}}
	}
	return bid
}

// UnmetParallelism implements core.Bidder using the registered demand.
func (r *RemoteBidder) UnmetParallelism(current cluster.Alloc) int {
	unmet := r.Demand - current.Total()
	if unmet < 0 {
		return 0
	}
	return unmet
}

// GangSize implements core.Bidder.
func (r *RemoteBidder) GangSize() int {
	if r.Gang <= 0 {
		return 1
	}
	return r.Gang
}

// ArbiterServer exposes a core.Arbiter over HTTP. Agents register themselves
// (POST /v1/register); an auction round over the currently free GPUs is
// triggered with POST /v1/auction (the arbiterd daemon does this
// periodically); GET /v1/status reports cluster state.
type ArbiterServer struct {
	arbiter *core.Arbiter
	topo    *cluster.Topology

	// Clock returns the current scheduling time in minutes; the default uses
	// wall-clock minutes since the server was created.
	Clock func() float64
	// AgentGang is the default leftover chunk size for registered agents
	// that do not state one.
	AgentGang int

	mu     sync.Mutex
	state  *cluster.State
	leases *core.LeaseTable
	agents map[workload.AppID]*RemoteBidder
}

// NewArbiterServer builds a server around an Arbiter and its topology.
func NewArbiterServer(arb *core.Arbiter) *ArbiterServer {
	start := time.Now()
	return &ArbiterServer{
		arbiter:   arb,
		topo:      arb.Topology(),
		Clock:     func() float64 { return time.Since(start).Minutes() },
		AgentGang: 4,
		state:     cluster.NewState(arb.Topology()),
		leases:    core.NewLeaseTable(),
		agents:    make(map[workload.AppID]*RemoteBidder),
	}
}

// Handler returns the HTTP handler implementing the Arbiter protocol.
func (s *ArbiterServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", s.handleRegister)
	mux.HandleFunc("/v1/auction", s.handleAuction)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *ArbiterServer) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.App == "" || req.Callback == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("register requires app and callback"))
		return
	}
	demand := req.MaxParallelism
	if demand <= 0 {
		demand = s.topo.TotalGPUs()
	}
	s.mu.Lock()
	s.agents[workload.AppID(req.App)] = &RemoteBidder{
		AppID:  workload.AppID(req.App),
		Client: NewAgentClient(req.Callback),
		Demand: demand,
		Gang:   s.AgentGang,
	}
	s.mu.Unlock()
	writeJSON(w, RegisterResponse{OK: true, LeaseMin: s.arbiter.Config().LeaseDuration})
}

func (s *ArbiterServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	held := make(map[string]int)
	for _, app := range s.state.Apps() {
		held[app] = s.state.Held(app).Total()
	}
	agents := make(map[string]struct{}, len(s.agents))
	for id := range s.agents {
		agents[string(id)] = struct{}{}
	}
	writeJSON(w, StatusResponse{
		Now:          s.Clock(),
		TotalGPUs:    s.topo.TotalGPUs(),
		FreeGPUs:     s.state.TotalFree(),
		Agents:       sortedKeys(agents),
		Held:         held,
		Auctions:     s.arbiter.Stats.Auctions,
		ActiveLeases: s.leases.Len(),
	})
}

// handleAuction runs one auction round: it reclaims expired leases, offers
// the free GPUs to the registered agents, applies the winning allocations
// and notifies every affected agent of its new total allocation.
func (s *ArbiterServer) handleAuction(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	now := s.Clock()
	resp, err := s.RunAuction(now)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, resp)
}

// RunAuction executes one auction round at the given scheduling time. It is
// exported so daemons and tests can drive auctions without HTTP.
func (s *ArbiterServer) RunAuction(now float64) (AuctionResponse, error) {
	s.mu.Lock()
	// Reclaim expired leases.
	changed := make(map[workload.AppID]bool)
	for _, l := range s.leases.Expired(now) {
		if err := s.state.Release(string(l.App), l.Alloc); err != nil {
			s.mu.Unlock()
			return AuctionResponse{}, fmt.Errorf("rpc: releasing expired lease for %s: %w", l.App, err)
		}
		changed[l.App] = true
	}
	free := s.state.FreeVector()
	states := make([]core.AgentState, 0, len(s.agents))
	for _, b := range s.agents {
		states = append(states, core.AgentState{Agent: b, Current: s.state.Held(string(b.AppID))})
	}
	s.mu.Unlock()

	resp := AuctionResponse{Now: now, Offered: free.Total(), Decisions: make(map[string]WireAlloc)}
	if free.Total() == 0 || len(states) == 0 {
		return resp, nil
	}
	decisions, err := s.arbiter.OfferResources(now, free, states)
	if err != nil {
		return AuctionResponse{}, err
	}

	s.mu.Lock()
	lease := s.arbiter.Config().LeaseDuration
	granted := make(map[workload.AppID]cluster.Alloc)
	for _, d := range decisions {
		if err := s.state.Grant(string(d.App), d.Alloc); err != nil {
			s.mu.Unlock()
			return AuctionResponse{}, fmt.Errorf("rpc: applying allocation for %s: %w", d.App, err)
		}
		s.leases.Grant(d.App, d.Alloc, now, lease)
		changed[d.App] = true
		granted[d.App] = granted[d.App].Add(d.Alloc)
	}
	for id, alloc := range granted {
		resp.Decisions[string(id)] = ToWireAlloc(alloc)
	}
	notify := make(map[workload.AppID]cluster.Alloc, len(changed))
	for id := range changed {
		notify[id] = s.state.Held(string(id))
	}
	clients := make(map[workload.AppID]*AgentClient, len(changed))
	for id := range changed {
		if b, ok := s.agents[id]; ok {
			clients[id] = b.Client
		}
	}
	s.mu.Unlock()

	// Deliver new totals to every agent whose allocation changed.
	for id, alloc := range notify {
		client, ok := clients[id]
		if !ok {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = client.DeliverAllocation(ctx, now, alloc, true, now+lease)
		cancel()
	}
	return resp, nil
}
