package rpc

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/placement"
	"themis/internal/shard"
	"themis/internal/telemetry"
	"themis/internal/workload"
)

// emptyCurrent is the shared "holds nothing" allocation handed to the Arbiter
// (and to bidder probes) for every agent without GPUs. It must never be
// written: all Bidder implementations and the Arbiter treat the current
// allocation as read-only input.
var emptyCurrent = cluster.NewAlloc()

// RemoteBidder adapts a registered remote Agent to the Arbiter's Bidder
// interface: every call becomes an HTTP request to the agent daemon. A
// failing or unreachable agent degrades gracefully — it reports an
// out-of-auction ρ and an empty bid, so one dead agent never blocks the
// cluster's auctions.
//
// A RemoteBidder is immutable after construction: re-registration installs a
// fresh bidder instead of mutating the old one, so an auction round holding a
// snapshot of the previous bidder never races with the replacement.
type RemoteBidder struct {
	AppID   workload.AppID
	Client  *AgentClient
	Demand  int
	Gang    int
	Timeout time.Duration
	// Map translates between this shard's local machine IDs and the global
	// cluster IDs the remote agent reasons about. Nil means the server's ID
	// space is already global (the unsharded deployment).
	Map *shard.Partition
}

// ID implements core.Bidder.
func (r *RemoteBidder) ID() workload.AppID { return r.AppID }

func (r *RemoteBidder) ctx() (context.Context, context.CancelFunc) {
	timeout := r.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return context.WithTimeout(context.Background(), timeout)
}

// toGlobal maps a shard-local allocation into the agent's global ID space.
func (r *RemoteBidder) toGlobal(a cluster.Alloc) cluster.Alloc {
	if r.Map == nil {
		return a
	}
	return r.Map.ToGlobal(a)
}

// ReportRho implements core.Bidder over HTTP.
func (r *RemoteBidder) ReportRho(now float64, current cluster.Alloc) float64 {
	ctx, cancel := r.ctx()
	defer cancel()
	rho, err := r.Client.ProbeRho(ctx, now, r.toGlobal(current))
	if err != nil || rho <= 0 {
		// An unreachable app cannot use GPUs right now: report it as
		// perfectly satisfied so it never wins an auction it cannot consume.
		return 1
	}
	return rho
}

// PrepareBid implements core.Bidder over HTTP. Offers cross the wire in
// global machine IDs; the returned bid is translated back into the shard's
// local space (entries naming machines outside the shard degrade to the
// empty bid, like an unreachable agent).
func (r *RemoteBidder) PrepareBid(now float64, offer, current cluster.Alloc) core.BidTable {
	ctx, cancel := r.ctx()
	defer cancel()
	empty := core.BidTable{App: r.AppID, Entries: []core.BidEntry{{Alloc: cluster.NewAlloc(), Rho: 1}}}
	bid, err := r.Client.RequestBid(ctx, now, r.toGlobal(offer), r.toGlobal(current))
	if err != nil || len(bid.Entries) == 0 {
		return empty
	}
	if r.Map != nil {
		for i, e := range bid.Entries {
			local, err := r.Map.FromGlobal(e.Alloc)
			if err != nil {
				return empty
			}
			bid.Entries[i].Alloc = local
		}
	}
	return bid
}

// UnmetParallelism implements core.Bidder using the registered demand.
func (r *RemoteBidder) UnmetParallelism(current cluster.Alloc) int {
	unmet := r.Demand - current.Total()
	if unmet < 0 {
		return 0
	}
	return unmet
}

// GangSize implements core.Bidder.
func (r *RemoteBidder) GangSize() int {
	if r.Gang <= 0 {
		return 1
	}
	return r.Gang
}

// registeredAgent is one app known to the arbiter: its Bidder plus the HTTP
// callback that receives allocation deliveries (nil for in-process bidders,
// which pull their allocation from auction responses instead). Entries are
// replaced wholesale on re-registration, never mutated, so auction snapshots
// can read them without holding the server's lock.
type registeredAgent struct {
	bidder core.Bidder
	notify *AgentClient
}

// ArbiterServer exposes a core.Arbiter over HTTP. Agents register themselves
// (POST /v1/register); an auction round over the currently free GPUs is
// triggered with POST /v1/auction (the arbiterd daemon does this
// periodically); GET /v1/status reports cluster state.
//
// Locking discipline: two mutexes with a strict order (auctionMu before mu).
//
//   - auctionMu serialises auction rounds end to end — reclaim, offer,
//     grant. The Arbiter's BidValuator scratch is single-auction state and
//     the free vector an auction offers must still be free when its grants
//     apply, so two rounds can never interleave. One auctionMu per shard is
//     exactly the "serialize auctions per shard" rule of the sharded
//     deployment; cross-shard rounds run concurrently because each shard has
//     its own Arbiter, state and auctionMu.
//   - mu guards the mutable registry and occupancy state (agents, state,
//     leases). It is held only for short map/state accesses and NEVER across
//     network calls (probes, bids, deliveries), so registration and status
//     stay responsive while a slow auction is in flight.
type ArbiterServer struct {
	arbiter *core.Arbiter
	topo    *cluster.Topology

	// shardLabel is the shard value on every metric series this server
	// records: "single" for an unsharded deployment, the shard index inside
	// a ShardedArbiterServer. tel holds the bound metric handles and ring
	// the last rounds' phase traces; both are installed by bindTelemetry
	// before any round can run.
	shardLabel string
	tel        *serverTelemetry
	ring       *telemetry.RoundRing

	// Clock returns the current scheduling time in minutes; the default uses
	// wall-clock minutes since the server was created.
	Clock func() float64
	// AgentGang is the default leftover chunk size for registered agents
	// that do not state one.
	AgentGang int
	// Part, when non-nil, is the capacity partition this server arbitrates
	// inside a sharded deployment; remote bidders registered here translate
	// offers and bids between the partition's local IDs and the global ones.
	Part *shard.Partition

	auctionMu sync.Mutex

	mu       sync.Mutex
	state    *cluster.State
	leases   *core.LeaseTable
	agents   map[workload.AppID]*registeredAgent
	auctions int // completed auction rounds; shadows arbiter.Stats.Auctions, readable under mu
}

// NewArbiterServer builds a server around an Arbiter and its topology.
func NewArbiterServer(arb *core.Arbiter) *ArbiterServer {
	s := newArbiterServerUnbound(arb)
	s.bindTelemetry("single")
	return s
}

// newArbiterServerUnbound builds the server without binding metric handles;
// the sharded constructor uses it so a shard never registers the "single"
// series it would immediately abandon.
func newArbiterServerUnbound(arb *core.Arbiter) *ArbiterServer {
	start := time.Now()
	s := &ArbiterServer{
		arbiter:   arb,
		topo:      arb.Topology(),
		Clock:     func() float64 { return time.Since(start).Minutes() },
		AgentGang: 4,
		state:     cluster.NewState(arb.Topology()),
		leases:    core.NewLeaseTable(),
		agents:    make(map[workload.AppID]*registeredAgent),
		ring:      telemetry.NewRoundRing(64),
	}
	return s
}

// bindTelemetry points the server's metric handles at the given shard label.
// NewArbiterServer binds "single"; the sharded constructor rebinds each shard
// to its index before any round runs (rebinding later would split series
// mid-flight).
func (s *ArbiterServer) bindTelemetry(shard string) {
	s.shardLabel = shard
	s.tel = newServerTelemetry(telemetry.Default(), shard)
}

// Arbiter returns the wrapped core Arbiter; experiments read its cumulative
// phase timing stats after a run.
func (s *ArbiterServer) Arbiter() *core.Arbiter { return s.arbiter }

// RoundTrace returns the ring holding the last auction rounds' phase traces;
// /debug/rounds serves it as JSON and arbiterd dumps it on SIGQUIT.
func (s *ArbiterServer) RoundTrace() *telemetry.RoundRing { return s.ring }

// Handler returns the HTTP handler implementing the Arbiter protocol. Every
// protocol endpoint is instrumented with per-endpoint latency and status-class
// counters; the handler additionally serves the operational surface —
// /metrics (Prometheus text), /healthz and /debug/rounds (round trace ring).
func (s *ArbiterServer) Handler() http.Handler {
	reg := telemetry.Default()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", telemetry.Instrument(reg, "/v1/register", s.handleRegister))
	mux.HandleFunc("/v1/auction", telemetry.Instrument(reg, "/v1/auction", s.handleAuction))
	mux.HandleFunc("/v1/status", telemetry.Instrument(reg, "/v1/status", s.handleStatus))
	mux.HandleFunc("/v1/health", telemetry.Instrument(reg, "/v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	}))
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.Handle("/healthz", telemetry.HealthzHandler())
	mux.Handle("/debug/rounds", telemetry.RoundsHandler(s.ring))
	return mux
}

// RegisterBidder registers (or re-registers) an in-process Bidder — the load
// harness's simulated agents and tests use this to drive auctions without
// HTTP callbacks. Held GPUs and running leases survive re-registration.
func (s *ArbiterServer) RegisterBidder(b core.Bidder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.agents[b.ID()] = &registeredAgent{bidder: b}
	s.tel.agents.Set(int64(len(s.agents)))
}

// register installs a remote agent from a wire request, returning whether an
// existing registration was updated. Re-registration replaces the callback
// and demand but leaves the app's held GPUs and leases untouched: an agent
// restarting (or moving hosts) keeps its allocation and simply starts
// receiving deliveries at the new address.
func (s *ArbiterServer) register(req RegisterRequest) (RegisterResponse, error) {
	if req.App == "" || req.Callback == "" {
		return RegisterResponse{}, fmt.Errorf("register requires app and callback")
	}
	demand := req.MaxParallelism
	if demand <= 0 {
		demand = s.topo.TotalGPUs()
	}
	id := workload.AppID(req.App)
	client := NewAgentClient(req.Callback)
	s.mu.Lock()
	_, updated := s.agents[id]
	s.agents[id] = &registeredAgent{
		bidder: &RemoteBidder{
			AppID:  id,
			Client: client,
			Demand: demand,
			Gang:   s.AgentGang,
			Map:    s.Part,
		},
		notify: client,
	}
	s.tel.agents.Set(int64(len(s.agents)))
	s.mu.Unlock()
	return RegisterResponse{OK: true, LeaseMin: s.arbiter.Config().LeaseDuration, Updated: updated}, nil
}

func (s *ArbiterServer) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req RegisterRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := s.register(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, resp)
}

func (s *ArbiterServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Status())
}

// Status reports the arbiter's view of its cluster (or capacity partition).
func (s *ArbiterServer) Status() StatusResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	held := make(map[string]int)
	for _, app := range s.state.Apps() {
		held[app] = s.state.Held(app).Total()
	}
	agents := make(map[string]struct{}, len(s.agents))
	for id := range s.agents {
		agents[string(id)] = struct{}{}
	}
	return StatusResponse{
		Now:          s.Clock(),
		TotalGPUs:    s.topo.TotalGPUs(),
		FreeGPUs:     s.state.TotalFree(),
		Agents:       sortedKeys(agents),
		Held:         held,
		Auctions:     s.auctions,
		ActiveLeases: s.leases.Len(),
	}
}

// FreeGPUs returns the number of currently unleased GPUs.
func (s *ArbiterServer) FreeGPUs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.TotalFree()
}

// HeldBy returns the allocation app currently holds on this arbiter's
// capacity, in the server's (shard-local) machine IDs.
func (s *ArbiterServer) HeldBy(app workload.AppID) cluster.Alloc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Held(string(app))
}

// HeldTotalBy returns how many GPUs app holds here without copying its
// allocation — the cheap form of HeldBy for sweeps over every registered
// agent, where almost all of them hold nothing.
func (s *ArbiterServer) HeldTotalBy(app workload.AppID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.HeldTotal(string(app))
}

// ValidateState checks the occupancy state's internal invariants; the
// concurrency regression tests call it after hammering the server.
func (s *ArbiterServer) ValidateState() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Validate()
}

// handleAuction runs one auction round: it reclaims expired leases, offers
// the free GPUs to the registered agents, applies the winning allocations
// and notifies every affected agent of its new total allocation.
func (s *ArbiterServer) handleAuction(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	now := s.Clock()
	resp, err := s.RunAuction(now)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, resp)
}

// RunAuction executes one auction round at the given scheduling time and
// delivers the changed allocations to the affected agents. It is exported so
// daemons and tests can drive auctions without HTTP. Rounds are serialised:
// a concurrent call blocks until the in-flight round has applied its grants.
func (s *ArbiterServer) RunAuction(now float64) (AuctionResponse, error) {
	resp, changed, err := s.auctionRound(now)
	if err != nil {
		return resp, err
	}
	s.notifyAgents(now, changed)
	return resp, nil
}

// auctionRound runs reclaim → offer → grant under auctionMu and returns the
// set of apps whose allocation changed. It does not notify agents — the
// caller (RunAuction, or the sharded arbiter after its reconciliation round)
// owns delivery.
func (s *ArbiterServer) auctionRound(now float64) (AuctionResponse, map[workload.AppID]bool, error) {
	// Serialise the whole round. OfferResources below runs outside mu (it
	// makes network calls to remote bidders) but must never run concurrently
	// with another round: the Arbiter's BidValuator scratch is per-auction
	// state, and the free vector offered here has to remain free until the
	// grants are applied.
	s.auctionMu.Lock()
	defer s.auctionMu.Unlock()

	start := time.Now()
	rd := telemetry.Round{Wall: start, Shard: s.shardLabel, Now: now}

	s.mu.Lock()
	// Reclaim expired leases.
	changed := make(map[workload.AppID]bool)
	for _, l := range s.leases.Expired(now) {
		if err := s.state.Release(string(l.App), l.Alloc); err != nil {
			s.mu.Unlock()
			s.tel.errors.Inc()
			return AuctionResponse{}, nil, fmt.Errorf("rpc: releasing expired lease for %s: %w", l.App, err)
		}
		changed[l.App] = true
	}
	free := s.state.FreeVector()
	states := make([]core.AgentState, 0, len(s.agents))
	for _, a := range s.agents {
		b := a.bidder
		// At scale almost every registered agent holds nothing; cloning a
		// fresh empty map per agent per round is pure garbage. The Arbiter
		// treats Current as read-only, so the holders-of-nothing all share
		// one canonical empty allocation.
		cur := emptyCurrent
		if s.state.HeldTotal(string(b.ID())) > 0 {
			cur = s.state.Held(string(b.ID()))
		}
		states = append(states, core.AgentState{Agent: b, Current: cur})
	}
	leases := s.leases.Len()
	s.mu.Unlock()
	rd.AddSpan("reclaim", 0, time.Since(start))
	rd.Agents = len(states)
	rd.Offered = free.Total()

	resp := AuctionResponse{Now: now, Offered: free.Total(), Decisions: make(map[string]WireAlloc)}
	if free.Total() == 0 || len(states) == 0 {
		// Nothing to auction is still a completed round: the rounds counter
		// and trace ring advance so a quiet cluster is visibly quiet rather
		// than silently unobserved.
		s.finishRound(&rd, start, leases, free.Total())
		return resp, changed, nil
	}
	offerStart := time.Since(start)
	decisions, err := s.arbiter.OfferResources(now, free, states)
	if err != nil {
		s.tel.errors.Inc()
		return AuctionResponse{}, nil, err
	}
	// The Arbiter's phase breakdown is stable here: rounds are serialised by
	// auctionMu, so LastRound still describes the call above.
	ph := s.arbiter.LastRound()
	rd.AddSpan("probe", offerStart, ph.Probe)
	rd.AddSpan("bid", offerStart+ph.Probe, ph.Bid)
	rd.AddSpan("solve", offerStart+ph.Probe+ph.Bid, ph.Solve)
	rd.AddSpan("leftover", offerStart+ph.Probe+ph.Bid+ph.Solve, ph.Leftover)
	rd.Winners = ph.Winners
	rd.Granted = ph.GrantedGPUs
	rd.Leftover = ph.LeftoverGPUs

	grantStart := time.Since(start)
	s.mu.Lock()
	s.auctions++
	lease := s.arbiter.Config().LeaseDuration
	granted := make(map[workload.AppID]cluster.Alloc)
	for _, d := range decisions {
		if err := s.state.Grant(string(d.App), d.Alloc); err != nil {
			s.mu.Unlock()
			s.tel.errors.Inc()
			return AuctionResponse{}, nil, fmt.Errorf("rpc: applying allocation for %s: %w", d.App, err)
		}
		s.leases.Grant(d.App, d.Alloc, now, lease)
		changed[d.App] = true
		granted[d.App] = granted[d.App].Add(d.Alloc)
	}
	leases = s.leases.Len()
	freeGPUs := s.state.TotalFree()
	s.mu.Unlock()
	rd.AddSpan("grant", grantStart, time.Since(start)-grantStart)
	for id, alloc := range granted {
		resp.Decisions[string(id)] = ToWireAlloc(alloc)
	}
	s.finishRound(&rd, start, leases, freeGPUs)
	return resp, changed, nil
}

// finishRound stamps the round's total duration and folds it into the metric
// handles and the trace ring. Called under auctionMu (never under mu), once
// per completed round — empty rounds included.
func (s *ArbiterServer) finishRound(rd *telemetry.Round, start time.Time, leases, freeGPUs int) {
	rd.Total = time.Since(start)
	lent, parked := s.arbiter.ValuationArenaStats()
	s.tel.record(rd, s.ring, leases, freeGPUs, lent, parked)
}

// reconcileGrant hands chunk free GPUs to app during the sharded
// reconciliation round, anchored placement-sensitively on whatever the app
// already holds here. It returns the granted allocation (empty when nothing
// fits) in the server's local machine IDs.
func (s *ArbiterServer) reconcileGrant(app workload.AppID, chunk int, now float64) (cluster.Alloc, error) {
	if chunk <= 0 {
		return cluster.NewAlloc(), nil
	}
	s.auctionMu.Lock()
	defer s.auctionMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	free := s.state.FreeVector()
	if free.Total() == 0 {
		return cluster.NewAlloc(), nil
	}
	pick := placement.Pick(s.topo, free, s.state.Held(string(app)), chunk)
	if pick.Total() == 0 {
		return pick, nil
	}
	if err := s.state.Grant(string(app), pick); err != nil {
		return nil, fmt.Errorf("rpc: reconciliation grant for %s: %w", app, err)
	}
	s.leases.Grant(app, pick, now, s.arbiter.Config().LeaseDuration)
	return pick, nil
}

// notifyAgents delivers each changed app's new total allocation to its
// callback. Clients and totals are snapshotted under mu; the HTTP calls run
// outside every lock.
func (s *ArbiterServer) notifyAgents(now float64, changed map[workload.AppID]bool) {
	if len(changed) == 0 {
		return
	}
	s.mu.Lock()
	lease := s.arbiter.Config().LeaseDuration
	notify := make(map[workload.AppID]cluster.Alloc, len(changed))
	clients := make(map[workload.AppID]*AgentClient, len(changed))
	for id := range changed {
		a, ok := s.agents[id]
		if !ok || a.notify == nil {
			continue
		}
		clients[id] = a.notify
		notify[id] = s.state.Held(string(id))
	}
	s.mu.Unlock()

	for id, alloc := range notify {
		if s.Part != nil {
			alloc = s.Part.ToGlobal(alloc)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = clients[id].DeliverAllocation(ctx, now, alloc, true, now+lease)
		cancel()
	}
}

// snapshotAgents returns the registered bidders; the sharded reconciliation
// round iterates them without holding this server's locks.
func (s *ArbiterServer) snapshotAgents() []core.Bidder {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]core.Bidder, 0, len(s.agents))
	for _, a := range s.agents {
		out = append(out, a.bidder)
	}
	return out
}

// notifyClient returns the HTTP callback registered for app, or nil.
func (s *ArbiterServer) notifyClient(app workload.AppID) *AgentClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.agents[app]; ok {
		return a.notify
	}
	return nil
}
