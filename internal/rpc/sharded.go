package rpc

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/shard"
	"themis/internal/telemetry"
	"themis/internal/workload"
)

// ShardedArbiterServer scales the Arbiter horizontally: the cluster topology
// is carved into N capacity partitions (shard.Split), each arbitrated by its
// own ArbiterServer with its own Arbiter, occupancy state and auction lock.
// A consistent-hash ring maps every app to its home shard, so registration
// and auction participation are deterministic functions of the app ID.
//
// One sharded auction round is:
//
//  1. Partial auction per shard — every shard runs reclaim → offer → grant
//     over its own partition, concurrently with its peers (each holds only
//     its own auctionMu).
//  2. Cross-shard reconciliation — leftover GPUs on any shard are re-offered
//     to the globally most-starved apps (highest ρ with unmet demand,
//     wherever homed), in gang-sized chunks, home shard first for locality.
//  3. Aggregated delivery — each changed app receives ONE allocation message
//     carrying its global total across shards, so per-shard views never
//     clobber each other on the agent.
//
// Because auction cost is superlinear in the number of participants (one
// solver pass per bidder for hidden payments), sharding buys more than
// concurrency: N shards of P/N participants do ~1/N² the work of one
// P-participant auction even on a single core. experiments.ShardedLoadStudy
// measures this.
type ShardedArbiterServer struct {
	topo *cluster.Topology
	ring *shard.Ring
	// shardIdx maps ring member names back to shard indexes.
	shardIdx map[string]int
	shards   []*ArbiterServer
	parts    []*shard.Partition

	// Clock returns the scheduling time in minutes; shards inherit it so the
	// whole deployment agrees on lease expiry.
	Clock func() float64
	// Membership, when set, is gossiped on /v1/gossip and reported by
	// /v1/shards; the arbiterd -join mode installs it.
	Membership *shard.Membership

	// tel holds the deployment-wide metric handles (shard-level series live
	// on each shard's own ArbiterServer); globalRing traces the coarse
	// phases of the last sharded rounds.
	tel        *shardedTelemetry
	globalRing *telemetry.RoundRing

	mu            sync.Mutex
	reconciled    int
	rounds        int
	reconcileTime time.Duration
}

// NewShardedArbiterServer partitions topo into n shards under cfg. Every
// shard gets its own core.Arbiter over its slice of the topology.
func NewShardedArbiterServer(topo *cluster.Topology, cfg core.Config, n int) (*ShardedArbiterServer, error) {
	if n < 1 {
		return nil, fmt.Errorf("rpc: shard count %d must be at least 1", n)
	}
	parts, err := shard.Split(topo, n)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	s := &ShardedArbiterServer{
		topo:       topo,
		ring:       shard.NewRing(shard.DefaultVirtualNodes),
		shardIdx:   make(map[string]int, n),
		Clock:      func() float64 { return time.Since(start).Minutes() },
		tel:        newShardedTelemetry(telemetry.Default()),
		globalRing: telemetry.NewRoundRing(64),
	}
	for i, p := range parts {
		arb, err := core.NewArbiter(p.Topo, cfg)
		if err != nil {
			return nil, fmt.Errorf("rpc: shard %d arbiter: %w", i, err)
		}
		srv := newArbiterServerUnbound(arb)
		srv.Part = p
		srv.Clock = func() float64 { return s.Clock() }
		srv.bindTelemetry(strconv.Itoa(i))
		s.shards = append(s.shards, srv)
		s.parts = append(s.parts, p)
		name := shardName(i)
		s.ring.Add(name)
		s.shardIdx[name] = i
	}
	return s, nil
}

func shardName(i int) string { return fmt.Sprintf("shard-%d", i) }

// NumShards returns the shard count.
func (s *ShardedArbiterServer) NumShards() int { return len(s.shards) }

// Shard returns the i'th shard's server (tests and the load harness drive
// shards directly through this).
func (s *ShardedArbiterServer) Shard(i int) *ArbiterServer { return s.shards[i] }

// HomeShard returns the shard index owning app on the consistent-hash ring.
func (s *ShardedArbiterServer) HomeShard(app string) int {
	return s.shardIdx[s.ring.Lookup(app)]
}

// RegisterBidder homes an in-process bidder on its ring shard. The bidder
// sees the shard's local machine IDs, which is transparent to bidders that
// reason about offers positionally (the usual case: ρ and bids depend on GPU
// counts and locality, not on which global IDs carry them).
func (s *ShardedArbiterServer) RegisterBidder(b core.Bidder) int {
	home := s.HomeShard(string(b.ID()))
	s.shards[home].RegisterBidder(b)
	return home
}

// Register routes a remote agent registration to its home shard.
func (s *ShardedArbiterServer) Register(req RegisterRequest) (RegisterResponse, error) {
	return s.shards[s.HomeShard(req.App)].register(req)
}

// HeldGlobal returns app's total allocation across every shard, in global
// machine IDs. Partitions are disjoint, so the merge is collision-free.
func (s *ShardedArbiterServer) HeldGlobal(app workload.AppID) cluster.Alloc {
	out := cluster.NewAlloc()
	for i, srv := range s.shards {
		held := srv.HeldBy(app)
		if held.Total() == 0 {
			continue
		}
		out = out.Add(s.parts[i].ToGlobal(held))
	}
	return out
}

// HeldTotalGlobal returns app's GPU count summed across every shard without
// materialising the merged allocation — the cheap form of HeldGlobal for
// whole-population accounting.
func (s *ShardedArbiterServer) HeldTotalGlobal(app workload.AppID) int {
	total := 0
	for _, srv := range s.shards {
		total += srv.HeldTotalBy(app)
	}
	return total
}

// ValidateState checks every shard's occupancy invariants.
func (s *ShardedArbiterServer) ValidateState() error {
	for i, srv := range s.shards {
		if err := srv.ValidateState(); err != nil {
			return fmt.Errorf("rpc: shard %d: %w", i, err)
		}
	}
	return nil
}

// RunAuction executes one sharded auction round at the given scheduling time:
// concurrent per-shard partial auctions, the cross-shard reconciliation
// round, then one aggregated delivery per changed app. The returned decisions
// are in global machine IDs.
func (s *ShardedArbiterServer) RunAuction(now float64) (AuctionResponse, error) {
	start := time.Now()
	rd := telemetry.Round{Wall: start, Shard: "all", Now: now}

	n := len(s.shards)
	resps := make([]AuctionResponse, n)
	changed := make([]map[workload.AppID]bool, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], changed[i], errs[i] = s.shards[i].auctionRound(now)
		}(i)
	}
	wg.Wait()
	rd.AddSpan("shards", 0, time.Since(start))
	for i, err := range errs {
		if err != nil {
			return AuctionResponse{}, fmt.Errorf("rpc: shard %d auction: %w", i, err)
		}
	}

	resp := AuctionResponse{Now: now, Decisions: make(map[string]WireAlloc)}
	granted := make(map[workload.AppID]cluster.Alloc)
	allChanged := make(map[workload.AppID]bool)
	for i, r := range resps {
		resp.Offered += r.Offered
		for app, wire := range r.Decisions {
			alloc, err := wire.ToAlloc()
			if err != nil {
				return AuctionResponse{}, fmt.Errorf("rpc: shard %d decision for %s: %w", i, app, err)
			}
			granted[workload.AppID(app)] = granted[workload.AppID(app)].Add(s.parts[i].ToGlobal(alloc))
		}
		for app := range changed[i] {
			allChanged[app] = true
		}
	}

	recStart := time.Since(start)
	reconciled, err := s.reconcile(now, allChanged)
	if err != nil {
		return AuctionResponse{}, err
	}
	recDur := time.Since(start) - recStart
	rd.AddSpan("reconcile", recStart, recDur)
	for app, alloc := range reconciled {
		granted[app] = granted[app].Add(alloc)
	}
	grantedGPUs := 0
	for app, alloc := range granted {
		resp.Decisions[string(app)] = ToWireAlloc(alloc)
		resp.Reconciled += reconciled[app].Total()
		grantedGPUs += alloc.Total()
	}

	s.mu.Lock()
	s.rounds++
	s.reconciled += resp.Reconciled
	s.reconcileTime += recDur
	s.mu.Unlock()

	delStart := time.Since(start)
	s.deliver(now, allChanged)
	delDur := time.Since(start) - delStart
	rd.AddSpan("deliver", delStart, delDur)

	rd.Total = time.Since(start)
	rd.Offered = resp.Offered
	rd.Granted = grantedGPUs
	rd.Reconciled = resp.Reconciled
	rd.Winners = len(resp.Decisions)
	s.tel.rounds.Inc()
	s.tel.reconciled.Add(uint64(resp.Reconciled))
	s.tel.roundDur.ObserveDuration(rd.Total)
	s.tel.shardsDur.ObserveDuration(rd.Spans()[0].Dur)
	s.tel.reconcileDur.ObserveDuration(recDur)
	s.tel.deliverDur.ObserveDuration(delDur)
	s.globalRing.Record(rd)
	return resp, nil
}

// RoundTrace returns the deployment-wide trace ring: one entry per sharded
// round with its coarse phases (shards, reconcile, deliver). The fine-grained
// per-shard phases live on each Shard(i).RoundTrace().
func (s *ShardedArbiterServer) RoundTrace() *telemetry.RoundRing { return s.globalRing }

// ReconcileStats reports the cumulative reconciliation telemetry: completed
// sharded rounds, leftover GPUs re-offered across shards, and the total time
// spent inside reconciliation rounds.
func (s *ShardedArbiterServer) ReconcileStats() (rounds, gpus int, spent time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds, s.reconciled, s.reconcileTime
}

// starvedApp is one reconciliation candidate: an app with demand its own
// shard could not satisfy this round.
type starvedApp struct {
	bidder core.Bidder
	home   int
	unmet  int
	rho    float64
}

// reconcile re-offers leftover GPUs across shards to the globally most
// starved apps. It returns each app's reconciliation grant in global IDs and
// marks granted apps changed. Starvation is measured lazily — apps are only
// re-probed for ρ when leftover GPUs actually exist — and globally: an app's
// unmet demand is discounted by whatever it already holds on other shards
// from earlier reconciliation rounds.
func (s *ShardedArbiterServer) reconcile(now float64, allChanged map[workload.AppID]bool) (map[workload.AppID]cluster.Alloc, error) {
	grants := make(map[workload.AppID]cluster.Alloc)
	leftover := make([]int, len(s.shards))
	total := 0
	for i, srv := range s.shards {
		leftover[i] = srv.FreeGPUs()
		total += leftover[i]
	}
	if total == 0 {
		return grants, nil
	}

	var cands []starvedApp
	for home, srv := range s.shards {
		for _, b := range srv.snapshotAgents() {
			// The sweep visits every registered agent, but almost all of them
			// have no unmet demand. Keep the common case map-free: probe held
			// totals (no copies), share the canonical empty allocation, and
			// only copy the local holding for the rare actual candidate.
			localHeld := emptyCurrent
			if srv.HeldTotalBy(b.ID()) > 0 {
				localHeld = srv.HeldBy(b.ID())
			}
			unmet := b.UnmetParallelism(localHeld)
			if unmet <= 0 {
				continue
			}
			// Discount demand already met on other shards by earlier
			// reconciliation rounds.
			for other, osrv := range s.shards {
				if other != home {
					unmet -= osrv.HeldTotalBy(b.ID())
				}
			}
			if unmet <= 0 {
				continue
			}
			cands = append(cands, starvedApp{
				bidder: b,
				home:   home,
				unmet:  unmet,
				rho:    b.ReportRho(now, localHeld),
			})
		}
	}
	// Most starved first; ties break on app ID for determinism.
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].rho != cands[j].rho {
			return cands[i].rho > cands[j].rho
		}
		return cands[i].bidder.ID() < cands[j].bidder.ID()
	})

	for _, c := range cands {
		gang := c.bidder.GangSize()
		if gang <= 0 {
			gang = 1
		}
		// Home shard first (any leftover there places next to what the app
		// holds), then the rest in index order.
		order := append([]int{c.home}, otherShards(len(s.shards), c.home)...)
		for _, si := range order {
			if c.unmet < gang {
				break
			}
			chunk := minInt(c.unmet, leftover[si])
			chunk -= chunk % gang
			if chunk == 0 {
				continue
			}
			got, err := s.shards[si].reconcileGrant(c.bidder.ID(), chunk, now)
			if err != nil {
				return nil, err
			}
			if got.Total() == 0 {
				continue
			}
			leftover[si] -= got.Total()
			c.unmet -= got.Total()
			grants[c.bidder.ID()] = grants[c.bidder.ID()].Add(s.parts[si].ToGlobal(got))
			allChanged[c.bidder.ID()] = true
		}
	}
	return grants, nil
}

func otherShards(n, home int) []int {
	out := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != home {
			out = append(out, i)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// deliver sends each changed app ONE allocation message carrying its global
// total across all shards. The callback is looked up on the app's home shard
// (the only shard remote agents register with).
func (s *ShardedArbiterServer) deliver(now float64, changed map[workload.AppID]bool) {
	if len(changed) == 0 {
		return
	}
	lease := s.shards[0].arbiter.Config().LeaseDuration
	for app := range changed {
		client := s.shards[s.HomeShard(string(app))].notifyClient(app)
		if client == nil {
			continue
		}
		alloc := s.HeldGlobal(app)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = client.DeliverAllocation(ctx, now, alloc, true, now+lease)
		cancel()
	}
}

// Status aggregates the shards into the same StatusResponse an unsharded
// arbiter reports, so operator tooling works unchanged.
func (s *ShardedArbiterServer) Status() StatusResponse {
	out := StatusResponse{Now: s.Clock(), Held: make(map[string]int)}
	agents := make(map[string]struct{})
	for _, srv := range s.shards {
		st := srv.Status()
		out.TotalGPUs += st.TotalGPUs
		out.FreeGPUs += st.FreeGPUs
		out.Auctions += st.Auctions
		out.ActiveLeases += st.ActiveLeases
		for _, a := range st.Agents {
			agents[a] = struct{}{}
		}
		for app, n := range st.Held {
			out.Held[app] += n
		}
	}
	out.Agents = sortedKeys(agents)
	return out
}

// ShardStatus reports the per-shard detail plus reconciliation telemetry and
// the gossip membership table when one is attached.
func (s *ShardedArbiterServer) ShardStatus() ShardStatusResponse {
	s.mu.Lock()
	out := ShardStatusResponse{Now: s.Clock(), Reconciled: s.reconciled, Rounds: s.rounds}
	s.mu.Unlock()
	for i, srv := range s.shards {
		st := srv.Status()
		out.Shards = append(out.Shards, ShardInfo{
			Index:        i,
			TotalGPUs:    st.TotalGPUs,
			FreeGPUs:     st.FreeGPUs,
			Agents:       st.Agents,
			ActiveLeases: st.ActiveLeases,
			Auctions:     st.Auctions,
		})
	}
	if s.Membership != nil {
		for _, m := range s.Membership.Members() {
			out.Members = append(out.Members, MemberInfo{
				Name: m.Name, Addr: m.Addr, State: string(m.State), Incarnation: m.Incarnation,
			})
		}
	}
	return out
}

// Handler serves the same protocol surface as an unsharded ArbiterServer —
// register, auction, status, health — plus /v1/shards for per-shard detail
// and /v1/gossip when membership is attached. Agents cannot tell whether
// they registered with a sharded arbiter.
func (s *ShardedArbiterServer) Handler() http.Handler {
	reg := telemetry.Default()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", telemetry.Instrument(reg, "/v1/register", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := s.Register(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, resp)
	}))
	mux.HandleFunc("/v1/auction", telemetry.Instrument(reg, "/v1/auction", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
			return
		}
		resp, err := s.RunAuction(s.Clock())
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, resp)
	}))
	mux.HandleFunc("/v1/status", telemetry.Instrument(reg, "/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Status())
	}))
	mux.HandleFunc("/v1/shards", telemetry.Instrument(reg, "/v1/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.ShardStatus())
	}))
	mux.HandleFunc("/v1/health", telemetry.Instrument(reg, "/v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	}))
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.Handle("/healthz", telemetry.HealthzHandler())
	mux.Handle("/debug/rounds", telemetry.RoundsHandler(s.globalRing))
	if s.Membership != nil {
		mux.Handle("/v1/gossip", s.Membership.Handler())
	}
	return mux
}
