package rpc

import (
	"themis/internal/telemetry"
)

// serverTelemetry bundles the metric handles one ArbiterServer records after
// every auction round. Handles are created once, when the server binds its
// shard label, so the per-round record path is pure atomic stores — it adds
// no allocations to the zero-alloc auction hot path.
//
// All series carry a shard label: "single" for an unsharded deployment,
// the shard index for shards of a ShardedArbiterServer. Registration is
// get-or-create on the process registry, so tests and load studies that
// build many servers share handles instead of growing the registry.
type serverTelemetry struct {
	rounds   *telemetry.Counter
	errors   *telemetry.Counter
	offered  *telemetry.Counter
	granted  *telemetry.Counter
	leftover *telemetry.Counter
	winners  *telemetry.Counter

	roundDur *telemetry.Histogram
	// phases maps round-trace span names (reclaim, probe, bid, solve,
	// leftover, grant) to their latency histograms. The map is immutable
	// after construction; per-round lookups take no lock.
	phases map[string]*telemetry.Histogram

	agents    *telemetry.Gauge
	leases    *telemetry.Gauge
	freeGPUs  *telemetry.Gauge
	arenaLent *telemetry.Gauge
	arenaFree *telemetry.Gauge
}

// roundPhaseNames are the span names an unsharded round can emit, in round
// order. The sharded round adds its own coarse spans (shards, reconcile,
// deliver) through shardedTelemetry.
var roundPhaseNames = []string{"reclaim", "probe", "bid", "solve", "leftover", "grant"}

func newServerTelemetry(reg *telemetry.Registry, shard string) *serverTelemetry {
	l := telemetry.L("shard", shard)
	t := &serverTelemetry{
		rounds:   reg.Counter("themis_auction_rounds_total", "Completed auction rounds, including rounds with nothing to offer.", l),
		errors:   reg.Counter("themis_auction_errors_total", "Auction rounds aborted by an error.", l),
		offered:  reg.Counter("themis_auction_gpus_offered_total", "GPUs offered across all auction rounds.", l),
		granted:  reg.Counter("themis_auction_gpus_granted_total", "GPUs granted across all auction rounds.", l),
		leftover: reg.Counter("themis_auction_gpus_leftover_total", "GPUs left unallocated by the winner-determination pass, before the leftover pass.", l),
		winners:  reg.Counter("themis_auction_winners_total", "Auction winners (non-empty winning allocations).", l),

		roundDur: reg.Histogram("themis_auction_round_seconds", "End-to-end auction round latency (reclaim through grant).", nil, l),
		phases:   make(map[string]*telemetry.Histogram, len(roundPhaseNames)),

		agents:    reg.Gauge("themis_agents_registered", "Agents currently registered.", l),
		leases:    reg.Gauge("themis_active_leases", "Leases currently active.", l),
		freeGPUs:  reg.Gauge("themis_free_gpus", "GPUs free after the most recent round.", l),
		arenaLent: reg.Gauge("themis_valuation_arena_lent", "Sparse allocation maps currently lent out by the valuation arena.", l),
		arenaFree: reg.Gauge("themis_valuation_arena_free", "Sparse allocation maps parked in the valuation arena free list.", l),
	}
	for _, name := range roundPhaseNames {
		t.phases[name] = reg.Histogram("themis_auction_phase_seconds", "Auction round phase latency.", nil, l, telemetry.L("phase", name))
	}
	return t
}

// record folds one finished round into the counters, phase histograms and
// gauges, and appends it to the server's trace ring.
func (t *serverTelemetry) record(rd *telemetry.Round, ring *telemetry.RoundRing, leases, freeGPUs, arenaLent, arenaFree int) {
	t.rounds.Inc()
	t.offered.Add(uint64(rd.Offered))
	t.granted.Add(uint64(rd.Granted))
	t.leftover.Add(uint64(rd.Leftover))
	t.winners.Add(uint64(rd.Winners))
	t.roundDur.ObserveDuration(rd.Total)
	for _, sp := range rd.Spans() {
		if h := t.phases[sp.Name]; h != nil {
			h.ObserveDuration(sp.Dur)
		}
	}
	t.agents.Set(int64(rd.Agents))
	t.leases.Set(int64(leases))
	t.freeGPUs.Set(int64(freeGPUs))
	t.arenaLent.Set(int64(arenaLent))
	t.arenaFree.Set(int64(arenaFree))
	ring.Record(*rd)
}

// shardedTelemetry holds the deployment-wide handles of a sharded round: the
// coarse phases that exist only above the shards (the concurrent per-shard
// auctions, cross-shard reconciliation, aggregated delivery) plus the
// reconciliation volume counters.
type shardedTelemetry struct {
	rounds       *telemetry.Counter
	reconciled   *telemetry.Counter
	roundDur     *telemetry.Histogram
	shardsDur    *telemetry.Histogram
	reconcileDur *telemetry.Histogram
	deliverDur   *telemetry.Histogram
}

func newShardedTelemetry(reg *telemetry.Registry) *shardedTelemetry {
	return &shardedTelemetry{
		rounds:       reg.Counter("themis_sharded_rounds_total", "Completed sharded auction rounds (per-shard auctions + reconciliation + delivery)."),
		reconciled:   reg.Counter("themis_reconcile_gpus_total", "Leftover GPUs re-offered across shards by reconciliation rounds."),
		roundDur:     reg.Histogram("themis_sharded_round_seconds", "End-to-end sharded round latency.", nil),
		shardsDur:    reg.Histogram("themis_sharded_phase_seconds", "Sharded round phase latency.", nil, telemetry.L("phase", "shards")),
		reconcileDur: reg.Histogram("themis_sharded_phase_seconds", "Sharded round phase latency.", nil, telemetry.L("phase", "reconcile")),
		deliverDur:   reg.Histogram("themis_sharded_phase_seconds", "Sharded round phase latency.", nil, telemetry.L("phase", "deliver")),
	}
}
