package rpc

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"themis/internal/core"
)

// TestStatusSurfacesServerErrors pins the fix for the silently-swallowed
// status code: a 500 from the arbiter used to decode into a healthy-looking
// zero StatusResponse. It must surface as an error carrying the server's
// message.
func TestStatusSurfacesServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusInternalServerError, errors.New("auction engine on fire"))
	}))
	defer ts.Close()

	client := NewArbiterClient(ts.URL)
	st, err := client.Status(context.Background())
	if err == nil {
		t.Fatalf("Status on a 500 returned nil error (and %+v)", st)
	}
	if got := err.Error(); !strings.Contains(got, "500") || !strings.Contains(got, "auction engine on fire") {
		t.Errorf("error should carry status and server message, got %q", got)
	}
	if _, err := client.ShardStatus(context.Background()); err == nil {
		t.Error("ShardStatus on a 500 should error")
	}
	if err := (&AgentClient{BaseURL: ts.URL}).Health(context.Background()); err == nil {
		t.Error("Health on a 500 should error")
	}
}

// countingServer serves handler and counts the TCP connections accepted —
// the observable difference between draining response bodies (one reused
// keep-alive connection) and closing them dirty (one dial per request).
func countingServer(t *testing.T, handler http.Handler) (*httptest.Server, *int64) {
	t.Helper()
	var conns int64
	ts := httptest.NewUnstartedServer(handler)
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			atomic.AddInt64(&conns, 1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)
	return ts, &conns
}

func TestClientReusesConnections(t *testing.T) {
	ts, conns := countingServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, StatusResponse{TotalGPUs: 8})
	}))

	client := NewArbiterClient(ts.URL)
	ctx := context.Background()
	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := client.Status(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := client.TriggerAuction(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt64(conns); got != 1 {
		t.Errorf("%d requests opened %d connections, want 1 (keep-alive defeated — response bodies not drained?)", 2*calls, got)
	}
}

// BenchmarkAgentClientKeepAlive measures the probe path against a live HTTP
// agent; with bodies drained before close every iteration rides the same
// connection (compare by reverting drainAndClose to a bare Close).
func BenchmarkAgentClientKeepAlive(b *testing.B) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, RhoResponse{App: "bench", Rho: 2.5})
	}))
	defer ts.Close()
	client := NewAgentClient(ts.URL)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ProbeRho(ctx, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRegisterSemantics table-tests the registration endpoint: method
// discipline, validation, and — the regression — re-registration of an app
// that holds leases, which must update the callback and demand in place
// without orphaning the held GPUs.
func TestRegisterSemantics(t *testing.T) {
	topo := testTopo(t)
	arb, err := core.NewArbiter(topo, core.Config{FairnessKnob: 0, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	server := NewArbiterServer(arb)
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	// Non-POST methods are rejected outright.
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
		req, _ := http.NewRequest(method, ts.URL+"/v1/register", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s /v1/register = %d, want 405", method, resp.StatusCode)
		}
	}

	cases := []struct {
		name    string
		req     RegisterRequest
		wantErr bool
		updated bool
	}{
		{"missing app", RegisterRequest{Callback: "http://a:1"}, true, false},
		{"missing callback", RegisterRequest{App: "app-x"}, true, false},
		{"fresh registration", RegisterRequest{App: "app-x", Callback: "http://old:1", MaxParallelism: 8}, false, false},
		{"re-registration", RegisterRequest{App: "app-x", Callback: "http://new:2", MaxParallelism: 4}, false, true},
	}
	for _, tc := range cases {
		resp, err := server.register(tc.req)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: want error, got %+v", tc.name, resp)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !resp.OK || resp.Updated != tc.updated {
			t.Errorf("%s: resp %+v, want OK with updated=%v", tc.name, resp, tc.updated)
		}
	}
	if client := server.notifyClient("app-x"); client == nil || client.BaseURL != "http://new:2" {
		t.Fatalf("re-registration did not install the new callback: %+v", client)
	}

	// The regression: an app holding leased GPUs re-registers (agent restart,
	// new host). Its allocation and leases must survive untouched.
	server.RegisterBidder(&simBidder{id: "holder", demand: 8, weight: 100})
	if _, err := server.RunAuction(0); err != nil {
		t.Fatal(err)
	}
	heldBefore := server.HeldBy("holder")
	if heldBefore.Total() == 0 {
		t.Fatal("setup: holder won nothing")
	}
	leasesBefore := server.Status().ActiveLeases

	resp, err := server.register(RegisterRequest{App: "holder", Callback: "http://moved:3", MaxParallelism: 8})
	if err != nil || !resp.Updated {
		t.Fatalf("re-register holder: %+v err=%v", resp, err)
	}
	if got := server.HeldBy("holder"); !got.Equal(heldBefore) {
		t.Errorf("re-registration disturbed held GPUs: %v -> %v", heldBefore, got)
	}
	if got := server.Status().ActiveLeases; got != leasesBefore {
		t.Errorf("re-registration disturbed leases: %d -> %d", leasesBefore, got)
	}
	if err := server.ValidateState(); err != nil {
		t.Errorf("state invariants: %v", err)
	}
}
