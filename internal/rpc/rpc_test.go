package rpc

import (
	"context"
	"net/http/httptest"
	"testing"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/hyperparam"
	"themis/internal/placement"
	"themis/internal/workload"
)

func testApp(id string, nJobs int, work float64) *workload.App {
	jobs := make([]*workload.Job, nJobs)
	for i := 0; i < nJobs; i++ {
		j := workload.NewJob(workload.AppID(id), i, work, 4)
		j.Quality = float64(i) / float64(nJobs+1)
		j.Seed = int64(i + 3)
		jobs[i] = j
	}
	return workload.NewApp(workload.AppID(id), 0, placement.VGG16, jobs)
}

func testTopo(t *testing.T) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 6, GPUs: 4, SlotSize: 2}},
		MachinesPerRack: 3,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestWireAllocRoundTrip(t *testing.T) {
	a := cluster.Alloc{3: 2, 1: 4}
	back, err := ToWireAlloc(a).ToAlloc()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a) {
		t.Errorf("round trip %v != %v", back, a)
	}
	if _, err := (WireAlloc{{Machine: -1, GPUs: 2}}).ToAlloc(); err == nil {
		t.Error("negative machine should be rejected")
	}
	if _, err := (WireAlloc{{Machine: 1, GPUs: -2}}).ToAlloc(); err == nil {
		t.Error("negative GPUs should be rejected")
	}
}

func TestBidTableRoundTrip(t *testing.T) {
	table := core.BidTable{App: "a", Entries: []core.BidEntry{
		{Alloc: cluster.NewAlloc(), Rho: 7},
		{Alloc: cluster.Alloc{0: 4}, Rho: 2.5},
	}}
	back, err := FromBidTable(table).ToBidTable()
	if err != nil {
		t.Fatal(err)
	}
	if back.App != "a" || len(back.Entries) != 2 {
		t.Fatalf("round trip mangled table: %+v", back)
	}
	if back.CurrentRho() != 7 || back.Best().Rho != 2.5 {
		t.Errorf("values lost in round trip: %+v", back)
	}
}

// startAgent serves an AgentServer over httptest and returns its URL.
func startAgent(t *testing.T, topo *cluster.Topology, app *workload.App) (string, *AgentServer) {
	t.Helper()
	agent := core.NewAgent(topo, app, hyperparam.ForApp(app), nil)
	srv := NewAgentServer(agent)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, srv
}

func TestAgentServerEndpoints(t *testing.T) {
	topo := testTopo(t)
	url, srv := startAgent(t, topo, testApp("app-a", 2, 200))
	client := NewAgentClient(url)
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	rho, err := client.ProbeRho(ctx, 5, cluster.NewAlloc())
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if rho < core.Unbounded/1e4 {
		t.Errorf("rho for GPU-less app = %v, want effectively unbounded", rho)
	}
	offer := cluster.Alloc{0: 4, 1: 4}
	bid, err := client.RequestBid(ctx, 5, offer, cluster.NewAlloc())
	if err != nil {
		t.Fatalf("bid: %v", err)
	}
	if err := bid.Validate(offer); err != nil {
		t.Errorf("remote bid invalid: %v", err)
	}
	if bid.Best().Alloc.Total() == 0 {
		t.Error("remote bid should request GPUs")
	}
	// Deliver an allocation and confirm the agent's view updates.
	if err := client.DeliverAllocation(ctx, 6, cluster.Alloc{0: 4}, true, 26); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if got := srv.Current().Total(); got != 4 {
		t.Errorf("agent current = %d, want 4", got)
	}
	// A subsequent probe without an explicit current uses the stored one.
	rho2, err := client.ProbeRho(ctx, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rho2 >= core.Unbounded {
		t.Errorf("rho after allocation should be bounded, got %v", rho2)
	}
}

func TestArbiterServerAuctionFlow(t *testing.T) {
	topo := testTopo(t)
	arb, err := core.NewArbiter(topo, core.Config{FairnessKnob: 0.5, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	server := NewArbiterServer(arb)
	now := 0.0
	server.Clock = func() float64 { return now }
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	arbClient := NewArbiterClient(ts.URL)
	ctx := context.Background()

	// Register two agents backed by real agent servers.
	urlA, srvA := startAgent(t, topo, testApp("app-a", 2, 300))
	urlB, srvB := startAgent(t, topo, testApp("app-b", 2, 300))
	if _, err := arbClient.Register(ctx, "app-a", urlA, 8); err != nil {
		t.Fatal(err)
	}
	if resp, err := arbClient.Register(ctx, "app-b", urlB, 8); err != nil || !resp.OK || resp.LeaseMin != 20 {
		t.Fatalf("register: %+v err=%v", resp, err)
	}

	st, err := arbClient.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalGPUs != 24 || st.FreeGPUs != 24 || len(st.Agents) != 2 {
		t.Fatalf("unexpected status: %+v", st)
	}

	// First auction: both apps should end up with GPUs (8 each demanded, 24
	// free), and the agents must have been notified.
	auction, err := arbClient.TriggerAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if auction.Offered != 24 {
		t.Errorf("offered %d GPUs, want 24", auction.Offered)
	}
	totalGranted := 0
	for _, alloc := range auction.Decisions {
		wire, err := alloc.ToAlloc()
		if err != nil {
			t.Fatal(err)
		}
		totalGranted += wire.Total()
	}
	if totalGranted == 0 {
		t.Fatal("auction granted nothing")
	}
	if srvA.Current().Total()+srvB.Current().Total() != totalGranted {
		t.Errorf("agents' view (%d+%d) does not match grants %d",
			srvA.Current().Total(), srvB.Current().Total(), totalGranted)
	}
	st, err = arbClient.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.FreeGPUs != 24-totalGranted {
		t.Errorf("free GPUs %d after granting %d of 24", st.FreeGPUs, totalGranted)
	}
	if st.ActiveLeases == 0 || st.Auctions != 1 {
		t.Errorf("status after auction: %+v", st)
	}

	// Advance past the lease: the next auction reclaims and re-allocates.
	now = 25
	if _, err := arbClient.TriggerAuction(ctx); err != nil {
		t.Fatal(err)
	}
	st, err = arbClient.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Now != 25 {
		t.Errorf("clock not reflected in status: %+v", st)
	}
}

func TestRemoteBidderDegradesGracefully(t *testing.T) {
	// A bidder whose agent is unreachable must not block the auction.
	dead := &RemoteBidder{AppID: "ghost", Client: NewAgentClient("http://127.0.0.1:1"), Demand: 4, Gang: 4}
	if rho := dead.ReportRho(0, cluster.NewAlloc()); rho != 1 {
		t.Errorf("unreachable agent rho = %v, want 1", rho)
	}
	bid := dead.PrepareBid(0, cluster.Alloc{0: 4}, cluster.NewAlloc())
	if len(bid.Entries) != 1 || bid.Entries[0].Alloc.Total() != 0 {
		t.Errorf("unreachable agent should bid only the empty row: %+v", bid)
	}
	if dead.UnmetParallelism(cluster.Alloc{0: 4}) != 0 {
		t.Error("demand accounting wrong")
	}
	if dead.GangSize() != 4 {
		t.Error("gang size lost")
	}
	if (&RemoteBidder{}).GangSize() != 1 {
		t.Error("zero gang should default to 1")
	}
}
