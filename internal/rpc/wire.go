// Package rpc provides the networked Arbiter↔Agent protocol of the paper's
// prototype (§7): the Arbiter probes Agents for their finish-time fairness
// estimates, offers them available GPUs, collects bid tables and delivers
// winning allocations. The paper uses gRPC atop YARN; this package carries
// the same messages as JSON over HTTP using only the standard library, and
// powers the cmd/arbiterd and cmd/agentd daemons as well as fully in-process
// tests.
package rpc

import (
	"fmt"
	"sort"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/workload"
)

// AllocEntry is one machine's share of an allocation on the wire.
type AllocEntry struct {
	Machine int `json:"machine"`
	GPUs    int `json:"gpus"`
}

// WireAlloc is a GPU allocation vector in wire form.
type WireAlloc []AllocEntry

// ToWireAlloc converts an allocation to its wire form (machines ascending).
func ToWireAlloc(a cluster.Alloc) WireAlloc {
	out := make(WireAlloc, 0, len(a))
	for _, m := range a.Machines() {
		out = append(out, AllocEntry{Machine: int(m), GPUs: a[m]})
	}
	return out
}

// ToAlloc converts a wire allocation back to the in-memory form.
func (w WireAlloc) ToAlloc() (cluster.Alloc, error) {
	out := cluster.NewAlloc()
	for _, e := range w {
		if e.GPUs < 0 || e.Machine < 0 {
			return nil, fmt.Errorf("rpc: negative machine or GPU count in allocation")
		}
		if e.GPUs > 0 {
			out[cluster.MachineID(e.Machine)] += e.GPUs
		}
	}
	return out, nil
}

// RhoRequest asks an Agent for its current finish-time fairness estimate.
type RhoRequest struct {
	Now     float64   `json:"now"`
	Current WireAlloc `json:"current"`
}

// RhoResponse is the Agent's answer to a probe.
type RhoResponse struct {
	App string  `json:"app"`
	Rho float64 `json:"rho"`
}

// BidRequest offers GPUs to an Agent and asks for its bid table.
type BidRequest struct {
	Now     float64   `json:"now"`
	Offer   WireAlloc `json:"offer"`
	Current WireAlloc `json:"current"`
}

// BidRow is one row of a bid table on the wire.
type BidRow struct {
	Alloc WireAlloc `json:"alloc"`
	Rho   float64   `json:"rho"`
}

// BidResponse is the Agent's bid table.
type BidResponse struct {
	App  string   `json:"app"`
	Rows []BidRow `json:"rows"`
}

// ToBidTable converts a wire bid into the core form.
func (b BidResponse) ToBidTable() (core.BidTable, error) {
	table := core.BidTable{App: workload.AppID(b.App)}
	for _, r := range b.Rows {
		alloc, err := r.Alloc.ToAlloc()
		if err != nil {
			return core.BidTable{}, err
		}
		table.Entries = append(table.Entries, core.BidEntry{Alloc: alloc, Rho: r.Rho})
	}
	return table, nil
}

// FromBidTable converts a core bid table to the wire form.
func FromBidTable(t core.BidTable) BidResponse {
	out := BidResponse{App: string(t.App)}
	for _, e := range t.Entries {
		out.Rows = append(out.Rows, BidRow{Alloc: ToWireAlloc(e.Alloc), Rho: e.Rho})
	}
	return out
}

// AllocationMsg delivers a winning allocation (or a lease revocation when
// Alloc is empty) to an Agent.
type AllocationMsg struct {
	Now         float64   `json:"now"`
	Alloc       WireAlloc `json:"alloc"`
	FromAuction bool      `json:"from_auction"`
	LeaseExpiry float64   `json:"lease_expiry"`
}

// RegisterRequest announces an Agent to the Arbiter.
type RegisterRequest struct {
	App string `json:"app"`
	// Callback is the base URL of the Agent's HTTP server, e.g.
	// "http://10.0.0.7:7201".
	Callback string `json:"callback"`
	// MaxParallelism is the app's aggregate GPU demand, used for leftover
	// allocation when the Agent is not probed.
	MaxParallelism int `json:"max_parallelism"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	OK       bool    `json:"ok"`
	LeaseMin float64 `json:"lease_minutes"`
	// Updated reports that the app was already registered and its callback
	// and demand were refreshed in place (held GPUs and leases survive).
	Updated bool `json:"updated,omitempty"`
}

// StatusResponse summarises the Arbiter's view of the cluster.
type StatusResponse struct {
	Now          float64        `json:"now"`
	TotalGPUs    int            `json:"total_gpus"`
	FreeGPUs     int            `json:"free_gpus"`
	Agents       []string       `json:"agents"`
	Held         map[string]int `json:"held_gpus"`
	Auctions     int            `json:"auctions"`
	ActiveLeases int            `json:"active_leases"`
}

// AuctionResponse reports the outcome of one auction round.
type AuctionResponse struct {
	Now       float64              `json:"now"`
	Offered   int                  `json:"offered_gpus"`
	Decisions map[string]WireAlloc `json:"decisions"`
	// Reconciled counts the GPUs moved by the cross-shard reconciliation
	// round (always zero on unsharded arbiters).
	Reconciled int `json:"reconciled_gpus,omitempty"`
}

// ShardInfo is one arbiter shard's slice of a ShardStatusResponse.
type ShardInfo struct {
	Index        int      `json:"index"`
	TotalGPUs    int      `json:"total_gpus"`
	FreeGPUs     int      `json:"free_gpus"`
	Agents       []string `json:"agents"`
	ActiveLeases int      `json:"active_leases"`
	Auctions     int      `json:"auctions"`
}

// MemberInfo is one gossip member as reported by /v1/shards.
type MemberInfo struct {
	Name        string `json:"name"`
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

// ShardStatusResponse is the sharded arbiter's per-shard detail: capacity
// partitions, reconciliation telemetry and (when gossip is enabled) the
// membership table.
type ShardStatusResponse struct {
	Now        float64      `json:"now"`
	Shards     []ShardInfo  `json:"shards"`
	Reconciled int          `json:"reconciled_gpus"`
	Rounds     int          `json:"rounds"`
	Members    []MemberInfo `json:"members,omitempty"`
}

// sortedKeys returns map keys in a stable order for deterministic responses.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
