package rpc

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/hyperparam"
	"themis/internal/workload"
)

func shardedTopo(t *testing.T, machines, gpus, perRack int) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: machines, GPUs: gpus, SlotSize: 2}},
		MachinesPerRack: perRack,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestShardedSmokeTwoShardsHTTP is the sharded-daemon smoke: two real agent
// daemons register with a 2-shard arbiter over HTTP, an auction runs, and
// status reflects it — the exact protocol surface an unsharded arbiter
// serves, plus /v1/shards.
func TestShardedSmokeTwoShardsHTTP(t *testing.T) {
	topo := shardedTopo(t, 6, 4, 3)
	s, err := NewShardedArbiterServer(topo, core.Config{FairnessKnob: 0, LeaseDuration: 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	s.Clock = func() float64 { return now }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewArbiterClient(ts.URL)
	ctx := context.Background()

	urlA, srvA := startAgent(t, topo, testApp("app-a", 2, 300))
	urlB, srvB := startAgent(t, topo, testApp("app-b", 2, 300))
	if resp, err := client.Register(ctx, "app-a", urlA, 8); err != nil || !resp.OK {
		t.Fatalf("register app-a: %+v err=%v", resp, err)
	}
	if resp, err := client.Register(ctx, "app-b", urlB, 8); err != nil || !resp.OK {
		t.Fatalf("register app-b: %+v err=%v", resp, err)
	}

	st, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalGPUs != 24 || st.FreeGPUs != 24 || len(st.Agents) != 2 {
		t.Fatalf("status after register: %+v", st)
	}

	auction, err := client.TriggerAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	granted := 0
	for app, wire := range auction.Decisions {
		alloc, err := wire.ToAlloc()
		if err != nil {
			t.Fatal(err)
		}
		// Decisions must be in global machine IDs.
		for _, m := range alloc.Machines() {
			if int(m) >= topo.NumMachines() {
				t.Errorf("%s granted machine %d outside the global topology", app, m)
			}
		}
		granted += alloc.Total()
	}
	if granted == 0 {
		t.Fatal("sharded auction granted nothing")
	}

	// Each agent daemon received ONE aggregated, global-ID allocation that
	// matches the arbiter's cross-shard view of it.
	for app, srv := range map[string]*AgentServer{"app-a": srvA, "app-b": srvB} {
		if got, want := srv.Current(), s.HeldGlobal(workload.AppID(app)); !got.Equal(want) {
			t.Errorf("%s: delivered %v, arbiter holds %v", app, got, want)
		}
	}

	st, err = client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.FreeGPUs != 24-granted {
		t.Errorf("free %d after granting %d of 24", st.FreeGPUs, granted)
	}

	shards, err := client.ShardStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards.Shards) != 2 || shards.Rounds != 1 {
		t.Fatalf("shard status: %+v", shards)
	}
	sumTotal, sumFree := 0, 0
	for _, sh := range shards.Shards {
		sumTotal += sh.TotalGPUs
		sumFree += sh.FreeGPUs
	}
	if sumTotal != 24 || sumFree != st.FreeGPUs {
		t.Errorf("shard capacities (%d total, %d free) disagree with status %+v", sumTotal, sumFree, st)
	}
	if err := s.ValidateState(); err != nil {
		t.Error(err)
	}
}

// runParity drives one unsharded arbiter and one sharded deployment over
// identical clusters and app populations for several full-reclaim rounds,
// returning (total granted by each, per-app L1 divergence).
func runParity(t *testing.T, apps, demand, shards, rounds int, f float64) (int, int, int) {
	t.Helper()
	cfg := core.Config{FairnessKnob: f, LeaseDuration: 20}
	makeBidders := func() []*simBidder {
		out := make([]*simBidder, apps)
		for i := range out {
			out[i] = &simBidder{
				id:     workload.AppID(fmt.Sprintf("app-%02d", i)),
				demand: demand,
				weight: float64(100 + i),
			}
		}
		return out
	}

	arb, err := core.NewArbiter(shardedTopo(t, 8, 4, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := NewArbiterServer(arb)
	for _, b := range makeBidders() {
		single.RegisterBidder(b)
	}
	sharded, err := NewShardedArbiterServer(shardedTopo(t, 8, 4, 2), cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range makeBidders() {
		sharded.RegisterBidder(b)
	}

	for r := 0; r < rounds; r++ {
		now := float64(r) * 21 // a lease apart: full reclaim every round
		if _, err := single.RunAuction(now); err != nil {
			t.Fatalf("single round %d: %v", r, err)
		}
		if _, err := sharded.RunAuction(now); err != nil {
			t.Fatalf("sharded round %d: %v", r, err)
		}
	}
	if err := sharded.ValidateState(); err != nil {
		t.Error(err)
	}

	singleTotal, shardedTotal, l1 := 0, 0, 0
	for i := 0; i < apps; i++ {
		id := workload.AppID(fmt.Sprintf("app-%02d", i))
		a := single.HeldBy(id).Total()
		b := sharded.HeldGlobal(id).Total()
		singleTotal += a
		shardedTotal += b
		if d := a - b; d >= 0 {
			l1 += d
		} else {
			l1 -= d
		}
	}
	return singleTotal, shardedTotal, l1
}

// TestShardedParityFullSubscription: when aggregate demand equals capacity,
// every app can be fully satisfied, so the sharded deployment must match the
// unsharded one EXACTLY, app by app — local auctions satisfy homed demand
// and the reconciliation round erases any shard imbalance.
func TestShardedParityFullSubscription(t *testing.T) {
	// 16 apps x 2 GPUs = 32 = cluster capacity.
	single, sharded, l1 := runParity(t, 16, 2, 2, 3, 0.5)
	if single != 32 {
		t.Fatalf("reference granted %d of 32 with matching demand (work conservation broken)", single)
	}
	if sharded != single {
		t.Errorf("sharded granted %d, single %d", sharded, single)
	}
	if l1 != 0 {
		t.Errorf("per-app divergence %d GPUs at full subscription, want exact parity", l1)
	}
}

// TestShardedParityOversubscribed: with demand at twice capacity the two
// deployments must still grant identical totals (work conservation), and the
// per-app distributions must agree within the reconciliation tolerance: a
// shard's "worst 1-f fraction" is computed over its own residents, so which
// apps win can legitimately shift at the margin.
func TestShardedParityOversubscribed(t *testing.T) {
	single, sharded, l1 := runParity(t, 16, 4, 2, 3, 0.5)
	if single != 32 {
		t.Fatalf("reference granted %d of 32 (work conservation broken)", single)
	}
	if sharded != single {
		t.Errorf("total grants diverge: single %d, sharded %d", single, sharded)
	}
	if frac := float64(l1) / float64(single); frac > 0.75 {
		t.Errorf("per-app divergence %.0f%% of %d granted GPUs exceeds tolerance", 100*frac, single)
	}
}

// TestShardedReconciliationMovesLeftovers pins the cross-shard round: when
// one shard's homed apps want nothing, its capacity must flow to starved
// apps homed on other shards instead of idling.
func TestShardedReconciliationMovesLeftovers(t *testing.T) {
	topo := shardedTopo(t, 8, 4, 2)
	s, err := NewShardedArbiterServer(topo, core.Config{FairnessKnob: 0, LeaseDuration: 20}, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Home a batch of apps, then give demand only to those homed on one
	// shard: the other shard's partition has zero local demand.
	starvedShard := -1
	var starved []*simBidder
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("app-%02d", i)
		home := s.HomeShard(id)
		if starvedShard == -1 {
			starvedShard = home
		}
		b := &simBidder{id: workload.AppID(id), weight: float64(100 + i)}
		if home == starvedShard {
			b.demand = topo.TotalGPUs() // wants more than its own shard holds
			starved = append(starved, b)
		}
		s.RegisterBidder(b)
	}
	if len(starved) == 0 {
		t.Fatal("setup: no app homed on the starved shard")
	}

	resp, err := s.RunAuction(0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Reconciled == 0 {
		t.Fatal("reconciliation moved nothing despite idle capacity and starved apps")
	}
	// Work conservation across shards: every GPU is held by somebody.
	if st := s.Status(); st.FreeGPUs != 0 {
		t.Errorf("free %d after reconciliation, want 0", st.FreeGPUs)
	}
	// The starved apps now hold GPUs on BOTH partitions.
	otherShard := 1 - starvedShard
	crossShard := 0
	for _, b := range starved {
		crossShard += s.Shard(otherShard).HeldBy(b.id).Total()
	}
	if crossShard == 0 {
		t.Error("no starved app holds GPUs on the donor shard")
	}
	if got := s.ShardStatus(); got.Reconciled != resp.Reconciled || got.Rounds != 1 {
		t.Errorf("shard status telemetry %+v does not match auction %+v", got, resp)
	}
	if err := s.ValidateState(); err != nil {
		t.Error(err)
	}
}

// TestShardedRegisterRoutesToHomeShard: registration must land the app on
// the ring-designated shard and nowhere else, deterministically.
func TestShardedRegisterRoutesToHomeShard(t *testing.T) {
	topo := shardedTopo(t, 8, 4, 2)
	s, err := NewShardedArbiterServer(topo, core.Config{FairnessKnob: 0, LeaseDuration: 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("app-%02d", i)
		if _, err := s.Register(RegisterRequest{App: id, Callback: "http://x:1", MaxParallelism: 4}); err != nil {
			t.Fatal(err)
		}
		home := s.HomeShard(id)
		for idx := 0; idx < s.NumShards(); idx++ {
			has := s.Shard(idx).notifyClient(workload.AppID(id)) != nil
			if has != (idx == home) {
				t.Fatalf("app %s: registered on shard %d, home is %d", id, idx, home)
			}
		}
	}
}

// TestShardedAuctionRecyclesValuationArenas pins the per-shard arena
// lifecycle: in-process Agents bid through each shard arbiter's valuator
// arena, and every candidate allocation lent during a sharded round —
// per-shard auctions plus reconciliation — is back on its shard's free list
// when RunAuction returns. Each shard owns its own arena, so the concurrent
// per-shard rounds never share lending state.
func TestShardedAuctionRecyclesValuationArenas(t *testing.T) {
	topo := shardedTopo(t, 8, 4, 2)
	s, err := NewShardedArbiterServer(topo, core.Config{FairnessKnob: 0, LeaseDuration: 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		app := testApp(fmt.Sprintf("arena-%02d", i), 2, 200)
		s.RegisterBidder(core.NewAgent(topo, app, hyperparam.ForApp(app), nil))
	}
	for round := 0; round < 3; round++ {
		if _, err := s.RunAuction(float64(round) * 25); err != nil {
			t.Fatal(err)
		}
		for idx := 0; idx < s.NumShards(); idx++ {
			lent, parked := s.Shard(idx).arbiter.ValuationArenaStats()
			if lent != 0 {
				t.Fatalf("round %d shard %d: %d candidate allocations still lent after RunAuction", round, idx, lent)
			}
			if parked == 0 && len(s.Shard(idx).snapshotAgents()) > 0 {
				t.Errorf("round %d shard %d: arena free list empty despite homed agents — candidates were never arena-lent", round, idx)
			}
		}
	}
	if err := s.ValidateState(); err != nil {
		t.Error(err)
	}
}
