package rpc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/workload"
)

// simBidder is a cheap in-process core.Bidder for concurrency and sharding
// tests: deterministic ρ (weight discounted by held GPUs), greedy bids up to
// its demand. It carries no per-auction state of its own, so any data race a
// test observes belongs to the server, not the fixture. With yield set it
// reschedules on every probe and bid, standing in for the network hops a
// RemoteBidder makes — the window in which a concurrent auction round can
// sneak in if rounds are not serialised.
type simBidder struct {
	id     workload.AppID
	demand int
	gang   int
	weight float64
	yield  bool
}

func (b *simBidder) ID() workload.AppID { return b.id }

func (b *simBidder) rho(held int) float64 { return b.weight / float64(1+held) }

func (b *simBidder) ReportRho(now float64, current cluster.Alloc) float64 {
	if b.yield {
		runtime.Gosched()
	}
	return b.rho(current.Total())
}

func (b *simBidder) PrepareBid(now float64, offer, current cluster.Alloc) core.BidTable {
	if b.yield {
		runtime.Gosched()
	}
	held := current.Total()
	table := core.BidTable{App: b.id, Entries: []core.BidEntry{
		{Alloc: cluster.NewAlloc(), Rho: b.rho(held)},
	}}
	want := b.demand - held
	if want <= 0 {
		return table
	}
	take := cluster.NewAlloc()
	for _, m := range offer.Machines() {
		for take[m] < offer[m] && take.Total() < want {
			take[m]++
		}
		if take.Total() >= want {
			break
		}
	}
	if take.Total() > 0 {
		table.Entries = append(table.Entries, core.BidEntry{Alloc: take, Rho: b.rho(held + take.Total())})
	}
	return table
}

func (b *simBidder) UnmetParallelism(current cluster.Alloc) int {
	if unmet := b.demand - current.Total(); unmet > 0 {
		return unmet
	}
	return 0
}

func (b *simBidder) GangSize() int {
	if b.gang <= 0 {
		return 1
	}
	return b.gang
}

// TestConcurrentAuctionsSerialized is the regression test for the
// concurrent-auction race: OfferResources used to run outside any lock, so
// two overlapping RunAuction calls shared the Arbiter's BidValuator scratch
// and offered the same stale free vector twice — double-granting GPUs the
// state layer then rejects. With rounds serialised under auctionMu every
// call must succeed and the occupancy state must stay internally consistent;
// revert the auctionMu discipline in auctionRound and this test fails (Grant
// capacity errors) and `go test -race` flags the valuator scratch.
func TestConcurrentAuctionsSerialized(t *testing.T) {
	topo := testTopo(t)
	arb, err := core.NewArbiter(topo, core.Config{FairnessKnob: 0, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	server := NewArbiterServer(arb)
	// Demand far beyond capacity so every round grants aggressively.
	for i := 0; i < 8; i++ {
		server.RegisterBidder(&simBidder{
			id:     workload.AppID(fmt.Sprintf("app-%d", i)),
			demand: 12,
			weight: float64(100 + i),
			yield:  true,
		})
	}

	const (
		goroutines = 8
		rounds     = 6
	)
	// Each call gets a unique, ever-advancing time at least a lease apart, so
	// whichever order the serialised rounds run in, reclaim → offer → grant
	// churns the full cluster every round.
	var step int64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				now := float64(atomic.AddInt64(&step, 1)) * 21
				if _, err := server.RunAuction(now); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent auction failed: %v", err)
	}
	if err := server.ValidateState(); err != nil {
		t.Errorf("state invariants violated after concurrent auctions: %v", err)
	}
	st := server.Status()
	if st.Auctions == 0 {
		t.Error("no auction completed")
	}
	held := 0
	for _, n := range st.Held {
		held += n
	}
	if held+st.FreeGPUs != st.TotalGPUs {
		t.Errorf("held %d + free %d != total %d", held, st.FreeGPUs, st.TotalGPUs)
	}
}

// TestDaemonLeaseExpiryReclamation drives lease expiry end-to-end through
// RunAuction: GPUs granted to an app whose demand then disappears must flow
// back to the still-hungry apps once the lease lapses.
func TestDaemonLeaseExpiryReclamation(t *testing.T) {
	topo := testTopo(t)
	arb, err := core.NewArbiter(topo, core.Config{FairnessKnob: 0, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	server := NewArbiterServer(arb)
	greedy := &simBidder{id: "greedy", demand: topo.TotalGPUs(), weight: 200}
	hungry := &simBidder{id: "hungry", demand: topo.TotalGPUs(), weight: 100}
	server.RegisterBidder(greedy)
	server.RegisterBidder(hungry)

	if _, err := server.RunAuction(0); err != nil {
		t.Fatal(err)
	}
	st := server.Status()
	if st.FreeGPUs != 0 {
		t.Fatalf("after round 1 free = %d, want 0 (work conservation)", st.FreeGPUs)
	}
	if st.ActiveLeases == 0 {
		t.Fatal("grants must be leased")
	}

	// The greedy app finishes: it stops wanting GPUs. Within the lease
	// nothing moves; the arbiter must not claw back early.
	greedy.demand = 0
	if _, err := server.RunAuction(10); err != nil {
		t.Fatal(err)
	}
	if got := server.HeldBy("greedy").Total(); got == 0 {
		t.Fatal("lease revoked before expiry")
	}

	// Past the lease, expired leases are reclaimed and the freed GPUs are
	// re-auctioned to the app that still wants them.
	if _, err := server.RunAuction(21); err != nil {
		t.Fatal(err)
	}
	if got := server.HeldBy("greedy").Total(); got != 0 {
		t.Errorf("expired allocation not reclaimed: greedy still holds %d", got)
	}
	if got := server.HeldBy("hungry").Total(); got != topo.TotalGPUs() {
		t.Errorf("hungry holds %d after reclamation, want %d", got, topo.TotalGPUs())
	}
	if st := server.Status(); st.FreeGPUs != 0 {
		t.Errorf("free = %d after re-auction, want 0", st.FreeGPUs)
	}
	if err := server.ValidateState(); err != nil {
		t.Errorf("state invariants: %v", err)
	}
}
