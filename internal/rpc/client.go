package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/telemetry"
)

// clientErrors counts transport failures per endpoint. The map is built once
// at init over the protocol's fixed endpoint set and never written again, so
// the failure path reads it without a lock; unknown paths (none exist today)
// fall back to the catch-all "other" series.
var clientErrors = func() map[string]*telemetry.Counter {
	reg := telemetry.Default()
	m := make(map[string]*telemetry.Counter)
	for _, p := range []string{
		"/v1/rho", "/v1/bid", "/v1/allocation", "/v1/health",
		"/v1/register", "/v1/auction", "/v1/status", "/v1/shards", "other",
	} {
		m[p] = reg.Counter("themis_rpc_client_errors_total",
			"Transport failures calling a remote agent or arbiter, by endpoint.",
			telemetry.L("endpoint", p))
	}
	return m
}()

// transportError records a failed attempt and wraps err with the method,
// endpoint and attempt duration, so the /metrics error counters and the log
// line a caller prints agree on which endpoint failed and how long the
// attempt ran (a timeout after 10s and a refused connection after 1ms look
// identical without it).
func transportError(method, path string, start time.Time, err error) error {
	c, ok := clientErrors[path]
	if !ok {
		c = clientErrors["other"]
	}
	c.Inc()
	return fmt.Errorf("rpc: %s %s failed after %s: %w", method, path, time.Since(start).Round(100*time.Microsecond), err)
}

// AgentClient is the Arbiter-side client for one registered Agent.
type AgentClient struct {
	// BaseURL is the Agent's HTTP endpoint, e.g. "http://host:port".
	BaseURL string
	// HTTPClient is the client used for requests; nil uses a client with a
	// short timeout suitable for scheduling RPCs.
	HTTPClient *http.Client
}

// NewAgentClient returns a client for the Agent at baseURL.
func NewAgentClient(baseURL string) *AgentClient {
	return &AgentClient{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 10 * time.Second}}
}

func (c *AgentClient) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// drainAndClose consumes whatever is left of a response body before closing
// it. json.Decoder stops at the end of the JSON value, leaving at least the
// trailing newline unread; a body closed with bytes still buffered makes
// net/http discard the TCP connection instead of returning it to the
// keep-alive pool, which costs a fresh dial on every scheduling RPC. The
// probe/bid path runs once per agent per auction round, so connection reuse
// is measurable (see BenchmarkAgentClientKeepAlive).
func drainAndClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body)
	_ = body.Close()
}

// post sends a JSON request and decodes the JSON response into out.
func (c *AgentClient) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("rpc: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("rpc: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.client().Do(req)
	if err != nil {
		return transportError(http.MethodPost, path, start, err)
	}
	defer drainAndClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("rpc: %s returned %d: %s", path, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("rpc: decoding %s response: %w", path, err)
	}
	return nil
}

// get fetches a JSON resource, decoding it into out. Non-200 responses are
// surfaced as errors carrying the server's error message, exactly like post.
func (c *AgentClient) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("rpc: building request: %w", err)
	}
	start := time.Now()
	resp, err := c.client().Do(req)
	if err != nil {
		return transportError(http.MethodGet, path, start, err)
	}
	defer drainAndClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("rpc: %s returned %d: %s", path, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("rpc: decoding %s response: %w", path, err)
	}
	return nil
}

// ProbeRho asks the Agent for its current finish-time fairness estimate.
func (c *AgentClient) ProbeRho(ctx context.Context, now float64, current cluster.Alloc) (float64, error) {
	var resp RhoResponse
	err := c.post(ctx, "/v1/rho", RhoRequest{Now: now, Current: ToWireAlloc(current)}, &resp)
	return resp.Rho, err
}

// RequestBid offers GPUs to the Agent and returns its bid table.
func (c *AgentClient) RequestBid(ctx context.Context, now float64, offer, current cluster.Alloc) (core.BidTable, error) {
	var resp BidResponse
	if err := c.post(ctx, "/v1/bid", BidRequest{Now: now, Offer: ToWireAlloc(offer), Current: ToWireAlloc(current)}, &resp); err != nil {
		return core.BidTable{}, err
	}
	return resp.ToBidTable()
}

// DeliverAllocation notifies the Agent of its new total allocation and lease
// expiry.
func (c *AgentClient) DeliverAllocation(ctx context.Context, now float64, alloc cluster.Alloc, fromAuction bool, leaseExpiry float64) error {
	return c.post(ctx, "/v1/allocation", AllocationMsg{
		Now: now, Alloc: ToWireAlloc(alloc), FromAuction: fromAuction, LeaseExpiry: leaseExpiry,
	}, nil)
}

// Health checks the Agent's liveness.
func (c *AgentClient) Health(ctx context.Context) error {
	return c.get(ctx, "/v1/health", nil)
}

// ArbiterClient is the Agent-side (or operator-side) client for an Arbiter.
type ArbiterClient struct {
	BaseURL    string
	HTTPClient *http.Client
}

// NewArbiterClient returns a client for the Arbiter at baseURL.
func NewArbiterClient(baseURL string) *ArbiterClient {
	return &ArbiterClient{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 10 * time.Second}}
}

func (c *ArbiterClient) post(ctx context.Context, path string, in, out any) error {
	a := AgentClient{BaseURL: c.BaseURL, HTTPClient: c.HTTPClient}
	return a.post(ctx, path, in, out)
}

func (c *ArbiterClient) get(ctx context.Context, path string, out any) error {
	a := AgentClient{BaseURL: c.BaseURL, HTTPClient: c.HTTPClient}
	return a.get(ctx, path, out)
}

// Register announces an Agent to the Arbiter.
func (c *ArbiterClient) Register(ctx context.Context, app, callback string, maxParallelism int) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.post(ctx, "/v1/register", RegisterRequest{App: app, Callback: callback, MaxParallelism: maxParallelism}, &resp)
	return resp, err
}

// TriggerAuction asks the Arbiter to run one auction round over the GPUs
// currently free and returns the decisions.
func (c *ArbiterClient) TriggerAuction(ctx context.Context) (AuctionResponse, error) {
	var resp AuctionResponse
	err := c.post(ctx, "/v1/auction", struct{}{}, &resp)
	return resp, err
}

// Status fetches the Arbiter's cluster status. Error responses propagate as
// errors — a failing arbiter never decodes into a healthy-looking zero
// status.
func (c *ArbiterClient) Status(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.get(ctx, "/v1/status", &out)
	return out, err
}

// ShardStatus fetches the per-shard detail of a sharded arbiter, including
// membership when gossip is enabled. Unsharded arbiters return 404.
func (c *ArbiterClient) ShardStatus(ctx context.Context) (ShardStatusResponse, error) {
	var out ShardStatusResponse
	err := c.get(ctx, "/v1/shards", &out)
	return out, err
}
