package rpc

import (
	"strings"
	"testing"

	"themis/internal/core"
	"themis/internal/hyperparam"
	"themis/internal/telemetry"
)

// TestAuctionRoundRecordsTelemetry pins the serving layer's round
// instrumentation: a completed round advances the rounds counter, lands in
// the trace ring with its phase spans, and updates the occupancy gauges.
// Counters on the process registry are shared across the test binary
// (get-or-create semantics), so assertions use deltas.
func TestAuctionRoundRecordsTelemetry(t *testing.T) {
	topo := testTopo(t)
	arb, err := core.NewArbiter(topo, core.Config{FairnessKnob: 0.5, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	server := NewArbiterServer(arb)
	app := testApp("tel-app", 2, 200)
	server.RegisterBidder(core.NewAgent(topo, app, hyperparam.ForApp(app), nil))

	rounds := server.tel.rounds.Value()
	offered := server.tel.offered.Value()
	if _, err := server.RunAuction(0); err != nil {
		t.Fatal(err)
	}

	if got := server.tel.rounds.Value(); got != rounds+1 {
		t.Errorf("rounds counter advanced by %d, want 1", got-rounds)
	}
	if got := server.tel.offered.Value(); got != offered+uint64(topo.TotalGPUs()) {
		t.Errorf("offered counter advanced by %d, want the whole free cluster (%d)", got-offered, topo.TotalGPUs())
	}
	if got := server.tel.agents.Value(); got != 1 {
		t.Errorf("agents gauge = %d, want 1", got)
	}

	if server.RoundTrace().Len() != 1 {
		t.Fatalf("trace ring holds %d rounds, want 1", server.RoundTrace().Len())
	}
	rd := server.RoundTrace().Snapshot()[0]
	if rd.Shard != "single" || rd.Agents != 1 || rd.Offered != topo.TotalGPUs() {
		t.Errorf("trace round fields wrong: %+v", rd)
	}
	names := make(map[string]bool)
	for _, sp := range rd.Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"reclaim", "probe", "bid", "solve", "leftover", "grant"} {
		if !names[want] {
			t.Errorf("trace round missing %q span (has %v)", want, rd.Spans())
		}
	}

	// An empty round — no agents registered, so auctionRound returns before
	// offering anything — still counts and is still traced; a quiet arbiter
	// must be visibly quiet. The CI smoke greps for exactly this behaviour.
	arb2, err := core.NewArbiter(topo, core.Config{FairnessKnob: 0.5, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	idle := NewArbiterServer(arb2)
	rounds = server.tel.rounds.Value()
	if _, err := idle.RunAuction(0); err != nil {
		t.Fatal(err)
	}
	if got := idle.tel.rounds.Value(); got != rounds+1 {
		t.Errorf("empty round advanced rounds counter by %d, want 1", got-rounds)
	}
	if idle.RoundTrace().Len() != 1 {
		t.Errorf("idle server's trace ring holds %d rounds, want 1", idle.RoundTrace().Len())
	}

	// The series surface on the process registry under the single-shard
	// label, ready for /metrics.
	var b strings.Builder
	if err := telemetry.Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`themis_auction_rounds_total{shard="single"}`,
		`themis_auction_phase_seconds_count{phase="solve",shard="single"}`,
		`themis_free_gpus{shard="single"}`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestShardedRoundRecordsTelemetry pins the sharded layer's round trace: the
// global ring records the coarse phases and every shard label appears on the
// per-shard series.
func TestShardedRoundRecordsTelemetry(t *testing.T) {
	topo := testTopo(t)
	s, err := NewShardedArbiterServer(topo, core.Config{FairnessKnob: 0.5, LeaseDuration: 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	app := testApp("tel-sharded-app", 2, 200)
	s.RegisterBidder(core.NewAgent(topo, app, hyperparam.ForApp(app), nil))

	if _, err := s.RunAuction(0); err != nil {
		t.Fatal(err)
	}

	if s.RoundTrace().Len() != 1 {
		t.Fatalf("global ring holds %d rounds, want 1", s.RoundTrace().Len())
	}
	rd := s.RoundTrace().Snapshot()[0]
	if rd.Shard != "all" {
		t.Errorf("global round shard = %q, want all", rd.Shard)
	}
	names := make(map[string]bool)
	for _, sp := range rd.Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"shards", "reconcile", "deliver"} {
		if !names[want] {
			t.Errorf("global round missing %q span (has %v)", want, rd.Spans())
		}
	}
	for i := 0; i < s.NumShards(); i++ {
		if s.Shard(i).RoundTrace().Len() != 1 {
			t.Errorf("shard %d ring holds %d rounds, want 1", i, s.Shard(i).RoundTrace().Len())
		}
	}

	rounds, _, spent := s.ReconcileStats()
	if rounds != 1 {
		t.Errorf("ReconcileStats rounds = %d, want 1", rounds)
	}
	if spent <= 0 {
		t.Errorf("ReconcileStats spent = %v, want > 0", spent)
	}

	var b strings.Builder
	if err := telemetry.Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`themis_auction_rounds_total{shard="0"}`,
		`themis_auction_rounds_total{shard="1"}`,
		"themis_sharded_rounds_total",
		`themis_sharded_phase_seconds_count{phase="reconcile"}`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
