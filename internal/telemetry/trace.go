package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// MaxSpans bounds the phase spans one round trace can carry. Rounds have a
// fixed phase structure (reclaim → probe → bid → solve → leftover → grant,
// plus reconcile/deliver on the sharded path), so eight slots cover every
// deployment without a per-round slice allocation.
const MaxSpans = 8

// Span is one timed phase inside a round, as an offset from the round's
// start.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// Round is one auction round's structured trace: identity, the headline
// counts, and up to MaxSpans phase spans. It is a plain value with no
// pointers into shared state, so building one on the caller's stack and
// handing it to RoundRing.Record costs no allocations.
type Round struct {
	Seq   uint64    // assigned by the ring
	Wall  time.Time // wall-clock start of the round
	Shard string    // "single" or the shard index; "global" for sharded totals
	Now   float64   // scheduling time the round ran at

	Offered    int // GPUs offered this round
	Granted    int // GPUs granted (auction + leftovers)
	Winners    int // apps that won a non-empty auction allocation
	Leftover   int // GPUs left after the auction (pre-leftover-pass)
	Reconciled int // GPUs moved by the sharded reconciliation round
	Agents     int // agents probed

	Total time.Duration // whole-round duration

	nspans int
	spans  [MaxSpans]Span
}

// AddSpan appends a phase span; spans past MaxSpans are dropped (rounds have
// a fixed phase structure, so this only fires on a programming error).
func (r *Round) AddSpan(name string, start, dur time.Duration) {
	if r.nspans >= MaxSpans {
		return
	}
	r.spans[r.nspans] = Span{Name: name, Start: start, Dur: dur}
	r.nspans++
}

// Spans returns the recorded phase spans.
func (r *Round) Spans() []Span { return r.spans[:r.nspans] }

// RoundRing keeps the last N round traces — the serving-path analog of the
// workload trace container: enough recent history to see what the arbiter
// just did (/debug/rounds, the SIGQUIT dump) without unbounded growth.
// Record copies the round into a preallocated slot under a short mutex; it
// runs once per round, not per metric, so it is deliberately not lock-free.
type RoundRing struct {
	mu  sync.Mutex
	buf []Round
	seq uint64
}

// NewRoundRing returns a ring holding the last n rounds (minimum 1).
func NewRoundRing(n int) *RoundRing {
	if n < 1 {
		n = 1
	}
	return &RoundRing{buf: make([]Round, n)}
}

// Record stores one round trace, assigning it the next sequence number.
func (rr *RoundRing) Record(rd Round) {
	rr.mu.Lock()
	rr.seq++
	rd.Seq = rr.seq
	rr.buf[int((rr.seq-1)%uint64(len(rr.buf)))] = rd
	rr.mu.Unlock()
}

// Len returns how many rounds have been recorded (capped at the ring size).
func (rr *RoundRing) Len() int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.seq < uint64(len(rr.buf)) {
		return int(rr.seq)
	}
	return len(rr.buf)
}

// Snapshot returns the retained rounds, oldest first. It allocates — it
// serves the debug surface, never the round itself.
func (rr *RoundRing) Snapshot() []Round {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	n := uint64(len(rr.buf))
	out := make([]Round, 0, n)
	start := uint64(0)
	if rr.seq > n {
		start = rr.seq - n
	}
	for s := start; s < rr.seq; s++ {
		out = append(out, rr.buf[int(s%n)])
	}
	return out
}

// spanJSON and roundJSON are the wire form of /debug/rounds: durations in
// milliseconds (float) for human reading, spans as an explicit array.
type spanJSON struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
}

type roundJSON struct {
	Seq        uint64     `json:"seq"`
	Wall       time.Time  `json:"wall"`
	Shard      string     `json:"shard"`
	Now        float64    `json:"now"`
	Offered    int        `json:"offered_gpus"`
	Granted    int        `json:"granted_gpus"`
	Winners    int        `json:"winners"`
	Leftover   int        `json:"leftover_gpus"`
	Reconciled int        `json:"reconciled_gpus"`
	Agents     int        `json:"agents"`
	TotalMs    float64    `json:"total_ms"`
	Spans      []spanJSON `json:"spans"`
}

func toJSON(rd Round) roundJSON {
	out := roundJSON{
		Seq: rd.Seq, Wall: rd.Wall, Shard: rd.Shard, Now: rd.Now,
		Offered: rd.Offered, Granted: rd.Granted, Winners: rd.Winners,
		Leftover: rd.Leftover, Reconciled: rd.Reconciled, Agents: rd.Agents,
		TotalMs: ms(rd.Total),
		Spans:   make([]spanJSON, 0, rd.nspans),
	}
	for _, s := range rd.Spans() {
		out.Spans = append(out.Spans, spanJSON{Name: s.Name, StartMs: ms(s.Start), DurMs: ms(s.Dur)})
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteJSON renders the retained rounds (oldest first) as a JSON document:
// {"rounds": [...]}.
func (rr *RoundRing) WriteJSON(w io.Writer) error {
	rounds := rr.Snapshot()
	out := struct {
		Rounds []roundJSON `json:"rounds"`
	}{Rounds: make([]roundJSON, 0, len(rounds))}
	for _, rd := range rounds {
		out.Rounds = append(out.Rounds, toJSON(rd))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText renders the retained rounds human-readably, one line per round
// with its phase spans — the SIGQUIT dump format.
func (rr *RoundRing) WriteText(w io.Writer) {
	for _, rd := range rr.Snapshot() {
		fmt.Fprintf(w, "round %d shard=%s now=%.2f total=%.3fms offered=%d granted=%d winners=%d leftover=%d reconciled=%d agents=%d",
			rd.Seq, rd.Shard, rd.Now, ms(rd.Total), rd.Offered, rd.Granted, rd.Winners, rd.Leftover, rd.Reconciled, rd.Agents)
		for _, s := range rd.Spans() {
			fmt.Fprintf(w, " %s=%.3fms", s.Name, ms(s.Dur))
		}
		fmt.Fprintln(w)
	}
}
