// Package telemetry is the serving stack's runtime instrumentation: a
// dependency-free metrics registry (atomic counters, gauges and fixed-bucket
// histograms exposed in Prometheus text exposition format v0.0.4), a
// per-round structured trace ring buffer, and the HTTP surface every daemon
// mounts (/metrics, /healthz, /debug/rounds, and an opt-in pprof debug mux).
//
// It answers a different question than package metrics: internal/metrics
// computes the PAPER'S EVALUATION metrics (§8.1 finish-time fairness, Jain's
// index, JCT distributions) from a completed simulation Result, offline;
// this package measures the RUNNING SYSTEM — auction-round phase latencies,
// RPC error rates, gossip membership health, arena recycling — online, with
// a record path cheap enough to live inside the zero-allocation auction
// round. Use metrics to reproduce a figure; use telemetry to find out why
// last night's round took 80 ms.
//
// # Record-path memory model
//
// Every metric is a preallocated handle obtained from a Registry at
// construction time (get-or-create, so re-registering a name returns the
// same handle). Recording is a single atomic RMW — Counter.Add and
// Gauge.Set/Add are one atomic instruction; Histogram.Observe is one atomic
// bucket increment, one atomic count increment and a CAS loop folding the
// value into the float sum — so the record path performs zero allocations
// and takes no locks, and may be called from the auction hot paths pinned by
// TestBidValuationBatchZeroAlloc and TestEventCoreZeroAlloc without breaking
// their 0 allocs/op contract (TestTelemetryRecordZeroAlloc pins this
// package's own contract). Registration, exposition and trace-ring snapshots
// allocate freely: they run at construction time or on the debug surface,
// never inside a round.
//
// Histogram buckets are fixed at registration — no dynamic resizing, no
// per-observation bucket math beyond a short linear scan — because a
// histogram that reshapes itself under load would need a lock exactly where
// we refuse to take one. Pick bounds from the expected range (DurationBuckets
// suits auction rounds: 10µs–10s, log-spaced).
package telemetry
