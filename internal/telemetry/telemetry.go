package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to a metric handle. Handles with
// the same name but different label sets are distinct series of one family.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates the three metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing count. The record path (Inc/Add) is
// one atomic add: no locks, no allocations.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. Set/Add are one atomic store/add.
type Gauge struct {
	labels string
	v      atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is lock-free and
// allocation-free: a linear scan over the (short, immutable) bounds, two
// atomic increments and a CAS loop for the float sum.
type Histogram struct {
	labels  string
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // IEEE-754 bits of the float64 sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1) // i == len(bounds) is the +Inf bucket
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets are the default bounds (seconds) for latency histograms:
// log-spaced from 10µs to 10s, the range auction rounds and scheduling RPCs
// actually occupy.
var DurationBuckets = []float64{
	10e-6, 50e-6, 100e-6, 500e-6,
	1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3,
	1, 5, 10,
}

// family is every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histograms only

	series map[string]any // rendered label string -> handle
}

// Registry holds metric families and renders them in Prometheus text
// exposition format v0.0.4. Handle creation is get-or-create — asking twice
// for the same name and labels returns the same handle — so packages can
// register handles in constructors that run many times (per-shard servers,
// tests) without unbounded growth. Registration takes the registry lock;
// recording through the returned handles never does.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry every daemon serves on
// /metrics; package-level instrumentation handles throughout the repo are
// created against it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// renderLabels renders labels sorted by key as `k1="v1",k2="v2"` (no
// surrounding braces, so histogram exposition can append an `le` label).
// Label values are escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// getFamily returns the family for name, creating it with the given kind and
// help on first use. A name registered twice with different kinds is a
// programming error and panics — the alternative is silently exposing two
// TYPE lines for one name, which Prometheus rejects.
func (r *Registry) getFamily(name, help string, k kind, bounds []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: bounds, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, k))
	}
	return f
}

// Counter returns the counter for name and labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter, nil)
	if h, ok := f.series[key]; ok {
		return h.(*Counter)
	}
	c := &Counter{labels: key}
	f.series[key] = c
	return c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge, nil)
	if h, ok := f.series[key]; ok {
		return h.(*Gauge)
	}
	g := &Gauge{labels: key}
	f.series[key] = g
	return g
}

// Histogram returns the histogram for name and labels, creating it with the
// given bucket upper bounds (ascending; nil uses DurationBuckets) on first
// use. Bounds are fixed for the family: later registrations reuse the first
// call's buckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram, bounds)
	if h, ok := f.series[key]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{labels: key, bounds: f.bounds, buckets: make([]atomic.Uint64, len(f.bounds)+1)}
	f.series[key] = h
	return h
}

// WritePrometheus renders every family in text exposition format v0.0.4.
// Families are sorted by name and series by label string, so the output is
// byte-stable for a fixed set of handles — the golden test pins this.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, k := range keys {
		switch h := f.series[k].(type) {
		case *Counter:
			writeSample(b, f.name, "", k, "", formatUint(h.Value()))
		case *Gauge:
			writeSample(b, f.name, "", k, "", strconv.FormatInt(h.Value(), 10))
		case *Histogram:
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				writeSample(b, f.name, "_bucket", k, formatFloat(bound), formatUint(cum))
			}
			cum += h.buckets[len(h.bounds)].Load()
			writeSample(b, f.name, "_bucket", k, "+Inf", formatUint(cum))
			writeSample(b, f.name, "_sum", k, "", formatFloat(h.Sum()))
			writeSample(b, f.name, "_count", k, "", formatUint(h.Count()))
		}
	}
}

// writeSample emits one exposition line. le, when non-empty, is appended as
// the trailing `le` label of a histogram bucket.
func writeSample(b *strings.Builder, name, suffix, labels, le, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || le != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if le != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
