package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"themis/internal/race"
)

func TestRoundRingKeepsLastN(t *testing.T) {
	rr := NewRoundRing(4)
	for i := 0; i < 10; i++ {
		rd := Round{Shard: "single", Now: float64(i), Offered: i}
		rd.AddSpan("probe", 0, time.Millisecond)
		rr.Record(rd)
	}
	got := rr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot holds %d rounds, want 4", len(got))
	}
	for i, rd := range got {
		wantSeq := uint64(7 + i)
		if rd.Seq != wantSeq {
			t.Errorf("round %d: seq %d, want %d", i, rd.Seq, wantSeq)
		}
		if rd.Offered != int(wantSeq-1) {
			t.Errorf("round %d: offered %d, want %d", i, rd.Offered, wantSeq-1)
		}
		if len(rd.Spans()) != 1 || rd.Spans()[0].Name != "probe" {
			t.Errorf("round %d: spans %v, want the probe span", i, rd.Spans())
		}
	}
	if rr.Len() != 4 {
		t.Errorf("Len %d, want 4", rr.Len())
	}
}

func TestRoundRingRecordZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc contract is checked without -race")
	}
	rr := NewRoundRing(8)
	allocs := testing.AllocsPerRun(500, func() {
		var rd Round
		rd.Shard = "single"
		rd.AddSpan("probe", 0, time.Millisecond)
		rd.AddSpan("solve", time.Millisecond, 2*time.Millisecond)
		rr.Record(rd)
	})
	if allocs != 0 {
		t.Errorf("recording a round trace allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRoundRingJSON(t *testing.T) {
	rr := NewRoundRing(8)
	rd := Round{Shard: "0", Now: 2.5, Offered: 64, Granted: 60, Winners: 3, Leftover: 4, Agents: 100, Total: 5 * time.Millisecond}
	rd.AddSpan("probe", 0, time.Millisecond)
	rd.AddSpan("solve", time.Millisecond, 3*time.Millisecond)
	rr.Record(rd)

	var b strings.Builder
	if err := rr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rounds []struct {
			Seq     uint64  `json:"seq"`
			Shard   string  `json:"shard"`
			Offered int     `json:"offered_gpus"`
			TotalMs float64 `json:"total_ms"`
			Spans   []struct {
				Name  string  `json:"name"`
				DurMs float64 `json:"dur_ms"`
			} `json:"spans"`
		} `json:"rounds"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid /debug/rounds JSON: %v\n%s", err, b.String())
	}
	if len(doc.Rounds) != 1 {
		t.Fatalf("got %d rounds, want 1", len(doc.Rounds))
	}
	r := doc.Rounds[0]
	if r.Seq != 1 || r.Shard != "0" || r.Offered != 64 || r.TotalMs != 5 {
		t.Errorf("round fields wrong: %+v", r)
	}
	if len(r.Spans) != 2 || r.Spans[1].Name != "solve" || r.Spans[1].DurMs != 3 {
		t.Errorf("spans wrong: %+v", r.Spans)
	}

	var text strings.Builder
	rr.WriteText(&text)
	if !strings.Contains(text.String(), "solve=3.000ms") {
		t.Errorf("text dump missing solve span:\n%s", text.String())
	}
}

func TestRoundSpanOverflowDropped(t *testing.T) {
	var rd Round
	for i := 0; i < MaxSpans+3; i++ {
		rd.AddSpan("s", 0, 0)
	}
	if got := len(rd.Spans()); got != MaxSpans {
		t.Errorf("round holds %d spans, want cap at %d", got, MaxSpans)
	}
}
