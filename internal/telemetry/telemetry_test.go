package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"themis/internal/race"
)

// TestTelemetryRecordZeroAlloc pins the record-path contract that lets these
// handles live inside the zero-alloc auction round: counter, gauge and
// histogram records are 0 allocs/op. It joins the CI zero-alloc gate next to
// TestBidValuationBatchZeroAlloc and TestEventCoreZeroAlloc.
func TestTelemetryRecordZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc contract is checked without -race")
	}
	reg := NewRegistry()
	c := reg.Counter("zz_counter_total", "probe", L("k", "v"))
	g := reg.Gauge("zz_gauge", "probe")
	h := reg.Histogram("zz_hist_seconds", "probe", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(-1)
		h.Observe(0.004)
		h.ObserveDuration(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("record path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHistogramConcurrentExact hammers one histogram from 16 goroutines and
// asserts exact totals: the count, every cumulative bucket and the CAS-folded
// sum account for every observation. Run under -race in CI.
func TestHistogramConcurrentExact(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hammer_seconds", "contended histogram", []float64{0.5, 1.5, 2.5})
	c := reg.Counter("hammer_total", "contended counter")
	g := reg.Gauge("hammer_gauge", "contended gauge")

	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Cycle through the buckets: 0, 1, 2, 3 → one per bucket incl.
				// overflow. Value 1.0 keeps the float sum exact.
				h.Observe(float64(i % 4))
				c.Inc()
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := h.Count(); got != total {
		t.Errorf("histogram count %d, want %d", got, total)
	}
	wantSum := float64(total/4) * (0 + 1 + 2 + 3)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("histogram sum %v, want %v", got, wantSum)
	}
	var bucketTotal uint64
	for i := range h.buckets {
		bucketTotal += h.buckets[i].Load()
	}
	if bucketTotal != total {
		t.Errorf("bucket increments %d, want %d (every observation lands in exactly one bucket)", bucketTotal, total)
	}
	if got := c.Value(); got != total {
		t.Errorf("counter %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge %d, want %d", got, total)
	}
}

// TestGetOrCreateReturnsSameHandle pins the re-registration contract that
// keeps per-shard constructors from growing the registry.
func TestGetOrCreateReturnsSameHandle(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "first", L("shard", "0"))
	b := reg.Counter("dup_total", "second registration's help is ignored", L("shard", "0"))
	if a != b {
		t.Fatal("same name+labels returned distinct counter handles")
	}
	other := reg.Counter("dup_total", "", L("shard", "1"))
	if a == other {
		t.Fatal("distinct labels returned the same handle")
	}
	ha := reg.Histogram("dup_seconds", "", []float64{1, 2})
	hb := reg.Histogram("dup_seconds", "", []float64{1, 2})
	if ha != hb {
		t.Fatal("same histogram registration returned distinct handles")
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("conflict_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's name did not panic")
		}
	}()
	reg.Gauge("conflict_total", "")
}

// TestPrometheusExpositionGolden pins the full text exposition of a registry
// with one family of each kind: HELP/TYPE lines, sorted family and series
// order, label rendering, cumulative buckets, +Inf, sum and count.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	// Registered deliberately out of name order to pin the sort.
	g := reg.Gauge("themis_test_gauge", "A gauge.", L("shard", "0"))
	g.Set(-7)
	c1 := reg.Counter("themis_test_requests_total", "Requests.", L("endpoint", "/v1/auction"), L("class", "2xx"))
	c1.Add(12)
	c0 := reg.Counter("themis_test_requests_total", "Requests.", L("class", "5xx"), L("endpoint", "/v1/auction"))
	c0.Inc()
	h := reg.Histogram("themis_test_round_seconds", "Round latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP themis_test_gauge A gauge.
# TYPE themis_test_gauge gauge
themis_test_gauge{shard="0"} -7
# HELP themis_test_requests_total Requests.
# TYPE themis_test_requests_total counter
themis_test_requests_total{class="2xx",endpoint="/v1/auction"} 12
themis_test_requests_total{class="5xx",endpoint="/v1/auction"} 1
# HELP themis_test_round_seconds Round latency.
# TYPE themis_test_round_seconds histogram
themis_test_round_seconds_bucket{le="0.01"} 1
themis_test_round_seconds_bucket{le="0.1"} 3
themis_test_round_seconds_bucket{le="1"} 3
themis_test_round_seconds_bucket{le="+Inf"} 4
themis_test_round_seconds_sum 2.105
themis_test_round_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// A second render must be byte-identical: ordering is stable, not
	// map-iteration luck.
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("two renders of the same registry differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", L("path", `C:\tmp "x"`+"\n"))
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="C:\\tmp \"x\"\n"} 0`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label line %q missing from:\n%s", want, b.String())
	}
}
