package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsAndHealthzHandlers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("probe_total", "A counter.").Add(5)
	ring := NewRoundRing(4)
	ring.Record(Round{Shard: "single", Offered: 8})

	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/healthz", HealthzHandler())
	mux.Handle("/debug/rounds", RoundsHandler(ring))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "probe_total 5") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body = get(t, srv, "/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
	if code, body = get(t, srv, "/debug/rounds"); code != 200 || !strings.Contains(body, `"offered_gpus": 8`) {
		t.Errorf("/debug/rounds: code %d body %q", code, body)
	}
}

func TestDebugMuxServesPprof(t *testing.T) {
	srv := httptest.NewServer(DebugMux(NewRegistry(), nil))
	defer srv.Close()

	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
	if code, body := get(t, srv, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index: code %d", code)
	}
	// Nil ring still serves an (empty) rounds document.
	if code, body := get(t, srv, "/debug/rounds"); code != 200 || !strings.Contains(body, `"rounds": []`) {
		t.Errorf("/debug/rounds with nil ring: code %d body %q", code, body)
	}
}

func TestInstrumentCountsByClass(t *testing.T) {
	reg := NewRegistry()
	h := Instrument(reg, "/v1/test", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("mode") {
		case "fail":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "bad":
			http.Error(w, "nope", http.StatusBadRequest)
		default:
			fmt.Fprint(w, "ok")
		}
	})
	mux := http.NewServeMux()
	mux.Handle("/v1/test", h)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, mode := range []string{"", "", "fail", "bad", "bad", "bad"} {
		get(t, srv, "/v1/test?mode="+mode)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`themis_http_requests_total{class="2xx",endpoint="/v1/test"} 2`,
		`themis_http_requests_total{class="4xx",endpoint="/v1/test"} 3`,
		`themis_http_requests_total{class="5xx",endpoint="/v1/test"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `themis_http_request_seconds_count{endpoint="/v1/test"} 6`) {
		t.Errorf("latency histogram did not record 6 requests:\n%s", out)
	}
}
