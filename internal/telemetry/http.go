package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// MetricsHandler serves reg in Prometheus text exposition format v0.0.4.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// HealthzHandler answers liveness probes with 200 "ok".
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
}

// RoundsHandler serves ring's retained round traces as JSON. A nil ring
// serves an empty document, so daemons without an arbiter (agentd) can mount
// the same debug surface.
func RoundsHandler(ring *RoundRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if ring == nil {
			_, _ = w.Write([]byte("{\"rounds\": []}\n"))
			return
		}
		_ = ring.WriteJSON(w)
	})
}

// DebugMux builds the opt-in debug surface daemons serve behind -debug-addr:
// /metrics, /healthz, /debug/rounds, and net/http/pprof under /debug/pprof/.
// It is a separate mux by design — profiling endpoints can stall a process
// for seconds and must never ride the public protocol listener.
func DebugMux(reg *Registry, ring *RoundRing) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/healthz", HealthzHandler())
	mux.Handle("/debug/rounds", RoundsHandler(ring))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// statusWriter captures the response status code for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// endpointMetrics are the preallocated handles Instrument binds per endpoint:
// a latency histogram and one counter per status class. Wrapping happens at
// mux construction, so serving a request touches no registry locks.
type endpointMetrics struct {
	latency *Histogram
	classes [6]*Counter // index code/100; 0 is the catch-all
}

func newEndpointMetrics(reg *Registry, endpoint string) *endpointMetrics {
	m := &endpointMetrics{
		latency: reg.Histogram("themis_http_request_seconds",
			"HTTP request latency by endpoint.", nil, L("endpoint", endpoint)),
	}
	for c := range m.classes {
		class := "unknown"
		if c > 0 {
			class = strconv.Itoa(c) + "xx"
		}
		m.classes[c] = reg.Counter("themis_http_requests_total",
			"HTTP requests by endpoint and status class.",
			L("endpoint", endpoint), L("class", class))
	}
	return m
}

// Instrument wraps an HTTP handler with per-endpoint latency and
// status-class accounting against reg.
func Instrument(reg *Registry, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	m := newEndpointMetrics(reg, endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(&sw, r)
		m.latency.ObserveDuration(time.Since(start))
		class := sw.code / 100
		if class < 1 || class >= len(m.classes) {
			class = 0
		}
		m.classes[class].Inc()
	}
}
