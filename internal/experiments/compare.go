package experiments

import (
	"context"
	"fmt"

	"themis/internal/cluster"
	"themis/internal/metrics"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Comparison holds the results of running the same testbed-scale workload
// under every scheduler in the comparison set (§8.3). Figures 5a, 5b, 6 and
// 7 are all different views of this one experiment.
type Comparison struct {
	// Results maps scheme name to its simulation result.
	Results map[string]*sim.Result
	// Summaries holds per-scheme headline metrics in SchemeOrder.
	Summaries []metrics.Summary
	// IdealMaxFairness is the ρ an ideal scheduler would achieve given the
	// workload's peak contention (the paper reports 4.76× for its workload).
	IdealMaxFairness float64
}

// RunComparison replays the testbed workload (50-GPU cluster, durations
// scaled down 5× as in the paper's §8.3 footnote) under Themis, Gandiva,
// SLAQ and Tiresias, running the four schemes concurrently through the
// sweep engine.
func RunComparison(opts Options) (*Comparison, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := cluster.TestbedCluster()
	set := SchedulerSet(opts.themisConfig())
	specs := make([]RunSpec, 0, len(SchemeOrder))
	for _, scheme := range SchemeOrder {
		newPolicy, ok := set[scheme]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scheme %q", scheme)
		}
		specs = append(specs, opts.spec(
			fmt.Sprintf("comparison run %s", scheme), topo,
			func() ([]*workload.App, error) { return opts.testbedWorkload(opts.Seed) },
			newPolicy,
		))
	}
	results, err := Sweep(context.Background(), opts.Workers, specs)
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{Results: make(map[string]*sim.Result, len(set))}
	peak := 0.0
	for i, scheme := range SchemeOrder {
		res := results[i]
		cmp.Results[scheme] = res
		cmp.Summaries = append(cmp.Summaries, metrics.Summarize(res))
		if res.PeakContention > peak {
			peak = res.PeakContention
		}
	}
	// Peak contention here is measured as used/capacity; the paper's
	// contention statistic is demand/capacity, which equals ours when the
	// cluster saturates. Scale by aggregate demand over capacity to recover
	// the paper's definition.
	cmp.IdealMaxFairness = metrics.IdealMaxFairness(demandContention(opts, topo))
	return cmp, nil
}

// demandContention computes the peak aggregate GPU demand over capacity for
// the comparison workload — the paper's contention statistic (4.76× on its
// testbed workload).
func demandContention(opts Options, topo *cluster.Topology) float64 {
	apps, err := opts.testbedWorkload(opts.Seed)
	if err != nil {
		return 1
	}
	// Aggregate demand over time: each app demands its max parallelism from
	// submission until (approximately) submission + total work / parallelism.
	type event struct {
		t float64
		d int
	}
	var events []event
	for _, a := range apps {
		demand := a.MaxParallelism()
		if demand == 0 {
			continue
		}
		dur := a.TotalWork() / float64(demand)
		events = append(events, event{a.SubmitTime, demand}, event{a.SubmitTime + dur, -demand})
	}
	// Sweep.
	maxDemand := 0
	cur := 0
	for {
		// find earliest remaining event
		best := -1
		for i, e := range events {
			if e.d == 0 {
				continue
			}
			if best == -1 || e.t < events[best].t {
				best = i
			}
		}
		if best == -1 {
			break
		}
		cur += events[best].d
		events[best].d = 0
		if cur > maxDemand {
			maxDemand = cur
		}
	}
	c := float64(maxDemand) / float64(topo.TotalGPUs())
	if c < 1 {
		return 1
	}
	return c
}

// Figure5aRow is one bar of Figure 5a: a scheme's worst-case finish-time
// fairness.
type Figure5aRow struct {
	Scheme      string
	MaxFairness float64
	// PercentFromIdeal is how far the scheme is from the ideal max fairness,
	// the statistic the paper quotes (Themis ≈7%, others 68–2155%).
	PercentFromIdeal float64
}

// Figure5a extracts the max-fairness comparison from a Comparison.
func (c *Comparison) Figure5a() []Figure5aRow {
	var rows []Figure5aRow
	for _, s := range c.Summaries {
		pct := 0.0
		if c.IdealMaxFairness > 0 {
			pct = 100 * (s.MaxFairness - c.IdealMaxFairness) / c.IdealMaxFairness
		}
		rows = append(rows, Figure5aRow{Scheme: s.Policy, MaxFairness: s.MaxFairness, PercentFromIdeal: pct})
	}
	return rows
}

// Figure5bRow is one bar of Figure 5b: a scheme's Jain's fairness index.
type Figure5bRow struct {
	Scheme     string
	JainsIndex float64
}

// Figure5b extracts the Jain's-index comparison from a Comparison.
func (c *Comparison) Figure5b() []Figure5bRow {
	var rows []Figure5bRow
	for _, s := range c.Summaries {
		rows = append(rows, Figure5bRow{Scheme: s.Policy, JainsIndex: s.JainsIndex})
	}
	return rows
}

// FigureCDF is one scheme's CDF series for Figures 6 and 7.
type FigureCDF struct {
	Scheme    string
	Values    []float64
	Fractions []float64
}

// Figure6 extracts per-scheme app-completion-time CDFs (Figure 6).
func (c *Comparison) Figure6(points int) []FigureCDF {
	var out []FigureCDF
	for _, scheme := range SchemeOrder {
		res, ok := c.Results[scheme]
		if !ok {
			continue
		}
		cdf := metrics.NewCDF(metrics.CompletionTimes(res), points)
		out = append(out, FigureCDF{Scheme: scheme, Values: cdf.Values, Fractions: cdf.Fractions})
	}
	return out
}

// Figure7 extracts per-scheme placement-score CDFs (Figure 7).
func (c *Comparison) Figure7(points int) []FigureCDF {
	var out []FigureCDF
	for _, scheme := range SchemeOrder {
		res, ok := c.Results[scheme]
		if !ok {
			continue
		}
		cdf := metrics.NewCDF(metrics.PlacementScores(res), points)
		out = append(out, FigureCDF{Scheme: scheme, Values: cdf.Values, Fractions: cdf.Fractions})
	}
	return out
}

// MeanJCTImprovement reports Themis's percentage improvement in mean app
// completion time over each other scheme (the paper quotes 4.6%, 55.5% and
// 24.4% vs Gandiva, SLAQ and Tiresias).
func (c *Comparison) MeanJCTImprovement() map[string]float64 {
	out := make(map[string]float64)
	themis, ok := c.Results["themis"]
	if !ok {
		return out
	}
	base := metrics.MeanCompletionTime(themis)
	for scheme, res := range c.Results {
		if scheme == "themis" {
			continue
		}
		other := metrics.MeanCompletionTime(res)
		if other > 0 {
			out[scheme] = 100 * (other - base) / other
		}
	}
	return out
}

// FinishedApps reports how many apps finished under each scheme (sanity
// check that comparisons are apples-to-apples).
func (c *Comparison) FinishedApps() map[string]int {
	out := make(map[string]int, len(c.Results))
	for scheme, res := range c.Results {
		out[scheme] = len(res.Finished())
	}
	return out
}

// AppRecords returns the per-app records for one scheme (for deeper
// analysis or CSV export).
func (c *Comparison) AppRecords(scheme string) []sim.AppRecord {
	res, ok := c.Results[scheme]
	if !ok {
		return nil
	}
	return res.Apps
}

// WorstApp returns the app with the worst finish-time fairness under the
// given scheme.
func (c *Comparison) WorstApp(scheme string) (workload.AppID, float64) {
	res, ok := c.Results[scheme]
	if !ok {
		return "", 0
	}
	worst := workload.AppID("")
	worstRho := 0.0
	for _, rec := range res.Finished() {
		if rec.FinishTimeFairness > worstRho {
			worst, worstRho = rec.App, rec.FinishTimeFairness
		}
	}
	return worst, worstRho
}
