package experiments

import (
	"testing"
)

// tiny returns the smallest options that still exercise every figure's code
// path; the full Quick()/Default() scales are reserved for benchmarks and
// the expdriver binary.
func tiny() Options {
	o := Quick()
	o.SimApps = 6
	o.TestbedApps = 6
	o.JobsPerAppMedian = 3
	o.MaxJobsPerApp = 5
	o.SimDurationScale = 0.1
	o.TestbedDurationScale = 0.1
	o.SimClusterScale = 0.2
	o.MeanInterArrival = 3
	o.LeaseDuration = 8
	o.Horizon = 6000
	return o
}

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{Default(), Quick(), tiny()} {
		if err := o.Validate(); err != nil {
			t.Errorf("options %+v invalid: %v", o, err)
		}
	}
	bad := Default()
	bad.SimApps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SimApps should be invalid")
	}
	bad = Default()
	bad.FairnessKnob = 2
	if err := bad.Validate(); err == nil {
		t.Error("fairness knob 2 should be invalid")
	}
}

func TestFigure1(t *testing.T) {
	res, err := Figure1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 100 || len(res.Fractions) != 100 {
		t.Fatalf("CDF lengths %d,%d", len(res.Durations), len(res.Fractions))
	}
	for i := 1; i < len(res.Durations); i++ {
		if res.Durations[i] < res.Durations[i-1] {
			t.Fatal("duration CDF not monotone")
		}
	}
	// The trace tops out near the paper's 1000-minute cap and has the
	// paper's jobs-per-app range.
	if res.Durations[99] > 1000.01 {
		t.Errorf("max duration %v exceeds 1000-minute cap", res.Durations[99])
	}
	if res.Stats.JobsPerAppMax > 98 || res.Stats.JobsPerAppMin < 1 {
		t.Errorf("jobs per app out of the paper's range: %+v", res.Stats)
	}
}

func TestFigure2Shape(t *testing.T) {
	rows := Figure2()
	if len(rows) != 5 {
		t.Fatalf("Figure 2 has %d models, want 5", len(rows))
	}
	byModel := make(map[string]Figure2Row, len(rows))
	for _, r := range rows {
		byModel[r.Model] = r
		if r.OneServer <= 0 || r.TwoByTwoServers <= 0 {
			t.Errorf("%s throughput non-positive", r.Model)
		}
		if r.TwoByTwoServers > r.OneServer+1e-9 {
			t.Errorf("%s: spreading across servers should never speed up", r.Model)
		}
	}
	// The paper's key contrast: VGG16 suffers badly from spreading,
	// ResNet50 barely at all.
	if byModel["VGG16"].Slowdown > 0.75 {
		t.Errorf("VGG16 2x2 slowdown %v, want < 0.75", byModel["VGG16"].Slowdown)
	}
	if byModel["ResNet50"].Slowdown < 0.9 {
		t.Errorf("ResNet50 2x2 slowdown %v, want > 0.9", byModel["ResNet50"].Slowdown)
	}
}

func TestFigure4aShape(t *testing.T) {
	rows, err := Figure4a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure4aKnobs) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MaxFairness < r.MedianFairness || r.MedianFairness < r.MinFairness {
			t.Errorf("fairness ordering violated at f=%v: %+v", r.F, r)
		}
		if r.MaxFairness <= 0 {
			t.Errorf("non-positive max fairness at f=%v", r.F)
		}
	}
	// Higher f should not make worst-case fairness dramatically worse: the
	// paper's trend is decreasing max fairness with f. Allow noise at tiny
	// scale but require the f=0.8 point to be no worse than 1.5× the f=0 point.
	var f0, f08 float64
	for _, r := range rows {
		if r.F == 0 {
			f0 = r.MaxFairness
		}
		if r.F == 0.8 {
			f08 = r.MaxFairness
		}
	}
	if f08 > f0*1.5 {
		t.Errorf("max fairness at f=0.8 (%v) much worse than at f=0 (%v)", f08, f0)
	}
}

func TestComparisonFigures5Through7(t *testing.T) {
	cmp, err := RunComparison(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Summaries) != 4 {
		t.Fatalf("expected 4 schemes, got %d", len(cmp.Summaries))
	}
	// Every scheme should finish the whole workload at this tiny scale.
	for scheme, n := range cmp.FinishedApps() {
		if n == 0 {
			t.Errorf("scheme %s finished no apps", scheme)
		}
	}
	fig5a := cmp.Figure5a()
	if len(fig5a) != 4 {
		t.Fatalf("Figure 5a rows = %d", len(fig5a))
	}
	byScheme := make(map[string]Figure5aRow)
	for _, r := range fig5a {
		byScheme[r.Scheme] = r
		if r.MaxFairness <= 0 {
			t.Errorf("%s max fairness %v", r.Scheme, r.MaxFairness)
		}
	}
	// Themis must not be the worst scheme on max fairness.
	worstScheme, worstVal := "", 0.0
	for s, r := range byScheme {
		if r.MaxFairness > worstVal {
			worstScheme, worstVal = s, r.MaxFairness
		}
	}
	if worstScheme == "themis" {
		t.Errorf("Themis has the worst max fairness (%v): %+v", worstVal, byScheme)
	}
	fig5b := cmp.Figure5b()
	for _, r := range fig5b {
		if r.JainsIndex <= 0 || r.JainsIndex > 1 {
			t.Errorf("%s Jain's index %v out of range", r.Scheme, r.JainsIndex)
		}
	}
	fig6 := cmp.Figure6(20)
	fig7 := cmp.Figure7(20)
	if len(fig6) != 4 || len(fig7) != 4 {
		t.Fatalf("CDF figure scheme counts: %d, %d", len(fig6), len(fig7))
	}
	for _, c := range fig7 {
		for _, v := range c.Values {
			if v < 0.5-1e-9 || v > 1+1e-9 {
				t.Errorf("%s placement score %v outside [0.5,1]", c.Scheme, v)
			}
		}
	}
	if cmp.IdealMaxFairness < 1 {
		t.Errorf("ideal max fairness %v < 1", cmp.IdealMaxFairness)
	}
	impr := cmp.MeanJCTImprovement()
	if len(impr) != 3 {
		t.Errorf("JCT improvement entries = %d, want 3", len(impr))
	}
	if app, rho := cmp.WorstApp("themis"); app == "" || rho <= 0 {
		t.Errorf("WorstApp = %v, %v", app, rho)
	}
	if recs := cmp.AppRecords("gandiva"); len(recs) == 0 {
		t.Error("no app records for gandiva")
	}
	if recs := cmp.AppRecords("nonexistent"); recs != nil {
		t.Error("records for unknown scheme should be nil")
	}
}

func TestFigure8Timeline(t *testing.T) {
	res, err := Figure8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Short) < 2 || len(res.Long) < 2 {
		t.Fatalf("timelines too short: short=%d long=%d", len(res.Short), len(res.Long))
	}
	// Both apps must eventually receive GPUs.
	shortPeak, longPeak := 0, 0
	for _, e := range res.Short {
		if e.GPUs > shortPeak {
			shortPeak = e.GPUs
		}
	}
	for _, e := range res.Long {
		if e.GPUs > longPeak {
			longPeak = e.GPUs
		}
	}
	if shortPeak == 0 || longPeak == 0 {
		t.Errorf("an app never received GPUs: short peak %d, long peak %d", shortPeak, longPeak)
	}
	if res.Result.AppsFinished < 2 {
		t.Errorf("only %d apps finished in the Figure 8 scenario", res.Result.AppsFinished)
	}
}

func TestFigure11ErrorRobustness(t *testing.T) {
	rows, err := Figure11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure11Thetas) {
		t.Fatalf("rows = %d", len(rows))
	}
	base := rows[0].MaxFairness
	for _, r := range rows {
		if r.MaxFairness <= 0 {
			t.Errorf("theta %v: non-positive max fairness", r.Theta)
		}
		// The paper's point: even 20% error does not change max fairness
		// significantly. Allow a generous 2× band at tiny scale.
		if r.MaxFairness > base*2 {
			t.Errorf("theta %v: max fairness %v far from baseline %v", r.Theta, r.MaxFairness, base)
		}
	}
}
