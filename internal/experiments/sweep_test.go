package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"themis/internal/metrics"
	"themis/internal/schedulers"
	"themis/internal/sim"
	"themis/internal/workload"
)

func TestRunGridBoundsConcurrency(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		var inFlight, peak, ran atomic.Int64
		err := RunGrid(context.Background(), workers, 32, func(ctx context.Context, i int) error {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 32 {
			t.Errorf("workers=%d: ran %d of 32 tasks", workers, ran.Load())
		}
		if p := peak.Load(); p > int64(workers) {
			t.Errorf("workers=%d: observed %d tasks in flight", workers, p)
		}
	}
}

func TestRunGridCancellationMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	err := RunGrid(ctx, 2, 64, func(ctx context.Context, i int) error {
		started.Add(1)
		once.Do(func() {
			cancel()
			close(release)
		})
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-release:
			<-ctx.Done()
			return ctx.Err()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation must prevent the bulk of the grid from starting.
	if n := started.Load(); n > 8 {
		t.Errorf("%d tasks started after cancellation", n)
	}
}

func TestRunGridReportsLowestIndexedRealError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	err := RunGrid(context.Background(), 4, 16, func(ctx context.Context, i int) error {
		switch i {
		case 3, 9:
			return boom(i)
		default:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return nil
			}
		}
	})
	if err == nil {
		t.Fatal("grid with failing tasks returned nil error")
	}
	if got := err.Error(); got != "task 3 failed" && got != "task 9 failed" {
		t.Fatalf("err = %q, want one of the real task failures", got)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v: collateral cancellation masked the real failure", err)
	}
}

// sweepSpecs builds a small policy × seed grid of real simulation runs.
func sweepSpecs(opts Options) []RunSpec {
	topo := opts.simTopology()
	var specs []RunSpec
	for _, scheme := range []string{"themis", "tiresias", "gandiva"} {
		for _, seed := range []int64{3, 11} {
			seed := seed
			newPolicy := SchedulerSet(opts.themisConfig())[scheme]
			specs = append(specs, opts.spec(
				fmt.Sprintf("%s/seed=%d", scheme, seed), topo,
				func() ([]*workload.App, error) { return opts.testbedWorkload(seed) },
				newPolicy,
			))
		}
	}
	return specs
}

// TestSweepResultOrderIsDeterministic runs the same grid sequentially and
// with several pool sizes: results must align with specs and be identical
// in content regardless of worker count.
func TestSweepResultOrderIsDeterministic(t *testing.T) {
	opts := Quick()
	opts.TestbedApps = 6
	opts.JobsPerAppMedian = 3
	opts.MaxJobsPerApp = 6
	baseline, err := Sweep(context.Background(), 1, sweepSpecs(opts))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		results, err := Sweep(context.Background(), workers, sweepSpecs(opts))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(baseline) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(baseline))
		}
		for i := range results {
			if !reflect.DeepEqual(results[i].Apps, baseline[i].Apps) {
				t.Errorf("workers=%d: result %d differs from sequential run", workers, i)
			}
			if results[i].Makespan != baseline[i].Makespan {
				t.Errorf("workers=%d: result %d makespan %v != %v", workers, i, results[i].Makespan, baseline[i].Makespan)
			}
		}
	}
}

func TestSweepPropagatesSpecErrors(t *testing.T) {
	opts := Quick()
	specs := sweepSpecs(opts)
	specs[2].Policy = func() (sim.Policy, error) { return nil, fmt.Errorf("deliberately broken factory") }
	_, err := Sweep(context.Background(), 4, specs)
	if err == nil {
		t.Fatal("sweep with a broken spec returned nil error")
	}
	if want := specs[2].Name; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %q, want it to name spec %q", err, want)
	}
}

func TestSweepCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, 4, sweepSpecs(Quick()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestThemisFairnessProperty is the paper's headline invariant as a
// property test: under the Themis policy, every app that finishes does so
// no faster than its dedicated-cluster ideal, i.e. finish-time fairness
// ρ ≥ 1 − ε, across randomized traces.
func TestThemisFairnessProperty(t *testing.T) {
	const eps = 1e-6
	opts := Quick()
	opts.SimApps = 8
	opts.JobsPerAppMedian = 3
	opts.MaxJobsPerApp = 6
	topo := opts.simTopology()
	var specs []RunSpec
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		specs = append(specs, opts.spec(
			fmt.Sprintf("themis-property/seed=%d", seed), topo,
			func() ([]*workload.App, error) { return opts.simWorkloadWith(seed, 0.4, 1+float64(seed%3)) },
			func() (sim.Policy, error) { return schedulers.NewThemis(opts.themisConfig()) },
		))
	}
	results, err := Sweep(context.Background(), 0, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if len(res.Finished()) == 0 {
			t.Errorf("%s: no app finished within the horizon", specs[i].Name)
		}
		for _, rec := range res.Finished() {
			if rec.FinishTimeFairness < 1-eps {
				t.Errorf("%s: app %s has rho %v < 1-eps under Themis", specs[i].Name, rec.App, rec.FinishTimeFairness)
			}
		}
		if max := metrics.MaxFairness(res); max < 1-eps {
			t.Errorf("%s: max fairness %v < 1-eps", specs[i].Name, max)
		}
	}
}
