package experiments

import (
	"fmt"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/metrics"
	"themis/internal/placement"
	"themis/internal/schedulers"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Figure1Result reproduces Figure 1: the CDF of task durations in the trace.
type Figure1Result struct {
	Durations []float64 // minutes
	Fractions []float64
	Stats     workload.Stats
}

// Figure1 generates a trace with the paper's distributional parameters and
// returns the task-duration CDF. Duration scaling is not applied so the
// x-axis is directly comparable with the paper's (0–1000 minutes).
func Figure1(opts Options) (Figure1Result, error) {
	if err := opts.Validate(); err != nil {
		return Figure1Result{}, err
	}
	cfg := opts.generatorConfig(maxIntE(opts.SimApps, 200), opts.Seed, 0.4, 1, 1)
	apps, err := workload.Generate(cfg)
	if err != nil {
		return Figure1Result{}, err
	}
	durations, fractions := workload.DurationCDF(apps, 100)
	return Figure1Result{Durations: durations, Fractions: fractions, Stats: workload.Summarize(apps)}, nil
}

// Figure2Row is one bar group of Figure 2: a model's aggregate throughput
// with 4 GPUs on one server vs 4 GPUs across two servers (2×2).
type Figure2Row struct {
	Model           string
	OneServer       float64 // images/sec
	TwoByTwoServers float64 // images/sec
	Slowdown        float64 // TwoByTwo / OneServer
}

// Figure2 evaluates the placement-sensitivity model for the five models the
// paper profiles.
func Figure2() []Figure2Row {
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 2, GPUs: 4, SlotSize: 4, GPU: cluster.GPUTypeP100}},
		MachinesPerRack: 2,
	}.Build()
	if err != nil {
		panic("experiments: building Figure 2 topology: " + err.Error())
	}
	oneServer := cluster.Alloc{0: 4}
	twoByTwo := cluster.Alloc{0: 2, 1: 2}
	var rows []Figure2Row
	for _, m := range placement.Figure2Models() {
		one := m.Throughput(topo, oneServer)
		two := m.Throughput(topo, twoByTwo)
		rows = append(rows, Figure2Row{Model: m.Name, OneServer: one, TwoByTwoServers: two, Slowdown: two / one})
	}
	return rows
}

// Figure4aRow is one point of Figure 4a: finish-time fairness vs the
// fairness knob f.
type Figure4aRow struct {
	F              float64
	MaxFairness    float64
	MedianFairness float64
	MinFairness    float64
}

// Figure4aKnobs is the set of f values swept by Figures 4a and 4b.
var Figure4aKnobs = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Figure4a sweeps the fairness knob on the 256-GPU simulated cluster and
// reports the max/median/min finish-time fairness across apps. The knob ×
// seed grid runs through the parallel sweep engine.
func Figure4a(opts Options) ([]Figure4aRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	avgs, err := opts.sweepAverage(len(Figure4aKnobs),
		func(p int, seed int64) []RunSpec {
			f := Figure4aKnobs[p]
			cfg := opts.themisConfig()
			cfg.FairnessKnob = f
			return []RunSpec{opts.spec(
				fmt.Sprintf("figure 4a at f=%v seed=%d", f, seed), topo,
				func() ([]*workload.App, error) { return opts.simWorkload(seed) },
				func() (sim.Policy, error) { return schedulers.NewThemis(cfg) },
			)}
		},
		func(p int, cell []*sim.Result) ([]float64, error) {
			res := cell[0]
			return []float64{metrics.MaxFairness(res), metrics.MedianFairness(res), metrics.MinFairness(res)}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Figure4aRow
	for p, f := range Figure4aKnobs {
		rows = append(rows, Figure4aRow{F: f, MaxFairness: avgs[p][0], MedianFairness: avgs[p][1], MinFairness: avgs[p][2]})
	}
	return rows, nil
}

// Figure4bRow is one point of Figure 4b: cluster GPU time vs f.
type Figure4bRow struct {
	F       float64
	GPUTime float64 // GPU-minutes
}

// Figure4b sweeps the fairness knob and reports total GPU time (lower means
// the cluster was used more efficiently for the same workload).
func Figure4b(opts Options) ([]Figure4bRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	avgs, err := opts.sweepAverage(len(Figure4aKnobs),
		func(p int, seed int64) []RunSpec {
			f := Figure4aKnobs[p]
			cfg := opts.themisConfig()
			cfg.FairnessKnob = f
			return []RunSpec{opts.spec(
				fmt.Sprintf("figure 4b at f=%v seed=%d", f, seed), topo,
				func() ([]*workload.App, error) { return opts.simWorkload(seed) },
				func() (sim.Policy, error) { return schedulers.NewThemis(cfg) },
			)}
		},
		func(p int, cell []*sim.Result) ([]float64, error) {
			return []float64{metrics.GPUTime(cell[0])}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Figure4bRow
	for p, f := range Figure4aKnobs {
		rows = append(rows, Figure4bRow{F: f, GPUTime: avgs[p][0]})
	}
	return rows, nil
}

// Figure4cRow is one point of Figure 4c: max finish-time fairness vs lease
// duration.
type Figure4cRow struct {
	LeaseMinutes float64
	MaxFairness  float64
}

// Figure4cLeases is the lease-duration sweep of Figure 4c (minutes).
var Figure4cLeases = []float64{5, 10, 20, 30, 40}

// Figure4c sweeps the lease duration at the default fairness knob.
func Figure4c(opts Options) ([]Figure4cRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	avgs, err := opts.sweepAverage(len(Figure4cLeases),
		func(p int, seed int64) []RunSpec {
			lease := Figure4cLeases[p]
			cfg := opts.themisConfig()
			cfg.LeaseDuration = lease
			runOpts := opts
			runOpts.LeaseDuration = lease
			return []RunSpec{runOpts.spec(
				fmt.Sprintf("figure 4c at lease=%v seed=%d", lease, seed), topo,
				func() ([]*workload.App, error) { return opts.simWorkload(seed) },
				func() (sim.Policy, error) { return schedulers.NewThemis(cfg) },
			)}
		},
		func(p int, cell []*sim.Result) ([]float64, error) {
			return []float64{metrics.MaxFairness(cell[0])}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Figure4cRow
	for p, lease := range Figure4cLeases {
		rows = append(rows, Figure4cRow{LeaseMinutes: lease, MaxFairness: avgs[p][0]})
	}
	return rows, nil
}

// Figure8Result reproduces Figure 8: the GPU-allocation timelines of a short
// and a long app that arrive together and compete under Themis.
type Figure8Result struct {
	ShortApp workload.AppID
	LongApp  workload.AppID
	Short    []sim.AllocationEvent
	Long     []sim.AllocationEvent
	Result   *metrics.Summary
}

// Figure8 hand-builds the scenario the paper describes: two single-job apps
// with a 3× difference in running time and equal placement sensitivity
// arriving at t=40 into a small busy cluster, scheduled by Themis.
func Figure8(opts Options) (Figure8Result, error) {
	if err := opts.Validate(); err != nil {
		return Figure8Result{}, err
	}
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 4, GPUs: 4, SlotSize: 2, GPU: cluster.GPUTypeP100}},
		MachinesPerRack: 2,
	}.Build()
	if err != nil {
		return Figure8Result{}, err
	}
	mkApp := func(id string, submit, work float64, n int) *workload.App {
		var jobs []*workload.Job
		for i := 0; i < n; i++ {
			j := workload.NewJob(workload.AppID(id), i, work, 4)
			j.Quality = float64(i) / float64(n+1)
			j.Seed = int64(i + 7)
			jobs = append(jobs, j)
		}
		return workload.NewApp(workload.AppID(id), submit, placement.VGG16, jobs)
	}
	// Background load occupying the cluster before the two apps arrive.
	apps := []*workload.App{
		mkApp("bg-0", 0, 480, 2),
		mkApp("bg-1", 0, 480, 2),
		mkApp("short", 40, 160, 1),
		mkApp("long", 40, 480, 1),
	}
	policy, err := schedulers.NewThemis(opts.themisConfig())
	if err != nil {
		return Figure8Result{}, err
	}
	runOpts := opts
	runOpts.LeaseDuration = 20
	res, err := runOpts.runSim(topo, apps, policy)
	if err != nil {
		return Figure8Result{}, err
	}
	sum := metrics.Summarize(res)
	return Figure8Result{
		ShortApp: "short",
		LongApp:  "long",
		Short:    res.TimelineFor("short"),
		Long:     res.TimelineFor("long"),
		Result:   &sum,
	}, nil
}

func maxIntE(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SchedulerSet returns the comparison policies of §8.3 keyed by the paper's
// names, constructed fresh (policies hold per-run agent state). Factories
// return an error when the Themis configuration is invalid.
func SchedulerSet(themisCfg core.Config) map[string]func() (sim.Policy, error) {
	return map[string]func() (sim.Policy, error){
		"themis":   func() (sim.Policy, error) { return schedulers.NewThemis(themisCfg) },
		"gandiva":  func() (sim.Policy, error) { return schedulers.NewGandiva(), nil },
		"slaq":     func() (sim.Policy, error) { return schedulers.NewSLAQ(), nil },
		"tiresias": func() (sim.Policy, error) { return schedulers.NewTiresias(), nil },
	}
}

// SchemeOrder is the presentation order used by the paper's comparison plots.
var SchemeOrder = []string{"themis", "gandiva", "slaq", "tiresias"}
