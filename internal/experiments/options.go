// Package experiments reproduces the paper's evaluation: one constructor per
// figure, each returning the data series the figure plots, produced by
// running the event-driven simulator with the relevant workload and
// scheduler configuration. The cmd/expdriver binary and the repository's
// benchmarks are thin wrappers over these constructors.
package experiments

import (
	"context"
	"fmt"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/hyperparam"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Options control the scale and parameters of the experiment runs. The
// defaults mirror the paper's setup; Quick returns a scaled-down variant for
// tests and benchmarks that must complete in seconds while preserving the
// figures' qualitative shapes.
type Options struct {
	// Seed drives workload generation; each experiment derives per-run seeds
	// from it deterministically.
	Seed int64
	// SimApps is the number of apps submitted to the 256-GPU simulated
	// cluster experiments.
	SimApps int
	// TestbedApps is the number of apps submitted to the 50-GPU testbed
	// experiments (Figures 5–8).
	TestbedApps int
	// JobsPerAppMedian controls workload size (the paper's trace median is 23).
	JobsPerAppMedian float64
	// MaxJobsPerApp caps trials per app.
	MaxJobsPerApp int
	// SimDurationScale scales job durations in simulated-cluster
	// experiments (the paper replays them unscaled).
	SimDurationScale float64
	// TestbedDurationScale scales job durations in testbed experiments; the
	// paper scales its testbed runs down 5× (0.2).
	TestbedDurationScale float64
	// SimClusterScale shrinks the 256-GPU simulated cluster proportionally
	// (1 = the paper's cluster); quick configurations use a quarter-scale
	// cluster so contention — which drives every fairness result — stays in
	// the paper's regime with fewer apps.
	SimClusterScale float64
	// MeanInterArrival is the app inter-arrival mean in minutes.
	MeanInterArrival float64
	// LeaseDuration is the default lease length in minutes.
	LeaseDuration float64
	// FairnessKnob is Themis's default f.
	FairnessKnob float64
	// RestartOverhead is the checkpoint/restart pause in minutes.
	RestartOverhead float64
	// Horizon caps each simulation (minutes of simulated time); 0 = none.
	Horizon float64
	// Repeats is how many workload seeds each sweep point is averaged over.
	// The paper replays a single trace; averaging over a few seeds keeps the
	// scaled-down configurations' trends stable. Zero means 1.
	Repeats int
	// Workers bounds the sweep engine's worker pool: every figure's grid of
	// {policy, seed, parameter} simulation runs is fanned across this many
	// goroutines. Zero (the default) uses GOMAXPROCS; 1 forces sequential
	// execution. Results are deterministic regardless of the setting.
	Workers int
}

// Default returns the paper-fidelity options (§8.1): 256-GPU cluster
// experiments replay the full trace shape; testbed experiments use the
// paper's 5× duration scale-down.
func Default() Options {
	return Options{
		Seed:                 42,
		SimApps:              50,
		TestbedApps:          30,
		JobsPerAppMedian:     23,
		MaxJobsPerApp:        98,
		SimDurationScale:     1,
		TestbedDurationScale: 0.2,
		SimClusterScale:      1,
		MeanInterArrival:     20,
		LeaseDuration:        20,
		FairnessKnob:         0.8,
		RestartOverhead:      0.75,
		Horizon:              50000,
		Repeats:              1,
	}
}

// Quick returns options scaled down for fast benchmarks and CI: fewer apps
// and trials and shorter jobs, but the same cluster topologies, policies and
// parameter sweeps, so every figure's qualitative shape is preserved.
func Quick() Options {
	return Options{
		Seed:                 42,
		SimApps:              16,
		TestbedApps:          14,
		JobsPerAppMedian:     5,
		MaxJobsPerApp:        12,
		SimDurationScale:     0.3,
		TestbedDurationScale: 0.3,
		SimClusterScale:      0.25,
		MeanInterArrival:     3,
		LeaseDuration:        10,
		FairnessKnob:         0.8,
		RestartOverhead:      0.25,
		Horizon:              20000,
		Repeats:              3,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.SimApps <= 0 || o.TestbedApps <= 0 {
		return fmt.Errorf("experiments: app counts must be positive")
	}
	if o.SimDurationScale <= 0 || o.TestbedDurationScale <= 0 || o.MeanInterArrival <= 0 || o.LeaseDuration <= 0 {
		return fmt.Errorf("experiments: scales and durations must be positive")
	}
	if o.SimClusterScale <= 0 || o.SimClusterScale > 1 {
		return fmt.Errorf("experiments: sim cluster scale outside (0,1]")
	}
	if o.FairnessKnob < 0 || o.FairnessKnob > 1 {
		return fmt.Errorf("experiments: fairness knob outside [0,1]")
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: negative worker count")
	}
	return nil
}

// repeatSeeds returns the workload seeds each sweep point averages over.
func (o Options) repeatSeeds() []int64 {
	n := o.Repeats
	if n <= 0 {
		n = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = o.Seed + int64(i)*7919 // distinct, deterministic seeds
	}
	return seeds
}

// spec builds a RunSpec carrying the options' simulation knobs.
func (o Options) spec(name string, topo *cluster.Topology, apps func() ([]*workload.App, error), policy func() (sim.Policy, error)) RunSpec {
	return RunSpec{
		Name:            name,
		Topology:        topo,
		Workload:        apps,
		Policy:          policy,
		TunerFor:        hyperparam.ForApp,
		LeaseDuration:   o.LeaseDuration,
		RestartOverhead: o.RestartOverhead,
		Horizon:         o.Horizon,
	}
}

// sweepAverage evaluates a figure's sweep: for every (point, repeat-seed)
// cell, build returns the cell's simulation runs; the whole grid is fanned
// across the sweep engine's worker pool; and extract reduces each cell's
// results to a metric vector, which is then averaged element-wise over the
// point's repeat seeds. The run set, the extraction and the seed-order
// averaging arithmetic are identical to the old sequential driver, so every
// figure's numbers are unchanged — only the wall-clock time shrinks.
func (o Options) sweepAverage(points int, build func(point int, seed int64) []RunSpec, extract func(point int, cell []*sim.Result) ([]float64, error)) ([][]float64, error) {
	seeds := o.repeatSeeds()
	type cellRef struct{ off, n int }
	cells := make([]cellRef, points*len(seeds))
	var specs []RunSpec
	for p := 0; p < points; p++ {
		for si, seed := range seeds {
			cs := build(p, seed)
			cells[p*len(seeds)+si] = cellRef{off: len(specs), n: len(cs)}
			specs = append(specs, cs...)
		}
	}
	results, err := Sweep(context.Background(), o.Workers, specs)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, points)
	for p := 0; p < points; p++ {
		var sum []float64
		for si := range seeds {
			ref := cells[p*len(seeds)+si]
			vals, err := extract(p, results[ref.off:ref.off+ref.n])
			if err != nil {
				return nil, err
			}
			if sum == nil {
				sum = make([]float64, len(vals))
			}
			if len(vals) != len(sum) {
				return nil, fmt.Errorf("experiments: inconsistent metric vector lengths (%d vs %d)", len(vals), len(sum))
			}
			for i, v := range vals {
				sum[i] += v
			}
		}
		for i := range sum {
			sum[i] /= float64(len(seeds))
		}
		out[p] = sum
	}
	return out, nil
}

// simTopology returns the simulated cluster for these options: the paper's
// 256-GPU heterogeneous cluster, or a proportionally scaled-down version of
// it when SimClusterScale < 1.
func (o Options) simTopology() *cluster.Topology {
	if o.SimClusterScale >= 1 {
		return cluster.SimulationCluster()
	}
	scale := func(n int) int {
		s := int(float64(n)*o.SimClusterScale + 0.5)
		if s < 1 {
			s = 1
		}
		return s
	}
	topo, err := cluster.Config{
		MachineSpecs: []cluster.MachineSpec{
			{Count: scale(48), GPUs: 4, SlotSize: 2, GPU: cluster.GPUTypeP100},
			{Count: scale(24), GPUs: 2, SlotSize: 2, GPU: cluster.GPUTypeV100},
			{Count: scale(16), GPUs: 1, SlotSize: 1, GPU: cluster.GPUTypeK80},
		},
		MachinesPerRack: 16,
	}.Build()
	if err != nil {
		panic("experiments: building scaled simulation cluster: " + err.Error())
	}
	return topo
}

// generatorConfig builds a workload generator config from the options.
func (o Options) generatorConfig(numApps int, seed int64, networkFraction, contention, durationScale float64) workload.GeneratorConfig {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Seed = seed
	cfg.NumApps = numApps
	cfg.MeanInterArrival = o.MeanInterArrival
	cfg.ContentionFactor = contention
	cfg.FractionNetworkIntensive = networkFraction
	cfg.JobsPerAppMedian = o.JobsPerAppMedian
	cfg.MaxJobsPerApp = o.MaxJobsPerApp
	cfg.DurationScale = durationScale
	return cfg
}

// simWorkload generates the default simulated-cluster workload (60:40
// compute:network mix, 1× contention).
func (o Options) simWorkload(seed int64) ([]*workload.App, error) {
	return workload.Generate(o.generatorConfig(o.SimApps, seed, 0.4, 1, o.SimDurationScale))
}

// simWorkloadWith generates a simulated-cluster workload with a specific
// network-intensive fraction and contention factor (Figures 9 and 10).
func (o Options) simWorkloadWith(seed int64, networkFraction, contention float64) ([]*workload.App, error) {
	return workload.Generate(o.generatorConfig(o.SimApps, seed, networkFraction, contention, o.SimDurationScale))
}

// testbedWorkload generates the testbed-scale workload used by Figures 5–8.
func (o Options) testbedWorkload(seed int64) ([]*workload.App, error) {
	return workload.Generate(o.generatorConfig(o.TestbedApps, seed, 0.4, 1, o.TestbedDurationScale))
}

// themisConfig returns the Themis arbiter configuration for these options.
func (o Options) themisConfig() core.Config {
	return core.Config{FairnessKnob: o.FairnessKnob, LeaseDuration: o.LeaseDuration}
}

// runSim executes one simulation of apps on topo under policy.
func (o Options) runSim(topo *cluster.Topology, apps []*workload.App, policy sim.Policy) (*sim.Result, error) {
	s, err := sim.New(sim.Config{
		Topology:        topo,
		Apps:            apps,
		Policy:          policy,
		TunerFor:        hyperparam.ForApp,
		LeaseDuration:   o.LeaseDuration,
		RestartOverhead: o.RestartOverhead,
		Horizon:         o.Horizon,
	})
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background())
}
