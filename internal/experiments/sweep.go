package experiments

// The sweep engine: the paper's evaluation is a grid of independent
// simulation runs — {policy, seed, topology, trace} combinations — that the
// original driver executed strictly sequentially. Sweep fans a grid across a
// bounded worker pool with context cancellation and deterministic result
// ordering: results[i] always corresponds to specs[i] regardless of worker
// count or completion order, so every figure's numbers are identical to the
// sequential run's.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"themis/internal/cluster"
	"themis/internal/hyperparam"
	"themis/internal/sim"
	"themis/internal/workload"
)

// RunSpec describes one simulation run within a sweep grid. Workload and
// Policy are factories, not values: apps and policies accumulate run state,
// so every run constructs fresh instances inside its worker. Both must be
// safe to call concurrently with other specs' factories (sharing a seeded
// generator config is fine; sharing a live policy is not).
type RunSpec struct {
	// Name labels the run in errors ("fig4a/f=0.8/seed=42").
	Name string
	// Topology is the cluster the run schedules onto (topologies are
	// immutable and may be shared across specs).
	Topology *cluster.Topology
	// Workload builds the run's apps.
	Workload func() ([]*workload.App, error)
	// Policy builds the run's scheduling policy.
	Policy func() (sim.Policy, error)
	// TunerFor optionally overrides the app-level tuner choice; tuners must
	// follow the hyperparam.Tuner progress-purity contract.
	TunerFor func(*workload.App) hyperparam.Tuner
	// Simulation knobs, as in sim.Config.
	LeaseDuration   float64
	RestartOverhead float64
	Horizon         float64
	MaxIdleRounds   int
}

// run executes the spec once.
func (r RunSpec) run(ctx context.Context) (*sim.Result, error) {
	apps, err := r.Workload()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: workload: %w", r.Name, err)
	}
	policy, err := r.Policy()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: policy: %w", r.Name, err)
	}
	s, err := sim.New(sim.Config{
		Topology:        r.Topology,
		Apps:            apps,
		Policy:          policy,
		TunerFor:        r.TunerFor,
		LeaseDuration:   r.LeaseDuration,
		RestartOverhead: r.RestartOverhead,
		Horizon:         r.Horizon,
		MaxIdleRounds:   r.MaxIdleRounds,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", r.Name, err)
	}
	res, err := s.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", r.Name, err)
	}
	return res, nil
}

// Sweep runs every spec across a bounded worker pool (workers <= 0 uses
// GOMAXPROCS) and returns the results aligned with specs. The first failure
// cancels the remaining runs and is returned; cancelling ctx aborts the
// sweep — in-flight simulations stop at their next decision point.
func Sweep(ctx context.Context, workers int, specs []RunSpec) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(specs))
	err := RunGrid(ctx, workers, len(specs), func(ctx context.Context, i int) error {
		res, err := specs[i].run(ctx)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunGrid executes n independent tasks across a bounded worker pool
// (workers <= 0 uses GOMAXPROCS). The first task failure cancels the
// remaining tasks. The returned error is always a real task failure (never
// a collateral context.Canceled from the resulting cancellation) — the
// lowest-indexed one recorded, though when several tasks fail concurrently
// which failures get recorded before cancellation takes effect depends on
// scheduling. Cancelling ctx stops the grid with ctx's error.
func RunGrid(ctx context.Context, workers, n int, run func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					continue
				}
				if err := run(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	// Prefer the lowest-index non-cancellation error: tasks cancelled as
	// collateral of another task's failure report context.Canceled, which
	// would otherwise mask the real cause.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	return ctx.Err()
}
