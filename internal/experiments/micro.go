package experiments

import (
	"fmt"

	"themis/internal/metrics"
	"themis/internal/schedulers"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Figure9Fractions is the sweep of the percentage of network-intensive apps
// used by Figures 9a and 9b.
var Figure9Fractions = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Figure9aRow is one point of Figure 9a: Themis's factor of improvement in
// max fairness over Tiresias as the workload becomes more network intensive.
type Figure9aRow struct {
	NetworkFraction     float64
	ThemisMaxFairness   float64
	TiresiasMaxFairness float64
	FactorOfImprovement float64
}

// Figure9a sweeps the fraction of network-intensive apps on the simulated
// cluster and compares Themis and Tiresias on max fairness. Each (fraction,
// seed) cell runs both schemes; the whole grid fans across the sweep engine.
func Figure9a(opts Options) ([]Figure9aRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	avgs, err := opts.sweepAverage(len(Figure9Fractions),
		func(p int, seed int64) []RunSpec {
			frac := Figure9Fractions[p]
			apps := func() ([]*workload.App, error) { return opts.simWorkloadWith(seed, frac, 1) }
			return []RunSpec{
				opts.spec(fmt.Sprintf("figure 9a at %v%% network-intensive seed=%d themis", frac*100, seed), topo, apps,
					func() (sim.Policy, error) { return schedulers.NewThemis(opts.themisConfig()) }),
				opts.spec(fmt.Sprintf("figure 9a at %v%% network-intensive seed=%d tiresias", frac*100, seed), topo, apps,
					func() (sim.Policy, error) { return schedulers.NewTiresias(), nil }),
			}
		},
		func(p int, cell []*sim.Result) ([]float64, error) {
			return []float64{metrics.MaxFairness(cell[0]), metrics.MaxFairness(cell[1])}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Figure9aRow
	for p, frac := range Figure9Fractions {
		row := Figure9aRow{NetworkFraction: frac, ThemisMaxFairness: avgs[p][0], TiresiasMaxFairness: avgs[p][1]}
		if row.ThemisMaxFairness > 0 {
			row.FactorOfImprovement = row.TiresiasMaxFairness / row.ThemisMaxFairness
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure9bRow is one point of Figure 9b: cluster GPU time per scheme at a
// given fraction of network-intensive apps.
type Figure9bRow struct {
	NetworkFraction float64
	GPUTime         map[string]float64
}

// Figure9b sweeps the fraction of network-intensive apps and reports every
// scheme's total GPU time. Each (fraction, seed) cell runs all four schemes.
func Figure9b(opts Options) ([]Figure9bRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	set := SchedulerSet(opts.themisConfig())
	avgs, err := opts.sweepAverage(len(Figure9Fractions),
		func(p int, seed int64) []RunSpec {
			frac := Figure9Fractions[p]
			apps := func() ([]*workload.App, error) { return opts.simWorkloadWith(seed, frac, 1) }
			specs := make([]RunSpec, 0, len(SchemeOrder))
			for _, scheme := range SchemeOrder {
				newPolicy := set[scheme]
				specs = append(specs, opts.spec(
					fmt.Sprintf("figure 9b at %v%% network-intensive seed=%d %s", frac*100, seed, scheme),
					topo, apps, newPolicy))
			}
			return specs
		},
		func(p int, cell []*sim.Result) ([]float64, error) {
			out := make([]float64, len(cell))
			for i, res := range cell {
				out[i] = metrics.GPUTime(res)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Figure9bRow
	for p, frac := range Figure9Fractions {
		row := Figure9bRow{NetworkFraction: frac, GPUTime: make(map[string]float64, len(SchemeOrder))}
		for i, scheme := range SchemeOrder {
			row.GPUTime[scheme] = avgs[p][i]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure10Factors is the contention sweep of Figure 10.
var Figure10Factors = []float64{1, 2, 4}

// Figure10Row is one group of Figure 10: Jain's fairness index for Themis
// and Tiresias at a given contention factor.
type Figure10Row struct {
	ContentionFactor float64
	ThemisJains      float64
	TiresiasJains    float64
}

// Figure10 increases contention by shrinking inter-arrival times and
// compares the fairness-index degradation of Themis and Tiresias.
func Figure10(opts Options) ([]Figure10Row, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	avgs, err := opts.sweepAverage(len(Figure10Factors),
		func(p int, seed int64) []RunSpec {
			c := Figure10Factors[p]
			apps := func() ([]*workload.App, error) { return opts.simWorkloadWith(seed, 0.4, c) }
			return []RunSpec{
				opts.spec(fmt.Sprintf("figure 10 at %vx contention seed=%d themis", c, seed), topo, apps,
					func() (sim.Policy, error) { return schedulers.NewThemis(opts.themisConfig()) }),
				opts.spec(fmt.Sprintf("figure 10 at %vx contention seed=%d tiresias", c, seed), topo, apps,
					func() (sim.Policy, error) { return schedulers.NewTiresias(), nil }),
			}
		},
		func(p int, cell []*sim.Result) ([]float64, error) {
			return []float64{metrics.JainsIndexOf(cell[0]), metrics.JainsIndexOf(cell[1])}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Figure10Row
	for p, c := range Figure10Factors {
		rows = append(rows, Figure10Row{ContentionFactor: c, ThemisJains: avgs[p][0], TiresiasJains: avgs[p][1]})
	}
	return rows, nil
}

// Figure11Thetas is the bid-valuation error sweep of Figure 11.
var Figure11Thetas = []float64{0, 0.05, 0.10, 0.20}

// Figure11Row is one point of Figure 11: max finish-time fairness when bid
// valuations carry ±θ random error.
type Figure11Row struct {
	Theta       float64
	MaxFairness float64
}

// Figure11 perturbs every Agent's ρ estimates by ±θ and measures the impact
// on max finish-time fairness (computed, as in the paper, on accurate
// realised times).
func Figure11(opts Options) ([]Figure11Row, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	avgs, err := opts.sweepAverage(len(Figure11Thetas),
		func(p int, seed int64) []RunSpec {
			theta := Figure11Thetas[p]
			return []RunSpec{opts.spec(
				fmt.Sprintf("figure 11 at theta=%v seed=%d", theta, seed), topo,
				func() ([]*workload.App, error) { return opts.simWorkload(seed) },
				func() (sim.Policy, error) {
					policy, err := schedulers.NewThemis(opts.themisConfig())
					if err != nil {
						return nil, err
					}
					policy.BidErrorTheta = theta
					policy.ErrorSeed = seed + int64(theta*1000)
					return policy, nil
				},
			)}
		},
		func(p int, cell []*sim.Result) ([]float64, error) {
			return []float64{metrics.MaxFairness(cell[0])}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Figure11Row
	for p, theta := range Figure11Thetas {
		rows = append(rows, Figure11Row{Theta: theta, MaxFairness: avgs[p][0]})
	}
	return rows, nil
}
