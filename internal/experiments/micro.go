package experiments

import (
	"fmt"

	"themis/internal/metrics"
	"themis/internal/schedulers"
)

// Figure9Fractions is the sweep of the percentage of network-intensive apps
// used by Figures 9a and 9b.
var Figure9Fractions = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Figure9aRow is one point of Figure 9a: Themis's factor of improvement in
// max fairness over Tiresias as the workload becomes more network intensive.
type Figure9aRow struct {
	NetworkFraction     float64
	ThemisMaxFairness   float64
	TiresiasMaxFairness float64
	FactorOfImprovement float64
}

// Figure9a sweeps the fraction of network-intensive apps on the simulated
// cluster and compares Themis and Tiresias on max fairness.
func Figure9a(opts Options) ([]Figure9aRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	var rows []Figure9aRow
	for _, frac := range Figure9Fractions {
		vals, err := opts.averageOver(func(seed int64) ([]float64, error) {
			themisApps, err := opts.simWorkloadWith(seed, frac, 1)
			if err != nil {
				return nil, err
			}
			themisPolicy, err := schedulers.NewThemis(opts.themisConfig())
			if err != nil {
				return nil, err
			}
			themisRes, err := opts.runSim(topo, themisApps, themisPolicy)
			if err != nil {
				return nil, err
			}
			tirApps, err := opts.simWorkloadWith(seed, frac, 1)
			if err != nil {
				return nil, err
			}
			tirRes, err := opts.runSim(topo, tirApps, schedulers.NewTiresias())
			if err != nil {
				return nil, err
			}
			return []float64{metrics.MaxFairness(themisRes), metrics.MaxFairness(tirRes)}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("figure 9a at %v%% network-intensive: %w", frac*100, err)
		}
		row := Figure9aRow{NetworkFraction: frac, ThemisMaxFairness: vals[0], TiresiasMaxFairness: vals[1]}
		if row.ThemisMaxFairness > 0 {
			row.FactorOfImprovement = row.TiresiasMaxFairness / row.ThemisMaxFairness
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure9bRow is one point of Figure 9b: cluster GPU time per scheme at a
// given fraction of network-intensive apps.
type Figure9bRow struct {
	NetworkFraction float64
	GPUTime         map[string]float64
}

// Figure9b sweeps the fraction of network-intensive apps and reports every
// scheme's total GPU time.
func Figure9b(opts Options) ([]Figure9bRow, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	set := SchedulerSet(opts.themisConfig())
	var rows []Figure9bRow
	for _, frac := range Figure9Fractions {
		row := Figure9bRow{NetworkFraction: frac, GPUTime: make(map[string]float64, len(set))}
		vals, err := opts.averageOver(func(seed int64) ([]float64, error) {
			out := make([]float64, 0, len(SchemeOrder))
			for _, scheme := range SchemeOrder {
				apps, err := opts.simWorkloadWith(seed, frac, 1)
				if err != nil {
					return nil, err
				}
				policy, err := set[scheme]()
				if err != nil {
					return nil, fmt.Errorf("%s: %w", scheme, err)
				}
				res, err := opts.runSim(topo, apps, policy)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", scheme, err)
				}
				out = append(out, metrics.GPUTime(res))
			}
			return out, nil
		})
		if err != nil {
			return nil, fmt.Errorf("figure 9b at %v%% network-intensive: %w", frac*100, err)
		}
		for i, scheme := range SchemeOrder {
			row.GPUTime[scheme] = vals[i]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure10Factors is the contention sweep of Figure 10.
var Figure10Factors = []float64{1, 2, 4}

// Figure10Row is one group of Figure 10: Jain's fairness index for Themis
// and Tiresias at a given contention factor.
type Figure10Row struct {
	ContentionFactor float64
	ThemisJains      float64
	TiresiasJains    float64
}

// Figure10 increases contention by shrinking inter-arrival times and
// compares the fairness-index degradation of Themis and Tiresias.
func Figure10(opts Options) ([]Figure10Row, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	var rows []Figure10Row
	for _, c := range Figure10Factors {
		vals, err := opts.averageOver(func(seed int64) ([]float64, error) {
			themisApps, err := opts.simWorkloadWith(seed, 0.4, c)
			if err != nil {
				return nil, err
			}
			themisPolicy, err := schedulers.NewThemis(opts.themisConfig())
			if err != nil {
				return nil, err
			}
			themisRes, err := opts.runSim(topo, themisApps, themisPolicy)
			if err != nil {
				return nil, err
			}
			tirApps, err := opts.simWorkloadWith(seed, 0.4, c)
			if err != nil {
				return nil, err
			}
			tirRes, err := opts.runSim(topo, tirApps, schedulers.NewTiresias())
			if err != nil {
				return nil, err
			}
			return []float64{metrics.JainsIndexOf(themisRes), metrics.JainsIndexOf(tirRes)}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("figure 10 at %vx contention: %w", c, err)
		}
		rows = append(rows, Figure10Row{ContentionFactor: c, ThemisJains: vals[0], TiresiasJains: vals[1]})
	}
	return rows, nil
}

// Figure11Thetas is the bid-valuation error sweep of Figure 11.
var Figure11Thetas = []float64{0, 0.05, 0.10, 0.20}

// Figure11Row is one point of Figure 11: max finish-time fairness when bid
// valuations carry ±θ random error.
type Figure11Row struct {
	Theta       float64
	MaxFairness float64
}

// Figure11 perturbs every Agent's ρ estimates by ±θ and measures the impact
// on max finish-time fairness (computed, as in the paper, on accurate
// realised times).
func Figure11(opts Options) ([]Figure11Row, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	topo := opts.simTopology()
	var rows []Figure11Row
	for _, theta := range Figure11Thetas {
		vals, err := opts.averageOver(func(seed int64) ([]float64, error) {
			apps, err := opts.simWorkload(seed)
			if err != nil {
				return nil, err
			}
			policy, err := schedulers.NewThemis(opts.themisConfig())
			if err != nil {
				return nil, err
			}
			policy.BidErrorTheta = theta
			policy.ErrorSeed = seed + int64(theta*1000)
			res, err := opts.runSim(topo, apps, policy)
			if err != nil {
				return nil, err
			}
			return []float64{metrics.MaxFairness(res)}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("figure 11 at theta=%v: %w", theta, err)
		}
		rows = append(rows, Figure11Row{Theta: theta, MaxFairness: vals[0]})
	}
	return rows, nil
}
