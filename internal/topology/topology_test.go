package topology

import (
	"testing"

	"themis/internal/cluster"
)

func twoDomainSpec() Spec {
	return Spec{
		Name: "two-pods",
		Regions: []RegionSpec{{
			Name: "east",
			Domains: []DomainSpec{
				{
					Name: "pod-a",
					Racks: []RackSpec{
						{Machines: []MachineGroup{{Count: 2, GPUs: 4, SlotSize: 2, Flavor: cluster.GPUTypeP100}}},
						{Machines: []MachineGroup{{Count: 2, GPUs: 4, SlotSize: 2, Flavor: cluster.GPUTypeP100}}},
					},
				},
				{
					Name: "pod-b",
					Racks: []RackSpec{
						{Machines: []MachineGroup{
							{Count: 2, GPUs: 2, SlotSize: 2, Flavor: cluster.GPUTypeV100},
							{Count: 1, GPUs: 1, Flavor: cluster.GPUTypeK80},
						}},
					},
				},
			},
		}},
	}
}

func TestSpecBuild(t *testing.T) {
	tree, err := twoDomainSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	topo := tree.Topology()
	if got := topo.NumMachines(); got != 7 {
		t.Errorf("NumMachines = %d, want 7", got)
	}
	if got := topo.NumDomains(); got != 2 {
		t.Errorf("NumDomains = %d, want 2", got)
	}
	if got := topo.NumRacks(); got != 3 {
		t.Errorf("NumRacks = %d, want 3", got)
	}
	if got := topo.TotalGPUs(); got != 21 {
		t.Errorf("TotalGPUs = %d, want 21", got)
	}
	if got := topo.DomainName(0); got != "pod-a" {
		t.Errorf("DomainName(0) = %q", got)
	}
	if d, ok := topo.DomainByName("pod-b"); !ok || d != 1 {
		t.Errorf("DomainByName(pod-b) = %d, %v", d, ok)
	}
	if got := tree.RegionOf(1); got != "east" {
		t.Errorf("RegionOf(1) = %q", got)
	}
	if got := tree.DomainsInRegion("east"); len(got) != 2 {
		t.Errorf("DomainsInRegion(east) = %v", got)
	}
	if got := tree.DomainCapacity(0); got != 16 {
		t.Errorf("DomainCapacity(0) = %d, want 16", got)
	}
	if got := tree.DomainCapacity(1); got != 5 {
		t.Errorf("DomainCapacity(1) = %d, want 5", got)
	}
	if got := tree.RackCapacity(2); got != 5 {
		t.Errorf("RackCapacity(2) = %d, want 5", got)
	}
}

func TestSpecBuildDeterministic(t *testing.T) {
	a, err := twoDomainSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := twoDomainSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := a.Topology().Machines(), b.Topology().Machines()
	if len(ma) != len(mb) {
		t.Fatalf("machine counts differ: %d vs %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Errorf("machine %d differs: %+v vs %+v", i, ma[i], mb[i])
		}
	}
}

func TestSpecBuildValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no regions", Spec{Name: "x"}},
		{"no domains", Spec{Regions: []RegionSpec{{Name: "r"}}}},
		{"no racks", Spec{Regions: []RegionSpec{{Domains: []DomainSpec{{Name: "d"}}}}}},
		{"empty rack", Spec{Regions: []RegionSpec{{Domains: []DomainSpec{{Racks: []RackSpec{{}}}}}}}},
		{"zero count", Spec{Regions: []RegionSpec{{Domains: []DomainSpec{{Racks: []RackSpec{
			{Machines: []MachineGroup{{Count: 0, GPUs: 4}}},
		}}}}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.spec.Build(); err == nil {
				t.Error("expected build error")
			}
		})
	}
}

func TestFlavorInventories(t *testing.T) {
	tree, err := twoDomainSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	inv := tree.FlavorInventory()
	want := map[cluster.GPUType]int{
		cluster.GPUTypeK80:  1,
		cluster.GPUTypeP100: 16,
		cluster.GPUTypeV100: 4,
	}
	if len(inv) != len(want) {
		t.Fatalf("FlavorInventory = %v", inv)
	}
	for _, fc := range inv {
		if want[fc.Flavor] != fc.GPUs {
			t.Errorf("flavor %s = %d, want %d", fc.Flavor, fc.GPUs, want[fc.Flavor])
		}
	}
	podB := tree.FlavorsInDomain(1)
	if len(podB) != 2 || podB[0].Flavor != cluster.GPUTypeK80 || podB[1].GPUs != 4 {
		t.Errorf("FlavorsInDomain(1) = %v", podB)
	}
}

func TestFreeByLevel(t *testing.T) {
	tree, err := twoDomainSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	free := cluster.Alloc{0: 2, 3: 4, 4: 2, 6: 1}
	byDomain := tree.FreeByDomain(free)
	if byDomain[0] != 6 || byDomain[1] != 3 {
		t.Errorf("FreeByDomain = %v", byDomain)
	}
	byRack := tree.FreeByRack(free)
	if byRack[0] != 2 || byRack[1] != 4 || byRack[2] != 3 {
		t.Errorf("FreeByRack = %v", byRack)
	}
	flavors := tree.FreeFlavors(free)
	got := map[cluster.GPUType]int{}
	for _, fc := range flavors {
		got[fc.Flavor] = fc.GPUs
	}
	if got[cluster.GPUTypeP100] != 6 || got[cluster.GPUTypeV100] != 2 || got[cluster.GPUTypeK80] != 1 {
		t.Errorf("FreeFlavors = %v", flavors)
	}
}

func TestLiftFlatTopology(t *testing.T) {
	topo := cluster.TestbedCluster()
	tree := Lift(topo)
	if tree.Topology() != topo {
		t.Error("Lift should wrap the original topology")
	}
	if got := tree.Regions(); len(got) != 1 || got[0] != "default" {
		t.Errorf("Regions = %v", got)
	}
	if got := tree.DomainCapacity(0); got != topo.TotalGPUs() {
		t.Errorf("single-domain capacity = %d, want %d", got, topo.TotalGPUs())
	}
	byDomain := tree.FreeByDomain(cluster.Alloc{0: 3})
	if len(byDomain) != 1 || byDomain[0] != 3 {
		t.Errorf("FreeByDomain = %v", byDomain)
	}
}
