// Package topology models the physical hierarchy of a GPU fleet — region →
// fabric domain → rack → machine → GPU flavor/slot — as a typed tree over
// the flat cluster.Topology the scheduler allocates against.
//
// The split of responsibilities mirrors the jobtree M2 design: package
// cluster stays the minimal machine/GPU-count model every scheduler hot path
// touches, while this package owns the declarative Spec for building
// hierarchical fleets, the Tree cache with indexed lookups (machines per
// domain, free capacity per level, flavor inventories), and the level
// arithmetic the pack engine and fragmentation analyzer consume. Flat
// topologies Lift into a single-region, single-domain tree, so every
// consumer can assume a hierarchy exists.
package topology

import (
	"fmt"
	"sort"

	"themis/internal/cluster"
)

// Spec declaratively describes a hierarchical fleet. Machine, rack and
// domain IDs are assigned densely in declaration order, so a Spec is a
// deterministic recipe: building it twice yields identical topologies.
type Spec struct {
	// Name labels the fleet (used by the cluster registry).
	Name string
	// Regions of the fleet, typically geographic. Most single-site clusters
	// declare exactly one.
	Regions []RegionSpec
}

// RegionSpec is one region: a named group of fabric domains.
type RegionSpec struct {
	Name    string
	Domains []DomainSpec
}

// DomainSpec is one fabric domain: racks sharing a fast interconnect spine.
type DomainSpec struct {
	// Name of the domain; defaults to "domain-<id>" when empty. Trace
	// placement blocks reference domains by this name.
	Name  string
	Racks []RackSpec
}

// RackSpec is one rack: ordered groups of identical machines.
type RackSpec struct {
	Machines []MachineGroup
}

// MachineGroup is a run of identical machines within a rack.
type MachineGroup struct {
	Count    int
	GPUs     int
	SlotSize int // defaults to GPUs when zero
	Flavor   cluster.GPUType
}

// Build constructs the Tree (and its underlying flat cluster.Topology view)
// described by the Spec.
func (s Spec) Build() (*Tree, error) {
	if len(s.Regions) == 0 {
		return nil, fmt.Errorf("topology: spec %q has no regions", s.Name)
	}
	var machines []cluster.Machine
	type domainMeta struct {
		name   string
		region string
	}
	var domains []domainMeta
	machineID, rackID := 0, 0
	for ri, region := range s.Regions {
		if len(region.Domains) == 0 {
			return nil, fmt.Errorf("topology: region %q has no fabric domains", region.Name)
		}
		for _, dom := range region.Domains {
			domainID := cluster.DomainID(len(domains))
			if len(dom.Racks) == 0 {
				return nil, fmt.Errorf("topology: domain %q has no racks", dom.Name)
			}
			regionName := region.Name
			if regionName == "" {
				regionName = fmt.Sprintf("region-%d", ri)
			}
			domains = append(domains, domainMeta{name: dom.Name, region: regionName})
			for _, rack := range dom.Racks {
				if len(rack.Machines) == 0 {
					return nil, fmt.Errorf("topology: domain %q has an empty rack", dom.Name)
				}
				for _, g := range rack.Machines {
					if g.Count <= 0 {
						return nil, fmt.Errorf("topology: machine group count must be positive, got %d", g.Count)
					}
					slot := g.SlotSize
					if slot <= 0 {
						slot = g.GPUs
					}
					for i := 0; i < g.Count; i++ {
						machines = append(machines, cluster.Machine{
							ID:       cluster.MachineID(machineID),
							Rack:     cluster.RackID(rackID),
							Domain:   domainID,
							NumGPUs:  g.GPUs,
							SlotSize: slot,
							GPU:      g.Flavor,
						})
						machineID++
					}
				}
				rackID++
			}
		}
	}
	topo, err := cluster.NewTopology(machines)
	if err != nil {
		return nil, fmt.Errorf("topology: spec %q: %w", s.Name, err)
	}
	regionOf := make(map[cluster.DomainID]string, len(domains))
	for id, meta := range domains {
		d := cluster.DomainID(id)
		regionOf[d] = meta.region
		if meta.name != "" {
			if err := topo.SetDomainName(d, meta.name); err != nil {
				return nil, err
			}
		}
	}
	return newTree(topo, regionOf), nil
}

// Lift wraps an existing flat cluster.Topology into a single-region tree.
// Topologies already declaring multiple fabric domains keep them; machines
// built without domains all sit in domain 0, so a pre-hierarchy topology
// lifts to a single-domain tree and every level query degenerates to the
// flat answer.
func Lift(topo *cluster.Topology) *Tree {
	regionOf := make(map[cluster.DomainID]string)
	for _, d := range topo.Domains() {
		regionOf[d] = "default"
	}
	return newTree(topo, regionOf)
}

// FlavorCount is one entry of a GPU-flavor inventory.
type FlavorCount struct {
	Flavor cluster.GPUType
	GPUs   int
}

// Tree is the cached hierarchical view over a cluster.Topology. It is
// immutable after construction; all lookups are precomputed or derive from
// the immutable topology, so a Tree is safe for concurrent use.
type Tree struct {
	topo     *cluster.Topology
	regionOf map[cluster.DomainID]string
	regions  []string

	domainCapacity map[cluster.DomainID]int
	rackCapacity   map[cluster.RackID]int
	flavorTotal    map[cluster.GPUType]int
	domainFlavors  map[cluster.DomainID]map[cluster.GPUType]int
}

func newTree(topo *cluster.Topology, regionOf map[cluster.DomainID]string) *Tree {
	t := &Tree{
		topo:           topo,
		regionOf:       regionOf,
		domainCapacity: make(map[cluster.DomainID]int),
		rackCapacity:   make(map[cluster.RackID]int),
		flavorTotal:    make(map[cluster.GPUType]int),
		domainFlavors:  make(map[cluster.DomainID]map[cluster.GPUType]int),
	}
	for _, m := range topo.Machines() {
		t.domainCapacity[m.Domain] += m.NumGPUs
		t.rackCapacity[m.Rack] += m.NumGPUs
		t.flavorTotal[m.GPU] += m.NumGPUs
		if t.domainFlavors[m.Domain] == nil {
			t.domainFlavors[m.Domain] = make(map[cluster.GPUType]int)
		}
		t.domainFlavors[m.Domain][m.GPU] += m.NumGPUs
	}
	seen := make(map[string]bool)
	for _, d := range topo.Domains() {
		r := regionOf[d]
		if !seen[r] {
			seen[r] = true
			t.regions = append(t.regions, r)
		}
	}
	return t
}

// Topology returns the flat machine-level view the scheduler allocates
// against.
func (t *Tree) Topology() *cluster.Topology { return t.topo }

// Regions returns the region names in declaration order.
func (t *Tree) Regions() []string {
	out := make([]string, len(t.regions))
	copy(out, t.regions)
	return out
}

// RegionOf returns the region housing a fabric domain.
func (t *Tree) RegionOf(d cluster.DomainID) string { return t.regionOf[d] }

// DomainsInRegion returns the fabric domains of one region, ascending.
func (t *Tree) DomainsInRegion(region string) []cluster.DomainID {
	var out []cluster.DomainID
	for _, d := range t.topo.Domains() {
		if t.regionOf[d] == region {
			out = append(out, d)
		}
	}
	return out
}

// DomainCapacity returns the total GPU capacity of a fabric domain.
func (t *Tree) DomainCapacity(d cluster.DomainID) int { return t.domainCapacity[d] }

// RackCapacity returns the total GPU capacity of a rack.
func (t *Tree) RackCapacity(r cluster.RackID) int { return t.rackCapacity[r] }

// FlavorInventory returns the fleet-wide GPU counts per flavor, sorted by
// flavor name.
func (t *Tree) FlavorInventory() []FlavorCount {
	return sortedFlavors(t.flavorTotal)
}

// FlavorsInDomain returns a fabric domain's GPU counts per flavor, sorted by
// flavor name.
func (t *Tree) FlavorsInDomain(d cluster.DomainID) []FlavorCount {
	return sortedFlavors(t.domainFlavors[d])
}

func sortedFlavors(counts map[cluster.GPUType]int) []FlavorCount {
	out := make([]FlavorCount, 0, len(counts))
	for f, n := range counts {
		out = append(out, FlavorCount{Flavor: f, GPUs: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flavor < out[j].Flavor })
	return out
}

// FreeByDomain aggregates a free vector per fabric domain. Domains with no
// free GPUs map to zero (every domain is present in the result).
func (t *Tree) FreeByDomain(free cluster.Alloc) map[cluster.DomainID]int {
	out := make(map[cluster.DomainID]int, len(t.domainCapacity))
	for d := range t.domainCapacity {
		out[d] = 0
	}
	for m, n := range free {
		if n > 0 {
			out[t.topo.Domain(m)] += n
		}
	}
	return out
}

// FreeByRack aggregates a free vector per rack. Racks with no free GPUs map
// to zero (every rack is present in the result).
func (t *Tree) FreeByRack(free cluster.Alloc) map[cluster.RackID]int {
	out := make(map[cluster.RackID]int, len(t.rackCapacity))
	for r := range t.rackCapacity {
		out[r] = 0
	}
	for m, n := range free {
		if n > 0 {
			out[t.topo.Rack(m)] += n
		}
	}
	return out
}

// FreeFlavors aggregates a free vector per GPU flavor, sorted by flavor
// name. Flavors present in the fleet but fully busy report zero.
func (t *Tree) FreeFlavors(free cluster.Alloc) []FlavorCount {
	counts := make(map[cluster.GPUType]int, len(t.flavorTotal))
	for f := range t.flavorTotal {
		counts[f] = 0
	}
	for m, n := range free {
		if n > 0 {
			counts[t.topo.Machine(m).GPU] += n
		}
	}
	return sortedFlavors(counts)
}
