//go:build !race

// Package race reports whether the race detector is compiled in. The
// zero-allocation regression tests consult it: race instrumentation allocates
// on its own, so the 0 allocs/op contracts only hold (and are only checked)
// on non-race builds.
package race

// Enabled is true when the binary was built with -race.
const Enabled = false
