package sim

import (
	"math"

	"themis/internal/cluster"
	"themis/internal/hyperparam"
	"themis/internal/placement"
	"themis/internal/workload"
)

// AppState is the simulator's runtime record for one app. Policies receive
// AppStates through the View; the exported fields are safe to read, and the
// job objects may be inspected (but not mutated) for policy decisions.
type AppState struct {
	App   *workload.App
	Tuner hyperparam.Tuner
	// Held is the app's current allocation, maintained on every allocation
	// change. Policies must treat it as read-only.
	Held cluster.Alloc
	// TIdealAtArrival is the app's dedicated-cluster running time estimate
	// frozen at submission (min over jobs of work / gang size), used for the
	// realised finish-time fairness metric.
	TIdealAtArrival float64

	topo        *cluster.Topology
	jobAllocs   map[workload.JobID]cluster.Alloc
	pausedUntil float64

	// runnable caches the jobs that can make progress under the current job
	// split, with their GPU counts and placement slowdowns. Allocation,
	// placement and the min-GPUs-per-machine check are all constant between
	// allocation changes, so per-event integration and completion projection
	// touch only these entries instead of rescanning every job.
	runnable []runnableJob
	// proj is the incrementally maintained projection of the app's next job
	// completion time (+Inf when no job is runnable). It is recomputed from
	// the runnable cache on every allocation change and after every progress
	// integration, with the same floating-point expression the legacy
	// per-round scan evaluated, so cached and rescanned projections are
	// bit-identical.
	proj float64

	// heldTotal caches Held.Total(), refreshed on every allocation change.
	heldTotal int
	// scoreVal/scoreWeight cache the app's GPU-weighted placement score
	// (Figure 7's per-interval sample), which is constant while the job
	// split is unchanged; scoreDirty forces recomputation after a job
	// completes mid-split.
	scoreVal    float64
	scoreWeight float64
	scoreDirty  bool

	// Heap entries owned by this app (see events.go).
	arrivalEv    event
	completionEv event
	// leases are the app's outstanding GPU leases, in grant order.
	leases []*lease
	// activeIdx/runningIdx/holdingIdx are the app's positions in the
	// simulator's active, running and holding lists, or -1 when absent.
	activeIdx  int
	runningIdx int
	holdingIdx int
	// tunerDirty marks that the app progressed, changed allocation or had
	// trials killed since its tuner last observed it. Tuner decisions are
	// pure functions of job progress, so Update/Done on a clean app is a
	// no-op and is skipped.
	tunerDirty bool
	// constrained caches whether any job carries placement constraints.
	// Unconstrained apps (the overwhelmingly common case) skip the
	// grant-repair machinery entirely.
	constrained bool
}

// runnableJob is one cached (job, GPUs, slowdown) triple of the runnable set.
type runnableJob struct {
	job *workload.Job
	g   int
	s   float64
}

func newAppState(app *workload.App, tuner hyperparam.Tuner, topo *cluster.Topology) *AppState {
	st := &AppState{
		App:        app,
		Tuner:      tuner,
		Held:       cluster.NewAlloc(),
		topo:       topo,
		jobAllocs:  make(map[workload.JobID]cluster.Alloc),
		proj:       math.Inf(1),
		activeIdx:  -1,
		runningIdx: -1,
		holdingIdx: -1,
		scoreDirty: true,
		tunerDirty: true,
	}
	st.arrivalEv = event{kind: evArrival, time: app.SubmitTime, app: st, index: -1}
	st.completionEv = event{kind: evCompletion, app: st, index: -1}
	st.TIdealAtArrival = idealRunningTime(app)
	app.TIdeal = st.TIdealAtArrival
	for _, j := range app.Jobs {
		if c, ok := j.PlacementConstraint(topo); !ok || !c.IsZero() {
			st.constrained = true
			break
		}
	}
	return st
}

// rejectInfeasible kills, at arrival time, every job whose placement
// constraints no allocation on this topology can ever satisfy (per-machine
// floor above the largest machine, unknown domain name, absent GPU flavor).
// Left alive, such jobs would starve forever while their app's leases churn —
// the tiresias infinite-loop bug on constrained traces. It reports whether
// any job was killed.
func (st *AppState) rejectInfeasible(now float64) bool {
	if !st.constrained {
		return false
	}
	killed := false
	for _, j := range st.App.ActiveJobs() {
		c, ok := j.PlacementConstraint(st.topo)
		if !ok || !c.Feasible(st.topo) {
			j.Kill(now)
			killed = true
		}
	}
	return killed
}

// idealRunningTime is the paper's T_ID estimate (§5.2 step 5): the minimum
// over the app's jobs of serial work divided by ideal parallelism, with
// perfect placement.
func idealRunningTime(app *workload.App) float64 {
	best := math.Inf(1)
	for _, j := range app.Jobs {
		g := j.GangSize
		if j.MaxParallelism > g {
			g = j.MaxParallelism
		}
		if g <= 0 {
			continue
		}
		if t := j.TotalWork / float64(g); t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) || best <= 0 {
		return 1e-6
	}
	return best
}

// AttainedService returns the GPU-minutes the app has consumed so far — the
// quantity Tiresias's least-attained-service policy schedules on.
func (st *AppState) AttainedService() float64 { return st.App.GPUTime() }

// UnmetDemand returns how many additional GPUs the app can still use.
func (st *AppState) UnmetDemand() int {
	want := 0
	for _, j := range st.App.Jobs {
		if !j.Active() {
			continue
		}
		p := j.MaxParallelism
		if p <= 0 {
			p = j.GangSize
		}
		want += p
	}
	unmet := want - st.heldTotal
	if unmet < 0 {
		return 0
	}
	return unmet
}

// PausedUntil returns the time before which the app's jobs make no progress
// because of checkpoint/restart churn after its last allocation change.
func (st *AppState) PausedUntil() float64 { return st.pausedUntil }

// JobAlloc returns the GPUs currently assigned to job id within the app.
func (st *AppState) JobAlloc(id workload.JobID) cluster.Alloc {
	if a, ok := st.jobAllocs[id]; ok {
		return a.Clone()
	}
	return cluster.NewAlloc()
}

// onAllocationChange re-splits the app's (new) total allocation across its
// active jobs, applies the checkpoint/restart pause, and rebuilds the
// runnable cache and completion projection.
func (st *AppState) onAllocationChange(now float64, held cluster.Alloc, overhead float64) {
	st.Held = held
	st.heldTotal = held.Total()
	st.scoreDirty = true
	st.resplit()
	if overhead > 0 {
		until := now + overhead
		if until > st.pausedUntil {
			st.pausedUntil = until
		}
	}
	st.refreshRunnable(now)
}

// placementScore returns the app's GPU-weighted mean placement score and its
// weight (GPUs), recomputing the cached value only when the job split or a
// job completion invalidated it. Scoring is per job (the paper's Figure 7
// metric), falling back to the app-level allocation when no job currently
// holds GPUs.
func (st *AppState) placementScore() (score, weight float64) {
	if st.scoreDirty {
		st.scoreDirty = false
		var sum, gpus float64
		for _, j := range st.App.Jobs {
			if !j.Active() {
				continue
			}
			alloc := st.jobAllocs[j.ID]
			g := float64(alloc.Total())
			if g == 0 {
				continue
			}
			sum += cluster.PlacementScore(st.topo, alloc) * g
			gpus += g
		}
		if gpus > 0 {
			st.scoreVal, st.scoreWeight = sum/gpus, gpus
		} else {
			st.scoreVal, st.scoreWeight = cluster.PlacementScore(st.topo, st.Held), float64(st.heldTotal)
		}
	}
	return st.scoreVal, st.scoreWeight
}

// refreshRunnable rebuilds the cached runnable-job set from the current job
// split and re-projects the app's completion time at now.
func (st *AppState) refreshRunnable(now float64) {
	st.runnable = st.runnable[:0]
	for _, j := range st.App.ActiveJobs() {
		alloc := st.jobAllocs[j.ID]
		g := alloc.Total()
		if g == 0 || !st.jobCanRun(j, alloc) {
			continue
		}
		st.runnable = append(st.runnable, runnableJob{job: j, g: g, s: st.App.Profile.SOf(st.topo, alloc)})
	}
	st.project(now)
}

// project recomputes the cached completion projection at time now from the
// runnable cache. The expression mirrors nextCompletion's per-job term
// exactly, so the cached projection is bit-identical to a full rescan.
func (st *AppState) project(now float64) {
	start := now
	if st.pausedUntil > start {
		start = st.pausedUntil
	}
	best := math.Inf(1)
	for _, r := range st.runnable {
		if !r.job.Active() {
			continue
		}
		if t := start + r.job.RemainingWork()/(float64(r.g)*r.s); t < best {
			best = t
		}
	}
	st.proj = best
}

// resplit assigns the app's held GPUs to its active jobs greedily and
// placement-sensitively, honouring per-job parallelism limits. Jobs nearest
// completion are placed first (they determine the app's finish time).
func (st *AppState) resplit() {
	st.jobAllocs = st.splitHeld(st.Held)
}

// splitHeld computes the greedy placement-sensitive job split of an app-level
// allocation. Jobs whose unconstrained pick violates their placement
// constraints are re-picked constraint-aware, so GPUs a job cannot use in the
// shape offered flow to the app's other jobs instead of being stranded on an
// unrunnable split.
func (st *AppState) splitHeld(held cluster.Alloc) map[workload.JobID]cluster.Alloc {
	split := make(map[workload.JobID]cluster.Alloc)
	active := st.App.ActiveJobs()
	if len(active) == 0 || held.Total() == 0 {
		return split
	}
	order := make([]*workload.Job, len(active))
	copy(order, active)
	for i := 0; i < len(order); i++ {
		for k := i + 1; k < len(order); k++ {
			if order[k].RemainingWork() < order[i].RemainingWork() {
				order[i], order[k] = order[k], order[i]
			}
		}
	}
	remaining := held.Clone()
	for _, j := range order {
		want := j.MaxParallelism
		if want <= 0 {
			want = j.GangSize
		}
		c, ok := j.PlacementConstraint(st.topo)
		if !ok {
			// Unresolvable domain affinity: the job can never run here and is
			// rejected at arrival; assign it nothing meanwhile.
			continue
		}
		picked := placement.Pick(st.topo, remaining, cluster.NewAlloc(), want)
		if !c.IsZero() && !placement.Satisfies(st.topo, picked, c) {
			picked = placement.PickConstrained(st.topo, remaining, cluster.NewAlloc(), want, c)
		}
		if picked.Total() == 0 {
			continue
		}
		split[j.ID] = picked
		var err error
		remaining, err = remaining.Sub(picked)
		if err != nil {
			panic("sim: resplit internal inconsistency: " + err.Error())
		}
	}
	return split
}

// usableWith reports whether granting extra on top of the app's current
// holding would leave at least one job runnable under its placement
// constraints. schedule uses it to detect grants a constrained app cannot
// convert into progress.
func (st *AppState) usableWith(extra cluster.Alloc) bool {
	split := st.splitHeld(st.Held.Add(extra))
	for _, j := range st.App.ActiveJobs() {
		alloc := split[j.ID]
		if alloc.Total() == 0 {
			continue
		}
		c, ok := j.PlacementConstraint(st.topo)
		if !ok {
			continue
		}
		if placement.Satisfies(st.topo, alloc, c) {
			return true
		}
	}
	return false
}

// packConstraint derives the app-level constraint handed to a Packer when
// re-materialising this app's grant. Per-job floors and caps are enforced by
// the job split, not here; but domain and flavor affinities shared by every
// active job admit or reject whole machines, so surfacing them lets the
// packer avoid machines none of the app's jobs may use. When the app has
// exactly one active job, its full constraint set applies.
func (st *AppState) packConstraint() placement.Constraint {
	active := st.App.ActiveJobs()
	if len(active) == 0 {
		return placement.Constraint{}
	}
	first, ok := active[0].PlacementConstraint(st.topo)
	if !ok {
		return placement.Constraint{}
	}
	if len(active) == 1 {
		return first
	}
	shared := placement.Constraint{Domain: first.Domain, HasDomain: first.HasDomain, Flavor: first.Flavor}
	for _, j := range active[1:] {
		c, ok := j.PlacementConstraint(st.topo)
		if !ok {
			c = placement.Constraint{}
		}
		if c.HasDomain != shared.HasDomain || c.Domain != shared.Domain {
			shared.HasDomain = false
			shared.Domain = 0
		}
		if c.Flavor != shared.Flavor {
			shared.Flavor = ""
		}
	}
	return shared
}

// jobCanRun reports whether alloc lets j make progress: the full §6 / trace
// v2 constraint set (per-machine floor, spread cap, domain and flavor
// affinity) must hold. For unconstrained jobs this reduces to the plain
// min/max check the flat model used.
func (st *AppState) jobCanRun(j *workload.Job, alloc cluster.Alloc) bool {
	c, ok := j.PlacementConstraint(st.topo)
	return ok && placement.Satisfies(st.topo, alloc, c)
}

// advance integrates all runnable jobs' progress over [from, to] and, when
// any integration occurred, re-projects the app's completion time. It
// reports whether the app made progress (and therefore whether its
// completion event needs re-aiming).
func (st *AppState) advance(from, to float64) bool {
	start := from
	if st.pausedUntil > start {
		start = st.pausedUntil
	}
	if start >= to || len(st.runnable) == 0 {
		return false
	}
	dt := to - start
	for _, r := range st.runnable {
		if _, done := r.job.Advance(start, dt, r.g, r.s); done {
			// A completed job leaves the active set, changing the app's
			// placement-score sample.
			st.scoreDirty = true
		}
	}
	st.tunerDirty = true
	st.project(to)
	return true
}

// nextCompletion returns the projected completion time of the app's
// fastest-finishing running job, if any job is running. It recomputes the
// projection from scratch — the legacy per-round scan the heap core's cached
// projection replaces — and is retained for the legacy event core and as a
// cross-check oracle for tests.
func (st *AppState) nextCompletion(now float64) (float64, bool) {
	start := now
	if st.pausedUntil > start {
		start = st.pausedUntil
	}
	best := math.Inf(1)
	for _, j := range st.App.ActiveJobs() {
		alloc := st.jobAllocs[j.ID]
		g := alloc.Total()
		if g == 0 || !st.jobCanRun(j, alloc) {
			continue
		}
		s := st.App.Profile.SOf(st.topo, alloc)
		t := start + j.RemainingWork()/(float64(g)*s)
		if t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// View is the read-only snapshot of simulator state a Policy sees when asked
// to allocate free GPUs.
type View struct {
	Topo    *cluster.Topology
	Cluster *cluster.State
	Now     float64
	// Apps lists the active (arrived, unfinished) apps in ID order, with
	// Held current. The slice's backing array is reused between scheduling
	// rounds: it is only valid for the duration of the Allocate call, so
	// policies that need to retain an app list must copy it.
	Apps []*AppState
}

// ByID returns the active app with the given ID, or nil.
func (v *View) ByID(id workload.AppID) *AppState {
	for _, st := range v.Apps {
		if st.App.ID == id {
			return st
		}
	}
	return nil
}

// anyDemand reports whether any active app can still use more GPUs.
func (v *View) anyDemand() bool {
	for _, st := range v.Apps {
		if st.UnmetDemand() > 0 {
			return true
		}
	}
	return false
}
