package sim

import (
	"math"

	"themis/internal/cluster"
	"themis/internal/hyperparam"
	"themis/internal/placement"
	"themis/internal/workload"
)

// AppState is the simulator's runtime record for one app. Policies receive
// AppStates through the View; the exported fields are safe to read, and the
// job objects may be inspected (but not mutated) for policy decisions.
type AppState struct {
	App   *workload.App
	Tuner hyperparam.Tuner
	// Held is the app's current allocation; refreshed when a View is built.
	Held cluster.Alloc
	// TIdealAtArrival is the app's dedicated-cluster running time estimate
	// frozen at submission (min over jobs of work / gang size), used for the
	// realised finish-time fairness metric.
	TIdealAtArrival float64

	topo        *cluster.Topology
	jobAllocs   map[workload.JobID]cluster.Alloc
	pausedUntil float64
}

func newAppState(app *workload.App, tuner hyperparam.Tuner, topo *cluster.Topology) *AppState {
	st := &AppState{
		App:       app,
		Tuner:     tuner,
		Held:      cluster.NewAlloc(),
		topo:      topo,
		jobAllocs: make(map[workload.JobID]cluster.Alloc),
	}
	st.TIdealAtArrival = idealRunningTime(app)
	app.TIdeal = st.TIdealAtArrival
	return st
}

// idealRunningTime is the paper's T_ID estimate (§5.2 step 5): the minimum
// over the app's jobs of serial work divided by ideal parallelism, with
// perfect placement.
func idealRunningTime(app *workload.App) float64 {
	best := math.Inf(1)
	for _, j := range app.Jobs {
		g := j.GangSize
		if j.MaxParallelism > g {
			g = j.MaxParallelism
		}
		if g <= 0 {
			continue
		}
		if t := j.TotalWork / float64(g); t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) || best <= 0 {
		return 1e-6
	}
	return best
}

// AttainedService returns the GPU-minutes the app has consumed so far — the
// quantity Tiresias's least-attained-service policy schedules on.
func (st *AppState) AttainedService() float64 { return st.App.GPUTime() }

// UnmetDemand returns how many additional GPUs the app can still use.
func (st *AppState) UnmetDemand() int {
	want := 0
	for _, j := range st.App.ActiveJobs() {
		p := j.MaxParallelism
		if p <= 0 {
			p = j.GangSize
		}
		want += p
	}
	unmet := want - st.Held.Total()
	if unmet < 0 {
		return 0
	}
	return unmet
}

// PausedUntil returns the time before which the app's jobs make no progress
// because of checkpoint/restart churn after its last allocation change.
func (st *AppState) PausedUntil() float64 { return st.pausedUntil }

// JobAlloc returns the GPUs currently assigned to job id within the app.
func (st *AppState) JobAlloc(id workload.JobID) cluster.Alloc {
	if a, ok := st.jobAllocs[id]; ok {
		return a.Clone()
	}
	return cluster.NewAlloc()
}

// onAllocationChange re-splits the app's (new) total allocation across its
// active jobs and applies the checkpoint/restart pause.
func (st *AppState) onAllocationChange(now float64, held cluster.Alloc, overhead float64) {
	st.Held = held
	st.resplit()
	if overhead > 0 {
		until := now + overhead
		if until > st.pausedUntil {
			st.pausedUntil = until
		}
	}
}

// resplit assigns the app's held GPUs to its active jobs greedily and
// placement-sensitively, honouring per-job parallelism limits. Jobs nearest
// completion are placed first (they determine the app's finish time).
func (st *AppState) resplit() {
	st.jobAllocs = make(map[workload.JobID]cluster.Alloc)
	active := st.App.ActiveJobs()
	if len(active) == 0 || st.Held.Total() == 0 {
		return
	}
	order := make([]*workload.Job, len(active))
	copy(order, active)
	for i := 0; i < len(order); i++ {
		for k := i + 1; k < len(order); k++ {
			if order[k].RemainingWork() < order[i].RemainingWork() {
				order[i], order[k] = order[k], order[i]
			}
		}
	}
	remaining := st.Held.Clone()
	for _, j := range order {
		want := j.MaxParallelism
		if want <= 0 {
			want = j.GangSize
		}
		picked := placement.Pick(st.topo, remaining, cluster.NewAlloc(), want)
		if picked.Total() == 0 {
			continue
		}
		st.jobAllocs[j.ID] = picked
		var err error
		remaining, err = remaining.Sub(picked)
		if err != nil {
			panic("sim: resplit internal inconsistency: " + err.Error())
		}
	}
}

// advance integrates all running jobs' progress over [from, to].
func (st *AppState) advance(from, to float64) {
	start := from
	if st.pausedUntil > start {
		start = st.pausedUntil
	}
	if start >= to {
		return
	}
	dt := to - start
	for _, j := range st.App.ActiveJobs() {
		alloc := st.jobAllocs[j.ID]
		g := alloc.Total()
		if g == 0 || !placement.SatisfiesMinPerMachine(alloc, j.MinGPUsPerMachine) {
			continue
		}
		s := st.App.Profile.SOf(st.topo, alloc)
		j.Advance(start, dt, g, s)
	}
}

// nextCompletion returns the projected completion time of the app's
// fastest-finishing running job, if any job is running.
func (st *AppState) nextCompletion(now float64) (float64, bool) {
	start := now
	if st.pausedUntil > start {
		start = st.pausedUntil
	}
	best := math.Inf(1)
	for _, j := range st.App.ActiveJobs() {
		alloc := st.jobAllocs[j.ID]
		g := alloc.Total()
		if g == 0 || !placement.SatisfiesMinPerMachine(alloc, j.MinGPUsPerMachine) {
			continue
		}
		s := st.App.Profile.SOf(st.topo, alloc)
		t := start + j.RemainingWork()/(float64(g)*s)
		if t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// View is the read-only snapshot of simulator state a Policy sees when asked
// to allocate free GPUs.
type View struct {
	Topo    *cluster.Topology
	Cluster *cluster.State
	Now     float64
	// Apps lists the active (arrived, unfinished) apps in ID order, with
	// Held already refreshed.
	Apps []*AppState
}

// ByID returns the active app with the given ID, or nil.
func (v *View) ByID(id workload.AppID) *AppState {
	for _, st := range v.Apps {
		if st.App.ID == id {
			return st
		}
	}
	return nil
}

// anyDemand reports whether any active app can still use more GPUs.
func (v *View) anyDemand() bool {
	for _, st := range v.Apps {
		if st.UnmetDemand() > 0 {
			return true
		}
	}
	return false
}
