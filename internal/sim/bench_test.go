package sim

// Event-core benchmarks: the same saturated-cluster workload driven through
// the indexed-heap event core and the legacy per-round scan core, at 64/512/
// 2048 apps. The workload uses single-trial apps and a trivial FIFO policy
// so the measured time is dominated by the event loop itself — next-event
// discovery, lease bookkeeping and progress integration — rather than by
// policy or tuner work. The heap-vs-scan ratio at 2048 apps is the headline
// number tracked by the bench trajectory.
//
// Run with:
//
//	go test -run '^$' -bench BenchmarkSimEventCore -benchtime 1x ./internal/sim/

import (
	"context"
	"fmt"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/workload"
)

// benchTopology is a 256-GPU cluster (64 machines × 4 GPUs).
func benchTopology(b *testing.B) *cluster.Topology {
	b.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 64, GPUs: 4, SlotSize: 2, GPU: cluster.GPUTypeP100}},
		MachinesPerRack: 16,
	}.Build()
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// benchApps builds n single-trial apps arriving much faster than the
// cluster drains them, so the active set grows to O(n) and the event core's
// per-round costs dominate.
func benchApps(n int) []*workload.App {
	apps := make([]*workload.App, n)
	for i := 0; i < n; i++ {
		id := workload.AppID(fmt.Sprintf("bench-%05d", i))
		j := workload.NewJob(id, 0, 60+float64(i%5)*20, 4)
		j.Seed = int64(i)
		apps[i] = workload.NewApp(id, float64(i)*0.05, placement.ResNet50, []*workload.Job{j})
	}
	return apps
}

// benchPolicy grants free GPUs first-come-first-served in view order (the
// zero-padded bench app IDs sort in submit order) without the per-round sort
// fifoPolicy performs, so policy work stays negligible next to the event
// core being measured.
type benchPolicy struct{}

func (benchPolicy) Name() string { return "bench-fifo" }

func (benchPolicy) Allocate(now float64, free cluster.Alloc, view *View) (map[workload.AppID]cluster.Alloc, error) {
	var out map[workload.AppID]cluster.Alloc
	remaining := free
	left := free.Total()
	for _, st := range view.Apps {
		if left == 0 {
			break
		}
		want := st.UnmetDemand()
		if want <= 0 {
			continue
		}
		alloc := placement.Pick(view.Topo, remaining, st.Held, want)
		granted := alloc.Total()
		if granted == 0 {
			continue
		}
		if out == nil {
			out = make(map[workload.AppID]cluster.Alloc)
		}
		out[st.App.ID] = alloc
		var err error
		remaining, err = remaining.Sub(alloc)
		if err != nil {
			return nil, err
		}
		left -= granted
	}
	return out, nil
}

func benchmarkEventCore(b *testing.B, apps int, legacy bool) {
	topo := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		trace := benchApps(apps) // fresh runtime state per run
		b.StartTimer()
		s, err := New(Config{
			Topology:        topo,
			Apps:            trace,
			Policy:          benchPolicy{},
			LeaseDuration:   20,
			RestartOverhead: 0.5,
			legacyScan:      legacy,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Finished()) != apps {
			b.Fatalf("only %d of %d apps finished", len(res.Finished()), apps)
		}
	}
}

// BenchmarkSimEventCore measures a full simulation run under both event
// cores at increasing app counts.
func BenchmarkSimEventCore(b *testing.B) {
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"heap", false}, {"scan", true}} {
		for _, apps := range []int{64, 512, 2048} {
			b.Run(fmt.Sprintf("%s/apps-%d", mode.name, apps), func(b *testing.B) {
				benchmarkEventCore(b, apps, mode.legacy)
			})
		}
	}
}
