package sim

import (
	"context"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/workload"
)

func TestFailureRevokesGPUsAndRecovers(t *testing.T) {
	// A single machine that fails at t=10 for 30 minutes while the only app
	// runs on it: the app must lose its GPUs, wait out the failure, and
	// still finish once the machine recovers.
	topo := simTopo(t, 1, 4, 1)
	app := simApp("a", 0, placement.ResNet50, 1, 200)
	s, err := New(Config{
		Topology:      topo,
		Apps:          []*workload.App{app},
		Policy:        fifoPolicy{},
		LeaseDuration: 20,
		Failures:      []Failure{{Time: 10, Machine: 0, Duration: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished()) != 1 {
		t.Fatal("app did not finish despite machine recovery")
	}
	// The failure must show up as an allocation drop in the timeline at t=10.
	sawDrop := false
	for _, e := range res.TimelineFor("a") {
		if e.Time >= 10 && e.Time < 11 && e.GPUs < 4 {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Errorf("timeline shows no allocation drop at the failure: %v", res.TimelineFor("a"))
	}
	// Completion is delayed by roughly the 30-minute outage beyond the
	// unfailed ideal of 50 minutes on 4 GPUs.
	if res.Apps[0].CompletionTime <= 75 {
		t.Errorf("completion %v should be delayed by the 30-minute outage", res.Apps[0].CompletionTime)
	}
}

func TestFailureOfIdleMachineIsHarmless(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	app := simApp("a", 0, placement.ResNet50, 1, 40)
	s, err := New(Config{
		Topology:      topo,
		Apps:          []*workload.App{app},
		Policy:        fifoPolicy{},
		LeaseDuration: 20,
		Failures:      []Failure{{Time: 1, Machine: 1, Duration: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished()) != 1 {
		t.Error("failure of an unused machine should not block completion")
	}
}

func TestPermanentFailureShrinksCluster(t *testing.T) {
	// Single machine fails permanently while the only app runs: the app can
	// never finish, and the run must still terminate at the horizon.
	topo := simTopo(t, 1, 4, 1)
	app := simApp("a", 0, placement.ResNet50, 1, 200)
	s, err := New(Config{
		Topology:      topo,
		Apps:          []*workload.App{app},
		Policy:        fifoPolicy{},
		LeaseDuration: 10,
		Horizon:       300,
		Failures:      []Failure{{Time: 5, Machine: 0, Duration: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished()) != 0 {
		t.Error("app finished despite its only machine failing permanently")
	}
}

func TestClusterOfflineAccounting(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	cs := cluster.NewState(topo)
	if err := cs.Grant("a", cluster.Alloc{0: 2}); err != nil {
		t.Fatal(err)
	}
	cs.SetOffline(0, true)
	if cs.FreeOn(0) != 0 {
		t.Errorf("offline machine should offer no GPUs, got %d", cs.FreeOn(0))
	}
	if cs.TotalFree() != 4 {
		t.Errorf("TotalFree = %d, want 4 (only machine 1)", cs.TotalFree())
	}
	if got := cs.FreeVector(); got[0] != 0 || got[1] != 4 {
		t.Errorf("FreeVector = %v", got)
	}
	// Used GPUs are still accounted even while offline.
	if cs.TotalUsed() != 2 {
		t.Errorf("TotalUsed = %d, want 2", cs.TotalUsed())
	}
	if err := cs.Grant("b", cluster.Alloc{0: 1}); err == nil {
		t.Error("granting on an offline machine should fail")
	}
	off := cs.OfflineMachines()
	if len(off) != 1 || off[0] != 0 || !cs.Offline(0) {
		t.Errorf("OfflineMachines = %v", off)
	}
	cs.SetOffline(0, false)
	if cs.FreeOn(0) != 2 {
		t.Errorf("after recovery FreeOn(0) = %d, want 2", cs.FreeOn(0))
	}
	// Unknown machines are ignored.
	cs.SetOffline(99, true)
	if len(cs.OfflineMachines()) != 0 {
		t.Error("unknown machine should not be recorded as offline")
	}
}

func TestPlacementConstraintBlocksSpreadAllocations(t *testing.T) {
	// A job that needs at least 4 co-located GPUs makes no progress on a
	// 2+2 split but runs fine on a single machine.
	topo := simTopo(t, 2, 4, 2)
	app := simApp("a", 0, placement.ResNet50, 1, 100)
	app.Jobs[0].MinGPUsPerMachine = 4
	st := newAppState(app, fifoTuner{}, topo)

	st.onAllocationChange(0, cluster.Alloc{0: 2, 1: 2}, 0)
	st.advance(0, 10)
	if app.Jobs[0].DoneWork != 0 {
		t.Errorf("constrained job progressed on a violating allocation: %v", app.Jobs[0].DoneWork)
	}
	if _, ok := st.nextCompletion(10); ok {
		t.Error("violating allocation should not produce a completion event")
	}

	st.onAllocationChange(10, cluster.Alloc{0: 4}, 0)
	st.advance(10, 20)
	if app.Jobs[0].DoneWork == 0 {
		t.Error("constrained job should progress on a machine-local allocation")
	}
}

func TestSatisfiesMinPerMachine(t *testing.T) {
	cases := []struct {
		alloc cluster.Alloc
		min   int
		want  bool
	}{
		{cluster.Alloc{0: 4}, 4, true},
		{cluster.Alloc{0: 2, 1: 2}, 4, false},
		{cluster.Alloc{0: 4, 1: 4}, 4, true},
		{cluster.Alloc{0: 1}, 0, true},
		{cluster.NewAlloc(), 4, true},
	}
	for _, c := range cases {
		if got := placement.SatisfiesMinPerMachine(c.alloc, c.min); got != c.want {
			t.Errorf("SatisfiesMinPerMachine(%v, %d) = %v, want %v", c.alloc, c.min, got, c.want)
		}
	}
}
