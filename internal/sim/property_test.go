package sim

// Property-based invariant tests: randomized traces replayed under an
// instrumented policy must uphold the simulator's structural invariants —
// time never flows backwards, grants are disjoint and within the advertised
// free pool, cluster occupancy stays internally consistent, and every app
// either finishes or survives to the horizon.

import (
	"context"
	"math"
	"testing"

	"themis/internal/cluster"
	"themis/internal/workload"
)

// invariantPolicy wraps an inner policy and checks, at every decision point:
//   - the clock is non-decreasing across invocations,
//   - the advertised free pool matches the cluster state,
//   - each app's Held in the view matches the cluster's records,
//   - the inner policy's grants are disjoint, within free, and name only
//     viewed apps,
//   - the cluster state validates internally.
type invariantPolicy struct {
	t       *testing.T
	inner   Policy
	lastNow *float64
}

func (p invariantPolicy) Name() string { return "invariant-" + p.inner.Name() }

func (p invariantPolicy) Allocate(now float64, free cluster.Alloc, view *View) (map[workload.AppID]cluster.Alloc, error) {
	t := p.t
	if now < *p.lastNow {
		t.Errorf("time flowed backwards: %v after %v", now, *p.lastNow)
	}
	*p.lastNow = now
	if err := view.Cluster.Validate(); err != nil {
		t.Errorf("t=%v: cluster state invalid: %v", now, err)
	}
	for m, n := range free {
		if n < 0 || n > view.Cluster.FreeOn(m) {
			t.Errorf("t=%v: offered %d GPUs on machine %d but only %d are free", now, n, m, view.Cluster.FreeOn(m))
		}
	}
	viewed := make(map[workload.AppID]bool, len(view.Apps))
	for _, st := range view.Apps {
		viewed[st.App.ID] = true
		held := view.Cluster.Held(string(st.App.ID))
		if st.Held.Total() != held.Total() {
			t.Errorf("t=%v: app %s Held %d GPUs in view, %d in cluster", now, st.App.ID, st.Held.Total(), held.Total())
		}
	}
	grants, err := p.inner.Allocate(now, free, view)
	if err != nil {
		return grants, err
	}
	granted := cluster.NewAlloc()
	for id, alloc := range grants {
		if !viewed[id] {
			t.Errorf("t=%v: grant to app %s not present in the view", now, id)
		}
		for m, n := range alloc {
			if n < 0 {
				t.Errorf("t=%v: negative grant %d on machine %d to %s", now, n, m, id)
			}
			granted[m] += n
		}
	}
	for m, n := range granted {
		if n > free[m] {
			t.Errorf("t=%v: grants overlap or exceed free on machine %d: %d > %d", now, m, n, free[m])
		}
	}
	return grants, nil
}

func propertyWorkload(t *testing.T, seed int64) []*workload.App {
	t.Helper()
	cfg := workload.DefaultGeneratorConfig()
	cfg.Seed = seed
	cfg.NumApps = 6 + int(seed%7)
	cfg.MeanInterArrival = 3 + float64(seed%5)
	cfg.JobsPerAppMedian = 3
	cfg.MaxJobsPerApp = 8
	cfg.DurationScale = 0.15
	cfg.ContentionFactor = 1 + float64(seed%3)
	apps, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return apps
}

func TestSimInvariantsOnRandomizedTraces(t *testing.T) {
	topo := simTopo(t, 6, 4, 3)
	for seed := int64(1); seed <= 8; seed++ {
		lastNow := math.Inf(-1)
		horizon := 4000.0
		s, err := New(Config{
			Topology:        topo,
			Apps:            propertyWorkload(t, seed),
			Policy:          invariantPolicy{t: t, inner: fifoPolicy{}, lastNow: &lastNow},
			LeaseDuration:   8,
			RestartOverhead: 0.4,
			Horizon:         horizon,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertResultInvariants(t, res, horizon, seed)
	}
}

// assertResultInvariants checks the run-level properties: monotone timeline,
// every app finished or survived to the horizon, completion no faster than
// the dedicated-cluster ideal, and non-negative accounting.
func assertResultInvariants(t *testing.T, res *Result, horizon float64, seed int64) {
	t.Helper()
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Time < res.Timeline[i-1].Time {
			t.Errorf("seed %d: timeline not time-ordered at %d", seed, i)
		}
	}
	for _, rec := range res.Apps {
		if rec.FinishTime == workload.NotFinished {
			if res.Makespan < horizon-timeEps {
				t.Errorf("seed %d: app %s unfinished although the run ended at %v before the horizon %v",
					seed, rec.App, res.Makespan, horizon)
			}
			continue
		}
		if rec.CompletionTime < rec.TIdeal-1e-6 {
			t.Errorf("seed %d: app %s finished in %v, faster than its dedicated-cluster ideal %v",
				seed, rec.App, rec.CompletionTime, rec.TIdeal)
		}
		if rec.FinishTimeFairness < 1-1e-9 {
			t.Errorf("seed %d: app %s has finish-time fairness %v < 1", seed, rec.App, rec.FinishTimeFairness)
		}
		if rec.BusyGPUTime < 0 || rec.HeldGPUTime < rec.BusyGPUTime-1e-6 {
			t.Errorf("seed %d: app %s held %v GPU-min but computed %v", seed, rec.App, rec.HeldGPUTime, rec.BusyGPUTime)
		}
		if rec.PlacementScore < 0 || rec.PlacementScore > 1+1e-9 {
			t.Errorf("seed %d: app %s placement score %v outside [0,1]", seed, rec.App, rec.PlacementScore)
		}
	}
}

// TestSimTimeMonotoneUnderFailures runs the failure-injection path with the
// instrumented policy: revocations must never violate the allocation or
// clock invariants either.
func TestSimTimeMonotoneUnderFailures(t *testing.T) {
	topo := simTopo(t, 4, 4, 2)
	lastNow := math.Inf(-1)
	s, err := New(Config{
		Topology:        topo,
		Apps:            propertyWorkload(t, 3),
		Policy:          invariantPolicy{t: t, inner: fifoPolicy{}, lastNow: &lastNow},
		LeaseDuration:   8,
		RestartOverhead: 0.4,
		Horizon:         4000,
		Failures: []Failure{
			{Time: 5, Machine: 0, Duration: 10},
			{Time: 12, Machine: 3, Duration: 30},
			{Time: 13, Machine: 1, Duration: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertResultInvariants(t, res, 4000, 3)
}
