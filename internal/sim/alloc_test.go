package sim

import (
	"fmt"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/race"
	"themis/internal/workload"
)

// allocProbeSim builds a simulator in the steady state the zero-alloc
// contract covers: every app has arrived, the cluster is saturated (the
// policy has nothing to offer, so rounds skip straight through scheduling),
// leases are effectively eternal, and every job has enough remaining work
// that nothing completes during the measurement. What is left per round is
// the pure event-core machinery: event-heap maintenance, due-lease and
// next-event discovery, tuner dirty checks, progress integration and interval
// accounting.
func allocProbeSim(t testing.TB) *Simulator {
	t.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 16, GPUs: 4, SlotSize: 2, GPU: cluster.GPUTypeP100}},
		MachinesPerRack: 8,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	apps := make([]*workload.App, n)
	for i := 0; i < n; i++ {
		id := workload.AppID(fmt.Sprintf("alloc-%05d", i))
		j := workload.NewJob(id, 0, 1e9, 4) // never completes within the probe
		j.Seed = int64(i)
		apps[i] = workload.NewApp(id, 0, placement.ResNet50, []*workload.Job{j})
	}
	s, err := New(Config{
		Topology:        topo,
		Apps:            apps,
		Policy:          benchPolicy{},
		LeaseDuration:   1e9, // no expiries during the probe
		RestartOverhead: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// probeRound runs one full decision-point round, exactly as Run's loop does.
func probeRound(t testing.TB, s *Simulator) {
	s.processArrivals()
	s.processFailures()
	if err := s.expireLeases(); err != nil {
		t.Fatal(err)
	}
	s.runTuners()
	s.finishApps()
	if _, err := s.schedule(); err != nil {
		t.Fatal(err)
	}
	s.advanceTo(s.now + 1e-3)
}

// Steady-state event processing must not allocate: once the active set is
// established and the cluster saturated, a decision-point round is 0
// allocs/op. This is the sim half of the PR's allocation contract
// (TestBinaryDecodeZeroAlloc in internal/trace is the other half); CI runs
// both as a distinct step so a regression names the hot path it landed in.
func TestEventCoreZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc contract is checked without -race")
	}
	s := allocProbeSim(t)
	// Warm up: arrivals, the saturating scheduling round, and enough further
	// rounds for every scratch buffer and the interval accounting's cached
	// fragmentation snapshot to reach steady-state capacity.
	for i := 0; i < 64; i++ {
		probeRound(t, s)
	}
	if free := s.cs.TotalFree(); free != 0 {
		t.Fatalf("probe cluster not saturated after warmup: %d GPUs free", free)
	}
	if len(s.active) == 0 {
		t.Fatal("probe has no active apps after warmup")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		probeRound(t, s)
	})
	if allocs != 0 {
		t.Errorf("steady-state event round allocates %.1f objects/op, want 0", allocs)
	}
}

// Lease grant/expiry cycles must recycle lease objects and their alloc maps
// through the simulator-owned free-lists rather than leaving each cycle's
// objects to the collector. The observable contract: after the pools have
// been primed by one expiry wave, a grant→expire→regrant round trip reuses
// pooled objects (the pools never grow past the concurrent-lease high-water
// mark) and the simulation stays correct — which the golden replay tests pin
// bit-for-bit. Here we assert pool recycling directly.
func TestLeasePoolRecycles(t *testing.T) {
	s := allocProbeSim(t)
	// Arrive and saturate, with real lease expiries this time.
	s.cfg.LeaseDuration = 5
	for i := 0; i < 4; i++ {
		probeRound(t, s)
	}
	if got := len(s.leasePool); got != 0 {
		t.Fatalf("lease pool non-empty before any expiry: %d", got)
	}
	// Jump past the lease horizon: expiries retire every lease into the pool.
	s.advanceTo(s.now + 6)
	if err := s.expireLeases(); err != nil {
		t.Fatal(err)
	}
	retired := len(s.leasePool)
	if retired == 0 {
		t.Fatal("no leases retired into the pool after expiry")
	}
	if got := len(s.allocPool); got != retired {
		t.Fatalf("alloc pool holds %d maps, want %d (one per retired lease)", got, retired)
	}
	// The next scheduling round re-grants from the pool.
	if _, err := s.schedule(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.leasePool); got >= retired {
		t.Fatalf("re-grant did not draw from the lease pool: %d before, %d after", retired, got)
	}
}
