// Package sim is the event-driven cluster simulator used by the paper's
// evaluation (§8.1): it replays a trace of ML apps against a GPU cluster
// topology under a pluggable cross-app scheduling policy, modelling gang
// placement sensitivity, GPU leases, hyperparameter-tuner kill decisions and
// checkpoint/restart overheads, and records the fairness and efficiency
// metrics the paper's figures report.
//
// The simulator advances between decision points — app arrivals, lease
// expiries, job completions and machine failures — integrating every running
// job's progress exactly between events (progress rate G·S is constant while
// allocations are unchanged). Decision points are scheduled through an
// indexed min-heap of typed events (see events.go) with incrementally
// maintained per-app completion projections, so a scheduling round costs
// O(log n) to aim instead of rescanning every app and lease.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"themis/internal/cluster"
	"themis/internal/hyperparam"
	"themis/internal/placement"
	"themis/internal/workload"
)

// Policy is a cross-app scheduling discipline: given the GPUs currently free
// it decides which apps receive them. Implementations include the Themis
// auction policy and the Gandiva/Tiresias/SLAQ baselines.
type Policy interface {
	// Name identifies the policy in results and logs.
	Name() string
	// Allocate returns the GPUs to grant to each app. Grants must be
	// disjoint, lie within free, and only name apps present in the view.
	// A non-nil error aborts the simulation run.
	Allocate(now float64, free cluster.Alloc, view *View) (map[workload.AppID]cluster.Alloc, error)
}

// Packer re-materialises policy grants onto concrete GPUs in a
// topology-aware way. Policies decide *how many* GPUs each app receives;
// when a Packer is configured, it decides *which* GPUs, drawing from the
// app's grant plus whatever free capacity no app was granted this round.
// pack.Engine.Place implements this contract with the deterministic
// pack-to-empty heuristic over the hierarchical topology.
type Packer interface {
	// Place selects up to want GPUs from free for an app anchored at anchor
	// under constraint c. The result must lie within free, never violate c
	// when combined with anchor, and be deterministic in its inputs.
	Place(free, anchor cluster.Alloc, want int, c placement.Constraint) cluster.Alloc
}

// Config describes one simulation run.
type Config struct {
	Topology *cluster.Topology
	Apps     []*workload.App
	Policy   Policy
	// TunerFor builds the app-level scheduler for an app; nil uses
	// hyperparam.ForApp. Tuners must follow the hyperparam.Tuner contract:
	// Update/Done decisions are pure functions of job progress, because the
	// simulator only re-observes an app after it progresses or changes
	// allocation.
	TunerFor func(*workload.App) hyperparam.Tuner
	// LeaseDuration is the GPU lease length in minutes (paper default 20).
	LeaseDuration float64
	// RestartOverhead is the wall-clock pause (minutes) an app's jobs suffer
	// whenever its allocation changes, modelling checkpoint + container
	// churn (§8.3.2 reports 35–50 s plus 5–10 s; 0.75 min by default).
	RestartOverhead float64
	// Horizon caps simulated time (minutes); 0 means no cap.
	Horizon float64
	// MaxIdleRounds aborts the run if this many consecutive scheduling
	// rounds must force the clock forward without a real event (safety net
	// against policy or projection bugs); 0 uses a generous default.
	MaxIdleRounds int
	// Failures optionally injects machine failures (§6 of the paper leaves
	// failure-aware scheduling to future work; the injector lets schedulers
	// be studied under failures anyway).
	Failures []Failure
	// Packer optionally re-materialises each policy grant onto concrete GPUs
	// (see the Packer interface). Nil keeps the policy's own placement — the
	// flat model's behaviour.
	Packer Packer

	// legacyScan switches the simulator to the pre-heap event core, which
	// rediscovers the next event each round by scanning every app and lease.
	// It exists as the baseline for the event-core benchmarks and as an
	// equivalence oracle in tests: both cores produce bit-identical results.
	legacyScan bool
}

// Defaults for Config fields.
const (
	DefaultLeaseDuration   = 20.0
	DefaultRestartOverhead = 0.75
	defaultMaxIdleRounds   = 10000
)

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Topology == nil {
		return fmt.Errorf("sim: nil topology")
	}
	if len(c.Apps) == 0 {
		return fmt.Errorf("sim: no apps")
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: nil policy")
	}
	if c.LeaseDuration < 0 || c.RestartOverhead < 0 || c.Horizon < 0 {
		return fmt.Errorf("sim: negative durations")
	}
	for _, a := range c.Apps {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// lease is one outstanding GPU lease inside the simulator.
type lease struct {
	app    *AppState
	alloc  cluster.Alloc
	expiry float64
	// seq is the lease's grant order; expiries due at the same instant are
	// processed in grant order, matching the original slice-based core.
	seq uint64
	ev  event
}

// Simulator runs one configured simulation.
type Simulator struct {
	cfg    Config
	cs     *cluster.State
	apps   []*AppState // all apps in arrival order
	active map[workload.AppID]*AppState
	// activeList holds the active apps in an unspecified but deterministic
	// order (arrival order, perturbed by swap-removal on finish); every use
	// is order-independent. activeSorted holds the same apps sorted by ID —
	// the View order.
	activeList   []*AppState
	activeSorted []*AppState
	// runningList holds the active apps with at least one runnable job (the
	// only ones progress integration touches); holdingList holds the active
	// apps currently holding GPUs (the only ones interval accounting
	// touches). Both are synced on every allocation change.
	runningList []*AppState
	holdingList []*AppState
	viewBuf     []*AppState // reused backing array for View.Apps
	pending     []*AppState // not yet arrived, in arrival order

	events     eventHeap
	failures   []*failureRec  // pending failures, in time order
	recoveries []*recoveryRec // pending recoveries, in time order
	leaseSeq   uint64

	// Hot-loop object pools and scratch buffers. The event core runs once
	// per decision point; without these, every round allocated fresh slices
	// (due/keep/stale/ids), a View struct, and — on each grant — a lease and
	// an alloc map, all of it garbage by the next round. The free-lists are
	// owned by the Simulator (no sync.Pool: the simulator is single-threaded,
	// and sweep workers each own a Simulator), so reuse is deterministic and
	// race-free. TestEventCoreZeroAlloc pins steady-state rounds at 0
	// allocs/op.
	leasePool    []*lease        // retired leases, ready for grantLease
	allocPool    []cluster.Alloc // retired lease alloc maps, cleared on reuse
	dueScratch   []*lease        // dueLeases result
	keepScratch  []*event        // dueLeases non-expiry re-push buffer
	staleScratch []*event        // heapEventTimes re-push buffer
	idsScratch   []workload.AppID
	viewStruct   View // reused policy-facing view (valid during Allocate only)

	now    float64
	result *Result
}

// New constructs a Simulator. The apps in cfg are used directly (their
// runtime state is mutated); callers wanting to reuse a trace across runs
// should regenerate or deep-copy it.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LeaseDuration == 0 {
		cfg.LeaseDuration = DefaultLeaseDuration
	}
	if cfg.MaxIdleRounds == 0 {
		cfg.MaxIdleRounds = defaultMaxIdleRounds
	}
	tunerFor := cfg.TunerFor
	if tunerFor == nil {
		tunerFor = hyperparam.ForApp
	}
	s := &Simulator{
		cfg:    cfg,
		cs:     cluster.NewState(cfg.Topology),
		active: make(map[workload.AppID]*AppState),
		result: newResult(cfg),
	}
	apps := make([]*workload.App, len(cfg.Apps))
	copy(apps, cfg.Apps)
	sort.SliceStable(apps, func(i, j int) bool { return apps[i].SubmitTime < apps[j].SubmitTime })
	for _, a := range apps {
		st := newAppState(a, tunerFor(a), cfg.Topology)
		s.apps = append(s.apps, st)
		s.pending = append(s.pending, st)
		s.events.push(&st.arrivalEv)
	}
	s.initFailures()
	return s, nil
}

// Run executes the simulation to completion (all apps finished, the horizon
// reached, or no further events) and returns the collected results. The
// context is checked between decision points, so cancelling it aborts the
// run promptly with the context's error.
func (s *Simulator) Run(ctx context.Context) (*Result, error) {
	forcedRounds := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.cfg.Horizon > 0 && s.now >= s.cfg.Horizon {
			break
		}
		s.processArrivals()
		s.processFailures()
		if err := s.expireLeases(); err != nil {
			return nil, err
		}
		s.runTuners()
		s.finishApps()
		if _, err := s.schedule(); err != nil {
			return nil, err
		}

		if s.done() {
			break
		}
		next, forced, ok := s.nextEventTime()
		if !ok {
			// Nothing will ever happen again (no arrivals, no running jobs,
			// no leases): avoid spinning forever.
			break
		}
		if forced {
			forcedRounds++
			if forcedRounds > s.cfg.MaxIdleRounds {
				return nil, fmt.Errorf("sim: no progress after %d forced rounds at t=%.2f under policy %s", forcedRounds, s.now, s.cfg.Policy.Name())
			}
		} else {
			forcedRounds = 0
		}
		s.advanceTo(next)
	}
	s.finalize()
	return s.result, nil
}

// done reports whether every app has finished.
func (s *Simulator) done() bool {
	if len(s.pending) > 0 {
		return false
	}
	return len(s.active) == 0
}

// processArrivals registers apps whose submit time has been reached.
func (s *Simulator) processArrivals() {
	for len(s.pending) > 0 && s.pending[0].App.SubmitTime <= s.now+timeEps {
		st := s.pending[0]
		s.pending = s.pending[1:]
		s.events.remove(&st.arrivalEv)
		s.active[st.App.ID] = st
		st.activeIdx = len(s.activeList)
		s.activeList = append(s.activeList, st)
		s.insertActiveSorted(st)
		s.result.noteArrival(s.now, st)
		// Jobs whose constraints no allocation on this topology can satisfy
		// are rejected now rather than starved forever; the app's tuner then
		// observes the kills (and finishes the app if nothing is left).
		if st.rejectInfeasible(s.now) {
			st.tunerDirty = true
		}
	}
}

// removeActive drops st from the active set (map, lists and sorted slice).
func (s *Simulator) removeActive(st *AppState) {
	delete(s.active, st.App.ID)
	last := len(s.activeList) - 1
	if st.activeIdx != last {
		moved := s.activeList[last]
		s.activeList[st.activeIdx] = moved
		moved.activeIdx = st.activeIdx
	}
	s.activeList[last] = nil
	s.activeList = s.activeList[:last]
	st.activeIdx = -1
	setMembership(&s.runningList, st, &st.runningIdx, runningIdxOf, false)
	setMembership(&s.holdingList, st, &st.holdingIdx, holdingIdxOf, false)
	s.removeActiveSorted(st)
}

// runningIdxOf and holdingIdxOf select the membership index fields for
// setMembership's swap-removal bookkeeping.
func runningIdxOf(st *AppState) *int { return &st.runningIdx }
func holdingIdxOf(st *AppState) *int { return &st.holdingIdx }

// setMembership adds st to or removes st from a swap-removal list, keeping
// the per-app index (selected by idxOf) consistent for the moved element.
func setMembership(list *[]*AppState, st *AppState, idx *int, idxOf func(*AppState) *int, want bool) {
	has := *idx >= 0
	if want == has {
		return
	}
	if want {
		*idx = len(*list)
		*list = append(*list, st)
		return
	}
	l := *list
	last := len(l) - 1
	if *idx != last {
		moved := l[last]
		l[*idx] = moved
		*idxOf(moved) = *idx
	}
	l[last] = nil
	*list = l[:last]
	*idx = -1
}

// appStateChanged re-aims st's completion event and re-syncs its running
// and holding list memberships after an allocation change.
func (s *Simulator) appStateChanged(st *AppState) {
	s.refreshCompletion(st)
	st.tunerDirty = true
	setMembership(&s.runningList, st, &st.runningIdx, runningIdxOf, len(st.runnable) > 0)
	setMembership(&s.holdingList, st, &st.holdingIdx, holdingIdxOf, st.heldTotal > 0)
}

// insertActiveSorted adds st to the ID-sorted active slice.
func (s *Simulator) insertActiveSorted(st *AppState) {
	id := st.App.ID
	i := sort.Search(len(s.activeSorted), func(i int) bool { return s.activeSorted[i].App.ID >= id })
	s.activeSorted = append(s.activeSorted, nil)
	copy(s.activeSorted[i+1:], s.activeSorted[i:])
	s.activeSorted[i] = st
}

// removeActiveSorted removes st from the ID-sorted active slice.
func (s *Simulator) removeActiveSorted(st *AppState) {
	id := st.App.ID
	i := sort.Search(len(s.activeSorted), func(i int) bool { return s.activeSorted[i].App.ID >= id })
	if i < len(s.activeSorted) && s.activeSorted[i] == st {
		s.activeSorted = append(s.activeSorted[:i], s.activeSorted[i+1:]...)
	}
}

// expireLeases returns GPUs whose leases have lapsed to the free pool.
// Expiries due at the same instant are processed in grant order.
func (s *Simulator) expireLeases() error {
	due := s.dueLeases()
	for _, l := range due {
		st := l.app
		s.detachLease(l)
		if _, ok := s.active[st.App.ID]; !ok {
			// The app already finished; its GPUs were released then.
			s.recycleLease(l)
			continue
		}
		if err := s.cs.Release(string(st.App.ID), l.alloc); err != nil {
			return fmt.Errorf("sim: lease release inconsistency: %w", err)
		}
		s.recycleLease(l)
		st.onAllocationChange(s.now, s.cs.Held(string(st.App.ID)), s.cfg.RestartOverhead)
		s.appStateChanged(st)
		s.result.noteAllocation(s.now, st, st.Held)
	}
	return nil
}

// recycleLease returns a fully detached lease (and its alloc map) to the
// free-lists for the next grant. Callers must be done with l.alloc: the
// cluster state never retains granted maps (Grant/Release copy), so a lease's
// map is exclusively lease-owned and safe to reuse once released.
func (s *Simulator) recycleLease(l *lease) {
	if l.alloc != nil {
		s.allocPool = append(s.allocPool, l.alloc)
	}
	*l = lease{}
	s.leasePool = append(s.leasePool, l)
}

// dueLeases collects the leases whose expiry time has been reached, sorted
// by grant order. The heap core pops them off the event heap; the legacy
// core rediscovers them by scanning every active app's lease list.
func (s *Simulator) dueLeases() []*lease {
	due := s.dueScratch[:0]
	if s.cfg.legacyScan {
		for _, st := range s.activeList {
			for _, l := range st.leases {
				if l.expiry <= s.now+timeEps {
					due = append(due, l)
				}
			}
		}
	} else {
		keep := s.keepScratch[:0]
		for {
			e := s.events.peek()
			if e == nil || e.time > s.now+timeEps {
				break
			}
			s.events.pop()
			if e.kind == evLeaseExpiry {
				due = append(due, e.lease)
			} else {
				// A completion projection landing within the tolerance of
				// now is not an expiry; leave it for the event loop.
				keep = append(keep, e)
			}
		}
		for _, e := range keep {
			s.events.push(e)
		}
		s.keepScratch = keep
	}
	s.dueScratch = due
	// sort.Slice boxes its closure even over an empty slice; the guard keeps
	// the (overwhelmingly common) no-expiry round allocation-free.
	if len(due) > 1 {
		sort.Slice(due, func(i, j int) bool { return due[i].seq < due[j].seq })
	}
	return due
}

// detachLease removes l from its app's lease list and the event heap.
func (s *Simulator) detachLease(l *lease) {
	s.events.remove(&l.ev)
	ls := l.app.leases
	for i, cand := range ls {
		if cand == l {
			l.app.leases = append(ls[:i], ls[i+1:]...)
			break
		}
	}
}

// runTuners lets every active app's tuner observe progress and kill trials.
func (s *Simulator) runTuners() {
	for _, st := range s.activeList {
		if !st.tunerDirty {
			// Tuner decisions are pure functions of job progress; an app
			// that has not progressed or changed allocation since the last
			// observation cannot trigger new kills.
			continue
		}
		before := st.App.NumActiveJobs()
		st.Tuner.Update(s.now, st.App)
		if st.App.NumActiveJobs() != before {
			// Killed trials vacate their share; re-split the app's GPUs.
			st.onAllocationChange(s.now, s.cs.Held(string(st.App.ID)), 0)
			s.appStateChanged(st)
		}
	}
}

// finishApps completes apps whose tuner declares them done, releasing GPUs
// and detaching every event the app still owns.
func (s *Simulator) finishApps() {
	for i := 0; i < len(s.activeList); {
		st := s.activeList[i]
		if !st.tunerDirty {
			i++
			continue
		}
		st.tunerDirty = false
		if !st.Tuner.Done(st.App) {
			i++
			continue
		}
		st.App.FinishedAt = s.now
		s.cs.ReleaseAll(string(st.App.ID))
		for len(st.leases) > 0 {
			l := st.leases[0]
			s.detachLease(l)
			s.recycleLease(l)
		}
		s.events.remove(&st.completionEv)
		s.result.noteFinish(s.now, st)
		s.removeActive(st)
		// removeActive swapped another app into slot i; revisit it.
	}
}

// schedule invokes the policy over the free pool and applies its decisions.
// It reports whether any allocation changed.
func (s *Simulator) schedule() (bool, error) {
	// TotalFree avoids building the free-vector map on the (frequent)
	// rounds where the cluster is saturated and there is nothing to offer.
	if s.cs.TotalFree() == 0 || len(s.active) == 0 {
		return false, nil
	}
	free := s.cs.FreeVector()
	view := s.view()
	if !view.anyDemand() {
		return false, nil
	}
	grants, err := s.cfg.Policy.Allocate(s.now, free, view)
	if err != nil {
		return false, fmt.Errorf("sim: policy %s at t=%.2f: %w", s.cfg.Policy.Name(), s.now, err)
	}
	changed := false
	ids := s.idsScratch[:0]
	for id := range grants {
		ids = append(ids, id)
	}
	if len(ids) > 1 {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	s.idsScratch = ids
	// leftover tracks the free GPUs no app was granted this round; the packer
	// and the constrained-grant repair draw replacement GPUs from it. It is
	// computed lazily: rounds without a packer or constrained grantee (the
	// common case) never build it.
	var leftover cluster.Alloc
	takeLeftover := func() (cluster.Alloc, error) {
		if leftover != nil {
			return leftover, nil
		}
		l := free.Clone()
		for _, id := range ids {
			var err error
			if l, err = l.Sub(grants[id]); err != nil {
				return nil, fmt.Errorf("sim: policy %s grants exceed the free pool: %w", s.cfg.Policy.Name(), err)
			}
		}
		leftover = l
		return leftover, nil
	}
	for _, id := range ids {
		alloc := grants[id]
		if alloc.Total() == 0 {
			continue
		}
		st, ok := s.active[id]
		if !ok {
			return changed, fmt.Errorf("sim: policy %s allocated to unknown app %s", s.cfg.Policy.Name(), id)
		}
		if s.cfg.Packer != nil {
			l, err := takeLeftover()
			if err != nil {
				return changed, err
			}
			alloc, leftover = s.repack(st, alloc, l)
		}
		// A grant a constrained app cannot convert into a single runnable job
		// would hold GPUs without progress until the lease lapses, and a
		// policy that keeps offering the same shape would churn leases forever
		// (the tiresias loop on constrained traces). Re-pick such grants
		// constraint-aware from the grant plus the round's leftover pool; if
		// no usable shape exists, skip the grant and leave the GPUs free.
		if st.constrained && alloc.Total() > 0 && !st.usableWith(alloc) {
			l, err := takeLeftover()
			if err != nil {
				return changed, err
			}
			alloc, leftover = s.repairGrant(st, alloc, l)
		}
		if alloc.Total() == 0 {
			continue
		}
		if err := s.cs.Grant(string(id), alloc); err != nil {
			return changed, fmt.Errorf("sim: policy %s produced an infeasible allocation for %s: %w", s.cfg.Policy.Name(), id, err)
		}
		s.grantLease(st, s.cloneAlloc(alloc))
		st.onAllocationChange(s.now, s.cs.Held(string(id)), s.cfg.RestartOverhead)
		s.appStateChanged(st)
		s.result.noteAllocation(s.now, st, st.Held)
		changed = true
	}
	return changed, nil
}

// repack lets the configured Packer re-materialise an app's grant onto
// concrete GPUs, drawing from the grant plus the round's leftover free pool.
// It returns the placed allocation (never more GPUs than the policy granted)
// and the updated leftover pool.
func (s *Simulator) repack(st *AppState, alloc, leftover cluster.Alloc) (cluster.Alloc, cluster.Alloc) {
	pool := alloc.Add(leftover)
	placed := s.cfg.Packer.Place(pool, st.Held, alloc.Total(), st.packConstraint())
	rest, err := pool.Sub(placed)
	if err != nil {
		// The Packer contract (placed within free) was violated; fall back to
		// the policy's own placement rather than corrupting the pool.
		return alloc, leftover
	}
	return placed, rest
}

// repairGrant re-picks a grant a constrained app cannot use: drawing from the
// grant plus the leftover pool, it assembles per-job constraint-satisfying
// shapes (least remaining work first, like the job split) up to the granted
// GPU budget. It returns the repaired allocation — possibly empty when no
// usable shape exists — and the updated leftover pool.
func (s *Simulator) repairGrant(st *AppState, alloc, leftover cluster.Alloc) (cluster.Alloc, cluster.Alloc) {
	pool := alloc.Add(leftover)
	budget := alloc.Total()
	repaired := cluster.NewAlloc()
	remaining := pool.Clone()
	order := st.App.ActiveJobs()
	for i := 0; i < len(order); i++ {
		for k := i + 1; k < len(order); k++ {
			if order[k].RemainingWork() < order[i].RemainingWork() {
				order[i], order[k] = order[k], order[i]
			}
		}
	}
	for _, j := range order {
		if budget <= 0 {
			break
		}
		c, ok := j.PlacementConstraint(st.topo)
		if !ok {
			continue
		}
		want := j.MaxParallelism
		if want <= 0 {
			want = j.GangSize
		}
		if want > budget {
			want = budget
		}
		picked := placement.PickConstrained(st.topo, remaining, cluster.NewAlloc(), want, c)
		if picked.Total() == 0 {
			continue
		}
		repaired = repaired.Add(picked)
		var err error
		if remaining, err = remaining.Sub(picked); err != nil {
			panic("sim: grant repair internal inconsistency: " + err.Error())
		}
		budget -= picked.Total()
	}
	rest, err := pool.Sub(repaired)
	if err != nil {
		panic("sim: grant repair internal inconsistency: " + err.Error())
	}
	if repaired.Total() > 0 && !st.usableWith(repaired) {
		// The repair did not produce a usable shape either (the app-level
		// split can interleave jobs differently); granting it would only
		// churn leases, so leave everything in the free pool.
		return cluster.NewAlloc(), pool
	}
	return repaired, rest
}

// cloneAlloc copies a grant into a lease-owned alloc map, reusing a retired
// map from the pool when one is available.
func (s *Simulator) cloneAlloc(src cluster.Alloc) cluster.Alloc {
	n := len(s.allocPool)
	if n == 0 {
		return src.Clone()
	}
	m := s.allocPool[n-1]
	s.allocPool[n-1] = nil
	s.allocPool = s.allocPool[:n-1]
	clear(m)
	for k, v := range src {
		if v != 0 {
			m[k] = v
		}
	}
	return m
}

// grantLease records a new lease over alloc for st, expiring one lease
// duration from now. Lease objects come from the free-list when a retired
// one is available.
func (s *Simulator) grantLease(st *AppState, alloc cluster.Alloc) {
	s.leaseSeq++
	var l *lease
	if n := len(s.leasePool); n > 0 {
		l = s.leasePool[n-1]
		s.leasePool[n-1] = nil
		s.leasePool = s.leasePool[:n-1]
	} else {
		l = &lease{}
	}
	*l = lease{app: st, alloc: alloc, expiry: s.now + s.cfg.LeaseDuration, seq: s.leaseSeq}
	l.ev = event{kind: evLeaseExpiry, time: l.expiry, lease: l, index: -1}
	st.leases = append(st.leases, l)
	s.events.push(&l.ev)
}

// refreshCompletion re-aims st's completion event at its cached projection.
func (s *Simulator) refreshCompletion(st *AppState) {
	if math.IsInf(st.proj, 1) {
		s.events.remove(&st.completionEv)
		return
	}
	s.events.update(&st.completionEv, st.proj)
}

// nextEventTime returns the time the simulation should advance to: the
// earliest scheduled event, or — when the earliest projections have rounded
// to "now" — a forced step of at most minTimeStep, clamped so it can never
// jump over a strictly-future event. It reports whether the step was forced
// and whether any event remains at all.
func (s *Simulator) nextEventTime() (t float64, forced, ok bool) {
	var best, future float64
	if s.cfg.legacyScan {
		best, future = s.scanEventTimes()
	} else {
		best, future = s.heapEventTimes()
	}
	if math.IsInf(best, 1) {
		return 0, false, false
	}
	if best <= s.now {
		// Events that project to "now" (e.g. a completion whose remaining
		// work has rounded to zero) must still move time forward, or the run
		// would spin without ever re-integrating job progress. The forced
		// step is clamped to the next strictly-future event so it can never
		// jump over a lease expiry or arrival landing inside the step.
		best = math.Min(s.now+minTimeStep, future)
		forced = true
	}
	if s.cfg.Horizon > 0 && best > s.cfg.Horizon {
		best = s.cfg.Horizon
	}
	return best, forced, true
}

// heapEventTimes reads the earliest event (and earliest strictly-future
// event) from the event heap. Entries at or behind now — only completion
// projections can be there — are momentarily popped to uncover the first
// future entry, then re-inserted so they keep forcing progress.
func (s *Simulator) heapEventTimes() (best, future float64) {
	best, future = math.Inf(1), math.Inf(1)
	stale := s.staleScratch[:0]
	for {
		e := s.events.peek()
		if e == nil {
			break
		}
		if e.time > s.now {
			future = e.time
			break
		}
		if e.time < best {
			best = e.time
		}
		stale = append(stale, e)
		s.events.pop()
	}
	for _, e := range stale {
		s.events.push(e)
	}
	s.staleScratch = stale
	if future < best {
		best = future
	}
	return best, future
}

// scanEventTimes is the legacy event core: it rediscovers the next decision
// point each round with full scans over pending arrivals, failures, every
// active app's lease list and every active app's completion projection
// (recomputed from scratch via nextCompletion). Kept as the benchmark
// baseline and the equivalence oracle for the heap core.
func (s *Simulator) scanEventTimes() (best, future float64) {
	best, future = math.Inf(1), math.Inf(1)
	note := func(t float64) {
		best = math.Min(best, t)
		if t > s.now {
			future = math.Min(future, t)
		}
	}
	if len(s.pending) > 0 {
		note(s.pending[0].App.SubmitTime)
	}
	if t, ok := s.nextFailureEvent(); ok && t > s.now {
		note(t)
	}
	for _, st := range s.activeList {
		for _, l := range st.leases {
			if l.expiry > s.now {
				note(l.expiry)
			}
		}
		if t, ok := st.nextCompletion(s.now); ok {
			note(t)
		}
	}
	return best, future
}

// advanceTo integrates every running job's progress up to time t, re-aiming
// the completion events of apps that made progress.
func (s *Simulator) advanceTo(t float64) {
	if t <= s.now {
		return
	}
	for _, st := range s.runningList {
		if st.advance(s.now, t) {
			s.refreshCompletion(st)
		}
	}
	s.result.noteInterval(s.now, t, s.cs, s.holdingList)
	s.now = t
}

// view builds the policy-facing view of the current state.
func (s *Simulator) view() *View {
	// Held is maintained on every allocation change (grant, lease expiry,
	// kill re-split, failure revocation), so the view needs no per-app
	// refresh against the cluster state. Both the View struct and its Apps
	// backing array are reused across rounds: the view is only valid for the
	// duration of the policy's Allocate call, which is the contract
	// documented on View.
	v := &s.viewStruct
	v.Topo, v.Cluster, v.Now = s.cfg.Topology, s.cs, s.now
	v.Apps = append(s.viewBuf[:0], s.activeSorted...)
	s.viewBuf = v.Apps
	return v
}

// finalize closes out per-app records for apps still unfinished at the end
// of the run (horizon reached).
func (s *Simulator) finalize() {
	s.result.finalize(s.now, s.apps)
}

// timeEps is the tolerance used when comparing event times; minTimeStep is
// the smallest amount the clock moves between decision points.
const (
	timeEps     = 1e-9
	minTimeStep = 1e-6
)
