// Package sim is the event-driven cluster simulator used by the paper's
// evaluation (§8.1): it replays a trace of ML apps against a GPU cluster
// topology under a pluggable cross-app scheduling policy, modelling gang
// placement sensitivity, GPU leases, hyperparameter-tuner kill decisions and
// checkpoint/restart overheads, and records the fairness and efficiency
// metrics the paper's figures report.
//
// The simulator advances between decision points — app arrivals, lease
// expiries and job completions — integrating every running job's progress
// exactly between events (progress rate G·S is constant while allocations
// are unchanged).
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"

	"themis/internal/cluster"
	"themis/internal/hyperparam"
	"themis/internal/workload"
)

// Policy is a cross-app scheduling discipline: given the GPUs currently free
// it decides which apps receive them. Implementations include the Themis
// auction policy and the Gandiva/Tiresias/SLAQ baselines.
type Policy interface {
	// Name identifies the policy in results and logs.
	Name() string
	// Allocate returns the GPUs to grant to each app. Grants must be
	// disjoint, lie within free, and only name apps present in the view.
	// A non-nil error aborts the simulation run.
	Allocate(now float64, free cluster.Alloc, view *View) (map[workload.AppID]cluster.Alloc, error)
}

// Config describes one simulation run.
type Config struct {
	Topology *cluster.Topology
	Apps     []*workload.App
	Policy   Policy
	// TunerFor builds the app-level scheduler for an app; nil uses
	// hyperparam.ForApp.
	TunerFor func(*workload.App) hyperparam.Tuner
	// LeaseDuration is the GPU lease length in minutes (paper default 20).
	LeaseDuration float64
	// RestartOverhead is the wall-clock pause (minutes) an app's jobs suffer
	// whenever its allocation changes, modelling checkpoint + container
	// churn (§8.3.2 reports 35–50 s plus 5–10 s; 0.75 min by default).
	RestartOverhead float64
	// Horizon caps simulated time (minutes); 0 means no cap.
	Horizon float64
	// MaxIdleRounds aborts the run if this many consecutive scheduling
	// rounds make no progress (safety net against policy bugs); 0 uses a
	// generous default.
	MaxIdleRounds int
	// Failures optionally injects machine failures (§6 of the paper leaves
	// failure-aware scheduling to future work; the injector lets schedulers
	// be studied under failures anyway).
	Failures []Failure
}

// Defaults for Config fields.
const (
	DefaultLeaseDuration   = 20.0
	DefaultRestartOverhead = 0.75
	defaultMaxIdleRounds   = 10000
)

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Topology == nil {
		return fmt.Errorf("sim: nil topology")
	}
	if len(c.Apps) == 0 {
		return fmt.Errorf("sim: no apps")
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: nil policy")
	}
	if c.LeaseDuration < 0 || c.RestartOverhead < 0 || c.Horizon < 0 {
		return fmt.Errorf("sim: negative durations")
	}
	for _, a := range c.Apps {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// lease is one outstanding GPU lease inside the simulator.
type lease struct {
	app    workload.AppID
	alloc  cluster.Alloc
	expiry float64
}

// Simulator runs one configured simulation.
type Simulator struct {
	cfg        Config
	cs         *cluster.State
	apps       []*AppState // all apps in arrival order
	active     map[workload.AppID]*AppState
	pending    []*AppState // not yet arrived, in arrival order
	leases     []lease
	failures   []Failure
	recoveries []recovery
	now        float64
	result     *Result
}

// New constructs a Simulator. The apps in cfg are used directly (their
// runtime state is mutated); callers wanting to reuse a trace across runs
// should regenerate or deep-copy it.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LeaseDuration == 0 {
		cfg.LeaseDuration = DefaultLeaseDuration
	}
	if cfg.MaxIdleRounds == 0 {
		cfg.MaxIdleRounds = defaultMaxIdleRounds
	}
	tunerFor := cfg.TunerFor
	if tunerFor == nil {
		tunerFor = hyperparam.ForApp
	}
	s := &Simulator{
		cfg:    cfg,
		cs:     cluster.NewState(cfg.Topology),
		active: make(map[workload.AppID]*AppState),
		result: newResult(cfg),
	}
	apps := make([]*workload.App, len(cfg.Apps))
	copy(apps, cfg.Apps)
	sort.SliceStable(apps, func(i, j int) bool { return apps[i].SubmitTime < apps[j].SubmitTime })
	for _, a := range apps {
		st := newAppState(a, tunerFor(a), cfg.Topology)
		s.apps = append(s.apps, st)
		s.pending = append(s.pending, st)
	}
	s.initFailures()
	return s, nil
}

// Run executes the simulation to completion (all apps finished, the horizon
// reached, or no further events) and returns the collected results. The
// context is checked between decision points, so cancelling it aborts the
// run promptly with the context's error.
func (s *Simulator) Run(ctx context.Context) (*Result, error) {
	idleRounds := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.cfg.Horizon > 0 && s.now >= s.cfg.Horizon {
			break
		}
		s.processArrivals()
		s.processFailures()
		if err := s.expireLeases(); err != nil {
			return nil, err
		}
		s.runTuners()
		s.finishApps()
		changed, err := s.schedule()
		if err != nil {
			return nil, err
		}

		if s.done() {
			break
		}
		next, ok := s.nextEventTime()
		if !ok {
			// Nothing will ever happen again (no arrivals, no running jobs,
			// no leases): avoid spinning forever.
			break
		}
		if next <= s.now {
			idleRounds++
			if idleRounds > s.cfg.MaxIdleRounds {
				return nil, fmt.Errorf("sim: no progress after %d rounds at t=%.2f under policy %s", idleRounds, s.now, s.cfg.Policy.Name())
			}
			// Re-run the loop at the same instant (e.g. a kill freed GPUs
			// that can immediately be re-scheduled).
			if !changed {
				// Force time forward to the next real event to avoid a
				// zero-length busy loop.
				if t, ok := s.nextStrictEventTime(); ok {
					s.advanceTo(t)
				} else {
					break
				}
			}
			continue
		}
		idleRounds = 0
		s.advanceTo(next)
	}
	s.finalize()
	return s.result, nil
}

// done reports whether every app has finished.
func (s *Simulator) done() bool {
	if len(s.pending) > 0 {
		return false
	}
	return len(s.active) == 0
}

// processArrivals registers apps whose submit time has been reached.
func (s *Simulator) processArrivals() {
	for len(s.pending) > 0 && s.pending[0].App.SubmitTime <= s.now+timeEps {
		st := s.pending[0]
		s.pending = s.pending[1:]
		s.active[st.App.ID] = st
		s.result.noteArrival(s.now, st)
	}
}

// expireLeases returns GPUs whose leases have lapsed to the free pool.
func (s *Simulator) expireLeases() error {
	var live []lease
	for _, l := range s.leases {
		if l.expiry <= s.now+timeEps {
			st, ok := s.active[l.app]
			if !ok {
				// The app already finished; its GPUs were released then.
				continue
			}
			if err := s.cs.Release(string(l.app), l.alloc); err != nil {
				return fmt.Errorf("sim: lease release inconsistency: %w", err)
			}
			st.onAllocationChange(s.now, s.cs.Held(string(l.app)), s.cfg.RestartOverhead)
			s.result.noteAllocation(s.now, st, s.cs.Held(string(l.app)))
		} else {
			live = append(live, l)
		}
	}
	s.leases = live
	return nil
}

// runTuners lets every active app's tuner observe progress and kill trials.
func (s *Simulator) runTuners() {
	for _, st := range s.active {
		before := len(st.App.ActiveJobs())
		st.Tuner.Update(s.now, st.App)
		if len(st.App.ActiveJobs()) != before {
			// Killed trials vacate their share; re-split the app's GPUs.
			st.onAllocationChange(s.now, s.cs.Held(string(st.App.ID)), 0)
		}
	}
}

// finishApps completes apps whose tuner declares them done, releasing GPUs.
func (s *Simulator) finishApps() {
	for id, st := range s.active {
		if !st.Tuner.Done(st.App) {
			continue
		}
		st.App.FinishedAt = s.now
		released := s.cs.ReleaseAll(string(id))
		if released.Total() > 0 {
			s.dropLeasesFor(id)
		}
		s.result.noteFinish(s.now, st)
		delete(s.active, id)
	}
}

func (s *Simulator) dropLeasesFor(id workload.AppID) {
	var live []lease
	for _, l := range s.leases {
		if l.app != id {
			live = append(live, l)
		}
	}
	s.leases = live
}

// schedule invokes the policy over the free pool and applies its decisions.
// It reports whether any allocation changed.
func (s *Simulator) schedule() (bool, error) {
	free := s.cs.FreeVector()
	if free.Total() == 0 || len(s.active) == 0 {
		return false, nil
	}
	view := s.view()
	if !view.anyDemand() {
		return false, nil
	}
	grants, err := s.cfg.Policy.Allocate(s.now, free, view)
	if err != nil {
		return false, fmt.Errorf("sim: policy %s at t=%.2f: %w", s.cfg.Policy.Name(), s.now, err)
	}
	changed := false
	ids := make([]workload.AppID, 0, len(grants))
	for id := range grants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		alloc := grants[id]
		if alloc.Total() == 0 {
			continue
		}
		st, ok := s.active[id]
		if !ok {
			return changed, fmt.Errorf("sim: policy %s allocated to unknown app %s", s.cfg.Policy.Name(), id)
		}
		if err := s.cs.Grant(string(id), alloc); err != nil {
			return changed, fmt.Errorf("sim: policy %s produced an infeasible allocation for %s: %w", s.cfg.Policy.Name(), id, err)
		}
		s.leases = append(s.leases, lease{app: id, alloc: alloc.Clone(), expiry: s.now + s.cfg.LeaseDuration})
		st.onAllocationChange(s.now, s.cs.Held(string(id)), s.cfg.RestartOverhead)
		s.result.noteAllocation(s.now, st, s.cs.Held(string(id)))
		changed = true
	}
	return changed, nil
}

// nextEventTime returns the earliest upcoming event: arrival, lease expiry
// or projected job completion.
func (s *Simulator) nextEventTime() (float64, bool) {
	t, ok := s.nextStrictEventTime()
	return t, ok
}

func (s *Simulator) nextStrictEventTime() (float64, bool) {
	best := math.Inf(1)
	if len(s.pending) > 0 {
		best = math.Min(best, s.pending[0].App.SubmitTime)
	}
	if t, ok := s.nextFailureEvent(); ok && t > s.now {
		best = math.Min(best, t)
	}
	for _, l := range s.leases {
		if l.expiry > s.now {
			best = math.Min(best, l.expiry)
		}
	}
	for _, st := range s.active {
		if t, ok := st.nextCompletion(s.now); ok {
			best = math.Min(best, t)
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	// Events that project to "now" (e.g. a completion whose remaining work
	// has rounded to zero) must still move time forward, or the run would
	// spin without ever re-integrating job progress.
	if best < s.now+minTimeStep {
		best = s.now + minTimeStep
	}
	if s.cfg.Horizon > 0 && best > s.cfg.Horizon {
		best = s.cfg.Horizon
	}
	return best, true
}

// advanceTo integrates every running job's progress up to time t.
func (s *Simulator) advanceTo(t float64) {
	if t <= s.now {
		return
	}
	for _, st := range s.active {
		st.advance(s.now, t)
	}
	s.result.noteInterval(s.now, t, s.cs, s.active)
	s.now = t
}

// view builds the policy-facing view of the current state.
func (s *Simulator) view() *View {
	v := &View{Topo: s.cfg.Topology, Cluster: s.cs, Now: s.now}
	ids := make([]workload.AppID, 0, len(s.active))
	for id := range s.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := s.active[id]
		st.Held = s.cs.Held(string(id))
		v.Apps = append(v.Apps, st)
	}
	return v
}

// finalize closes out per-app records for apps still unfinished at the end
// of the run (horizon reached).
func (s *Simulator) finalize() {
	s.result.finalize(s.now, s.apps)
}

// timeEps is the tolerance used when comparing event times; minTimeStep is
// the smallest amount the clock moves between decision points.
const (
	timeEps     = 1e-9
	minTimeStep = 1e-6
)
