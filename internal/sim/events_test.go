package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	times := []float64{5, 1, 3, 2, 8, 0.5, 3, 1}
	events := make([]*event, len(times))
	for i, tm := range times {
		events[i] = &event{kind: evCompletion, time: tm, index: -1}
		h.push(events[i])
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	for i, want := range sorted {
		e := h.pop()
		if e == nil || e.time != want {
			t.Fatalf("pop %d: got %v, want %v", i, e, want)
		}
		if e.index != -1 {
			t.Fatalf("popped event retains heap index %d", e.index)
		}
	}
	if h.pop() != nil {
		t.Fatal("pop on empty heap should return nil")
	}
}

func TestEventHeapEqualTimesPopInInsertionOrder(t *testing.T) {
	var h eventHeap
	var events []*event
	for i := 0; i < 10; i++ {
		e := &event{kind: evLeaseExpiry, time: 7, index: -1}
		events = append(events, e)
		h.push(e)
	}
	for i, want := range events {
		if got := h.pop(); got != want {
			t.Fatalf("pop %d: equal-time events must pop in insertion order", i)
		}
	}
}

func TestEventHeapRemoveAndUpdate(t *testing.T) {
	var h eventHeap
	a := &event{time: 1, index: -1}
	b := &event{time: 2, index: -1}
	c := &event{time: 3, index: -1}
	h.push(a)
	h.push(b)
	h.push(c)

	h.remove(b)
	if b.index != -1 {
		t.Fatal("removed event retains heap index")
	}
	h.remove(b) // removing twice is a no-op
	if h.len() != 2 {
		t.Fatalf("len = %d after remove, want 2", h.len())
	}

	h.update(c, 0.5) // re-key to the front
	if e := h.peek(); e != c {
		t.Fatalf("peek = %v, want re-keyed event", e)
	}
	h.update(b, 0.25) // updating a detached event re-inserts it
	if e := h.pop(); e != b {
		t.Fatal("update should re-insert a detached event")
	}
	if e := h.pop(); e != c || h.pop() != a || h.len() != 0 {
		t.Fatalf("remaining pop order wrong (got %v)", e)
	}
}

func TestEventHeapRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h eventHeap
	live := map[*event]bool{}
	for op := 0; op < 5000; op++ {
		switch {
		case h.len() == 0 || rng.Float64() < 0.5:
			e := &event{time: rng.Float64() * 100, index: -1}
			h.push(e)
			live[e] = true
		case rng.Float64() < 0.5:
			e := h.pop()
			delete(live, e)
		default:
			// Remove or re-key an arbitrary live event.
			for e := range live {
				if rng.Float64() < 0.5 {
					h.remove(e)
					delete(live, e)
				} else {
					h.update(e, rng.Float64()*100)
				}
				break
			}
		}
		if h.len() != len(live) {
			t.Fatalf("op %d: heap len %d != live %d", op, h.len(), len(live))
		}
		for i := range h.items {
			if h.items[i].index != i {
				t.Fatalf("op %d: entry at %d has index %d", op, i, h.items[i].index)
			}
			if i > 0 && h.less(i, (i-1)/2) {
				t.Fatalf("op %d: heap invariant violated at %d", op, i)
			}
		}
	}
	// Drain: must come out time-ordered.
	prev := -1.0
	for h.len() > 0 {
		e := h.pop()
		if e.time < prev {
			t.Fatalf("drain out of order: %v after %v", e.time, prev)
		}
		prev = e.time
	}
}
