package sim

import (
	"context"
	"math"
	"sort"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/workload"
)

// fifoPolicy is a minimal test policy: it grants each app (in arrival order)
// as many GPUs as it can use, packed placement-sensitively.
type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo-test" }

func (fifoPolicy) Allocate(now float64, free cluster.Alloc, view *View) (map[workload.AppID]cluster.Alloc, error) {
	out := make(map[workload.AppID]cluster.Alloc)
	remaining := free.Clone()
	apps := make([]*AppState, len(view.Apps))
	copy(apps, view.Apps)
	sort.Slice(apps, func(i, j int) bool { return apps[i].App.SubmitTime < apps[j].App.SubmitTime })
	for _, st := range apps {
		want := st.UnmetDemand()
		if want <= 0 || remaining.Total() == 0 {
			continue
		}
		alloc := placement.Pick(view.Topo, remaining, st.Held, want)
		if alloc.Total() == 0 {
			continue
		}
		out[st.App.ID] = alloc
		var err error
		remaining, err = remaining.Sub(alloc)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// starvePolicy never allocates anything; used to exercise the no-progress path.
type starvePolicy struct{}

func (starvePolicy) Name() string { return "starve-test" }
func (starvePolicy) Allocate(float64, cluster.Alloc, *View) (map[workload.AppID]cluster.Alloc, error) {
	return nil, nil
}

func simTopo(t *testing.T, machines, gpus, perRack int) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: machines, GPUs: gpus, SlotSize: 2}},
		MachinesPerRack: perRack,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func simApp(id string, submit float64, profile placement.Profile, nJobs int, work float64) *workload.App {
	jobs := make([]*workload.Job, nJobs)
	for i := 0; i < nJobs; i++ {
		j := workload.NewJob(workload.AppID(id), i, work, 4)
		j.Quality = float64(i) / float64(nJobs+1)
		j.Seed = int64(i*37 + 11)
		jobs[i] = j
	}
	return workload.NewApp(workload.AppID(id), submit, profile, jobs)
}

func TestConfigValidation(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	good := Config{Topology: topo, Apps: []*workload.App{simApp("a", 0, placement.ResNet50, 1, 10)}, Policy: fifoPolicy{}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Apps: good.Apps, Policy: good.Policy},
		{Topology: topo, Policy: good.Policy},
		{Topology: topo, Apps: good.Apps},
		{Topology: topo, Apps: good.Apps, Policy: good.Policy, LeaseDuration: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New should reject invalid config")
	}
}

func TestSingleAppRunsToCompletion(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	app := simApp("a", 0, placement.ResNet50, 1, 120) // 120 serial min, gang 4 → 30 min ideal
	s, err := New(Config{
		Topology:      topo,
		Apps:          []*workload.App{app},
		Policy:        fifoPolicy{},
		LeaseDuration: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 1 {
		t.Fatalf("got %d app records", len(res.Apps))
	}
	rec := res.Apps[0]
	if rec.FinishTime == workload.NotFinished {
		t.Fatal("app did not finish")
	}
	// Alone on the cluster with enough GPUs, completion ≈ ideal time (30 min).
	if rec.CompletionTime < 29 || rec.CompletionTime > 40 {
		t.Errorf("completion time = %v, want ≈30", rec.CompletionTime)
	}
	if rec.FinishTimeFairness < 0.95 || rec.FinishTimeFairness > 1.4 {
		t.Errorf("rho = %v, want ≈1 for a dedicated cluster", rec.FinishTimeFairness)
	}
	if rec.PlacementScore < 0.9 {
		t.Errorf("placement score = %v, want ≥0.9 (packed)", rec.PlacementScore)
	}
	if rec.BusyGPUTime < 119 || rec.BusyGPUTime > 125 {
		t.Errorf("busy GPU time = %v, want ≈120", rec.BusyGPUTime)
	}
	if res.ClusterGPUTime < rec.BusyGPUTime-1e-6 {
		t.Errorf("cluster GPU time %v below app busy time %v", res.ClusterGPUTime, rec.BusyGPUTime)
	}
	if res.Makespan < 29 {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestRestartOverheadDelaysCompletion(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	mk := func() []*workload.App { return []*workload.App{simApp("a", 0, placement.ResNet50, 1, 120)} }
	run := func(overhead float64) float64 {
		s, err := New(Config{Topology: topo, Apps: mk(), Policy: fifoPolicy{}, LeaseDuration: 20, RestartOverhead: overhead})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Apps[0].CompletionTime
	}
	fast := run(0)
	slow := run(2.0)
	if slow <= fast {
		t.Errorf("restart overhead should delay completion: %v vs %v", slow, fast)
	}
}

func TestMultipleAppsShareCluster(t *testing.T) {
	topo := simTopo(t, 4, 4, 2)
	apps := []*workload.App{
		simApp("a", 0, placement.VGG16, 2, 200),
		simApp("b", 5, placement.ResNet50, 2, 200),
		simApp("c", 10, placement.ResNet50, 1, 100),
	}
	s, err := New(Config{Topology: topo, Apps: apps, Policy: fifoPolicy{}, LeaseDuration: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished()) != 3 {
		t.Fatalf("only %d of 3 apps finished", len(res.Finished()))
	}
	for _, rec := range res.Apps {
		if rec.FinishTimeFairness <= 0 {
			t.Errorf("app %s has non-positive rho %v", rec.App, rec.FinishTimeFairness)
		}
		if rec.CompletionTime < rec.TIdeal-1e-6 {
			t.Errorf("app %s finished faster (%v) than its ideal time (%v)", rec.App, rec.CompletionTime, rec.TIdeal)
		}
		if rec.JobsTotal != len(appByID(apps, rec.App).Jobs) {
			t.Errorf("app %s job count mismatch", rec.App)
		}
	}
	// Timeline events exist for every app and are time-ordered.
	for _, a := range apps {
		tl := res.TimelineFor(a.ID)
		if len(tl) < 2 {
			t.Errorf("timeline for %s too short: %v", a.ID, tl)
		}
		for i := 1; i < len(tl); i++ {
			if tl[i].Time < tl[i-1].Time {
				t.Errorf("timeline for %s not ordered", a.ID)
			}
		}
	}
	if res.PeakContention <= 0 || res.PeakContention > 1 {
		t.Errorf("peak contention = %v, want in (0,1]", res.PeakContention)
	}
}

func appByID(apps []*workload.App, id workload.AppID) *workload.App {
	for _, a := range apps {
		if a.ID == id {
			return a
		}
	}
	return nil
}

func TestHorizonCapsSimulation(t *testing.T) {
	topo := simTopo(t, 1, 4, 1)
	app := simApp("a", 0, placement.ResNet50, 1, 1e6) // effectively endless
	s, err := New(Config{Topology: topo, Apps: []*workload.App{app}, Policy: fifoPolicy{}, LeaseDuration: 20, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > 100+1e-6 {
		t.Errorf("makespan %v exceeds horizon", res.Makespan)
	}
	if len(res.Finished()) != 0 {
		t.Error("endless app should not finish within the horizon")
	}
	if res.Apps[0].CompletionTime != workload.NotFinished {
		t.Errorf("unfinished app should have CompletionTime = NotFinished")
	}
}

func TestStarvationPolicyDoesNotHang(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	app := simApp("a", 0, placement.ResNet50, 1, 100)
	s, err := New(Config{Topology: topo, Apps: []*workload.App{app}, Policy: starvePolicy{}, LeaseDuration: 20, Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished()) != 0 {
		t.Error("app finished despite never receiving GPUs")
	}
}

func TestLeaseExpiryReassignsGPUs(t *testing.T) {
	// One 4-GPU machine, two single-job apps arriving together: under FIFO
	// with finite leases both must eventually run and finish.
	topo := simTopo(t, 1, 4, 1)
	apps := []*workload.App{
		simApp("a", 0, placement.ResNet50, 1, 80),
		simApp("b", 0, placement.ResNet50, 1, 80),
	}
	s, err := New(Config{Topology: topo, Apps: apps, Policy: fifoPolicy{}, LeaseDuration: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished()) != 2 {
		t.Fatalf("both apps should finish, got %d", len(res.Finished()))
	}
	// Total busy GPU time is the serial work (placement is perfect here).
	var busy float64
	for _, rec := range res.Apps {
		busy += rec.BusyGPUTime
	}
	if math.Abs(busy-160) > 2 {
		t.Errorf("total busy GPU time = %v, want ≈160", busy)
	}
}

func TestTunerKillsReduceWork(t *testing.T) {
	// Enough GPUs for all trials to run in parallel, so HyperBand's rungs
	// (at 10% of the iteration budget) fire well before any trial finishes.
	topo := simTopo(t, 8, 4, 4)
	app := simApp("a", 0, placement.ResNet50, 8, 400)
	s, err := New(Config{Topology: topo, Apps: []*workload.App{app}, Policy: fifoPolicy{}, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Apps[0]
	if rec.FinishTime == workload.NotFinished {
		t.Fatal("app did not finish")
	}
	if rec.JobsKilled == 0 {
		t.Error("HyperBand should have killed some trials")
	}
	if rec.JobsKilled >= rec.JobsTotal {
		t.Error("at least one trial must run to completion")
	}
}

func TestAppStateAccounting(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	app := simApp("a", 0, placement.VGG16, 2, 100)
	st := newAppState(app, fifoTuner{}, topo)
	if st.TIdealAtArrival != 25 {
		t.Errorf("TIdeal = %v, want 25", st.TIdealAtArrival)
	}
	if st.UnmetDemand() != 8 {
		t.Errorf("UnmetDemand = %d, want 8", st.UnmetDemand())
	}
	st.onAllocationChange(0, cluster.Alloc{0: 4, 1: 4}, 0.5)
	if st.UnmetDemand() != 0 {
		t.Errorf("UnmetDemand after full grant = %d, want 0", st.UnmetDemand())
	}
	if st.PausedUntil() != 0.5 {
		t.Errorf("PausedUntil = %v, want 0.5", st.PausedUntil())
	}
	// Each job gets one packed machine.
	for _, j := range app.Jobs {
		a := st.JobAlloc(j.ID)
		if a.Total() != 4 || len(a.Machines()) != 1 {
			t.Errorf("job %s alloc %v, want one full machine", j.ID, a)
		}
	}
	// During the pause no progress accrues.
	st.advance(0, 0.5)
	if app.Jobs[0].DoneWork != 0 {
		t.Error("work accrued during restart pause")
	}
	st.advance(0.5, 10.5)
	if app.Jobs[0].DoneWork <= 0 {
		t.Error("no work accrued after pause")
	}
	if _, ok := st.nextCompletion(10.5); !ok {
		t.Error("nextCompletion should be defined while jobs run")
	}
}

// fifoTuner is a minimal tuner for AppState unit tests.
type fifoTuner struct{}

func (fifoTuner) Name() string                     { return "test" }
func (fifoTuner) Update(float64, *workload.App)    {}
func (fifoTuner) WorkLeft(j *workload.Job) float64 { return j.RemainingWork() }
func (fifoTuner) Done(a *workload.App) bool        { return len(a.ActiveJobs()) == 0 }
