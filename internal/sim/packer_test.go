package sim

import (
	"context"
	"testing"

	"themis/internal/cluster"
	"themis/internal/pack"
	"themis/internal/placement"
	"themis/internal/topology"
	"themis/internal/workload"
)

// spreadPolicy grants the first app with demand one GPU per machine,
// round-robin — the tiresias-style shape that strands min-per-machine jobs.
type spreadPolicy struct{}

func (spreadPolicy) Name() string { return "spread-test" }

func (spreadPolicy) Allocate(now float64, free cluster.Alloc, view *View) (map[workload.AppID]cluster.Alloc, error) {
	for _, st := range view.Apps {
		want := st.UnmetDemand()
		if want <= 0 {
			continue
		}
		alloc := cluster.NewAlloc()
		for _, m := range free.Machines() {
			if want == 0 {
				break
			}
			if free[m] > 0 {
				alloc[m]++
				want--
			}
		}
		if alloc.Total() == 0 {
			continue
		}
		return map[workload.AppID]cluster.Alloc{st.App.ID: alloc}, nil
	}
	return nil, nil
}

// twoDomainSimTopo builds 2 fabric domains × 2 machines × 4 GPUs.
func twoDomainSimTopo(t *testing.T) *cluster.Topology {
	t.Helper()
	var machines []cluster.Machine
	for i := 0; i < 4; i++ {
		machines = append(machines, cluster.Machine{
			ID:       cluster.MachineID(i),
			Rack:     cluster.RackID(i / 2),
			Domain:   cluster.DomainID(i / 2),
			NumGPUs:  4,
			SlotSize: 2,
			GPU:      cluster.GPUTypeP100,
		})
	}
	topo, err := cluster.NewTopology(machines)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestConstrainedGrantRepaired: a policy that offers a min-2-per-machine job
// one GPU per machine would, before the grant repair, strand the app forever
// (the tiresias loop). The repair must re-pick a usable shape so the
// horizonless run terminates with the app finished.
func TestConstrainedGrantRepaired(t *testing.T) {
	topo := simTopo(t, 4, 4, 2)
	job := workload.NewJob("a", 0, 40, 2)
	job.MinGPUsPerMachine = 2
	app := workload.NewApp("a", 0, placement.ResNet50, []*workload.Job{job})
	s, err := New(Config{Topology: topo, Apps: []*workload.App{app}, Policy: spreadPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Apps[0].FinishTime == workload.NotFinished {
		t.Error("constrained app never finished; grant repair did not produce a usable shape")
	}
}

// TestInfeasibleJobsRejectedAtArrival: constraints no allocation on the
// topology can satisfy (floor above machine capacity, unknown domain name)
// must kill the job at arrival instead of scheduling it forever.
func TestInfeasibleJobsRejectedAtArrival(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	tooBig := workload.NewJob("a", 0, 40, 2)
	tooBig.MinGPUsPerMachine = 8 // machines have 4 GPUs
	noDomain := workload.NewJob("b", 0, 40, 2)
	noDomain.DomainAffinity = "nonexistent-pod"
	apps := []*workload.App{
		workload.NewApp("a", 0, placement.ResNet50, []*workload.Job{tooBig}),
		workload.NewApp("b", 0, placement.ResNet50, []*workload.Job{noDomain}),
	}
	s, err := New(Config{Topology: topo, Apps: apps, Policy: fifoPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Apps {
		if rec.JobsKilled != 1 {
			t.Errorf("app %s: %d jobs killed, want 1 (infeasible constraint rejected at arrival)", rec.App, rec.JobsKilled)
		}
	}
}

// TestPackerRematerialisesGrants: with the pack engine configured, a policy
// that scatters an app's GPUs across domains is re-materialised onto a packed
// shape, which shows up as a much better placement score.
func TestPackerRematerialisesGrants(t *testing.T) {
	run := func(packer Packer) AppRecord {
		topo := twoDomainSimTopo(t)
		app := simApp("a", 0, placement.VGG16, 1, 60)
		s, err := New(Config{Topology: topo, Apps: []*workload.App{app}, Policy: spreadPolicy{}, Packer: packer})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Apps[0]
	}
	spread := run(nil)
	packed := run(pack.New(topology.Lift(twoDomainSimTopo(t))))
	if packed.FinishTime == workload.NotFinished {
		t.Fatal("packed run did not finish")
	}
	if packed.PlacementScore <= spread.PlacementScore {
		t.Errorf("packer placement score %v not better than policy's own spread %v",
			packed.PlacementScore, spread.PlacementScore)
	}
	if packed.PlacementScore < 0.9 {
		t.Errorf("packer placement score = %v, want ≥0.9 (gang packed onto one machine)", packed.PlacementScore)
	}
}

// TestFragmentationStatsPopulated: every run must surface the time-weighted
// free-pool fragmentation summary, with the per-level largest blocks ordered
// machine ≤ rack ≤ domain.
func TestFragmentationStatsPopulated(t *testing.T) {
	topo := twoDomainSimTopo(t)
	apps := []*workload.App{
		simApp("a", 0, placement.ResNet50, 2, 60),
		simApp("b", 5, placement.VGG16, 1, 40),
	}
	s, err := New(Config{Topology: topo, Apps: apps, Policy: fifoPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Fragmentation
	if fr.MeanFreeGPUs <= 0 {
		t.Errorf("mean free GPUs = %v, want > 0 (16-GPU cluster is never fully busy here)", fr.MeanFreeGPUs)
	}
	if fr.MeanLargestMachineBlock <= 0 || fr.MeanLargestRackBlock < fr.MeanLargestMachineBlock ||
		fr.MeanLargestDomainBlock < fr.MeanLargestRackBlock {
		t.Errorf("per-level largest blocks not ordered: machine=%v rack=%v domain=%v",
			fr.MeanLargestMachineBlock, fr.MeanLargestRackBlock, fr.MeanLargestDomainBlock)
	}
	if fr.MeanScore < 0 || fr.MeanScore > 1 || fr.PeakScore < fr.MeanScore {
		t.Errorf("fragmentation score out of range: mean=%v peak=%v", fr.MeanScore, fr.PeakScore)
	}
}
