package sim

// The simulator's event core: every future decision point — an app arrival,
// a lease expiry, a projected job completion, a machine failure or recovery —
// is one typed entry in an indexed binary min-heap keyed by simulated time.
// The heap replaces the per-round linear rescans of apps and leases the
// original event loop performed: finding the next event is a peek, and each
// state mutation updates only the entries it invalidates.
//
// Entries are owned by the objects they describe (an AppState owns its
// arrival and completion entries, a lease owns its expiry entry, …) and are
// inserted by pointer, so updating or removing an event is O(log n) via the
// entry's tracked heap index — no lazy-deletion tombstones, no allocation
// per scheduling round.

// eventKind labels the typed events the simulator schedules.
type eventKind uint8

const (
	// evArrival fires when a pending app's submit time is reached.
	evArrival eventKind = iota
	// evLeaseExpiry fires when a GPU lease lapses back to the free pool.
	evLeaseExpiry
	// evCompletion is an app's projected next job completion. Unlike the
	// other kinds it is a projection: it is re-aimed whenever the app's
	// allocation changes or its jobs integrate progress.
	evCompletion
	// evFailure fires when an injected machine failure begins.
	evFailure
	// evRecovery fires when a failed machine comes back online.
	evRecovery
)

// event is one entry in the simulator's event heap.
type event struct {
	time float64
	kind eventKind
	// seq is the entry's insertion order, used as a deterministic tie-break
	// between entries with equal times so heap layout (and therefore pop
	// order) never depends on map iteration order.
	seq uint64
	// index is the entry's current position in the heap, or -1 while the
	// entry is not enqueued.
	index int

	// Owner back-references, set per kind at construction.
	app   *AppState // evArrival, evCompletion
	lease *lease    // evLeaseExpiry
}

// eventHeap is an indexed binary min-heap of events ordered by (time, seq).
type eventHeap struct {
	items []*event
	seq   uint64
}

func (h *eventHeap) len() int { return len(h.items) }

// peek returns the earliest event without removing it, or nil when empty.
func (h *eventHeap) peek() *event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

// push enqueues e at e.time, assigning a fresh tie-break sequence number.
// e must not already be enqueued.
func (h *eventHeap) push(e *event) {
	h.seq++
	e.seq = h.seq
	e.index = len(h.items)
	h.items = append(h.items, e)
	h.up(e.index)
}

// pop removes and returns the earliest event, or nil when empty.
func (h *eventHeap) pop() *event {
	if len(h.items) == 0 {
		return nil
	}
	e := h.items[0]
	h.removeAt(0)
	return e
}

// remove detaches e from the heap if it is enqueued; it is a no-op otherwise.
func (h *eventHeap) remove(e *event) {
	if e.index >= 0 {
		h.removeAt(e.index)
	}
}

// update re-keys an enqueued e to time t; if e is not enqueued it is pushed.
func (h *eventHeap) update(e *event, t float64) {
	if e.index < 0 {
		e.time = t
		h.push(e)
		return
	}
	e.time = t
	if !h.down(e.index) {
		h.up(e.index)
	}
}

func (h *eventHeap) removeAt(i int) {
	last := len(h.items) - 1
	e := h.items[i]
	if i != last {
		h.swap(i, last)
	}
	h.items[last] = nil
	h.items = h.items[:last]
	e.index = -1
	if i != last && i < len(h.items) {
		if !h.down(i) {
			h.up(i)
		}
	}
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts the entry at i toward the leaves; it reports whether it moved.
func (h *eventHeap) down(i int) bool {
	start := i
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return i != start
}
