package sim

// Tests pinning the heap event core to the legacy scan core: both must
// produce bit-identical results, and the forced-step (spin-guard) clamp must
// never jump over a real event.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"themis/internal/cluster"
	"themis/internal/placement"
	"themis/internal/workload"
)

// equivalenceWorkload builds a moderately contended randomized trace.
func equivalenceWorkload(t *testing.T, seed int64, apps int) []*workload.App {
	t.Helper()
	cfg := workload.DefaultGeneratorConfig()
	cfg.Seed = seed
	cfg.NumApps = apps
	cfg.MeanInterArrival = 4
	cfg.JobsPerAppMedian = 4
	cfg.MaxJobsPerApp = 10
	cfg.DurationScale = 0.2
	out, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestHeapCoreMatchesScanCoreExactly replays identical seeded traces under
// both event cores and requires the full Results — per-app records, the
// complete allocation timeline and the aggregate metrics — to be equal to
// the last bit. The completion projections the heap caches are recomputed
// with the same floating-point expressions the scan evaluates, so any
// divergence, even one ulp, is a bookkeeping bug in the heap core.
func TestHeapCoreMatchesScanCoreExactly(t *testing.T) {
	topo := simTopo(t, 6, 4, 3)
	for _, seed := range []int64{1, 7, 23, 99} {
		run := func(legacy bool) *Result {
			s, err := New(Config{
				Topology:        topo,
				Apps:            equivalenceWorkload(t, seed, 10),
				Policy:          fifoPolicy{},
				LeaseDuration:   10,
				RestartOverhead: 0.5,
				Horizon:         5000,
				legacyScan:      legacy,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		heap, scan := run(false), run(true)
		if !reflect.DeepEqual(heap.Apps, scan.Apps) {
			t.Errorf("seed %d: per-app records differ between heap and scan cores", seed)
		}
		if !reflect.DeepEqual(heap.Timeline, scan.Timeline) {
			t.Errorf("seed %d: allocation timelines differ between heap and scan cores", seed)
		}
		if heap.Makespan != scan.Makespan || heap.ClusterGPUTime != scan.ClusterGPUTime || heap.PeakContention != scan.PeakContention {
			t.Errorf("seed %d: aggregates differ: heap (%v,%v,%v) vs scan (%v,%v,%v)", seed,
				heap.Makespan, heap.ClusterGPUTime, heap.PeakContention,
				scan.Makespan, scan.ClusterGPUTime, scan.PeakContention)
		}
	}
}

// TestHeapCoreMatchesScanCoreUnderFailures exercises the revocation path —
// lease trimming, machine offlining and recovery — under both cores.
func TestHeapCoreMatchesScanCoreUnderFailures(t *testing.T) {
	topo := simTopo(t, 4, 4, 2)
	failures := []Failure{
		{Time: 8, Machine: 1, Duration: 15},
		{Time: 20, Machine: 2, Duration: 0}, // permanent
	}
	run := func(legacy bool) *Result {
		s, err := New(Config{
			Topology:        topo,
			Apps:            equivalenceWorkload(t, 5, 6),
			Policy:          fifoPolicy{},
			LeaseDuration:   10,
			RestartOverhead: 0.5,
			Horizon:         5000,
			Failures:        failures,
			legacyScan:      legacy,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	heap, scan := run(false), run(true)
	if !reflect.DeepEqual(heap.Apps, scan.Apps) {
		t.Error("per-app records differ between heap and scan cores under failures")
	}
	if !reflect.DeepEqual(heap.Timeline, scan.Timeline) {
		t.Error("allocation timelines differ between heap and scan cores under failures")
	}
}

// TestCachedProjectionMatchesScanOracle runs the heap core and, at every
// policy invocation, recomputes each app's completion projection from
// scratch (the legacy scan's oracle) and compares it with the cached value.
func TestCachedProjectionMatchesScanOracle(t *testing.T) {
	topo := simTopo(t, 4, 4, 2)
	check := projectionCheckPolicy{t: t}
	s, err := New(Config{
		Topology:        topo,
		Apps:            equivalenceWorkload(t, 11, 8),
		Policy:          check,
		LeaseDuration:   10,
		RestartOverhead: 0.5,
		Horizon:         5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// projectionCheckPolicy delegates to fifoPolicy and asserts, for every app
// in every view, that the cached completion projection equals a fresh
// full-rescan recomputation bit-for-bit.
type projectionCheckPolicy struct{ t *testing.T }

func (projectionCheckPolicy) Name() string { return "projection-check" }

func (p projectionCheckPolicy) Allocate(now float64, free cluster.Alloc, view *View) (map[workload.AppID]cluster.Alloc, error) {
	for _, st := range view.Apps {
		scan, ok := st.nextCompletion(now)
		switch {
		case !ok && !math.IsInf(st.proj, 1):
			p.t.Errorf("t=%v app %s: cached projection %v but scan sees no completion", now, st.App.ID, st.proj)
		case ok && scan != st.proj:
			p.t.Errorf("t=%v app %s: cached projection %v != scanned %v", now, st.App.ID, st.proj, scan)
		}
	}
	return fifoPolicy{}.Allocate(now, free, view)
}

// TestForcedStepClampsToNextEvent is the regression test for the spin-guard
// edge case: when a completion projection has collapsed onto "now" the clock
// must still move, but the forced step may not jump over a real event (here
// a lease expiry) that lands inside the minimum step.
func TestForcedStepClampsToNextEvent(t *testing.T) {
	topo := simTopo(t, 2, 4, 2)
	app := simApp("a", 0, placement.ResNet50, 1, 100)
	s, err := New(Config{Topology: topo, Apps: []*workload.App{app}, Policy: fifoPolicy{}, LeaseDuration: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Arrange the edge case by hand: the app is active with a stale
	// completion projection at exactly now, and a lease expires within the
	// minimum time step.
	s.now = 100
	s.processArrivals()
	st := s.apps[0]
	st.proj = s.now
	s.refreshCompletion(st)
	expiry := s.now + minTimeStep/2
	s.leaseSeq++
	l := &lease{app: st, alloc: cluster.Alloc{0: 1}, expiry: expiry, seq: s.leaseSeq}
	l.ev = event{kind: evLeaseExpiry, time: expiry, lease: l, index: -1}
	st.leases = append(st.leases, l)
	s.events.push(&l.ev)

	next, forced, ok := s.nextEventTime()
	if !ok || !forced {
		t.Fatalf("nextEventTime = (%v, forced=%v, ok=%v), want a forced step", next, forced, ok)
	}
	if next != expiry {
		t.Errorf("forced step = %v, want clamped to the lease expiry %v (minTimeStep step would skip it)", next, expiry)
	}

	// Without the nearby expiry the forced step falls back to minTimeStep.
	s.detachLease(l)
	next, forced, ok = s.nextEventTime()
	if !ok || !forced {
		t.Fatalf("nextEventTime = (%v, forced=%v, ok=%v), want a forced step", next, forced, ok)
	}
	if next != s.now+minTimeStep {
		t.Errorf("forced step = %v, want now+minTimeStep = %v", next, s.now+minTimeStep)
	}

	// A projection strictly inside (now, now+minTimeStep) is a real event:
	// it must be advanced to exactly, not rounded up to the minimum step.
	st.proj = s.now + minTimeStep/4
	s.refreshCompletion(st)
	next, forced, ok = s.nextEventTime()
	if !ok || forced {
		t.Fatalf("nextEventTime = (%v, forced=%v, ok=%v), want an unforced step", next, forced, ok)
	}
	if next != st.proj {
		t.Errorf("next = %v, want the sub-step projection %v", next, st.proj)
	}
}
