package sim

import (
	"math"
	"sort"

	"themis/internal/cluster"
	"themis/internal/workload"
)

// Failure injects a machine failure: at Time the machine goes offline for
// Duration minutes, every allocation on it is revoked (the affected apps
// lose those GPUs immediately and pay the restart overhead), and the machine
// rejoins the free pool when it recovers. The paper leaves failure-aware
// scheduling to future work (§6); the injector exists so schedulers can be
// studied under failures and so tests can exercise the revocation path.
type Failure struct {
	Time     float64
	Machine  cluster.MachineID
	Duration float64
}

// failureRec is a pending failure together with its heap entry.
type failureRec struct {
	f  Failure
	ev event
}

// recoveryRec is a scheduled end of a failure together with its heap entry.
type recoveryRec struct {
	time    float64
	machine cluster.MachineID
	ev      event
}

// initFailures validates and orders the configured failures and enqueues
// their events.
func (s *Simulator) initFailures() {
	fs := append([]Failure(nil), s.cfg.Failures...)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Time < fs[j].Time })
	for _, f := range fs {
		rec := &failureRec{f: f}
		rec.ev = event{kind: evFailure, time: f.Time, index: -1}
		s.failures = append(s.failures, rec)
		s.events.push(&rec.ev)
	}
}

// processFailures applies any failures or recoveries whose time has come.
func (s *Simulator) processFailures() {
	for len(s.failures) > 0 && s.failures[0].f.Time <= s.now+timeEps {
		rec := s.failures[0]
		s.failures = s.failures[1:]
		s.events.remove(&rec.ev)
		s.failMachine(rec.f.Machine)
		if rec.f.Duration > 0 {
			r := &recoveryRec{time: rec.f.Time + rec.f.Duration, machine: rec.f.Machine}
			r.ev = event{kind: evRecovery, time: r.time, index: -1}
			s.recoveries = append(s.recoveries, r)
			sort.SliceStable(s.recoveries, func(i, j int) bool { return s.recoveries[i].time < s.recoveries[j].time })
			s.events.push(&r.ev)
		}
	}
	for len(s.recoveries) > 0 && s.recoveries[0].time <= s.now+timeEps {
		rec := s.recoveries[0]
		s.recoveries = s.recoveries[1:]
		s.events.remove(&rec.ev)
		s.cs.SetOffline(rec.machine, false)
	}
}

// failMachine takes a machine offline, revoking every allocation on it.
func (s *Simulator) failMachine(m cluster.MachineID) {
	for app, n := range s.cs.AppsOn(m) {
		id := workload.AppID(app)
		revoked := cluster.Alloc{m: n}
		if err := s.cs.Release(app, revoked); err != nil {
			panic("sim: revoking failed machine's GPUs: " + err.Error())
		}
		if st, ok := s.active[id]; ok {
			st.trimLeases(m, n)
			st.onAllocationChange(s.now, s.cs.Held(app), s.cfg.RestartOverhead)
			s.appStateChanged(st)
			s.result.noteAllocation(s.now, st, st.Held)
		}
	}
	s.cs.SetOffline(m, true)
}

// trimLeases removes count GPUs on machine m from the app's outstanding
// leases so later expiries do not double-release them. Leases trimmed to
// empty stay scheduled: their expiry still re-splits the app's allocation
// and applies the restart pause, as the original core did.
func (st *AppState) trimLeases(m cluster.MachineID, count int) {
	for _, l := range st.leases {
		if count == 0 {
			break
		}
		if l.alloc[m] == 0 {
			continue
		}
		take := l.alloc[m]
		if take > count {
			take = count
		}
		l.alloc[m] -= take
		if l.alloc[m] == 0 {
			delete(l.alloc, m)
		}
		count -= take
	}
}

// nextFailureEvent returns the earliest pending failure or recovery time
// (used by the legacy scan core; the heap core sees the entries directly).
func (s *Simulator) nextFailureEvent() (float64, bool) {
	best := math.Inf(1)
	if len(s.failures) > 0 {
		best = math.Min(best, s.failures[0].f.Time)
	}
	if len(s.recoveries) > 0 {
		best = math.Min(best, s.recoveries[0].time)
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}
