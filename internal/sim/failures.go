package sim

import (
	"math"
	"sort"

	"themis/internal/cluster"
	"themis/internal/workload"
)

// Failure injects a machine failure: at Time the machine goes offline for
// Duration minutes, every allocation on it is revoked (the affected apps
// lose those GPUs immediately and pay the restart overhead), and the machine
// rejoins the free pool when it recovers. The paper leaves failure-aware
// scheduling to future work (§6); the injector exists so schedulers can be
// studied under failures and so tests can exercise the revocation path.
type Failure struct {
	Time     float64
	Machine  cluster.MachineID
	Duration float64
}

// recovery is a scheduled end of a failure.
type recovery struct {
	time    float64
	machine cluster.MachineID
}

// initFailures validates and orders the configured failures.
func (s *Simulator) initFailures() {
	s.failures = append([]Failure(nil), s.cfg.Failures...)
	sort.Slice(s.failures, func(i, j int) bool { return s.failures[i].Time < s.failures[j].Time })
}

// processFailures applies any failures or recoveries whose time has come.
func (s *Simulator) processFailures() {
	for len(s.failures) > 0 && s.failures[0].Time <= s.now+timeEps {
		f := s.failures[0]
		s.failures = s.failures[1:]
		s.failMachine(f.Machine)
		if f.Duration > 0 {
			s.recoveries = append(s.recoveries, recovery{time: f.Time + f.Duration, machine: f.Machine})
			sort.Slice(s.recoveries, func(i, j int) bool { return s.recoveries[i].time < s.recoveries[j].time })
		}
	}
	for len(s.recoveries) > 0 && s.recoveries[0].time <= s.now+timeEps {
		s.cs.SetOffline(s.recoveries[0].machine, false)
		s.recoveries = s.recoveries[1:]
	}
}

// failMachine takes a machine offline, revoking every allocation on it.
func (s *Simulator) failMachine(m cluster.MachineID) {
	for app, n := range s.cs.AppsOn(m) {
		id := workload.AppID(app)
		revoked := cluster.Alloc{m: n}
		if err := s.cs.Release(app, revoked); err != nil {
			panic("sim: revoking failed machine's GPUs: " + err.Error())
		}
		s.trimLeases(id, m, n)
		if st, ok := s.active[id]; ok {
			st.onAllocationChange(s.now, s.cs.Held(app), s.cfg.RestartOverhead)
			s.result.noteAllocation(s.now, st, s.cs.Held(app))
		}
	}
	s.cs.SetOffline(m, true)
}

// trimLeases removes count GPUs on machine m from the app's outstanding
// leases so later expiries do not double-release them.
func (s *Simulator) trimLeases(app workload.AppID, m cluster.MachineID, count int) {
	for i := range s.leases {
		if count == 0 {
			break
		}
		l := &s.leases[i]
		if l.app != app || l.alloc[m] == 0 {
			continue
		}
		take := l.alloc[m]
		if take > count {
			take = count
		}
		l.alloc[m] -= take
		if l.alloc[m] == 0 {
			delete(l.alloc, m)
		}
		count -= take
	}
}

// nextFailureEvent returns the earliest pending failure or recovery time.
func (s *Simulator) nextFailureEvent() (float64, bool) {
	best := math.Inf(1)
	if len(s.failures) > 0 {
		best = math.Min(best, s.failures[0].Time)
	}
	if len(s.recoveries) > 0 {
		best = math.Min(best, s.recoveries[0].time)
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}
