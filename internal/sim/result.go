package sim

import (
	"sort"

	"themis/internal/cluster"
	"themis/internal/workload"
)

// AppRecord is the per-app outcome of a simulation run.
type AppRecord struct {
	App        workload.AppID
	Model      string
	Network    bool
	SubmitTime float64
	FinishTime float64 // workload.NotFinished if unfinished at the horizon
	// TIdeal is the dedicated-cluster running time estimate (minutes).
	TIdeal float64
	// CompletionTime is FinishTime − SubmitTime (or NotFinished).
	CompletionTime float64
	// FinishTimeFairness is the realised ρ = completion time / TIdeal for
	// finished apps; for unfinished apps it uses the elapsed time so far
	// (a lower bound).
	FinishTimeFairness float64
	// BusyGPUTime is the GPU-minutes the app's jobs actively computed on.
	BusyGPUTime float64
	// HeldGPUTime is the GPU-minutes the app held GPUs (busy or not).
	HeldGPUTime float64
	// PlacementScore is the time-weighted average placement score of the
	// app's allocations while it held GPUs (1.0 = always tightly packed).
	PlacementScore float64
	// JobsTotal and JobsKilled count the app's trials and how many its
	// tuner terminated early.
	JobsTotal  int
	JobsKilled int
}

// AllocationEvent is one point in an app's GPU-allocation timeline (Figure 8).
type AllocationEvent struct {
	Time float64
	App  workload.AppID
	GPUs int
}

// Result aggregates everything a simulation run produced.
type Result struct {
	Policy    string
	TotalGPUs int
	Makespan  float64
	// ClusterGPUTime is the integral of in-use GPUs over time — the paper's
	// "GPU Time" efficiency metric (lower is better for a fixed workload).
	ClusterGPUTime float64
	// PeakContention is the maximum over time of (aggregate unmet + held
	// demand) / cluster GPUs, matching the paper's contention statistic.
	PeakContention float64

	Apps     []AppRecord
	Timeline []AllocationEvent

	records map[workload.AppID]*appAccumulator
	topo    *cluster.Topology
}

// appAccumulator holds in-flight per-app accounting during the run.
type appAccumulator struct {
	state       *AppState
	heldGPUTime float64
	scoreWeight float64
	scoreSum    float64
	arrived     bool
}

func newResult(cfg Config) *Result {
	return &Result{
		Policy:    cfg.Policy.Name(),
		TotalGPUs: cfg.Topology.TotalGPUs(),
		records:   make(map[workload.AppID]*appAccumulator),
		topo:      cfg.Topology,
	}
}

func (r *Result) acc(st *AppState) *appAccumulator {
	a, ok := r.records[st.App.ID]
	if !ok {
		a = &appAccumulator{state: st}
		r.records[st.App.ID] = a
	}
	return a
}

func (r *Result) noteArrival(now float64, st *AppState) {
	r.acc(st).arrived = true
	r.Timeline = append(r.Timeline, AllocationEvent{Time: now, App: st.App.ID, GPUs: 0})
}

func (r *Result) noteAllocation(now float64, st *AppState, held cluster.Alloc) {
	r.acc(st)
	r.Timeline = append(r.Timeline, AllocationEvent{Time: now, App: st.App.ID, GPUs: held.Total()})
}

func (r *Result) noteFinish(now float64, st *AppState) {
	r.acc(st)
	r.Timeline = append(r.Timeline, AllocationEvent{Time: now, App: st.App.ID, GPUs: 0})
}

// noteInterval accrues cluster- and app-level GPU time and placement scores
// over an interval during which allocations were constant. Placement is
// scored per job (the paper's Figure 7 metric): an app's sample is the
// GPU-weighted mean of its jobs' placement scores.
func (r *Result) noteInterval(from, to float64, cs *cluster.State, active []*AppState) {
	dt := to - from
	if dt <= 0 {
		return
	}
	used := cs.TotalUsed()
	r.ClusterGPUTime += float64(used) * dt
	if r.TotalGPUs > 0 {
		if c := float64(used) / float64(r.TotalGPUs); c > r.PeakContention {
			r.PeakContention = c
		}
	}
	// Apps holding GPUs are exactly the active apps with a non-empty Held
	// (finished apps release everything), and every accumulation below is
	// per-app independent, so the active list's order does not affect
	// results.
	for _, st := range active {
		g := st.heldTotal
		if g == 0 {
			continue
		}
		acc, ok := r.records[st.App.ID]
		if !ok {
			continue
		}
		acc.heldGPUTime += float64(g) * dt
		score, weight := st.placementScore()
		acc.scoreSum += score * dt * weight
		acc.scoreWeight += dt * weight
	}
}

// finalize converts accumulators into AppRecords at the end of the run.
func (r *Result) finalize(now float64, apps []*AppState) {
	r.Makespan = now
	r.Apps = r.Apps[:0]
	for _, st := range apps {
		acc := r.acc(st)
		rec := AppRecord{
			App:        st.App.ID,
			Model:      st.App.Profile.Name,
			Network:    st.App.Profile.NetworkIntensive,
			SubmitTime: st.App.SubmitTime,
			FinishTime: st.App.FinishedAt,
			TIdeal:     st.TIdealAtArrival,
			JobsTotal:  len(st.App.Jobs),
		}
		for _, j := range st.App.Jobs {
			if j.Killed {
				rec.JobsKilled++
			}
		}
		rec.BusyGPUTime = st.App.GPUTime()
		rec.HeldGPUTime = acc.heldGPUTime
		if acc.scoreWeight > 0 {
			rec.PlacementScore = acc.scoreSum / acc.scoreWeight
		}
		elapsed := now - st.App.SubmitTime
		if st.App.Finished() {
			rec.CompletionTime = st.App.CompletionTime()
			elapsed = rec.CompletionTime
		} else {
			rec.CompletionTime = workload.NotFinished
		}
		if st.TIdealAtArrival > 0 && elapsed > 0 {
			rec.FinishTimeFairness = elapsed / st.TIdealAtArrival
		}
		r.Apps = append(r.Apps, rec)
	}
	sort.Slice(r.Apps, func(i, j int) bool { return r.Apps[i].App < r.Apps[j].App })
	sort.Slice(r.Timeline, func(i, j int) bool {
		if r.Timeline[i].Time != r.Timeline[j].Time {
			return r.Timeline[i].Time < r.Timeline[j].Time
		}
		return r.Timeline[i].App < r.Timeline[j].App
	})
}

// Finished returns the records of apps that completed within the run.
func (r *Result) Finished() []AppRecord {
	var out []AppRecord
	for _, a := range r.Apps {
		if a.FinishTime != workload.NotFinished {
			out = append(out, a)
		}
	}
	return out
}

// TimelineFor returns the allocation timeline of one app, in time order.
func (r *Result) TimelineFor(id workload.AppID) []AllocationEvent {
	var out []AllocationEvent
	for _, e := range r.Timeline {
		if e.App == id {
			out = append(out, e)
		}
	}
	return out
}
