package sim

import (
	"sort"

	"themis/internal/cluster"
	"themis/internal/workload"
)

// AppRecord is the per-app outcome of a simulation run.
type AppRecord struct {
	App        workload.AppID
	Model      string
	Network    bool
	SubmitTime float64
	FinishTime float64 // workload.NotFinished if unfinished at the horizon
	// TIdeal is the dedicated-cluster running time estimate (minutes).
	TIdeal float64
	// CompletionTime is FinishTime − SubmitTime (or NotFinished).
	CompletionTime float64
	// FinishTimeFairness is the realised ρ = completion time / TIdeal for
	// finished apps; for unfinished apps it uses the elapsed time so far
	// (a lower bound).
	FinishTimeFairness float64
	// BusyGPUTime is the GPU-minutes the app's jobs actively computed on.
	BusyGPUTime float64
	// HeldGPUTime is the GPU-minutes the app held GPUs (busy or not).
	HeldGPUTime float64
	// PlacementScore is the time-weighted average placement score of the
	// app's allocations while it held GPUs (1.0 = always tightly packed).
	PlacementScore float64
	// JobsTotal and JobsKilled count the app's trials and how many its
	// tuner terminated early.
	JobsTotal  int
	JobsKilled int
}

// AllocationEvent is one point in an app's GPU-allocation timeline (Figure 8).
type AllocationEvent struct {
	Time float64
	App  workload.AppID
	GPUs int
}

// Result aggregates everything a simulation run produced.
type Result struct {
	Policy    string
	TotalGPUs int
	Makespan  float64
	// ClusterGPUTime is the integral of in-use GPUs over time — the paper's
	// "GPU Time" efficiency metric (lower is better for a fixed workload).
	ClusterGPUTime float64
	// PeakContention is the maximum over time of (aggregate unmet + held
	// demand) / cluster GPUs, matching the paper's contention statistic.
	PeakContention float64
	// Fragmentation summarises, time-weighted over the run, how the free
	// capacity was scattered across the topology hierarchy.
	Fragmentation FragStats

	Apps     []AppRecord
	Timeline []AllocationEvent

	records map[workload.AppID]*appAccumulator
	topo    *cluster.Topology

	// frag is the free-pool fragmentation snapshot for the current interval,
	// recomputed lazily (fragDirty) after allocation changes; fragWeight and
	// the frag* sums accumulate the time-weighted statistics. The Mean* block
	// fields of Fragmentation hold weighted sums until finalize normalises
	// them.
	frag         fragSnapshot
	fragDirty    bool
	fragWeight   float64
	fragSumScore float64 // Σ score·dt
	fragSumFree  float64 // Σ freeGPUs·dt
}

// FragStats is the run-level fragmentation summary of the free GPU pool: the
// per-level largest free blocks say how big a gang could have been placed
// machine-, rack- or domain-local at a typical instant, and the score says
// what fraction of free capacity a machine-local gang could not reach
// (0 = all free GPUs on one machine, →1 = free capacity is dust).
type FragStats struct {
	// MeanFreeGPUs is the time-weighted mean number of free GPUs.
	MeanFreeGPUs float64
	// MeanScore and PeakScore track 1 − largestMachineBlock/freeGPUs over
	// time (0 whenever the cluster is fully busy).
	MeanScore float64
	PeakScore float64
	// MeanLargestMachineBlock, MeanLargestRackBlock and
	// MeanLargestDomainBlock are the time-weighted mean largest free blocks
	// at each level of the hierarchy.
	MeanLargestMachineBlock float64
	MeanLargestRackBlock    float64
	MeanLargestDomainBlock  float64
}

// fragSnapshot is the free pool's fragmentation at one instant.
type fragSnapshot struct {
	freeGPUs       int
	largestMachine int
	largestRack    int
	largestDomain  int
	score          float64
}

// snapshotFrag computes the free-pool fragmentation from the cluster state.
// It runs only on intervals following an allocation change.
func snapshotFrag(topo *cluster.Topology, cs *cluster.State) fragSnapshot {
	var snap fragSnapshot
	rackFree := make(map[cluster.RackID]int)
	domainFree := make(map[cluster.DomainID]int)
	for _, m := range topo.Machines() {
		n := cs.FreeOn(m.ID)
		if n <= 0 {
			continue
		}
		snap.freeGPUs += n
		if n > snap.largestMachine {
			snap.largestMachine = n
		}
		rackFree[m.Rack] += n
		domainFree[m.Domain] += n
	}
	for _, n := range rackFree {
		if n > snap.largestRack {
			snap.largestRack = n
		}
	}
	for _, n := range domainFree {
		if n > snap.largestDomain {
			snap.largestDomain = n
		}
	}
	if snap.freeGPUs > 0 {
		snap.score = 1 - float64(snap.largestMachine)/float64(snap.freeGPUs)
	}
	return snap
}

// appAccumulator holds in-flight per-app accounting during the run.
type appAccumulator struct {
	state       *AppState
	heldGPUTime float64
	scoreWeight float64
	scoreSum    float64
	arrived     bool
}

func newResult(cfg Config) *Result {
	return &Result{
		Policy:    cfg.Policy.Name(),
		TotalGPUs: cfg.Topology.TotalGPUs(),
		records:   make(map[workload.AppID]*appAccumulator),
		topo:      cfg.Topology,
		fragDirty: true,
	}
}

func (r *Result) acc(st *AppState) *appAccumulator {
	a, ok := r.records[st.App.ID]
	if !ok {
		a = &appAccumulator{state: st}
		r.records[st.App.ID] = a
	}
	return a
}

func (r *Result) noteArrival(now float64, st *AppState) {
	r.acc(st).arrived = true
	r.Timeline = append(r.Timeline, AllocationEvent{Time: now, App: st.App.ID, GPUs: 0})
}

func (r *Result) noteAllocation(now float64, st *AppState, held cluster.Alloc) {
	r.acc(st)
	r.fragDirty = true
	r.Timeline = append(r.Timeline, AllocationEvent{Time: now, App: st.App.ID, GPUs: held.Total()})
}

func (r *Result) noteFinish(now float64, st *AppState) {
	r.acc(st)
	r.fragDirty = true
	r.Timeline = append(r.Timeline, AllocationEvent{Time: now, App: st.App.ID, GPUs: 0})
}

// noteInterval accrues cluster- and app-level GPU time and placement scores
// over an interval during which allocations were constant. Placement is
// scored per job (the paper's Figure 7 metric): an app's sample is the
// GPU-weighted mean of its jobs' placement scores.
func (r *Result) noteInterval(from, to float64, cs *cluster.State, active []*AppState) {
	dt := to - from
	if dt <= 0 {
		return
	}
	used := cs.TotalUsed()
	r.ClusterGPUTime += float64(used) * dt
	if r.TotalGPUs > 0 {
		if c := float64(used) / float64(r.TotalGPUs); c > r.PeakContention {
			r.PeakContention = c
		}
	}
	// Allocations are constant over the interval, so one snapshot (refreshed
	// only after allocation changes) weighted by dt accrues exactly.
	if r.fragDirty {
		r.frag = snapshotFrag(r.topo, cs)
		r.fragDirty = false
	}
	r.fragWeight += dt
	r.fragSumFree += float64(r.frag.freeGPUs) * dt
	r.fragSumScore += r.frag.score * dt
	r.Fragmentation.MeanLargestMachineBlock += float64(r.frag.largestMachine) * dt
	r.Fragmentation.MeanLargestRackBlock += float64(r.frag.largestRack) * dt
	r.Fragmentation.MeanLargestDomainBlock += float64(r.frag.largestDomain) * dt
	if r.frag.score > r.Fragmentation.PeakScore {
		r.Fragmentation.PeakScore = r.frag.score
	}
	// Apps holding GPUs are exactly the active apps with a non-empty Held
	// (finished apps release everything), and every accumulation below is
	// per-app independent, so the active list's order does not affect
	// results.
	for _, st := range active {
		g := st.heldTotal
		if g == 0 {
			continue
		}
		acc, ok := r.records[st.App.ID]
		if !ok {
			continue
		}
		acc.heldGPUTime += float64(g) * dt
		score, weight := st.placementScore()
		acc.scoreSum += score * dt * weight
		acc.scoreWeight += dt * weight
	}
}

// finalize converts accumulators into AppRecords at the end of the run.
func (r *Result) finalize(now float64, apps []*AppState) {
	r.Makespan = now
	if w := r.fragWeight; w > 0 {
		r.Fragmentation.MeanFreeGPUs = r.fragSumFree / w
		r.Fragmentation.MeanScore = r.fragSumScore / w
		r.Fragmentation.MeanLargestMachineBlock /= w
		r.Fragmentation.MeanLargestRackBlock /= w
		r.Fragmentation.MeanLargestDomainBlock /= w
	}
	r.Apps = r.Apps[:0]
	for _, st := range apps {
		acc := r.acc(st)
		rec := AppRecord{
			App:        st.App.ID,
			Model:      st.App.Profile.Name,
			Network:    st.App.Profile.NetworkIntensive,
			SubmitTime: st.App.SubmitTime,
			FinishTime: st.App.FinishedAt,
			TIdeal:     st.TIdealAtArrival,
			JobsTotal:  len(st.App.Jobs),
		}
		for _, j := range st.App.Jobs {
			if j.Killed {
				rec.JobsKilled++
			}
		}
		rec.BusyGPUTime = st.App.GPUTime()
		rec.HeldGPUTime = acc.heldGPUTime
		if acc.scoreWeight > 0 {
			rec.PlacementScore = acc.scoreSum / acc.scoreWeight
		}
		elapsed := now - st.App.SubmitTime
		if st.App.Finished() {
			rec.CompletionTime = st.App.CompletionTime()
			elapsed = rec.CompletionTime
		} else {
			rec.CompletionTime = workload.NotFinished
		}
		if st.TIdealAtArrival > 0 && elapsed > 0 {
			rec.FinishTimeFairness = elapsed / st.TIdealAtArrival
		}
		r.Apps = append(r.Apps, rec)
	}
	sort.Slice(r.Apps, func(i, j int) bool { return r.Apps[i].App < r.Apps[j].App })
	sort.Slice(r.Timeline, func(i, j int) bool {
		if r.Timeline[i].Time != r.Timeline[j].Time {
			return r.Timeline[i].Time < r.Timeline[j].Time
		}
		return r.Timeline[i].App < r.Timeline[j].App
	})
}

// Finished returns the records of apps that completed within the run.
func (r *Result) Finished() []AppRecord {
	var out []AppRecord
	for _, a := range r.Apps {
		if a.FinishTime != workload.NotFinished {
			out = append(out, a)
		}
	}
	return out
}

// TimelineFor returns the allocation timeline of one app, in time order.
func (r *Result) TimelineFor(id workload.AppID) []AllocationEvent {
	var out []AllocationEvent
	for _, e := range r.Timeline {
		if e.App == id {
			out = append(out, e)
		}
	}
	return out
}
