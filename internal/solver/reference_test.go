package solver

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"themis/internal/cluster"
)

// This file preserves the pre-dense, map-based solver verbatim (modulo ref
// prefixes and a non-mutating normalization) as the reference oracle for
// TestDenseSolverMatchesReference: the dense rewrite must reproduce its
// output bit-for-bit on instances whose optima and tie-breaks are unique,
// which randomized float values guarantee almost surely.

func refSolve(capacity cluster.Alloc, bidders []Bidder, opts Options) (Assignment, float64, error) {
	opts = opts.withDefaults()
	if err := refValidate(capacity, bidders); err != nil {
		return nil, 0, err
	}
	norm := make([]Bidder, len(bidders))
	copy(norm, bidders)
	for i := range norm {
		norm[i].Bundles = append([]Bundle(nil), norm[i].Bundles...)
		norm[i].Normalize()
	}
	space := 1
	exact := true
	for _, b := range norm {
		if space > opts.ExactLimit/len(b.Bundles) {
			exact = false
			break
		}
		space *= len(b.Bundles)
	}
	var asg Assignment
	if exact && space <= opts.ExactLimit {
		asg = refSolveExact(capacity, norm)
	} else {
		asg = refSolveGreedy(capacity, norm, opts.LocalSearchRounds)
	}
	return asg, asg.Objective(), nil
}

func refValidate(capacity cluster.Alloc, bidders []Bidder) error {
	seen := make(map[string]bool, len(bidders))
	for _, b := range bidders {
		if b.ID == "" || seen[b.ID] {
			return errRefInvalid
		}
		seen[b.ID] = true
		for _, bun := range b.Bundles {
			for m, n := range bun.Alloc {
				if n < 0 || n > capacity[m] {
					_ = m
					return errRefInvalid
				}
			}
		}
	}
	return nil
}

var errRefInvalid = errString("ref: invalid instance")

type errString string

func (e errString) Error() string { return string(e) }

func refSolveExact(capacity cluster.Alloc, bidders []Bidder) Assignment {
	order := make([]int, len(bidders))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return refBundleSpread(bidders[order[a]]) > refBundleSpread(bidders[order[b]])
	})
	maxLog := make([]float64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		best := math.Inf(-1)
		for _, bun := range bidders[order[i]].Bundles {
			if l := math.Log(bun.Value); l > best {
				best = l
			}
		}
		maxLog[i] = maxLog[i+1] + best
	}

	bestObj := math.Inf(-1)
	var bestChoice []int
	choice := make([]int, len(order))
	used := cluster.NewAlloc()

	var dfs func(depth int, obj float64)
	dfs = func(depth int, obj float64) {
		if obj+maxLog[depth] <= bestObj {
			return
		}
		if depth == len(order) {
			bestObj = obj
			bestChoice = append([]int(nil), choice...)
			return
		}
		b := bidders[order[depth]]
		idx := make([]int, len(b.Bundles))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return b.Bundles[idx[x]].Value > b.Bundles[idx[y]].Value })
		for _, bi := range idx {
			bun := b.Bundles[bi]
			if !refFits(used, bun.Alloc, capacity) {
				continue
			}
			for m, n := range bun.Alloc {
				used[m] += n
			}
			choice[depth] = bi
			dfs(depth+1, obj+math.Log(bun.Value))
			for m, n := range bun.Alloc {
				used[m] -= n
				if used[m] == 0 {
					delete(used, m)
				}
			}
		}
	}
	dfs(0, 0)

	asg := make(Assignment, len(bidders))
	if bestChoice == nil {
		for _, b := range bidders {
			asg[b.ID] = refEmptyBundle(b)
		}
		return asg
	}
	for d, oi := range order {
		asg[bidders[oi].ID] = bidders[oi].Bundles[bestChoice[d]]
	}
	return asg
}

func refBundleSpread(b Bidder) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, bun := range b.Bundles {
		if bun.Value < lo {
			lo = bun.Value
		}
		if bun.Value > hi {
			hi = bun.Value
		}
	}
	return math.Log(hi) - math.Log(lo)
}

func refEmptyBundle(b Bidder) Bundle {
	for _, bun := range b.Bundles {
		if bun.Alloc.Total() == 0 {
			return bun
		}
	}
	return Bundle{Alloc: cluster.NewAlloc(), Value: 1e-12}
}

func refSolveGreedy(capacity cluster.Alloc, bidders []Bidder, rounds int) Assignment {
	asg := make(Assignment, len(bidders))
	for _, b := range bidders {
		asg[b.ID] = refEmptyBundle(b)
	}
	byID := make(map[string]Bidder, len(bidders))
	for _, b := range bidders {
		byID[b.ID] = b
	}
	for r := 0; r < rounds; r++ {
		improved := false
		used := asg.TotalAlloc()
		bestGain := 1e-12
		var bestID string
		var bestBundle Bundle
		for id, cur := range asg {
			without, err := used.Sub(cur.Alloc)
			if err != nil {
				continue
			}
			for _, bun := range byID[id].Bundles {
				if bun.Value <= cur.Value {
					continue
				}
				if !refFits(without, bun.Alloc, capacity) {
					continue
				}
				gain := math.Log(bun.Value) - math.Log(cur.Value)
				if gain > bestGain {
					bestGain, bestID, bestBundle = gain, id, bun
				}
			}
		}
		if bestID != "" {
			asg[bestID] = bestBundle
			improved = true
		}
		if !improved {
			if id, bun, victim, ok := refFindPairMove(capacity, byID, asg); ok {
				asg[victim] = refEmptyBundle(byID[victim])
				asg[id] = bun
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return asg
}

func refFindPairMove(capacity cluster.Alloc, byID map[string]Bidder, asg Assignment) (id string, bundle Bundle, victim string, ok bool) {
	used := asg.TotalAlloc()
	bestGain := 1e-12
	for a, curA := range asg {
		for v, curV := range asg {
			if a == v || curV.Alloc.Total() == 0 {
				continue
			}
			freed, err := used.Sub(curA.Alloc)
			if err != nil {
				continue
			}
			freed, err = freed.Sub(curV.Alloc)
			if err != nil {
				continue
			}
			lossV := math.Log(curV.Value) - math.Log(refEmptyBundle(byID[v]).Value)
			for _, bun := range byID[a].Bundles {
				if !refFits(freed, bun.Alloc, capacity) {
					continue
				}
				gain := math.Log(bun.Value) - math.Log(curA.Value) - lossV
				if gain > bestGain {
					bestGain, id, bundle, victim, ok = gain, a, bun, v, true
				}
			}
		}
	}
	return id, bundle, victim, ok
}

func refFits(used, alloc, capacity cluster.Alloc) bool {
	for m, n := range alloc {
		if used[m]+n > capacity[m] {
			return false
		}
	}
	return true
}

// randomInstance builds a solver instance with continuous random values so
// ties (which the old map-ordered code broke nondeterministically) occur
// with probability zero.
func randomInstance(rng *rand.Rand) (cluster.Alloc, []Bidder) {
	nm := 1 + rng.Intn(5)
	capacity := cluster.NewAlloc()
	for m := 0; m < nm; m++ {
		capacity[cluster.MachineID(m)] = 1 + rng.Intn(6)
	}
	nb := 1 + rng.Intn(8)
	bidders := make([]Bidder, 0, nb)
	for i := 0; i < nb; i++ {
		b := Bidder{ID: string(rune('a' + i))}
		nbun := 1 + rng.Intn(5)
		for j := 0; j < nbun; j++ {
			a := cluster.NewAlloc()
			for m := 0; m < nm; m++ {
				if rng.Intn(3) == 0 {
					if n := rng.Intn(capacity[cluster.MachineID(m)] + 1); n > 0 {
						a[cluster.MachineID(m)] = n
					}
				}
			}
			b.Bundles = append(b.Bundles, Bundle{Alloc: a, Value: 0.5 + 9*rng.Float64()})
		}
		bidders = append(bidders, b)
	}
	return capacity, bidders
}

// TestDenseSolverMatchesReference pins the dense rewrite to the old
// map-based solver: identical chosen bundles on randomized instances, for
// both the exact branch-and-bound and the forced-greedy path.
func TestDenseSolverMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		capacity, bidders := randomInstance(rng)
		for _, opts := range []Options{{}, {ExactLimit: 1}} {
			got, gotObj, err := Solve(capacity, bidders, opts)
			if err != nil {
				t.Fatalf("trial %d: Solve: %v", trial, err)
			}
			want, wantObj, err := refSolve(capacity, bidders, opts)
			if err != nil {
				t.Fatalf("trial %d: refSolve: %v", trial, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d opts %+v: %d assignments, want %d", trial, opts, len(got), len(want))
			}
			for id, w := range want {
				g, ok := got[id]
				if !ok {
					t.Fatalf("trial %d opts %+v: bidder %s missing", trial, opts, id)
				}
				if g.Value != w.Value || !g.Alloc.Equal(w.Alloc) {
					t.Fatalf("trial %d opts %+v bidder %s: got %v@%v want %v@%v",
						trial, opts, id, g.Alloc, g.Value, w.Alloc, w.Value)
				}
			}
			// Objectives are summed in different orders (the reference sums
			// in map order), so compare within float tolerance.
			if math.Abs(gotObj-wantObj) > 1e-9*math.Max(1, math.Abs(wantObj)) {
				t.Fatalf("trial %d opts %+v: objective %v vs %v", trial, opts, gotObj, wantObj)
			}
		}
	}
}

// TestSolveDeterministicAcrossRuns pins the satellite determinism fix:
// repeated Solve calls on the same instance return identical assignments
// and identical objective bits, including on instances with deliberate
// value ties that the old map-iterated greedy broke arbitrarily.
func TestSolveDeterministicAcrossRuns(t *testing.T) {
	type run struct {
		asg Assignment
		obj float64
	}
	check := func(t *testing.T, capacity cluster.Alloc, bidders []Bidder, opts Options) {
		t.Helper()
		first, obj0, err := Solve(capacity, bidders, opts)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for rep := 0; rep < 20; rep++ {
			again, obj, err := Solve(capacity, bidders, opts)
			if err != nil {
				t.Fatalf("Solve rep %d: %v", rep, err)
			}
			if obj != obj0 {
				t.Fatalf("rep %d: objective %v != %v", rep, obj, obj0)
			}
			if len(again) != len(first) {
				t.Fatalf("rep %d: %d assignments != %d", rep, len(again), len(first))
			}
			for id, f := range first {
				g := again[id]
				if g.Value != f.Value || !g.Alloc.Equal(f.Alloc) {
					t.Fatalf("rep %d bidder %s: %v@%v != %v@%v", rep, id, g.Alloc, g.Value, f.Alloc, f.Value)
				}
			}
		}
		_ = run{first, obj0}
	}

	t.Run("tied bidders forced greedy", func(t *testing.T) {
		// Every bidder is identical: any of them winning is optimal, so
		// only deterministic tie-breaking makes runs repeatable.
		capacity := cluster.Alloc{0: 4}
		var bidders []Bidder
		for i := 0; i < 12; i++ {
			bidders = append(bidders, Bidder{
				ID: string(rune('a' + i)),
				Bundles: []Bundle{
					{Alloc: cluster.Alloc{0: 4}, Value: 8},
					{Alloc: cluster.Alloc{0: 2}, Value: 4},
				},
			})
		}
		check(t, capacity, bidders, Options{ExactLimit: 1})
	})

	t.Run("randomized instances both paths", func(t *testing.T) {
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 40; trial++ {
			capacity, bidders := randomInstance(rng)
			check(t, capacity, bidders, Options{})
			check(t, capacity, bidders, Options{ExactLimit: 1})
		}
	})
}

// TestSolveDoesNotMutateCallerBundles is the regression test for the
// shallow-copy satellite: Normalize used to clamp values in place and
// append the empty row into the caller's Bundles backing array.
func TestSolveDoesNotMutateCallerBundles(t *testing.T) {
	capacity := cluster.Alloc{0: 4}
	// Backing array with spare capacity so the old append would have
	// written in place.
	backing := make([]Bundle, 2, 8)
	backing[0] = Bundle{Alloc: cluster.Alloc{0: 2}, Value: 5}
	backing[1] = Bundle{Alloc: cluster.NewAlloc(), Value: -3} // non-positive: old code clamped in place
	bidders := []Bidder{{ID: "a", Bundles: backing[:2]}}

	if _, _, err := Solve(capacity, bidders, Options{}); err != nil {
		t.Fatalf("Solve: %v", err)
	}

	if backing[1].Value != -3 {
		t.Fatalf("Solve clamped the caller's bundle value in place: %v", backing[1].Value)
	}
	if len(bidders[0].Bundles) != 2 {
		t.Fatalf("Solve changed the caller's bundle count: %d", len(bidders[0].Bundles))
	}
	spare := backing[:3]
	if spare[2].Alloc != nil || spare[2].Value != 0 {
		t.Fatalf("Solve wrote into the caller's spare backing capacity: %+v", spare[2])
	}

	// A second bidder missing its empty row: the synthesized row must land
	// in solver-owned storage, not the caller's.
	noEmpty := []Bidder{{ID: "b", Bundles: []Bundle{{Alloc: cluster.Alloc{0: 1}, Value: 2}}}}
	if _, _, err := Solve(capacity, noEmpty, Options{}); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(noEmpty[0].Bundles) != 1 {
		t.Fatalf("Solve appended the empty bundle into the caller's slice")
	}
}
