package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"themis/internal/cluster"
)

// benchInstance builds a greedy-scale auction: nBidders apps bidding 8-row
// tables over a 32-machine × 16-GPU cluster, mirroring the shape the
// arbiter's partial-allocation rounds produce.
func benchInstance(nBidders, nBundles int, seed int64) (cluster.Alloc, []Bidder) {
	rng := rand.New(rand.NewSource(seed))
	const nm = 32
	capacity := cluster.NewAlloc()
	for m := 0; m < nm; m++ {
		capacity[cluster.MachineID(m)] = 16
	}
	bidders := make([]Bidder, 0, nBidders)
	for i := 0; i < nBidders; i++ {
		b := Bidder{ID: fmt.Sprintf("app-%d", i)}
		b.Bundles = append(b.Bundles, Bundle{Alloc: cluster.NewAlloc(), Value: 1e-12})
		for j := 1; j < nBundles; j++ {
			a := cluster.NewAlloc()
			span := 1 + rng.Intn(3)
			for k := 0; k < span; k++ {
				m := cluster.MachineID(rng.Intn(nm))
				a[m] = a[m] + 1 + rng.Intn(4)
				if a[m] > 16 {
					a[m] = 16
				}
			}
			b.Bundles = append(b.Bundles, Bundle{Alloc: a, Value: 0.5 + 9*rng.Float64()})
		}
		bidders = append(bidders, b)
	}
	return capacity, bidders
}

// BenchmarkSolverGreedy measures the heuristic path at auction scale; the
// 8-bundle tables push the search space past ExactLimit so the greedy +
// pair-move search runs, which is where the old map-based implementation
// spent ~2/3 of auction CPU in Clone/Sub/TotalAlloc chains.
func BenchmarkSolverGreedy(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("bidders-%d", n), func(b *testing.B) {
			capacity, bidders := benchInstance(n, 8, 42)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Solve(capacity, bidders, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverExact measures the branch-and-bound path on the largest
// instance the default limit admits with 8-row tables (5 bidders: 8^5 =
// 32768 ≤ 200000; a sixth would overflow the limit and flip to greedy).
func BenchmarkSolverExact(b *testing.B) {
	capacity, bidders := benchInstance(5, 8, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(capacity, bidders, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceGreedy runs the preserved map-based solver on the same
// instances so the ≥2x speedup of the dense rewrite is measurable in-tree.
// The name deliberately avoids the BenchmarkSolver prefix so CI's benchgate
// suite (which guards the production path) does not time the oracle.
func BenchmarkReferenceGreedy(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("bidders-%d", n), func(b *testing.B) {
			capacity, bidders := benchInstance(n, 8, 42)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := refSolve(capacity, bidders, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
