// Dense winner-determination engine. The public Solve API keeps sparse
// cluster.Alloc maps as its currency, but internally every instance is
// compiled to flat vectors once and the search never touches a Go map:
//
//   - capacity and the incrementally maintained `used` vector are
//     cluster.DenseAlloc ([]int32 indexed by MachineID, offset-shifted so
//     arbitrary ID ranges still work),
//   - each bundle is a (value, log value, total, term-range) record whose
//     non-zero machine terms live in one shared flat []term slice,
//   - bidders are index-ordered slices, so greedy and pair-move tie-breaks
//     are deterministic instead of map-iteration-order dependent.
//
// The compiled instance lives in a pooled scratch struct; a Solve call
// borrows one, compiles, searches, copies the winning bundles into the
// returned Assignment, and releases the scratch. The search results are
// bit-identical to the previous map-based implementation (pinned by
// TestDenseSolverMatchesReference): bidder ordering, per-depth bundle
// ordering, pruning comparisons and float accumulation order are all
// preserved; log values are computed once per bundle with the same
// math.Log the old code called per visit.
package solver

import (
	"math"
	"sort"
	"sync"

	"themis/internal/cluster"
)

// term is one non-zero machine entry of a bundle's allocation.
type term struct {
	m int32 // dense machine index (MachineID + offset)
	n int32
}

// denseBundle mirrors Bundle with precomputed log value and a term range
// into scratch.terms.
type denseBundle struct {
	value    float64
	logValue float64
	total    int32
	toff     int32
	tlen     int32
}

// scratch holds every slice the solver needs, reused across Solve calls via
// scratchPool. It is single-goroutine state; concurrent Solve calls each
// borrow their own.
type scratch struct {
	arena    *cluster.AllocArena
	capacity cluster.DenseAlloc
	used     cluster.DenseAlloc
	offset   int32 // dense index = MachineID + offset

	norm        []Bidder // normalized bidders, Bundles aliasing normBundles
	normBundles []Bundle

	boff     []int32 // bundles of bidder i: bundles[boff[i]:boff[i+1]]
	bundles  []denseBundle
	terms    []term
	emptyIdx []int32   // local index of bidder i's empty bundle
	spread   []float64 // bundleSpread per bidder
	valIdx   []int32   // per-bidder value-desc local bundle order, same offsets as bundles

	order      []int
	maxLog     []float64
	choice     []int
	bestChoice []int
	seen       map[string]bool
}

var scratchPool = sync.Pool{
	New: func() any { return &scratch{arena: cluster.NewAllocArena()} },
}

// emptyAlloc is the shared zero-GPU allocation used for synthesized empty
// bundles. It is read-only by contract: bundle allocations are never mutated
// by the solver or the auction.
var emptyAlloc = cluster.Alloc{}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func (sc *scratch) release() {
	sc.arena.ReleaseDense(sc.capacity)
	sc.arena.ReleaseDense(sc.used)
	sc.capacity, sc.used = nil, nil
	// Drop references to caller-owned alloc maps so pooling the scratch
	// does not extend their lifetime.
	for i := range sc.normBundles {
		sc.normBundles[i].Alloc = nil
	}
	for i := range sc.norm {
		sc.norm[i] = Bidder{}
	}
	scratchPool.Put(sc)
}

// normalize deep-copies the bidders' bundle slices into scratch-owned
// storage (the caller's Bundles backing arrays are never touched — see the
// Solve regression test), clamps non-positive values and appends a
// synthesized empty bundle where missing. Alloc maps are shared with the
// caller, matching the previous behavior; the solver only reads them.
func (sc *scratch) normalize(bidders []Bidder) {
	const eps = 1e-12
	sc.norm = sc.norm[:0]
	sc.normBundles = sc.normBundles[:0]
	for _, b := range bidders {
		start := len(sc.normBundles)
		hasEmpty := false
		for _, bun := range b.Bundles {
			if bun.Value < eps {
				bun.Value = eps
			}
			if bun.Alloc.Total() == 0 {
				hasEmpty = true
			}
			sc.normBundles = append(sc.normBundles, bun)
		}
		if !hasEmpty {
			sc.normBundles = append(sc.normBundles, Bundle{Alloc: emptyAlloc, Value: eps})
		}
		sc.norm = append(sc.norm, Bidder{ID: b.ID, Bundles: sc.normBundles[start:len(sc.normBundles):len(sc.normBundles)]})
	}
	// The flat slice may have been re-allocated while growing; rebuild the
	// per-bidder views against the final backing array.
	off := 0
	for i := range sc.norm {
		n := len(sc.norm[i].Bundles)
		sc.norm[i].Bundles = sc.normBundles[off : off+n : off+n]
		off += n
	}
}

// compile builds the dense instance from the normalized bidders.
func (sc *scratch) compile(capacity cluster.Alloc) {
	minID, maxID := 0, -1
	scan := func(a cluster.Alloc) {
		for m, n := range a {
			if n == 0 {
				continue
			}
			if maxID < minID {
				minID, maxID = int(m), int(m)
				continue
			}
			if int(m) < minID {
				minID = int(m)
			}
			if int(m) > maxID {
				maxID = int(m)
			}
		}
	}
	scan(capacity)
	for _, b := range sc.norm {
		for _, bun := range b.Bundles {
			scan(bun.Alloc)
		}
	}
	nm := 0
	sc.offset = 0
	if maxID >= minID {
		nm = maxID - minID + 1
		sc.offset = int32(-minID)
	}
	sc.capacity = sc.arena.Dense(nm)
	sc.used = sc.arena.Dense(nm)
	for m, n := range capacity {
		if n != 0 {
			sc.capacity[int32(m)+sc.offset] = int32(n)
		}
	}

	nb := len(sc.norm)
	sc.boff = append(sc.boff[:0], 0)
	sc.bundles = sc.bundles[:0]
	sc.terms = sc.terms[:0]
	sc.emptyIdx = sc.emptyIdx[:0]
	sc.spread = sc.spread[:0]
	sc.valIdx = sc.valIdx[:0]
	for i := 0; i < nb; i++ {
		b := sc.norm[i]
		empty := int32(-1)
		loLog, hiLog := math.Inf(1), math.Inf(-1)
		for bi, bun := range b.Bundles {
			toff := int32(len(sc.terms))
			total := int32(0)
			for m, n := range bun.Alloc {
				if n == 0 {
					continue
				}
				sc.terms = append(sc.terms, term{m: int32(m) + sc.offset, n: int32(n)})
				total += int32(n)
			}
			l := math.Log(bun.Value)
			sc.bundles = append(sc.bundles, denseBundle{
				value:    bun.Value,
				logValue: l,
				total:    total,
				toff:     toff,
				tlen:     int32(len(sc.terms)) - toff,
			})
			if total == 0 && empty < 0 {
				empty = int32(bi)
			}
			if l < loLog {
				loLog = l
			}
			if l > hiLog {
				hiLog = l
			}
		}
		sc.boff = append(sc.boff, int32(len(sc.bundles)))
		sc.emptyIdx = append(sc.emptyIdx, empty)
		sc.spread = append(sc.spread, hiLog-loLog)

		// Value-descending bundle order, computed once per bidder with the
		// same sort the old per-node code ran (deterministic for a given
		// input, so precomputing preserves the exact search order).
		vstart := len(sc.valIdx)
		for bi := range b.Bundles {
			sc.valIdx = append(sc.valIdx, int32(bi))
		}
		vi := sc.valIdx[vstart:]
		sort.Slice(vi, func(x, y int) bool {
			return b.Bundles[vi[x]].Value > b.Bundles[vi[y]].Value
		})
	}
}

func (sc *scratch) bundleAt(bidder int, local int32) *denseBundle {
	return &sc.bundles[sc.boff[bidder]+local]
}

func (sc *scratch) addTerms(b *denseBundle) {
	for _, t := range sc.terms[b.toff : b.toff+b.tlen] {
		sc.used[t.m] += t.n
	}
}

func (sc *scratch) subTerms(b *denseBundle) {
	for _, t := range sc.terms[b.toff : b.toff+b.tlen] {
		sc.used[t.m] -= t.n
	}
}

// fitsTerms reports whether adding the bundle to used stays within capacity.
func (sc *scratch) fitsTerms(b *denseBundle) bool {
	for _, t := range sc.terms[b.toff : b.toff+b.tlen] {
		if sc.used[t.m]+t.n > sc.capacity[t.m] {
			return false
		}
	}
	return true
}

// solveExact runs the same depth-first branch and bound as before, over the
// compiled instance: bidders ordered by decreasing value spread, bundles
// tried in descending value, suffix log bounds for pruning.
func (sc *scratch) solveExact() {
	nb := len(sc.norm)
	sc.order = sc.order[:0]
	for i := 0; i < nb; i++ {
		sc.order = append(sc.order, i)
	}
	order := sc.order
	sort.Slice(order, func(a, b int) bool {
		return sc.spread[order[a]] > sc.spread[order[b]]
	})
	sc.maxLog = sc.maxLog[:0]
	for i := 0; i <= nb; i++ {
		sc.maxLog = append(sc.maxLog, 0)
	}
	maxLog := sc.maxLog
	for i := nb - 1; i >= 0; i-- {
		best := math.Inf(-1)
		bi := order[i]
		for _, bun := range sc.bundles[sc.boff[bi]:sc.boff[bi+1]] {
			if bun.logValue > best {
				best = bun.logValue
			}
		}
		maxLog[i] = maxLog[i+1] + best
	}

	bestObj := math.Inf(-1)
	haveBest := false
	sc.choice = sc.choice[:0]
	sc.bestChoice = sc.bestChoice[:0]
	for i := 0; i < nb; i++ {
		sc.choice = append(sc.choice, 0)
		sc.bestChoice = append(sc.bestChoice, -1)
	}
	choice, bestChoice := sc.choice, sc.bestChoice

	var dfs func(depth int, obj float64)
	dfs = func(depth int, obj float64) {
		if obj+maxLog[depth] <= bestObj {
			return // cannot beat the incumbent
		}
		if depth == nb {
			bestObj = obj
			haveBest = true
			copy(bestChoice, choice)
			return
		}
		bi := order[depth]
		start := sc.boff[bi]
		for _, local := range sc.valIdx[start:sc.boff[bi+1]] {
			bun := &sc.bundles[start+local]
			if !sc.fitsTerms(bun) {
				continue
			}
			sc.addTerms(bun)
			choice[depth] = int(local)
			dfs(depth+1, obj+bun.logValue)
			sc.subTerms(bun)
		}
	}
	dfs(0, 0)

	// Translate depth-indexed best choices back to bidder-indexed ones.
	if !haveBest {
		// Only possible if even all-empty is infeasible, which cannot
		// happen; fall back to empty bundles defensively.
		for i := 0; i < nb; i++ {
			choice[i] = int(sc.emptyIdx[i])
		}
		return
	}
	for d, bi := range order {
		choice[bi] = bestChoice[d]
	}
}

// solveGreedy starts every bidder at its empty bundle and repeatedly applies
// the single-bidder bundle change with the largest feasible objective gain,
// followed by pair moves that revert a victim to its empty bundle to make
// room. Bidders are visited in index order, so tie-breaks are deterministic
// (the old map iteration made them order-dependent; strict > comparisons
// mean unique-maximum instances are unaffected).
func (sc *scratch) solveGreedy(rounds int) {
	nb := len(sc.norm)
	sc.choice = sc.choice[:0]
	for i := 0; i < nb; i++ {
		sc.choice = append(sc.choice, int(sc.emptyIdx[i]))
	}
	choice := sc.choice
	sc.used.Zero() // empty bundles contribute no terms
	for r := 0; r < rounds; r++ {
		improved := false
		bestGain := 1e-12
		bestBidder, bestLocal := -1, int32(-1)
		for i := 0; i < nb; i++ {
			cur := sc.bundleAt(i, int32(choice[i]))
			sc.subTerms(cur)
			for local := int32(0); local < sc.boff[i+1]-sc.boff[i]; local++ {
				bun := sc.bundleAt(i, local)
				if bun.value <= cur.value {
					continue
				}
				if !sc.fitsTerms(bun) {
					continue
				}
				gain := bun.logValue - cur.logValue
				if gain > bestGain {
					bestGain, bestBidder, bestLocal = gain, i, local
				}
			}
			sc.addTerms(cur)
		}
		if bestBidder >= 0 {
			sc.subTerms(sc.bundleAt(bestBidder, int32(choice[bestBidder])))
			choice[bestBidder] = int(bestLocal)
			sc.addTerms(sc.bundleAt(bestBidder, bestLocal))
			improved = true
		}
		if !improved {
			if a, local, victim, ok := sc.findPairMove(); ok {
				pairMoveCount.Inc()
				sc.subTerms(sc.bundleAt(victim, int32(choice[victim])))
				choice[victim] = int(sc.emptyIdx[victim])
				sc.subTerms(sc.bundleAt(a, int32(choice[a])))
				choice[a] = int(local)
				sc.addTerms(sc.bundleAt(a, local))
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// findPairMove looks for the best "bidder a upgrades while victim v falls
// back to empty" move that improves the objective.
func (sc *scratch) findPairMove() (a int, local int32, victim int, ok bool) {
	nb := len(sc.norm)
	choice := sc.choice
	bestGain := 1e-12
	a, local, victim = -1, -1, -1
	for i := 0; i < nb; i++ {
		curA := sc.bundleAt(i, int32(choice[i]))
		for v := 0; v < nb; v++ {
			if v == i {
				continue
			}
			curV := sc.bundleAt(v, int32(choice[v]))
			if curV.total == 0 {
				continue
			}
			sc.subTerms(curA)
			sc.subTerms(curV)
			lossV := curV.logValue - sc.bundleAt(v, sc.emptyIdx[v]).logValue
			for bi := int32(0); bi < sc.boff[i+1]-sc.boff[i]; bi++ {
				bun := sc.bundleAt(i, bi)
				if !sc.fitsTerms(bun) {
					continue
				}
				gain := bun.logValue - curA.logValue - lossV
				if gain > bestGain {
					bestGain, a, local, victim, ok = gain, i, bi, v, true
				}
			}
			sc.addTerms(curV)
			sc.addTerms(curA)
		}
	}
	return a, local, victim, ok
}

// result materialises the Assignment from the per-bidder choices and returns
// it with the index-ordered objective (deterministic, unlike the previous
// map-order summation).
func (sc *scratch) result() (Assignment, float64) {
	asg := make(Assignment, len(sc.norm))
	obj := 0.0
	for i, b := range sc.norm {
		local := sc.choice[i]
		asg[b.ID] = b.Bundles[local]
		obj += sc.bundleAt(i, int32(local)).logValue
	}
	return asg, obj
}
