// Package solver computes the proportionally fair winner determination at
// the heart of the partial allocation mechanism (§5.1, Pseudocode 2 line 6):
// given each bidding app's valuation for a set of candidate GPU bundles,
// pick one bundle per app — subject to per-machine capacity — maximising the
// product of valuations (equivalently the sum of log valuations).
//
// The paper solves this with Gurobi; this package substitutes an exact
// branch-and-bound search for small instances and a greedy + local-search
// heuristic for large ones. Auction instances are small (the offer is the
// currently free GPUs and only the worst 1−f fraction of apps bid), so the
// exact path covers the common case.
package solver

import (
	"fmt"
	"math"

	"themis/internal/cluster"
	"themis/internal/telemetry"
)

// Solver selection counters: the exact-vs-greedy split tells an operator
// whether auction instances are staying under ExactLimit (where the solution
// is provably optimal) or spilling into the heuristic. Single atomic adds —
// the solver runs inside the allocation-free auction round.
var (
	solveExactCount  = telemetry.Default().Counter("themis_solver_solves_total", "Winner-determination solves by mode.", telemetry.L("mode", "exact"))
	solveGreedyCount = telemetry.Default().Counter("themis_solver_solves_total", "Winner-determination solves by mode.", telemetry.L("mode", "greedy"))
	pairMoveCount    = telemetry.Default().Counter("themis_solver_pair_moves_total", "Pair moves applied by the greedy local search (a bidder upgrades while a victim reverts to empty).")
)

// Bundle is one row of a bidder's valuation table: an allocation and the
// bidder's value for receiving it (higher is better, must be positive).
type Bundle struct {
	Alloc cluster.Alloc
	Value float64
}

// Bidder is one participating app with its candidate bundles. Bundles must
// include a zero-allocation row describing the bidder's value if it wins
// nothing; Normalize adds one if missing.
type Bidder struct {
	ID      string
	Bundles []Bundle
}

// Normalize ensures the bidder has an empty-allocation bundle and that all
// values are positive; non-positive values are clamped to a tiny epsilon so
// the log-objective stays finite.
func (b *Bidder) Normalize() {
	const eps = 1e-12
	hasEmpty := false
	for i := range b.Bundles {
		if b.Bundles[i].Value < eps {
			b.Bundles[i].Value = eps
		}
		if b.Bundles[i].Alloc.Total() == 0 {
			hasEmpty = true
		}
	}
	if !hasEmpty {
		b.Bundles = append(b.Bundles, Bundle{Alloc: cluster.NewAlloc(), Value: eps})
	}
}

// Assignment maps bidder ID to the chosen bundle.
type Assignment map[string]Bundle

// Objective returns the sum of log valuations of an assignment.
func (a Assignment) Objective() float64 {
	var sum float64
	for _, b := range a {
		sum += math.Log(b.Value)
	}
	return sum
}

// TotalAlloc returns the union of allocations in the assignment.
func (a Assignment) TotalAlloc() cluster.Alloc {
	out := cluster.NewAlloc()
	for _, b := range a {
		out = out.Add(b.Alloc)
	}
	return out
}

// Options tunes the solver.
type Options struct {
	// ExactLimit is the largest search-space size (product of per-bidder
	// bundle counts) for which the exact branch-and-bound runs; larger
	// instances use the heuristic. Zero uses DefaultExactLimit.
	ExactLimit int
	// LocalSearchRounds bounds the improvement rounds of the heuristic.
	// Zero uses DefaultLocalSearchRounds.
	LocalSearchRounds int
}

// Defaults for Options.
const (
	DefaultExactLimit        = 200000
	DefaultLocalSearchRounds = 64
)

func (o Options) withDefaults() Options {
	if o.ExactLimit <= 0 {
		o.ExactLimit = DefaultExactLimit
	}
	if o.LocalSearchRounds <= 0 {
		o.LocalSearchRounds = DefaultLocalSearchRounds
	}
	return o
}

// Solve picks one bundle per bidder maximising Σ log(value) subject to the
// per-machine capacity. Every bidder appears in the result (possibly with
// its empty bundle). The second return value is the achieved objective,
// summed in bidder index order so repeated runs return identical bits.
//
// Solve never mutates the caller's bidders: normalization deep-copies each
// bidder's bundle slice into pooled scratch storage before clamping values
// or appending the empty row. The search itself runs on the dense compiled
// instance (see dense.go); the sparse maps in the returned Assignment are
// the caller's own bundle allocations, untouched.
func Solve(capacity cluster.Alloc, bidders []Bidder, opts Options) (Assignment, float64, error) {
	opts = opts.withDefaults()
	sc := getScratch()
	defer sc.release()
	if err := sc.validate(capacity, bidders); err != nil {
		return nil, 0, err
	}
	sc.normalize(bidders)
	sc.compile(capacity)
	space := 1
	exact := true
	for _, b := range sc.norm {
		if space > opts.ExactLimit/len(b.Bundles) {
			exact = false
			break
		}
		space *= len(b.Bundles)
	}
	if exact && space <= opts.ExactLimit {
		solveExactCount.Inc()
		sc.solveExact()
	} else {
		solveGreedyCount.Inc()
		sc.solveGreedy(opts.LocalSearchRounds)
	}
	asg, obj := sc.result()
	return asg, obj, nil
}

func (sc *scratch) validate(capacity cluster.Alloc, bidders []Bidder) error {
	if sc.seen == nil {
		sc.seen = make(map[string]bool, len(bidders))
	}
	clear(sc.seen)
	seen := sc.seen
	for _, b := range bidders {
		if b.ID == "" {
			return fmt.Errorf("solver: bidder with empty ID")
		}
		if seen[b.ID] {
			return fmt.Errorf("solver: duplicate bidder %q", b.ID)
		}
		seen[b.ID] = true
		for _, bun := range b.Bundles {
			for m, n := range bun.Alloc {
				if n < 0 {
					return fmt.Errorf("solver: bidder %q bundle with negative GPUs on machine %d", b.ID, m)
				}
				if n > capacity[m] {
					return fmt.Errorf("solver: bidder %q bundle wants %d GPUs on machine %d, capacity %d", b.ID, n, m, capacity[m])
				}
			}
		}
	}
	return nil
}
