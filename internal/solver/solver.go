// Package solver computes the proportionally fair winner determination at
// the heart of the partial allocation mechanism (§5.1, Pseudocode 2 line 6):
// given each bidding app's valuation for a set of candidate GPU bundles,
// pick one bundle per app — subject to per-machine capacity — maximising the
// product of valuations (equivalently the sum of log valuations).
//
// The paper solves this with Gurobi; this package substitutes an exact
// branch-and-bound search for small instances and a greedy + local-search
// heuristic for large ones. Auction instances are small (the offer is the
// currently free GPUs and only the worst 1−f fraction of apps bid), so the
// exact path covers the common case.
package solver

import (
	"fmt"
	"math"
	"sort"

	"themis/internal/cluster"
)

// Bundle is one row of a bidder's valuation table: an allocation and the
// bidder's value for receiving it (higher is better, must be positive).
type Bundle struct {
	Alloc cluster.Alloc
	Value float64
}

// Bidder is one participating app with its candidate bundles. Bundles must
// include a zero-allocation row describing the bidder's value if it wins
// nothing; Normalize adds one if missing.
type Bidder struct {
	ID      string
	Bundles []Bundle
}

// Normalize ensures the bidder has an empty-allocation bundle and that all
// values are positive; non-positive values are clamped to a tiny epsilon so
// the log-objective stays finite.
func (b *Bidder) Normalize() {
	const eps = 1e-12
	hasEmpty := false
	for i := range b.Bundles {
		if b.Bundles[i].Value < eps {
			b.Bundles[i].Value = eps
		}
		if b.Bundles[i].Alloc.Total() == 0 {
			hasEmpty = true
		}
	}
	if !hasEmpty {
		b.Bundles = append(b.Bundles, Bundle{Alloc: cluster.NewAlloc(), Value: eps})
	}
}

// Assignment maps bidder ID to the chosen bundle.
type Assignment map[string]Bundle

// Objective returns the sum of log valuations of an assignment.
func (a Assignment) Objective() float64 {
	var sum float64
	for _, b := range a {
		sum += math.Log(b.Value)
	}
	return sum
}

// TotalAlloc returns the union of allocations in the assignment.
func (a Assignment) TotalAlloc() cluster.Alloc {
	out := cluster.NewAlloc()
	for _, b := range a {
		out = out.Add(b.Alloc)
	}
	return out
}

// Options tunes the solver.
type Options struct {
	// ExactLimit is the largest search-space size (product of per-bidder
	// bundle counts) for which the exact branch-and-bound runs; larger
	// instances use the heuristic. Zero uses DefaultExactLimit.
	ExactLimit int
	// LocalSearchRounds bounds the improvement rounds of the heuristic.
	// Zero uses DefaultLocalSearchRounds.
	LocalSearchRounds int
}

// Defaults for Options.
const (
	DefaultExactLimit        = 200000
	DefaultLocalSearchRounds = 64
)

func (o Options) withDefaults() Options {
	if o.ExactLimit <= 0 {
		o.ExactLimit = DefaultExactLimit
	}
	if o.LocalSearchRounds <= 0 {
		o.LocalSearchRounds = DefaultLocalSearchRounds
	}
	return o
}

// Solve picks one bundle per bidder maximising Σ log(value) subject to the
// per-machine capacity. Every bidder appears in the result (possibly with
// its empty bundle). The second return value is the achieved objective.
func Solve(capacity cluster.Alloc, bidders []Bidder, opts Options) (Assignment, float64, error) {
	opts = opts.withDefaults()
	if err := validate(capacity, bidders); err != nil {
		return nil, 0, err
	}
	norm := make([]Bidder, len(bidders))
	copy(norm, bidders)
	for i := range norm {
		norm[i].Normalize()
	}
	space := 1
	exact := true
	for _, b := range norm {
		if space > opts.ExactLimit/len(b.Bundles) {
			exact = false
			break
		}
		space *= len(b.Bundles)
	}
	var asg Assignment
	if exact && space <= opts.ExactLimit {
		asg = solveExact(capacity, norm)
	} else {
		asg = solveGreedy(capacity, norm, opts.LocalSearchRounds)
	}
	return asg, asg.Objective(), nil
}

func validate(capacity cluster.Alloc, bidders []Bidder) error {
	seen := make(map[string]bool, len(bidders))
	for _, b := range bidders {
		if b.ID == "" {
			return fmt.Errorf("solver: bidder with empty ID")
		}
		if seen[b.ID] {
			return fmt.Errorf("solver: duplicate bidder %q", b.ID)
		}
		seen[b.ID] = true
		for _, bun := range b.Bundles {
			for m, n := range bun.Alloc {
				if n < 0 {
					return fmt.Errorf("solver: bidder %q bundle with negative GPUs on machine %d", b.ID, m)
				}
				if n > capacity[m] {
					return fmt.Errorf("solver: bidder %q bundle wants %d GPUs on machine %d, capacity %d", b.ID, n, m, capacity[m])
				}
			}
		}
	}
	return nil
}

// solveExact runs depth-first branch and bound over bundle choices.
func solveExact(capacity cluster.Alloc, bidders []Bidder) Assignment {
	// Order bidders by decreasing best-value spread to tighten pruning.
	order := make([]int, len(bidders))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return bundleSpread(bidders[order[a]]) > bundleSpread(bidders[order[b]])
	})
	// maxLog[i] is the best achievable log-value from bidder order[i] onward.
	maxLog := make([]float64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		best := math.Inf(-1)
		for _, bun := range bidders[order[i]].Bundles {
			if l := math.Log(bun.Value); l > best {
				best = l
			}
		}
		maxLog[i] = maxLog[i+1] + best
	}

	bestObj := math.Inf(-1)
	var bestChoice []int
	choice := make([]int, len(order))
	used := cluster.NewAlloc()

	var dfs func(depth int, obj float64)
	dfs = func(depth int, obj float64) {
		if obj+maxLog[depth] <= bestObj {
			return // cannot beat the incumbent
		}
		if depth == len(order) {
			bestObj = obj
			bestChoice = append([]int(nil), choice...)
			return
		}
		b := bidders[order[depth]]
		// Try higher-value bundles first so good incumbents appear early.
		idx := make([]int, len(b.Bundles))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return b.Bundles[idx[x]].Value > b.Bundles[idx[y]].Value })
		for _, bi := range idx {
			bun := b.Bundles[bi]
			if !fits(used, bun.Alloc, capacity) {
				continue
			}
			for m, n := range bun.Alloc {
				used[m] += n
			}
			choice[depth] = bi
			dfs(depth+1, obj+math.Log(bun.Value))
			for m, n := range bun.Alloc {
				used[m] -= n
				if used[m] == 0 {
					delete(used, m)
				}
			}
		}
	}
	dfs(0, 0)

	asg := make(Assignment, len(bidders))
	if bestChoice == nil {
		// Only possible if even all-empty is infeasible, which cannot happen;
		// fall back to empty bundles defensively.
		for _, b := range bidders {
			asg[b.ID] = emptyBundle(b)
		}
		return asg
	}
	for d, oi := range order {
		asg[bidders[oi].ID] = bidders[oi].Bundles[bestChoice[d]]
	}
	return asg
}

func bundleSpread(b Bidder) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, bun := range b.Bundles {
		if bun.Value < lo {
			lo = bun.Value
		}
		if bun.Value > hi {
			hi = bun.Value
		}
	}
	return math.Log(hi) - math.Log(lo)
}

func emptyBundle(b Bidder) Bundle {
	for _, bun := range b.Bundles {
		if bun.Alloc.Total() == 0 {
			return bun
		}
	}
	return Bundle{Alloc: cluster.NewAlloc(), Value: 1e-12}
}

// solveGreedy starts every bidder at its empty bundle and repeatedly applies
// the single-bidder bundle change with the largest feasible objective gain,
// followed by local-search passes that also consider reverting other bidders
// to their empty bundles to make room.
func solveGreedy(capacity cluster.Alloc, bidders []Bidder, rounds int) Assignment {
	asg := make(Assignment, len(bidders))
	for _, b := range bidders {
		asg[b.ID] = emptyBundle(b)
	}
	byID := make(map[string]Bidder, len(bidders))
	for _, b := range bidders {
		byID[b.ID] = b
	}
	for r := 0; r < rounds; r++ {
		improved := false
		// Single-bidder improvement.
		used := asg.TotalAlloc()
		bestGain := 1e-12
		var bestID string
		var bestBundle Bundle
		for id, cur := range asg {
			without, err := used.Sub(cur.Alloc)
			if err != nil {
				continue
			}
			for _, bun := range byID[id].Bundles {
				if bun.Value <= cur.Value {
					continue
				}
				if !fits(without, bun.Alloc, capacity) {
					continue
				}
				gain := math.Log(bun.Value) - math.Log(cur.Value)
				if gain > bestGain {
					bestGain, bestID, bestBundle = gain, id, bun
				}
			}
		}
		if bestID != "" {
			asg[bestID] = bestBundle
			improved = true
		}
		// Pairwise move: let bidder A take a better bundle while bidder B
		// falls back to its empty bundle, if the pair improves the objective.
		if !improved {
			if id, bun, victim, ok := findPairMove(capacity, byID, asg); ok {
				asg[victim] = emptyBundle(byID[victim])
				asg[id] = bun
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return asg
}

func findPairMove(capacity cluster.Alloc, byID map[string]Bidder, asg Assignment) (id string, bundle Bundle, victim string, ok bool) {
	used := asg.TotalAlloc()
	bestGain := 1e-12
	for a, curA := range asg {
		for v, curV := range asg {
			if a == v || curV.Alloc.Total() == 0 {
				continue
			}
			freed, err := used.Sub(curA.Alloc)
			if err != nil {
				continue
			}
			freed, err = freed.Sub(curV.Alloc)
			if err != nil {
				continue
			}
			lossV := math.Log(curV.Value) - math.Log(emptyBundle(byID[v]).Value)
			for _, bun := range byID[a].Bundles {
				if !fits(freed, bun.Alloc, capacity) {
					continue
				}
				gain := math.Log(bun.Value) - math.Log(curA.Value) - lossV
				if gain > bestGain {
					bestGain, id, bundle, victim, ok = gain, a, bun, v, true
				}
			}
		}
	}
	return id, bundle, victim, ok
}

// fits reports whether adding alloc to used stays within capacity.
func fits(used, alloc, capacity cluster.Alloc) bool {
	for m, n := range alloc {
		if used[m]+n > capacity[m] {
			return false
		}
	}
	return true
}
