package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"themis/internal/cluster"
)

func TestSolveSimpleWinner(t *testing.T) {
	capacity := cluster.Alloc{0: 4}
	bidders := []Bidder{
		{ID: "a", Bundles: []Bundle{
			{Alloc: cluster.Alloc{0: 4}, Value: 10},
			{Alloc: cluster.NewAlloc(), Value: 1},
		}},
		{ID: "b", Bundles: []Bundle{
			{Alloc: cluster.Alloc{0: 4}, Value: 2},
			{Alloc: cluster.NewAlloc(), Value: 1},
		}},
	}
	asg, obj, err := Solve(capacity, bidders, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if asg["a"].Alloc.Total() != 4 || asg["b"].Alloc.Total() != 0 {
		t.Errorf("high-value bidder should win: %v", asg)
	}
	if math.Abs(obj-math.Log(10)) > 1e-9 {
		t.Errorf("objective = %v, want log 10", obj)
	}
}

func TestSolveSplitsAcrossMachines(t *testing.T) {
	capacity := cluster.Alloc{0: 2, 1: 2}
	bidders := []Bidder{
		{ID: "a", Bundles: []Bundle{
			{Alloc: cluster.Alloc{0: 2}, Value: 5},
			{Alloc: cluster.Alloc{0: 2, 1: 2}, Value: 6},
			{Alloc: cluster.NewAlloc(), Value: 1},
		}},
		{ID: "b", Bundles: []Bundle{
			{Alloc: cluster.Alloc{1: 2}, Value: 5},
			{Alloc: cluster.NewAlloc(), Value: 1},
		}},
	}
	asg, _, err := Solve(capacity, bidders, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Splitting (5×5=25) beats giving everything to a (6×1=6).
	if asg["a"].Alloc.Total() != 2 || asg["b"].Alloc.Total() != 2 {
		t.Errorf("expected split allocation, got %v", asg)
	}
}

func TestSolveRespectsCapacity(t *testing.T) {
	capacity := cluster.Alloc{0: 3}
	bidders := []Bidder{
		{ID: "a", Bundles: []Bundle{{Alloc: cluster.Alloc{0: 2}, Value: 4}, {Alloc: cluster.NewAlloc(), Value: 1}}},
		{ID: "b", Bundles: []Bundle{{Alloc: cluster.Alloc{0: 2}, Value: 4}, {Alloc: cluster.NewAlloc(), Value: 1}}},
	}
	asg, _, err := Solve(capacity, bidders, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := asg.TotalAlloc()
	if total[0] > 3 {
		t.Errorf("allocation %v exceeds capacity", total)
	}
	// Exactly one of the two identical bidders wins.
	if asg["a"].Alloc.Total()+asg["b"].Alloc.Total() != 2 {
		t.Errorf("expected exactly one winner, got %v", asg)
	}
}

func TestSolveRejectsInvalidInput(t *testing.T) {
	capacity := cluster.Alloc{0: 2}
	if _, _, err := Solve(capacity, []Bidder{{ID: ""}}, Options{}); err == nil {
		t.Error("empty bidder ID should fail")
	}
	if _, _, err := Solve(capacity, []Bidder{{ID: "a"}, {ID: "a"}}, Options{}); err == nil {
		t.Error("duplicate bidder IDs should fail")
	}
	over := []Bidder{{ID: "a", Bundles: []Bundle{{Alloc: cluster.Alloc{0: 5}, Value: 2}}}}
	if _, _, err := Solve(capacity, over, Options{}); err == nil {
		t.Error("bundle exceeding capacity should fail")
	}
	neg := []Bidder{{ID: "a", Bundles: []Bundle{{Alloc: cluster.Alloc{0: -1}, Value: 2}}}}
	if _, _, err := Solve(capacity, neg, Options{}); err == nil {
		t.Error("negative bundle should fail")
	}
}

func TestSolveAllBiddersPresent(t *testing.T) {
	capacity := cluster.Alloc{0: 1}
	bidders := []Bidder{
		{ID: "a", Bundles: []Bundle{{Alloc: cluster.Alloc{0: 1}, Value: 3}}},
		{ID: "b", Bundles: []Bundle{{Alloc: cluster.Alloc{0: 1}, Value: 2}}},
		{ID: "c", Bundles: nil},
	}
	asg, _, err := Solve(capacity, bidders, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 3 {
		t.Fatalf("assignment missing bidders: %v", asg)
	}
	if asg["c"].Alloc.Total() != 0 {
		t.Errorf("bidder without bundles should get nothing")
	}
}

func TestGreedyMatchesExactOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		nMachines := 2 + rng.Intn(3)
		capacity := cluster.NewAlloc()
		for m := 0; m < nMachines; m++ {
			capacity[cluster.MachineID(m)] = 1 + rng.Intn(4)
		}
		nBidders := 2 + rng.Intn(4)
		bidders := make([]Bidder, nBidders)
		for i := range bidders {
			nBundles := 1 + rng.Intn(4)
			b := Bidder{ID: fmt.Sprintf("b%d", i)}
			for k := 0; k < nBundles; k++ {
				alloc := cluster.NewAlloc()
				for m := 0; m < nMachines; m++ {
					if rng.Float64() < 0.5 {
						n := rng.Intn(capacity[cluster.MachineID(m)] + 1)
						if n > 0 {
							alloc[cluster.MachineID(m)] = n
						}
					}
				}
				b.Bundles = append(b.Bundles, Bundle{Alloc: alloc, Value: 1 + rng.Float64()*9})
			}
			b.Bundles = append(b.Bundles, Bundle{Alloc: cluster.NewAlloc(), Value: 1})
			bidders[i] = b
		}
		_, exactObj, err := Solve(capacity, bidders, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, greedyObj, err := Solve(capacity, bidders, Options{ExactLimit: 1}) // force heuristic
		if err != nil {
			t.Fatal(err)
		}
		if greedyObj > exactObj+1e-9 {
			t.Fatalf("trial %d: heuristic %v beat exact %v (exact is wrong)", trial, greedyObj, exactObj)
		}
		// The heuristic should come close to optimal on these small cases.
		if exactObj-greedyObj > math.Abs(exactObj)*0.35+0.7 {
			t.Errorf("trial %d: heuristic %v too far from exact %v", trial, greedyObj, exactObj)
		}
	}
}

func TestAssignmentFeasibilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		capacity := cluster.Alloc{0: 1 + rng.Intn(4), 1: 1 + rng.Intn(4), 2: rng.Intn(4)}
		nBidders := 1 + rng.Intn(8)
		bidders := make([]Bidder, nBidders)
		for i := range bidders {
			b := Bidder{ID: fmt.Sprintf("b%d", i)}
			for k := 0; k < 1+rng.Intn(5); k++ {
				alloc := cluster.NewAlloc()
				for m := cluster.MachineID(0); m < 3; m++ {
					if n := rng.Intn(capacity[m] + 1); n > 0 && rng.Float64() < 0.6 {
						alloc[m] = n
					}
				}
				b.Bundles = append(b.Bundles, Bundle{Alloc: alloc, Value: 0.5 + rng.Float64()*5})
			}
			bidders[i] = b
		}
		asg, _, err := Solve(capacity, bidders, Options{})
		if err != nil {
			t.Fatal(err)
		}
		total := asg.TotalAlloc()
		for m, n := range total {
			if n > capacity[m] {
				t.Fatalf("trial %d: machine %d allocated %d > capacity %d", trial, m, n, capacity[m])
			}
		}
		if len(asg) != nBidders {
			t.Fatalf("trial %d: assignment has %d bidders, want %d", trial, len(asg), nBidders)
		}
	}
}
