package schedulers

import (
	"fmt"
	"math"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/hyperparam"
	"themis/internal/placement"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Strawman is the "online strawman" the paper describes and rejects in §4:
// at every lease boundary the Arbiter simply hands all available GPUs to the
// single app with the worst finish-time fairness estimate. It tracks ρ like
// Themis but has neither the auction's placement-efficiency pressure nor its
// truth-telling incentives, and it allocates without regard to how well the
// winner can actually use or place the GPUs. It exists as a reference point
// for experiments and ablations.
type Strawman struct {
	estimators map[workload.AppID]*core.RhoEstimator
	tuners     map[workload.AppID]hyperparam.Tuner
}

// NewStrawman returns the §4 strawman policy.
func NewStrawman() *Strawman {
	return &Strawman{
		estimators: make(map[workload.AppID]*core.RhoEstimator),
		tuners:     make(map[workload.AppID]hyperparam.Tuner),
	}
}

// Name implements sim.Policy.
func (*Strawman) Name() string { return "strawman-ftf" }

// Allocate gives every free GPU (up to its demand) to the app with the
// worst current ρ, then repeats with the next-worst app while GPUs remain.
func (s *Strawman) Allocate(now float64, free cluster.Alloc, view *sim.View) (map[workload.AppID]cluster.Alloc, error) {
	out := make(map[workload.AppID]cluster.Alloc)
	remaining := free.Clone()
	demand := demandOf(view)
	granted := make(map[workload.AppID]bool)

	for remaining.Total() > 0 {
		var worst *sim.AppState
		worstRho := math.Inf(-1)
		for _, st := range view.Apps {
			if granted[st.App.ID] || demand[st.App.ID] <= 0 {
				continue
			}
			rho := s.estimatorFor(view, st).CurrentRho(now, st.Held)
			if rho > worstRho {
				worst, worstRho = st, rho
			}
		}
		if worst == nil {
			break
		}
		granted[worst.App.ID] = true
		alloc := placement.Pick(view.Topo, remaining, worst.Held, demand[worst.App.ID])
		if alloc.Total() == 0 {
			continue
		}
		mergeGrant(out, worst.App.ID, alloc)
		var err error
		remaining, err = remaining.Sub(alloc)
		if err != nil {
			return nil, fmt.Errorf("strawman over-allocated: %w", err)
		}
	}
	return out, nil
}

func (s *Strawman) estimatorFor(view *sim.View, st *sim.AppState) *core.RhoEstimator {
	est, ok := s.estimators[st.App.ID]
	if !ok {
		est = core.NewRhoEstimator(view.Topo, st.App, st.Tuner)
		s.estimators[st.App.ID] = est
	}
	return est
}
