package schedulers

import (
	"context"
	"os"
	"testing"
	"time"

	"themis/internal/cluster"
	"themis/internal/sim"
	"themis/internal/trace"
)

// TestTiresiasConstrainedTraceTerminates is the regression test for the
// tiresias infinite loop on constrained traces: philly-small's j-3 carries a
// min-2-GPUs-per-machine constraint, and tiresias's spread-first placement
// kept offering it one GPU per machine — a shape the job can never run on —
// so a horizonless run churned leases forever. The constrained-grant repair
// in the simulator now re-picks such grants (or withholds them), so the run
// must terminate on its own, with the constrained app actually finishing.
func TestTiresiasConstrainedTraceTerminates(t *testing.T) {
	f, err := os.Open("../trace/testdata/v1/philly-small.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	apps, err := tr.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{
		Topology: cluster.TestbedCluster(),
		Apps:     apps,
		Policy:   NewTiresias(),
		// Deliberately no Horizon: termination is the property under test.
	})
	if err != nil {
		t.Fatal(err)
	}
	// The timeout turns a regression back into a loop failure instead of a
	// hung test binary.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := s.Run(ctx)
	if err != nil {
		t.Fatalf("horizonless tiresias run on philly-small did not terminate cleanly: %v", err)
	}
	for _, rec := range res.Apps {
		if rec.FinishTime < 0 {
			t.Errorf("app %s never finished (finish=%v); constrained grants are being stranded again", rec.App, rec.FinishTime)
		}
	}
}
