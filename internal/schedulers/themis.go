// Package schedulers provides the cross-app scheduling policies evaluated in
// the paper, all implementing the simulator's Policy interface: Themis
// itself (finish-time-fair partial-allocation auctions) and the three
// baselines the paper compares against — Gandiva (introspective greedy
// placement), Tiresias (least attained service) and SLAQ (maximise aggregate
// loss reduction) — modelled exactly as §8 describes their emulation, plus a
// plain resource-fair (DRF-style) reference policy.
package schedulers

import (
	"fmt"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/estimator"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Themis is the paper's scheduler: a semi-optimistic two-level design in
// which the Arbiter offers free GPUs to the worst 1−f fraction of apps by
// finish-time fairness and runs a truthful partial-allocation auction over
// their bids (§3–§5).
type Themis struct {
	cfg core.Config
	// BidErrorTheta perturbs agents' ρ estimates by ±θ (Figure 11); zero
	// disables perturbation.
	BidErrorTheta float64
	// ErrorSeed seeds the per-agent error models.
	ErrorSeed int64
	// PlacementBlind makes every Agent bid on spread (placement-oblivious)
	// GPU subsets; used only by the ablation benchmarks.
	PlacementBlind bool

	arbiter *core.Arbiter
	agents  map[workload.AppID]*core.Agent
	nextErr int64
}

// NewThemis returns a Themis policy with the given arbiter configuration.
// The configuration is validated here, at construction time, so an invalid
// fairness knob or lease duration surfaces as an error before any simulation
// starts instead of aborting the first auction round.
func NewThemis(cfg core.Config) (*Themis, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("schedulers: invalid Themis configuration: %w", err)
	}
	return &Themis{cfg: cfg, agents: make(map[workload.AppID]*core.Agent)}, nil
}

// Name implements sim.Policy.
func (t *Themis) Name() string { return "themis" }

// Arbiter exposes the underlying arbiter (for overhead statistics); it is
// nil until the first allocation.
func (t *Themis) Arbiter() *core.Arbiter { return t.arbiter }

// Allocate implements sim.Policy by running one Themis auction round.
func (t *Themis) Allocate(now float64, free cluster.Alloc, view *sim.View) (map[workload.AppID]cluster.Alloc, error) {
	if t.arbiter == nil {
		arb, err := core.NewArbiter(view.Topo, t.cfg)
		if err != nil {
			return nil, fmt.Errorf("schedulers: building arbiter: %w", err)
		}
		t.arbiter = arb
	}
	states := make([]core.AgentState, 0, len(view.Apps))
	for _, st := range view.Apps {
		states = append(states, core.AgentState{Agent: t.agentFor(view, st), Current: st.Held})
	}
	decisions, err := t.arbiter.OfferResources(now, free, states)
	if err != nil {
		return nil, fmt.Errorf("schedulers: Themis auction failed: %w", err)
	}
	out := make(map[workload.AppID]cluster.Alloc)
	for _, d := range decisions {
		out[d.App] = out[d.App].Add(d.Alloc)
	}
	return out, nil
}

func (t *Themis) agentFor(view *sim.View, st *sim.AppState) *core.Agent {
	ag, ok := t.agents[st.App.ID]
	if ok {
		return ag
	}
	var errs *estimator.ErrorModel
	if t.BidErrorTheta > 0 {
		t.nextErr++
		errs = estimator.NewErrorModel(t.BidErrorTheta, t.ErrorSeed+t.nextErr)
	}
	ag = core.NewAgent(view.Topo, st.App, st.Tuner, errs)
	ag.PlacementBlind = t.PlacementBlind
	t.agents[st.App.ID] = ag
	return ag
}
