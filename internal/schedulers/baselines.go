package schedulers

import (
	"fmt"
	"sort"

	"themis/internal/cluster"
	"themis/internal/estimator"
	"themis/internal/placement"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Gandiva models Xiao et al.'s introspective cluster scheduler as the paper
// does (§8): every app reports the placement score it would obtain from the
// offered GPUs, and a greedy placement algorithm maximises aggregate
// placement score at every lease boundary. Gandiva has no fairness
// objective. (GPU time-slicing is deliberately not modelled, as in the
// paper, since it would benefit all schemes equally.)
type Gandiva struct{}

// NewGandiva returns the Gandiva baseline policy.
func NewGandiva() *Gandiva { return &Gandiva{} }

// Name implements sim.Policy.
func (*Gandiva) Name() string { return "gandiva" }

// Allocate greedily hands gang-sized chunks to whichever app places them
// best, repeating until demand or supply is exhausted.
func (*Gandiva) Allocate(now float64, free cluster.Alloc, view *sim.View) (map[workload.AppID]cluster.Alloc, error) {
	out := make(map[workload.AppID]cluster.Alloc)
	remaining := free.Clone()
	demand := demandOf(view)
	for remaining.Total() > 0 {
		type candidate struct {
			st    *sim.AppState
			alloc cluster.Alloc
			score float64
		}
		var best *candidate
		for _, st := range view.Apps {
			unmet := demand[st.App.ID]
			if unmet <= 0 {
				continue
			}
			chunk := chunkFor(st, unmet)
			anchor := st.Held.Add(out[st.App.ID])
			alloc := placement.Pick(view.Topo, remaining, anchor, chunk)
			if alloc.Total() == 0 {
				continue
			}
			score := cluster.PlacementScore(view.Topo, anchor.Add(alloc))
			if best == nil || score > best.score ||
				(score == best.score && st.App.SubmitTime < best.st.App.SubmitTime) {
				best = &candidate{st: st, alloc: alloc, score: score}
			}
		}
		if best == nil {
			break
		}
		mergeGrant(out, best.st.App.ID, best.alloc)
		demand[best.st.App.ID] -= best.alloc.Total()
		var err error
		remaining, err = remaining.Sub(best.alloc)
		if err != nil {
			return nil, fmt.Errorf("gandiva over-allocated: %w", err)
		}
	}
	return out, nil
}

// Tiresias models Gu et al.'s least-attained-service (LAS) discipline as the
// paper does (§8): apps report their total GPU service so far and the GPUs
// go to the apps with the least attained service. The policy is placement
// unaware, so chunks are picked spread across machines.
type Tiresias struct{}

// NewTiresias returns the Tiresias baseline policy.
func NewTiresias() *Tiresias { return &Tiresias{} }

// Name implements sim.Policy.
func (*Tiresias) Name() string { return "tiresias" }

// Allocate assigns gang-sized chunks to apps in ascending order of attained
// GPU service until supply or demand runs out.
func (*Tiresias) Allocate(now float64, free cluster.Alloc, view *sim.View) (map[workload.AppID]cluster.Alloc, error) {
	out := make(map[workload.AppID]cluster.Alloc)
	remaining := free.Clone()
	demand := demandOf(view)

	service := make(map[workload.AppID]float64, len(view.Apps))
	for _, st := range view.Apps {
		service[st.App.ID] = st.AttainedService()
	}
	for remaining.Total() > 0 {
		// Pick the app with least attained service (counting what it has
		// been granted this round as if already consumed, so one app does
		// not absorb the entire pool in a single round).
		var best *sim.AppState
		for _, st := range view.Apps {
			if demand[st.App.ID] <= 0 {
				continue
			}
			if best == nil || service[st.App.ID] < service[best.App.ID] ||
				(service[st.App.ID] == service[best.App.ID] && st.App.SubmitTime < best.App.SubmitTime) {
				best = st
			}
		}
		if best == nil {
			break
		}
		chunk := chunkFor(best, demand[best.App.ID])
		alloc := spreadPick(remaining, chunk)
		if alloc.Total() == 0 {
			break
		}
		mergeGrant(out, best.App.ID, alloc)
		demand[best.App.ID] -= alloc.Total()
		// Bias future picks away from this app proportionally to the grant.
		service[best.App.ID] += float64(alloc.Total())
		var err error
		remaining, err = remaining.Sub(alloc)
		if err != nil {
			return nil, fmt.Errorf("tiresias over-allocated: %w", err)
		}
	}
	return out, nil
}

// SLAQ models Zhang et al.'s quality-driven scheduler as the paper does
// (§8): every app reports the decrease in loss it would obtain from the
// offered GPUs and the scheduler maximises the aggregate loss reduction. It
// is fairness- and placement-unaware.
type SLAQ struct {
	// WindowMinutes is the horizon over which marginal loss reduction is
	// evaluated (defaults to a lease length).
	WindowMinutes float64

	curves map[workload.JobID]estimator.LossCurve
}

// NewSLAQ returns the SLAQ baseline policy.
func NewSLAQ() *SLAQ {
	return &SLAQ{WindowMinutes: 20, curves: make(map[workload.JobID]estimator.LossCurve)}
}

// Name implements sim.Policy.
func (*SLAQ) Name() string { return "slaq" }

// Allocate repeatedly grants a gang-sized chunk to the app whose best active
// trial would reduce its loss the most over the next window given that
// chunk.
func (s *SLAQ) Allocate(now float64, free cluster.Alloc, view *sim.View) (map[workload.AppID]cluster.Alloc, error) {
	out := make(map[workload.AppID]cluster.Alloc)
	remaining := free.Clone()
	demand := demandOf(view)
	granted := make(map[workload.AppID]int)

	for remaining.Total() > 0 {
		var best *sim.AppState
		bestGain := 0.0
		for _, st := range view.Apps {
			if demand[st.App.ID] <= 0 {
				continue
			}
			chunk := chunkFor(st, demand[st.App.ID])
			gain := s.lossReduction(st, st.Held.Total()+granted[st.App.ID], chunk)
			if best == nil || gain > bestGain ||
				(gain == bestGain && st.App.SubmitTime < best.App.SubmitTime) {
				best, bestGain = st, gain
			}
		}
		if best == nil {
			break
		}
		chunk := chunkFor(best, demand[best.App.ID])
		alloc := spreadPick(remaining, chunk)
		if alloc.Total() == 0 {
			break
		}
		mergeGrant(out, best.App.ID, alloc)
		demand[best.App.ID] -= alloc.Total()
		granted[best.App.ID] += alloc.Total()
		var err error
		remaining, err = remaining.Sub(alloc)
		if err != nil {
			return nil, fmt.Errorf("slaq over-allocated: %w", err)
		}
	}
	return out, nil
}

// lossReduction estimates the loss decrease the app's best-progressing trial
// would achieve over the policy window if the app went from have to
// have+extra GPUs.
func (s *SLAQ) lossReduction(st *sim.AppState, have, extra int) float64 {
	window := s.WindowMinutes
	if window <= 0 {
		window = 20
	}
	bestGain := 0.0
	for _, j := range st.App.ActiveJobs() {
		curve, ok := s.curves[j.ID]
		if !ok {
			curve = estimator.CurveForJob(j)
			s.curves[j.ID] = curve
		}
		perIterWork := j.TotalWork / float64(maxInt(j.TotalIterations, 1))
		done := j.IterationsDone()
		itersWith := done + int(window*float64(have+extra)/maxFloat(perIterWork, 1e-9))
		itersWithout := done + int(window*float64(have)/maxFloat(perIterWork, 1e-9))
		gain := curve.Loss(itersWithout) - curve.Loss(itersWith)
		if gain > bestGain {
			bestGain = gain
		}
	}
	return bestGain
}

// ResourceFair is a DRF-style instantaneous resource-fair reference policy:
// it equalises GPU counts across active apps at every scheduling round,
// ignoring placement and finish times. It is not part of the paper's
// comparison set but is useful as an extra reference point in experiments.
type ResourceFair struct{}

// NewResourceFair returns the resource-fair reference policy.
func NewResourceFair() *ResourceFair { return &ResourceFair{} }

// Name implements sim.Policy.
func (*ResourceFair) Name() string { return "resource-fair" }

// Allocate gives one gang-sized chunk at a time to the app currently holding
// the fewest GPUs.
func (*ResourceFair) Allocate(now float64, free cluster.Alloc, view *sim.View) (map[workload.AppID]cluster.Alloc, error) {
	out := make(map[workload.AppID]cluster.Alloc)
	remaining := free.Clone()
	demand := demandOf(view)
	holding := make(map[workload.AppID]int, len(view.Apps))
	for _, st := range view.Apps {
		holding[st.App.ID] = st.Held.Total()
	}
	// Deterministic ordering of apps for tie-breaks.
	apps := make([]*sim.AppState, len(view.Apps))
	copy(apps, view.Apps)
	sort.Slice(apps, func(i, j int) bool { return apps[i].App.ID < apps[j].App.ID })

	for remaining.Total() > 0 {
		var best *sim.AppState
		for _, st := range apps {
			if demand[st.App.ID] <= 0 {
				continue
			}
			if best == nil || holding[st.App.ID] < holding[best.App.ID] {
				best = st
			}
		}
		if best == nil {
			break
		}
		chunk := chunkFor(best, demand[best.App.ID])
		alloc := spreadPick(remaining, chunk)
		if alloc.Total() == 0 {
			break
		}
		mergeGrant(out, best.App.ID, alloc)
		demand[best.App.ID] -= alloc.Total()
		holding[best.App.ID] += alloc.Total()
		var err error
		remaining, err = remaining.Sub(alloc)
		if err != nil {
			return nil, fmt.Errorf("resource-fair over-allocated: %w", err)
		}
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
