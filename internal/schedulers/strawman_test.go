package schedulers

import (
	"testing"

	"themis/internal/core"
	"themis/internal/metrics"
	"themis/internal/sim"
)

func TestStrawmanCompletesWorkload(t *testing.T) {
	res := runPolicy(t, NewStrawman(), 3, 8)
	if got := len(res.Finished()); got != len(res.Apps) {
		t.Errorf("strawman finished %d of %d apps", got, len(res.Apps))
	}
	if res.Policy != "strawman-ftf" {
		t.Errorf("policy name %q", res.Policy)
	}
}

// TestStrawmanVsThemisEfficiency reproduces §4's argument for auctions over
// the strawman: giving everything to the single worst-off app ignores
// placement fit, so Themis should use the cluster at least as efficiently
// (GPU time) on a placement-sensitive workload while staying comparable on
// worst-case fairness.
func TestStrawmanVsThemisEfficiency(t *testing.T) {
	themis := runPolicy(t, mustThemis(t, core.DefaultConfig()), 17, 10)
	straw := runPolicy(t, NewStrawman(), 17, 10)
	if metrics.GPUTime(themis) > metrics.GPUTime(straw)*1.15 {
		t.Errorf("Themis GPU time %v much worse than strawman %v", metrics.GPUTime(themis), metrics.GPUTime(straw))
	}
	if metrics.MaxFairness(themis) > metrics.MaxFairness(straw)*1.6 {
		t.Errorf("Themis max fairness %v much worse than strawman %v",
			metrics.MaxFairness(themis), metrics.MaxFairness(straw))
	}
}

func TestStrawmanSkipsSatisfiedApps(t *testing.T) {
	// With a single app whose demand is already met, the strawman must not
	// allocate anything further.
	res := runPolicy(t, NewStrawman(), 5, 2)
	for _, rec := range res.Apps {
		if rec.FinishTimeFairness <= 0 {
			t.Errorf("app %s has invalid rho", rec.App)
		}
	}
	var _ sim.Policy = NewStrawman() // interface conformance
}
