package schedulers

import (
	"context"
	"testing"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/placement"
	"themis/internal/sim"
	"themis/internal/workload"
)

func mustThemis(t *testing.T, cfg core.Config) *Themis {
	t.Helper()
	p, err := NewThemis(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func benchTopo(t *testing.T) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 8, GPUs: 4, SlotSize: 2}},
		MachinesPerRack: 4,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// smallTrace generates a small, fast workload for policy tests.
func smallTrace(t *testing.T, seed int64, numApps int) []*workload.App {
	t.Helper()
	cfg := workload.DefaultGeneratorConfig()
	cfg.Seed = seed
	cfg.NumApps = numApps
	cfg.MeanInterArrival = 8
	cfg.JobsPerAppMedian = 4
	cfg.MaxJobsPerApp = 8
	cfg.ShortTaskMedian = 20
	cfg.LongTaskMedian = 40
	cfg.MaxTaskDuration = 120
	apps, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return apps
}

func runPolicy(t *testing.T, policy sim.Policy, seed int64, numApps int) *sim.Result {
	t.Helper()
	topo := benchTopo(t)
	s, err := sim.New(sim.Config{
		Topology:      topo,
		Apps:          smallTrace(t, seed, numApps),
		Policy:        policy,
		LeaseDuration: 10,
		Horizon:       4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func allPolicies(t *testing.T) []sim.Policy {
	return []sim.Policy{
		mustThemis(t, core.DefaultConfig()),
		NewGandiva(),
		NewTiresias(),
		NewSLAQ(),
		NewResourceFair(),
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]bool{"themis": true, "gandiva": true, "tiresias": true, "slaq": true, "resource-fair": true}
	for _, p := range allPolicies(t) {
		if !want[p.Name()] {
			t.Errorf("unexpected policy name %q", p.Name())
		}
	}
}

func TestAllPoliciesCompleteWorkload(t *testing.T) {
	for _, p := range allPolicies(t) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res := runPolicy(t, p, 3, 8)
			finished := len(res.Finished())
			if finished != len(res.Apps) {
				t.Errorf("%s finished %d of %d apps within the horizon", p.Name(), finished, len(res.Apps))
			}
			for _, rec := range res.Apps {
				if rec.FinishTime == workload.NotFinished {
					continue
				}
				if rec.CompletionTime <= 0 {
					t.Errorf("%s: app %s completion time %v", p.Name(), rec.App, rec.CompletionTime)
				}
				if rec.FinishTimeFairness <= 0 {
					t.Errorf("%s: app %s rho %v", p.Name(), rec.App, rec.FinishTimeFairness)
				}
				if rec.PlacementScore < 0.5-1e-9 || rec.PlacementScore > 1+1e-9 {
					t.Errorf("%s: app %s placement score %v outside [0.5,1]", p.Name(), rec.App, rec.PlacementScore)
				}
			}
			if res.ClusterGPUTime <= 0 {
				t.Errorf("%s: no GPU time recorded", p.Name())
			}
		})
	}
}

func TestSpreadPick(t *testing.T) {
	free := cluster.Alloc{0: 4, 1: 4, 2: 2}
	got := spreadPick(free, 3)
	if got.Total() != 3 {
		t.Fatalf("picked %d GPUs, want 3", got.Total())
	}
	// Round-robin means the first three GPUs land on three different machines.
	if len(got.Machines()) != 3 {
		t.Errorf("spreadPick should spread across machines, got %v", got)
	}
	if got := spreadPick(free, 0); !got.IsEmpty() {
		t.Errorf("count 0 should pick nothing")
	}
	if got := spreadPick(free, 100); got.Total() != 10 {
		t.Errorf("over-ask should cap at the pool, got %d", got.Total())
	}
}

func TestGandivaPrefersPackedPlacements(t *testing.T) {
	res := runPolicy(t, NewGandiva(), 7, 8)
	resSpread := runPolicy(t, NewTiresias(), 7, 8)
	avg := func(r *sim.Result) float64 {
		var sum float64
		var n int
		for _, rec := range r.Apps {
			if rec.PlacementScore > 0 {
				sum += rec.PlacementScore
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if avg(res) < avg(resSpread) {
		t.Errorf("Gandiva average placement score %v should beat Tiresias %v", avg(res), avg(resSpread))
	}
}

func TestThemisImprovesWorstCaseFairness(t *testing.T) {
	// Placement-sensitive heavy workload: Themis should have a max rho no
	// worse than the placement-unaware LAS baseline.
	maxRho := func(r *sim.Result) float64 {
		worst := 0.0
		for _, rec := range r.Finished() {
			if rec.FinishTimeFairness > worst {
				worst = rec.FinishTimeFairness
			}
		}
		return worst
	}
	themis := runPolicy(t, mustThemis(t, core.DefaultConfig()), 11, 10)
	tiresias := runPolicy(t, NewTiresias(), 11, 10)
	if maxRho(themis) > maxRho(tiresias)*1.3 {
		t.Errorf("Themis max rho %v much worse than Tiresias %v", maxRho(themis), maxRho(tiresias))
	}
}

func TestThemisAllocationsRespectFreePool(t *testing.T) {
	topo := benchTopo(t)
	apps := smallTrace(t, 5, 6)
	policy := mustThemis(t, core.DefaultConfig())
	s, err := sim.New(sim.Config{Topology: topo, Apps: apps, Policy: policy, LeaseDuration: 10, Horizon: 3000})
	if err != nil {
		t.Fatal(err)
	}
	// The simulator panics if a policy over-allocates or conflicts, so a
	// clean run is the assertion.
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if policy.Arbiter() == nil {
		t.Fatal("arbiter never constructed")
	}
	stats := policy.Arbiter().Stats
	if stats.Auctions == 0 || stats.GPUsAuctioned == 0 {
		t.Errorf("no auctions recorded: %+v", stats)
	}
}

func TestThemisWithBidError(t *testing.T) {
	p := mustThemis(t, core.DefaultConfig())
	p.BidErrorTheta = 0.2
	p.ErrorSeed = 99
	res := runPolicy(t, p, 13, 6)
	if len(res.Finished()) != len(res.Apps) {
		t.Errorf("with 20%% bid error, %d of %d apps finished", len(res.Finished()), len(res.Apps))
	}
}

func TestChunkFor(t *testing.T) {
	app := workload.NewApp("x", 0, placement.ResNet50, []*workload.Job{
		workload.NewJob("x", 0, 100, 4),
		workload.NewJob("x", 1, 100, 2),
	})
	st := &sim.AppState{App: app}
	if got := chunkFor(st, 10); got != 4 {
		t.Errorf("chunkFor = %d, want 4 (largest gang)", got)
	}
	if got := chunkFor(st, 3); got != 3 {
		t.Errorf("chunkFor capped = %d, want 3", got)
	}
}
