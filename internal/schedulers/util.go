package schedulers

import (
	"sort"

	"themis/internal/cluster"
	"themis/internal/sim"
	"themis/internal/workload"
)

// spreadPick selects up to count GPUs from free in a placement-blind way:
// one GPU at a time, round-robin across machines. It models schedulers that
// do not reason about locality (Tiresias, SLAQ) — their allocations tend to
// straddle machines and racks.
func spreadPick(free cluster.Alloc, count int) cluster.Alloc {
	picked := cluster.NewAlloc()
	if count <= 0 || free.Total() == 0 {
		return picked
	}
	remaining := free.Clone()
	machines := remaining.Machines()
	sort.Slice(machines, func(i, j int) bool { return machines[i] < machines[j] })
	for count > 0 && remaining.Total() > 0 {
		progress := false
		for _, m := range machines {
			if count == 0 {
				break
			}
			if remaining[m] <= 0 {
				continue
			}
			picked[m]++
			remaining[m]--
			count--
			progress = true
		}
		if !progress {
			break
		}
	}
	return picked
}

// demandOf returns how many GPUs each active app can still use, keyed by ID.
func demandOf(view *sim.View) map[workload.AppID]int {
	out := make(map[workload.AppID]int, len(view.Apps))
	for _, st := range view.Apps {
		if d := st.UnmetDemand(); d > 0 {
			out[st.App.ID] = d
		}
	}
	return out
}

// chunkFor bounds a single grant: policies hand out GPUs in gang-size chunks
// (the app's typical gang), never exceeding the app's unmet demand.
func chunkFor(st *sim.AppState, unmet int) int {
	gang := 0
	for _, j := range st.App.ActiveJobs() {
		if j.GangSize > gang {
			gang = j.GangSize
		}
	}
	if gang <= 0 {
		gang = 1
	}
	if gang > unmet {
		gang = unmet
	}
	return gang
}

// mergeGrant accumulates a grant into the policy's result map.
func mergeGrant(out map[workload.AppID]cluster.Alloc, id workload.AppID, alloc cluster.Alloc) {
	if alloc.Total() == 0 {
		return
	}
	out[id] = out[id].Add(alloc)
}
