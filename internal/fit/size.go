package fit

import (
	"math"
	"sort"

	"themis/internal/workload"
)

// Job-size law selection: lognormal vs Pareto maximum likelihood over
// per-task serial durations (TotalWork / GangSize, in minutes), chosen by
// AIC, with Kolmogorov–Smirnov distances reported for both candidates.

// minSizeSamples is the sample size below which model selection is skipped
// and the lognormal default is kept (both laws fit two parameters; with
// fewer than this many durations AIC is noise).
const minSizeSamples = 8

// CandidateFit is the goodness-of-fit evidence for one size-law candidate.
type CandidateFit struct {
	// KS is the one-sample Kolmogorov–Smirnov distance between the data and
	// the fitted law.
	KS float64 `json:"ks"`
	// LogLik is the maximised log-likelihood.
	LogLik float64 `json:"log_lik"`
	// AIC is 2k − 2·LogLik with k = 2 parameters; lower is better.
	AIC float64 `json:"aic"`
	// OK marks a candidate whose MLE exists for this sample (a degenerate
	// all-equal sample has no Pareto MLE, for example).
	OK bool `json:"ok"`
}

// SizeFit is the fitted job-size law plus both candidates' evidence.
type SizeFit struct {
	// Law is the selected duration law.
	Law workload.SizePattern `json:"law"`
	// Samples is the number of task durations the fit saw.
	Samples int `json:"samples"`
	// MaxDuration is the largest observed duration (minutes); fitted configs
	// truncate there.
	MaxDuration float64 `json:"max_duration"`

	// LognormalMedian and LognormalSigma are the lognormal MLE (median in
	// minutes, log-space standard deviation).
	LognormalMedian float64      `json:"lognormal_median,omitempty"`
	LognormalSigma  float64      `json:"lognormal_sigma,omitempty"`
	Lognormal       CandidateFit `json:"lognormal"`

	// ParetoAlpha and ParetoMin are the Pareto MLE (tail index and scale in
	// minutes).
	ParetoAlpha float64      `json:"pareto_alpha,omitempty"`
	ParetoMin   float64      `json:"pareto_min,omitempty"`
	Pareto      CandidateFit `json:"pareto"`
}

// fitSize fits both candidate laws to the sorted positive durations and
// selects by AIC.
func fitSize(durations []float64, prov *Provenance) SizeFit {
	fit := SizeFit{Law: workload.SizeLognormal, Samples: len(durations)}
	if len(durations) == 0 {
		prov.note("no task durations: size law left to defaults")
		return fit
	}
	fit.MaxDuration = durations[len(durations)-1]
	n := float64(len(durations))

	// Lognormal MLE: mean and population sd of the logs.
	mu, sigma := logMoments(durations)
	fit.LognormalMedian = math.Exp(mu)
	fit.LognormalSigma = sigma
	if sigma > 0 {
		var sumLog float64
		for _, d := range durations {
			sumLog += math.Log(d)
		}
		ll := -n*math.Log(sigma*math.Sqrt(2*math.Pi)) - n/2 - sumLog
		fit.Lognormal = CandidateFit{
			KS: ksDistance(durations, func(x float64) float64 {
				return normalCDF((math.Log(x) - mu) / sigma)
			}),
			LogLik: ll,
			AIC:    4 - 2*ll,
			OK:     true,
		}
	}

	// Pareto MLE: scale = sample minimum, shape from the log-ratio sum.
	xmin := durations[0]
	var logRatio float64
	for _, d := range durations {
		logRatio += math.Log(d / xmin)
	}
	if xmin > 0 && logRatio > 0 {
		alpha := n / logRatio
		fit.ParetoAlpha = alpha
		fit.ParetoMin = xmin
		ll := n*math.Log(alpha) + n*alpha*math.Log(xmin) - (alpha+1)*(logRatio+n*math.Log(xmin))
		fit.Pareto = CandidateFit{
			KS: ksDistance(durations, func(x float64) float64 {
				if x < xmin {
					return 0
				}
				return 1 - math.Pow(xmin/x, alpha)
			}),
			LogLik: ll,
			AIC:    4 - 2*ll,
			OK:     true,
		}
	}

	switch {
	case len(durations) < minSizeSamples:
		prov.note("too few task durations for size-law selection: lognormal assumed")
	case fit.Lognormal.OK && fit.Pareto.OK && fit.Pareto.AIC < fit.Lognormal.AIC:
		fit.Law = workload.SizePareto
	case !fit.Lognormal.OK && fit.Pareto.OK:
		fit.Law = workload.SizePareto
	}
	return fit
}

// normalCDF is the standard normal cumulative distribution.
func normalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// ksDistance computes the one-sample Kolmogorov–Smirnov statistic between
// sorted data and a model CDF.
func ksDistance(sorted []float64, cdf func(float64) float64) float64 {
	n := float64(len(sorted))
	if n == 0 {
		return 0
	}
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

// KSTwoSample computes the two-sample Kolmogorov–Smirnov distance between
// two unsorted samples — the divergence metric CalibratedStudy reports for
// real-vs-fitted fairness and completion-time distributions. It returns 0
// when either sample is empty.
func KSTwoSample(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		// Advance past every sample at the next value in either sample, so
		// ties move both empirical CDFs before the gap is measured.
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		if diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs))); diff > d {
			d = diff
		}
	}
	return d
}
