package fit

import (
	"math"
	"sort"

	"themis/internal/workload"
)

// Arrival-process estimation: Poisson rate MLE, burstiness via the index of
// dispersion plus spike clustering, and diurnal day-shape estimation via
// time-of-day rate binning whose first Fourier harmonic feeds the Lewis
// thinning generator's peak-to-trough knob.

const (
	// diurnalPeriod is the day length (minutes) fitted configurations use;
	// detection is fixed to this standard period — traces periodic at other
	// frequencies classify as Poisson or bursty.
	diurnalPeriod = 1440
	// diurnalBins is the number of time-of-day rate bins the day shape is
	// estimated over (hourly).
	diurnalBins = 24
	// diurnalAmpThreshold is the minimum first-harmonic relative amplitude
	// classified as diurnal. 0.3 corresponds to a peak-to-trough ratio of
	// ~1.9 and sits far above Poisson sampling noise for the sample sizes
	// diurnal detection requires.
	diurnalAmpThreshold = 0.3
	// minDiurnalArrivals is the sample size below which the harmonic
	// amplitude is too noisy to trust (noise scales as sqrt(2/n)).
	minDiurnalArrivals = 200
	// minPatternArrivals is the sample size below which only the Poisson
	// rate is estimated.
	minPatternArrivals = 32
	// burstIoDThreshold is the minimum index of dispersion of windowed
	// arrival counts classified as bursty (1 for a Poisson process).
	burstIoDThreshold = 1.8
	// burstFractionThreshold is the minimum fraction of apps arriving inside
	// detected spikes for the bursty classification.
	burstFractionThreshold = 0.15
	// clusterGapFraction sets the spike-clustering gap threshold as a
	// fraction of the mean inter-arrival time.
	clusterGapFraction = 0.1
	// minSpikeSize is the smallest arrival cluster counted as a load spike;
	// smaller clusters are ordinary Poisson coincidences.
	minSpikeSize = 4
)

// ArrivalFit is the fitted arrival process plus the evidence behind the
// pattern choice.
type ArrivalFit struct {
	// Pattern is the selected arrival process.
	Pattern workload.ArrivalPattern `json:"pattern"`
	// Samples is the number of arrivals the fit saw.
	Samples int `json:"samples"`
	// Span is the observation window in minutes (last − first arrival).
	Span float64 `json:"span"`
	// MeanInterArrival is the rate MLE in minutes (span / (n−1) for Poisson
	// and diurnal; the background process's mean for bursty). Zero when the
	// input carries no rate information (fewer than two arrivals).
	MeanInterArrival float64 `json:"mean_interarrival"`
	// ExponentialKS is the Kolmogorov–Smirnov distance between the observed
	// inter-arrival times and the fitted exponential law — the Poisson
	// goodness-of-fit evidence.
	ExponentialKS float64 `json:"exponential_ks"`
	// IndexOfDispersion is the variance-to-mean ratio of windowed arrival
	// counts (1 for Poisson; ≫1 under bursts or strong rate modulation).
	IndexOfDispersion float64 `json:"index_of_dispersion"`
	// DiurnalAmplitude is the relative first-harmonic amplitude of the
	// time-of-day arrival rate at the standard day period.
	DiurnalAmplitude float64 `json:"diurnal_amplitude,omitempty"`
	// PeakToTrough is the day-shape ratio implied by DiurnalAmplitude.
	PeakToTrough float64 `json:"peak_to_trough,omitempty"`
	// BurstFraction, BurstApps, BurstInterval and BurstSpread are the spike
	// parameters estimated from arrival clusters (meaningful evidence even
	// when the pattern resolves to something other than bursty).
	BurstFraction float64 `json:"burst_fraction,omitempty"`
	BurstApps     float64 `json:"burst_apps,omitempty"`
	BurstInterval float64 `json:"burst_interval,omitempty"`
	BurstSpread   float64 `json:"burst_spread,omitempty"`
}

// fitArrival estimates the arrival process from sorted submission times.
func fitArrival(times []float64, prov *Provenance) ArrivalFit {
	fit := ArrivalFit{Pattern: workload.ArrivalPoisson, Samples: len(times)}
	if len(times) < 2 {
		prov.note("fewer than two arrivals: arrival rate left to defaults")
		return fit
	}
	fit.Span = times[len(times)-1] - times[0]
	if fit.Span <= 0 {
		prov.note("all arrivals simultaneous: arrival rate left to defaults")
		return fit
	}
	meanIA := fit.Span / float64(len(times)-1)
	fit.MeanInterArrival = meanIA
	fit.ExponentialKS = exponentialKS(times, meanIA)
	fit.IndexOfDispersion = indexOfDispersion(times, fit.Span)

	if len(times) < minPatternArrivals {
		prov.note("too few arrivals for pattern detection: Poisson assumed")
		return fit
	}

	clusters, clustered := spikeClusters(times, clusterGapFraction*meanIA)
	fit.BurstFraction = float64(clustered) / float64(len(times))
	if len(clusters) > 0 {
		var sizes, spreads float64
		for _, c := range clusters {
			k := float64(c.size)
			sizes += k
			// The range of k uniform points underestimates the spike window
			// by (k−1)/(k+1); invert that bias.
			spreads += (c.last - c.first) * (k + 1) / (k - 1)
		}
		fit.BurstApps = sizes / float64(len(clusters))
		fit.BurstSpread = spreads / float64(len(clusters))
		if len(clusters) > 1 {
			fit.BurstInterval = (clusters[len(clusters)-1].first - clusters[0].first) / float64(len(clusters)-1)
		} else {
			fit.BurstInterval = fit.Span
		}
	}

	if fit.Span >= diurnalPeriod && len(times) >= minDiurnalArrivals {
		fit.DiurnalAmplitude = diurnalAmplitude(times, fit.Span)
		amp := math.Min(fit.DiurnalAmplitude, 0.96)
		fit.PeakToTrough = (1 + amp) / (1 - amp)
	} else {
		prov.note("observation span or sample size too small for diurnal detection")
	}

	switch {
	case fit.DiurnalAmplitude >= diurnalAmpThreshold:
		fit.Pattern = workload.ArrivalDiurnal
	case fit.IndexOfDispersion >= burstIoDThreshold && fit.BurstFraction >= burstFractionThreshold:
		fit.Pattern = workload.ArrivalBursty
		// The fitted background rate excludes spike arrivals: the generator
		// lays down (1−BurstFraction)·n background arrivals at this mean.
		if bg := backgroundMeanIA(times, clusters); bg > 0 {
			fit.MeanInterArrival = bg
		}
	}
	return fit
}

// indexOfDispersion computes var/mean of arrival counts over equal windows
// tiling the observation span. The window count scales with the sample so the
// expected count per window stays moderate.
func indexOfDispersion(times []float64, span float64) float64 {
	bins := len(times) / 8
	if bins < 8 {
		bins = 8
	}
	if bins > 256 {
		bins = 256
	}
	counts := make([]float64, bins)
	t0 := times[0]
	for _, t := range times {
		b := int((t - t0) / span * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	m := mean(counts)
	if m == 0 {
		return 0
	}
	var ss float64
	for _, c := range counts {
		d := c - m
		ss += d * d
	}
	return ss / float64(len(counts)) / m
}

// exponentialKS is the one-sample KS distance of the inter-arrival times
// against Exp(mean = meanIA). The gaps arise in time order, so they are
// sorted first — ksDistance walks an ascending empirical CDF.
func exponentialKS(times []float64, meanIA float64) float64 {
	if meanIA <= 0 || len(times) < 2 {
		return 0
	}
	gaps := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	sort.Float64s(gaps)
	return ksDistance(gaps, func(x float64) float64 {
		return 1 - math.Exp(-x/meanIA)
	})
}

// spikeCluster is one maximal run of arrivals separated by gaps below the
// clustering threshold, large enough to count as a load spike.
type spikeCluster struct {
	first, last float64
	size        int
}

// spikeClusters groups sorted arrivals into spikes: maximal runs whose
// consecutive gaps are ≤ gapThreshold, kept when they hold ≥ minSpikeSize
// apps. It returns the spikes and the total number of apps inside them.
func spikeClusters(times []float64, gapThreshold float64) ([]spikeCluster, int) {
	var clusters []spikeCluster
	clustered := 0
	start := 0
	flush := func(end int) { // [start, end) is one run
		if n := end - start; n >= minSpikeSize {
			clusters = append(clusters, spikeCluster{first: times[start], last: times[end-1], size: n})
			clustered += n
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] > gapThreshold {
			flush(i)
			start = i
		}
	}
	flush(len(times))
	return clusters, clustered
}

// backgroundMeanIA estimates the mean inter-arrival of the non-spike traffic:
// the span MLE over arrivals outside every detected cluster.
func backgroundMeanIA(times []float64, clusters []spikeCluster) float64 {
	inSpike := func(t float64) bool {
		for _, c := range clusters {
			if t >= c.first && t <= c.last {
				return true
			}
		}
		return false
	}
	var first, last float64
	n := 0
	for _, t := range times {
		if inSpike(t) {
			continue
		}
		if n == 0 {
			first = t
		}
		last = t
		n++
	}
	if n < 2 || last <= first {
		return 0
	}
	return (last - first) / float64(n-1)
}

// diurnalAmplitude estimates the relative amplitude of the first harmonic of
// the arrival rate at the standard day period, via coverage-corrected
// time-of-day rate binning: arrivals are folded modulo the period into
// diurnalBins bins, each bin's count is normalised by how much of the
// observation window falls into it, and the binned rates' first Fourier
// coefficient yields the amplitude the Lewis-thinning generator would need to
// reproduce the shape. For λ(t) = λ̄(1 + a·sin(2πt/P)) the estimate converges
// to a.
func diurnalAmplitude(times []float64, span float64) float64 {
	const p = float64(diurnalPeriod)
	binWidth := p / diurnalBins
	t0 := times[0]

	counts := make([]float64, diurnalBins)
	for _, t := range times {
		b := int(math.Mod(t-t0, p) / binWidth)
		if b >= diurnalBins {
			b = diurnalBins - 1
		}
		counts[b]++
	}

	// Coverage of each time-of-day bin by the window [0, span): every full
	// period covers each bin once; the remainder covers a prefix.
	full := math.Floor(span / p)
	rem := span - full*p
	rates := make([]float64, diurnalBins)
	var rateSum float64
	for b := range rates {
		cov := full * binWidth
		lo, hi := float64(b)*binWidth, float64(b+1)*binWidth
		if rem > lo {
			cov += math.Min(rem, hi) - lo
		}
		if cov <= 0 {
			return 0 // span < one bin; caller guards span ≥ p anyway
		}
		rates[b] = counts[b] / cov
		rateSum += rates[b]
	}
	rBar := rateSum / diurnalBins
	if rBar == 0 {
		return 0
	}

	var re, im float64
	for b := range rates {
		theta := 2 * math.Pi * (float64(b) + 0.5) / diurnalBins
		w := rates[b]/rBar - 1
		re += w * math.Cos(theta)
		im += w * math.Sin(theta)
	}
	return 2 / float64(diurnalBins) * math.Hypot(re, im)
}
