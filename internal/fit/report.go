package fit

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"themis/internal/workload"
)

// Report is the full outcome of one calibration: the learned scenario
// configuration, the per-axis estimates with their goodness-of-fit evidence,
// and the provenance that makes a calibrated registry entry distinguishable
// from a hand-written one.
type Report struct {
	// Config is the learned scenario, ready for workload.GenerateScenario
	// (knobs the input carried no evidence for are zero and default like any
	// hand-written config).
	Config workload.ScenarioConfig
	// Arrival is the fitted arrival process and its evidence.
	Arrival ArrivalFit
	// Size is the fitted job-size law and both candidates' evidence.
	Size SizeFit
	// Gangs is the fitted gang-size population, sizes ascending, weights
	// summing to 1.
	Gangs []workload.GangMix
	// Provenance records where the fit came from.
	Provenance Provenance
}

// Provenance identifies the trace a scenario was calibrated from.
type Provenance struct {
	// Source names the input trace (empty when fitted from bare apps).
	Source string `json:"source,omitempty"`
	// FittedAt is the calibration date, e.g. "2026-07-30". Fit leaves it
	// empty — fitting is deterministic and dates are not — so callers that
	// want a date stamp it themselves (cmd/tracegen does).
	FittedAt string `json:"fitted_at,omitempty"`
	// Apps and Jobs count the input.
	Apps int `json:"apps"`
	Jobs int `json:"jobs"`
	// Notes lists estimator degradations (samples too small for a detector,
	// knobs left to defaults), in the order they were hit.
	Notes []string `json:"notes,omitempty"`
}

func (p *Provenance) note(msg string) { p.Notes = append(p.Notes, msg) }

// Describe renders the one-line provenance summary used as a calibrated
// scenario's registry description: source, counts, fit date, fitted pattern
// kinds and the headline goodness-of-fit numbers.
func (r *Report) Describe() string {
	var b strings.Builder
	source := r.Provenance.Source
	if source == "" {
		source = "workload"
	}
	fmt.Fprintf(&b, "calibrated from %q (%d apps, %d jobs", source, r.Provenance.Apps, r.Provenance.Jobs)
	if r.Provenance.FittedAt != "" {
		fmt.Fprintf(&b, "; fitted %s", r.Provenance.FittedAt)
	}
	fmt.Fprintf(&b, "): %s arrivals", r.Arrival.Pattern)
	if r.Arrival.MeanInterArrival > 0 {
		fmt.Fprintf(&b, " (mean IA %.6g min, KS %.3f)", r.Arrival.MeanInterArrival, r.Arrival.ExponentialKS)
	}
	fmt.Fprintf(&b, ", %s sizes", r.Size.Law)
	if ks, ok := r.selectedSizeKS(); ok {
		fmt.Fprintf(&b, " (KS %.3f)", ks)
	}
	return b.String()
}

// selectedSizeKS returns the KS distance of the selected size law.
func (r *Report) selectedSizeKS() (float64, bool) {
	switch r.Size.Law {
	case workload.SizePareto:
		return r.Size.Pareto.KS, r.Size.Pareto.OK
	default:
		return r.Size.Lognormal.KS, r.Size.Lognormal.OK
	}
}

// Render produces the human-readable fit-quality report: every estimate,
// both size-law candidates' evidence, and the degradation notes. The output
// is deterministic for a fixed input (six significant digits), so it doubles
// as the golden-snapshot form.
func (r *Report) Render() string {
	var b strings.Builder
	source := r.Provenance.Source
	if source == "" {
		source = "workload"
	}
	fmt.Fprintf(&b, "calibration report\n")
	fmt.Fprintf(&b, "source               %s (%d apps, %d jobs)\n", source, r.Provenance.Apps, r.Provenance.Jobs)
	if r.Provenance.FittedAt != "" {
		fmt.Fprintf(&b, "fitted               %s\n", r.Provenance.FittedAt)
	}

	a := r.Arrival
	fmt.Fprintf(&b, "arrival pattern      %s\n", a.Pattern)
	fmt.Fprintf(&b, "  arrivals           %d over %.6g min\n", a.Samples, a.Span)
	fmt.Fprintf(&b, "  mean inter-arrival %.6g min (exponential KS %.6g)\n", a.MeanInterArrival, a.ExponentialKS)
	fmt.Fprintf(&b, "  index of dispersion %.6g\n", a.IndexOfDispersion)
	if a.PeakToTrough > 0 {
		fmt.Fprintf(&b, "  diurnal amplitude  %.6g (peak/trough %.6g)\n", a.DiurnalAmplitude, a.PeakToTrough)
	}
	if a.BurstFraction > 0 {
		fmt.Fprintf(&b, "  burst fraction     %.6g (spike size %.6g, interval %.6g min, spread %.6g min)\n",
			a.BurstFraction, a.BurstApps, a.BurstInterval, a.BurstSpread)
	}

	s := r.Size
	fmt.Fprintf(&b, "size law             %s\n", s.Law)
	fmt.Fprintf(&b, "  durations          %d, max %.6g min\n", s.Samples, s.MaxDuration)
	if s.Lognormal.OK {
		fmt.Fprintf(&b, "  lognormal          median %.6g min, sigma %.6g (KS %.6g, AIC %.6g)\n",
			s.LognormalMedian, s.LognormalSigma, s.Lognormal.KS, s.Lognormal.AIC)
	}
	if s.Pareto.OK {
		fmt.Fprintf(&b, "  pareto             alpha %.6g, min %.6g min (KS %.6g, AIC %.6g)\n",
			s.ParetoAlpha, s.ParetoMin, s.Pareto.KS, s.Pareto.AIC)
	}

	if len(r.Gangs) > 0 {
		fmt.Fprintf(&b, "gang population      ")
		for i, g := range r.Gangs {
			if i > 0 {
				fmt.Fprintf(&b, ", ")
			}
			fmt.Fprintf(&b, "%d GPUs %.1f%%", g.Size, g.Weight*100)
		}
		fmt.Fprintf(&b, "\n")
	}

	cfg := r.Config
	fmt.Fprintf(&b, "jobs per app         median %.6g, sigma %.6g, range [%d, %d]\n",
		cfg.JobsPerAppMedian, cfg.JobsPerAppSigma, cfg.MinJobsPerApp, cfg.MaxJobsPerApp)
	fmt.Fprintf(&b, "network-intensive    %.1f%% of apps\n", cfg.FractionNetworkIntensive*100)
	for _, n := range r.Provenance.Notes {
		fmt.Fprintf(&b, "note                 %s\n", n)
	}
	return b.String()
}

// fitFormatVersion versions the serialised fit-report form; the marker field
// also distinguishes a fit report from a native trace when both are sniffed
// from JSON files.
const fitFormatVersion = 1

// jsonReport is the wire form of a Report. The scenario config is spelled
// out knob by knob rather than embedding workload.ScenarioConfig, so the file
// format stays stable under generator-struct evolution and never serialises
// placement-profile catalogs.
type jsonReport struct {
	FitFormat  int        `json:"fit_format"`
	Provenance Provenance `json:"provenance"`
	Arrival    ArrivalFit `json:"arrival"`
	Size       SizeFit    `json:"size"`
	Gangs      []gangMix  `json:"gangs,omitempty"`
	Config     jsonConfig `json:"config"`
}

type gangMix struct {
	Size   int     `json:"size"`
	Weight float64 `json:"weight"`
}

type jsonConfig struct {
	NumApps                  int     `json:"num_apps"`
	MeanInterArrival         float64 `json:"mean_interarrival,omitempty"`
	ContentionFactor         float64 `json:"contention_factor,omitempty"`
	FractionNetworkIntensive float64 `json:"fraction_network_intensive"`
	JobsPerAppMedian         float64 `json:"jobs_per_app_median,omitempty"`
	JobsPerAppSigma          float64 `json:"jobs_per_app_sigma,omitempty"`
	MinJobsPerApp            int     `json:"min_jobs_per_app,omitempty"`
	MaxJobsPerApp            int     `json:"max_jobs_per_app,omitempty"`

	Arrival             string  `json:"arrival"`
	DiurnalPeriod       float64 `json:"diurnal_period,omitempty"`
	DiurnalPeakToTrough float64 `json:"diurnal_peak_to_trough,omitempty"`
	BurstInterval       float64 `json:"burst_interval,omitempty"`
	BurstApps           int     `json:"burst_apps,omitempty"`
	BurstSpread         float64 `json:"burst_spread,omitempty"`
	BurstFraction       float64 `json:"burst_fraction,omitempty"`

	JobSize           string  `json:"job_size"`
	ShortTaskMedian   float64 `json:"short_task_median,omitempty"`
	LongTaskMedian    float64 `json:"long_task_median,omitempty"`
	TaskSigma         float64 `json:"task_sigma,omitempty"`
	LongTaskFraction  float64 `json:"long_task_fraction,omitempty"`
	MaxTaskDuration   float64 `json:"max_task_duration,omitempty"`
	ParetoAlpha       float64 `json:"pareto_alpha,omitempty"`
	ParetoMinDuration float64 `json:"pareto_min_duration,omitempty"`
	DurationScale     float64 `json:"duration_scale,omitempty"`
}

// WriteJSON serialises the report (fitted config, evidence and provenance)
// as indented JSON — the form `tracegen fit` emits and ReadReport accepts.
func (r *Report) WriteJSON(w io.Writer) error {
	cfg := r.Config
	out := jsonReport{
		FitFormat:  fitFormatVersion,
		Provenance: r.Provenance,
		Arrival:    r.Arrival,
		Size:       r.Size,
		Config: jsonConfig{
			NumApps:                  cfg.NumApps,
			MeanInterArrival:         cfg.MeanInterArrival,
			ContentionFactor:         cfg.ContentionFactor,
			FractionNetworkIntensive: cfg.FractionNetworkIntensive,
			JobsPerAppMedian:         cfg.JobsPerAppMedian,
			JobsPerAppSigma:          cfg.JobsPerAppSigma,
			MinJobsPerApp:            cfg.MinJobsPerApp,
			MaxJobsPerApp:            cfg.MaxJobsPerApp,
			Arrival:                  string(cfg.Arrival),
			DiurnalPeriod:            cfg.DiurnalPeriod,
			DiurnalPeakToTrough:      cfg.DiurnalPeakToTrough,
			BurstInterval:            cfg.BurstInterval,
			BurstApps:                cfg.BurstApps,
			BurstSpread:              cfg.BurstSpread,
			BurstFraction:            cfg.BurstFraction,
			JobSize:                  string(cfg.JobSize),
			ShortTaskMedian:          cfg.ShortTaskMedian,
			LongTaskMedian:           cfg.LongTaskMedian,
			TaskSigma:                cfg.TaskSigma,
			LongTaskFraction:         cfg.LongTaskFraction,
			MaxTaskDuration:          cfg.MaxTaskDuration,
			ParetoAlpha:              cfg.ParetoAlpha,
			ParetoMinDuration:        cfg.ParetoMinDuration,
			DurationScale:            cfg.DurationScale,
		},
	}
	for _, g := range r.Gangs {
		out.Gangs = append(out.Gangs, gangMix{Size: g.Size, Weight: g.Weight})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadReport parses a serialised fit report and validates that the carried
// scenario configuration is generatable.
func ReadReport(r io.Reader) (*Report, error) {
	dec := json.NewDecoder(r)
	var in jsonReport
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("fit: decoding report: %w", err)
	}
	if in.FitFormat != fitFormatVersion {
		return nil, fmt.Errorf("fit: unsupported fit_format %d (want %d)", in.FitFormat, fitFormatVersion)
	}
	rep := &Report{
		Provenance: in.Provenance,
		Arrival:    in.Arrival,
		Size:       in.Size,
	}
	c := in.Config
	rep.Config = workload.ScenarioConfig{
		GeneratorConfig: workload.GeneratorConfig{
			NumApps:                  c.NumApps,
			MeanInterArrival:         c.MeanInterArrival,
			ContentionFactor:         c.ContentionFactor,
			FractionNetworkIntensive: c.FractionNetworkIntensive,
			JobsPerAppMedian:         c.JobsPerAppMedian,
			JobsPerAppSigma:          c.JobsPerAppSigma,
			MinJobsPerApp:            c.MinJobsPerApp,
			MaxJobsPerApp:            c.MaxJobsPerApp,
			ShortTaskMedian:          c.ShortTaskMedian,
			LongTaskMedian:           c.LongTaskMedian,
			TaskSigma:                c.TaskSigma,
			LongTaskFraction:         c.LongTaskFraction,
			MaxTaskDuration:          c.MaxTaskDuration,
			DurationScale:            c.DurationScale,
		},
		Arrival:             workload.ArrivalPattern(c.Arrival),
		DiurnalPeriod:       c.DiurnalPeriod,
		DiurnalPeakToTrough: c.DiurnalPeakToTrough,
		BurstInterval:       c.BurstInterval,
		BurstApps:           c.BurstApps,
		BurstSpread:         c.BurstSpread,
		BurstFraction:       c.BurstFraction,
		JobSize:             workload.SizePattern(c.JobSize),
		ParetoAlpha:         c.ParetoAlpha,
		ParetoMinDuration:   c.ParetoMinDuration,
	}
	for _, g := range in.Gangs {
		rep.Gangs = append(rep.Gangs, workload.GangMix{Size: g.Size, Weight: g.Weight})
		rep.Config.GangSizes = append(rep.Config.GangSizes, workload.GangMix{Size: g.Size, Weight: g.Weight})
	}
	if err := rep.Config.WithDefaults().Validate(); err != nil {
		return nil, fmt.Errorf("fit: report carries invalid scenario config: %w", err)
	}
	return rep, nil
}
