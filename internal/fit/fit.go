// Package fit is the trace-calibration subsystem: it learns a full
// workload.ScenarioConfig from an observed workload — any imported cluster
// trace or previously generated scenario — turning one concrete trace into an
// unbounded family of seedable synthetic twins.
//
// Fit estimates three independent model axes, mirroring the knobs of the
// scenario engine it feeds:
//
//   - the arrival process: Poisson rate MLE over inter-arrival times, with
//     diurnal day-shape detection (time-of-day rate binning → first-harmonic
//     amplitude → peak-to-trough ratio for the Lewis-thinning generator) and
//     burstiness detection (index of dispersion of windowed arrival counts →
//     spike clustering → bursty-spike parameters);
//   - the job-size law: lognormal and Pareto maximum-likelihood fits over
//     per-task serial durations, selected by AIC with Kolmogorov–Smirnov
//     distances reported for both candidates;
//   - the gang-size population: a weighted histogram of observed gang sizes.
//
// It also recovers the auxiliary generator knobs (jobs-per-app lognormal,
// network-intensive fraction, app count and mean inter-arrival) so that
// GenerateScenario(report.Config) produces workloads statistically matched to
// the input.
//
// Fitting is deterministic: the same apps always produce the same Report,
// bit for bit. There is no RNG anywhere in the pipeline, and every
// aggregation iterates in sorted order.
//
// # Known biases
//
// The estimators degrade gracefully on small samples but are documented to
// be biased there:
//
//   - diurnal detection needs ≥ minDiurnalArrivals arrivals spanning at least
//     one full DiurnalPeriod; below that, diurnal traces classify as Poisson.
//     The amplitude threshold means peak-to-trough ratios under ~1.9 are
//     indistinguishable from Poisson noise and classify as Poisson.
//   - burst detection needs ≥ minPatternArrivals arrivals; spikes smaller
//     than minSpikeSize apps are absorbed into the background process.
//   - the lognormal law fitted to the base generator's short/long mixture
//     recovers the mixture's geometric median and effective log-sd, not the
//     two component medians (LongTaskFraction is 0 in fitted configs).
//   - durations at MaxTaskDuration are treated as ordinary samples, so a
//     heavily truncated input slightly deflates the fitted tail.
//   - MeanInterArrival is the span MLE (span / (n−1)); a single-app trace
//     carries no rate information and leaves the knob to its default.
package fit

import (
	"fmt"
	"math"
	"sort"

	"themis/internal/workload"
)

// sigmaFloor keeps fitted log-sd knobs strictly positive: a zero TaskSigma or
// JobsPerAppSigma would be re-defaulted by ScenarioConfig.WithDefaults, so a
// degenerate (constant) sample fits an effectively deterministic lognormal
// instead of silently inheriting the paper's spread.
const sigmaFloor = 1e-6

// Fit learns a scenario description from an observed workload. The returned
// Report carries the fitted workload.ScenarioConfig (ready for
// GenerateScenario), the per-axis estimates and the goodness-of-fit evidence
// behind each model choice. Fit never mutates the apps and is deterministic
// for a fixed input.
func Fit(apps []*workload.App) (*Report, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("fit: no apps to calibrate from")
	}
	rep := &Report{}

	// Collect the observable samples in deterministic order.
	arrivals := make([]float64, 0, len(apps))
	var durations []float64
	gangCounts := map[int]int{}
	jobsPerApp := make([]float64, 0, len(apps))
	network := 0
	jobs := 0
	for _, a := range apps {
		if a == nil {
			return nil, fmt.Errorf("fit: nil app in workload")
		}
		arrivals = append(arrivals, a.SubmitTime)
		jobsPerApp = append(jobsPerApp, float64(len(a.Jobs)))
		if a.Profile.NetworkIntensive {
			network++
		}
		for _, j := range a.Jobs {
			jobs++
			if j.GangSize > 0 && j.TotalWork > 0 {
				durations = append(durations, j.TotalWork/float64(j.GangSize))
				gangCounts[j.GangSize]++
			}
		}
	}
	sort.Float64s(arrivals)
	sort.Float64s(durations)

	rep.Provenance.Apps = len(apps)
	rep.Provenance.Jobs = jobs

	rep.Arrival = fitArrival(arrivals, &rep.Provenance)
	rep.Size = fitSize(durations, &rep.Provenance)
	rep.Gangs = fitGangs(gangCounts)
	if len(rep.Gangs) == 0 {
		rep.Provenance.note("no schedulable jobs: gang population left to defaults")
	}

	rep.Config = assembleConfig(rep, jobsPerApp, network, len(apps))
	if err := rep.Config.WithDefaults().Validate(); err != nil {
		return nil, fmt.Errorf("fit: fitted config invalid: %w", err)
	}
	return rep, nil
}

// fitGangs converts the gang-size histogram into the scenario engine's
// weighted population, sizes ascending, weights normalised to sum to 1.
func fitGangs(counts map[int]int) []workload.GangMix {
	if len(counts) == 0 {
		return nil
	}
	sizes := make([]int, 0, len(counts))
	total := 0
	for size, n := range counts {
		sizes = append(sizes, size)
		total += n
	}
	sort.Ints(sizes)
	out := make([]workload.GangMix, 0, len(sizes))
	for _, size := range sizes {
		out = append(out, workload.GangMix{
			Size:   size,
			Weight: float64(counts[size]) / float64(total),
		})
	}
	return out
}

// assembleConfig threads the per-axis estimates into one ScenarioConfig.
// Knobs the input carries no evidence for stay zero, so WithDefaults fills
// them exactly like any hand-written scenario.
func assembleConfig(rep *Report, jobsPerApp []float64, networkApps, numApps int) workload.ScenarioConfig {
	var cfg workload.ScenarioConfig
	cfg.NumApps = numApps
	cfg.ContentionFactor = 1
	cfg.DurationScale = 1
	cfg.FractionNetworkIntensive = float64(networkApps) / float64(numApps)

	// Jobs-per-app lognormal MLE over the observed trial counts; the clamp
	// range is the observed range.
	mu, sigma := logMoments(jobsPerApp)
	cfg.JobsPerAppMedian = math.Exp(mu)
	cfg.JobsPerAppSigma = math.Max(sigma, sigmaFloor)
	cfg.MinJobsPerApp = int(jobsPerApp[argMin(jobsPerApp)])
	cfg.MaxJobsPerApp = int(jobsPerApp[argMax(jobsPerApp)])

	// Arrival process.
	cfg.Arrival = rep.Arrival.Pattern
	if rep.Arrival.MeanInterArrival > 0 {
		cfg.MeanInterArrival = rep.Arrival.MeanInterArrival
	}
	switch rep.Arrival.Pattern {
	case workload.ArrivalDiurnal:
		cfg.DiurnalPeriod = diurnalPeriod
		cfg.DiurnalPeakToTrough = rep.Arrival.PeakToTrough
	case workload.ArrivalBursty:
		cfg.BurstFraction = rep.Arrival.BurstFraction
		cfg.BurstApps = int(math.Round(rep.Arrival.BurstApps))
		if cfg.BurstApps < 1 {
			cfg.BurstApps = 1
		}
		cfg.BurstInterval = rep.Arrival.BurstInterval
		cfg.BurstSpread = rep.Arrival.BurstSpread
	}

	// Size law.
	cfg.JobSize = rep.Size.Law
	cfg.MaxTaskDuration = rep.Size.MaxDuration
	switch rep.Size.Law {
	case workload.SizePareto:
		cfg.ParetoAlpha = rep.Size.ParetoAlpha
		cfg.ParetoMinDuration = rep.Size.ParetoMin
	default:
		cfg.ShortTaskMedian = rep.Size.LognormalMedian
		cfg.LongTaskMedian = rep.Size.LognormalMedian
		cfg.TaskSigma = math.Max(rep.Size.LognormalSigma, sigmaFloor)
		cfg.LongTaskFraction = 0
	}

	cfg.GangSizes = append([]workload.GangMix(nil), rep.Gangs...)
	return cfg
}

// logMoments returns the mean and population standard deviation of the
// natural logs of strictly positive values; non-positive values are skipped.
func logMoments(values []float64) (mu, sigma float64) {
	n := 0
	for _, v := range values {
		if v > 0 {
			mu += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mu /= float64(n)
	var ss float64
	for _, v := range values {
		if v > 0 {
			d := math.Log(v) - mu
			ss += d * d
		}
	}
	return mu, math.Sqrt(ss / float64(n))
}

func argMin(v []float64) int {
	best := 0
	for i := range v {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

func argMax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
