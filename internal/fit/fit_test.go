package fit

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"themis/internal/workload"
)

// genApps generates a scenario workload for round-trip tests, failing the
// test on config errors.
func genApps(t *testing.T, cfg workload.ScenarioConfig) []*workload.App {
	t.Helper()
	apps, err := workload.GenerateScenario(cfg)
	if err != nil {
		t.Fatalf("GenerateScenario: %v", err)
	}
	return apps
}

func mustFit(t *testing.T, apps []*workload.App) *Report {
	t.Helper()
	rep, err := Fit(apps)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return rep
}

// within asserts |got−want| ≤ tol·want.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Errorf("%s = %v, want %v ± %v%%", name, got, want, tol*100)
	}
}

// baseCfg is a large-sample scenario whose lognormal law is a single
// component, so parameter recovery is exact up to sampling noise.
func baseCfg(seed int64, n int) workload.ScenarioConfig {
	cfg := workload.ScenarioConfig{GeneratorConfig: workload.DefaultGeneratorConfig()}
	cfg.Seed = seed
	cfg.NumApps = n
	cfg.ShortTaskMedian = 60
	cfg.LongTaskMedian = 60
	cfg.LongTaskFraction = 0
	cfg.TaskSigma = 0.5
	return cfg
}

// Round-trip: every arrival pattern × size law must be recovered in kind,
// with the rate/shape parameters within documented tolerance. Tolerances are
// generous for burst parameters (cluster-based estimates) and tight for MLEs.
func TestRoundTripArrivalBySize(t *testing.T) {
	const n = 2000
	cases := []struct {
		name    string
		mutate  func(*workload.ScenarioConfig)
		arrival workload.ArrivalPattern
		size    workload.SizePattern
	}{
		{"poisson-lognormal", func(c *workload.ScenarioConfig) {}, workload.ArrivalPoisson, workload.SizeLognormal},
		{"poisson-pareto", func(c *workload.ScenarioConfig) {
			c.JobSize = workload.SizePareto
		}, workload.ArrivalPoisson, workload.SizePareto},
		{"diurnal-lognormal", func(c *workload.ScenarioConfig) {
			c.Arrival = workload.ArrivalDiurnal
		}, workload.ArrivalDiurnal, workload.SizeLognormal},
		{"diurnal-pareto", func(c *workload.ScenarioConfig) {
			c.Arrival = workload.ArrivalDiurnal
			c.JobSize = workload.SizePareto
		}, workload.ArrivalDiurnal, workload.SizePareto},
		{"bursty-lognormal", func(c *workload.ScenarioConfig) {
			c.Arrival = workload.ArrivalBursty
		}, workload.ArrivalBursty, workload.SizeLognormal},
		{"bursty-pareto", func(c *workload.ScenarioConfig) {
			c.Arrival = workload.ArrivalBursty
			c.JobSize = workload.SizePareto
		}, workload.ArrivalBursty, workload.SizePareto},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseCfg(11, n)
			tc.mutate(&cfg)
			full := cfg.WithDefaults()
			rep := mustFit(t, genApps(t, cfg))

			if rep.Arrival.Pattern != tc.arrival {
				t.Fatalf("arrival pattern = %s, want %s (amp %v, IoD %v, burst frac %v)",
					rep.Arrival.Pattern, tc.arrival, rep.Arrival.DiurnalAmplitude,
					rep.Arrival.IndexOfDispersion, rep.Arrival.BurstFraction)
			}
			if rep.Size.Law != tc.size {
				t.Fatalf("size law = %s, want %s (lognormal AIC %v, pareto AIC %v)",
					rep.Size.Law, tc.size, rep.Size.Lognormal.AIC, rep.Size.Pareto.AIC)
			}

			// Rate/shape recovery, against the generating configuration.
			switch tc.arrival {
			case workload.ArrivalPoisson, workload.ArrivalDiurnal:
				within(t, "MeanInterArrival", rep.Config.MeanInterArrival, full.MeanInterArrival, 0.15)
			case workload.ArrivalBursty:
				within(t, "MeanInterArrival", rep.Config.MeanInterArrival, full.MeanInterArrival, 0.25)
				within(t, "BurstApps", float64(rep.Config.BurstApps), float64(full.BurstApps), 0.35)
				within(t, "BurstInterval", rep.Config.BurstInterval, full.BurstInterval, 0.35)
				if d := math.Abs(rep.Config.BurstFraction - full.BurstFraction); d > 0.12 {
					t.Errorf("BurstFraction = %v, want %v ± 0.12", rep.Config.BurstFraction, full.BurstFraction)
				}
			}
			if tc.arrival == workload.ArrivalDiurnal {
				within(t, "DiurnalPeakToTrough", rep.Config.DiurnalPeakToTrough, full.DiurnalPeakToTrough, 0.25)
			}
			switch tc.size {
			case workload.SizeLognormal:
				within(t, "lognormal median", rep.Size.LognormalMedian, full.ShortTaskMedian, 0.08)
				within(t, "lognormal sigma", rep.Size.LognormalSigma, full.TaskSigma, 0.10)
			case workload.SizePareto:
				within(t, "pareto alpha", rep.Size.ParetoAlpha, full.ParetoAlpha, 0.10)
				within(t, "pareto min", rep.Size.ParetoMin, full.ParetoMinDuration, 0.05)
			}

			// The fitted config must itself generate.
			twin := rep.Config
			twin.Seed = 99
			twin.NumApps = 50
			if _, err := workload.GenerateScenario(twin); err != nil {
				t.Fatalf("fitted config does not generate: %v", err)
			}
		})
	}
}

// The base generator's short/long lognormal mixture is recovered as a single
// lognormal matching the mixture's geometric median and effective log-sd.
func TestRoundTripLognormalMixture(t *testing.T) {
	cfg := workload.ScenarioConfig{GeneratorConfig: workload.DefaultGeneratorConfig()}
	cfg.Seed = 5
	cfg.NumApps = 2000
	full := cfg.WithDefaults()
	rep := mustFit(t, genApps(t, cfg))

	if rep.Size.Law != workload.SizeLognormal {
		t.Fatalf("size law = %s, want lognormal", rep.Size.Law)
	}
	p := full.LongTaskFraction
	logRatio := math.Log(full.LongTaskMedian / full.ShortTaskMedian)
	wantMedian := full.ShortTaskMedian * math.Exp(p*logRatio)
	wantSigma := math.Sqrt(full.TaskSigma*full.TaskSigma + p*(1-p)*logRatio*logRatio)
	within(t, "mixture geometric median", rep.Size.LognormalMedian, wantMedian, 0.10)
	within(t, "mixture effective sigma", rep.Size.LognormalSigma, wantSigma, 0.10)
}

// Gang-size populations are recovered as weight fractions.
func TestRoundTripGangPopulation(t *testing.T) {
	cfg := baseCfg(23, 800)
	cfg.GangSizes = []workload.GangMix{
		{Size: 1, Weight: 2}, {Size: 2, Weight: 3}, {Size: 4, Weight: 4}, {Size: 8, Weight: 1},
	}
	rep := mustFit(t, genApps(t, cfg))

	var totalWeight float64
	for _, g := range cfg.GangSizes {
		totalWeight += g.Weight
	}
	if len(rep.Gangs) != len(cfg.GangSizes) {
		t.Fatalf("fitted %d gang sizes, want %d: %+v", len(rep.Gangs), len(cfg.GangSizes), rep.Gangs)
	}
	for i, g := range rep.Gangs {
		want := cfg.GangSizes[i]
		if g.Size != want.Size {
			t.Errorf("gang[%d].Size = %d, want %d", i, g.Size, want.Size)
		}
		if d := math.Abs(g.Weight - want.Weight/totalWeight); d > 0.05 {
			t.Errorf("gang[%d].Weight = %v, want %v ± 0.05", i, g.Weight, want.Weight/totalWeight)
		}
	}
}

// Jobs-per-app and the network-intensive fraction are recovered.
func TestRoundTripAuxiliaryKnobs(t *testing.T) {
	cfg := baseCfg(31, 1500)
	full := cfg.WithDefaults()
	rep := mustFit(t, genApps(t, cfg))

	within(t, "JobsPerAppMedian", rep.Config.JobsPerAppMedian, full.JobsPerAppMedian, 0.15)
	within(t, "JobsPerAppSigma", rep.Config.JobsPerAppSigma, full.JobsPerAppSigma, 0.20)
	if d := math.Abs(rep.Config.FractionNetworkIntensive - full.FractionNetworkIntensive); d > 0.05 {
		t.Errorf("FractionNetworkIntensive = %v, want %v ± 0.05",
			rep.Config.FractionNetworkIntensive, full.FractionNetworkIntensive)
	}
	if rep.Config.NumApps != cfg.NumApps {
		t.Errorf("NumApps = %d, want %d", rep.Config.NumApps, cfg.NumApps)
	}
}

// Fitting is deterministic: the same input yields a bit-identical report.
func TestFitDeterministic(t *testing.T) {
	cfg := baseCfg(7, 400)
	cfg.Arrival = workload.ArrivalBursty
	apps := genApps(t, cfg)
	a := mustFit(t, apps)
	b := mustFit(t, apps)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fit not deterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("serialised reports differ for identical input")
	}
	if a.Render() != b.Render() {
		t.Fatal("rendered reports differ for identical input")
	}
}

// The serialised report round-trips losslessly through ReadReport.
func TestReportJSONRoundTrip(t *testing.T) {
	for _, mutate := range []func(*workload.ScenarioConfig){
		func(c *workload.ScenarioConfig) {},
		func(c *workload.ScenarioConfig) { c.Arrival = workload.ArrivalDiurnal },
		func(c *workload.ScenarioConfig) { c.Arrival = workload.ArrivalBursty; c.JobSize = workload.SizePareto },
	} {
		cfg := baseCfg(13, 600)
		mutate(&cfg)
		rep := mustFit(t, genApps(t, cfg))
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadReport(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadReport: %v", err)
		}
		if !reflect.DeepEqual(rep, back) {
			t.Fatalf("JSON round trip changed the report:\nfirst:  %+v\nsecond: %+v", rep, back)
		}
	}
}

// ReadReport rejects junk, version skew and unusable configs.
func TestReadReportRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       "}{",
		"wrong version":  `{"fit_format": 99, "config": {"num_apps": 5}}`,
		"invalid config": `{"fit_format": 1, "config": {"num_apps": 5, "arrival": "sideways"}}`,
	}
	for name, in := range cases {
		if _, err := ReadReport(bytes.NewReader([]byte(name[:0] + in))); err == nil {
			t.Errorf("%s: ReadReport accepted %q", name, in)
		}
	}
}

// Degenerate inputs degrade gracefully: tiny samples fall back to Poisson +
// lognormal with notes, never NaN, and still yield a generatable config.
func TestFitDegenerateInputs(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := Fit(nil); err == nil {
			t.Fatal("Fit(nil) succeeded")
		}
	})
	t.Run("single app", func(t *testing.T) {
		job := workload.NewJob("a", 0, 100, 2)
		app := workload.NewApp("a", 0, workload.DefaultGeneratorConfig().ComputeProfiles[0], []*workload.Job{job})
		rep := mustFit(t, []*workload.App{app})
		if rep.Arrival.Pattern != workload.ArrivalPoisson {
			t.Errorf("pattern = %s, want poisson", rep.Arrival.Pattern)
		}
		if len(rep.Provenance.Notes) == 0 {
			t.Error("expected degradation notes for a single-app fit")
		}
		twin := rep.Config
		twin.NumApps = 5
		if _, err := workload.GenerateScenario(twin); err != nil {
			t.Fatalf("degenerate fitted config does not generate: %v", err)
		}
	})
	t.Run("constant durations", func(t *testing.T) {
		var apps []*workload.App
		for i := 0; i < 40; i++ {
			id := workload.AppID(string(rune('a'+i%26)) + string(rune('a'+i/26)))
			job := workload.NewJob(id, 0, 60, 2)
			apps = append(apps, workload.NewApp(id, float64(i*10), workload.DefaultGeneratorConfig().ComputeProfiles[0], []*workload.Job{job}))
		}
		rep := mustFit(t, apps)
		if rep.Size.Law != workload.SizeLognormal {
			t.Errorf("size law = %s, want lognormal fallback", rep.Size.Law)
		}
		twin := rep.Config
		if _, err := workload.GenerateScenario(twin); err != nil {
			t.Fatalf("constant-duration fitted config does not generate: %v", err)
		}
	})
}

// exponentialKS must sort the time-ordered gaps before the KS walk:
// arrivals [0, 10, 11] have gaps [10, 1], and feeding them unsorted inflates
// the statistic (regression: 0.838 instead of the correct 0.338).
func TestExponentialKSSortsGaps(t *testing.T) {
	got := exponentialKS([]float64{0, 10, 11}, 5.5)
	// Hand-computed: sorted gaps [1, 10] against Exp(5.5) give
	// D = F(10) − 1/2 = (1 − e^(−10/5.5)) − 0.5.
	want := (1 - math.Exp(-10/5.5)) - 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("exponentialKS = %v, want %v", got, want)
	}
}

// KSTwoSample sanity: identical samples at distance 0, disjoint at 1.
func TestKSTwoSample(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := KSTwoSample(a, a); d != 0 {
		t.Errorf("KS(identical) = %v, want 0", d)
	}
	if d := KSTwoSample([]float64{1, 2}, []float64{10, 20}); d != 1 {
		t.Errorf("KS(disjoint) = %v, want 1", d)
	}
	if d := KSTwoSample(nil, a); d != 0 {
		t.Errorf("KS(empty) = %v, want 0", d)
	}
	d := KSTwoSample([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6})
	if d <= 0 || d >= 1 {
		t.Errorf("KS(overlap) = %v, want in (0,1)", d)
	}
}
