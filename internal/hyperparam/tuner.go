// Package hyperparam implements the app-level (top-level) schedulers of
// Themis's two-level architecture: hyperparameter-exploration frameworks
// that decide which of an app's trials to keep running, which to terminate
// early, and how many GPUs each surviving trial may use (§2.3, §5.2).
//
// Two tuners from the paper are provided — HyperBand (successive halving)
// and HyperDrive (good/promising/poor classification) — plus a trivial
// single-job tuner for apps that train one model with known
// hyperparameters. All tuners expose the narrow API the Themis Agent needs:
// per-trial work-left estimates and per-trial maximum parallelism.
package hyperparam

import (
	"math"
	"sort"

	"themis/internal/estimator"
	"themis/internal/workload"
)

// Tuner is the app-internal scheduler. The simulator calls Update at every
// scheduling event; the Themis Agent calls WorkLeft and the app's job fields
// when preparing bids.
type Tuner interface {
	// Name identifies the tuner ("hyperband", "hyperdrive", "single").
	Name() string
	// Update lets the tuner observe progress at simulation time now: it may
	// kill trials and adjust per-trial MaxParallelism.
	//
	// Contract: Update and Done must be pure functions of the app's job
	// progress — now may stamp decisions (e.g. Job.Kill times) but must not
	// drive them. The simulator relies on this to skip observations of apps
	// that have neither progressed nor changed allocation since the last
	// call; a tuner whose decisions depend on wall-clock time alone may be
	// observed arbitrarily late.
	Update(now float64, app *workload.App)
	// WorkLeft returns the tuner's estimate of the serial GPU-minutes
	// remaining for trial j (the paper's W′ per job).
	WorkLeft(j *workload.Job) float64
	// Done reports whether the app has identified and finished training its
	// best model.
	Done(app *workload.App) bool
}

// appDone is the completion rule shared by all tuners, matching the paper's
// finish-time semantics (§2.1, §5.2): an app finishes when the best model
// has been identified and trained to its target — that is, when the first of
// its trials trains to completion. Trials the tuner terminated early never
// complete, so exploration only ends the app once a surviving trial
// finishes.
func appDone(app *workload.App) bool {
	for _, j := range app.Jobs {
		if j.DoneAt != workload.NotFinished {
			return true
		}
	}
	return false
}

// Single is the tuner for apps with exactly one trial (the user already knows
// the hyperparameters). It never kills anything.
type Single struct{}

// NewSingle returns a Single tuner.
func NewSingle() *Single { return &Single{} }

// Name implements Tuner.
func (*Single) Name() string { return "single" }

// Update implements Tuner; it is a no-op.
func (*Single) Update(float64, *workload.App) {}

// WorkLeft implements Tuner using the trial's true remaining work.
func (*Single) WorkLeft(j *workload.Job) float64 { return j.RemainingWork() }

// Done implements Tuner.
func (*Single) Done(app *workload.App) bool { return appDone(app) }

// HyperBand implements the successive-halving tuner of Li et al. as the
// paper models it: all trials start with equal priority, and after every
// fixed number of iterations (a "rung") the half with the worst observed
// loss is terminated, until a single trial remains (§5.2).
type HyperBand struct {
	// RungIterations is the number of iterations between halving decisions.
	RungIterations int
	// ObservationNoise perturbs observed losses to model measurement noise.
	ObservationNoise float64

	curves   map[workload.JobID]estimator.LossCurve
	nextRung map[workload.AppID]int
}

// NewHyperBand returns a HyperBand tuner with the given rung length in
// iterations. A non-positive rung length uses 100 iterations.
func NewHyperBand(rungIterations int) *HyperBand {
	if rungIterations <= 0 {
		rungIterations = 100
	}
	return &HyperBand{
		RungIterations:   rungIterations,
		ObservationNoise: 0.01,
		curves:           make(map[workload.JobID]estimator.LossCurve),
		nextRung:         make(map[workload.AppID]int),
	}
}

// Name implements Tuner.
func (*HyperBand) Name() string { return "hyperband" }

// Update implements Tuner: it processes any rung boundaries all active
// trials have crossed, killing the worse-converging half each time.
func (h *HyperBand) Update(now float64, app *workload.App) {
	for {
		active := app.ActiveJobs()
		if len(active) <= 1 {
			return
		}
		rung := h.nextRung[app.ID]
		boundary := (rung + 1) * h.RungIterations
		// A rung is evaluated once every active trial has reached it (the
		// synchronous successive-halving the paper describes).
		for _, j := range active {
			if j.IterationsDone() < boundary && j.DoneAt == workload.NotFinished {
				return
			}
		}
		// Rank by observed loss at the boundary; kill the bottom half.
		type scored struct {
			job  *workload.Job
			loss float64
		}
		ranked := make([]scored, 0, len(active))
		for _, j := range active {
			c := h.curveFor(j)
			obs := c.Sample([]int{boundary}, h.ObservationNoise, j.Seed+int64(boundary))
			ranked = append(ranked, scored{job: j, loss: obs[0]})
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].loss < ranked[j].loss })
		keep := (len(ranked) + 1) / 2
		for _, r := range ranked[keep:] {
			r.job.Kill(now)
		}
		h.nextRung[app.ID] = rung + 1
	}
}

// WorkLeft implements Tuner using the trial's projected remaining work.
func (h *HyperBand) WorkLeft(j *workload.Job) float64 { return j.RemainingWork() }

// Done implements Tuner.
func (h *HyperBand) Done(app *workload.App) bool { return appDone(app) }

func (h *HyperBand) curveFor(j *workload.Job) estimator.LossCurve {
	c, ok := h.curves[j.ID]
	if !ok {
		c = estimator.CurveForJob(j)
		h.curves[j.ID] = c
	}
	return c
}

// Classification labels used by HyperDrive.
type Classification int

// HyperDrive's trial classes (§5.2): good trials get full parallelism,
// promising trials get reduced parallelism, poor trials are terminated.
const (
	ClassGood Classification = iota
	ClassPromising
	ClassPoor
)

// String returns the class name.
func (c Classification) String() string {
	switch c {
	case ClassGood:
		return "good"
	case ClassPromising:
		return "promising"
	case ClassPoor:
		return "poor"
	default:
		return "unknown"
	}
}

// HyperDrive implements the POP-scheduling tuner of Rasley et al. as the
// paper models it: it continually classifies trials as good, promising or
// poor from their projected final loss, terminating poor trials immediately
// and giving good trials higher execution priority (more parallelism).
type HyperDrive struct {
	// MinIterations is the warm-up before a trial can be classified.
	MinIterations int
	// GoodMargin and PromisingMargin are the relative distances from the
	// best projected loss that bound the good and promising classes.
	GoodMargin      float64
	PromisingMargin float64
	// PromisingParallelismFraction scales a promising trial's maximum
	// parallelism relative to its gang size.
	PromisingParallelismFraction float64

	curves map[workload.JobID]estimator.LossCurve
	class  map[workload.JobID]Classification
}

// NewHyperDrive returns a HyperDrive tuner with the defaults used in the
// evaluation.
func NewHyperDrive() *HyperDrive {
	return &HyperDrive{
		MinIterations:                50,
		GoodMargin:                   0.10,
		PromisingMargin:              0.35,
		PromisingParallelismFraction: 0.5,
		curves:                       make(map[workload.JobID]estimator.LossCurve),
		class:                        make(map[workload.JobID]Classification),
	}
}

// Name implements Tuner.
func (*HyperDrive) Name() string { return "hyperdrive" }

// Update implements Tuner: it reclassifies every active trial that has run
// long enough, kills poor trials and adjusts parallelism of the rest.
func (h *HyperDrive) Update(now float64, app *workload.App) {
	active := app.ActiveJobs()
	if len(active) <= 1 {
		return
	}
	// Project each trial's final loss by extrapolating its convergence curve
	// well past the trial's iteration budget — the asymptote is what
	// distinguishes good from poor hyperparameters.
	projected := make(map[workload.JobID]float64, len(active))
	best := math.Inf(1)
	for _, j := range active {
		if j.IterationsDone() < h.MinIterations {
			continue
		}
		c := h.curveFor(j)
		p := c.Loss(5 * j.TotalIterations)
		projected[j.ID] = p
		if p < best {
			best = p
		}
	}
	if math.IsInf(best, 1) {
		return // nothing classifiable yet
	}
	// Classify, then make sure at least the best-projected trial survives:
	// HyperDrive never abandons the exploration entirely.
	classes := make(map[workload.JobID]Classification, len(projected))
	survivors := 0
	var bestJob workload.JobID
	for id, p := range projected {
		classes[id] = h.classOf(p, best)
		if classes[id] != ClassPoor {
			survivors++
		}
		if p == best {
			bestJob = id
		}
	}
	if survivors == 0 {
		classes[bestJob] = ClassGood
	}
	for _, j := range active {
		cls, ok := classes[j.ID]
		if !ok {
			continue
		}
		h.class[j.ID] = cls
		switch cls {
		case ClassGood:
			j.MaxParallelism = j.GangSize
		case ClassPromising:
			mp := int(math.Max(1, math.Round(float64(j.GangSize)*h.PromisingParallelismFraction)))
			j.MaxParallelism = mp
		case ClassPoor:
			j.Kill(now)
		}
	}
}

func (h *HyperDrive) classOf(projected, best float64) Classification {
	switch {
	case projected <= best*(1+h.GoodMargin):
		return ClassGood
	case projected <= best*(1+h.PromisingMargin):
		return ClassPromising
	default:
		return ClassPoor
	}
}

// Class returns the current classification of trial j (defaults to good
// before the first classification).
func (h *HyperDrive) Class(j workload.JobID) Classification {
	if c, ok := h.class[j]; ok {
		return c
	}
	return ClassGood
}

// WorkLeft implements Tuner using the trial's remaining work.
func (h *HyperDrive) WorkLeft(j *workload.Job) float64 { return j.RemainingWork() }

// Done implements Tuner.
func (h *HyperDrive) Done(app *workload.App) bool { return appDone(app) }

func (h *HyperDrive) curveFor(j *workload.Job) estimator.LossCurve {
	c, ok := h.curves[j.ID]
	if !ok {
		c = estimator.CurveForJob(j)
		h.curves[j.ID] = c
	}
	return c
}

// ForApp returns the natural tuner for an app: Single for one-trial apps,
// HyperBand otherwise (the tuner the paper's prototype implements).
func ForApp(app *workload.App) Tuner {
	if len(app.Jobs) == 1 {
		return NewSingle()
	}
	return NewHyperBand(0)
}
