package hyperparam

import (
	"testing"

	"themis/internal/placement"
	"themis/internal/workload"
)

// makeApp builds an app with n trials of equal work; qualities are spread
// evenly so trial 0 is best.
func makeApp(t *testing.T, n int, work float64) *workload.App {
	t.Helper()
	jobs := make([]*workload.Job, n)
	for i := 0; i < n; i++ {
		j := workload.NewJob("app-t", i, work, 4)
		j.Quality = float64(i) / float64(n)
		j.Seed = int64(1000 + i)
		j.TotalIterations = 1000
		jobs[i] = j
	}
	app := workload.NewApp("app-t", 0, placement.ResNet50, jobs)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	return app
}

// advanceAll runs every active trial for dt minutes on its gang size.
func advanceAll(app *workload.App, now, dt float64) {
	for _, j := range app.ActiveJobs() {
		j.Advance(now, dt, j.GangSize, 1)
	}
}

func TestSingleTuner(t *testing.T) {
	app := makeApp(t, 1, 100)
	s := NewSingle()
	if s.Name() != "single" {
		t.Errorf("Name = %q", s.Name())
	}
	s.Update(0, app)
	if s.Done(app) {
		t.Error("app with unfinished job should not be done")
	}
	if got := s.WorkLeft(app.Jobs[0]); got != 100 {
		t.Errorf("WorkLeft = %v, want 100", got)
	}
	app.Jobs[0].Advance(0, 1000, 4, 1)
	if !s.Done(app) {
		t.Error("app should be done after its only job finishes")
	}
}

func TestHyperBandSuccessiveHalving(t *testing.T) {
	app := makeApp(t, 8, 4000) // 4000 serial minutes, 1000 iterations
	hb := NewHyperBand(100)
	// Run everything past the first rung boundary (100 iters = 10% of work
	// = 400 serial minutes = 100 minutes on 4 GPUs).
	advanceAll(app, 0, 101)
	hb.Update(101, app)
	if got := len(app.ActiveJobs()); got != 4 {
		t.Fatalf("after rung 1: %d active trials, want 4", got)
	}
	// Second rung.
	advanceAll(app, 101, 101)
	hb.Update(202, app)
	if got := len(app.ActiveJobs()); got != 2 {
		t.Fatalf("after rung 2: %d active trials, want 2", got)
	}
	// Third rung: down to a single survivor, no further kills.
	advanceAll(app, 202, 101)
	hb.Update(303, app)
	if got := len(app.ActiveJobs()); got != 1 {
		t.Fatalf("after rung 3: %d active trials, want 1", got)
	}
	advanceAll(app, 303, 101)
	hb.Update(404, app)
	if got := len(app.ActiveJobs()); got != 1 {
		t.Fatalf("survivor must not be killed, got %d active", got)
	}
	// Survivors should skew toward low-quality-value (better) trials: the
	// best trial converges fastest so it should never be killed.
	if app.Jobs[0].Killed {
		t.Error("the best trial (quality 0) was killed by HyperBand")
	}
	// Not done until the survivor completes.
	if hb.Done(app) {
		t.Error("app should not be done while survivor is active")
	}
	for _, j := range app.ActiveJobs() {
		j.Advance(404, 1e6, 4, 1)
	}
	if !hb.Done(app) {
		t.Error("app should be done once the survivor finishes")
	}
}

func TestHyperBandWaitsForStragglers(t *testing.T) {
	app := makeApp(t, 4, 4000)
	hb := NewHyperBand(100)
	// Only advance three of the four trials past the rung.
	for _, j := range app.Jobs[:3] {
		j.Advance(0, 101, 4, 1)
	}
	hb.Update(101, app)
	if got := len(app.ActiveJobs()); got != 4 {
		t.Errorf("rung must wait for stragglers; got %d active", got)
	}
}

func TestHyperBandDefaultRung(t *testing.T) {
	if hb := NewHyperBand(0); hb.RungIterations != 100 {
		t.Errorf("default rung = %d, want 100", hb.RungIterations)
	}
}

func TestHyperDriveClassification(t *testing.T) {
	app := makeApp(t, 6, 4000)
	hd := NewHyperDrive()
	// Warm up all trials past MinIterations (50 iters = 5% = 200 serial
	// minutes = 50 minutes on 4 GPUs).
	advanceAll(app, 0, 60)
	hd.Update(60, app)
	active := app.ActiveJobs()
	if len(active) >= 6 {
		t.Errorf("HyperDrive should have killed at least one poor trial, %d active", len(active))
	}
	if len(active) < 1 {
		t.Fatal("HyperDrive must keep at least one trial")
	}
	// The best trial must survive and keep full parallelism.
	best := app.Jobs[0]
	if best.Killed {
		t.Fatal("best trial killed")
	}
	if hd.Class(best.ID) != ClassGood {
		t.Errorf("best trial classified %v, want good", hd.Class(best.ID))
	}
	if best.MaxParallelism != best.GangSize {
		t.Errorf("good trial parallelism = %d, want %d", best.MaxParallelism, best.GangSize)
	}
	// Any promising trial has reduced parallelism.
	for _, j := range active {
		if hd.Class(j.ID) == ClassPromising && j.MaxParallelism >= j.GangSize {
			t.Errorf("promising trial %s kept full parallelism %d", j.ID, j.MaxParallelism)
		}
	}
}

func TestHyperDriveNeverKillsLastTrial(t *testing.T) {
	app := makeApp(t, 2, 4000)
	// Make both trials bad but one worse.
	app.Jobs[0].Quality = 0.9
	app.Jobs[1].Quality = 0.99
	hd := NewHyperDrive()
	advanceAll(app, 0, 60)
	hd.Update(60, app)
	if len(app.ActiveJobs()) < 1 {
		t.Fatal("HyperDrive killed every trial")
	}
}

func TestHyperDriveWarmup(t *testing.T) {
	app := makeApp(t, 4, 4000)
	hd := NewHyperDrive()
	advanceAll(app, 0, 1) // well under MinIterations
	hd.Update(1, app)
	if got := len(app.ActiveJobs()); got != 4 {
		t.Errorf("no trial should be killed before warm-up, %d active", got)
	}
}

func TestClassificationString(t *testing.T) {
	if ClassGood.String() != "good" || ClassPromising.String() != "promising" || ClassPoor.String() != "poor" {
		t.Error("classification names wrong")
	}
	if Classification(42).String() != "unknown" {
		t.Error("unknown classification should stringify to unknown")
	}
}

func TestForApp(t *testing.T) {
	single := makeApp(t, 1, 100)
	if ForApp(single).Name() != "single" {
		t.Error("one-trial app should get the Single tuner")
	}
	multi := makeApp(t, 5, 100)
	if ForApp(multi).Name() != "hyperband" {
		t.Error("multi-trial app should get HyperBand")
	}
}
