// Package placement models how the relative placement of a job's GPUs
// affects its training throughput — the paper's placement sensitivity S.
//
// An allocation spanning wider network boundaries (machine → rack →
// cross-rack) synchronises gradients over slower links, so the speedup from
// G GPUs degrades from linear: time = serialTime / (G · S), with S ∈ (0, 1]
// depending on the allocation's locality and on the model being trained
// (§5.2 step 3). The package also provides the greedy placement-sensitive
// GPU picker used for job-level assignment and leftover allocation.
package placement

import (
	"fmt"
	"sort"

	"themis/internal/cluster"
)

// Profile captures the placement sensitivity of one model family: the
// slowdown factor observed at each locality level, and the single-GPU
// training throughput used for the Figure 2 reproduction.
type Profile struct {
	// Name of the model family, e.g. "VGG16".
	Name string
	// NetworkIntensive marks families with strict locality preferences
	// (large parameter sizes relative to computation, e.g. the VGG family).
	NetworkIntensive bool
	// ImagesPerSecPerGPU is the ideal single-GPU throughput, used to model
	// Figure 2's absolute throughputs.
	ImagesPerSecPerGPU float64
	// Slowdown maps a locality level to S ∈ (0, 1]. Missing levels fall back
	// to the cross-domain (LocalityNone) value, so legacy profiles written
	// before the fabric-domain level behave as if cross-rack and cross-domain
	// were one level — exactly the flat model they were calibrated against.
	Slowdown map[cluster.Locality]float64
}

// S returns the slowdown factor for an allocation with the given locality.
// It returns 1 for unknown localities only if no cross-domain value is set.
func (p Profile) S(l cluster.Locality) float64 {
	if v, ok := p.Slowdown[l]; ok {
		return v
	}
	if v, ok := p.Slowdown[cluster.LocalityNone]; ok {
		return v
	}
	return 1
}

// SOf returns the slowdown factor for alloc placed on topo.
func (p Profile) SOf(topo *cluster.Topology, alloc cluster.Alloc) float64 {
	if alloc.Total() <= 1 {
		return 1 // a single GPU never synchronises over the network
	}
	return p.S(cluster.LocalityOf(topo, alloc))
}

// Throughput returns the aggregate training throughput (images/sec) of a job
// from this family using alloc on topo: G · S · perGPU.
func (p Profile) Throughput(topo *cluster.Topology, alloc cluster.Alloc) float64 {
	g := float64(alloc.Total())
	return g * p.SOf(topo, alloc) * p.ImagesPerSecPerGPU
}

// Speedup returns the effective parallelism G · S of alloc for this profile:
// the factor by which serial time is divided.
func (p Profile) Speedup(topo *cluster.Topology, alloc cluster.Alloc) float64 {
	return float64(alloc.Total()) * p.SOf(topo, alloc)
}

// Validate reports whether the profile's slowdowns are within (0, 1] and
// monotonically non-increasing as locality widens.
func (p Profile) Validate() error {
	prev := 1.0
	for _, l := range []cluster.Locality{cluster.LocalitySlot, cluster.LocalityMachine, cluster.LocalityRack, cluster.LocalityDomain, cluster.LocalityNone} {
		s := p.S(l)
		if s <= 0 || s > 1 {
			return fmt.Errorf("profile %s: S(%s)=%v outside (0,1]", p.Name, l, s)
		}
		if s > prev+1e-9 {
			return fmt.Errorf("profile %s: S(%s)=%v exceeds tighter locality's %v", p.Name, l, s, prev)
		}
		prev = s
	}
	if p.ImagesPerSecPerGPU < 0 {
		return fmt.Errorf("profile %s: negative throughput", p.Name)
	}
	return nil
}

// The model-family catalog. Slowdowns are calibrated so that the Figure 2
// reproduction preserves the paper's shape: the VGG family (and AlexNet,
// whose parameter-to-compute ratio is large) loses roughly half its
// throughput when 4 GPUs span two servers, Inception-v3 loses a little, and
// ResNet50 is essentially placement-insensitive.
var (
	// VGG16 is the paper's canonical network-intensive model (Figure 2).
	VGG16 = Profile{
		Name: "VGG16", NetworkIntensive: true, ImagesPerSecPerGPU: 57,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 0.96,
			cluster.LocalityRack:    0.58,
			cluster.LocalityDomain:  0.42,
			cluster.LocalityNone:    0.34,
		},
	}
	// VGG19 is slightly heavier than VGG16 with the same sensitivity shape.
	VGG19 = Profile{
		Name: "VGG19", NetworkIntensive: true, ImagesPerSecPerGPU: 47,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 0.96,
			cluster.LocalityRack:    0.60,
			cluster.LocalityDomain:  0.44,
			cluster.LocalityNone:    0.36,
		},
	}
	// AlexNet has enormous fully-connected layers relative to its compute,
	// making it the most placement-sensitive family in Figure 2.
	AlexNet = Profile{
		Name: "AlexNet", NetworkIntensive: true, ImagesPerSecPerGPU: 112,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 0.93,
			cluster.LocalityRack:    0.48,
			cluster.LocalityDomain:  0.34,
			cluster.LocalityNone:    0.27,
		},
	}
	// InceptionV3 is mildly placement-sensitive.
	InceptionV3 = Profile{
		Name: "Inceptionv3", NetworkIntensive: false, ImagesPerSecPerGPU: 80,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 0.99,
			cluster.LocalityRack:    0.88,
			cluster.LocalityDomain:  0.78,
			cluster.LocalityNone:    0.70,
		},
	}
	// ResNet50 has no placement preference (Figure 2).
	ResNet50 = Profile{
		Name: "ResNet50", NetworkIntensive: false, ImagesPerSecPerGPU: 105,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 1.0,
			cluster.LocalityRack:    0.97,
			cluster.LocalityDomain:  0.94,
			cluster.LocalityNone:    0.90,
		},
	}
	// ResNet152 is a deeper, still compute-bound ResNet used to diversify
	// synthetic workloads.
	ResNet152 = Profile{
		Name: "ResNet152", NetworkIntensive: false, ImagesPerSecPerGPU: 42,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 1.0,
			cluster.LocalityRack:    0.95,
			cluster.LocalityDomain:  0.90,
			cluster.LocalityNone:    0.85,
		},
	}
	// GNMT models a recurrent machine-translation workload: moderately
	// network intensive.
	GNMT = Profile{
		Name: "GNMT", NetworkIntensive: true, ImagesPerSecPerGPU: 30,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 0.95,
			cluster.LocalityRack:    0.65,
			cluster.LocalityDomain:  0.50,
			cluster.LocalityNone:    0.40,
		},
	}
	// DeepSpeech models a speech-recognition workload.
	DeepSpeech = Profile{
		Name: "DeepSpeech", NetworkIntensive: false, ImagesPerSecPerGPU: 55,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 0.99,
			cluster.LocalityRack:    0.85,
			cluster.LocalityDomain:  0.72,
			cluster.LocalityNone:    0.63,
		},
	}
)

// Catalog returns every built-in model family, ordered with the Figure 2
// models first.
func Catalog() []Profile {
	return []Profile{VGG16, VGG19, AlexNet, InceptionV3, ResNet50, ResNet152, GNMT, DeepSpeech}
}

// Figure2Models returns the five models plotted in the paper's Figure 2, in
// the figure's order.
func Figure2Models() []Profile {
	return []Profile{VGG16, VGG19, AlexNet, InceptionV3, ResNet50}
}

// ByName returns the catalog profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// NetworkIntensiveProfiles returns the catalog families with strict locality
// preferences (used to build workload mixes).
func NetworkIntensiveProfiles() []Profile {
	var out []Profile
	for _, p := range Catalog() {
		if p.NetworkIntensive {
			out = append(out, p)
		}
	}
	return out
}

// ComputeIntensiveProfiles returns the catalog families without strict
// locality preferences.
func ComputeIntensiveProfiles() []Profile {
	var out []Profile
	for _, p := range Catalog() {
		if !p.NetworkIntensive {
			out = append(out, p)
		}
	}
	return out
}

// GenericNetworkIntensive and GenericComputeIntensive are synthetic profiles
// used by microbenchmarks that sweep the fraction of network-intensive apps
// (Figure 9) without tying results to a specific model family.
var (
	GenericNetworkIntensive = Profile{
		Name: "generic-network", NetworkIntensive: true, ImagesPerSecPerGPU: 60,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 0.95,
			cluster.LocalityRack:    0.55,
			cluster.LocalityDomain:  0.40,
			cluster.LocalityNone:    0.32,
		},
	}
	GenericComputeIntensive = Profile{
		Name: "generic-compute", NetworkIntensive: false, ImagesPerSecPerGPU: 90,
		Slowdown: map[cluster.Locality]float64{
			cluster.LocalitySlot:    1.0,
			cluster.LocalityMachine: 1.0,
			cluster.LocalityRack:    0.96,
			cluster.LocalityDomain:  0.92,
			cluster.LocalityNone:    0.88,
		},
	}
)

// sortedMachineIDs returns alloc's machines sorted by descending GPU count
// then ascending ID, a deterministic order for greedy packing.
func sortedMachineIDs(alloc cluster.Alloc) []cluster.MachineID {
	ids := alloc.Machines()
	sort.Slice(ids, func(i, j int) bool {
		if alloc[ids[i]] != alloc[ids[j]] {
			return alloc[ids[i]] > alloc[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
