package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"themis/internal/cluster"
	"themis/internal/race"
)

func testTopo(t *testing.T, machines, gpus, perRack int) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: machines, GPUs: gpus, SlotSize: 2}},
		MachinesPerRack: perRack,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestCatalogProfilesValid(t *testing.T) {
	for _, p := range append(Catalog(), GenericNetworkIntensive, GenericComputeIntensive) {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("VGG16")
	if !ok || p.Name != "VGG16" {
		t.Errorf("ByName(VGG16) = %v, %v", p, ok)
	}
	if _, ok := ByName("NoSuchModel"); ok {
		t.Error("ByName should fail for unknown model")
	}
}

func TestCatalogPartition(t *testing.T) {
	net := NetworkIntensiveProfiles()
	comp := ComputeIntensiveProfiles()
	if len(net)+len(comp) != len(Catalog()) {
		t.Errorf("partition sizes %d+%d != catalog %d", len(net), len(comp), len(Catalog()))
	}
	for _, p := range net {
		if !p.NetworkIntensive {
			t.Errorf("%s in network-intensive set but not marked", p.Name)
		}
	}
}

func TestSensitivityShape(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	oneServer := cluster.Alloc{0: 4}
	twoServers := cluster.Alloc{0: 2, 1: 2}
	crossRack := cluster.Alloc{0: 2, 2: 2}

	// VGG16 (network-intensive): spreading across servers must cost a lot.
	vggLocal := VGG16.Throughput(topo, oneServer)
	vggSpread := VGG16.Throughput(topo, twoServers)
	if vggSpread >= 0.75*vggLocal {
		t.Errorf("VGG16 spread throughput %v not much lower than local %v", vggSpread, vggLocal)
	}
	// ResNet50 (compute-intensive): spreading must cost little.
	resLocal := ResNet50.Throughput(topo, oneServer)
	resSpread := ResNet50.Throughput(topo, twoServers)
	if resSpread < 0.9*resLocal {
		t.Errorf("ResNet50 spread throughput %v dropped too much from %v", resSpread, resLocal)
	}
	// Wider spreads are never faster.
	if VGG16.SOf(topo, crossRack) > VGG16.SOf(topo, twoServers) {
		t.Error("cross-rack S should not exceed rack-local S")
	}
	// Single GPU never slows down.
	if got := VGG16.SOf(topo, cluster.Alloc{0: 1}); got != 1 {
		t.Errorf("single-GPU S = %v, want 1", got)
	}
}

func TestSpeedupMonotoneInGPUs(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	if VGG16.Speedup(topo, cluster.Alloc{0: 4}) <= VGG16.Speedup(topo, cluster.Alloc{0: 2}) {
		t.Error("more GPUs on the same machine should increase speedup")
	}
}

func TestPickPrefersAnchorMachines(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	free := cluster.Alloc{0: 2, 1: 4, 2: 4}
	anchor := cluster.Alloc{0: 2}
	got := Pick(topo, free, anchor, 2)
	if got[0] != 2 {
		t.Errorf("Pick should extend anchor machine 0 first, got %v", got)
	}
}

func TestPickPacksFewMachines(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	free := cluster.Alloc{0: 1, 1: 1, 2: 4, 3: 1}
	got := Pick(topo, free, cluster.NewAlloc(), 4)
	if got[2] != 4 || got.Total() != 4 {
		t.Errorf("Pick should pack onto machine 2, got %v", got)
	}
}

func TestPickPrefersAnchorRack(t *testing.T) {
	// 2 machines per rack; anchor on machine 0 (rack 0); free on machines 1
	// (rack 0) and 2 (rack 1) equally.
	topo := testTopo(t, 4, 4, 2)
	free := cluster.Alloc{1: 2, 2: 2}
	anchor := cluster.Alloc{0: 4}
	got := Pick(topo, free, anchor, 2)
	if got[1] != 2 {
		t.Errorf("Pick should stay in anchor rack, got %v", got)
	}
}

func TestPickBounded(t *testing.T) {
	topo := testTopo(t, 2, 4, 2)
	free := cluster.Alloc{0: 1, 1: 1}
	got := Pick(topo, free, cluster.NewAlloc(), 10)
	if got.Total() != 2 {
		t.Errorf("Pick should be capped by free pool, got %v", got)
	}
	if got := Pick(topo, free, cluster.NewAlloc(), 0); !got.IsEmpty() {
		t.Errorf("Pick with count=0 should be empty, got %v", got)
	}
}

// TestPickProperties checks, over random free vectors, that Pick never
// exceeds the free pool, never exceeds the requested count and never
// fabricates machines.
func TestPickProperties(t *testing.T) {
	topo := testTopo(t, 8, 4, 4)
	f := func(seed uint32, count uint8) bool {
		free := cluster.NewAlloc()
		s := seed
		for m := 0; m < 8; m++ {
			s = s*1664525 + 1013904223
			free[cluster.MachineID(m)] = int(s % 5)
			if free[cluster.MachineID(m)] == 0 {
				delete(free, cluster.MachineID(m))
			}
		}
		want := int(count % 24)
		got := Pick(topo, free, cluster.NewAlloc(), want)
		if got.Total() > want {
			return false
		}
		if got.Total() > free.Total() {
			return false
		}
		for m, n := range got {
			if n < 0 || n > free[m] {
				return false
			}
		}
		// Pick must take as many as available up to want.
		expect := want
		if free.Total() < want {
			expect = free.Total()
		}
		return got.Total() == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitAmongJobs(t *testing.T) {
	topo := testTopo(t, 4, 4, 2)
	total := cluster.Alloc{0: 4, 1: 4}
	parts := SplitAmongJobs(topo, total, 3, 4)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	sum := cluster.NewAlloc()
	for _, p := range parts {
		sum = sum.Add(p)
	}
	if !sum.Equal(total) {
		t.Errorf("parts sum %v != total %v", sum, total)
	}
	// Each of the first two jobs should get a whole machine (packed).
	if parts[0].Total() != 4 || len(parts[0].Machines()) != 1 {
		t.Errorf("first job should be packed on one machine, got %v", parts[0])
	}
	if parts[2].Total() != 0 {
		t.Errorf("third job should get nothing, got %v", parts[2])
	}
}

func TestSatisfiesMaxMachines(t *testing.T) {
	cases := []struct {
		alloc cluster.Alloc
		max   int
		want  bool
	}{
		{cluster.Alloc{0: 4}, 1, true},
		{cluster.Alloc{0: 2, 1: 2}, 1, false},
		{cluster.Alloc{0: 2, 1: 2}, 2, true},
		{cluster.Alloc{0: 1, 1: 1, 2: 1}, 2, false},
		{cluster.Alloc{0: 2, 1: 0}, 1, true}, // zero entries don't count as machines
		{cluster.Alloc{0: 1, 1: 1}, 0, true}, // 0 = unconstrained
		{cluster.NewAlloc(), 1, true},
	}
	for _, c := range cases {
		if got := SatisfiesMaxMachines(c.alloc, c.max); got != c.want {
			t.Errorf("SatisfiesMaxMachines(%v, %d) = %t, want %t", c.alloc, c.max, got, c.want)
		}
	}
	if SatisfiesConstraints(cluster.Alloc{0: 1, 1: 3}, 2, 2) {
		t.Error("SatisfiesConstraints ignored the per-machine minimum")
	}
	if SatisfiesConstraints(cluster.Alloc{0: 2, 1: 2}, 2, 1) {
		t.Error("SatisfiesConstraints ignored the machine-spread cap")
	}
	if !SatisfiesConstraints(cluster.Alloc{0: 2, 1: 2}, 2, 2) {
		t.Error("SatisfiesConstraints rejected a conforming allocation")
	}
}

func TestFigure2ModelsOrder(t *testing.T) {
	models := Figure2Models()
	want := []string{"VGG16", "VGG19", "AlexNet", "Inceptionv3", "ResNet50"}
	if len(models) != len(want) {
		t.Fatalf("Figure2Models returned %d models, want %d", len(models), len(want))
	}
	for i, m := range models {
		if m.Name != want[i] {
			t.Errorf("Figure2Models[%d] = %s, want %s", i, m.Name, want[i])
		}
	}
}

func multiDomainTopo(t *testing.T) *cluster.Topology {
	t.Helper()
	// two domains x two racks x two machines x 4 GPUs
	var machines []cluster.Machine
	for i := 0; i < 8; i++ {
		machines = append(machines, cluster.Machine{
			ID: cluster.MachineID(i), Rack: cluster.RackID(i / 2),
			Domain: cluster.DomainID(i / 4), NumGPUs: 4, SlotSize: 2,
			GPU: cluster.GPUTypeP100,
		})
	}
	topo, err := cluster.NewTopology(machines)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPickFillsDomainBeforeSpilling(t *testing.T) {
	topo := multiDomainTopo(t)
	// Domain 0 has 6 free GPUs (4+2), domain 1 has 8. A 6-GPU pick should
	// stay entirely inside domain 1 rather than straddle the fabric.
	free := cluster.Alloc{0: 4, 1: 2, 4: 4, 5: 4}
	got := Pick(topo, free, cluster.NewAlloc(), 6)
	if got.Total() != 6 {
		t.Fatalf("picked %d GPUs, want 6", got.Total())
	}
	for _, m := range got.Machines() {
		if topo.Domain(m) != 1 {
			t.Errorf("pick straddles domains: %v", got)
		}
	}
}

func TestPickPrefersAnchorDomain(t *testing.T) {
	topo := multiDomainTopo(t)
	free := cluster.Alloc{2: 2, 4: 4}
	anchor := cluster.Alloc{0: 2}
	got := Pick(topo, free, anchor, 2)
	if got[2] != 2 {
		t.Errorf("pick should stay in anchor's domain 0: %v", got)
	}
}

func TestConstraintSatisfies(t *testing.T) {
	topo := multiDomainTopo(t)
	cases := []struct {
		name  string
		alloc cluster.Alloc
		c     Constraint
		want  bool
	}{
		{"zero constraint", cluster.Alloc{0: 1, 4: 1}, Constraint{}, true},
		{"min ok", cluster.Alloc{0: 2, 1: 2}, Constraint{MinGPUsPerMachine: 2}, true},
		{"min violated", cluster.Alloc{0: 2, 1: 1}, Constraint{MinGPUsPerMachine: 2}, false},
		{"max ok", cluster.Alloc{0: 2, 1: 2}, Constraint{MaxMachines: 2}, true},
		{"max violated", cluster.Alloc{0: 1, 1: 1, 2: 1}, Constraint{MaxMachines: 2}, false},
		{"domain ok", cluster.Alloc{0: 2, 3: 2}, Constraint{Domain: 0, HasDomain: true}, true},
		{"domain violated", cluster.Alloc{0: 2, 4: 2}, Constraint{Domain: 0, HasDomain: true}, false},
		{"flavor ok", cluster.Alloc{0: 2}, Constraint{Flavor: cluster.GPUTypeP100}, true},
		{"flavor violated", cluster.Alloc{0: 2}, Constraint{Flavor: cluster.GPUTypeK80}, false},
		{"empty alloc", cluster.Alloc{}, Constraint{MinGPUsPerMachine: 8, Flavor: cluster.GPUTypeK80}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Satisfies(topo, c.alloc, c.c); got != c.want {
				t.Errorf("Satisfies(%v, %+v) = %v, want %v", c.alloc, c.c, got, c.want)
			}
		})
	}
}

func TestConstraintFeasible(t *testing.T) {
	topo := multiDomainTopo(t)
	if !(Constraint{MinGPUsPerMachine: 4}).Feasible(topo) {
		t.Error("min=4 should be feasible on 4-GPU machines")
	}
	if (Constraint{MinGPUsPerMachine: 5}).Feasible(topo) {
		t.Error("min=5 should be infeasible on 4-GPU machines")
	}
	if (Constraint{Flavor: cluster.GPUTypeK80}).Feasible(topo) {
		t.Error("K80 flavor should be infeasible on an all-P100 cluster")
	}
	if !(Constraint{Domain: 1, HasDomain: true}).Feasible(topo) {
		t.Error("domain 1 exists and should be feasible")
	}
	if (Constraint{Domain: 7, HasDomain: true}).Feasible(topo) {
		t.Error("domain 7 does not exist")
	}
}

func TestPickConstrained(t *testing.T) {
	topo := multiDomainTopo(t)
	free := cluster.Alloc{0: 4, 1: 1, 2: 2, 4: 4, 5: 4}

	// min-per-machine: machine 1's lone free GPU must not be used.
	got := PickConstrained(topo, free, cluster.NewAlloc(), 6, Constraint{MinGPUsPerMachine: 2})
	if !Satisfies(topo, got, Constraint{MinGPUsPerMachine: 2}) {
		t.Errorf("min constraint violated: %v", got)
	}
	if got.Total() != 6 {
		t.Errorf("picked %d, want 6", got.Total())
	}

	// domain affinity: only domain-0 machines may appear even though domain 1
	// has more free capacity.
	got = PickConstrained(topo, free, cluster.NewAlloc(), 6, Constraint{Domain: 0, HasDomain: true})
	for _, m := range got.Machines() {
		if topo.Domain(m) != 0 {
			t.Errorf("domain constraint violated: %v", got)
		}
	}
	if got.Total() != 6 {
		t.Errorf("picked %d, want 6 (domain 0 has 7 free)", got.Total())
	}

	// machine cap: at most 2 machines used including the anchor's.
	anchor := cluster.Alloc{0: 2}
	got = PickConstrained(topo, free, anchor, 8, Constraint{MaxMachines: 2})
	if !Satisfies(topo, got.Add(anchor), Constraint{MaxMachines: 2}) {
		t.Errorf("max-machines violated: picked %v anchor %v", got, anchor)
	}

	// infeasible: wanting 1 GPU under a floor of 2 yields nothing on fresh
	// machines.
	got = PickConstrained(topo, cluster.Alloc{3: 1}, cluster.NewAlloc(), 1, Constraint{MinGPUsPerMachine: 2})
	if got.Total() != 0 {
		t.Errorf("expected empty pick, got %v", got)
	}
}

// TestPickerMatchesPick pins PickInto to Pick bit-for-bit: same preference
// ladder, same sort tie-breaks, across a reused Picker whose scratch carries
// state between calls.
func TestPickerMatchesPick(t *testing.T) {
	topo := multiDomainTopo(t)
	rng := rand.New(rand.NewSource(19))
	var p Picker
	dst := cluster.NewAlloc()
	for trial := 0; trial < 500; trial++ {
		free := cluster.NewAlloc()
		anchor := cluster.NewAlloc()
		for m := 0; m < topo.NumMachines(); m++ {
			cap := topo.Machine(cluster.MachineID(m)).NumGPUs
			if rng.Intn(3) != 0 {
				free[cluster.MachineID(m)] = rng.Intn(cap + 1)
			}
			if rng.Intn(4) == 0 {
				anchor[cluster.MachineID(m)] = 1 + rng.Intn(cap)
			}
		}
		count := rng.Intn(12)
		want := Pick(topo, free, anchor, count)
		got := p.PickInto(dst, topo, free, anchor, count)
		if !got.Equal(want) {
			t.Fatalf("trial %d: PickInto %v != Pick %v (free=%v anchor=%v count=%d)",
				trial, got, want, free, anchor, count)
		}
		for m, n := range got {
			if want[m] != n {
				t.Fatalf("trial %d: representation differs at machine %d", trial, m)
			}
		}
	}
}

// TestPickerSteadyStateAllocs pins the point of the Picker: after warmup a
// pick allocates nothing.
func TestPickerSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	topo := multiDomainTopo(t)
	free := cluster.Alloc{0: 4, 1: 2, 4: 4, 5: 4}
	anchor := cluster.Alloc{0: 2}
	var p Picker
	dst := cluster.NewAlloc()
	p.PickInto(dst, topo, free, anchor, 6)
	allocs := testing.AllocsPerRun(100, func() {
		p.PickInto(dst, topo, free, anchor, 6)
	})
	if allocs != 0 {
		t.Fatalf("PickInto allocated %v times per run in steady state", allocs)
	}
}
