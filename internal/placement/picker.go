package placement

import (
	"cmp"
	"slices"
	"sort"

	"themis/internal/cluster"
)

// Pick greedily selects up to count GPUs from the free vector in a
// placement-sensitive manner, producing the allocation to add.
//
// Preference order:
//  1. machines where anchor (the app's existing allocation) already holds
//     GPUs — extending an allocation in place keeps its locality tight;
//  2. machines in racks the anchor already touches;
//  3. otherwise machines with the most free GPUs, so the picked GPUs pack
//     into as few machines (and racks) as possible.
//
// This is the greedy job-level assignment of §5.2 step 4 and the leftover
// allocation rule of §5.1 step 3. It never picks more than count GPUs and
// never more than free allows; the result may hold fewer than count GPUs if
// the free pool is smaller.
func Pick(topo *cluster.Topology, free cluster.Alloc, anchor cluster.Alloc, count int) cluster.Alloc {
	picked := cluster.NewAlloc()
	if count <= 0 {
		return picked
	}
	remaining := free.Clone()
	need := count

	take := func(m cluster.MachineID) {
		if need <= 0 {
			return
		}
		n := remaining[m]
		if n <= 0 {
			return
		}
		if n > need {
			n = need
		}
		picked[m] += n
		remaining[m] -= n
		need -= n
	}

	// Pass 1: machines the anchor already uses, largest anchor share first.
	for _, m := range sortedMachineIDs(anchor) {
		take(m)
		if need == 0 {
			return picked
		}
	}

	// Pass 2: machines in racks the anchor already touches.
	anchorRacks := make(map[cluster.RackID]bool)
	for _, m := range anchor.Machines() {
		anchorRacks[topo.Rack(m)] = true
	}
	if len(anchorRacks) > 0 {
		for _, m := range machinesByFree(remaining) {
			if anchorRacks[topo.Rack(m)] {
				take(m)
				if need == 0 {
					return picked
				}
			}
		}
	}

	// Pass 3: pack into as few machines as possible, filling one fabric
	// domain before spilling into the next. Domains the anchor already
	// touches come first, then domains by aggregate free GPUs; within a
	// domain, prefer the rack with the most aggregate free GPUs so
	// multi-machine spills stay rack-local. On single-domain (flat)
	// topologies the domain loop is a no-op and the order reduces to the
	// pre-hierarchy rack packing.
	anchorDomains := make(map[cluster.DomainID]bool)
	for _, m := range anchor.Machines() {
		anchorDomains[topo.Domain(m)] = true
	}
	rackFree := make(map[cluster.RackID]int)
	domainFree := make(map[cluster.DomainID]int)
	for m, n := range remaining {
		if n > 0 {
			rackFree[topo.Rack(m)] += n
			domainFree[topo.Domain(m)] += n
		}
	}
	domains := make([]cluster.DomainID, 0, len(domainFree))
	for d := range domainFree {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool {
		di, dj := domains[i], domains[j]
		if anchorDomains[di] != anchorDomains[dj] {
			return anchorDomains[di]
		}
		if domainFree[di] != domainFree[dj] {
			return domainFree[di] > domainFree[dj]
		}
		return di < dj
	})
	racks := make([]cluster.RackID, 0, len(rackFree))
	for r := range rackFree {
		racks = append(racks, r)
	}
	sort.Slice(racks, func(i, j int) bool {
		if rackFree[racks[i]] != rackFree[racks[j]] {
			return rackFree[racks[i]] > rackFree[racks[j]]
		}
		return racks[i] < racks[j]
	})
	for _, d := range domains {
		for _, r := range racks {
			for _, m := range machinesByFree(remaining) {
				if topo.Rack(m) != r || topo.Domain(m) != d {
					continue
				}
				take(m)
				if need == 0 {
					return picked
				}
			}
		}
	}
	return picked
}

// PickSingleGPU picks one GPU from free, preferring machines where anchor
// already holds GPUs (the leftover-allocation rule: place the new GPU on a
// machine already part of the app's allocation when possible).
func PickSingleGPU(topo *cluster.Topology, free cluster.Alloc, anchor cluster.Alloc) cluster.Alloc {
	return Pick(topo, free, anchor, 1)
}

// SatisfiesMinPerMachine reports whether an allocation meets a per-machine
// minimum: every machine used holds at least min GPUs. It implements the
// placement constraints of §6 — allocations that violate a job's constraint
// have placement sensitivity 0 and therefore cannot make progress.
func SatisfiesMinPerMachine(alloc cluster.Alloc, min int) bool {
	if min <= 0 {
		return true
	}
	for _, n := range alloc {
		if n > 0 && n < min {
			return false
		}
	}
	return true
}

// SatisfiesMaxMachines reports whether an allocation meets a machine-spread
// cap: the GPUs span at most max machines. It implements the slot/locality
// placement constraint a trace's placement block can carry — a gang that
// synchronises over NVLink only (or must stay rack-dense) cannot make
// progress when scattered wider, so such allocations value out like a
// violated per-machine minimum. max <= 0 means unconstrained.
func SatisfiesMaxMachines(alloc cluster.Alloc, max int) bool {
	if max <= 0 {
		return true
	}
	used := 0
	for _, n := range alloc {
		if n > 0 {
			used++
			if used > max {
				return false
			}
		}
	}
	return true
}

// SatisfiesConstraints combines the per-machine minimum and machine-spread
// placement checks — the full constraint set a job can carry (§6 and the
// trace v2 placement block). Allocations violating either constraint have
// placement sensitivity 0 and cannot make progress.
func SatisfiesConstraints(alloc cluster.Alloc, minPerMachine, maxMachines int) bool {
	return SatisfiesMinPerMachine(alloc, minPerMachine) && SatisfiesMaxMachines(alloc, maxMachines)
}

// Constraint is the full placement-constraint set a job can carry: the §6
// per-machine GPU floor and machine-spread cap, plus the trace v2 affinity
// constraints binding the job to one fabric domain or GPU flavor. The zero
// value is unconstrained.
type Constraint struct {
	// MinGPUsPerMachine is the per-machine GPU floor; <= 1 means none.
	MinGPUsPerMachine int
	// MaxMachines caps how many machines the GPUs may span; <= 0 means none.
	MaxMachines int
	// Domain restricts the job to machines of one fabric domain when
	// HasDomain is set.
	Domain    cluster.DomainID
	HasDomain bool
	// Flavor restricts the job to machines carrying one GPU model; empty
	// means any.
	Flavor cluster.GPUType
}

// IsZero reports whether the constraint set is fully unconstrained.
func (c Constraint) IsZero() bool {
	return c.MinGPUsPerMachine <= 1 && c.MaxMachines <= 0 && !c.HasDomain && c.Flavor == ""
}

// Admits reports whether machine m may hold any of the job's GPUs under the
// constraint's domain and flavor affinities.
func (c Constraint) Admits(topo *cluster.Topology, m cluster.MachineID) bool {
	if c.HasDomain && topo.Domain(m) != c.Domain {
		return false
	}
	if c.Flavor != "" && topo.Machine(m).GPU != c.Flavor {
		return false
	}
	return true
}

// Feasible reports whether any allocation at all can satisfy the constraint
// on topo: at least one admitted machine exists with capacity for the
// per-machine floor. Jobs with infeasible constraints can never run and must
// be rejected rather than scheduled (they would otherwise starve forever —
// the tiresias-loop bug).
func (c Constraint) Feasible(topo *cluster.Topology) bool {
	min := c.MinGPUsPerMachine
	if min < 1 {
		min = 1
	}
	for _, m := range topo.Machines() {
		if c.Admits(topo, m.ID) && m.NumGPUs >= min {
			return true
		}
	}
	return false
}

// Satisfies reports whether alloc meets the full constraint set on topo.
// An empty allocation trivially satisfies any constraint.
func Satisfies(topo *cluster.Topology, alloc cluster.Alloc, c Constraint) bool {
	if !SatisfiesConstraints(alloc, c.MinGPUsPerMachine, c.MaxMachines) {
		return false
	}
	if c.HasDomain || c.Flavor != "" {
		for m, n := range alloc {
			if n > 0 && !c.Admits(topo, m) {
				return false
			}
		}
	}
	return true
}

// PickConstrained greedily selects up to count GPUs from free like Pick, but
// only produces allocations that keep anchor+picked within the constraint
// set: machines outside the job's domain/flavor affinity are never used, no
// machine ends up under the per-machine GPU floor, and the combined spread
// stays within the machine cap. The result may hold fewer than count GPUs —
// possibly zero — when the constraint admits nothing better; callers decide
// whether a partial gang is worth running.
func PickConstrained(topo *cluster.Topology, free cluster.Alloc, anchor cluster.Alloc, count int, c Constraint) cluster.Alloc {
	if c.IsZero() {
		return Pick(topo, free, anchor, count)
	}
	eligible := cluster.NewAlloc()
	for m, n := range free {
		if n > 0 && c.Admits(topo, m) {
			eligible[m] = n
		}
	}
	minPer := c.MinGPUsPerMachine
	if minPer < 1 {
		minPer = 1
	}
	usedMachines := func(picked cluster.Alloc) int {
		used := make(map[cluster.MachineID]bool)
		for m, n := range anchor {
			if n > 0 {
				used[m] = true
			}
		}
		for m, n := range picked {
			if n > 0 {
				used[m] = true
			}
		}
		return len(used)
	}
	picked := cluster.NewAlloc()
	need := count
	take := func(m cluster.MachineID) {
		if need <= 0 {
			return
		}
		n := eligible[m]
		if n <= 0 {
			return
		}
		if n > need {
			n = need
		}
		base := anchor[m] + picked[m]
		if base+n < minPer {
			return // would leave the machine under the per-machine floor
		}
		if c.MaxMachines > 0 && base == 0 && usedMachines(picked) >= c.MaxMachines {
			return // a fresh machine would exceed the spread cap
		}
		picked[m] += n
		eligible[m] -= n
		need -= n
	}

	// Same preference ladder as Pick: anchor machines, anchor racks, then
	// domain-then-rack packing over the rest.
	for _, m := range sortedMachineIDs(anchor) {
		take(m)
	}
	if need > 0 {
		anchorRacks := make(map[cluster.RackID]bool)
		for _, m := range anchor.Machines() {
			anchorRacks[topo.Rack(m)] = true
		}
		if len(anchorRacks) > 0 {
			for _, m := range machinesByFree(eligible) {
				if anchorRacks[topo.Rack(m)] {
					take(m)
				}
			}
		}
	}
	if need > 0 {
		for _, m := range machinesByFree(eligible) {
			take(m)
		}
	}
	return picked
}

// machinesByFree returns the machines with free GPUs sorted by descending
// free count, then ascending ID.
func machinesByFree(free cluster.Alloc) []cluster.MachineID {
	ids := free.Machines()
	sort.Slice(ids, func(i, j int) bool {
		if free[ids[i]] != free[ids[j]] {
			return free[ids[i]] > free[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// SplitAmongJobs partitions an app-level allocation across jobs that each
// want up to maxPerJob GPUs, assigning GPUs to jobs in a placement-sensitive
// manner: each job is packed onto as few machines as possible before moving
// to the next job. jobs is the number of jobs wanting GPUs; the result has
// one allocation per job (possibly empty), in job order.
func SplitAmongJobs(topo *cluster.Topology, total cluster.Alloc, jobs int, maxPerJob int) []cluster.Alloc {
	out := make([]cluster.Alloc, jobs)
	remaining := total.Clone()
	for j := 0; j < jobs; j++ {
		out[j] = Pick(topo, remaining, cluster.NewAlloc(), maxPerJob)
		var err error
		remaining, err = remaining.Sub(out[j])
		if err != nil {
			// Pick never selects more than remaining holds.
			panic("placement: SplitAmongJobs internal inconsistency: " + err.Error())
		}
	}
	return out
}

// Picker is Pick with caller-owned scratch: the remaining vector, the
// anchor/rack/domain index maps and every ordering slice are reused across
// calls, so a steady-state valuation round picks candidates without
// allocating. PickInto is bit-identical to Pick — same three preference
// passes, same total-order sorts (count/free descending, ID ascending), same
// stale-snapshot behavior in pass 2 and per-(domain,rack) recomputation in
// pass 3 — which TestPickerMatchesPick pins on randomized topologies.
//
// A Picker is single-goroutine state; each BidValuator/RhoEstimator owns its
// own.
type Picker struct {
	remaining     cluster.Alloc
	anchorIDs     []cluster.MachineID
	byFree        []cluster.MachineID
	anchorRacks   map[cluster.RackID]bool
	anchorDomains map[cluster.DomainID]bool
	rackFree      map[cluster.RackID]int
	domainFree    map[cluster.DomainID]int
	domains       []cluster.DomainID
	racks         []cluster.RackID
}

// PickInto is Pick writing into dst (cleared first; allocated when nil). The
// returned allocation is dst, valid until the caller reuses it; free and
// anchor are only read.
func (p *Picker) PickInto(dst cluster.Alloc, topo *cluster.Topology, free, anchor cluster.Alloc, count int) cluster.Alloc {
	if dst == nil {
		dst = cluster.NewAlloc()
	} else {
		clear(dst)
	}
	if count <= 0 {
		return dst
	}
	if p.remaining == nil {
		p.remaining = cluster.NewAlloc()
	}
	clear(p.remaining)
	remaining := p.remaining
	for m, n := range free {
		if n != 0 {
			remaining[m] = n
		}
	}
	need := count

	take := func(m cluster.MachineID) {
		if need <= 0 {
			return
		}
		n := remaining[m]
		if n <= 0 {
			return
		}
		if n > need {
			n = need
		}
		dst[m] += n
		remaining[m] -= n
		need -= n
	}

	// Pass 1: machines the anchor already uses, largest anchor share first.
	for _, m := range p.sortedByCount(anchor) {
		take(m)
		if need == 0 {
			return dst
		}
	}

	// Pass 2: machines in racks the anchor already touches. The by-free
	// order is snapshotted once, before any pass-2 take, exactly like Pick.
	if p.anchorRacks == nil {
		p.anchorRacks = make(map[cluster.RackID]bool)
	}
	clear(p.anchorRacks)
	for m, n := range anchor {
		if n > 0 {
			p.anchorRacks[topo.Rack(m)] = true
		}
	}
	if len(p.anchorRacks) > 0 {
		for _, m := range p.machinesByFree(remaining) {
			if p.anchorRacks[topo.Rack(m)] {
				take(m)
				if need == 0 {
					return dst
				}
			}
		}
	}

	// Pass 3: pack into as few machines as possible, domain before rack,
	// anchor domains first — Pick's comparators verbatim.
	if p.anchorDomains == nil {
		p.anchorDomains = make(map[cluster.DomainID]bool)
		p.rackFree = make(map[cluster.RackID]int)
		p.domainFree = make(map[cluster.DomainID]int)
	}
	clear(p.anchorDomains)
	clear(p.rackFree)
	clear(p.domainFree)
	for m, n := range anchor {
		if n > 0 {
			p.anchorDomains[topo.Domain(m)] = true
		}
	}
	for m, n := range remaining {
		if n > 0 {
			p.rackFree[topo.Rack(m)] += n
			p.domainFree[topo.Domain(m)] += n
		}
	}
	domains := p.domains[:0]
	for d := range p.domainFree {
		domains = append(domains, d)
	}
	slices.SortFunc(domains, func(di, dj cluster.DomainID) int {
		if p.anchorDomains[di] != p.anchorDomains[dj] {
			if p.anchorDomains[di] {
				return -1
			}
			return 1
		}
		if p.domainFree[di] != p.domainFree[dj] {
			return cmp.Compare(p.domainFree[dj], p.domainFree[di])
		}
		return cmp.Compare(di, dj)
	})
	p.domains = domains
	racks := p.racks[:0]
	for r := range p.rackFree {
		racks = append(racks, r)
	}
	slices.SortFunc(racks, func(ri, rj cluster.RackID) int {
		if p.rackFree[ri] != p.rackFree[rj] {
			return cmp.Compare(p.rackFree[rj], p.rackFree[ri])
		}
		return cmp.Compare(ri, rj)
	})
	p.racks = racks
	for _, d := range domains {
		for _, r := range racks {
			for _, m := range p.machinesByFree(remaining) {
				if topo.Rack(m) != r || topo.Domain(m) != d {
					continue
				}
				take(m)
				if need == 0 {
					return dst
				}
			}
		}
	}
	return dst
}

// sortedByCount returns alloc's machines ordered by descending count then
// ascending ID (sortedMachineIDs over reused scratch).
func (p *Picker) sortedByCount(alloc cluster.Alloc) []cluster.MachineID {
	ids := p.anchorIDs[:0]
	for m, n := range alloc {
		if n > 0 {
			ids = append(ids, m)
		}
	}
	slices.SortFunc(ids, func(a, b cluster.MachineID) int {
		if alloc[a] != alloc[b] {
			return cmp.Compare(alloc[b], alloc[a])
		}
		return cmp.Compare(a, b)
	})
	p.anchorIDs = ids
	return ids
}

// machinesByFree mirrors the package function over reused scratch.
func (p *Picker) machinesByFree(free cluster.Alloc) []cluster.MachineID {
	ids := p.byFree[:0]
	for m, n := range free {
		if n > 0 {
			ids = append(ids, m)
		}
	}
	slices.SortFunc(ids, func(a, b cluster.MachineID) int {
		if free[a] != free[b] {
			return cmp.Compare(free[b], free[a])
		}
		return cmp.Compare(a, b)
	})
	p.byFree = ids
	return ids
}
