package workload

import (
	"math"
	"testing"
	"testing/quick"

	"themis/internal/placement"
)

func TestJobAdvance(t *testing.T) {
	j := NewJob("app-x", 0, 100, 4) // 100 serial GPU-minutes
	// 4 GPUs, ideal placement: finishes in 25 minutes.
	elapsed, done := j.Advance(0, 10, 4, 1.0)
	if done || elapsed != 10 {
		t.Fatalf("Advance(10) = (%v,%v), want (10,false)", elapsed, done)
	}
	if j.DoneWork != 40 || j.GPUTime != 40 {
		t.Errorf("DoneWork=%v GPUTime=%v, want 40,40", j.DoneWork, j.GPUTime)
	}
	elapsed, done = j.Advance(10, 100, 4, 1.0)
	if !done {
		t.Fatal("job should finish")
	}
	if math.Abs(elapsed-15) > 1e-9 {
		t.Errorf("elapsed = %v, want 15", elapsed)
	}
	if math.Abs(j.DoneAt-25) > 1e-9 {
		t.Errorf("DoneAt = %v, want 25", j.DoneAt)
	}
	// Further advances are no-ops.
	if e, d := j.Advance(25, 10, 4, 1.0); e != 0 || d {
		t.Errorf("Advance after done = (%v,%v), want (0,false)", e, d)
	}
}

func TestJobAdvanceWithSlowdown(t *testing.T) {
	j := NewJob("app-x", 0, 100, 4)
	// 4 GPUs at S=0.5: rate 2 serial-minutes per minute → 50 minutes total.
	j.Advance(0, 50, 4, 0.5)
	if !(math.Abs(j.DoneWork-100) < 1e-9) {
		t.Errorf("DoneWork = %v, want 100", j.DoneWork)
	}
	// GPU time reflects wall time × GPUs, i.e. 200 GPU-minutes — placement
	// inefficiency costs GPU time.
	if math.Abs(j.GPUTime-200) > 1e-9 {
		t.Errorf("GPUTime = %v, want 200", j.GPUTime)
	}
}

func TestJobKill(t *testing.T) {
	j := NewJob("app-x", 1, 100, 4)
	j.Kill(12)
	if j.Active() || j.KilledAt != 12 {
		t.Errorf("kill not recorded: %+v", j)
	}
	if e, d := j.Advance(12, 10, 4, 1); e != 0 || d {
		t.Error("killed job must not advance")
	}
	// Killing a finished job is a no-op.
	j2 := NewJob("app-x", 2, 10, 2)
	j2.Advance(0, 100, 2, 1)
	j2.Kill(50)
	if j2.Killed {
		t.Error("finished job should not be marked killed")
	}
}

func TestJobTimeToCompletion(t *testing.T) {
	j := NewJob("a", 0, 120, 4)
	if got := j.TimeToCompletion(4, 1); math.Abs(got-30) > 1e-9 {
		t.Errorf("TTC = %v, want 30", got)
	}
	if got := j.TimeToCompletion(0, 1); got != inf {
		t.Errorf("TTC with 0 GPUs = %v, want inf", got)
	}
}

func TestJobProgressAndIterations(t *testing.T) {
	j := NewJob("a", 0, 100, 4)
	j.TotalIterations = 500
	j.Advance(0, 5, 4, 1) // 20% done
	if math.Abs(j.Progress()-0.2) > 1e-9 {
		t.Errorf("Progress = %v, want 0.2", j.Progress())
	}
	if j.IterationsDone() != 100 {
		t.Errorf("IterationsDone = %d, want 100", j.IterationsDone())
	}
}

func TestAppAccounting(t *testing.T) {
	jobs := []*Job{NewJob("a", 0, 100, 4), NewJob("a", 1, 200, 2), NewJob("a", 2, 50, 4)}
	jobs[0].Quality, jobs[1].Quality, jobs[2].Quality = 0.5, 0.1, 0.9
	app := NewApp("a", 30, placement.VGG16, jobs)
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := app.TotalWork(); got != 350 {
		t.Errorf("TotalWork = %v, want 350", got)
	}
	if got := app.MaxParallelism(); got != 10 {
		t.Errorf("MaxParallelism = %v, want 10", got)
	}
	if app.BestJob() != jobs[1] {
		t.Errorf("BestJob should be job 1 (lowest quality)")
	}
	byQ := app.JobsByQuality()
	if byQ[0] != jobs[1] || byQ[2] != jobs[2] {
		t.Errorf("JobsByQuality order wrong")
	}
	jobs[2].Kill(5)
	if got := len(app.ActiveJobs()); got != 2 {
		t.Errorf("ActiveJobs = %d, want 2", got)
	}
	if got := app.RemainingWork(); got != 300 {
		t.Errorf("RemainingWork = %v, want 300", got)
	}
	if app.Finished() || app.CompletionTime() != NotFinished {
		t.Error("app should not be finished")
	}
	app.FinishedAt = 130
	if got := app.CompletionTime(); got != 100 {
		t.Errorf("CompletionTime = %v, want 100", got)
	}
}

func TestAppValidateRejectsBadJobs(t *testing.T) {
	app := NewApp("a", 0, placement.ResNet50, nil)
	if err := app.Validate(); err == nil {
		t.Error("empty app should fail validation")
	}
	j := NewJob("other", 0, 100, 4)
	app2 := NewApp("a", 0, placement.ResNet50, []*Job{j})
	if err := app2.Validate(); err == nil {
		t.Error("mismatched job ownership should fail validation")
	}
	j2 := NewJob("b", 0, -5, 4)
	app3 := NewApp("b", 0, placement.ResNet50, []*Job{j2})
	if err := app3.Validate(); err == nil {
		t.Error("non-positive work should fail validation")
	}
}

func TestGenerateMatchesPaperDistributions(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumApps = 400
	cfg.Seed = 7
	apps, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(apps)
	if st.NumApps != 400 {
		t.Fatalf("NumApps = %d", st.NumApps)
	}
	// Jobs per app: within [1,98], median near 23.
	if st.JobsPerAppMin < 1 || st.JobsPerAppMax > 98 {
		t.Errorf("jobs per app out of range: [%d,%d]", st.JobsPerAppMin, st.JobsPerAppMax)
	}
	if st.JobsPerAppMedian < 15 || st.JobsPerAppMedian > 32 {
		t.Errorf("jobs-per-app median = %v, want ≈23", st.JobsPerAppMedian)
	}
	// Task durations: median near 59 min (mixture pushes it slightly up).
	if st.TaskDurationP50 < 40 || st.TaskDurationP50 > 100 {
		t.Errorf("task duration median = %v, want ≈59-75", st.TaskDurationP50)
	}
	if st.TaskDurationMax > cfg.MaxTaskDuration*1.0001 {
		t.Errorf("task duration max %v exceeds cap %v", st.TaskDurationMax, cfg.MaxTaskDuration)
	}
	// Gang sizes: mostly 4.
	if st.GangSize4Fraction < 0.7 {
		t.Errorf("gang-size-4 fraction = %v, want ≥0.7", st.GangSize4Fraction)
	}
	// Mix of network-intensive apps near 40%.
	if st.NetworkAppFraction < 0.3 || st.NetworkAppFraction > 0.5 {
		t.Errorf("network-intensive fraction = %v, want ≈0.4", st.NetworkAppFraction)
	}
	// Mean inter-arrival near 20 minutes.
	if st.MeanInterArrival < 15 || st.MeanInterArrival > 25 {
		t.Errorf("mean inter-arrival = %v, want ≈20", st.MeanInterArrival)
	}
	// Arrival order.
	for i := 1; i < len(apps); i++ {
		if apps[i].SubmitTime < apps[i-1].SubmitTime {
			t.Fatalf("apps not in arrival order at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumApps = 20
	a1, err1 := Generate(cfg)
	a2, err2 := Generate(cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range a1 {
		if a1[i].SubmitTime != a2[i].SubmitTime || len(a1[i].Jobs) != len(a2[i].Jobs) {
			t.Fatalf("generation not deterministic at app %d", i)
		}
		for k := range a1[i].Jobs {
			if a1[i].Jobs[k].TotalWork != a2[i].Jobs[k].TotalWork {
				t.Fatalf("job work differs at app %d job %d", i, k)
			}
		}
	}
}

func TestGenerateContentionFactor(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumApps = 200
	base, _ := Generate(cfg)
	cfg.ContentionFactor = 4
	fast, _ := Generate(cfg)
	baseSpan := base[len(base)-1].SubmitTime
	fastSpan := fast[len(fast)-1].SubmitTime
	if fastSpan > baseSpan/2 {
		t.Errorf("4x contention span %v not much smaller than base %v", fastSpan, baseSpan)
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	bad := DefaultGeneratorConfig()
	bad.NumApps = 0
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for NumApps=0")
	}
	bad = DefaultGeneratorConfig()
	bad.DurationScale = 0
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for DurationScale=0")
	}
	bad = DefaultGeneratorConfig()
	bad.FractionNetworkIntensive = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for fraction > 1")
	}
}

func TestDurationCDF(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.NumApps = 50
	apps, _ := Generate(cfg)
	durs, cdf := DurationCDF(apps, 20)
	if len(durs) != 20 || len(cdf) != 20 {
		t.Fatalf("CDF lengths %d,%d", len(durs), len(cdf))
	}
	for i := 1; i < len(durs); i++ {
		if durs[i] < durs[i-1] || cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if cdf[len(cdf)-1] != 1.0 {
		t.Errorf("CDF should end at 1.0, got %v", cdf[len(cdf)-1])
	}
	if d, c := DurationCDF(nil, 10); d != nil || c != nil {
		t.Error("empty CDF should be nil")
	}
}

// TestAdvanceWorkConservation property: over random splits of an interval,
// total accrued work equals rate × elapsed regardless of how the interval is
// chopped up.
func TestAdvanceWorkConservation(t *testing.T) {
	f := func(chunks []uint8) bool {
		j := NewJob("a", 0, 1000, 4)
		now := 0.0
		for _, c := range chunks {
			dt := float64(c%17) + 0.25
			elapsed, _ := j.Advance(now, dt, 4, 0.75)
			now += elapsed
		}
		wantWork := 3.0 * now // 4 GPUs × 0.75
		if j.DoneAt != NotFinished {
			wantWork = j.TotalWork
		}
		return math.Abs(j.DoneWork-wantWork) < 1e-6 && j.DoneWork <= j.TotalWork+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
