// Package workload models the ML applications a Themis cluster schedules: an
// App is one user's hyperparameter-exploration activity, consisting of one or
// more Jobs (trials) that each train a model with a different hyperparameter
// configuration using a gang of GPUs (§2.1).
//
// The package also generates synthetic traces matching the distributional
// properties the paper reports for its production trace (§8.1): jobs per app
// between 1 and 98 with median 23, gang sizes of mostly 4 (some 2) GPUs,
// short task durations with median 59 minutes and long tasks with median 123
// minutes, Poisson app arrivals with a mean inter-arrival of 20 minutes, and
// a 60:40 mix of compute- vs network-intensive model families.
package workload

import (
	"fmt"
	"sort"

	"themis/internal/cluster"
	"themis/internal/placement"
)

// AppID identifies an application (one user's training activity).
type AppID string

// JobID identifies a single hyperparameter trial within an app.
type JobID string

// NotFinished is the sentinel completion time for jobs and apps that have
// not finished yet.
const NotFinished = -1

// Job is one hyperparameter trial: a gang-scheduled set of tasks that
// collectively process minibatches using synchronous SGD. Work is measured
// in serial GPU-minutes: the time the job would take on a single GPU with
// ideal placement.
type Job struct {
	ID    JobID
	App   AppID
	Index int

	// TotalWork is the serial work (GPU-minutes) needed to train this trial
	// to its target accuracy, assuming it is not killed early by the tuner.
	TotalWork float64
	// GangSize is the number of GPUs the job's tasks need simultaneously
	// (all-or-nothing gang scheduling). From the trace this is mostly 4,
	// sometimes 2.
	GangSize int
	// MaxParallelism is the largest number of GPUs the job can exploit
	// (G_ideal in §5.2). The tuner may lower it to deprioritise a job.
	MaxParallelism int
	// MinGPUsPerMachine is an optional placement constraint (§6): every
	// machine in the job's allocation must contribute at least this many
	// GPUs (e.g. a large model that must fit across co-located GPUs).
	// Allocations violating the constraint cannot make progress, so bids on
	// them value out at an unbounded ρ. Zero means unconstrained.
	MinGPUsPerMachine int
	// MaxMachines is the companion spread constraint (trace v2's placement
	// block): the job's gang may span at most this many machines (e.g. a
	// model whose gradient exchange only scales over NVLink/PCIe). Like
	// MinGPUsPerMachine, violating allocations make no progress. Zero means
	// unconstrained.
	MaxMachines int
	// DomainAffinity names the fabric domain the job must run inside (trace
	// v2 placement block; matched against Topology.DomainName). Empty means
	// any domain. Names unresolvable on the run's topology make the job
	// infeasible — the simulator rejects it at arrival.
	DomainAffinity string
	// FlavorAffinity names the GPU model (cluster.GPUType) the job requires;
	// empty means any flavor.
	FlavorAffinity string
	// TotalIterations is the number of SGD iterations TotalWork corresponds
	// to; used by the tuners' rung boundaries and the loss-curve estimator.
	TotalIterations int
	// Quality is the latent goodness of this trial's hyperparameters; lower
	// is better. The trial with the lowest Quality among an app's jobs is
	// the one that ultimately trains the best model.
	Quality float64
	// Seed derives this job's synthetic loss curve deterministically.
	Seed int64

	// Runtime state, owned by the simulator.

	// DoneWork is the serial-equivalent work completed so far.
	DoneWork float64
	// GPUTime is the GPU-minutes actually consumed so far (G × wall time),
	// which exceeds DoneWork when placement is sub-ideal.
	GPUTime float64
	// Killed marks trials terminated early by the app's tuner.
	Killed bool
	// KilledAt is the simulation time the trial was killed, or NotFinished.
	KilledAt float64
	// DoneAt is the simulation time the trial finished, or NotFinished.
	DoneAt float64
}

// NewJob returns a Job with runtime fields initialised.
func NewJob(app AppID, index int, totalWork float64, gangSize int) *Job {
	return &Job{
		ID:              JobID(fmt.Sprintf("%s/j%d", app, index)),
		App:             app,
		Index:           index,
		TotalWork:       totalWork,
		GangSize:        gangSize,
		MaxParallelism:  gangSize,
		TotalIterations: defaultIterations,
		KilledAt:        NotFinished,
		DoneAt:          NotFinished,
	}
}

// defaultIterations is the iteration count assigned to synthetic jobs when a
// trace does not specify one.
const defaultIterations = 1000

// RemainingWork returns the serial work left before the trial completes.
func (j *Job) RemainingWork() float64 {
	r := j.TotalWork - j.DoneWork
	if r < 0 {
		return 0
	}
	return r
}

// Active reports whether the job still needs GPUs (not done, not killed).
func (j *Job) Active() bool { return !j.Killed && j.DoneAt == NotFinished }

// PlacementConstraint resolves the job's placement constraints against a
// topology. The boolean is false when DomainAffinity names a domain the
// topology does not have — such a job can never run on this cluster and
// should be rejected rather than scheduled.
func (j *Job) PlacementConstraint(topo *cluster.Topology) (placement.Constraint, bool) {
	c := placement.Constraint{
		MinGPUsPerMachine: j.MinGPUsPerMachine,
		MaxMachines:       j.MaxMachines,
		Flavor:            cluster.GPUType(j.FlavorAffinity),
	}
	if j.DomainAffinity != "" {
		d, ok := topo.DomainByName(j.DomainAffinity)
		if !ok {
			return c, false
		}
		c.Domain, c.HasDomain = d, true
	}
	return c, true
}

// Progress returns the fraction of the trial's work completed, in [0, 1].
func (j *Job) Progress() float64 {
	if j.TotalWork <= 0 {
		return 1
	}
	p := j.DoneWork / j.TotalWork
	if p > 1 {
		return 1
	}
	return p
}

// IterationsDone returns the number of SGD iterations completed, derived
// from work progress.
func (j *Job) IterationsDone() int {
	return int(j.Progress() * float64(j.TotalIterations))
}

// Advance accrues work for running dt minutes on g GPUs with placement
// slowdown s, marking the job done at time now+dt' if it finishes within the
// interval. It returns the wall-clock minutes actually consumed (≤ dt) and
// whether the job completed.
func (j *Job) Advance(now, dt float64, g int, s float64) (elapsed float64, done bool) {
	if !j.Active() || g <= 0 || dt <= 0 {
		return 0, false
	}
	rate := float64(g) * s // serial work per minute
	if rate <= 0 {
		return 0, false
	}
	needed := j.RemainingWork() / rate
	elapsed = dt
	if needed <= dt {
		elapsed = needed
		done = true
	}
	j.DoneWork += rate * elapsed
	j.GPUTime += float64(g) * elapsed
	if done {
		j.DoneWork = j.TotalWork
		j.DoneAt = now + elapsed
	}
	return elapsed, done
}

// Kill marks the trial as terminated early by its tuner at time now.
func (j *Job) Kill(now float64) {
	if !j.Active() {
		return
	}
	j.Killed = true
	j.KilledAt = now
}

// TimeToCompletion estimates the wall-clock minutes to finish the trial on g
// GPUs with slowdown s. It returns +Inf when g is zero.
func (j *Job) TimeToCompletion(g int, s float64) float64 {
	if g <= 0 || s <= 0 {
		return inf
	}
	return j.RemainingWork() / (float64(g) * s)
}

const inf = float64(1 << 62)

// App is one ML application: a set of trials plus the model family whose
// placement sensitivity they share (§5.2 notes all jobs in an app have
// correlated placement sensitivity, so a single S_i per app suffices).
type App struct {
	ID         AppID
	SubmitTime float64
	Profile    placement.Profile
	Jobs       []*Job

	// FinishedAt is the simulation time the app identified and finished
	// training its best model, or NotFinished while running.
	FinishedAt float64

	// TIdeal caches the app's ideal (dedicated-cluster) running time in
	// minutes, computed by IdealRunningTime against a topology.
	TIdeal float64
}

// NewApp constructs an app with the given trials.
func NewApp(id AppID, submit float64, profile placement.Profile, jobs []*Job) *App {
	return &App{ID: id, SubmitTime: submit, Profile: profile, Jobs: jobs, FinishedAt: NotFinished}
}

// ActiveJobs returns the trials still needing GPUs, in index order.
func (a *App) ActiveJobs() []*Job {
	var out []*Job
	for _, j := range a.Jobs {
		if j.Active() {
			out = append(out, j)
		}
	}
	return out
}

// AppendActiveJobs appends the active jobs to buf (in Jobs order, like
// ActiveJobs) and returns it — the allocation-free variant for callers that
// keep a reusable buffer.
func (a *App) AppendActiveJobs(buf []*Job) []*Job {
	for _, j := range a.Jobs {
		if j.Active() {
			buf = append(buf, j)
		}
	}
	return buf
}

// NumActiveJobs returns len(ActiveJobs()) without allocating.
func (a *App) NumActiveJobs() int {
	n := 0
	for _, j := range a.Jobs {
		if j.Active() {
			n++
		}
	}
	return n
}

// Finished reports whether the app has completed.
func (a *App) Finished() bool { return a.FinishedAt != NotFinished }

// RemainingWork returns the total serial work left across active trials.
func (a *App) RemainingWork() float64 {
	var w float64
	for _, j := range a.ActiveJobs() {
		w += j.RemainingWork()
	}
	return w
}

// TotalWork returns the total serial work across all trials (including
// already-killed ones' completed portions).
func (a *App) TotalWork() float64 {
	var w float64
	for _, j := range a.Jobs {
		w += j.TotalWork
	}
	return w
}

// GPUTime returns the GPU-minutes consumed by all trials so far.
func (a *App) GPUTime() float64 {
	var g float64
	for _, j := range a.Jobs {
		g += j.GPUTime
	}
	return g
}

// MaxParallelism returns the total GPUs the app can use at once: the sum of
// its active trials' per-trial limits.
func (a *App) MaxParallelism() int {
	p := 0
	for _, j := range a.ActiveJobs() {
		p += j.MaxParallelism
	}
	return p
}

// CompletionTime returns the app's completion time (finish − submit), or
// NotFinished if still running.
func (a *App) CompletionTime() float64 {
	if !a.Finished() {
		return NotFinished
	}
	return a.FinishedAt - a.SubmitTime
}

// BestJob returns the trial with the lowest Quality (the one that trains the
// best model), or nil if the app has no jobs.
func (a *App) BestJob() *Job {
	var best *Job
	for _, j := range a.Jobs {
		if best == nil || j.Quality < best.Quality {
			best = j
		}
	}
	return best
}

// JobsByQuality returns the app's jobs sorted best (lowest Quality) first.
func (a *App) JobsByQuality() []*Job {
	out := make([]*Job, len(a.Jobs))
	copy(out, a.Jobs)
	sort.Slice(out, func(i, j int) bool { return out[i].Quality < out[j].Quality })
	return out
}

// Validate checks structural invariants of the app description.
func (a *App) Validate() error {
	if len(a.Jobs) == 0 {
		return fmt.Errorf("app %s has no jobs", a.ID)
	}
	for _, j := range a.Jobs {
		if j.App != a.ID {
			return fmt.Errorf("app %s contains job %s belonging to %s", a.ID, j.ID, j.App)
		}
		if j.TotalWork <= 0 {
			return fmt.Errorf("job %s has non-positive work %v", j.ID, j.TotalWork)
		}
		if j.GangSize <= 0 {
			return fmt.Errorf("job %s has non-positive gang size %d", j.ID, j.GangSize)
		}
		if j.MaxParallelism < 0 {
			return fmt.Errorf("job %s has negative max parallelism", j.ID)
		}
		if j.MinGPUsPerMachine < 0 {
			return fmt.Errorf("job %s has negative min GPUs per machine", j.ID)
		}
		if j.MaxMachines < 0 {
			return fmt.Errorf("job %s has negative max machines", j.ID)
		}
	}
	return nil
}
