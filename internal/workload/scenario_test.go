package workload

import (
	"math"
	"sort"
	"testing"
)

func scenarioBase(n int) ScenarioConfig {
	cfg := ScenarioConfig{GeneratorConfig: DefaultGeneratorConfig()}
	cfg.NumApps = n
	cfg.Seed = 11
	return cfg
}

func TestGenerateScenarioDeterministic(t *testing.T) {
	for _, arrival := range []ArrivalPattern{ArrivalPoisson, ArrivalDiurnal, ArrivalBursty} {
		cfg := scenarioBase(40)
		cfg.Arrival = arrival
		a, err := GenerateScenario(cfg)
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		b, err := GenerateScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != 40 || len(b) != 40 {
			t.Fatalf("%s: generated %d/%d apps", arrival, len(a), len(b))
		}
		for i := range a {
			if a[i].SubmitTime != b[i].SubmitTime || len(a[i].Jobs) != len(b[i].Jobs) {
				t.Fatalf("%s: app %d differs across replays", arrival, i)
			}
			for k := range a[i].Jobs {
				if a[i].Jobs[k].TotalWork != b[i].Jobs[k].TotalWork {
					t.Fatalf("%s: app %d job %d differs across replays", arrival, i, k)
				}
			}
		}
		// Arrivals are sorted and rebased to 0.
		if a[0].SubmitTime != 0 {
			t.Errorf("%s: first arrival at %v, want 0", arrival, a[0].SubmitTime)
		}
		if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].SubmitTime < a[j].SubmitTime }) {
			t.Errorf("%s: arrivals not sorted", arrival)
		}
	}
}

func TestDiurnalArrivalsModulate(t *testing.T) {
	cfg := scenarioBase(600)
	cfg.Arrival = ArrivalDiurnal
	cfg.DiurnalPeakToTrough = 8
	cfg.MeanInterArrival = 10
	apps, err := GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals in the peak half-cycle vs the trough half-cycle of each
	// period: the sinusoid concentrates arrivals in the first half.
	period := 1440.0
	peak, trough := 0, 0
	for _, a := range apps {
		if math.Mod(a.SubmitTime, period) < period/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("diurnal arrivals not modulated: peak-half %d, trough-half %d", peak, trough)
	}
}

func TestBurstyArrivalsClump(t *testing.T) {
	cfg := scenarioBase(100)
	cfg.Arrival = ArrivalBursty
	cfg.BurstFraction = 0.6
	cfg.BurstApps = 10
	cfg.BurstSpread = 1
	apps, err := GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At least one spike: ≥ 8 apps inside some 2-minute window.
	best := 0
	for i := range apps {
		n := 0
		for j := i; j < len(apps) && apps[j].SubmitTime <= apps[i].SubmitTime+2; j++ {
			n++
		}
		if n > best {
			best = n
		}
	}
	if best < 8 {
		t.Errorf("bursty arrivals show no spike: densest 2-minute window has %d apps", best)
	}
}

func TestParetoSizesAreHeavyTailed(t *testing.T) {
	cfg := scenarioBase(80)
	cfg.JobSize = SizePareto
	cfg.ParetoAlpha = 1.2
	cfg.ParetoMinDuration = 10
	cfg.MaxTaskDuration = 1e9 // leave the tail visible
	apps, err := GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var durations []float64
	for _, a := range apps {
		for _, j := range a.Jobs {
			d := j.TotalWork / float64(j.GangSize)
			if d < 10-1e-9 {
				t.Fatalf("duration %v below Pareto minimum", d)
			}
			durations = append(durations, d)
		}
	}
	sort.Float64s(durations)
	median := durations[len(durations)/2]
	max := durations[len(durations)-1]
	// A Pareto tail with α=1.2 over hundreds of samples dwarfs its median.
	if max < 20*median {
		t.Errorf("tail looks light: median %v, max %v", median, max)
	}
}

func TestGangMixPopulation(t *testing.T) {
	cfg := scenarioBase(60)
	cfg.GangSizes = []GangMix{{Size: 1, Weight: 1}, {Size: 2, Weight: 1}, {Size: 4, Weight: 1}, {Size: 8, Weight: 1}}
	apps, err := GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, a := range apps {
		for _, j := range a.Jobs {
			seen[j.GangSize]++
		}
	}
	for _, size := range []int{1, 2, 4, 8} {
		if seen[size] == 0 {
			t.Errorf("gang size %d never sampled: %v", size, seen)
		}
	}
	for size := range seen {
		switch size {
		case 1, 2, 4, 8:
		default:
			t.Errorf("unexpected gang size %d", size)
		}
	}
}

func TestScenarioConfigValidate(t *testing.T) {
	bad := scenarioBase(10)
	bad.Arrival = "fractal"
	if _, err := GenerateScenario(bad); err == nil {
		t.Error("unknown arrival pattern should fail")
	}
	bad = scenarioBase(10)
	bad.JobSize = "uniform"
	if _, err := GenerateScenario(bad); err == nil {
		t.Error("unknown size pattern should fail")
	}
	bad = scenarioBase(10)
	bad.DiurnalPeakToTrough = 0.5
	if _, err := GenerateScenario(bad); err == nil {
		t.Error("peak-to-trough < 1 should fail")
	}
	bad = scenarioBase(10)
	bad.GangSizes = []GangMix{{Size: 0, Weight: 1}}
	if _, err := GenerateScenario(bad); err == nil {
		t.Error("zero gang size should fail")
	}
	bad = scenarioBase(10)
	bad.BurstFraction = 1.5
	if _, err := GenerateScenario(bad); err == nil {
		t.Error("burst fraction > 1 should fail")
	}
}

// A plain ScenarioConfig must produce the same workload family as the base
// generator: same marginal knobs, valid apps, trace-roundtrippable.
func TestScenarioDefaultsMatchBaseFamily(t *testing.T) {
	apps, err := GenerateScenario(scenarioBase(30))
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(apps)
	if st.NumApps != 30 || st.NumJobs < 30 {
		t.Fatalf("stats: %+v", st)
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
