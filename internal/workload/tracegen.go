package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"themis/internal/placement"
)

// GeneratorConfig describes a synthetic trace to generate. The zero value is
// not valid; use DefaultGeneratorConfig as a starting point.
type GeneratorConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumApps is the number of applications to generate.
	NumApps int
	// MeanInterArrival is the mean of the exponential inter-arrival
	// distribution, in minutes (the paper uses 20).
	MeanInterArrival float64
	// ContentionFactor scales the arrival rate: 2 means apps arrive twice as
	// fast (inter-arrival halved). Used by the Figure 10 sweep.
	ContentionFactor float64
	// FractionNetworkIntensive is the fraction of apps drawn from
	// network-intensive (placement-sensitive) model families. The paper's
	// default mix is 40% network-intensive.
	FractionNetworkIntensive float64
	// JobsPerAppMedian and JobsPerAppSigma parameterise the lognormal
	// distribution of trials per app; the result is clamped to
	// [MinJobsPerApp, MaxJobsPerApp]. The paper's trace has 1–98 with
	// median 23.
	JobsPerAppMedian float64
	JobsPerAppSigma  float64
	MinJobsPerApp    int
	MaxJobsPerApp    int
	// ShortTaskMedian and LongTaskMedian are the medians (minutes) of the
	// short and long task-duration lognormals; LongTaskFraction is the
	// probability a job is drawn from the long distribution.
	ShortTaskMedian  float64
	LongTaskMedian   float64
	TaskSigma        float64
	LongTaskFraction float64
	// MaxTaskDuration truncates sampled durations (Figure 1's x-axis tops
	// out around 1000 minutes).
	MaxTaskDuration float64
	// GangSizeFourFraction is the probability a job needs 4 GPUs; the rest
	// need 2 (the trace's "most tasks require 4 GPUs, a few 2").
	GangSizeFourFraction float64
	// DurationScale scales all sampled durations, e.g. 0.2 for the paper's
	// 5× scale-down in testbed experiments.
	DurationScale float64
	// Profiles optionally overrides the model-family catalogs to draw from.
	NetworkProfiles []placement.Profile
	ComputeProfiles []placement.Profile
}

// DefaultGeneratorConfig returns the configuration matching the paper's
// simulation setup (§8.1).
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Seed:                     1,
		NumApps:                  50,
		MeanInterArrival:         20,
		ContentionFactor:         1,
		FractionNetworkIntensive: 0.4,
		JobsPerAppMedian:         23,
		JobsPerAppSigma:          0.9,
		MinJobsPerApp:            1,
		MaxJobsPerApp:            98,
		ShortTaskMedian:          59,
		LongTaskMedian:           123,
		TaskSigma:                0.55,
		LongTaskFraction:         0.2,
		MaxTaskDuration:          1000,
		GangSizeFourFraction:     0.85,
		DurationScale:            1,
		NetworkProfiles:          placement.NetworkIntensiveProfiles(),
		ComputeProfiles:          placement.ComputeIntensiveProfiles(),
	}
}

// WithDefaults returns the configuration with every zero-valued field whose
// zero value would be invalid replaced by its DefaultGeneratorConfig value.
// Fields where zero is meaningful (the fraction knobs) are kept verbatim.
// Keep this next to DefaultGeneratorConfig: a new field with an invalid zero
// value must be added to both.
func (c GeneratorConfig) WithDefaults() GeneratorConfig {
	def := DefaultGeneratorConfig()
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	if c.NumApps == 0 {
		c.NumApps = def.NumApps
	}
	if c.MeanInterArrival == 0 {
		c.MeanInterArrival = def.MeanInterArrival
	}
	if c.ContentionFactor == 0 {
		c.ContentionFactor = def.ContentionFactor
	}
	if c.JobsPerAppMedian == 0 {
		c.JobsPerAppMedian = def.JobsPerAppMedian
	}
	if c.JobsPerAppSigma == 0 {
		c.JobsPerAppSigma = def.JobsPerAppSigma
	}
	if c.MinJobsPerApp == 0 {
		c.MinJobsPerApp = def.MinJobsPerApp
	}
	if c.MaxJobsPerApp == 0 {
		c.MaxJobsPerApp = def.MaxJobsPerApp
	}
	if c.ShortTaskMedian == 0 {
		c.ShortTaskMedian = def.ShortTaskMedian
	}
	if c.LongTaskMedian == 0 {
		c.LongTaskMedian = def.LongTaskMedian
	}
	if c.TaskSigma == 0 {
		c.TaskSigma = def.TaskSigma
	}
	if c.MaxTaskDuration == 0 {
		c.MaxTaskDuration = def.MaxTaskDuration
	}
	if c.DurationScale == 0 {
		c.DurationScale = def.DurationScale
	}
	if c.NetworkProfiles == nil {
		c.NetworkProfiles = def.NetworkProfiles
	}
	if c.ComputeProfiles == nil {
		c.ComputeProfiles = def.ComputeProfiles
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.NumApps <= 0:
		return fmt.Errorf("NumApps must be positive, got %d", c.NumApps)
	case c.MeanInterArrival <= 0:
		return fmt.Errorf("MeanInterArrival must be positive, got %v", c.MeanInterArrival)
	case c.ContentionFactor <= 0:
		return fmt.Errorf("ContentionFactor must be positive, got %v", c.ContentionFactor)
	case c.FractionNetworkIntensive < 0 || c.FractionNetworkIntensive > 1:
		return fmt.Errorf("FractionNetworkIntensive must be in [0,1], got %v", c.FractionNetworkIntensive)
	case c.JobsPerAppMedian <= 0 || c.MinJobsPerApp <= 0 || c.MaxJobsPerApp < c.MinJobsPerApp:
		return fmt.Errorf("invalid jobs-per-app parameters")
	case c.ShortTaskMedian <= 0 || c.LongTaskMedian <= 0 || c.MaxTaskDuration <= 0:
		return fmt.Errorf("invalid task-duration parameters")
	case c.LongTaskFraction < 0 || c.LongTaskFraction > 1:
		return fmt.Errorf("LongTaskFraction must be in [0,1], got %v", c.LongTaskFraction)
	case c.GangSizeFourFraction < 0 || c.GangSizeFourFraction > 1:
		return fmt.Errorf("GangSizeFourFraction must be in [0,1], got %v", c.GangSizeFourFraction)
	case c.DurationScale <= 0:
		return fmt.Errorf("DurationScale must be positive, got %v", c.DurationScale)
	case len(c.NetworkProfiles) == 0 && c.FractionNetworkIntensive > 0:
		return fmt.Errorf("no network-intensive profiles configured")
	case len(c.ComputeProfiles) == 0 && c.FractionNetworkIntensive < 1:
		return fmt.Errorf("no compute-intensive profiles configured")
	}
	return nil
}

// Generate produces the apps of a synthetic trace. Apps are returned in
// arrival order with SubmitTime already populated.
func Generate(cfg GeneratorConfig) ([]*App, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("workload: invalid generator config: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	apps := make([]*App, 0, cfg.NumApps)
	now := 0.0
	meanIA := cfg.MeanInterArrival / cfg.ContentionFactor
	for i := 0; i < cfg.NumApps; i++ {
		if i > 0 {
			now += rng.ExpFloat64() * meanIA
		}
		apps = append(apps, generateApp(cfg, rng, i, now))
	}
	return apps, nil
}

// generateApp builds one synthetic application arriving at time submit.
func generateApp(cfg GeneratorConfig, rng *rand.Rand, index int, submit float64) *App {
	id := AppID(fmt.Sprintf("app-%03d", index))

	var profile placement.Profile
	if rng.Float64() < cfg.FractionNetworkIntensive {
		profile = cfg.NetworkProfiles[rng.Intn(len(cfg.NetworkProfiles))]
	} else {
		profile = cfg.ComputeProfiles[rng.Intn(len(cfg.ComputeProfiles))]
	}

	nJobs := clampInt(int(math.Round(lognormal(rng, cfg.JobsPerAppMedian, cfg.JobsPerAppSigma))),
		cfg.MinJobsPerApp, cfg.MaxJobsPerApp)

	jobs := make([]*Job, 0, nJobs)
	for j := 0; j < nJobs; j++ {
		median := cfg.ShortTaskMedian
		if rng.Float64() < cfg.LongTaskFraction {
			median = cfg.LongTaskMedian
		}
		duration := lognormal(rng, median, cfg.TaskSigma)
		if duration > cfg.MaxTaskDuration {
			duration = cfg.MaxTaskDuration
		}
		duration *= cfg.DurationScale
		gang := 2
		if rng.Float64() < cfg.GangSizeFourFraction {
			gang = 4
		}
		job := NewJob(id, j, duration*float64(gang), gang)
		job.Quality = rng.Float64()
		job.Seed = rng.Int63()
		job.TotalIterations = 200 + rng.Intn(1800)
		jobs = append(jobs, job)
	}
	return NewApp(id, submit, profile, jobs)
}

// lognormal samples a lognormal variate with the given median and log-space
// standard deviation sigma.
func lognormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Stats summarises the distributional properties of a generated trace, used
// for the Figure 1 reproduction and for trace inspection tooling.
type Stats struct {
	NumApps            int
	NumJobs            int
	JobsPerAppMin      int
	JobsPerAppMedian   float64
	JobsPerAppMax      int
	TaskDurationP50    float64
	TaskDurationP90    float64
	TaskDurationMax    float64
	GangSize4Fraction  float64
	NetworkAppFraction float64
	TotalSerialWork    float64
	MeanInterArrival   float64
}

// Summarize computes Stats over a set of apps.
func Summarize(apps []*App) Stats {
	var s Stats
	s.NumApps = len(apps)
	if len(apps) == 0 {
		return s
	}
	var jobsPerApp []int
	var durations []float64
	gang4 := 0
	network := 0
	for _, a := range apps {
		jobsPerApp = append(jobsPerApp, len(a.Jobs))
		if a.Profile.NetworkIntensive {
			network++
		}
		for _, j := range a.Jobs {
			s.NumJobs++
			s.TotalSerialWork += j.TotalWork
			durations = append(durations, j.TotalWork/float64(j.GangSize))
			if j.GangSize == 4 {
				gang4++
			}
		}
	}
	sortInts(jobsPerApp)
	sortFloats(durations)
	s.JobsPerAppMin = jobsPerApp[0]
	s.JobsPerAppMax = jobsPerApp[len(jobsPerApp)-1]
	s.JobsPerAppMedian = percentileInt(jobsPerApp, 0.5)
	s.TaskDurationP50 = percentile(durations, 0.5)
	s.TaskDurationP90 = percentile(durations, 0.9)
	s.TaskDurationMax = durations[len(durations)-1]
	if s.NumJobs > 0 {
		s.GangSize4Fraction = float64(gang4) / float64(s.NumJobs)
	}
	s.NetworkAppFraction = float64(network) / float64(len(apps))
	if len(apps) > 1 {
		s.MeanInterArrival = (apps[len(apps)-1].SubmitTime - apps[0].SubmitTime) / float64(len(apps)-1)
	}
	return s
}

// DurationCDF returns the empirical CDF of per-job task durations (minutes)
// at the given quantile grid, reproducing Figure 1. The returned slices are
// parallel: durations[i] is the duration at cdf[i].
func DurationCDF(apps []*App, points int) (durations, cdf []float64) {
	var all []float64
	for _, a := range apps {
		for _, j := range a.Jobs {
			all = append(all, j.TotalWork/float64(j.GangSize))
		}
	}
	sortFloats(all)
	if len(all) == 0 || points <= 0 {
		return nil, nil
	}
	durations = make([]float64, points)
	cdf = make([]float64, points)
	for i := 0; i < points; i++ {
		q := float64(i+1) / float64(points)
		durations[i] = percentile(all, q)
		cdf[i] = q
	}
	return durations, cdf
}

func sortInts(v []int)       { sort.Ints(v) }
func sortFloats(v []float64) { sort.Float64s(v) }

// percentile returns the q-quantile (0 < q ≤ 1) of sorted values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func percentileInt(sorted []int, q float64) float64 {
	f := make([]float64, len(sorted))
	for i, v := range sorted {
		f[i] = float64(v)
	}
	return percentile(f, q)
}
