package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"themis/internal/placement"
)

// This file grows the synthetic generator into a scenario engine: the base
// GeneratorConfig fixes the paper trace's marginal distributions, and a
// ScenarioConfig composes alternative arrival processes (diurnal cycles,
// bursty spikes), job-size laws (heavy-tailed Pareto durations) and gang-size
// populations on top of it. Every combination stays deterministic under its
// Seed, so scenarios replay bit-for-bit through traces, golden snapshots and
// the sweep engine.

// ArrivalPattern names the app arrival process of a scenario.
type ArrivalPattern string

const (
	// ArrivalPoisson is the paper's memoryless arrival process (default).
	ArrivalPoisson ArrivalPattern = "poisson"
	// ArrivalDiurnal modulates the Poisson rate sinusoidally over a day-like
	// period, modelling the daytime peaks of production clusters.
	ArrivalDiurnal ArrivalPattern = "diurnal"
	// ArrivalBursty superimposes load spikes — clumps of near-simultaneous
	// submissions — on a background Poisson process.
	ArrivalBursty ArrivalPattern = "bursty"
)

// SizePattern names the job-duration law of a scenario.
type SizePattern string

const (
	// SizeLognormal is the paper's short/long lognormal mix (default).
	SizeLognormal SizePattern = "lognormal"
	// SizePareto draws durations from a heavy-tailed Pareto law, producing
	// the elephant-and-mice mix reported for public cluster traces.
	SizePareto SizePattern = "pareto"
)

// GangMix is one entry of a gang-size population: jobs need Size GPUs with
// relative Weight.
type GangMix struct {
	Size   int
	Weight float64
}

// ScenarioConfig composes a synthetic scenario from the base generator
// distributions plus pluggable arrival, job-size and gang-size models. The
// zero value of every added knob means "use the paper's behaviour", so a
// plain GeneratorConfig wrapped in a ScenarioConfig generates the same
// workload family as Generate (via its own RNG schedule).
type ScenarioConfig struct {
	GeneratorConfig

	// Arrival selects the arrival process; empty means ArrivalPoisson.
	Arrival ArrivalPattern
	// DiurnalPeriod is the cycle length in minutes (default 1440, one day).
	DiurnalPeriod float64
	// DiurnalPeakToTrough is the ratio of the peak arrival rate to the
	// trough rate, ≥ 1 (default 4).
	DiurnalPeakToTrough float64
	// BurstInterval is the mean minutes between load spikes (default 360).
	BurstInterval float64
	// BurstApps is the number of apps arriving inside one spike (default 8).
	BurstApps int
	// BurstSpread is the window in minutes a spike's submissions land in
	// (default 2).
	BurstSpread float64
	// BurstFraction is the fraction of all apps that arrive in spikes
	// rather than as background Poisson traffic (default 0.5 for bursty).
	BurstFraction float64

	// JobSize selects the duration law; empty means SizeLognormal.
	JobSize SizePattern
	// ParetoAlpha is the Pareto tail index; smaller is heavier (default 1.5,
	// infinite variance like measured task-size tails).
	ParetoAlpha float64
	// ParetoMinDuration is the Pareto scale: the minimum task duration in
	// minutes (default 15).
	ParetoMinDuration float64

	// GangSizes overrides the 2/4-GPU gang mix with an arbitrary weighted
	// population (e.g. 1/2/4/8); empty keeps the base mix.
	GangSizes []GangMix
}

// WithDefaults fills every zero-valued knob whose zero would be invalid,
// including the embedded GeneratorConfig's.
func (c ScenarioConfig) WithDefaults() ScenarioConfig {
	c.GeneratorConfig = c.GeneratorConfig.WithDefaults()
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.DiurnalPeriod == 0 {
		c.DiurnalPeriod = 1440
	}
	if c.DiurnalPeakToTrough == 0 {
		c.DiurnalPeakToTrough = 4
	}
	if c.BurstInterval == 0 {
		c.BurstInterval = 360
	}
	if c.BurstApps == 0 {
		c.BurstApps = 8
	}
	if c.BurstSpread == 0 {
		c.BurstSpread = 2
	}
	if c.BurstFraction == 0 && c.Arrival == ArrivalBursty {
		c.BurstFraction = 0.5
	}
	if c.JobSize == "" {
		c.JobSize = SizeLognormal
	}
	if c.ParetoAlpha == 0 {
		c.ParetoAlpha = 1.5
	}
	if c.ParetoMinDuration == 0 {
		c.ParetoMinDuration = 15
	}
	return c
}

// Validate reports whether the scenario is usable. Call WithDefaults first;
// the zero value of several knobs is invalid by design.
func (c ScenarioConfig) Validate() error {
	if err := c.GeneratorConfig.Validate(); err != nil {
		return err
	}
	switch c.Arrival {
	case ArrivalPoisson, ArrivalDiurnal, ArrivalBursty:
	default:
		return fmt.Errorf("unknown arrival pattern %q", c.Arrival)
	}
	switch c.JobSize {
	case SizeLognormal, SizePareto:
	default:
		return fmt.Errorf("unknown job-size pattern %q", c.JobSize)
	}
	switch {
	case c.DiurnalPeriod <= 0:
		return fmt.Errorf("DiurnalPeriod must be positive, got %v", c.DiurnalPeriod)
	case c.DiurnalPeakToTrough < 1:
		return fmt.Errorf("DiurnalPeakToTrough must be ≥ 1, got %v", c.DiurnalPeakToTrough)
	case c.BurstInterval <= 0 || c.BurstApps < 1 || c.BurstSpread < 0:
		return fmt.Errorf("invalid burst parameters")
	case c.BurstFraction < 0 || c.BurstFraction > 1:
		return fmt.Errorf("BurstFraction must be in [0,1], got %v", c.BurstFraction)
	case c.ParetoAlpha <= 0 || c.ParetoMinDuration <= 0:
		return fmt.Errorf("invalid Pareto parameters")
	}
	for _, g := range c.GangSizes {
		if g.Size < 1 || g.Weight <= 0 {
			return fmt.Errorf("invalid gang mix entry %+v", g)
		}
	}
	return nil
}

// GenerateScenario produces the apps of a composed scenario, in arrival
// order with SubmitTime populated, deterministically under cfg.Seed.
func GenerateScenario(cfg ScenarioConfig) ([]*App, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("workload: invalid scenario config: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivals := arrivalTimes(cfg, rng)
	apps := make([]*App, 0, cfg.NumApps)
	for i, submit := range arrivals {
		apps = append(apps, scenarioApp(cfg, rng, i, submit))
	}
	return apps, nil
}

// arrivalTimes samples cfg.NumApps submission times for the configured
// arrival process, sorted ascending and starting at 0.
func arrivalTimes(cfg ScenarioConfig, rng *rand.Rand) []float64 {
	meanIA := cfg.MeanInterArrival / cfg.ContentionFactor
	times := make([]float64, 0, cfg.NumApps)
	switch cfg.Arrival {
	case ArrivalDiurnal:
		// Lewis thinning of a sinusoidally modulated Poisson process:
		// λ(t) = λ̄ (1 + a sin(2πt/P)) with a = (R−1)/(R+1), so the peak rate
		// is R times the trough rate while the mean matches meanIA.
		amp := (cfg.DiurnalPeakToTrough - 1) / (cfg.DiurnalPeakToTrough + 1)
		rateMean := 1 / meanIA
		rateMax := rateMean * (1 + amp)
		now := 0.0
		times = append(times, 0)
		for len(times) < cfg.NumApps {
			now += rng.ExpFloat64() / rateMax
			rate := rateMean * (1 + amp*math.Sin(2*math.Pi*now/cfg.DiurnalPeriod))
			if rng.Float64()*rateMax <= rate {
				times = append(times, now)
			}
		}
	case ArrivalBursty:
		// Background Poisson traffic plus spikes of BurstApps near-simultaneous
		// submissions every ~BurstInterval minutes.
		nBurst := int(math.Round(cfg.BurstFraction * float64(cfg.NumApps)))
		for i := 0; i < cfg.NumApps-nBurst; i++ {
			var prev float64
			if len(times) > 0 {
				prev = times[len(times)-1]
			}
			times = append(times, prev+rng.ExpFloat64()*meanIA)
		}
		spike := 0.0
		for assigned := 0; assigned < nBurst; {
			spike += rng.ExpFloat64() * cfg.BurstInterval
			k := cfg.BurstApps
			if k > nBurst-assigned {
				k = nBurst - assigned
			}
			for i := 0; i < k; i++ {
				times = append(times, spike+rng.Float64()*cfg.BurstSpread)
			}
			assigned += k
		}
		sort.Float64s(times)
		base := times[0]
		for i := range times {
			times[i] -= base
		}
	default: // ArrivalPoisson
		now := 0.0
		for i := 0; i < cfg.NumApps; i++ {
			if i > 0 {
				now += rng.ExpFloat64() * meanIA
			}
			times = append(times, now)
		}
	}
	return times
}

// scenarioApp builds one synthetic application, mirroring generateApp but
// with the scenario's job-size and gang-size models plugged in.
func scenarioApp(cfg ScenarioConfig, rng *rand.Rand, index int, submit float64) *App {
	id := AppID(fmt.Sprintf("app-%03d", index))

	var profile placement.Profile
	if rng.Float64() < cfg.FractionNetworkIntensive {
		profile = cfg.NetworkProfiles[rng.Intn(len(cfg.NetworkProfiles))]
	} else {
		profile = cfg.ComputeProfiles[rng.Intn(len(cfg.ComputeProfiles))]
	}

	nJobs := clampInt(int(math.Round(lognormal(rng, cfg.JobsPerAppMedian, cfg.JobsPerAppSigma))),
		cfg.MinJobsPerApp, cfg.MaxJobsPerApp)

	jobs := make([]*Job, 0, nJobs)
	for j := 0; j < nJobs; j++ {
		duration := sampleDuration(cfg, rng)
		gang := sampleGang(cfg, rng)
		job := NewJob(id, j, duration*float64(gang), gang)
		job.Quality = rng.Float64()
		job.Seed = rng.Int63()
		job.TotalIterations = 200 + rng.Intn(1800)
		jobs = append(jobs, job)
	}
	return NewApp(id, submit, profile, jobs)
}

// sampleDuration draws one task duration (minutes) from the scenario's size
// law, truncated and scaled like the base generator.
func sampleDuration(cfg ScenarioConfig, rng *rand.Rand) float64 {
	var duration float64
	switch cfg.JobSize {
	case SizePareto:
		// Inverse-CDF sampling: x = x_min (1−U)^(−1/α).
		duration = cfg.ParetoMinDuration * math.Pow(1-rng.Float64(), -1/cfg.ParetoAlpha)
	default: // SizeLognormal
		median := cfg.ShortTaskMedian
		if rng.Float64() < cfg.LongTaskFraction {
			median = cfg.LongTaskMedian
		}
		duration = lognormal(rng, median, cfg.TaskSigma)
	}
	if duration > cfg.MaxTaskDuration {
		duration = cfg.MaxTaskDuration
	}
	return duration * cfg.DurationScale
}

// sampleGang draws one gang size from the configured population, falling
// back to the base generator's 2/4 mix.
func sampleGang(cfg ScenarioConfig, rng *rand.Rand) int {
	if len(cfg.GangSizes) == 0 {
		if rng.Float64() < cfg.GangSizeFourFraction {
			return 4
		}
		return 2
	}
	var total float64
	for _, g := range cfg.GangSizes {
		total += g.Weight
	}
	pick := rng.Float64() * total
	for _, g := range cfg.GangSizes {
		pick -= g.Weight
		if pick < 0 {
			return g.Size
		}
	}
	return cfg.GangSizes[len(cfg.GangSizes)-1].Size
}
