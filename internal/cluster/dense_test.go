package cluster

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDenseAllocRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		a := NewAlloc()
		for m := 0; m < n; m++ {
			if rng.Intn(2) == 0 {
				a[MachineID(m)] = 1 + rng.Intn(8)
			}
		}
		d, ok := a.ToDense(n)
		if !ok {
			t.Fatalf("in-range alloc reported out of range: %v", a)
		}
		back := d.ToAlloc()
		if !a.Equal(back) || len(back) != len(a) {
			t.Fatalf("round trip not lossless: %v -> %v -> %v", a, d, back)
		}
		if d.Total() != a.Total() {
			t.Fatalf("dense total %d != sparse total %d", d.Total(), a.Total())
		}
	}
}

func TestDenseAllocOutOfRange(t *testing.T) {
	a := Alloc{0: 1, 9: 2}
	d, ok := a.ToDense(4)
	if ok {
		t.Fatalf("expected out-of-range report for %v over 4 machines", a)
	}
	if d.Total() != 1 {
		t.Fatalf("in-range entries should still land: got %v", d)
	}
	// Zero entries outside the range are not an error: they carry no GPUs.
	z := Alloc{0: 1, 9: 0}
	if _, ok := z.ToDense(4); !ok {
		t.Fatalf("zero entry out of range should be ignored")
	}
}

func TestDenseAllocInPlaceOps(t *testing.T) {
	used := DenseAlloc{1, 0, 3}
	bun := DenseAlloc{1, 2, 0}
	capacity := DenseAlloc{4, 2, 3}

	if !used.Fits(bun, capacity) {
		t.Fatalf("bundle should fit: used=%v bun=%v cap=%v", used, bun, capacity)
	}
	used.AddInPlace(bun)
	if want := (DenseAlloc{2, 2, 3}); !equalDense(used, want) {
		t.Fatalf("AddInPlace: got %v want %v", used, want)
	}
	if used.Fits(bun, capacity) {
		t.Fatalf("bundle should no longer fit after add")
	}
	used.SubInPlace(bun)
	if want := (DenseAlloc{1, 0, 3}); !equalDense(used, want) {
		t.Fatalf("SubInPlace: got %v want %v", used, want)
	}

	var dst DenseAlloc
	dst = used.CopyInto(dst)
	dst[0] = 99
	if used[0] != 1 {
		t.Fatalf("CopyInto must not alias the source")
	}
}

func equalDense(a, b DenseAlloc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllocArenaReusesDense(t *testing.T) {
	ar := NewAllocArena()
	d := ar.Dense(8)
	d[3] = 5
	ar.ReleaseDense(d)
	d2 := ar.Dense(4)
	if len(d2) != 4 {
		t.Fatalf("Dense(4) returned length %d", len(d2))
	}
	for i, n := range d2 {
		if n != 0 {
			t.Fatalf("recycled vector not zeroed at %d: %v", i, d2)
		}
	}
	if &d2[0] != &d[0] {
		t.Fatalf("expected the retired backing array to be reused")
	}
}

func TestAllocArenaSparseLifecycle(t *testing.T) {
	ar := NewAllocArena()
	a := ar.Sparse()
	a[2] = 4
	b := ar.Sparse()
	b[2] = 9
	if ar.Lent() != 2 {
		t.Fatalf("Lent = %d, want 2", ar.Lent())
	}
	if a[2] != 4 {
		t.Fatalf("lent maps must be distinct until Reset")
	}
	ar.Reset()
	if ar.Lent() != 0 || ar.FreeSparse() != 2 {
		t.Fatalf("after Reset: lent=%d free=%d", ar.Lent(), ar.FreeSparse())
	}
	c := ar.Sparse()
	if len(c) != 0 {
		t.Fatalf("recycled sparse map not cleared: %v", c)
	}
	if ar.FreeSparse() != 1 {
		t.Fatalf("Sparse should pop the free list, free=%d", ar.FreeSparse())
	}
}

// TestAllocZeroEntryCanonicalization pins the Add/Sub satellite fix: zero
// entries in the operand must not introduce stored zeros (which would break
// Equal/Key canonicalization) and Sub's error must report the actual held
// count rather than the cloned-out zero.
func TestAllocZeroEntryCanonicalization(t *testing.T) {
	tests := []struct {
		name string
		a, b Alloc
		add  Alloc // expected a.Add(b); nil to skip
	}{
		{name: "zero entry on absent machine", a: Alloc{1: 2}, b: Alloc{5: 0}, add: Alloc{1: 2}},
		{name: "zero entry on present machine", a: Alloc{1: 2}, b: Alloc{1: 0}, add: Alloc{1: 2}},
		{name: "all zero operand", a: Alloc{}, b: Alloc{3: 0, 7: 0}, add: Alloc{}},
		{name: "mixed zero and real", a: Alloc{1: 1}, b: Alloc{1: 0, 2: 3}, add: Alloc{1: 1, 2: 3}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.a.Add(tc.b)
			if !got.Equal(tc.add) {
				t.Fatalf("Add = %v, want %v", got, tc.add)
			}
			for m, n := range got {
				if n == 0 {
					t.Fatalf("Add stored a zero entry for machine %d: %v", m, got)
				}
			}
			if got.Key() != tc.add.Key() {
				t.Fatalf("Key diverged: %q vs %q", got.Key(), tc.add.Key())
			}
			sub, err := got.Sub(tc.b)
			if err != nil {
				t.Fatalf("Sub of zero entries failed: %v", err)
			}
			for m, n := range sub {
				if n == 0 {
					t.Fatalf("Sub stored a zero entry for machine %d: %v", m, sub)
				}
			}
			if !sub.Equal(tc.a) {
				t.Fatalf("Add then Sub of b did not restore a: %v vs %v", sub, tc.a)
			}
		})
	}
}

func TestAllocSubErrorReportsHeldCount(t *testing.T) {
	a := Alloc{4: 2}
	if _, err := a.Sub(Alloc{4: 5}); err == nil || !strings.Contains(err.Error(), "(have 2)") {
		t.Fatalf("Sub error should report held count 2, got: %v", err)
	}
	if _, err := a.Sub(Alloc{9: 1}); err == nil || !strings.Contains(err.Error(), "(have 0)") {
		t.Fatalf("Sub from absent machine should report have 0, got: %v", err)
	}
}
