package cluster

import (
	"testing"
)

func TestConfigBuild(t *testing.T) {
	topo, err := Config{
		MachineSpecs: []MachineSpec{
			{Count: 4, GPUs: 4, SlotSize: 2, GPU: GPUTypeP100},
			{Count: 2, GPUs: 2, SlotSize: 2, GPU: GPUTypeK80},
		},
		MachinesPerRack: 3,
	}.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := topo.NumMachines(); got != 6 {
		t.Errorf("NumMachines = %d, want 6", got)
	}
	if got := topo.TotalGPUs(); got != 20 {
		t.Errorf("TotalGPUs = %d, want 20", got)
	}
	if got := topo.NumRacks(); got != 2 {
		t.Errorf("NumRacks = %d, want 2", got)
	}
	// machines 0,1,2 in rack 0; 3,4,5 in rack 1
	if topo.Rack(2) != 0 || topo.Rack(3) != 1 {
		t.Errorf("rack layout wrong: rack(2)=%d rack(3)=%d", topo.Rack(2), topo.Rack(3))
	}
	if got := len(topo.MachinesInRack(0)); got != 3 {
		t.Errorf("MachinesInRack(0) = %d machines, want 3", got)
	}
}

func TestConfigBuildRejectsBadSpec(t *testing.T) {
	_, err := Config{MachineSpecs: []MachineSpec{{Count: 0, GPUs: 4}}}.Build()
	if err == nil {
		t.Fatal("expected error for zero-count spec")
	}
}

func TestNewTopologyValidation(t *testing.T) {
	cases := []struct {
		name     string
		machines []Machine
	}{
		{"empty", nil},
		{"duplicate IDs", []Machine{
			{ID: 0, NumGPUs: 4, SlotSize: 2},
			{ID: 0, NumGPUs: 4, SlotSize: 2},
		}},
		{"ID out of range", []Machine{{ID: 5, NumGPUs: 4, SlotSize: 2}}},
		{"zero GPUs", []Machine{{ID: 0, NumGPUs: 0, SlotSize: 1}}},
		{"slot not dividing GPUs", []Machine{{ID: 0, NumGPUs: 4, SlotSize: 3}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewTopology(c.machines); err == nil {
				t.Errorf("NewTopology(%v) succeeded, want error", c.machines)
			}
		})
	}
}

func TestDefaultClusters(t *testing.T) {
	sim := SimulationCluster()
	if got := sim.TotalGPUs(); got != 256 {
		t.Errorf("SimulationCluster TotalGPUs = %d, want 256", got)
	}
	if sim.NumRacks() < 2 {
		t.Errorf("SimulationCluster should span multiple racks, got %d", sim.NumRacks())
	}
	tb := TestbedCluster()
	if got := tb.TotalGPUs(); got != 50 {
		t.Errorf("TestbedCluster TotalGPUs = %d, want 50", got)
	}
	if got := tb.NumMachines(); got != 20 {
		t.Errorf("TestbedCluster NumMachines = %d, want 20", got)
	}
}

func TestAllocArithmetic(t *testing.T) {
	a := Alloc{0: 2, 1: 1}
	b := Alloc{1: 1, 2: 3}
	sum := a.Add(b)
	if sum.Total() != 7 {
		t.Errorf("Add total = %d, want 7", sum.Total())
	}
	if sum[1] != 2 {
		t.Errorf("Add machine 1 = %d, want 2", sum[1])
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !diff.Equal(a) {
		t.Errorf("Sub result %v != original %v", diff, a)
	}
	if _, err := a.Sub(Alloc{0: 5}); err == nil {
		t.Error("Sub removing more than held should fail")
	}
	// Add must not mutate its receiver.
	if a.Total() != 3 {
		t.Errorf("receiver mutated by Add: %v", a)
	}
}

func TestAllocString(t *testing.T) {
	a := Alloc{3: 1, 1: 2}
	if got := a.String(); got != "M1:2G,M3:1G" {
		t.Errorf("String = %q, want M1:2G,M3:1G", got)
	}
	if got := NewAlloc().String(); got != "∅" {
		t.Errorf("empty String = %q, want ∅", got)
	}
}

func TestStateGrantRelease(t *testing.T) {
	topo := mustTopo(t, 4, 4, 2)
	s := NewState(topo)
	if s.TotalFree() != 16 {
		t.Fatalf("TotalFree = %d, want 16", s.TotalFree())
	}
	if err := s.Grant("app1", Alloc{0: 2, 1: 4}); err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if s.FreeOn(0) != 2 || s.FreeOn(1) != 0 {
		t.Errorf("FreeOn wrong: m0=%d m1=%d", s.FreeOn(0), s.FreeOn(1))
	}
	if err := s.Grant("app2", Alloc{1: 1}); err == nil {
		t.Error("over-granting machine 1 should fail")
	}
	// failed grant must have no partial effect
	if s.TotalUsed() != 6 {
		t.Errorf("TotalUsed after failed grant = %d, want 6", s.TotalUsed())
	}
	if err := s.Release("app1", Alloc{1: 2}); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := s.Held("app1").Total(); got != 4 {
		t.Errorf("Held after partial release = %d, want 4", got)
	}
	if err := s.Release("app1", Alloc{2: 1}); err == nil {
		t.Error("releasing GPUs never held should fail")
	}
	released := s.ReleaseAll("app1")
	if released.Total() != 4 {
		t.Errorf("ReleaseAll returned %d GPUs, want 4", released.Total())
	}
	if s.TotalUsed() != 0 {
		t.Errorf("TotalUsed after ReleaseAll = %d, want 0", s.TotalUsed())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestStateFreeVectorAndApps(t *testing.T) {
	topo := mustTopo(t, 3, 4, 2)
	s := NewState(topo)
	if err := s.Grant("b", Alloc{0: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Grant("a", Alloc{1: 1}); err != nil {
		t.Fatal(err)
	}
	fv := s.FreeVector()
	if fv[0] != 0 || fv[1] != 3 || fv[2] != 4 {
		t.Errorf("FreeVector = %v", fv)
	}
	if _, ok := fv[0]; ok {
		t.Error("FreeVector should omit fully-used machines")
	}
	apps := s.Apps()
	if len(apps) != 2 || apps[0] != "a" || apps[1] != "b" {
		t.Errorf("Apps = %v, want [a b]", apps)
	}
	on := s.AppsOn(0)
	if on["b"] != 4 || len(on) != 1 {
		t.Errorf("AppsOn(0) = %v", on)
	}
}

func TestLocality(t *testing.T) {
	// 4 machines x 4 GPUs (slot=2), 2 per rack
	topo, err := Config{
		MachineSpecs:    []MachineSpec{{Count: 4, GPUs: 4, SlotSize: 2}},
		MachinesPerRack: 2,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		alloc Alloc
		want  Locality
		score float64
	}{
		{Alloc{}, LocalitySlot, 1.0},
		{Alloc{0: 2}, LocalitySlot, 1.0},
		{Alloc{0: 4}, LocalityMachine, 0.9},
		{Alloc{0: 2, 1: 2}, LocalityRack, 0.7},
		{Alloc{0: 2, 2: 2}, LocalityDomain, 0.5},
	}
	for _, c := range cases {
		if got := LocalityOf(topo, c.alloc); got != c.want {
			t.Errorf("LocalityOf(%v) = %v, want %v", c.alloc, got, c.want)
		}
		if got := PlacementScore(topo, c.alloc); got != c.score {
			t.Errorf("PlacementScore(%v) = %v, want %v", c.alloc, got, c.score)
		}
	}
	st := Spread(topo, Alloc{0: 1, 1: 1, 2: 1})
	if st.Machines != 3 || st.Racks != 2 || st.Domains != 1 || st.Locality != LocalityDomain {
		t.Errorf("Spread = %+v", st)
	}
}

func TestLocalityMultiDomain(t *testing.T) {
	// two fabric domains, two racks each, one 4-GPU machine per rack
	var machines []Machine
	for i := 0; i < 4; i++ {
		machines = append(machines, Machine{
			ID: MachineID(i), Rack: RackID(i), Domain: DomainID(i / 2),
			NumGPUs: 4, SlotSize: 2,
		})
	}
	topo, err := NewTopology(machines)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.NumDomains(); got != 2 {
		t.Fatalf("NumDomains = %d, want 2", got)
	}
	cases := []struct {
		alloc Alloc
		want  Locality
		score float64
	}{
		{Alloc{0: 2, 1: 2}, LocalityDomain, 0.5},
		{Alloc{0: 2, 2: 2}, LocalityNone, 0.35},
		{Alloc{2: 2, 3: 2}, LocalityDomain, 0.5},
	}
	for _, c := range cases {
		if got := LocalityOf(topo, c.alloc); got != c.want {
			t.Errorf("LocalityOf(%v) = %v, want %v", c.alloc, got, c.want)
		}
		if got := PlacementScore(topo, c.alloc); got != c.score {
			t.Errorf("PlacementScore(%v) = %v, want %v", c.alloc, got, c.score)
		}
	}
	st := Spread(topo, Alloc{0: 1, 2: 1})
	if st.Domains != 2 || st.Locality != LocalityNone {
		t.Errorf("Spread = %+v", st)
	}
}

func TestTopologyDomainAccessors(t *testing.T) {
	machines := []Machine{
		{ID: 0, Rack: 0, Domain: 0, NumGPUs: 4, SlotSize: 2},
		{ID: 1, Rack: 0, Domain: 0, NumGPUs: 4, SlotSize: 2},
		{ID: 2, Rack: 1, Domain: 1, NumGPUs: 2, SlotSize: 2},
	}
	topo, err := NewTopology(machines)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Domains(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Domains = %v", got)
	}
	if got := topo.MachinesInDomain(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("MachinesInDomain(0) = %v", got)
	}
	if got := topo.RacksInDomain(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("RacksInDomain(1) = %v", got)
	}
	if got := topo.DomainName(1); got != "domain-1" {
		t.Errorf("default DomainName = %q", got)
	}
	if err := topo.SetDomainName(1, "pod-east"); err != nil {
		t.Fatalf("SetDomainName: %v", err)
	}
	if got := topo.DomainName(1); got != "pod-east" {
		t.Errorf("DomainName after set = %q", got)
	}
	if d, ok := topo.DomainByName("pod-east"); !ok || d != 1 {
		t.Errorf("DomainByName(pod-east) = %d, %v", d, ok)
	}
	if d, ok := topo.DomainByName("domain-0"); !ok || d != 0 {
		t.Errorf("DomainByName(domain-0) = %d, %v", d, ok)
	}
	if _, ok := topo.DomainByName("nope"); ok {
		t.Error("DomainByName(nope) should miss")
	}
	if err := topo.SetDomainName(7, "x"); err == nil {
		t.Error("SetDomainName on unknown domain should fail")
	}
	// a rack straddling two domains must be rejected
	bad := []Machine{
		{ID: 0, Rack: 0, Domain: 0, NumGPUs: 4, SlotSize: 2},
		{ID: 1, Rack: 0, Domain: 1, NumGPUs: 4, SlotSize: 2},
	}
	if _, err := NewTopology(bad); err == nil {
		t.Error("rack straddling domains should be rejected")
	}
}

func TestLocalityString(t *testing.T) {
	names := map[Locality]string{
		LocalitySlot:    "slot",
		LocalityMachine: "machine",
		LocalityRack:    "rack",
		LocalityDomain:  "cross-rack",
		LocalityNone:    "cross-domain",
		Locality(99):    "unknown",
	}
	for l, want := range names {
		if got := l.String(); got != want {
			t.Errorf("Locality(%d).String() = %q, want %q", l, got, want)
		}
	}
}

// mustTopo builds a homogeneous topology of n machines with g GPUs each.
func mustTopo(t *testing.T, n, g, slot int) *Topology {
	t.Helper()
	topo, err := Config{
		MachineSpecs: []MachineSpec{{Count: n, GPUs: g, SlotSize: slot}},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}
