package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randAlloc builds a small random allocation over machines 0..7.
func randAlloc(seed uint32) Alloc {
	rng := rand.New(rand.NewSource(int64(seed)))
	a := NewAlloc()
	for m := 0; m < 8; m++ {
		if n := rng.Intn(4); n > 0 && rng.Float64() < 0.6 {
			a[MachineID(m)] = n
		}
	}
	return a
}

// TestAllocAddSubRoundTrip: (a + b) − b == a for all allocations.
func TestAllocAddSubRoundTrip(t *testing.T) {
	f := func(sa, sb uint32) bool {
		a, b := randAlloc(sa), randAlloc(sb)
		sum := a.Add(b)
		back, err := sum.Sub(b)
		if err != nil {
			return false
		}
		return back.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAllocAddCommutative: a + b == b + a and totals add up.
func TestAllocAddCommutative(t *testing.T) {
	f := func(sa, sb uint32) bool {
		a, b := randAlloc(sa), randAlloc(sb)
		ab, ba := a.Add(b), b.Add(a)
		return ab.Equal(ba) && ab.Total() == a.Total()+b.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAllocCloneIsolation: mutating a clone never affects the original.
func TestAllocCloneIsolation(t *testing.T) {
	f := func(sa uint32) bool {
		a := randAlloc(sa)
		before := a.Total()
		c := a.Clone()
		c[0] += 5
		return a.Total() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStateGrantReleaseInvariant: after any sequence of random grants and
// releases that the State accepts, Validate still holds and free+used equals
// capacity.
func TestStateGrantReleaseInvariant(t *testing.T) {
	topo, err := Config{MachineSpecs: []MachineSpec{{Count: 8, GPUs: 4, SlotSize: 2}}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint32, ops uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		s := NewState(topo)
		apps := []string{"a", "b", "c"}
		for i := 0; i < int(ops%40); i++ {
			app := apps[rng.Intn(len(apps))]
			if rng.Float64() < 0.6 {
				want := randAlloc(rng.Uint32())
				_ = s.Grant(app, want) // may legitimately fail when over capacity
			} else {
				held := s.Held(app)
				if held.Total() > 0 {
					// Release a random sub-allocation of what is held.
					rel := NewAlloc()
					for m, n := range held {
						rel[m] = rng.Intn(n + 1)
					}
					if err := s.Release(app, rel); err != nil {
						return false
					}
				}
			}
			if err := s.Validate(); err != nil {
				return false
			}
			if s.TotalFree()+s.TotalUsed() != topo.TotalGPUs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
