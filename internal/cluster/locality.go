package cluster

// Locality is the network boundary an allocation spans. It drives both the
// placement-sensitivity slowdown S (package placement) and the placement
// score reported in the paper's Figure 7. Smaller spans mean higher
// interconnect bandwidth between the GPUs of a job.
type Locality int

const (
	// LocalitySlot: all GPUs within one NVLink slot of one machine.
	LocalitySlot Locality = iota
	// LocalityMachine: all GPUs within one machine (PCIe between slots).
	LocalityMachine
	// LocalityRack: GPUs span machines within one rack.
	LocalityRack
	// LocalityDomain: GPUs span racks within one fabric domain. On flat
	// (single-domain) topologies this is the worst reachable level and keeps
	// the score the pre-hierarchy cross-rack level had, so flat results are
	// unchanged by the domain layer.
	LocalityDomain
	// LocalityNone: GPUs span fabric domains. Only reachable on topologies
	// declaring more than one domain.
	LocalityNone
)

// String returns a human-readable name for the locality level.
func (l Locality) String() string {
	switch l {
	case LocalitySlot:
		return "slot"
	case LocalityMachine:
		return "machine"
	case LocalityRack:
		return "rack"
	case LocalityDomain:
		return "cross-rack"
	case LocalityNone:
		return "cross-domain"
	default:
		return "unknown"
	}
}

// LocalityOf classifies the network boundary spanned by alloc on topo.
// An empty allocation is reported as LocalitySlot (it spans nothing).
//
// The slot level is conservative: the state does not track which physical
// GPU indices an app holds, so an allocation counts as slot-local only when
// it fits entirely within a single machine's slot size. This matches how the
// paper's simulator scores placements (it reasons about counts, not GPU
// serial numbers).
func LocalityOf(topo *Topology, alloc Alloc) Locality {
	// Iterate the map directly instead of materialising a sorted machine
	// slice: the classification ("all in one rack", "any two domains
	// differ") is order-independent, and this sits on the valuation hot
	// path via the sensitivity model's S(l) lookups.
	count := 0
	var first MachineID
	var rack RackID
	var domain DomainID
	sameRack := true
	sameDomain := true
	for m, n := range alloc {
		if n <= 0 {
			continue
		}
		count++
		if count == 1 {
			first, rack, domain = m, topo.Rack(m), topo.Domain(m)
			continue
		}
		if topo.Rack(m) != rack {
			sameRack = false
		}
		if topo.Domain(m) != domain {
			sameDomain = false
		}
	}
	switch {
	case count == 0:
		return LocalitySlot
	case count == 1:
		if alloc[first] <= topo.Machine(first).SlotSize {
			return LocalitySlot
		}
		return LocalityMachine
	case !sameDomain:
		return LocalityNone
	case sameRack:
		return LocalityRack
	default:
		return LocalityDomain
	}
}

// PlacementScore maps an allocation to the paper's placement score (§8.1
// Metrics): 1.0 for slot locality, decreasing for machine, rack, cross-rack
// and cross-domain spreads. A score of 1.0 indicates tightly packed GPUs.
func PlacementScore(topo *Topology, alloc Alloc) float64 {
	return LocalityScore(LocalityOf(topo, alloc))
}

// LocalityScore returns the placement score associated with a locality level.
// LocalityDomain keeps the value the flat model assigned to cross-rack
// spreads; the cross-domain LocalityNone level scores strictly lower.
func LocalityScore(l Locality) float64 {
	switch l {
	case LocalitySlot:
		return 1.0
	case LocalityMachine:
		return 0.9
	case LocalityRack:
		return 0.7
	case LocalityDomain:
		return 0.5
	default:
		return 0.35
	}
}

// SpreadStats summarises how an allocation is spread over the topology.
type SpreadStats struct {
	GPUs     int
	Machines int
	Racks    int
	Domains  int
	Locality Locality
	Score    float64
}

// Spread computes SpreadStats for alloc on topo.
func Spread(topo *Topology, alloc Alloc) SpreadStats {
	machines := alloc.Machines()
	racks := make(map[RackID]bool)
	domains := make(map[DomainID]bool)
	for _, m := range machines {
		racks[topo.Rack(m)] = true
		domains[topo.Domain(m)] = true
	}
	loc := LocalityOf(topo, alloc)
	return SpreadStats{
		GPUs:     alloc.Total(),
		Machines: len(machines),
		Racks:    len(racks),
		Domains:  len(domains),
		Locality: loc,
		Score:    LocalityScore(loc),
	}
}
