package cluster

import "sort"

// Machine availability. The paper leaves failure-aware scheduling to future
// work (§6); the simulator's failure injector uses these hooks to take
// machines out of (and back into) service so schedulers can be studied under
// machine failures. An offline machine offers no free GPUs; GPUs already
// granted there must be released by the caller (the simulator revokes the
// affected apps' allocations when it injects the failure).

// SetOffline marks machine m as failed (offline=true) or recovered
// (offline=false). Marking an unknown machine is a no-op.
func (s *State) SetOffline(m MachineID, offline bool) {
	if int(m) < 0 || int(m) >= s.topo.NumMachines() {
		return
	}
	if s.offline == nil {
		s.offline = make(map[MachineID]bool)
	}
	if offline {
		s.offline[m] = true
	} else {
		delete(s.offline, m)
	}
}

// Offline reports whether machine m is currently marked failed.
func (s *State) Offline(m MachineID) bool { return s.offline[m] }

// OfflineMachines returns the currently failed machines in ID order.
func (s *State) OfflineMachines() []MachineID {
	out := make([]MachineID, 0, len(s.offline))
	for m := range s.offline {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
