package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Alloc is a GPU allocation vector: the number of GPUs held on each machine.
// It is the unit of currency between the Arbiter and the Agents — the paper's
// [G_{x,y,i}] vector aggregated per machine. Machines with zero GPUs are not
// stored.
type Alloc map[MachineID]int

// NewAlloc returns an empty allocation vector.
func NewAlloc() Alloc { return make(Alloc) }

// Clone returns a deep copy of the allocation.
func (a Alloc) Clone() Alloc {
	out := make(Alloc, len(a))
	for m, n := range a {
		if n != 0 {
			out[m] = n
		}
	}
	return out
}

// Total returns the total number of GPUs in the allocation.
func (a Alloc) Total() int {
	t := 0
	for _, n := range a {
		t += n
	}
	return t
}

// IsEmpty reports whether the allocation holds no GPUs.
func (a Alloc) IsEmpty() bool { return a.Total() == 0 }

// Add returns a new allocation holding the GPUs of both a and b. Zero
// entries in b are skipped so the result stays canonical (no stored zeros)
// and Equal/Key comparisons cannot diverge on representation.
func (a Alloc) Add(b Alloc) Alloc {
	out := a.Clone()
	for m, n := range b {
		if n == 0 {
			continue
		}
		out[m] += n
		if out[m] == 0 {
			delete(out, m)
		}
	}
	return out
}

// Sub returns a new allocation with b's GPUs removed from a. It returns an
// error if b holds GPUs on a machine where a holds fewer. Zero entries in b
// are skipped, mirroring Add, so the result stays canonical. The error
// reports a's actual held count (Clone drops explicit zero entries, so the
// cloned-out view must not be the one reported).
func (a Alloc) Sub(b Alloc) (Alloc, error) {
	out := a.Clone()
	for m, n := range b {
		if n == 0 {
			continue
		}
		if out[m] < n {
			return nil, fmt.Errorf("alloc: cannot remove %d GPUs from machine %d (have %d)", n, m, a[m])
		}
		out[m] -= n
		if out[m] == 0 {
			delete(out, m)
		}
	}
	return out, nil
}

// Machines returns the machine IDs with a non-zero count, in ascending order.
func (a Alloc) Machines() []MachineID {
	out := make([]MachineID, 0, len(a))
	for m, n := range a {
		if n > 0 {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two allocations hold the same GPUs per machine.
func (a Alloc) Equal(b Alloc) bool {
	if a.Total() != b.Total() {
		return false
	}
	for m, n := range a {
		if n != 0 && b[m] != n {
			return false
		}
	}
	return true
}

// String renders the allocation as "M3:2G,M7:1G" with machines in ID order,
// matching the bid-table notation in the paper's Figure 3.
func (a Alloc) String() string {
	if a.Total() == 0 {
		return "∅"
	}
	parts := make([]string, 0, len(a))
	for _, m := range a.Machines() {
		parts = append(parts, fmt.Sprintf("M%d:%dG", m, a[m]))
	}
	return strings.Join(parts, ",")
}

// Key returns a canonical string usable as a map key for memoising valuation
// lookups over allocations.
func (a Alloc) Key() string { return a.String() }

// State tracks which app currently holds which GPUs on a Topology. It is the
// Arbiter's (and the simulator's) authoritative view of cluster occupancy.
// State is not safe for concurrent use; callers serialise access.
type State struct {
	topo    *Topology
	used    map[MachineID]int            // GPUs in use per machine
	held    map[string]Alloc             // app ID -> allocation
	on      map[MachineID]map[string]int // machine -> app ID -> count
	offline map[MachineID]bool           // machines currently failed
}

// NewState returns an empty occupancy state over topo.
func NewState(topo *Topology) *State {
	return &State{
		topo: topo,
		used: make(map[MachineID]int),
		held: make(map[string]Alloc),
		on:   make(map[MachineID]map[string]int),
	}
}

// Topology returns the topology the state tracks.
func (s *State) Topology() *Topology { return s.topo }

// FreeOn returns the number of free GPUs on machine m (zero while the
// machine is offline).
func (s *State) FreeOn(m MachineID) int {
	if s.offline[m] {
		return 0
	}
	return s.topo.Machine(m).NumGPUs - s.used[m]
}

// UsedOn returns the number of GPUs in use on machine m.
func (s *State) UsedOn(m MachineID) int { return s.used[m] }

// TotalFree returns the number of free GPUs across the whole cluster,
// excluding offline machines. It iterates machines by index rather than via
// Machines() — which copies the machine slice — because the simulator calls
// it once per decision round and the round must stay allocation-free.
func (s *State) TotalFree() int {
	free := 0
	for id := 0; id < s.topo.NumMachines(); id++ {
		free += s.FreeOn(MachineID(id))
	}
	return free
}

// TotalUsed returns the number of GPUs in use across the whole cluster.
func (s *State) TotalUsed() int {
	used := 0
	for _, n := range s.used {
		used += n
	}
	return used
}

// FreeVector returns the free GPUs per machine as an Alloc — the resource
// offer vector the Arbiter auctions.
func (s *State) FreeVector() Alloc {
	out := NewAlloc()
	for _, m := range s.topo.Machines() {
		if free := s.FreeOn(m.ID); free > 0 {
			out[m.ID] = free
		}
	}
	return out
}

// Held returns a copy of the allocation currently held by app.
func (s *State) Held(app string) Alloc {
	if a, ok := s.held[app]; ok {
		return a.Clone()
	}
	return NewAlloc()
}

// HeldTotal returns the number of GPUs app currently holds, without copying
// its allocation. Per-agent sweeps (reconciliation, parity accounting) use it
// to sift the many apps holding nothing from the few worth a full Held copy.
func (s *State) HeldTotal(app string) int {
	return s.held[app].Total()
}

// Apps returns the IDs of apps currently holding GPUs, sorted.
func (s *State) Apps() []string {
	out := make([]string, 0, len(s.held))
	for id, a := range s.held {
		if !a.IsEmpty() {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// AppsOn returns the per-app GPU counts on machine m, as a copy.
func (s *State) AppsOn(m MachineID) map[string]int {
	out := make(map[string]int, len(s.on[m]))
	for app, n := range s.on[m] {
		if n > 0 {
			out[app] = n
		}
	}
	return out
}

// Grant assigns the GPUs in alloc to app. It fails (without partial effect)
// if any machine lacks sufficient free GPUs.
func (s *State) Grant(app string, alloc Alloc) error {
	for m, n := range alloc {
		if n < 0 {
			return fmt.Errorf("cluster: negative grant of %d GPUs on machine %d", n, m)
		}
		if int(m) < 0 || int(m) >= s.topo.NumMachines() {
			return fmt.Errorf("cluster: grant on unknown machine %d", m)
		}
		if s.FreeOn(m) < n {
			return fmt.Errorf("cluster: machine %d has %d free GPUs, cannot grant %d to %s", m, s.FreeOn(m), n, app)
		}
	}
	for m, n := range alloc {
		if n == 0 {
			continue
		}
		s.used[m] += n
		if s.on[m] == nil {
			s.on[m] = make(map[string]int)
		}
		s.on[m][app] += n
	}
	s.held[app] = s.Held(app).Add(alloc)
	return nil
}

// Release removes the GPUs in alloc from app's holdings. It fails (without
// partial effect) if app does not hold the GPUs being released.
func (s *State) Release(app string, alloc Alloc) error {
	held := s.Held(app)
	if _, err := held.Sub(alloc); err != nil {
		return fmt.Errorf("cluster: app %s: %w", app, err)
	}
	for m, n := range alloc {
		if n == 0 {
			continue
		}
		s.used[m] -= n
		s.on[m][app] -= n
		if s.on[m][app] == 0 {
			delete(s.on[m], app)
		}
	}
	newHeld, _ := held.Sub(alloc)
	if newHeld.IsEmpty() {
		delete(s.held, app)
	} else {
		s.held[app] = newHeld
	}
	return nil
}

// ReleaseAll removes every GPU held by app and returns the allocation that
// was released.
func (s *State) ReleaseAll(app string) Alloc {
	held := s.Held(app)
	if held.IsEmpty() {
		return held
	}
	if err := s.Release(app, held); err != nil {
		// Held() is by construction releasable; a failure indicates internal
		// state corruption.
		panic("cluster: ReleaseAll internal inconsistency: " + err.Error())
	}
	return held
}

// Validate checks internal invariants: per-machine used counts match the sum
// of per-app holdings and never exceed capacity. It is used by tests and the
// simulator's self-checks.
func (s *State) Validate() error {
	for _, m := range s.topo.Machines() {
		sum := 0
		for _, n := range s.on[m.ID] {
			sum += n
		}
		if sum != s.used[m.ID] {
			return fmt.Errorf("machine %d: used=%d but per-app sum=%d", m.ID, s.used[m.ID], sum)
		}
		if s.used[m.ID] > m.NumGPUs || s.used[m.ID] < 0 {
			return fmt.Errorf("machine %d: used=%d out of range [0,%d]", m.ID, s.used[m.ID], m.NumGPUs)
		}
	}
	total := NewAlloc()
	for _, a := range s.held {
		total = total.Add(a)
	}
	for m, n := range total {
		if n != s.used[m] {
			return fmt.Errorf("machine %d: held sum %d != used %d", m, n, s.used[m])
		}
	}
	return nil
}
