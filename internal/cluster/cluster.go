// Package cluster models the GPU cluster a Themis deployment schedules:
// racks of machines, each with a number of GPUs grouped into NVLink slots.
//
// The scheduler only ever reasons about GPU counts, their machine/rack
// location and the locality level an allocation achieves, so the model
// exposes exactly those: a Topology describing the hardware, a Cluster
// tracking which app holds which GPUs, and Alloc vectors (GPUs-per-machine
// maps) exchanged between the Arbiter and the Agents.
package cluster

import (
	"fmt"
	"sort"
)

// MachineID identifies a machine in the cluster. IDs are dense, starting at 0.
type MachineID int

// RackID identifies a rack. IDs are dense, starting at 0.
type RackID int

// DomainID identifies a fabric domain: a group of racks sharing a fast
// interconnect fabric (a pod or NVLink/InfiniBand spine). IDs are dense,
// starting at 0. Flat topologies place every rack in domain 0, so a Topology
// built without explicit domains behaves exactly as it did before domains
// existed — the hierarchy only differentiates once a topology declares more
// than one domain (see the topology package's Spec and Lift).
type DomainID int

// GPUType labels the accelerator model installed in a machine. The scheduler
// treats all GPUs as interchangeable for capacity purposes (as the paper
// does), but the type is carried through for reporting.
type GPUType string

// Common GPU types used by the synthetic clusters. The paper's testbed mixes
// K80 and M60 GPUs; its simulations use an unnamed heterogeneous fleet.
const (
	GPUTypeK80  GPUType = "K80"
	GPUTypeM60  GPUType = "M60"
	GPUTypeP100 GPUType = "P100"
	GPUTypeV100 GPUType = "V100"
)

// Machine describes one server in the cluster.
type Machine struct {
	ID   MachineID
	Rack RackID
	// Domain is the fabric domain housing the machine's rack. The zero value
	// places the machine in domain 0, so flat topologies form a single-domain
	// hierarchy automatically. All machines of one rack must share a domain.
	Domain   DomainID
	NumGPUs  int
	SlotSize int // GPUs per NVLink slot; NumGPUs is a multiple of SlotSize
	GPU      GPUType
}

// Validate reports whether the machine description is internally consistent.
func (m Machine) Validate() error {
	if m.NumGPUs <= 0 {
		return fmt.Errorf("machine %d: NumGPUs must be positive, got %d", m.ID, m.NumGPUs)
	}
	if m.SlotSize <= 0 {
		return fmt.Errorf("machine %d: SlotSize must be positive, got %d", m.ID, m.SlotSize)
	}
	if m.NumGPUs%m.SlotSize != 0 {
		return fmt.Errorf("machine %d: NumGPUs (%d) not a multiple of SlotSize (%d)", m.ID, m.NumGPUs, m.SlotSize)
	}
	return nil
}

// Topology is an immutable description of the cluster hardware.
type Topology struct {
	machines    []Machine
	byRack      map[RackID][]MachineID
	byDomain    map[DomainID][]MachineID
	domainNames map[DomainID]string
	total       int
}

// NewTopology builds a Topology from a set of machines. Machine IDs must be
// dense (0..n-1) and unique, domain IDs non-negative, and every rack must lie
// entirely within one fabric domain.
func NewTopology(machines []Machine) (*Topology, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("topology needs at least one machine")
	}
	t := &Topology{
		machines: make([]Machine, len(machines)),
		byRack:   make(map[RackID][]MachineID),
		byDomain: make(map[DomainID][]MachineID),
	}
	seen := make(map[MachineID]bool, len(machines))
	rackDomain := make(map[RackID]DomainID)
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if int(m.ID) < 0 || int(m.ID) >= len(machines) {
			return nil, fmt.Errorf("machine ID %d out of range [0,%d)", m.ID, len(machines))
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("duplicate machine ID %d", m.ID)
		}
		if m.Domain < 0 {
			return nil, fmt.Errorf("machine %d: negative fabric domain %d", m.ID, m.Domain)
		}
		if d, ok := rackDomain[m.Rack]; ok && d != m.Domain {
			return nil, fmt.Errorf("rack %d straddles fabric domains %d and %d", m.Rack, d, m.Domain)
		}
		rackDomain[m.Rack] = m.Domain
		seen[m.ID] = true
		t.machines[m.ID] = m
		t.byRack[m.Rack] = append(t.byRack[m.Rack], m.ID)
		t.byDomain[m.Domain] = append(t.byDomain[m.Domain], m.ID)
		t.total += m.NumGPUs
	}
	for _, ids := range t.byRack {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	for _, ids := range t.byDomain {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return t, nil
}

// NumMachines returns the number of machines in the cluster.
func (t *Topology) NumMachines() int { return len(t.machines) }

// NumRacks returns the number of racks in the cluster.
func (t *Topology) NumRacks() int { return len(t.byRack) }

// TotalGPUs returns the total GPU capacity of the cluster.
func (t *Topology) TotalGPUs() int { return t.total }

// Machine returns the description of machine id.
func (t *Topology) Machine(id MachineID) Machine { return t.machines[id] }

// Machines returns all machines, ordered by ID. The returned slice is a copy.
func (t *Topology) Machines() []Machine {
	out := make([]Machine, len(t.machines))
	copy(out, t.machines)
	return out
}

// MachinesInRack returns the machine IDs in a rack, ordered by ID.
func (t *Topology) MachinesInRack(r RackID) []MachineID {
	ids := t.byRack[r]
	out := make([]MachineID, len(ids))
	copy(out, ids)
	return out
}

// Racks returns all rack IDs in ascending order.
func (t *Topology) Racks() []RackID {
	out := make([]RackID, 0, len(t.byRack))
	for r := range t.byRack {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rack returns the rack housing machine id.
func (t *Topology) Rack(id MachineID) RackID { return t.machines[id].Rack }

// NumDomains returns the number of fabric domains in the cluster. Flat
// topologies report 1.
func (t *Topology) NumDomains() int { return len(t.byDomain) }

// Domain returns the fabric domain housing machine id.
func (t *Topology) Domain(id MachineID) DomainID { return t.machines[id].Domain }

// Domains returns all fabric-domain IDs in ascending order.
func (t *Topology) Domains() []DomainID {
	out := make([]DomainID, 0, len(t.byDomain))
	for d := range t.byDomain {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MachinesInDomain returns the machine IDs in a fabric domain, ordered by ID.
func (t *Topology) MachinesInDomain(d DomainID) []MachineID {
	ids := t.byDomain[d]
	out := make([]MachineID, len(ids))
	copy(out, ids)
	return out
}

// RacksInDomain returns the rack IDs inside a fabric domain, ascending.
func (t *Topology) RacksInDomain(d DomainID) []RackID {
	seen := make(map[RackID]bool)
	var out []RackID
	for _, id := range t.byDomain[d] {
		r := t.machines[id].Rack
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetDomainName attaches a human-readable name to a fabric domain, used by
// trace placement blocks to target domains by name. Unknown domains are
// rejected so topology builders catch typos early.
func (t *Topology) SetDomainName(d DomainID, name string) error {
	if _, ok := t.byDomain[d]; !ok {
		return fmt.Errorf("cluster: no fabric domain %d", d)
	}
	if t.domainNames == nil {
		t.domainNames = make(map[DomainID]string)
	}
	t.domainNames[d] = name
	return nil
}

// DomainName returns the name of a fabric domain, defaulting to
// "domain-<id>" when none was set.
func (t *Topology) DomainName(d DomainID) string {
	if name, ok := t.domainNames[d]; ok {
		return name
	}
	return fmt.Sprintf("domain-%d", d)
}

// DomainByName resolves a fabric domain by its name, accepting both assigned
// names and the "domain-<id>" defaults.
func (t *Topology) DomainByName(name string) (DomainID, bool) {
	for d, n := range t.domainNames {
		if n == name {
			return d, true
		}
	}
	for d := range t.byDomain {
		if fmt.Sprintf("domain-%d", d) == name {
			return d, true
		}
	}
	return 0, false
}

// Config describes a synthetic cluster to construct. It is the programmatic
// equivalent of a cluster spec file.
type Config struct {
	// MachineSpecs lists groups of identical machines.
	MachineSpecs []MachineSpec
	// MachinesPerRack controls how machines are laid out into racks; when
	// zero, DefaultMachinesPerRack is used.
	MachinesPerRack int
}

// MachineSpec is one group of identical machines in a Config.
type MachineSpec struct {
	Count    int
	GPUs     int
	SlotSize int
	GPU      GPUType
}

// DefaultMachinesPerRack is the rack width used when Config.MachinesPerRack
// is zero. It mirrors a common 16-machine rack.
const DefaultMachinesPerRack = 16

// Build constructs the Topology described by the Config. Machines are laid
// out spec group by spec group, filling racks in order.
func (c Config) Build() (*Topology, error) {
	perRack := c.MachinesPerRack
	if perRack <= 0 {
		perRack = DefaultMachinesPerRack
	}
	var machines []Machine
	id := 0
	for _, spec := range c.MachineSpecs {
		if spec.Count <= 0 {
			return nil, fmt.Errorf("machine spec count must be positive, got %d", spec.Count)
		}
		slot := spec.SlotSize
		if slot <= 0 {
			slot = spec.GPUs
		}
		for i := 0; i < spec.Count; i++ {
			machines = append(machines, Machine{
				ID:       MachineID(id),
				Rack:     RackID(id / perRack),
				NumGPUs:  spec.GPUs,
				SlotSize: slot,
				GPU:      spec.GPU,
			})
			id++
		}
	}
	return NewTopology(machines)
}

// SimulationCluster returns the paper's default 256-GPU heterogeneous
// simulated cluster: a mixture of 4-GPU, 2-GPU and 1-GPU machines spread
// across multiple racks (§8.1).
func SimulationCluster() *Topology {
	t, err := Config{
		MachineSpecs: []MachineSpec{
			{Count: 48, GPUs: 4, SlotSize: 2, GPU: GPUTypeP100}, // 192 GPUs
			{Count: 24, GPUs: 2, SlotSize: 2, GPU: GPUTypeV100}, // 48 GPUs
			{Count: 16, GPUs: 1, SlotSize: 1, GPU: GPUTypeK80},  // 16 GPUs
		},
		MachinesPerRack: 16,
	}.Build()
	if err != nil {
		panic("cluster: building default simulation cluster: " + err.Error())
	}
	return t
}

// TestbedCluster returns the paper's 50-GPU Azure testbed: 20 instances with
// 1, 2 or 4 GPUs each (NC- and NV-series, K80 and M60 GPUs) (§8.1).
func TestbedCluster() *Topology {
	t, err := Config{
		MachineSpecs: []MachineSpec{
			{Count: 8, GPUs: 4, SlotSize: 2, GPU: GPUTypeM60}, // 32 GPUs
			{Count: 6, GPUs: 2, SlotSize: 2, GPU: GPUTypeK80}, // 12 GPUs
			{Count: 6, GPUs: 1, SlotSize: 1, GPU: GPUTypeK80}, // 6 GPUs
		},
		MachinesPerRack: 10,
	}.Build()
	if err != nil {
		panic("cluster: building default testbed cluster: " + err.Error())
	}
	return t
}
