package cluster

// DenseAlloc is the flat counterpart of Alloc: GPUs-per-machine as a plain
// []int32 vector indexed by MachineID. The sparse Alloc map stays the wire
// and API currency (it round-trips through JSON and tolerates arbitrary
// machine-ID spaces); DenseAlloc is the in-memory representation the auction
// hot path computes on, where "clone an allocation" must be a memcpy and
// "add a bundle" a handful of indexed adds rather than map churn.
//
// A DenseAlloc is meaningful only against a fixed machine-ID universe
// [0, len): conversions are lossless both ways for canonical allocations
// (no zero entries, IDs within range), which is exactly what Topology-backed
// allocations are.
type DenseAlloc []int32

// Total returns the total number of GPUs in the vector.
func (d DenseAlloc) Total() int {
	t := 0
	for _, n := range d {
		t += int(n)
	}
	return t
}

// Zero resets every machine's count to zero, keeping the backing array.
func (d DenseAlloc) Zero() {
	for i := range d {
		d[i] = 0
	}
}

// AddInPlace adds b's GPUs into d. b must not be longer than d.
func (d DenseAlloc) AddInPlace(b DenseAlloc) {
	for i, n := range b {
		d[i] += n
	}
}

// SubInPlace removes b's GPUs from d. b must not be longer than d; counts
// may go negative — callers on the hot path check feasibility with Fits
// before committing, exactly like the sparse Sub's error path but without
// allocating.
func (d DenseAlloc) SubInPlace(b DenseAlloc) {
	for i, n := range b {
		d[i] -= n
	}
}

// Fits reports whether adding add to the used vector d stays within
// capacity on every machine. add and capacity must not be longer than d.
func (d DenseAlloc) Fits(add, capacity DenseAlloc) bool {
	for i, n := range add {
		if n != 0 && d[i]+n > capacity[i] {
			return false
		}
	}
	return true
}

// CopyInto copies d into dst, growing dst as needed, and returns dst.
func (d DenseAlloc) CopyInto(dst DenseAlloc) DenseAlloc {
	if cap(dst) < len(d) {
		dst = make(DenseAlloc, len(d))
	}
	dst = dst[:len(d)]
	copy(dst, d)
	return dst
}

// ToAlloc converts the vector back to the canonical sparse form, skipping
// zero entries. For vectors produced from canonical Allocs via FillDense the
// round trip is lossless.
func (d DenseAlloc) ToAlloc() Alloc {
	out := make(Alloc)
	for i, n := range d {
		if n != 0 {
			out[MachineID(i)] = int(n)
		}
	}
	return out
}

// FillDense writes the sparse allocation into d (zeroing it first). It
// reports false — leaving unrepresentable entries dropped — if any non-zero
// entry falls outside [0, len(d)); canonical topology-backed allocations
// always fit.
func (a Alloc) FillDense(d DenseAlloc) bool {
	d.Zero()
	ok := true
	for m, n := range a {
		if n == 0 {
			continue
		}
		if int(m) < 0 || int(m) >= len(d) {
			ok = false
			continue
		}
		d[m] = int32(n)
	}
	return ok
}

// ToDense converts the allocation to a fresh dense vector over n machines.
// The second return mirrors FillDense's range check.
func (a Alloc) ToDense(n int) (DenseAlloc, bool) {
	d := make(DenseAlloc, n)
	ok := a.FillDense(d)
	return d, ok
}

// AllocArena is a round-scoped free-list for allocation scratch: dense
// vectors for solver-style computations and sparse Alloc maps for candidate
// allocations that must present the map API but die with the round.
//
// Ownership rules (see DESIGN.md "Dense allocation vectors"):
//
//   - Dense vectors are explicitly checked out (Dense) and returned
//     (ReleaseDense) by the same holder.
//   - Sparse maps from Sparse() are lent until the next Reset(): the arena
//     remembers every map it handed out and reclaims them all at once when
//     the round's grants have been applied. Anything that must outlive the
//     round — a grant the caller applies, a result a test inspects across
//     rounds — must be Clone()d out first.
//
// An arena is single-goroutine state; concurrent rounds (the sharded
// arbiter's per-shard auctions) each own their own arena, which is safe
// because shard partitions are disjoint.
type AllocArena struct {
	dense []DenseAlloc
	free  []Alloc
	lent  []Alloc
}

// NewAllocArena returns an empty arena.
func NewAllocArena() *AllocArena { return &AllocArena{} }

// Dense returns a zeroed dense vector of length n, reusing a retired one
// when available.
func (ar *AllocArena) Dense(n int) DenseAlloc {
	if k := len(ar.dense); k > 0 {
		d := ar.dense[k-1]
		ar.dense[k-1] = nil
		ar.dense = ar.dense[:k-1]
		if cap(d) < n {
			return make(DenseAlloc, n)
		}
		d = d[:n]
		d.Zero()
		return d
	}
	return make(DenseAlloc, n)
}

// ReleaseDense returns a dense vector to the free list.
func (ar *AllocArena) ReleaseDense(d DenseAlloc) {
	if d != nil {
		ar.dense = append(ar.dense, d)
	}
}

// Sparse returns a cleared Alloc map lent until the next Reset.
func (ar *AllocArena) Sparse() Alloc {
	var m Alloc
	if k := len(ar.free); k > 0 {
		m = ar.free[k-1]
		ar.free[k-1] = nil
		ar.free = ar.free[:k-1]
		clear(m)
	} else {
		m = NewAlloc()
	}
	ar.lent = append(ar.lent, m)
	return m
}

// Reset reclaims every sparse map lent since the previous Reset. Callers
// must not hold references to lent maps across a Reset; the maps are cleared
// and reused by subsequent Sparse calls.
func (ar *AllocArena) Reset() {
	ar.free = append(ar.free, ar.lent...)
	for i := range ar.lent {
		ar.lent[i] = nil
	}
	ar.lent = ar.lent[:0]
}

// Lent returns the number of sparse maps currently lent out — zero between
// rounds when every borrower resets properly; tests pin this.
func (ar *AllocArena) Lent() int { return len(ar.lent) }

// FreeSparse returns the number of sparse maps sitting in the free list.
func (ar *AllocArena) FreeSparse() int { return len(ar.free) }
