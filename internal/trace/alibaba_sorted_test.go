package trace

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// sortedAlibabaCSV builds a deterministic Alibaba-style CSV whose data rows
// are sorted by start time, with jobs interleaved (a job's tasks are spread
// across the file) and a sprinkling of filtered and malformed rows.
func sortedAlibabaCSV(t *testing.T, seed int64, jobs, rowsPerJob int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type row struct {
		job, task string
		start     float64
		dur       float64
		status    string
		gpu       int
	}
	var rows []row
	for j := 0; j < jobs; j++ {
		base := rng.Float64() * 100000
		for i := 0; i < rowsPerJob; i++ {
			status := "Terminated"
			if rng.Float64() < 0.15 {
				status = "Failed" // dropped by the importer
			}
			rows = append(rows, row{
				job:    fmt.Sprintf("job-%03d", j),
				task:   fmt.Sprintf("t%d", i),
				start:  base + rng.Float64()*5000,
				dur:    60 + rng.Float64()*4000,
				status: status,
				gpu:    100 * (1 + rng.Intn(4)),
			})
		}
	}
	// Sort every data row by start time — the precondition the fast path
	// asserts.
	for i := 1; i < len(rows); i++ {
		for k := i; k > 0 && rows[k].start < rows[k-1].start; k-- {
			rows[k], rows[k-1] = rows[k-1], rows[k]
		}
	}
	var b strings.Builder
	b.WriteString("job_name,task_name,inst_num,status,start_time,end_time,plan_gpu\n")
	for i, r := range rows {
		fmt.Fprintf(&b, "%s,%s,1,%s,%.3f,%.3f,%d\n", r.job, r.task, r.status, r.start, r.start+r.dur, r.gpu)
		if i%17 == 0 {
			b.WriteString("malformed,row\n") // short row: both paths skip it
		}
	}
	return b.String()
}

// The sorted fast path must produce byte-identical traces to the grouping
// fallback on sorted input, across cap sizes.
func TestAlibabaSortedCrossCheck(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		csv := sortedAlibabaCSV(t, seed, 30, 6)
		for _, maxApps := range []int{0, 1, 3, 10, 29, 30, 100} {
			t.Run(fmt.Sprintf("seed%d-cap%d", seed, maxApps), func(t *testing.T) {
				slow, err := ImportAlibaba(strings.NewReader(csv), ImportOptions{MaxApps: maxApps})
				if err != nil {
					t.Fatalf("unsorted path: %v", err)
				}
				fast, err := ImportAlibaba(strings.NewReader(csv), ImportOptions{MaxApps: maxApps, SortedInput: true})
				if err != nil {
					t.Fatalf("sorted path: %v", err)
				}
				if !reflect.DeepEqual(slow, fast) {
					t.Fatalf("paths diverge at cap %d:\nslow: %+v\nfast: %+v", maxApps, slow, fast)
				}
			})
		}
	}
}

// Tied submission times exercise the fast path's eviction and tombstone
// logic: jobs arriving at the same start time must be kept by ID order,
// exactly as the unsorted path's (submit, ID) truncation, and evicted jobs'
// later task rows must not resurrect them.
func TestAlibabaSortedTies(t *testing.T) {
	csv := "job_name,task_name,inst_num,status,start_time,end_time,plan_gpu\n" +
		"zeta,t0,1,Terminated,100,700,100\n" + // admitted first
		"beta,t0,1,Terminated,100,800,100\n" + // tie: evicts zeta at cap 1
		"alpha,t0,1,Terminated,100,900,100\n" + // tie: evicts beta
		"gamma,t0,1,Terminated,100,950,100\n" + // tie: dropped (gamma > alpha), tombstoned
		"zeta,t1,1,Terminated,160,750,100\n" + // evicted job: must stay dead
		"gamma,t1,1,Terminated,200,900,100\n" + // tombstoned job: must stay dead
		"alpha,t1,1,Terminated,260,980,100\n" // kept job accumulates
	for _, maxApps := range []int{1, 2, 3, 0} {
		slow, err := ImportAlibaba(strings.NewReader(csv), ImportOptions{MaxApps: maxApps})
		if err != nil {
			t.Fatalf("cap %d unsorted: %v", maxApps, err)
		}
		fast, err := ImportAlibaba(strings.NewReader(csv), ImportOptions{MaxApps: maxApps, SortedInput: true})
		if err != nil {
			t.Fatalf("cap %d sorted: %v", maxApps, err)
		}
		if !reflect.DeepEqual(slow, fast) {
			t.Fatalf("cap %d: paths diverge:\nslow: %+v\nfast: %+v", maxApps, slow, fast)
		}
	}
	// At cap 1 the survivor must be alpha with both its tasks.
	fast, err := ImportAlibaba(strings.NewReader(csv), ImportOptions{MaxApps: 1, SortedInput: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Apps) != 1 || fast.Apps[0].ID != "alpha" || len(fast.Apps[0].Jobs) != 2 {
		t.Fatalf("cap 1 kept %+v, want alpha with 2 jobs", fast.Apps)
	}
}

// Out-of-order importable rows must fail the declared-sorted import with a
// descriptive error rather than importing wrong submission times.
func TestAlibabaSortedRejectsUnsorted(t *testing.T) {
	csv := "job_name,task_name,inst_num,status,start_time,end_time,plan_gpu\n" +
		"a,t0,1,Terminated,500,900,100\n" +
		"b,t0,1,Terminated,100,700,100\n"
	_, err := ImportAlibaba(strings.NewReader(csv), ImportOptions{SortedInput: true})
	if err == nil {
		t.Fatal("out-of-order input accepted under SortedInput")
	}
	if !strings.Contains(err.Error(), "sorted") {
		t.Fatalf("error %q does not mention the sortedness contract", err)
	}
	// The same input imports fine without the assertion.
	if _, err := ImportAlibaba(strings.NewReader(csv), ImportOptions{}); err != nil {
		t.Fatalf("unsorted fallback: %v", err)
	}
	// Out-of-order *filtered* rows are invisible to the contract: only
	// importable rows are verified.
	filtered := "job_name,task_name,inst_num,status,start_time,end_time,plan_gpu\n" +
		"a,t0,1,Terminated,500,900,100\n" +
		"b,t0,1,Failed,100,700,100\n" +
		"c,t0,1,Terminated,600,800,100\n"
	if _, err := ImportAlibaba(strings.NewReader(filtered), ImportOptions{SortedInput: true}); err != nil {
		t.Fatalf("filtered out-of-order row failed the sorted import: %v", err)
	}
}

// SortedInput is a no-op on the row-per-job and native JSON paths.
func TestSortedInputIgnoredElsewhere(t *testing.T) {
	philly := "jobid,submit_time,gpus,duration,status\nj1,30,4,100,Pass\nj2,0,2,50,Pass\n"
	plain, err := ImportPhilly(strings.NewReader(philly), ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := ImportPhilly(strings.NewReader(philly), ImportOptions{SortedInput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, sorted) {
		t.Fatal("SortedInput changed the Philly import")
	}
}

// The sorted path reports progress with Kept bounded by the cap.
func TestAlibabaSortedProgress(t *testing.T) {
	csv := sortedAlibabaCSV(t, 4, 40, 4)
	var last ImportProgress
	calls := 0
	_, err := ImportAlibaba(strings.NewReader(csv), ImportOptions{
		MaxApps:       5,
		SortedInput:   true,
		ProgressEvery: 10,
		Progress: func(p ImportProgress) {
			calls++
			last = p
			if !p.Done && p.Kept > 5 {
				t.Errorf("streaming Kept %d exceeds the cap", p.Kept)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || !last.Done {
		t.Fatalf("progress not reported (calls %d, last %+v)", calls, last)
	}
	if last.Kept != 5 {
		t.Errorf("final Kept = %d, want 5", last.Kept)
	}
}
