package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"themis/internal/workload"
)

func genApps(t *testing.T, n int) []*workload.App {
	t.Helper()
	cfg := workload.DefaultGeneratorConfig()
	cfg.NumApps = n
	cfg.Seed = 21
	apps, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return apps
}

func TestRoundTrip(t *testing.T) {
	apps := genApps(t, 10)
	tr := FromApps("unit", apps)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "unit" || back.Version != FormatVersion {
		t.Errorf("header lost: %+v", back)
	}
	apps2, err := back.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps2) != len(apps) {
		t.Fatalf("app count %d != %d", len(apps2), len(apps))
	}
	for i := range apps {
		a, b := apps[i], apps2[i]
		if a.ID != b.ID || a.SubmitTime != b.SubmitTime || a.Profile.Name != b.Profile.Name {
			t.Fatalf("app %d header mismatch", i)
		}
		if len(a.Jobs) != len(b.Jobs) {
			t.Fatalf("app %d job count mismatch", i)
		}
		for k := range a.Jobs {
			if a.Jobs[k].TotalWork != b.Jobs[k].TotalWork ||
				a.Jobs[k].GangSize != b.Jobs[k].GangSize ||
				a.Jobs[k].Quality != b.Jobs[k].Quality ||
				a.Jobs[k].Seed != b.Jobs[k].Seed {
				t.Fatalf("app %d job %d mismatch", i, k)
			}
		}
		// Runtime state must be fresh.
		for _, j := range b.Jobs {
			if j.DoneWork != 0 || j.Killed || j.DoneAt != workload.NotFinished {
				t.Fatalf("replayed job has stale runtime state: %+v", j)
			}
		}
	}
}

func TestSaveLoad(t *testing.T) {
	apps := genApps(t, 5)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := Save(path, FromApps("disk", apps)); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Apps) != 5 {
		t.Errorf("loaded %d apps, want 5", len(back.Apps))
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestToAppsValidation(t *testing.T) {
	var verErr *UnsupportedVersionError
	bad := Trace{Version: 99}
	if _, err := bad.ToApps(); !errors.As(err, &verErr) || verErr.Version != 99 {
		t.Errorf("unsupported version error = %v, want UnsupportedVersionError{99}", err)
	}
	var idErr *MissingAppIDError
	bad = Trace{Version: FormatVersion, Apps: []AppSpec{{ID: "", Jobs: []JobSpec{{TotalWork: 1, GangSize: 1}}}}}
	if _, err := bad.ToApps(); !errors.As(err, &idErr) || idErr.Index != 0 {
		t.Errorf("empty app ID error = %v, want MissingAppIDError{0}", err)
	}
	var jobErr *JobError
	bad = Trace{Version: FormatVersion, Apps: []AppSpec{{ID: "a", Model: "VGG16", Jobs: []JobSpec{{TotalWork: 0, GangSize: 4}}}}}
	if _, err := bad.ToApps(); !errors.As(err, &jobErr) {
		t.Errorf("zero work error = %v, want JobError", err)
	}
	var dupErr *DuplicateAppIDError
	job := []JobSpec{{TotalWork: 1, GangSize: 1}}
	bad = Trace{Version: FormatVersion, Apps: []AppSpec{{ID: "a", Jobs: job}, {ID: "b", Jobs: job}, {ID: "a", Jobs: job}}}
	if _, err := bad.ToApps(); !errors.As(err, &dupErr) || dupErr.ID != "a" || dupErr.First != 0 || dupErr.Second != 2 {
		t.Errorf("duplicate app ID error = %v, want DuplicateAppIDError{a,0,2}", err)
	}
	// Unknown model falls back to a generic profile rather than failing.
	ok := Trace{Version: FormatVersion, Apps: []AppSpec{{ID: "a", Model: "UnknownNet", Jobs: []JobSpec{{TotalWork: 10, GangSize: 2}}}}}
	apps, err := ok.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(apps[0].Profile.Name, "generic") {
		t.Errorf("unknown model mapped to %q", apps[0].Profile.Name)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("garbage input should fail")
	}
}

// Read must reject structurally invalid traces at decode time, not replay
// time, with the typed errors callers negotiate on.
func TestReadValidates(t *testing.T) {
	var verErr *UnsupportedVersionError
	if _, err := Read(strings.NewReader(`{"version":3,"apps":[]}`)); !errors.As(err, &verErr) {
		t.Errorf("future version error = %v, want UnsupportedVersionError", err)
	}
	if _, err := Read(strings.NewReader(`{"apps":[]}`)); !errors.As(err, &verErr) || verErr.Version != 0 {
		t.Errorf("missing version error = %v, want UnsupportedVersionError{0}", err)
	}
	var dupErr *DuplicateAppIDError
	dup := `{"version":1,"apps":[
		{"id":"a","jobs":[{"total_work":1,"gang_size":1}]},
		{"id":"a","jobs":[{"total_work":1,"gang_size":1}]}]}`
	if _, err := Read(strings.NewReader(dup)); !errors.As(err, &dupErr) {
		t.Errorf("duplicate ID error = %v, want DuplicateAppIDError", err)
	}
}
