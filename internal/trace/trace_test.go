package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"themis/internal/workload"
)

func genApps(t *testing.T, n int) []*workload.App {
	t.Helper()
	cfg := workload.DefaultGeneratorConfig()
	cfg.NumApps = n
	cfg.Seed = 21
	apps, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return apps
}

func TestRoundTrip(t *testing.T) {
	apps := genApps(t, 10)
	tr := FromApps("unit", apps)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "unit" || back.Version != FormatVersion {
		t.Errorf("header lost: %+v", back)
	}
	apps2, err := back.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps2) != len(apps) {
		t.Fatalf("app count %d != %d", len(apps2), len(apps))
	}
	for i := range apps {
		a, b := apps[i], apps2[i]
		if a.ID != b.ID || a.SubmitTime != b.SubmitTime || a.Profile.Name != b.Profile.Name {
			t.Fatalf("app %d header mismatch", i)
		}
		if len(a.Jobs) != len(b.Jobs) {
			t.Fatalf("app %d job count mismatch", i)
		}
		for k := range a.Jobs {
			if a.Jobs[k].TotalWork != b.Jobs[k].TotalWork ||
				a.Jobs[k].GangSize != b.Jobs[k].GangSize ||
				a.Jobs[k].Quality != b.Jobs[k].Quality ||
				a.Jobs[k].Seed != b.Jobs[k].Seed {
				t.Fatalf("app %d job %d mismatch", i, k)
			}
		}
		// Runtime state must be fresh.
		for _, j := range b.Jobs {
			if j.DoneWork != 0 || j.Killed || j.DoneAt != workload.NotFinished {
				t.Fatalf("replayed job has stale runtime state: %+v", j)
			}
		}
	}
}

func TestSaveLoad(t *testing.T) {
	apps := genApps(t, 5)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := Save(path, FromApps("disk", apps)); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Apps) != 5 {
		t.Errorf("loaded %d apps, want 5", len(back.Apps))
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestToAppsValidation(t *testing.T) {
	bad := Trace{Version: 99}
	if _, err := bad.ToApps(); err == nil {
		t.Error("unsupported version should fail")
	}
	bad = Trace{Version: FormatVersion, Apps: []AppSpec{{ID: "", Jobs: []JobSpec{{TotalWork: 1, GangSize: 1}}}}}
	if _, err := bad.ToApps(); err == nil {
		t.Error("empty app ID should fail")
	}
	bad = Trace{Version: FormatVersion, Apps: []AppSpec{{ID: "a", Model: "VGG16", Jobs: []JobSpec{{TotalWork: 0, GangSize: 4}}}}}
	if _, err := bad.ToApps(); err == nil {
		t.Error("zero work should fail")
	}
	// Unknown model falls back to a generic profile rather than failing.
	ok := Trace{Version: FormatVersion, Apps: []AppSpec{{ID: "a", Model: "UnknownNet", Jobs: []JobSpec{{TotalWork: 10, GangSize: 2}}}}}
	apps, err := ok.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(apps[0].Profile.Name, "generic") {
		t.Errorf("unknown model mapped to %q", apps[0].Profile.Name)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("garbage input should fail")
	}
}
