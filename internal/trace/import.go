package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strings"
)

// Format names an on-disk trace shape the importer pipeline understands.
type Format string

const (
	// FormatJSON is the native versioned JSON trace (Read/Write).
	FormatJSON Format = "json"
	// FormatBinary is the native v3 binary container (ReadBinary/WriteBinary):
	// the same data model as FormatJSON in a compact, streamable encoding.
	FormatBinary Format = "binary"
	// FormatPhilly is a Philly-style CSV cluster log: one row per job with
	// submit time, GPU count, duration and completion status.
	FormatPhilly Format = "philly"
	// FormatAlibaba is an Alibaba-style CSV cluster log: one row per task
	// with job name, instance count, plan_gpu, start/end times and status.
	FormatAlibaba Format = "alibaba"
	// FormatAuto sniffs the input and dispatches to one of the above.
	FormatAuto Format = "auto"
)

// Formats lists the concrete formats Import accepts (FormatAuto aside).
func Formats() []Format { return []Format{FormatJSON, FormatBinary, FormatPhilly, FormatAlibaba} }

// sniffBytes is how much of the stream format auto-detection examines.
const sniffBytes = 4096

// ImportOptions tune the CSV adapters. The zero value is usable: times are
// interpreted in each format's conventional unit, non-completed rows are
// dropped, and every app is kept. Options are validated up front (see
// Validate); invalid values fail the import with a typed OptionError instead
// of silently producing garbage timestamps.
type ImportOptions struct {
	// Name is recorded as the trace name; empty defaults to the format name.
	Name string
	// TimeScale converts input time units into scheduling minutes. It must
	// be finite and non-negative. Zero is the documented "use the format's
	// convention" sentinel — Philly-style rows are already minutes (scale
	// 1), Alibaba-style rows are Unix seconds (scale 1/60) — so an explicit
	// zero is indistinguishable from unset and selects the convention; a
	// caller that wants to stop time entirely cannot (and negative, NaN and
	// Inf scales are rejected outright).
	TimeScale float64
	// KeepNonCompleted retains rows whose status is not a completion
	// (failed/killed jobs); by default only completed work is replayed.
	KeepNonCompleted bool
	// MaxApps caps the number of imported apps, keeping the earliest by
	// submit time (ID tie-broken); zero keeps all of them, negative is
	// rejected. For the row-per-job Philly format the cap bounds importer
	// memory to O(MaxApps) via an online top-K selection. On native JSON
	// input the kept apps retain their original submit times (no rebase).
	MaxApps int
	// SortedInput asserts that the input's data rows are already sorted by
	// submission/start time (non-decreasing), unlocking the grouping
	// (Alibaba-style) adapter's streaming fast path: per-job buffering is
	// capped at the current top-MaxApps jobs instead of every job in the
	// log, so memory drops to O(MaxApps) like the row-per-job format's. The
	// ordering of every importable row is verified — a violation fails the
	// import with a descriptive error instead of producing wrong submission
	// times. The row-per-job (Philly-style) and native JSON paths already
	// stream order-independently and ignore this flag.
	SortedInput bool
	// Model stamps every imported app with a placement profile name from
	// the catalog; empty leaves it to ToApps's generic fallback.
	Model string
	// Placement, when non-nil, stamps every imported app with a v2
	// placement block carrying the given profile and locality constraints.
	// It is validated like any decoded placement block (non-negative
	// constraints, profile resolvable in the catalog).
	Placement *PlacementSpec
	// Progress, when non-nil, receives streaming progress snapshots on the
	// importing goroutine: one about every ProgressEvery data rows and a
	// final one (Done=true) at end of input.
	Progress func(ImportProgress)
	// ProgressEvery is the data-row interval between Progress callbacks;
	// zero defaults to 100000, negative is rejected.
	ProgressEvery int64
}

// defaultProgressEvery is the Progress callback interval when unset.
const defaultProgressEvery = 100_000

// Validate rejects option values the importers cannot honour, with a typed
// OptionError naming the offending field. It is called by every import entry
// point, so a bad TimeScale fails fast instead of surfacing as nonsense
// submit times deep in a replay.
func (o ImportOptions) Validate() error {
	if math.IsNaN(o.TimeScale) || math.IsInf(o.TimeScale, 0) {
		return &OptionError{Option: "TimeScale", Value: fmt.Sprint(o.TimeScale), Reason: "must be finite"}
	}
	if o.TimeScale < 0 {
		return &OptionError{Option: "TimeScale", Value: fmt.Sprint(o.TimeScale), Reason: "must be non-negative (0 selects the format's convention)"}
	}
	if o.MaxApps < 0 {
		return &OptionError{Option: "MaxApps", Value: fmt.Sprint(o.MaxApps), Reason: "must be non-negative (0 keeps all apps)"}
	}
	if o.ProgressEvery < 0 {
		return &OptionError{Option: "ProgressEvery", Value: fmt.Sprint(o.ProgressEvery), Reason: "must be non-negative (0 uses the default interval)"}
	}
	if p := o.Placement; p != nil {
		probe := AppSpec{ID: "(options)", Placement: p}
		if err := probe.validatePlacement(FormatVersion); err != nil {
			return &OptionError{Option: "Placement", Value: fmt.Sprintf("%+v", *p), Reason: err.Error()}
		}
	}
	return nil
}

// Import reads a trace in the named format and normalises it into the native
// Trace form, validated and ready for ToApps. FormatAuto sniffs the stream.
// The CSV adapters run as a single streaming pass (see ImportPhilly and
// ImportAlibaba for their memory models), reporting progress through
// opts.Progress when set.
func Import(r io.Reader, f Format, opts ImportOptions) (Trace, error) {
	if err := opts.Validate(); err != nil {
		return Trace{}, err
	}
	if f == FormatAuto {
		br := bufio.NewReaderSize(r, sniffBytes)
		head, err := br.Peek(sniffBytes)
		if err != nil && err != io.EOF {
			// A reader that fails mid-sniff is an I/O error, not a format
			// mismatch: surface it instead of letting DetectFormat misreport
			// the truncated head as an unknown format.
			return Trace{}, fmt.Errorf("trace: sniffing format: %w", err)
		}
		detected, err := DetectFormat(head)
		if err != nil {
			return Trace{}, err
		}
		f, r = detected, br
	}
	switch f {
	case FormatJSON:
		return importJSON(r, opts)
	case FormatBinary:
		return importBinary(r, opts)
	case FormatPhilly:
		return ImportPhilly(r, opts)
	case FormatAlibaba:
		return ImportAlibaba(r, opts)
	default:
		return Trace{}, fmt.Errorf("trace: unknown import format %q (want %v or %q)", f, Formats(), FormatAuto)
	}
}

// DetectFormat sniffs the leading bytes of a trace file: the binary
// container announces itself with a magic prefix, native JSON starts with a
// JSON value, and the CSV dialects are told apart by their header columns
// (plan_gpu/job_name for Alibaba-style, jobid/submit for Philly-style).
func DetectFormat(head []byte) (Format, error) {
	if bytes.HasPrefix(head, []byte(binaryMagic)) {
		return FormatBinary, nil
	}
	trimmed := bytes.TrimLeft(head, " \t\r\n")
	if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
		return FormatJSON, nil
	}
	line := trimmed
	if i := bytes.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	header := strings.ToLower(string(line))
	switch {
	case strings.Contains(header, "plan_gpu") || strings.Contains(header, "job_name"):
		return FormatAlibaba, nil
	case strings.Contains(header, "jobid") || strings.Contains(header, "job_id") ||
		(strings.Contains(header, "submit") && strings.Contains(header, "gpu")):
		return FormatPhilly, nil
	}
	return "", fmt.Errorf("trace: cannot detect trace format from header %q", header)
}

// columnIndex resolves the first matching alias in a lowercased CSV header,
// or -1 when absent.
func columnIndex(header []string, aliases ...string) int {
	for i, col := range header {
		col = strings.TrimSpace(strings.ToLower(col))
		for _, a := range aliases {
			if col == a {
				return i
			}
		}
	}
	return -1
}

// completedStatus reports whether a status cell denotes successfully
// completed work. The pass sets cover both dialects; an absent status column
// counts as completed.
func completedStatus(s string) bool {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "pass", "passed", "completed", "complete", "success", "succeeded", "terminated", "finished":
		return true
	}
	return false
}

// isFinite rejects the NaN/±Inf values hostile CSV cells can smuggle in:
// they would poison work accounting and are unencodable as JSON.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// deriveSeed hashes an imported ID into a stable job seed, and deriveQuality
// into a stable [0,1) quality, so re-imports of the same file replay
// identically without a shared RNG.
func deriveSeed(id string) int64 {
	h := fnv.New64a()
	io.WriteString(h, id)
	return int64(h.Sum64() & (1<<62 - 1))
}

func deriveQuality(id string) float64 {
	return float64(deriveSeed(id)%1_000_000) / 1_000_000
}

// importJSON adapts the native decoder to the importer contract, so the
// options a caller hands Import apply uniformly across formats instead of
// being silently ignored on JSON input: Name, Model and Placement stamp the
// decoded apps, MaxApps keeps the earliest by (submit time, ID) — without
// the CSV adapters' rebase to t = 0, since a native trace owns its time
// base — and a Progress callback still receives its final Done snapshot
// (Rows counts decoded app entries; JSON has no data rows).
func importJSON(r io.Reader, opts ImportOptions) (Trace, error) {
	count := &countingReader{r: r}
	tr, err := Read(count)
	if err != nil {
		return Trace{}, err
	}
	return finishNativeImport(tr, opts, FormatJSON, count)
}

// importBinary adapts the v3 binary decoder to the importer contract,
// applying exactly the native post-processing importJSON does: the two
// encodings import identically apart from the Format in progress snapshots.
func importBinary(r io.Reader, opts ImportOptions) (Trace, error) {
	count := &countingReader{r: r}
	tr, err := ReadBinary(count)
	if err != nil {
		return Trace{}, err
	}
	return finishNativeImport(tr, opts, FormatBinary, count)
}

// finishNativeImport applies the importer options shared by the native
// encodings (JSON and binary) to a decoded trace: Name, Model and Placement
// stamping, the MaxApps earliest-by-(submit,ID) cap — without the CSV
// adapters' rebase to t = 0, since a native trace owns its time base — and
// the final Done progress snapshot (Rows counts decoded app entries; native
// traces have no data rows).
func finishNativeImport(tr Trace, opts ImportOptions, f Format, count *countingReader) (Trace, error) {
	if opts.Name != "" {
		tr.Name = opts.Name
	}
	if opts.Model != "" {
		for i := range tr.Apps {
			tr.Apps[i].Model = opts.Model
		}
	}
	if opts.MaxApps > 0 && len(tr.Apps) > opts.MaxApps {
		sort.SliceStable(tr.Apps, func(i, j int) bool { return appLess(&tr.Apps[i], &tr.Apps[j]) })
		tr.Apps = tr.Apps[:opts.MaxApps]
	}
	stampPlacement(&tr, opts.Placement)
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	if opts.Progress != nil {
		n := int64(len(tr.Apps))
		opts.Progress(ImportProgress{Format: f, Rows: n, Kept: n, Bytes: count.n, Done: true})
	}
	return tr, nil
}

// stampPlacement attaches a copy of the options' placement block to every
// imported app. Each app gets its own copy so later mutation of one spec
// (constraint stripping in studies, tests) cannot alias the others.
func stampPlacement(tr *Trace, p *PlacementSpec) {
	if p == nil {
		return
	}
	for i := range tr.Apps {
		block := *p
		tr.Apps[i].Placement = &block
	}
}
