package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strings"
)

// Format names an on-disk trace shape the importer pipeline understands.
type Format string

const (
	// FormatJSON is the native versioned JSON trace (Read/Write).
	FormatJSON Format = "json"
	// FormatPhilly is a Philly-style CSV cluster log: one row per job with
	// submit time, GPU count, duration and completion status.
	FormatPhilly Format = "philly"
	// FormatAlibaba is an Alibaba-style CSV cluster log: one row per task
	// with job name, instance count, plan_gpu, start/end times and status.
	FormatAlibaba Format = "alibaba"
	// FormatAuto sniffs the input and dispatches to one of the above.
	FormatAuto Format = "auto"
)

// Formats lists the concrete formats Import accepts (FormatAuto aside).
func Formats() []Format { return []Format{FormatJSON, FormatPhilly, FormatAlibaba} }

// ImportOptions tune the CSV adapters. The zero value is usable: times are
// interpreted in each format's conventional unit, non-completed rows are
// dropped, and every app is kept.
type ImportOptions struct {
	// Name is recorded as the trace name; empty defaults to the format name.
	Name string
	// TimeScale converts input time units into scheduling minutes. Zero
	// picks the format's convention: Philly-style rows are already minutes
	// (scale 1), Alibaba-style rows are Unix seconds (scale 1/60).
	TimeScale float64
	// KeepNonCompleted retains rows whose status is not a completion
	// (failed/killed jobs); by default only completed work is replayed.
	KeepNonCompleted bool
	// MaxApps caps the number of imported apps (after sorting by submit
	// time); zero keeps all of them.
	MaxApps int
	// Model stamps every imported app with a placement profile name from
	// the catalog; empty leaves it to ToApps's generic fallback.
	Model string
}

// Import reads a trace in the named format and normalises it into the native
// Trace form, validated and ready for ToApps. FormatAuto sniffs the stream.
func Import(r io.Reader, f Format, opts ImportOptions) (Trace, error) {
	if f == FormatAuto {
		br := bufio.NewReader(r)
		head, _ := br.Peek(4096)
		detected, err := DetectFormat(head)
		if err != nil {
			return Trace{}, err
		}
		f, r = detected, br
	}
	switch f {
	case FormatJSON:
		return Read(r)
	case FormatPhilly:
		return ImportPhilly(r, opts)
	case FormatAlibaba:
		return ImportAlibaba(r, opts)
	default:
		return Trace{}, fmt.Errorf("trace: unknown import format %q (want %v or %q)", f, Formats(), FormatAuto)
	}
}

// DetectFormat sniffs the leading bytes of a trace file: native JSON starts
// with a JSON value, and the CSV dialects are told apart by their header
// columns (plan_gpu/job_name for Alibaba-style, jobid/submit for
// Philly-style).
func DetectFormat(head []byte) (Format, error) {
	trimmed := bytes.TrimLeft(head, " \t\r\n")
	if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
		return FormatJSON, nil
	}
	line := trimmed
	if i := bytes.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	header := strings.ToLower(string(line))
	switch {
	case strings.Contains(header, "plan_gpu") || strings.Contains(header, "job_name"):
		return FormatAlibaba, nil
	case strings.Contains(header, "jobid") || strings.Contains(header, "job_id") ||
		(strings.Contains(header, "submit") && strings.Contains(header, "gpu")):
		return FormatPhilly, nil
	}
	return "", fmt.Errorf("trace: cannot detect trace format from header %q", header)
}

// columnIndex resolves the first matching alias in a lowercased CSV header,
// or -1 when absent.
func columnIndex(header []string, aliases ...string) int {
	for i, col := range header {
		col = strings.TrimSpace(strings.ToLower(col))
		for _, a := range aliases {
			if col == a {
				return i
			}
		}
	}
	return -1
}

// completedStatus reports whether a status cell denotes successfully
// completed work. The pass sets cover both dialects; an absent status column
// counts as completed.
func completedStatus(s string) bool {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "pass", "passed", "completed", "complete", "success", "succeeded", "terminated", "finished":
		return true
	}
	return false
}

// isFinite rejects the NaN/±Inf values hostile CSV cells can smuggle in:
// they would poison work accounting and are unencodable as JSON.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// deriveSeed hashes an imported ID into a stable job seed, and deriveQuality
// into a stable [0,1) quality, so re-imports of the same file replay
// identically without a shared RNG.
func deriveSeed(id string) int64 {
	h := fnv.New64a()
	io.WriteString(h, id)
	return int64(h.Sum64() & (1<<62 - 1))
}

func deriveQuality(id string) float64 {
	return float64(deriveSeed(id)%1_000_000) / 1_000_000
}
