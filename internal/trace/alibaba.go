package trace

import (
	"container/heap"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ImportAlibaba normalises an Alibaba-style CSV cluster log into a Trace.
// The shape follows the Alibaba GPU cluster traces: one row per task, keyed
// by job name, with an instance count, a fractional GPU request (plan_gpu,
// in percent of one GPU), Unix start/end times and a status:
//
//	job_name,task_name,inst_num,status,start_time,end_time,plan_gpu
//	j1,tensorflow,2,Terminated,1000,4600,100
//
// Rows sharing a job_name group into one app with a job per task row; the
// app's submission time is its earliest task start. A task's gang size is
// inst_num × ceil(plan_gpu / 100) and its serial work is gang × duration.
// Times are Unix seconds unless ImportOptions.TimeScale overrides the 1/60
// scale. Non-completed rows drop unless KeepNonCompleted is set ("Terminated"
// is Alibaba's completed state), and rows with non-positive durations are
// always dropped. Apps are sorted by submission time and rebased to 0.
//
// The pass streams rows off a reused record buffer, but — unlike the
// row-per-job Philly adapter — it must group tasks by job before it knows
// any app's submission time (the minimum over its task rows, which later
// rows can lower), so by default the MaxApps cap applies after grouping and
// memory is proportional to the kept task rows, not to the raw input:
// filtered and unparsable rows are never materialised. Progress is reported
// through opts.Progress, with Kept counting the distinct jobs seen so far.
//
// When the input rows are already sorted by start time — true for archived
// cluster dumps — set ImportOptions.SortedInput: the first row of each job
// then fixes its submission time, so the pass keeps only the current top-K
// jobs' tasks and memory drops to O(MaxApps) like the Philly adapter. The
// sorted pass verifies the ordering of every importable row and fails with a
// typed error on a violation rather than silently importing wrong
// submission times; both paths produce byte-identical traces on sorted
// input.
func ImportAlibaba(r io.Reader, opts ImportOptions) (Trace, error) {
	if err := opts.Validate(); err != nil {
		return Trace{}, err
	}
	scale := opts.TimeScale
	if scale == 0 {
		scale = 1.0 / 60 // Alibaba-style rows carry Unix seconds
	}
	sc := newRowScanner(r, FormatAlibaba, opts)

	header, err := sc.header()
	if err != nil {
		return Trace{}, fmt.Errorf("trace: alibaba: reading header: %w", err)
	}
	cols, err := alibabaColumns(header)
	if err != nil {
		return Trace{}, err
	}
	if opts.SortedInput {
		return importAlibabaSorted(sc, cols, scale, opts)
	}

	byJob := make(map[string][]taskRow)
	var order []string
	line := 1
	for {
		row, err := sc.next(func() int { return len(byJob) })
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return Trace{}, fmt.Errorf("trace: alibaba: line %d: %w", line, err)
		}
		sr, ok := scanAlibabaRow(row, cols, scale, opts)
		if !ok {
			continue
		}
		job, task := sr.build()
		if _, seen := byJob[job]; !seen {
			order = append(order, job)
		}
		byJob[job] = append(byJob[job], task)
	}

	tr := newAlibabaTrace(opts)
	for _, job := range order {
		tr.Apps = append(tr.Apps, alibabaApp(job, byJob[job], opts))
	}
	normalizeImported(&tr, opts.MaxApps)
	sc.finish(len(tr.Apps))
	return finishAlibaba(tr, opts)
}

// alibabaCols holds the resolved header indices of one import pass.
type alibabaCols struct {
	job, task, inst, status, start, end, gpu int
	max                                      int
}

// alibabaColumns resolves the header aliases, requiring the columns the
// adapter cannot work without.
func alibabaColumns(header []string) (alibabaCols, error) {
	cols := alibabaCols{
		job:    columnIndex(header, "job_name", "job_id", "jobid", "job"),
		task:   columnIndex(header, "task_name", "task"), // optional
		inst:   columnIndex(header, "inst_num", "instances", "inst"),
		status: columnIndex(header, "status", "state"), // optional
		start:  columnIndex(header, "start_time", "start"),
		end:    columnIndex(header, "end_time", "end"),
		gpu:    columnIndex(header, "plan_gpu", "gpu", "gpus"),
	}
	if cols.job < 0 || cols.start < 0 || cols.end < 0 || cols.gpu < 0 {
		return cols, fmt.Errorf("trace: alibaba: header %v missing job_name/start_time/end_time/plan_gpu", header)
	}
	cols.max = cols.job
	for _, c := range []int{cols.start, cols.end, cols.gpu} {
		if c > cols.max {
			cols.max = c
		}
	}
	return cols, nil
}

// taskRow is one parsed, importable task row.
type taskRow struct {
	name  string
	start float64
	job   JobSpec
}

// scannedRow is one importable data row after filtering and numeric
// parsing. The job and task strings are views into the scanner's reused
// record buffer — valid only until the next read; build copies them.
// Splitting scan from build lets the sorted fast path decide from the raw
// view whether a row's job is kept at all before paying the string clones
// and ID hashes, which on a capped multi-GB import is almost every row.
type scannedRow struct {
	job, task string
	start     float64 // scaled
	work      float64
	gang      int
}

// scanAlibabaRow parses and filters one data row without allocating. ok is
// false for short, filtered, unparsable or hostile rows — exactly the rows
// both accumulation paths skip.
func scanAlibabaRow(row []string, cols alibabaCols, scale float64, opts ImportOptions) (scannedRow, bool) {
	if len(row) <= cols.max {
		return scannedRow{}, false
	}
	if cols.status >= 0 && cols.status < len(row) && !completedStatus(row[cols.status]) && !opts.KeepNonCompleted {
		return scannedRow{}, false
	}
	job := strings.TrimSpace(row[cols.job])
	start, errS := strconv.ParseFloat(strings.TrimSpace(row[cols.start]), 64)
	end, errE := strconv.ParseFloat(strings.TrimSpace(row[cols.end]), 64)
	planGPU, errG := strconv.ParseFloat(strings.TrimSpace(row[cols.gpu]), 64)
	if job == "" || !utf8.ValidString(job) || errS != nil || errE != nil || errG != nil {
		return scannedRow{}, false
	}
	// Bound the numerics before converting: NaN/Inf and absurd GPU or
	// instance counts would overflow int conversion or poison work
	// accounting.
	if !isFinite(start) || !isFinite(end) || !(planGPU >= 0 && planGPU <= 1e8) {
		return scannedRow{}, false
	}
	inst := 1.0
	if cols.inst >= 0 && cols.inst < len(row) {
		if v, err := strconv.ParseFloat(strings.TrimSpace(row[cols.inst]), 64); err == nil && v >= 1 && v <= 1e6 {
			inst = v
		}
	}
	task := ""
	if cols.task >= 0 && cols.task < len(row) {
		task = strings.TrimSpace(row[cols.task])
	}
	duration := (end - start) * scale
	gpusPerInst := int((planGPU + 99) / 100) // plan_gpu is percent of one GPU
	if gpusPerInst < 1 {
		gpusPerInst = 1
	}
	gang := gpusPerInst * int(inst)
	work := duration * float64(gang)
	if work <= 0 || start < 0 || !isFinite(work) || !isFinite(start*scale) {
		return scannedRow{}, false
	}
	return scannedRow{job: job, task: task, start: start * scale, work: work, gang: gang}, true
}

// build materialises a retained row: the ID-derived quality/seed hashes plus
// copies of the job and task cells, safe to keep past the record reuse.
func (r scannedRow) build() (string, taskRow) {
	return strings.Clone(r.job), taskRow{
		name:  strings.Clone(r.task),
		start: r.start,
		job: JobSpec{
			TotalWork: r.work,
			GangSize:  r.gang,
			Quality:   deriveQuality(r.job + "/" + r.task),
			Seed:      deriveSeed(r.job + "/" + r.task),
		},
	}
}

// alibabaApp assembles one grouped job's AppSpec: tasks sorted by
// (start, name), submission time the earliest task start.
func alibabaApp(job string, tasks []taskRow, opts ImportOptions) AppSpec {
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].start != tasks[j].start {
			return tasks[i].start < tasks[j].start
		}
		return tasks[i].name < tasks[j].name
	})
	spec := AppSpec{ID: job, SubmitTime: tasks[0].start, Model: opts.Model}
	for _, t := range tasks {
		spec.Jobs = append(spec.Jobs, t.job)
	}
	return spec
}

func newAlibabaTrace(opts ImportOptions) Trace {
	tr := Trace{Version: FormatVersion, Name: opts.Name}
	if tr.Name == "" {
		tr.Name = string(FormatAlibaba)
	}
	return tr
}

// finishAlibaba applies the shared tail of both accumulation paths.
func finishAlibaba(tr Trace, opts ImportOptions) (Trace, error) {
	if len(tr.Apps) == 0 {
		return Trace{}, fmt.Errorf("trace: alibaba: no importable rows")
	}
	stampPlacement(&tr, opts.Placement)
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// importAlibabaSorted is the SortedInput fast path: because every importable
// row's start time is non-decreasing, a job's first row fixes its submission
// time, so an online top-K selection over jobs (mirroring the Philly
// adapter's topKApps, but carrying each kept job's accumulated tasks) bounds
// memory to the current top MaxApps jobs' tasks instead of every job's.
//
// Ties need care: a new job whose submission time equals the current K-th
// smallest may displace it by ID order (matching the unsorted path's
// (submit, ID) truncation exactly), and a job dropped or evicted at a tied
// submission time could otherwise be mistaken for a brand-new job when a
// later task row of it arrives. Such jobs are remembered in a tombstone set;
// jobs dropped at strictly later submission times can never be re-admitted
// (the K-th smallest submission only decreases) and need no tombstone, so
// the set stays empty except under tie-heavy inputs.
func importAlibabaSorted(sc *rowScanner, cols alibabaCols, scale float64, opts ImportOptions) (Trace, error) {
	k := opts.MaxApps
	kept := make(map[string]*sortedJobAcc)
	var worst sortedJobHeap // max-heap by (submit, ID): root is the eviction candidate
	tombstones := make(map[string]struct{})
	prev := math.Inf(-1)
	line := 1
	for {
		row, err := sc.next(func() int { return len(kept) })
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return Trace{}, fmt.Errorf("trace: alibaba: line %d: %w", line, err)
		}
		sr, ok := scanAlibabaRow(row, cols, scale, opts)
		if !ok {
			continue
		}
		if sr.start < prev {
			return Trace{}, fmt.Errorf("trace: alibaba: line %d: input declared sorted but start time %v precedes %v (import without SortedInput)",
				line, sr.start, prev)
		}
		prev = sr.start
		// Membership checks run on the raw (reused-buffer) job view; clones
		// and ID hashes are paid only for rows that are actually retained,
		// so dropped rows — almost all of them on a capped import — cost no
		// allocation.
		if acc, ok := kept[sr.job]; ok {
			// Later rows of a kept job cannot lower its submission time on
			// sorted input; just accumulate the task.
			_, task := sr.build()
			acc.tasks = append(acc.tasks, task)
			continue
		}
		if _, dead := tombstones[sr.job]; dead {
			continue
		}
		if k <= 0 || len(kept) < k {
			job, task := sr.build()
			acc := &sortedJobAcc{id: job, submit: sr.start, tasks: []taskRow{task}}
			kept[job] = acc
			heap.Push(&worst, acc)
			continue
		}
		max := worst[0]
		if sr.start == max.submit && sr.job < max.id {
			// The new job outranks the current K-th by ID at a tied
			// submission time; displace it, exactly as the unsorted path's
			// sort-and-truncate would.
			heap.Pop(&worst)
			delete(kept, max.id)
			tombstones[max.id] = struct{}{}
			job, task := sr.build()
			acc := &sortedJobAcc{id: job, submit: sr.start, tasks: []taskRow{task}}
			kept[job] = acc
			heap.Push(&worst, acc)
			continue
		}
		if sr.start == max.submit {
			// Dropped at a tied submission time: a later row of this job
			// would look brand-new and could wrongly re-enter by ID order.
			tombstones[strings.Clone(sr.job)] = struct{}{}
		}
	}

	tr := newAlibabaTrace(opts)
	for _, acc := range worst {
		tr.Apps = append(tr.Apps, alibabaApp(acc.id, acc.tasks, opts))
	}
	normalizeImported(&tr, opts.MaxApps)
	sc.finish(len(tr.Apps))
	return finishAlibaba(tr, opts)
}

// sortedJobAcc is one kept job of the sorted fast path: its fixed submission
// time and accumulated task rows.
type sortedJobAcc struct {
	id     string
	submit float64
	tasks  []taskRow
}

// sortedJobHeap is a max-heap of kept jobs under (submit, ID) order, so the
// root is the next job an incoming tie would displace.
type sortedJobHeap []*sortedJobAcc

func (h sortedJobHeap) Len() int { return len(h) }
func (h sortedJobHeap) Less(i, j int) bool {
	if h[i].submit != h[j].submit {
		return h[j].submit < h[i].submit
	}
	return h[j].id < h[i].id
}
func (h sortedJobHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sortedJobHeap) Push(x interface{}) { *h = append(*h, x.(*sortedJobAcc)) }
func (h *sortedJobHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	x := old[n]
	*h = old[:n]
	return x
}
