package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ImportAlibaba normalises an Alibaba-style CSV cluster log into a Trace.
// The shape follows the Alibaba GPU cluster traces: one row per task, keyed
// by job name, with an instance count, a fractional GPU request (plan_gpu,
// in percent of one GPU), Unix start/end times and a status:
//
//	job_name,task_name,inst_num,status,start_time,end_time,plan_gpu
//	j1,tensorflow,2,Terminated,1000,4600,100
//
// Rows sharing a job_name group into one app with a job per task row; the
// app's submission time is its earliest task start. A task's gang size is
// inst_num × ceil(plan_gpu / 100) and its serial work is gang × duration.
// Times are Unix seconds unless ImportOptions.TimeScale overrides the 1/60
// scale. Non-completed rows drop unless KeepNonCompleted is set ("Terminated"
// is Alibaba's completed state), and rows with non-positive durations are
// always dropped. Apps are sorted by submission time and rebased to 0.
//
// The pass streams rows off a reused record buffer, but — unlike the
// row-per-job Philly adapter — it must group tasks by job before it knows
// any app's submission time (the minimum over its task rows, which later
// rows can lower), so the MaxApps cap applies after grouping and memory is
// proportional to the kept task rows, not to the raw input: filtered and
// unparsable rows are never materialised. Progress is reported through
// opts.Progress, with Kept counting the distinct jobs seen so far.
func ImportAlibaba(r io.Reader, opts ImportOptions) (Trace, error) {
	if err := opts.Validate(); err != nil {
		return Trace{}, err
	}
	scale := opts.TimeScale
	if scale == 0 {
		scale = 1.0 / 60 // Alibaba-style rows carry Unix seconds
	}
	sc := newRowScanner(r, FormatAlibaba, opts)

	header, err := sc.header()
	if err != nil {
		return Trace{}, fmt.Errorf("trace: alibaba: reading header: %w", err)
	}
	jobCol := columnIndex(header, "job_name", "job_id", "jobid", "job")
	taskCol := columnIndex(header, "task_name", "task") // optional
	instCol := columnIndex(header, "inst_num", "instances", "inst")
	statusCol := columnIndex(header, "status", "state") // optional
	startCol := columnIndex(header, "start_time", "start")
	endCol := columnIndex(header, "end_time", "end")
	gpuCol := columnIndex(header, "plan_gpu", "gpu", "gpus")
	if jobCol < 0 || startCol < 0 || endCol < 0 || gpuCol < 0 {
		return Trace{}, fmt.Errorf("trace: alibaba: header %v missing job_name/start_time/end_time/plan_gpu", header)
	}
	maxCol := jobCol
	for _, c := range []int{startCol, endCol, gpuCol} {
		if c > maxCol {
			maxCol = c
		}
	}

	type taskRow struct {
		name  string
		start float64
		job   JobSpec
	}
	byJob := make(map[string][]taskRow)
	var order []string
	line := 1
	for {
		row, err := sc.next(func() int { return len(byJob) })
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return Trace{}, fmt.Errorf("trace: alibaba: line %d: %w", line, err)
		}
		if len(row) <= maxCol {
			continue
		}
		if statusCol >= 0 && statusCol < len(row) && !completedStatus(row[statusCol]) && !opts.KeepNonCompleted {
			continue
		}
		job := strings.TrimSpace(row[jobCol])
		start, errS := strconv.ParseFloat(strings.TrimSpace(row[startCol]), 64)
		end, errE := strconv.ParseFloat(strings.TrimSpace(row[endCol]), 64)
		planGPU, errG := strconv.ParseFloat(strings.TrimSpace(row[gpuCol]), 64)
		if job == "" || !utf8.ValidString(job) || errS != nil || errE != nil || errG != nil {
			continue
		}
		// Bound the numerics before converting: NaN/Inf and absurd GPU or
		// instance counts would overflow int conversion or poison work
		// accounting.
		if !isFinite(start) || !isFinite(end) || !(planGPU >= 0 && planGPU <= 1e8) {
			continue
		}
		inst := 1.0
		if instCol >= 0 && instCol < len(row) {
			if v, err := strconv.ParseFloat(strings.TrimSpace(row[instCol]), 64); err == nil && v >= 1 && v <= 1e6 {
				inst = v
			}
		}
		task := ""
		if taskCol >= 0 && taskCol < len(row) {
			task = strings.TrimSpace(row[taskCol])
		}
		duration := (end - start) * scale
		gpusPerInst := int((planGPU + 99) / 100) // plan_gpu is percent of one GPU
		if gpusPerInst < 1 {
			gpusPerInst = 1
		}
		gang := gpusPerInst * int(inst)
		work := duration * float64(gang)
		if work <= 0 || start < 0 || !isFinite(work) || !isFinite(start*scale) {
			continue
		}
		// The record buffer is reused by the next read: copy the cells
		// retained beyond this iteration.
		job, task = strings.Clone(job), strings.Clone(task)
		if _, seen := byJob[job]; !seen {
			order = append(order, job)
		}
		byJob[job] = append(byJob[job], taskRow{
			name:  task,
			start: start * scale,
			job: JobSpec{
				TotalWork: work,
				GangSize:  gang,
				Quality:   deriveQuality(job + "/" + task),
				Seed:      deriveSeed(job + "/" + task),
			},
		})
	}

	tr := Trace{Version: FormatVersion, Name: opts.Name}
	if tr.Name == "" {
		tr.Name = string(FormatAlibaba)
	}
	for _, job := range order {
		tasks := byJob[job]
		sort.SliceStable(tasks, func(i, j int) bool {
			if tasks[i].start != tasks[j].start {
				return tasks[i].start < tasks[j].start
			}
			return tasks[i].name < tasks[j].name
		})
		spec := AppSpec{ID: job, SubmitTime: tasks[0].start, Model: opts.Model}
		for _, t := range tasks {
			spec.Jobs = append(spec.Jobs, t.job)
		}
		tr.Apps = append(tr.Apps, spec)
	}
	normalizeImported(&tr, opts.MaxApps)
	sc.finish(len(tr.Apps))
	if len(tr.Apps) == 0 {
		return Trace{}, fmt.Errorf("trace: alibaba: no importable rows")
	}
	stampPlacement(&tr, opts.Placement)
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}
