package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceDecode asserts the native decoder's contract on arbitrary bytes:
// it never panics, and any input it accepts survives an encode→decode
// round-trip unchanged (the on-disk format is self-describing and lossless).
func FuzzTraceDecode(f *testing.F) {
	var seedBuf bytes.Buffer
	cfg := func() Trace {
		apps := []AppSpec{
			{ID: "a", SubmitTime: 0, Model: "VGG16", Jobs: []JobSpec{{TotalWork: 40, GangSize: 4, Quality: 0.5, Seed: 9}}},
			{ID: "b", SubmitTime: 12.5, Jobs: []JobSpec{{TotalWork: 1, GangSize: 1}, {TotalWork: 2.25, GangSize: 2, MaxParallelism: 8}}},
		}
		return Trace{Version: FormatVersion, Name: "seed", Apps: apps}
	}()
	if err := cfg.Write(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte(`{"version":1,"apps":[]}`))
	f.Add([]byte(`{"version":2,"apps":[{"id":"x"}]}`))
	f.Add([]byte(`{"version":1,"apps":[{"id":"a","jobs":[{"total_work":1,"gang_size":1}]},{"id":"a","jobs":[{"total_work":1,"gang_size":1}]}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"apps":[{"id":"a","jobs":[{"total_work":-1,"gang_size":0}]}]}`))
	// v2 placement-block terrain: valid blocks, blocks smuggled into v1,
	// hostile constraint values and unknown profiles.
	f.Add([]byte(`{"version":2,"apps":[{"id":"a","placement":{"profile":"VGG16","min_gpus_per_machine":2,"max_machines":1},"jobs":[{"total_work":1,"gang_size":4}]}]}`))
	f.Add([]byte(`{"version":2,"apps":[{"id":"a","placement":{},"jobs":[{"total_work":1,"gang_size":1,"max_machines":3}]}]}`))
	f.Add([]byte(`{"version":1,"apps":[{"id":"a","placement":{"max_machines":1},"jobs":[{"total_work":1,"gang_size":1}]}]}`))
	f.Add([]byte(`{"version":1,"apps":[{"id":"a","jobs":[{"total_work":1,"gang_size":1,"max_machines":1}]}]}`))
	f.Add([]byte(`{"version":2,"apps":[{"id":"a","placement":{"profile":"NoSuchNet"},"jobs":[{"total_work":1,"gang_size":1}]}]}`))
	f.Add([]byte(`{"version":2,"apps":[{"id":"a","placement":{"min_gpus_per_machine":-4,"max_machines":-9000000000000000000},"jobs":[{"total_work":1,"gang_size":1}]}]}`))
	f.Add([]byte(`{"version":2,"apps":[{"id":"a","placement":{"max_machines":9000000000000000000},"jobs":[{"total_work":1,"gang_size":1,"min_gpus_per_machine":9000000000000000000}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must be structurally valid...
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read accepted a trace Validate rejects: %v", err)
		}
		// ...upgraded to the current format version (lossless v1 lift)...
		if tr.Version != FormatVersion {
			t.Fatalf("Read returned version %d, want upgrade to %d", tr.Version, FormatVersion)
		}
		// ...and round-trip bit-for-bit through encode→decode.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("encoding an accepted trace failed: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding an encoded trace failed: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("round trip changed the trace:\nfirst:  %+v\nsecond: %+v", tr, back)
		}
	})
}

// importContract asserts the shared CSV-adapter contract on a produced
// trace: valid, materialisable, and stable across the native encode→decode
// round-trip (import is normalisation, so replay equals re-reading the
// saved file).
func importContract(t *testing.T, tr Trace) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("import produced an invalid trace: %v", err)
	}
	if tr.Version != FormatVersion {
		t.Fatalf("import produced format version %d, want %d", tr.Version, FormatVersion)
	}
	if _, err := tr.ToApps(); err != nil {
		t.Fatalf("import produced an unmaterialisable trace: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("encoding an imported trace failed: %v", err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-decoding an imported trace failed: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("imported trace changed across encode→decode:\nfirst:  %+v\nsecond: %+v", tr, back)
	}
}

// FuzzPhillyImport asserts the CSV adapter's contract on arbitrary bytes: no
// panics, and any trace it produces meets importContract.
func FuzzPhillyImport(f *testing.F) {
	f.Add([]byte("jobid,submit_time,gpus,duration,status\nj-1,0,4,118,Pass\nj-2,10,8,30,Failed\n"))
	f.Add([]byte("jobid,submit_time,gpus,duration\nj-1,5,2,60\n"))
	f.Add([]byte("gpus,duration,jobid,submit_time\n1,1,x,0\n"))
	f.Add([]byte("jobid,submit_time,gpus,duration\nj-1,1e308,1e308,1e308\n"))
	f.Add([]byte("jobid,submit_time,gpus,duration\nj-1,NaN,+Inf,-Inf\n"))
	f.Add([]byte(`"unterminated`))
	f.Add([]byte("no header to speak of"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ImportPhilly(bytes.NewReader(data), ImportOptions{})
		if err != nil {
			return
		}
		importContract(t, tr)
		// The streaming top-K path must keep the same leading apps as the
		// uncapped pass, and placement stamping must stay valid, on every
		// input the importer accepts.
		capped, err := ImportPhilly(bytes.NewReader(data), ImportOptions{
			MaxApps:   2,
			Placement: &PlacementSpec{Profile: "VGG16", MinGPUsPerMachine: 1, MaxMachines: 2},
		})
		if err != nil {
			t.Fatalf("capped+stamped re-import of accepted input failed: %v", err)
		}
		importContract(t, capped)
		want := tr.Apps
		if len(want) > 2 {
			want = want[:2]
		}
		if len(capped.Apps) != len(want) {
			t.Fatalf("top-K kept %d apps, full import's head has %d", len(capped.Apps), len(want))
		}
		for i := range want {
			if capped.Apps[i].ID != want[i].ID || capped.Apps[i].SubmitTime != want[i].SubmitTime {
				t.Fatalf("top-K app %d = %s@%v, full sort has %s@%v", i,
					capped.Apps[i].ID, capped.Apps[i].SubmitTime, want[i].ID, want[i].SubmitTime)
			}
			if capped.Apps[i].Placement == nil {
				t.Fatalf("app %d lost its stamped placement block", i)
			}
		}
	})
}

// FuzzAlibabaImport holds the other CSV adapter to the same contract,
// including a time scale large enough to force overflow paths.
func FuzzAlibabaImport(f *testing.F) {
	f.Add([]byte("job_name,task_name,inst_num,status,start_time,end_time,plan_gpu\nj1,worker,2,Terminated,1200,4800,100\n"))
	f.Add([]byte("job_name,start_time,end_time,plan_gpu\nj1,0,600,50\nj1,30,900,200\n"))
	f.Add([]byte("job_name,start_time,end_time,plan_gpu\nj1,1e304,1.0000000000000001e304,100\n"))
	f.Add([]byte("job_name,start_time,end_time,plan_gpu\nj1,NaN,Inf,1e300\n"))
	f.Add([]byte(`"unterminated`))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, scale := range []float64{0, 1e5} {
			tr, err := ImportAlibaba(bytes.NewReader(data), ImportOptions{TimeScale: scale})
			if err == nil {
				importContract(t, tr)
			}
			// The SortedInput fast path may reject the input (out-of-order
			// rows), but whenever it accepts, it must agree byte-for-byte
			// with the grouping path — on any input the fuzzer finds.
			for _, maxApps := range []int{0, 1} {
				sorted, sErr := ImportAlibaba(bytes.NewReader(data), ImportOptions{TimeScale: scale, MaxApps: maxApps, SortedInput: true})
				if sErr != nil {
					continue
				}
				capped, cErr := ImportAlibaba(bytes.NewReader(data), ImportOptions{TimeScale: scale, MaxApps: maxApps})
				if cErr != nil {
					t.Fatalf("sorted path accepted input the grouping path rejects (cap %d): %v", maxApps, cErr)
				}
				if !reflect.DeepEqual(sorted, capped) {
					t.Fatalf("sorted and grouping paths diverge (cap %d):\nsorted:   %+v\ngrouping: %+v", maxApps, sorted, capped)
				}
			}
		}
	})
}
