package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ImportPhilly normalises a Philly-style CSV cluster log into a Trace. The
// shape follows the Microsoft Philly trace the paper draws its workload
// characteristics from: one row per job, identified by a job ID, with the
// submission time, the number of GPUs the job gang-schedules, its run
// duration, and a completion status. Header columns are matched by name
// (case-insensitively, with the common aliases), so column order is free:
//
//	jobid,submit_time,gpus,duration,status
//	j-1001,0,4,118,Pass
//
// Times are minutes unless ImportOptions.TimeScale says otherwise. Each row
// becomes a single-job app whose serial work is duration × GPUs; rows that
// did not complete are dropped unless KeepNonCompleted is set, and rows with
// less than one GPU (CPU-only entries) or a non-positive duration are always
// dropped. Apps are sorted by
// submission time and shifted so the first app arrives at 0.
func ImportPhilly(r io.Reader, opts ImportOptions) (Trace, error) {
	scale := opts.TimeScale
	if scale == 0 {
		scale = 1 // Philly-style rows carry minutes already
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true

	header, err := cr.Read()
	if err != nil {
		return Trace{}, fmt.Errorf("trace: philly: reading header: %w", err)
	}
	idCol := columnIndex(header, "jobid", "job_id", "job", "id")
	submitCol := columnIndex(header, "submit_time", "submitted_time", "submit")
	gpuCol := columnIndex(header, "gpus", "num_gpus", "gpu_num", "gpu")
	durCol := columnIndex(header, "duration", "run_time", "runtime")
	statusCol := columnIndex(header, "status", "state") // optional
	if idCol < 0 || submitCol < 0 || gpuCol < 0 || durCol < 0 {
		return Trace{}, fmt.Errorf("trace: philly: header %v missing jobid/submit_time/gpus/duration", header)
	}

	tr := Trace{Version: FormatVersion, Name: opts.Name}
	if tr.Name == "" {
		tr.Name = string(FormatPhilly)
	}
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return Trace{}, fmt.Errorf("trace: philly: line %d: %w", line, err)
		}
		max := idCol
		for _, c := range []int{submitCol, gpuCol, durCol} {
			if c > max {
				max = c
			}
		}
		if len(row) <= max {
			continue // short row: treat like a malformed log line and skip
		}
		if statusCol >= 0 && statusCol < len(row) && !completedStatus(row[statusCol]) && !opts.KeepNonCompleted {
			continue
		}
		id := strings.TrimSpace(row[idCol])
		submit, errS := strconv.ParseFloat(strings.TrimSpace(row[submitCol]), 64)
		gpus, errG := strconv.ParseFloat(strings.TrimSpace(row[gpuCol]), 64)
		duration, errD := strconv.ParseFloat(strings.TrimSpace(row[durCol]), 64)
		if id == "" || !utf8.ValidString(id) || errS != nil || errG != nil || errD != nil {
			continue // unparsable row: skip rather than abort the import
		}
		// Bound the numerics before converting: NaN/Inf and absurd GPU
		// counts would overflow int conversion or poison work accounting.
		if !isFinite(submit) || !isFinite(duration) || !(gpus >= 0 && gpus <= 1e6) {
			continue
		}
		gang := int(gpus)
		if gang < 1 {
			continue // CPU-only or fractional-GPU row: nothing to schedule
		}
		work := duration * scale * float64(gang)
		if work <= 0 || submit < 0 || !isFinite(work) || !isFinite(submit*scale) {
			continue
		}
		tr.Apps = append(tr.Apps, AppSpec{
			ID:         id,
			SubmitTime: submit * scale,
			Model:      opts.Model,
			Jobs: []JobSpec{{
				TotalWork: work,
				GangSize:  gang,
				Quality:   deriveQuality(id),
				Seed:      deriveSeed(id),
			}},
		})
	}
	normalizeImported(&tr, opts.MaxApps)
	if len(tr.Apps) == 0 {
		return Trace{}, fmt.Errorf("trace: philly: no importable rows")
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// normalizeImported sorts apps by submission time (ID-tie-broken), rebases
// the earliest arrival to 0 and applies the MaxApps cap. Shared by the CSV
// adapters so every imported trace replays from t = 0 deterministically.
func normalizeImported(tr *Trace, maxApps int) {
	sort.SliceStable(tr.Apps, func(i, j int) bool {
		if tr.Apps[i].SubmitTime != tr.Apps[j].SubmitTime {
			return tr.Apps[i].SubmitTime < tr.Apps[j].SubmitTime
		}
		return tr.Apps[i].ID < tr.Apps[j].ID
	})
	if maxApps > 0 && len(tr.Apps) > maxApps {
		tr.Apps = tr.Apps[:maxApps]
	}
	if len(tr.Apps) == 0 {
		return
	}
	base := tr.Apps[0].SubmitTime
	for i := range tr.Apps {
		tr.Apps[i].SubmitTime -= base
	}
}
