package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ImportPhilly normalises a Philly-style CSV cluster log into a Trace. The
// shape follows the Microsoft Philly trace the paper draws its workload
// characteristics from: one row per job, identified by a job ID, with the
// submission time, the number of GPUs the job gang-schedules, its run
// duration, and a completion status. Header columns are matched by name
// (case-insensitively, with the common aliases), so column order is free:
//
//	jobid,submit_time,gpus,duration,status
//	j-1001,0,4,118,Pass
//
// Times are minutes unless ImportOptions.TimeScale says otherwise. Each row
// becomes a single-job app whose serial work is duration × GPUs; rows that
// did not complete are dropped unless KeepNonCompleted is set, and rows with
// less than one GPU (CPU-only entries) or a non-positive duration are always
// dropped. Apps are sorted by submission time and shifted so the first app
// arrives at 0.
//
// The pass streams: rows are parsed one at a time off a reused record buffer
// and fed to an online top-K-by-submit-time selection, so importing a
// multi-GB log with MaxApps set costs O(MaxApps) memory — the rows beyond
// the cap are never materialised. Without a cap, memory is the size of the
// resulting trace (every kept app), still independent of the raw input size
// when filtering drops rows. Progress is reported through opts.Progress.
func ImportPhilly(r io.Reader, opts ImportOptions) (Trace, error) {
	if err := opts.Validate(); err != nil {
		return Trace{}, err
	}
	scale := opts.TimeScale
	if scale == 0 {
		scale = 1 // Philly-style rows carry minutes already
	}
	sc := newRowScanner(r, FormatPhilly, opts)

	header, err := sc.header()
	if err != nil {
		return Trace{}, fmt.Errorf("trace: philly: reading header: %w", err)
	}
	idCol := columnIndex(header, "jobid", "job_id", "job", "id")
	submitCol := columnIndex(header, "submit_time", "submitted_time", "submit")
	gpuCol := columnIndex(header, "gpus", "num_gpus", "gpu_num", "gpu")
	durCol := columnIndex(header, "duration", "run_time", "runtime")
	statusCol := columnIndex(header, "status", "state") // optional
	if idCol < 0 || submitCol < 0 || gpuCol < 0 || durCol < 0 {
		return Trace{}, fmt.Errorf("trace: philly: header %v missing jobid/submit_time/gpus/duration", header)
	}
	maxCol := idCol
	for _, c := range []int{submitCol, gpuCol, durCol} {
		if c > maxCol {
			maxCol = c
		}
	}

	tr := Trace{Version: FormatVersion, Name: opts.Name}
	if tr.Name == "" {
		tr.Name = string(FormatPhilly)
	}
	keep := newTopKApps(opts.MaxApps)
	line := 1
	for {
		row, err := sc.next(keep.len)
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return Trace{}, fmt.Errorf("trace: philly: line %d: %w", line, err)
		}
		if len(row) <= maxCol {
			continue // short row: treat like a malformed log line and skip
		}
		if statusCol >= 0 && statusCol < len(row) && !completedStatus(row[statusCol]) && !opts.KeepNonCompleted {
			continue
		}
		id := strings.TrimSpace(row[idCol])
		submit, errS := strconv.ParseFloat(strings.TrimSpace(row[submitCol]), 64)
		gpus, errG := strconv.ParseFloat(strings.TrimSpace(row[gpuCol]), 64)
		duration, errD := strconv.ParseFloat(strings.TrimSpace(row[durCol]), 64)
		if id == "" || !utf8.ValidString(id) || errS != nil || errG != nil || errD != nil {
			continue // unparsable row: skip rather than abort the import
		}
		// Bound the numerics before converting: NaN/Inf and absurd GPU
		// counts would overflow int conversion or poison work accounting.
		if !isFinite(submit) || !isFinite(duration) || !(gpus >= 0 && gpus <= 1e6) {
			continue
		}
		gang := int(gpus)
		if gang < 1 {
			continue // CPU-only or fractional-GPU row: nothing to schedule
		}
		work := duration * scale * float64(gang)
		if work <= 0 || submit < 0 || !isFinite(work) || !isFinite(submit*scale) {
			continue
		}
		// The record buffer is reused by the next read: copy the one cell
		// retained beyond this iteration.
		id = strings.Clone(id)
		keep.add(AppSpec{
			ID:         id,
			SubmitTime: submit * scale,
			Model:      opts.Model,
			Jobs: []JobSpec{{
				TotalWork: work,
				GangSize:  gang,
				Quality:   deriveQuality(id),
				Seed:      deriveSeed(id),
			}},
		})
	}
	tr.Apps = keep.finish()
	rebaseApps(tr.Apps)
	sc.finish(len(tr.Apps))
	if len(tr.Apps) == 0 {
		return Trace{}, fmt.Errorf("trace: philly: no importable rows")
	}
	stampPlacement(&tr, opts.Placement)
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}
