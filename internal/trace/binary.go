package trace

// Binary trace container (format v3).
//
// v3 is not a third JSON schema: it is a compact binary container around the
// v2 data model, built for multi-GB replays where JSON decode time and
// allocation churn dominate. The layout is sectioned and length-framed so a
// reader can stream apps without materialising the trace (and an mmap-backed
// reader can skip straight to a section):
//
//	magic "THMB" | uvarint container version (3)
//	section: 0x01 | uvarint len | string table
//	section: 0x02 | uvarint len | apps
//	section: 0x00 | uvarint 0     (end marker)
//
// The string table interns every name in the trace — app IDs, model/profile
// names, fabric-domain and GPU-flavor affinities — as uvarint-length-prefixed
// UTF-8, so app records reference names by index and repeated names (the
// common case: a handful of models across thousands of apps) are stored once.
// Index 0 is always the empty string.
//
// The apps section holds the trace-name index, an app count, then each app:
//
//	uvarint id index
//	zigzag-varint delta of Float64bits(SubmitTime) vs the previous app
//	uvarint model index
//	flags byte (bit 0: placement block present)
//	placement block, when present: uvarint profile/min-gpus/max-machines,
//	  uvarint domain index, uvarint flavor index
//	uvarint job count, then per job: fixed64 total work, uvarint gang size,
//	  zigzag max parallelism, uvarint min-gpus/max-machines, zigzag total
//	  iterations, fixed64 quality, zigzag seed
//
// Submit-time deltas exploit that IEEE 754 bit patterns of non-negative
// floats are monotonic: a trace sorted by submit time produces small bit
// deltas that varint-encode in a few bytes, and the reconstruction
// (wrapping uint64 addition) is lossless for every float64, sorted or not.
//
// Decoding defends against hostile input: every read is bounded by its
// section frame, counts are checked against the bytes that could possibly
// back them before any allocation, string-table indices are range-checked,
// varints reject 64-bit overflow, and unknown flag bits or trailing bytes are
// errors. All corruption surfaces as *CorruptTraceError — never a panic.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"unicode/utf8"
)

// binaryMagic identifies a v3 binary trace container.
const binaryMagic = "THMB"

// BinaryVersion is the wire version of the binary trace container. It
// extends the SupportedVersions history: v3 is the binary encoding of the v2
// data model, so binary traces decode to Version == FormatVersion in memory
// and re-encode losslessly as v2 JSON.
const BinaryVersion = 3

// Section identifiers of the binary container.
const (
	secEnd     = 0x00
	secStrings = 0x01
	secApps    = 0x02
)

// appFlagPlacement marks an app record carrying a placement block. All other
// flag bits are reserved and must be zero.
const appFlagPlacement = 0x01

// minJobEncodedBytes is the smallest possible encoded job (two fixed64
// floats plus five single-byte varints plus a single-byte seed); job counts
// claiming more jobs than the section has bytes for are rejected before any
// allocation.
const minJobEncodedBytes = 8 + 1 + 1 + 1 + 1 + 1 + 8 + 1

// WriteBinary encodes the trace in the v3 binary container format. The trace
// is validated first, so only traces Read/ReadBinary would accept are ever
// encoded; a v1 trace encodes losslessly (it decodes back at the current
// format version, exactly like the JSON Upgrade on read).
func (t Trace) WriteBinary(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	var enc binaryEncoder
	enc.intern("") // index 0 is the empty string
	enc.intern(t.Name)
	for i := range t.Apps {
		a := &t.Apps[i]
		enc.intern(a.ID)
		enc.intern(a.Model)
		if p := a.Placement; p != nil {
			enc.intern(p.Profile)
			enc.intern(p.Domain)
			enc.intern(p.Flavor)
		}
	}

	var apps bytes.Buffer
	enc.putUvarint(&apps, uint64(enc.index[t.Name]))
	enc.putUvarint(&apps, uint64(len(t.Apps)))
	prevBits := uint64(0)
	for i := range t.Apps {
		a := &t.Apps[i]
		enc.putUvarint(&apps, uint64(enc.index[a.ID]))
		bits := math.Float64bits(a.SubmitTime)
		enc.putVarint(&apps, int64(bits-prevBits))
		prevBits = bits
		enc.putUvarint(&apps, uint64(enc.index[a.Model]))
		if p := a.Placement; p != nil {
			apps.WriteByte(appFlagPlacement)
			enc.putUvarint(&apps, uint64(enc.index[p.Profile]))
			enc.putUvarint(&apps, uint64(p.MinGPUsPerMachine))
			enc.putUvarint(&apps, uint64(p.MaxMachines))
			enc.putUvarint(&apps, uint64(enc.index[p.Domain]))
			enc.putUvarint(&apps, uint64(enc.index[p.Flavor]))
		} else {
			apps.WriteByte(0)
		}
		enc.putUvarint(&apps, uint64(len(a.Jobs)))
		for _, j := range a.Jobs {
			enc.putFixed64(&apps, math.Float64bits(j.TotalWork))
			enc.putUvarint(&apps, uint64(j.GangSize))
			enc.putVarint(&apps, int64(j.MaxParallelism))
			enc.putUvarint(&apps, uint64(j.MinGPUsPerMachine))
			enc.putUvarint(&apps, uint64(j.MaxMachines))
			enc.putVarint(&apps, int64(j.TotalIterations))
			enc.putFixed64(&apps, math.Float64bits(j.Quality))
			enc.putVarint(&apps, j.Seed)
		}
	}

	var strtab bytes.Buffer
	enc.putUvarint(&strtab, uint64(len(enc.table)))
	for _, s := range enc.table {
		enc.putUvarint(&strtab, uint64(len(s)))
		strtab.WriteString(s)
	}

	var out bytes.Buffer
	out.WriteString(binaryMagic)
	enc.putUvarint(&out, BinaryVersion)
	enc.putSection(&out, secStrings, strtab.Bytes())
	enc.putSection(&out, secApps, apps.Bytes())
	out.WriteByte(secEnd)
	enc.putUvarint(&out, 0)
	_, err := w.Write(out.Bytes())
	if err != nil {
		return fmt.Errorf("trace: writing binary trace: %w", err)
	}
	return nil
}

// binaryEncoder holds the string-interning state and varint scratch of one
// WriteBinary call.
type binaryEncoder struct {
	table   []string
	index   map[string]int
	scratch [binary.MaxVarintLen64]byte
}

// intern records s in the string table (first use wins the index).
func (e *binaryEncoder) intern(s string) {
	if e.index == nil {
		e.index = make(map[string]int)
	}
	if _, ok := e.index[s]; ok {
		return
	}
	e.index[s] = len(e.table)
	e.table = append(e.table, s)
}

func (e *binaryEncoder) putUvarint(b *bytes.Buffer, v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	b.Write(e.scratch[:n])
}

func (e *binaryEncoder) putVarint(b *bytes.Buffer, v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	b.Write(e.scratch[:n])
}

func (e *binaryEncoder) putFixed64(b *bytes.Buffer, v uint64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], v)
	b.Write(e.scratch[:8])
}

func (e *binaryEncoder) putSection(b *bytes.Buffer, id byte, payload []byte) {
	b.WriteByte(id)
	e.putUvarint(b, uint64(len(payload)))
	b.Write(payload)
}

// BinaryDecoder streams apps out of a v3 binary trace without materialising
// the whole trace: the string table loads once up front, and each Next call
// decodes one app into an internal buffer that is reused across calls. In
// steady state (after the first few apps have sized the buffers) Next
// performs zero heap allocations.
//
// The *AppSpec returned by Next — including its Jobs slice and Placement
// block — is only valid until the next Next call; callers retaining an app
// must copy it (ReadBinary does).
type BinaryDecoder struct {
	br     *bufio.Reader
	table  []string
	name   string
	remain int    // apps not yet decoded
	left   int64  // bytes left in the current section frame
	offset int64  // bytes consumed from the stream, for error positions
	prev   uint64 // previous app's SubmitTime bits (delta base)

	app     AppSpec
	jobs    []JobSpec
	block   PlacementSpec
	scratch [8]byte
	err     error // sticky decode error
}

// NewBinaryDecoder reads the container header, the string table and the apps
// section header from r, returning a decoder ready to stream apps. Corrupt
// input fails with *CorruptTraceError.
func NewBinaryDecoder(r io.Reader) (*BinaryDecoder, error) {
	d := &BinaryDecoder{br: bufio.NewReader(r)}
	if err := d.readHeader(); err != nil {
		return nil, err
	}
	return d, nil
}

// Name returns the trace name recorded in the container.
func (d *BinaryDecoder) Name() string { return d.name }

// Remaining returns how many apps Next has not yet yielded.
func (d *BinaryDecoder) Remaining() int { return d.remain }

// Next returns the next app in the trace, or io.EOF after the last one (at
// which point the container's end marker has been verified). The returned
// spec is reused by the following Next call.
func (d *BinaryDecoder) Next() (*AppSpec, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.remain == 0 {
		if d.left != 0 {
			return nil, d.corrupt("%d trailing bytes in apps section", d.left)
		}
		if err := d.readEndMarker(); err != nil {
			return nil, err
		}
		d.err = io.EOF
		return nil, io.EOF
	}
	d.remain--

	idIdx, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	id, err := d.str(idIdx)
	if err != nil {
		return nil, err
	}
	delta, err := d.varint()
	if err != nil {
		return nil, err
	}
	d.prev += uint64(delta)
	modelIdx, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	model, err := d.str(modelIdx)
	if err != nil {
		return nil, err
	}
	flags, err := d.readByte()
	if err != nil {
		return nil, err
	}
	if flags&^appFlagPlacement != 0 {
		return nil, d.corrupt("unknown app flag bits 0x%02x", flags&^appFlagPlacement)
	}
	d.app = AppSpec{ID: id, SubmitTime: math.Float64frombits(d.prev), Model: model}
	if flags&appFlagPlacement != 0 {
		if err := d.readPlacement(); err != nil {
			return nil, err
		}
		d.app.Placement = &d.block
	}
	jobCount, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if jobCount > uint64(d.left)/minJobEncodedBytes {
		return nil, d.corrupt("job count %d exceeds the %d bytes left in the apps section", jobCount, d.left)
	}
	d.jobs = d.jobs[:0]
	for i := uint64(0); i < jobCount; i++ {
		js, err := d.readJob()
		if err != nil {
			return nil, err
		}
		d.jobs = append(d.jobs, js)
	}
	d.app.Jobs = d.jobs
	return &d.app, nil
}

// readHeader consumes the magic, container version, string table and the
// apps-section header.
func (d *BinaryDecoder) readHeader() error {
	if err := d.readFullRaw(d.scratch[:len(binaryMagic)]); err != nil {
		return err
	}
	if string(d.scratch[:len(binaryMagic)]) != binaryMagic {
		return d.corrupt("bad magic %q (want %q)", d.scratch[:len(binaryMagic)], binaryMagic)
	}
	// The container version frames everything after it; an unknown version is
	// a negotiation failure, not corruption.
	d.left = binary.MaxVarintLen64 // bound the header varint read
	version, err := d.uvarint()
	if err != nil {
		return err
	}
	if version != BinaryVersion {
		d.err = &UnsupportedVersionError{Version: int(version)}
		return d.err
	}
	if err := d.readStringTable(); err != nil {
		return err
	}
	// Apps section header: id, frame length, trace-name index, app count.
	if err := d.readSectionHeader(secApps, "apps"); err != nil {
		return err
	}
	nameIdx, err := d.uvarint()
	if err != nil {
		return err
	}
	if d.name, err = d.str(nameIdx); err != nil {
		return err
	}
	count, err := d.uvarint()
	if err != nil {
		return err
	}
	// The smallest app record (id, delta, model, flags, job count) is 5
	// bytes; a count the frame cannot back is corrupt.
	if count > uint64(d.left)/5 {
		return d.corrupt("app count %d exceeds the %d-byte apps section", count, d.left)
	}
	d.remain = int(count)
	return nil
}

// readSectionHeader consumes one section header and checks its identifier,
// setting the frame bound for subsequent reads.
func (d *BinaryDecoder) readSectionHeader(want byte, name string) error {
	id, err := d.readByteRaw()
	if err != nil {
		return err
	}
	if id != want {
		return d.corrupt("expected %s section (0x%02x), found 0x%02x", name, want, id)
	}
	d.left = binary.MaxVarintLen64
	length, err := d.uvarint()
	if err != nil {
		return err
	}
	if length > math.MaxInt64 {
		return d.corrupt("%s section length %d overflows", name, length)
	}
	d.left = int64(length)
	return nil
}

// readStringTable loads the interned-name table.
func (d *BinaryDecoder) readStringTable() error {
	if err := d.readSectionHeader(secStrings, "string table"); err != nil {
		return err
	}
	count, err := d.uvarint()
	if err != nil {
		return err
	}
	// Every entry takes at least its one-byte length prefix.
	if count > uint64(d.left) {
		return d.corrupt("string table claims %d entries in %d bytes", count, d.left)
	}
	// The declared section length is attacker-controlled and unverifiable in
	// a streaming read, so the count check above does not bound memory by
	// itself: allocations below must grow only as real input bytes arrive
	// (lazy table growth, chunked string reads), letting a lying frame die
	// of truncation instead of a giant up-front make.
	d.table = make([]string, 0, min(count, 1024))
	var chunk []byte
	for i := uint64(0); i < count; i++ {
		slen, err := d.uvarint()
		if err != nil {
			return err
		}
		if slen > uint64(d.left) {
			return d.corrupt("string %d length %d exceeds the %d bytes left in the table", i, slen, d.left)
		}
		const maxChunk = 64 << 10
		var buf bytes.Buffer
		for n := slen; n > 0; {
			c := min(n, maxChunk)
			if uint64(len(chunk)) < c {
				chunk = make([]byte, c)
			}
			if err := d.readFull(chunk[:c]); err != nil {
				return err
			}
			buf.Write(chunk[:c])
			n -= c
		}
		if !utf8.Valid(buf.Bytes()) {
			// The JSON encoding cannot represent invalid UTF-8, so accepting
			// it here would break the cross-format round-trip guarantee.
			return d.corrupt("string %d is not valid UTF-8", i)
		}
		d.table = append(d.table, buf.String())
	}
	if d.left != 0 {
		return d.corrupt("%d trailing bytes in string table", d.left)
	}
	return nil
}

// readPlacement decodes a placement block into the reused d.block.
func (d *BinaryDecoder) readPlacement() error {
	profIdx, err := d.uvarint()
	if err != nil {
		return err
	}
	profile, err := d.str(profIdx)
	if err != nil {
		return err
	}
	minGPUs, err := d.uvarintInt("placement min_gpus_per_machine")
	if err != nil {
		return err
	}
	maxMach, err := d.uvarintInt("placement max_machines")
	if err != nil {
		return err
	}
	domIdx, err := d.uvarint()
	if err != nil {
		return err
	}
	domain, err := d.str(domIdx)
	if err != nil {
		return err
	}
	flavIdx, err := d.uvarint()
	if err != nil {
		return err
	}
	flavor, err := d.str(flavIdx)
	if err != nil {
		return err
	}
	d.block = PlacementSpec{Profile: profile, MinGPUsPerMachine: minGPUs, MaxMachines: maxMach, Domain: domain, Flavor: flavor}
	return nil
}

// readJob decodes one job record.
func (d *BinaryDecoder) readJob() (JobSpec, error) {
	var js JobSpec
	work, err := d.fixed64()
	if err != nil {
		return js, err
	}
	js.TotalWork = math.Float64frombits(work)
	if js.GangSize, err = d.uvarintInt("gang_size"); err != nil {
		return js, err
	}
	if js.MaxParallelism, err = d.varintInt("max_parallelism"); err != nil {
		return js, err
	}
	if js.MinGPUsPerMachine, err = d.uvarintInt("min_gpus_per_machine"); err != nil {
		return js, err
	}
	if js.MaxMachines, err = d.uvarintInt("max_machines"); err != nil {
		return js, err
	}
	if js.TotalIterations, err = d.varintInt("total_iterations"); err != nil {
		return js, err
	}
	quality, err := d.fixed64()
	if err != nil {
		return js, err
	}
	js.Quality = math.Float64frombits(quality)
	if js.Seed, err = d.varint(); err != nil {
		return js, err
	}
	return js, nil
}

// readEndMarker consumes and checks the container's end-of-sections marker.
func (d *BinaryDecoder) readEndMarker() error {
	id, err := d.readByteRaw()
	if err != nil {
		return err
	}
	if id != secEnd {
		return d.corrupt("expected end marker, found section 0x%02x", id)
	}
	d.left = binary.MaxVarintLen64
	length, err := d.uvarint()
	if err != nil {
		return err
	}
	if length != 0 {
		return d.corrupt("end marker declares %d payload bytes", length)
	}
	return nil
}

// str resolves a string-table index, range-checked.
func (d *BinaryDecoder) str(idx uint64) (string, error) {
	if idx >= uint64(len(d.table)) {
		return "", d.corrupt("string index %d out of range (table has %d entries)", idx, len(d.table))
	}
	return d.table[idx], nil
}

// readByteRaw reads one byte outside any section frame (section identifiers
// and the header magic).
func (d *BinaryDecoder) readByteRaw() (byte, error) {
	b, err := d.br.ReadByte()
	if err != nil {
		return 0, d.ioErr(err)
	}
	d.offset++
	return b, nil
}

// readFullRaw fills p outside any section frame.
func (d *BinaryDecoder) readFullRaw(p []byte) error {
	n, err := io.ReadFull(d.br, p)
	d.offset += int64(n)
	if err != nil {
		return d.ioErr(err)
	}
	return nil
}

// readByte reads one byte inside the current section frame.
func (d *BinaryDecoder) readByte() (byte, error) {
	if d.left <= 0 {
		return 0, d.corrupt("read past the end of the section frame")
	}
	b, err := d.br.ReadByte()
	if err != nil {
		return 0, d.ioErr(err)
	}
	d.left--
	d.offset++
	return b, nil
}

// readFull fills p from inside the current section frame.
func (d *BinaryDecoder) readFull(p []byte) error {
	if int64(len(p)) > d.left {
		return d.corrupt("read of %d bytes past the end of the section frame", len(p))
	}
	n, err := io.ReadFull(d.br, p)
	d.left -= int64(n)
	d.offset += int64(n)
	if err != nil {
		return d.ioErr(err)
	}
	return nil
}

// uvarint reads an unsigned varint, rejecting 64-bit overflow.
func (d *BinaryDecoder) uvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := d.readByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, d.corrupt("varint overflows 64 bits")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, d.corrupt("varint overflows 64 bits")
}

// varint reads a zigzag-encoded signed varint.
func (d *BinaryDecoder) varint() (int64, error) {
	ux, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

// uvarintInt reads an unsigned varint that must fit an int.
func (d *BinaryDecoder) uvarintInt(field string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt {
		return 0, d.corrupt("%s value %d overflows int", field, v)
	}
	return int(v), nil
}

// varintInt reads a signed varint that must fit an int.
func (d *BinaryDecoder) varintInt(field string) (int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt || v < math.MinInt {
		return 0, d.corrupt("%s value %d overflows int", field, v)
	}
	return int(v), nil
}

// fixed64 reads a little-endian 8-byte value.
func (d *BinaryDecoder) fixed64() (uint64, error) {
	if err := d.readFull(d.scratch[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(d.scratch[:8]), nil
}

// corrupt records and returns a typed corruption error at the current
// stream position.
func (d *BinaryDecoder) corrupt(format string, args ...any) error {
	d.err = &CorruptTraceError{Offset: d.offset, Reason: fmt.Sprintf(format, args...)}
	return d.err
}

// ioErr converts a read failure into the decoder's sticky error: EOF inside
// a structure is truncation (corruption); anything else is a real I/O error
// and is surfaced as such.
func (d *BinaryDecoder) ioErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return d.corrupt("truncated input")
	}
	d.err = fmt.Errorf("trace: reading binary trace: %w", err)
	return d.err
}

// ReadBinary parses and validates a complete trace from a v3 binary stream.
// Like Read, the result carries the current format version, so Write on it
// emits valid v2 JSON — the two encodings are interchangeable representations
// of the same trace.
func ReadBinary(r io.Reader) (Trace, error) {
	d, err := NewBinaryDecoder(r)
	if err != nil {
		return Trace{}, err
	}
	t := Trace{Version: FormatVersion, Name: d.Name()}
	t.Apps = make([]AppSpec, 0, min(d.Remaining(), 1024))
	for {
		app, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Trace{}, err
		}
		spec := *app
		spec.Jobs = append([]JobSpec(nil), app.Jobs...)
		if app.Placement != nil {
			block := *app.Placement
			spec.Placement = &block
		}
		t.Apps = append(t.Apps, spec)
	}
	// The container is the whole stream here (unlike the embeddable
	// streaming decoder): bytes after the end marker mean the file is not
	// what it claims to be.
	if _, err := d.br.ReadByte(); err == nil {
		return Trace{}, &CorruptTraceError{Offset: d.offset, Reason: "trailing bytes after end marker"}
	} else if err != io.EOF {
		return Trace{}, fmt.Errorf("trace: reading binary trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

// SaveBinary writes the trace to a file in the binary container format.
// Load auto-detects the encoding, so binary and JSON trace files are
// interchangeable everywhere a path is accepted.
func SaveBinary(path string, t Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.WriteBinary(f); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}
