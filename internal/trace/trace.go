// Package trace persists and replays workload traces. A Trace is the
// serialisable description of the apps submitted to a cluster — the
// stand-in for the production trace the paper replays — so experiments can
// be re-run bit-for-bit from a file instead of regenerating workloads.
//
// Two interchangeable encodings carry the same data model: the versioned
// JSON document (Read/Write) and the compact v3 binary container
// (ReadBinary/WriteBinary — interned string table, delta-encoded varint
// timestamps, and a streaming BinaryDecoder that yields apps one at a time
// at zero allocations per app in steady state). Load, Import and
// DetectFormat auto-detect the encoding; ToApps output is byte-identical
// across both.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"themis/internal/placement"
	"themis/internal/workload"
)

// FormatVersion identifies the current on-disk trace format. Writers always
// emit it; readers accept any version in SupportedVersions.
//
// Version history:
//
//	v1 — apps with per-job work/gang/parallelism fields.
//	v2 — adds the optional per-app placement block (PlacementSpec: profile
//	     name, per-machine GPU minimum, machine-spread cap, and the fabric
//	     domain / GPU-flavor affinities) and the per-job max_machines
//	     constraint. v1 is a strict subset of v2, so v1 traces upgrade
//	     losslessly on read.
//	v3 — the binary container encoding of the v2 data model (see binary.go):
//	     sectioned layout, interned string table, delta-encoded varint
//	     timestamps. Not a JSON version: binary traces decode to Version 2 in
//	     memory and the two encodings are interchangeable (ToApps output is
//	     byte-identical across them).
const FormatVersion = 2

// formatVersionV1 is the pre-placement-block format, still replayable.
const formatVersionV1 = 1

// SupportedVersions lists the format versions this build can replay, oldest
// first. Readers negotiate through this list: v1 traces (no placement data)
// decode losslessly under v2 code, and anything else is rejected with an
// UnsupportedVersionError at decode time.
func SupportedVersions() []int { return []int{formatVersionV1, FormatVersion} }

// versionSupported reports whether v is a replayable format version.
func versionSupported(v int) bool {
	for _, s := range SupportedVersions() {
		if v == s {
			return true
		}
	}
	return false
}

// Trace is the on-disk form of a workload.
type Trace struct {
	Version int       `json:"version"`
	Name    string    `json:"name,omitempty"`
	Apps    []AppSpec `json:"apps"`
}

// AppSpec describes one application in a trace.
type AppSpec struct {
	ID         string  `json:"id"`
	SubmitTime float64 `json:"submit_time"`
	Model      string  `json:"model"`
	// Placement is the optional v2 placement block: the app's
	// placement-sensitivity profile and the locality constraints its jobs
	// default to. Traces declaring version 1 must not carry it.
	Placement *PlacementSpec `json:"placement,omitempty"`
	Jobs      []JobSpec      `json:"jobs"`
}

// PlacementSpec is the v2 per-app placement block: it puts the constraints
// that previously had to be injected at import time (ImportOptions.Model) on
// the wire, so a trace replays with locality-sensitive scheduling anywhere.
type PlacementSpec struct {
	// Profile names a placement-sensitivity profile from the catalog (e.g.
	// "VGG16", "generic-network"). Unlike AppSpec.Model — which falls back
	// to a generic profile for unknown names — a placement block naming an
	// unknown profile is a validation error: the block exists to pin
	// placement behaviour, so a typo must not silently degrade it. Empty
	// defers to Model.
	Profile string `json:"profile,omitempty"`
	// MinGPUsPerMachine is the default per-machine GPU floor for every job
	// of the app that does not carry its own (§6: machines contributing
	// fewer GPUs stall the gang). Zero means unconstrained.
	MinGPUsPerMachine int `json:"min_gpus_per_machine,omitempty"`
	// MaxMachines is the default machine-spread cap for every job of the
	// app that does not carry its own: the gang may span at most this many
	// machines. Zero means unconstrained.
	MaxMachines int `json:"max_machines,omitempty"`
	// Domain names the fabric domain the app's jobs must run inside,
	// matched against the topology's domain names ("pod-a", or the default
	// "domain-<id>"). Empty means any domain. Resolution happens at replay
	// time against the run's topology: names the topology does not declare
	// make the app's jobs infeasible there.
	Domain string `json:"domain,omitempty"`
	// Flavor names the GPU model the app's jobs require (e.g. "V100").
	// Empty means any flavor.
	Flavor string `json:"flavor,omitempty"`
}

// JobSpec describes one hyperparameter trial.
type JobSpec struct {
	TotalWork         float64 `json:"total_work"`
	GangSize          int     `json:"gang_size"`
	MaxParallelism    int     `json:"max_parallelism,omitempty"`
	MinGPUsPerMachine int     `json:"min_gpus_per_machine,omitempty"`
	// MaxMachines caps how many machines the job's gang may span (v2).
	// Traces declaring version 1 must not carry it.
	MaxMachines     int     `json:"max_machines,omitempty"`
	TotalIterations int     `json:"total_iterations,omitempty"`
	Quality         float64 `json:"quality"`
	Seed            int64   `json:"seed"`
}

// FromApps converts in-memory apps into a serialisable trace.
func FromApps(name string, apps []*workload.App) Trace {
	t := Trace{Version: FormatVersion, Name: name}
	for _, a := range apps {
		spec := AppSpec{ID: string(a.ID), SubmitTime: a.SubmitTime, Model: a.Profile.Name}
		// Domain/flavor affinities are app-level in the wire format (they
		// arrive via the placement block and apply to every job), so the
		// first job's affinity round-trips the block.
		if len(a.Jobs) > 0 {
			if j0 := a.Jobs[0]; j0.DomainAffinity != "" || j0.FlavorAffinity != "" {
				spec.Placement = &PlacementSpec{Domain: j0.DomainAffinity, Flavor: j0.FlavorAffinity}
			}
		}
		for _, j := range a.Jobs {
			spec.Jobs = append(spec.Jobs, JobSpec{
				TotalWork:         j.TotalWork,
				GangSize:          j.GangSize,
				MaxParallelism:    j.MaxParallelism,
				MinGPUsPerMachine: j.MinGPUsPerMachine,
				MaxMachines:       j.MaxMachines,
				TotalIterations:   j.TotalIterations,
				Quality:           j.Quality,
				Seed:              j.Seed,
			})
		}
		t.Apps = append(t.Apps, spec)
	}
	return t
}

// Validate checks the trace header and app entries against the format
// contract: a supported version, non-empty unique app IDs, positive
// work/gang and non-negative constraints on every job, and — version-aware —
// that v2-only fields (the placement block, per-job max_machines) appear
// only in traces declaring version 2. Violations surface as the typed errors
// in errors.go, so callers can distinguish a version mismatch from a
// structural defect.
func (t Trace) Validate() error {
	if !versionSupported(t.Version) {
		return &UnsupportedVersionError{Version: t.Version}
	}
	seen := make(map[string]int, len(t.Apps))
	for i, spec := range t.Apps {
		if spec.ID == "" {
			return &MissingAppIDError{Index: i}
		}
		if first, dup := seen[spec.ID]; dup {
			return &DuplicateAppIDError{ID: spec.ID, First: first, Second: i}
		}
		seen[spec.ID] = i
		// NaN/±Inf are unencodable as JSON but expressible in the binary
		// container's fixed-width floats; rejecting them here keeps both
		// encodings accepting exactly the same traces (and NaN would slip
		// through the <= comparisons below).
		if !isFinite(spec.SubmitTime) {
			return &AppError{ID: spec.ID, Reason: fmt.Sprintf("non-finite submit_time %v", spec.SubmitTime)}
		}
		if err := spec.validatePlacement(t.Version); err != nil {
			return err
		}
		if len(spec.Jobs) == 0 {
			return &JobError{App: spec.ID, Index: 0, Reason: "app has no jobs"}
		}
		for j, js := range spec.Jobs {
			if !isFinite(js.TotalWork) || !isFinite(js.Quality) {
				return &JobError{App: spec.ID, Index: j, Reason: fmt.Sprintf("non-finite work/quality %v/%v", js.TotalWork, js.Quality)}
			}
			if js.TotalWork <= 0 || js.GangSize <= 0 {
				return &JobError{App: spec.ID, Index: j, Reason: fmt.Sprintf("invalid work/gang %v/%d", js.TotalWork, js.GangSize)}
			}
			if js.MinGPUsPerMachine < 0 {
				return &JobError{App: spec.ID, Index: j, Reason: fmt.Sprintf("negative min_gpus_per_machine %d", js.MinGPUsPerMachine)}
			}
			if js.MaxMachines < 0 {
				return &JobError{App: spec.ID, Index: j, Reason: fmt.Sprintf("negative max_machines %d", js.MaxMachines)}
			}
			if t.Version < FormatVersion && js.MaxMachines != 0 {
				return &JobError{App: spec.ID, Index: j, Reason: fmt.Sprintf("max_machines requires format version %d, trace declares %d", FormatVersion, t.Version)}
			}
		}
	}
	return nil
}

// validatePlacement checks an app's placement block against the declared
// format version: present only under v2, constraint fields non-negative, and
// the profile name (when set) resolvable in the catalog.
func (spec AppSpec) validatePlacement(version int) error {
	p := spec.Placement
	if p == nil {
		return nil
	}
	if version < FormatVersion {
		return &PlacementError{App: spec.ID, Reason: fmt.Sprintf("placement block requires format version %d, trace declares %d", FormatVersion, version)}
	}
	if p.MinGPUsPerMachine < 0 {
		return &PlacementError{App: spec.ID, Reason: fmt.Sprintf("negative min_gpus_per_machine %d", p.MinGPUsPerMachine)}
	}
	if p.MaxMachines < 0 {
		return &PlacementError{App: spec.ID, Reason: fmt.Sprintf("negative max_machines %d", p.MaxMachines)}
	}
	if p.Profile != "" {
		if _, ok := placement.ByName(p.Profile); !ok {
			return &PlacementError{App: spec.ID, Reason: fmt.Sprintf("unknown placement profile %q", p.Profile)}
		}
	}
	return nil
}

// Upgrade losslessly lifts a validated trace to the current format version
// in place. v1 is a strict subset of v2 (no placement data), so upgrading
// only rewrites the version header; Read applies it so every decoded trace
// is current-format and Write round-trips bit-identically.
func (t *Trace) Upgrade() {
	if t.Version < FormatVersion {
		t.Version = FormatVersion
	}
}

// ToApps materialises the trace back into runnable apps with fresh runtime
// state. The app's profile resolves from the placement block's Profile when
// present (validated against the catalog), else from Model — unknown model
// names fall back to the generic compute-intensive profile. Placement-block
// constraints apply as defaults to every job that does not carry its own.
func (t Trace) ToApps() ([]*workload.App, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var apps []*workload.App
	for _, spec := range t.Apps {
		profile := spec.resolveProfile()
		var jobs []*workload.Job
		for i, js := range spec.Jobs {
			j := workload.NewJob(workload.AppID(spec.ID), i, js.TotalWork, js.GangSize)
			if js.MaxParallelism > 0 {
				j.MaxParallelism = js.MaxParallelism
			}
			if js.MinGPUsPerMachine > 0 {
				j.MinGPUsPerMachine = js.MinGPUsPerMachine
			}
			if js.MaxMachines > 0 {
				j.MaxMachines = js.MaxMachines
			}
			if p := spec.Placement; p != nil {
				if j.MinGPUsPerMachine == 0 && p.MinGPUsPerMachine > 0 {
					j.MinGPUsPerMachine = p.MinGPUsPerMachine
				}
				if j.MaxMachines == 0 && p.MaxMachines > 0 {
					j.MaxMachines = p.MaxMachines
				}
				j.DomainAffinity = p.Domain
				j.FlavorAffinity = p.Flavor
			}
			if js.TotalIterations > 0 {
				j.TotalIterations = js.TotalIterations
			}
			j.Quality = js.Quality
			j.Seed = js.Seed
			jobs = append(jobs, j)
		}
		app := workload.NewApp(workload.AppID(spec.ID), spec.SubmitTime, profile, jobs)
		if err := app.Validate(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		apps = append(apps, app)
	}
	return apps, nil
}

// resolveProfile returns the app's placement-sensitivity profile: the
// placement block's Profile when set (Validate guarantees it resolves), else
// Model with the historical generic fallback.
func (spec AppSpec) resolveProfile() placement.Profile {
	if p := spec.Placement; p != nil && p.Profile != "" {
		if profile, ok := placement.ByName(p.Profile); ok {
			return profile
		}
	}
	profile, ok := placement.ByName(spec.Model)
	if !ok {
		profile = placement.GenericComputeIntensive
	}
	return profile
}

// Write serialises the trace as indented JSON.
func (t Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Read parses and validates a trace from JSON. Unknown format versions,
// missing or duplicate app IDs, and v2-only fields in v1 traces are rejected
// at decode time with the typed errors in errors.go rather than silently
// accepted and replayed wrong. Accepted traces come back upgraded to the
// current format version (lossless; see Upgrade), so Write on the result
// emits valid current-format JSON.
func Read(r io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("trace: decoding: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	t.Upgrade()
	return t, nil
}

// Save writes the trace to a file.
func Save(path string, t Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a trace from a file, auto-detecting the encoding: files
// starting with the v3 binary magic decode through ReadBinary, everything
// else through the JSON Read.
func Load(path string) (Trace, error) {
	t, _, err := LoadWithInfo(path)
	return t, err
}

// LoadInfo describes what was actually found on disk by LoadWithInfo —
// before the lossless upgrade every decoded trace undergoes.
type LoadInfo struct {
	// Encoding is FormatJSON or FormatBinary.
	Encoding Format
	// WireVersion is the format version the file declares: 1 or 2 for JSON
	// traces, BinaryVersion (3) for binary containers. The in-memory trace
	// always carries FormatVersion after the upgrade; WireVersion preserves
	// what the file said.
	WireVersion int
}

// LoadWithInfo reads a trace from a file like Load and additionally reports
// the detected on-disk encoding and declared format version. tracegen's
// validate subcommand uses it to name what it actually checked.
func LoadWithInfo(path string) (Trace, LoadInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, LoadInfo{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return Trace{}, LoadInfo{}, fmt.Errorf("trace: reading %s: %w", path, err)
	}
	if string(head) == binaryMagic {
		t, err := ReadBinary(br)
		return t, LoadInfo{Encoding: FormatBinary, WireVersion: BinaryVersion}, err
	}
	var t Trace
	if err := json.NewDecoder(br).Decode(&t); err != nil {
		return Trace{}, LoadInfo{}, fmt.Errorf("trace: decoding: %w", err)
	}
	info := LoadInfo{Encoding: FormatJSON, WireVersion: t.Version}
	if err := t.Validate(); err != nil {
		return Trace{}, info, err
	}
	t.Upgrade()
	return t, info, nil
}
