// Package trace persists and replays workload traces. A Trace is the
// serialisable description of the apps submitted to a cluster — the
// stand-in for the production trace the paper replays — so experiments can
// be re-run bit-for-bit from a file instead of regenerating workloads.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"themis/internal/placement"
	"themis/internal/workload"
)

// FormatVersion identifies the current on-disk trace format. Writers always
// emit it; readers accept any version in SupportedVersions.
const FormatVersion = 1

// SupportedVersions lists the format versions this build can replay, oldest
// first. Today the v1 JSON shape is the only one, but importers and readers
// negotiate through this list so a future v2 can keep v1 traces loadable.
func SupportedVersions() []int { return []int{FormatVersion} }

// versionSupported reports whether v is a replayable format version.
func versionSupported(v int) bool {
	for _, s := range SupportedVersions() {
		if v == s {
			return true
		}
	}
	return false
}

// Trace is the on-disk form of a workload.
type Trace struct {
	Version int       `json:"version"`
	Name    string    `json:"name,omitempty"`
	Apps    []AppSpec `json:"apps"`
}

// AppSpec describes one application in a trace.
type AppSpec struct {
	ID         string    `json:"id"`
	SubmitTime float64   `json:"submit_time"`
	Model      string    `json:"model"`
	Jobs       []JobSpec `json:"jobs"`
}

// JobSpec describes one hyperparameter trial.
type JobSpec struct {
	TotalWork         float64 `json:"total_work"`
	GangSize          int     `json:"gang_size"`
	MaxParallelism    int     `json:"max_parallelism,omitempty"`
	MinGPUsPerMachine int     `json:"min_gpus_per_machine,omitempty"`
	TotalIterations   int     `json:"total_iterations,omitempty"`
	Quality           float64 `json:"quality"`
	Seed              int64   `json:"seed"`
}

// FromApps converts in-memory apps into a serialisable trace.
func FromApps(name string, apps []*workload.App) Trace {
	t := Trace{Version: FormatVersion, Name: name}
	for _, a := range apps {
		spec := AppSpec{ID: string(a.ID), SubmitTime: a.SubmitTime, Model: a.Profile.Name}
		for _, j := range a.Jobs {
			spec.Jobs = append(spec.Jobs, JobSpec{
				TotalWork:         j.TotalWork,
				GangSize:          j.GangSize,
				MaxParallelism:    j.MaxParallelism,
				MinGPUsPerMachine: j.MinGPUsPerMachine,
				TotalIterations:   j.TotalIterations,
				Quality:           j.Quality,
				Seed:              j.Seed,
			})
		}
		t.Apps = append(t.Apps, spec)
	}
	return t
}

// Validate checks the trace header and app entries against the format
// contract: a supported version, non-empty unique app IDs, and positive
// work/gang on every job. Violations surface as the typed errors in
// errors.go, so callers can distinguish a version mismatch from a
// structural defect.
func (t Trace) Validate() error {
	if !versionSupported(t.Version) {
		return &UnsupportedVersionError{Version: t.Version}
	}
	seen := make(map[string]int, len(t.Apps))
	for i, spec := range t.Apps {
		if spec.ID == "" {
			return &MissingAppIDError{Index: i}
		}
		if first, dup := seen[spec.ID]; dup {
			return &DuplicateAppIDError{ID: spec.ID, First: first, Second: i}
		}
		seen[spec.ID] = i
		if len(spec.Jobs) == 0 {
			return &JobError{App: spec.ID, Index: 0, Reason: "app has no jobs"}
		}
		for j, js := range spec.Jobs {
			if js.TotalWork <= 0 || js.GangSize <= 0 {
				return &JobError{App: spec.ID, Index: j, Reason: fmt.Sprintf("invalid work/gang %v/%d", js.TotalWork, js.GangSize)}
			}
		}
	}
	return nil
}

// ToApps materialises the trace back into runnable apps with fresh runtime
// state. Unknown model names fall back to the generic compute-intensive
// profile.
func (t Trace) ToApps() ([]*workload.App, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var apps []*workload.App
	for _, spec := range t.Apps {
		profile, ok := placement.ByName(spec.Model)
		if !ok {
			profile = placement.GenericComputeIntensive
		}
		var jobs []*workload.Job
		for i, js := range spec.Jobs {
			j := workload.NewJob(workload.AppID(spec.ID), i, js.TotalWork, js.GangSize)
			if js.MaxParallelism > 0 {
				j.MaxParallelism = js.MaxParallelism
			}
			if js.MinGPUsPerMachine > 0 {
				j.MinGPUsPerMachine = js.MinGPUsPerMachine
			}
			if js.TotalIterations > 0 {
				j.TotalIterations = js.TotalIterations
			}
			j.Quality = js.Quality
			j.Seed = js.Seed
			jobs = append(jobs, j)
		}
		app := workload.NewApp(workload.AppID(spec.ID), spec.SubmitTime, profile, jobs)
		if err := app.Validate(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		apps = append(apps, app)
	}
	return apps, nil
}

// Write serialises the trace as indented JSON.
func (t Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Read parses and validates a trace from JSON. Unknown format versions and
// missing or duplicate app IDs are rejected at decode time with the typed
// errors in errors.go rather than silently accepted and replayed wrong.
func Read(r io.Reader) (Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("trace: decoding: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

// Save writes the trace to a file.
func Save(path string, t Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a trace from a file.
func Load(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}
