package trace

import "fmt"

// The decode path rejects malformed traces with typed errors so callers
// (tracegen's validate subcommand, the facade, tests) can distinguish a
// version mismatch from a structural defect with errors.As.

// UnsupportedVersionError reports a trace whose format version this build
// cannot replay. Version negotiation is strict: every supported version is
// listed in SupportedVersions, and anything else — including a missing
// version field — is rejected at decode time rather than surfacing as
// mysterious replay differences later.
type UnsupportedVersionError struct {
	// Version is the version the trace declared (0 when absent).
	Version int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("trace: unsupported format version %d (supported: %v)", e.Version, SupportedVersions())
}

// MissingAppIDError reports an app entry with an empty ID.
type MissingAppIDError struct {
	// Index is the position of the offending app in the trace's Apps list.
	Index int
}

func (e *MissingAppIDError) Error() string {
	return fmt.Sprintf("trace: app at index %d has no ID", e.Index)
}

// DuplicateAppIDError reports two app entries sharing one ID. Trace replay
// keys runtime state by app ID, so duplicates would silently merge two apps'
// accounting.
type DuplicateAppIDError struct {
	// ID is the duplicated app ID.
	ID string
	// First and Second are the indices of the colliding entries.
	First, Second int
}

func (e *DuplicateAppIDError) Error() string {
	return fmt.Sprintf("trace: duplicate app ID %q (entries %d and %d)", e.ID, e.First, e.Second)
}

// JobError reports a structurally invalid job within an app entry.
type JobError struct {
	// App is the owning app's ID; Index is the job's position within it.
	App    string
	Index  int
	Reason string
}

func (e *JobError) Error() string {
	return fmt.Sprintf("trace: app %s job %d: %s", e.App, e.Index, e.Reason)
}
