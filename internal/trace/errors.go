package trace

import "fmt"

// The decode path rejects malformed traces with typed errors so callers
// (tracegen's validate subcommand, the facade, tests) can distinguish a
// version mismatch from a structural defect with errors.As.

// UnsupportedVersionError reports a trace whose format version this build
// cannot replay. Version negotiation is strict: every supported version is
// listed in SupportedVersions, and anything else — including a missing
// version field — is rejected at decode time rather than surfacing as
// mysterious replay differences later.
type UnsupportedVersionError struct {
	// Version is the version the trace declared (0 when absent).
	Version int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("trace: unsupported format version %d (supported: %v)", e.Version, SupportedVersions())
}

// MissingAppIDError reports an app entry with an empty ID.
type MissingAppIDError struct {
	// Index is the position of the offending app in the trace's Apps list.
	Index int
}

func (e *MissingAppIDError) Error() string {
	return fmt.Sprintf("trace: app at index %d has no ID", e.Index)
}

// DuplicateAppIDError reports two app entries sharing one ID. Trace replay
// keys runtime state by app ID, so duplicates would silently merge two apps'
// accounting.
type DuplicateAppIDError struct {
	// ID is the duplicated app ID.
	ID string
	// First and Second are the indices of the colliding entries.
	First, Second int
}

func (e *DuplicateAppIDError) Error() string {
	return fmt.Sprintf("trace: duplicate app ID %q (entries %d and %d)", e.ID, e.First, e.Second)
}

// PlacementError reports an invalid v2 placement block: one attached to a
// trace declaring version 1, carrying negative constraints, or naming a
// profile absent from the catalog. Placement blocks exist to pin an app's
// placement behaviour on the wire, so defects are rejected at decode time
// instead of silently degrading to unconstrained scheduling.
type PlacementError struct {
	// App is the owning app's ID.
	App    string
	Reason string
}

func (e *PlacementError) Error() string {
	return fmt.Sprintf("trace: app %s placement block: %s", e.App, e.Reason)
}

// OptionError reports an ImportOptions field whose value the importers
// cannot honour (negative or non-finite TimeScale, negative MaxApps, …).
// Before this check existed such values were accepted and silently produced
// garbage timestamps; now they fail fast with the offending field named.
type OptionError struct {
	// Option is the ImportOptions field name.
	Option string
	// Value is the rejected value, formatted.
	Value  string
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("trace: import option %s=%s: %s", e.Option, e.Value, e.Reason)
}

// CorruptTraceError reports a structurally invalid v3 binary trace
// container: a bad magic or section identifier, a truncated section frame, a
// string-table index or varint out of range, or trailing bytes where a frame
// should end. The binary decoder never panics on hostile input — every
// corruption path surfaces as this type (I/O failures of the underlying
// reader keep their own error).
type CorruptTraceError struct {
	// Offset is the byte position in the stream where decoding failed.
	Offset int64
	Reason string
}

func (e *CorruptTraceError) Error() string {
	return fmt.Sprintf("trace: corrupt binary trace at byte %d: %s", e.Offset, e.Reason)
}

// AppError reports a structurally invalid app-level field (today: a
// non-finite submit time). JSON cannot encode NaN or ±Inf, but the binary
// container's fixed-width floats can; rejecting them at validation keeps the
// two encodings accepting exactly the same set of traces.
type AppError struct {
	// ID is the offending app's ID.
	ID     string
	Reason string
}

func (e *AppError) Error() string {
	return fmt.Sprintf("trace: app %s: %s", e.ID, e.Reason)
}

// JobError reports a structurally invalid job within an app entry.
type JobError struct {
	// App is the owning app's ID; Index is the job's position within it.
	App    string
	Index  int
	Reason string
}

func (e *JobError) Error() string {
	return fmt.Sprintf("trace: app %s job %d: %s", e.App, e.Index, e.Reason)
}
