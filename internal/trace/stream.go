package trace

import (
	"container/heap"
	"encoding/csv"
	"io"
	"sort"
)

// This file holds the streaming-import machinery shared by the CSV adapters:
// a byte-counting reader feeding progress reports, a progress emitter, and
// an online top-K-by-submit-time selector that bounds the Philly pass's
// memory to O(MaxApps) instead of materialising every row before sorting.

// ImportProgress is one streaming-import progress snapshot, delivered to
// ImportOptions.Progress on the importing goroutine.
type ImportProgress struct {
	// Format is the concrete format being parsed (never FormatAuto).
	Format Format
	// Rows counts the data rows scanned so far (header excluded), including
	// rows that were filtered or unparsable. Native JSON input has no data
	// rows; its single Done snapshot reports decoded app entries instead.
	Rows int64
	// Kept counts the candidate apps currently retained by the pass. Under
	// a MaxApps cap it never exceeds the cap for row-per-job formats.
	Kept int64
	// Bytes counts the input bytes consumed so far.
	Bytes int64
	// Done marks the final snapshot, emitted once at end of input.
	Done bool
}

// countingReader counts the bytes handed to the CSV layer so progress
// snapshots can report input position without the caller pre-measuring the
// stream (it may be a pipe or a multi-GB file).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// rowScanner couples the CSV reader with progress accounting for one
// streaming pass. Records are reused between Read calls (csv.ReuseRecord),
// so row handlers must copy any cell they retain.
type rowScanner struct {
	cr     *csv.Reader
	count  *countingReader
	format Format
	emit   func(ImportProgress)
	every  int64
	rows   int64
}

// newRowScanner builds the streaming CSV pipeline over r: byte counting,
// lazy quoting tolerance matching the old adapters (FieldsPerRecord -1,
// TrimLeadingSpace), record reuse for bounded per-row allocation, and the
// progress emitter configured from opts.
func newRowScanner(r io.Reader, format Format, opts ImportOptions) *rowScanner {
	count := &countingReader{r: r}
	cr := csv.NewReader(count)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	cr.ReuseRecord = true
	every := opts.ProgressEvery
	if every == 0 {
		every = defaultProgressEvery
	}
	return &rowScanner{cr: cr, count: count, format: format, emit: opts.Progress, every: every}
}

// header reads the header row, returning a copy safe to retain.
func (s *rowScanner) header() ([]string, error) {
	row, err := s.cr.Read()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(row))
	copy(out, row)
	return out, nil
}

// next reads one data row, counting it and emitting a progress snapshot on
// the configured interval. The returned slice is only valid until the next
// call.
func (s *rowScanner) next(kept func() int) ([]string, error) {
	row, err := s.cr.Read()
	if err != nil {
		return nil, err
	}
	s.rows++
	if s.emit != nil && s.rows%s.every == 0 {
		s.emit(ImportProgress{Format: s.format, Rows: s.rows, Kept: int64(kept()), Bytes: s.count.n})
	}
	return row, nil
}

// finish emits the final (Done) progress snapshot.
func (s *rowScanner) finish(kept int) {
	if s.emit != nil {
		s.emit(ImportProgress{Format: s.format, Rows: s.rows, Kept: int64(kept), Bytes: s.count.n, Done: true})
	}
}

// appLess is the import ordering: submission time, ID tie-broken. It is the
// same order normalizeImported always sorted by, now also the top-K
// selection key.
func appLess(a, b *AppSpec) bool {
	if a.SubmitTime != b.SubmitTime {
		return a.SubmitTime < b.SubmitTime
	}
	return a.ID < b.ID
}

// topKApps retains the K smallest apps by (submit time, ID) online, using a
// max-heap of size K: a new app either evicts the current maximum or is
// dropped, so a capped import of N rows costs O(N log K) time and O(K)
// memory. K <= 0 disables the cap and retains everything (the output trace
// holds every app anyway, so memory is the size of the result either way).
//
// Ties at the boundary keep the first-encountered app, matching the
// sort.SliceStable + truncate behaviour the adapters previously had.
type topKApps struct {
	k    int
	apps appMaxHeap
}

func newTopKApps(k int) *topKApps { return &topKApps{k: k} }

// add offers one app to the selection.
func (t *topKApps) add(spec AppSpec) {
	if t.k <= 0 {
		t.apps = append(t.apps, spec)
		return
	}
	if len(t.apps) < t.k {
		heap.Push(&t.apps, spec)
		return
	}
	if appLess(&spec, &t.apps[0]) {
		t.apps[0] = spec
		heap.Fix(&t.apps, 0)
	}
}

// len reports how many apps are currently retained.
func (t *topKApps) len() int { return len(t.apps) }

// finish returns the retained apps sorted by (submit time, ID), consuming
// the selector.
func (t *topKApps) finish() []AppSpec {
	apps := []AppSpec(t.apps)
	t.apps = nil
	sort.SliceStable(apps, func(i, j int) bool { return appLess(&apps[i], &apps[j]) })
	return apps
}

// appMaxHeap is a max-heap of AppSpecs under appLess (the root is the
// largest retained app — the next eviction candidate).
type appMaxHeap []AppSpec

func (h appMaxHeap) Len() int            { return len(h) }
func (h appMaxHeap) Less(i, j int) bool  { return appLess(&h[j], &h[i]) }
func (h appMaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *appMaxHeap) Push(x interface{}) { *h = append(*h, x.(AppSpec)) }
func (h *appMaxHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	x := old[n]
	*h = old[:n]
	return x
}

// rebaseApps shifts already-sorted apps so the earliest arrival is at t = 0.
func rebaseApps(apps []AppSpec) {
	if len(apps) == 0 {
		return
	}
	base := apps[0].SubmitTime
	for i := range apps {
		apps[i].SubmitTime -= base
	}
}

// normalizeImported sorts apps by submission time (ID-tie-broken), rebases
// the earliest arrival to 0 and applies the MaxApps cap. Used by the
// grouping (Alibaba-style) adapter, whose apps only exist after the full
// pass; the row-per-job adapter caps online through topKApps instead.
func normalizeImported(tr *Trace, maxApps int) {
	sort.SliceStable(tr.Apps, func(i, j int) bool { return appLess(&tr.Apps[i], &tr.Apps[j]) })
	if maxApps > 0 && len(tr.Apps) > maxApps {
		tr.Apps = tr.Apps[:maxApps]
	}
	rebaseApps(tr.Apps)
}
