package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// binaryErrTyped reports whether a binary-decode failure is one of the typed
// errors the decoder is allowed to return: corruption, version negotiation, or
// a structural validation error on the decoded data model. Anything else
// (and any panic, which the fuzzer turns into a crash) is a contract
// violation.
func binaryErrTyped(err error) bool {
	var (
		corrupt   *CorruptTraceError
		version   *UnsupportedVersionError
		missingID *MissingAppIDError
		dupID     *DuplicateAppIDError
		app       *AppError
		placement *PlacementError
		job       *JobError
	)
	return errors.As(err, &corrupt) || errors.As(err, &version) ||
		errors.As(err, &missingID) || errors.As(err, &dupID) ||
		errors.As(err, &app) || errors.As(err, &placement) || errors.As(err, &job)
}

// FuzzBinaryTraceRoundTrip asserts the v3 binary codec's contract on
// arbitrary bytes, in both directions:
//
//   - binary→decode→encode: ReadBinary never panics; rejections carry typed
//     errors (truncated sections, corrupt string-table indices, varint
//     overflows all surface as *CorruptTraceError); accepted input round-trips
//     bit-for-bit through WriteBinary→ReadBinary and re-encodes
//     deterministically.
//   - JSON→binary→JSON: any input the JSON decoder accepts must survive the
//     trip through the binary container unchanged — the two encodings are
//     interchangeable representations of one data model.
//
// The seed corpus under testdata/fuzz/FuzzBinaryTraceRoundTrip pins the
// hostile shapes that drove the decoder's bounds checks.
func FuzzBinaryTraceRoundTrip(f *testing.F) {
	// Valid binary container (several apps, placement block, interned names).
	var valid bytes.Buffer
	if err := binaryTestTrace().WriteBinary(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Empty trace container.
	var empty bytes.Buffer
	if err := (Trace{Version: FormatVersion, Name: "e"}).WriteBinary(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	// Truncations at every structural boundary.
	f.Add(valid.Bytes()[:3])
	f.Add(valid.Bytes()[:8])
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(valid.Bytes()[:len(valid.Bytes())-2])
	// Varint overflow in the container version.
	f.Add(append([]byte(binaryMagic), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f))
	// String-table count larger than its section frame.
	f.Add(append([]byte(binaryMagic), 3, secStrings, 2, 0xFF, 0x7F))
	// App count larger than its section frame, out-of-range name index.
	f.Add(append([]byte(binaryMagic), 3, secStrings, 2, 1, 0, secApps, 3, 0, 0xFF, 1))
	f.Add(append([]byte(binaryMagic), 3, secStrings, 2, 1, 0, secApps, 2, 9, 0))
	// JSON inputs: the cross-encoding direction.
	f.Add([]byte(`{"version":2,"apps":[{"id":"a","placement":{"profile":"VGG16","domain":"rack-1","flavor":"P100"},"jobs":[{"total_work":1,"gang_size":1,"seed":-3}]}]}`))
	f.Add([]byte(`{"version":1,"apps":[{"id":"a","jobs":[{"total_work":1,"gang_size":1,"max_parallelism":-1}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: treat the bytes as a binary container.
		tr, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			roundTripBinary(t, tr)
		} else if !binaryErrTyped(err) {
			t.Fatalf("ReadBinary rejected input with an untyped error: %v (%T)", err, err)
		}

		// Direction 2: treat the bytes as JSON; anything Read accepts must
		// survive the binary container losslessly.
		jtr, err := Read(bytes.NewReader(data))
		if err == nil {
			roundTripBinary(t, jtr)
		}
	})
}

// roundTripBinary pushes an accepted trace through WriteBinary→ReadBinary and
// back out to JSON, demanding DeepEqual fidelity and deterministic bytes.
func roundTripBinary(t *testing.T, tr Trace) {
	t.Helper()
	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatalf("encoding an accepted trace as binary failed: %v", err)
	}
	back, err := ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("re-decoding an encoded binary trace failed: %v", err)
	}
	// ReadBinary always materialises a non-nil Apps slice; a JSON trace with
	// "apps":null decodes to nil. Both mean "no apps".
	a, b := tr, back
	if len(a.Apps) == 0 {
		a.Apps, b.Apps = nil, nil
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("binary round trip changed the trace:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	var bin2 bytes.Buffer
	if err := back.WriteBinary(&bin2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
		t.Fatal("binary encoding is not deterministic across a decode round trip")
	}
	// Out the far side: binary→JSON→decode must also hold.
	var js bytes.Buffer
	if err := back.Write(&js); err != nil {
		t.Fatalf("re-encoding a binary-decoded trace as JSON failed: %v", err)
	}
	fromJSON, err := Read(bytes.NewReader(js.Bytes()))
	if err != nil {
		t.Fatalf("JSON re-decode of a binary-decoded trace failed: %v", err)
	}
	if len(fromJSON.Apps) == 0 {
		fromJSON.Apps = nil
	}
	if !reflect.DeepEqual(a, fromJSON) {
		t.Fatalf("binary→JSON round trip changed the trace:\nfirst:  %+v\nsecond: %+v", a, fromJSON)
	}
}
