package trace

import (
	"errors"
	"strings"
	"testing"
)

const phillyCSV = `jobid,submit_time,gpus,duration,status
j-3,40,2,60,Pass
j-1,0,4,118,Pass
j-2,10,8,30,Failed
j-4,55,0,10,Pass
j-5,70,4,-5,Pass
j-6,90,1,200,Completed
`

func TestImportPhilly(t *testing.T) {
	tr, err := ImportPhilly(strings.NewReader(phillyCSV), ImportOptions{Name: "philly-unit"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "philly-unit" || tr.Version != FormatVersion {
		t.Fatalf("header: %+v", tr)
	}
	// j-2 failed, j-4 is CPU-only (0 GPUs), j-5 has negative duration: all
	// dropped.
	if len(tr.Apps) != 3 {
		t.Fatalf("imported %d apps, want 3: %+v", len(tr.Apps), tr.Apps)
	}
	// Sorted by submit and rebased to 0.
	if tr.Apps[0].ID != "j-1" || tr.Apps[0].SubmitTime != 0 {
		t.Errorf("first app %+v, want j-1 at 0", tr.Apps[0])
	}
	if tr.Apps[1].ID != "j-3" || tr.Apps[1].SubmitTime != 40 {
		t.Errorf("second app %+v, want j-3 at 40", tr.Apps[1])
	}
	if tr.Apps[2].ID != "j-6" || tr.Apps[2].SubmitTime != 90 {
		t.Errorf("third app %+v, want j-6 at 90", tr.Apps[2])
	}
	// Serial work is duration × gang.
	if got := tr.Apps[0].Jobs[0]; got.TotalWork != 118*4 || got.GangSize != 4 {
		t.Errorf("j-1 job %+v, want work 472 gang 4", got)
	}
	// The result replays through the native pipeline.
	apps, err := tr.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 3 {
		t.Fatalf("ToApps returned %d apps", len(apps))
	}
}

func TestImportPhillyOptions(t *testing.T) {
	tr, err := ImportPhilly(strings.NewReader(phillyCSV), ImportOptions{
		KeepNonCompleted: true, MaxApps: 2, TimeScale: 2, Model: "VGG16",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Apps) != 2 {
		t.Fatalf("MaxApps not applied: %d apps", len(tr.Apps))
	}
	// With failures kept and time doubled, j-2 (submit 10 → 20) survives.
	if tr.Apps[1].ID != "j-2" || tr.Apps[1].SubmitTime != 20 {
		t.Errorf("second app %+v, want j-2 at 20", tr.Apps[1])
	}
	if tr.Apps[0].Model != "VGG16" {
		t.Errorf("model not stamped: %+v", tr.Apps[0])
	}
}

func TestImportPhillyRejects(t *testing.T) {
	if _, err := ImportPhilly(strings.NewReader("nope,nope2\n1,2\n"), ImportOptions{}); err == nil {
		t.Error("missing columns should fail")
	}
	if _, err := ImportPhilly(strings.NewReader("jobid,submit_time,gpus,duration\n"), ImportOptions{}); err == nil {
		t.Error("empty import should fail")
	}
	dup := "jobid,submit_time,gpus,duration\nj-1,0,2,10\nj-1,5,2,10\n"
	var dupErr *DuplicateAppIDError
	if _, err := ImportPhilly(strings.NewReader(dup), ImportOptions{}); !errors.As(err, &dupErr) {
		t.Errorf("duplicate jobid error = %v, want DuplicateAppIDError", err)
	}
}

const alibabaCSV = `job_name,task_name,inst_num,status,start_time,end_time,plan_gpu
j1,worker,2,Terminated,1200,4800,100
j1,ps,1,Terminated,1080,4800,50
j2,worker,1,Failed,600,1200,100
j3,worker,4,Terminated,60,6060,200
`

func TestImportAlibaba(t *testing.T) {
	tr, err := ImportAlibaba(strings.NewReader(alibabaCSV), ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != string(FormatAlibaba) {
		t.Errorf("default name %q", tr.Name)
	}
	// j2 failed → dropped; j3 (start 60) sorts before j1 (start 1080).
	if len(tr.Apps) != 2 || tr.Apps[0].ID != "j3" || tr.Apps[1].ID != "j1" {
		t.Fatalf("apps: %+v", tr.Apps)
	}
	if tr.Apps[0].SubmitTime != 0 {
		t.Errorf("rebase failed: %+v", tr.Apps[0])
	}
	// j1 groups two task rows into one app, earliest (ps) first.
	if len(tr.Apps[1].Jobs) != 2 {
		t.Fatalf("j1 jobs: %+v", tr.Apps[1].Jobs)
	}
	// ps: plan_gpu 50 → 1 GPU × 1 inst, 62 minutes → work 62.
	if got := tr.Apps[1].Jobs[0]; got.GangSize != 1 || got.TotalWork != 62 {
		t.Errorf("j1/ps job %+v, want gang 1 work 62", got)
	}
	// worker: plan_gpu 100 × 2 inst → gang 2, 60 minutes → work 120.
	if got := tr.Apps[1].Jobs[1]; got.GangSize != 2 || got.TotalWork != 120 {
		t.Errorf("j1/worker job %+v, want gang 2 work 120", got)
	}
	// j3: plan_gpu 200 → 2 GPUs × 4 inst → gang 8, 100 minutes → work 800.
	if got := tr.Apps[0].Jobs[0]; got.GangSize != 8 || got.TotalWork != 800 {
		t.Errorf("j3 job %+v, want gang 8 work 800", got)
	}
	if _, err := tr.ToApps(); err != nil {
		t.Fatal(err)
	}
}

func TestImportAlibabaRejects(t *testing.T) {
	if _, err := ImportAlibaba(strings.NewReader("a,b,c\n1,2,3\n"), ImportOptions{}); err == nil {
		t.Error("missing columns should fail")
	}
	onlyFailed := "job_name,status,start_time,end_time,plan_gpu\nj1,Failed,0,600,100\n"
	if _, err := ImportAlibaba(strings.NewReader(onlyFailed), ImportOptions{}); err == nil {
		t.Error("empty import should fail")
	}
	// A start time that overflows to +Inf under the time scale must be
	// dropped, not rebased into a NaN SubmitTime (Inf − Inf).
	overflow := "job_name,status,start_time,end_time,plan_gpu\nj1,Terminated,1e304,1.0000000000000001e304,100\n"
	if _, err := ImportAlibaba(strings.NewReader(overflow), ImportOptions{TimeScale: 1e5}); err == nil {
		t.Error("overflow-only import should fail, not produce NaN submit times")
	}
}

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		head string
		want Format
	}{
		{`{"version":1,"apps":[]}`, FormatJSON},
		{"  \n{\n", FormatJSON},
		{phillyCSV, FormatPhilly},
		{alibabaCSV, FormatAlibaba},
	}
	for _, c := range cases {
		got, err := DetectFormat([]byte(c.head))
		if err != nil || got != c.want {
			t.Errorf("DetectFormat(%.30q) = %v, %v; want %v", c.head, got, err, c.want)
		}
	}
	if _, err := DetectFormat([]byte("random prose, no header")); err == nil {
		t.Error("undetectable input should fail")
	}
}

func TestImportAuto(t *testing.T) {
	tr, err := Import(strings.NewReader(phillyCSV), FormatAuto, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Apps) != 3 {
		t.Errorf("auto import got %d apps", len(tr.Apps))
	}
	if _, err := Import(strings.NewReader("x"), Format("bogus"), ImportOptions{}); err == nil {
		t.Error("unknown format should fail")
	}
}
