package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"themis/internal/race"
)

// binaryTestTrace builds a v2 trace exercising every encodable field:
// placement blocks with domain/flavor affinities, shared model names (string
// interning), negative MaxParallelism/TotalIterations/Seed edge values
// (valid per Validate, and zigzag-encoded on the wire), and a minimal
// single-job app.
func binaryTestTrace() Trace {
	return Trace{
		Version: FormatVersion,
		Name:    "binary-roundtrip",
		Apps: []AppSpec{
			{
				ID: "app-0", SubmitTime: 0, Model: "resnet50",
				Jobs: []JobSpec{
					{TotalWork: 120.5, GangSize: 4, MaxParallelism: 16, MinGPUsPerMachine: 2, MaxMachines: 4, TotalIterations: 1000, Quality: 0.75, Seed: 42},
					{TotalWork: 60.25, GangSize: 2, MaxParallelism: -1, MinGPUsPerMachine: 0, MaxMachines: 0, TotalIterations: -1, Quality: 0, Seed: -7},
				},
			},
			{
				ID: "app-1", SubmitTime: 1.5, Model: "resnet50",
				Placement: &PlacementSpec{Profile: "VGG16", MinGPUsPerMachine: 4, MaxMachines: 2, Domain: "rack-0", Flavor: "P100"},
				Jobs: []JobSpec{
					{TotalWork: 300, GangSize: 8, MaxParallelism: 64, TotalIterations: 5000, Quality: 0.9, Seed: 1 << 40},
				},
			},
			{ID: "app-2", SubmitTime: 2.25, Model: "gpt2", Jobs: []JobSpec{{TotalWork: 10, GangSize: 1}}},
		},
	}
}

// A trace must survive JSON→binary→JSON and binary→binary round trips with
// reflect.DeepEqual fidelity, including negative job fields and placement
// blocks.
func TestBinaryRoundTrip(t *testing.T) {
	orig := binaryTestTrace()

	var bin bytes.Buffer
	if err := orig.WriteBinary(&bin); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("binary round trip changed the trace:\nfirst:  %+v\nsecond: %+v", orig, back)
	}

	// The decoded trace must re-encode as valid v2 JSON accepted by Read.
	var js bytes.Buffer
	if err := back.Write(&js); err != nil {
		t.Fatalf("Write after binary decode: %v", err)
	}
	fromJSON, err := Read(bytes.NewReader(js.Bytes()))
	if err != nil {
		t.Fatalf("Read of re-encoded JSON: %v", err)
	}
	if !reflect.DeepEqual(orig, fromJSON) {
		t.Fatalf("binary→JSON round trip changed the trace:\nfirst:  %+v\nsecond: %+v", orig, fromJSON)
	}

	// Re-encoding the decoded trace must be byte-identical: the encoder is
	// deterministic (first-use string interning, same delta base).
	var bin2 bytes.Buffer
	if err := back.WriteBinary(&bin2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
		t.Error("binary encoding is not deterministic across a decode round trip")
	}
}

// An empty trace (no apps) must round-trip too.
func TestBinaryRoundTripEmpty(t *testing.T) {
	orig := Trace{Version: FormatVersion, Name: "empty"}
	var bin bytes.Buffer
	if err := orig.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "empty" || len(back.Apps) != 0 || back.Version != FormatVersion {
		t.Fatalf("empty trace round trip: got %+v", back)
	}
}

// WriteBinary must refuse traces Validate refuses, so corrupt data can never
// be laundered through the binary encoder.
func TestWriteBinaryValidates(t *testing.T) {
	bad := Trace{Version: FormatVersion, Apps: []AppSpec{{ID: ""}}}
	var missingID *MissingAppIDError
	if err := bad.WriteBinary(io.Discard); !errors.As(err, &missingID) {
		t.Fatalf("WriteBinary(invalid) = %v, want *MissingAppIDError", err)
	}
}

// Every checked-in trace must materialise byte-identically whether it travels
// as v1 JSON, upgraded v2 JSON, or the v3 binary container — the cross-format
// golden guarantee. The goldens themselves are pinned by
// TestV1CrossVersionGolden (and refreshed with -update-golden); here the
// binary path is held to the same bytes.
func TestBinaryCrossFormatGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "v1", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no v1 golden traces found under testdata/v1")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}

			var bin bytes.Buffer
			if err := tr.WriteBinary(&bin); err != nil {
				t.Fatalf("WriteBinary of upgraded v1 trace: %v", err)
			}
			back, err := ReadBinary(bytes.NewReader(bin.Bytes()))
			if err != nil {
				t.Fatalf("ReadBinary: %v", err)
			}
			if !reflect.DeepEqual(tr, back) {
				t.Fatalf("v1→binary round trip changed the trace:\nfirst:  %+v\nsecond: %+v", tr, back)
			}

			apps, err := back.ToApps()
			if err != nil {
				t.Fatal(err)
			}
			got := dumpApps(apps)
			goldenPath := strings.TrimSuffix(path, ".json") + ".apps.golden"
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run TestV1CrossVersionGolden with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("binary-decoded trace materialises differently than the JSON golden\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// LoadWithInfo must report the encoding and wire version actually found on
// disk — v1 JSON, v2 JSON and v3 binary — while Load keeps returning the
// upgraded in-memory form. This is the contract tracegen validate prints.
func TestLoadWithInfo(t *testing.T) {
	dir := t.TempDir()
	tr := binaryTestTrace()

	v2Path := filepath.Join(dir, "v2.json")
	if err := Save(v2Path, tr); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "v3.bin")
	if err := SaveBinary(binPath, tr); err != nil {
		t.Fatal(err)
	}
	// A v1 file: the data model without the v2-only fields (placement
	// blocks, per-job max_machines), declaring version 1 on the wire.
	v1 := tr
	v1.Version = formatVersionV1
	v1.Apps = append([]AppSpec(nil), tr.Apps...)
	for i := range v1.Apps {
		v1.Apps[i].Placement = nil
		v1.Apps[i].Jobs = append([]JobSpec(nil), v1.Apps[i].Jobs...)
		for j := range v1.Apps[i].Jobs {
			v1.Apps[i].Jobs[j].MaxMachines = 0
		}
	}
	v1Path := filepath.Join(dir, "v1.json")
	v1f, err := os.Create(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := v1.Write(v1f); err != nil {
		t.Fatal(err)
	}
	if err := v1f.Close(); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name     string
		path     string
		encoding Format
		wire     int
	}{
		{"v1-json", v1Path, FormatJSON, 1},
		{"v2-json", v2Path, FormatJSON, 2},
		{"v3-binary", binPath, FormatBinary, BinaryVersion},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, info, err := LoadWithInfo(tc.path)
			if err != nil {
				t.Fatalf("LoadWithInfo: %v", err)
			}
			if info.Encoding != tc.encoding || info.WireVersion != tc.wire {
				t.Errorf("info = %+v, want {%s %d}", info, tc.encoding, tc.wire)
			}
			if got.Version != FormatVersion {
				t.Errorf("loaded trace carries version %d, want upgraded %d", got.Version, FormatVersion)
			}
		})
	}

	// Write declares the trace's own version on the wire; a v1 struct must
	// actually have produced a version-1 file for the table above to mean
	// anything.
	raw, err := os.ReadFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"version": 1`)) {
		t.Fatalf("test setup: v1 file does not declare version 1:\n%s", raw)
	}
}

// Corrupt containers must fail with *CorruptTraceError (or a typed version
// error), never a panic and never silent acceptance.
func TestBinaryCorruptInputs(t *testing.T) {
	var valid bytes.Buffer
	if err := binaryTestTrace().WriteBinary(&valid); err != nil {
		t.Fatal(err)
	}
	enc := valid.Bytes()

	corrupt := func(mutate func([]byte) []byte) []byte {
		return mutate(append([]byte(nil), enc...))
	}
	tests := []struct {
		name    string
		input   []byte
		wantVer bool // want *UnsupportedVersionError instead of *CorruptTraceError
	}{
		{name: "empty", input: nil},
		{name: "bad-magic", input: corrupt(func(b []byte) []byte { b[0] = 'X'; return b })},
		{name: "future-version", input: corrupt(func(b []byte) []byte { b[4] = 9; return b }), wantVer: true},
		{name: "truncated-header", input: enc[:3]},
		{name: "truncated-string-table", input: enc[:8]},
		{name: "truncated-apps", input: enc[:len(enc)-12]},
		{name: "missing-end-marker", input: enc[:len(enc)-2]},
		{name: "trailing-garbage", input: append(corrupt(func(b []byte) []byte { return b }), 0xFF)},
		{name: "wrong-section-id", input: corrupt(func(b []byte) []byte { b[5] = 0x7F; return b })},
		{name: "varint-overflow-version", input: append([]byte(binaryMagic), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f)},
		{name: "huge-string-count", input: append([]byte(binaryMagic), 3, secStrings, 2, 0xFF, 0x7F)},
		{name: "huge-app-count", input: func() []byte {
			// Valid header + empty-string table, then an apps section whose
			// count cannot be backed by its frame.
			b := []byte(binaryMagic)
			b = append(b, 3)                      // version
			b = append(b, secStrings, 2, 1, 0)    // 1 entry: ""
			b = append(b, secApps, 3, 0, 0xFF, 1) // name idx 0, count 255, 3-byte frame
			return b
		}()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			var ce *CorruptTraceError
			var ve *UnsupportedVersionError
			switch {
			case tc.wantVer && !errors.As(err, &ve):
				t.Fatalf("err = %v, want *UnsupportedVersionError", err)
			case !tc.wantVer && !errors.As(err, &ce):
				t.Fatalf("err = %v (%T), want *CorruptTraceError", err, err)
			}
		})
	}
}

// Decode errors must be sticky: after a corruption, every further Next
// returns the same typed error instead of yielding garbage apps.
func TestBinaryDecoderStickyError(t *testing.T) {
	var valid bytes.Buffer
	if err := binaryTestTrace().WriteBinary(&valid); err != nil {
		t.Fatal(err)
	}
	enc := valid.Bytes()
	d, err := NewBinaryDecoder(bytes.NewReader(enc[:len(enc)-12]))
	if err != nil {
		t.Fatalf("truncated apps payload should still open (header is intact): %v", err)
	}
	var first error
	for i := 0; i < 10; i++ {
		_, err := d.Next()
		if err == nil {
			continue
		}
		if first == nil {
			first = err
			var ce *CorruptTraceError
			if !errors.As(err, &ce) {
				t.Fatalf("first error = %v, want *CorruptTraceError", err)
			}
			continue
		}
		if err != first {
			t.Fatalf("error not sticky: first %v, later %v", first, err)
		}
	}
	if first == nil {
		t.Fatal("truncated trace decoded without error")
	}
}

// bigBinaryTrace encodes a uniform n-app trace (every app: one model of
// three, a placement block on every third app, two jobs) for the zero-alloc
// and throughput measurements.
func bigBinaryTrace(n int) []byte {
	tr := Trace{Version: FormatVersion, Name: "alloc-probe"}
	models := []string{"resnet50", "vgg16", "gpt2"}
	for i := 0; i < n; i++ {
		app := AppSpec{
			ID:         fmt.Sprintf("app-%06d", i),
			SubmitTime: float64(i) * 0.05,
			Model:      models[i%len(models)],
			Jobs: []JobSpec{
				{TotalWork: 60 + float64(i%5)*20, GangSize: 4, MaxParallelism: 16, TotalIterations: 100, Quality: 0.5, Seed: int64(i)},
				{TotalWork: 30, GangSize: 2, MaxParallelism: 8, TotalIterations: 50, Quality: 0.25, Seed: int64(i) + 1},
			},
		}
		if i%3 == 0 {
			app.Placement = &PlacementSpec{Profile: "ResNet50", MinGPUsPerMachine: 2, MaxMachines: 4, Domain: "rack-0", Flavor: "P100"}
		}
		tr.Apps = append(tr.Apps, app)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// Steady-state streaming decode must not allocate: after the first few apps
// have sized the decoder's reused buffers, Next is 0 allocs/op. This is the
// binary half of the PR's allocation contract (TestEventCoreZeroAlloc in
// internal/sim is the other half); CI runs both as a distinct step.
func TestBinaryDecodeZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc contract is checked without -race")
	}
	const runs = 2000
	enc := bigBinaryTrace(runs + 64)
	d, err := NewBinaryDecoder(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: let the jobs buffer reach its steady-state capacity.
	for i := 0; i < 32; i++ {
		if _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("BinaryDecoder.Next allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// BenchmarkBinaryTraceDecode measures streaming decode throughput over a
// 4096-app container; benchgate guards its ns/op against BENCH_baseline.json.
func BenchmarkBinaryTraceDecode(b *testing.B) {
	enc := bigBinaryTrace(4096)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewBinaryDecoder(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBinaryTraceEncode pairs the decoder benchmark for the write path.
func BenchmarkBinaryTraceEncode(b *testing.B) {
	tr, err := ReadBinary(bytes.NewReader(bigBinaryTrace(4096)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.WriteBinary(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
