//go:build memsmoke

package trace

import (
	"fmt"
	"io"
	"runtime"
	"testing"
)

// phillyRowSource synthesises a Philly-style CSV of the requested size on
// the fly, so the smoke test pushes 100MB+ through the importer without
// touching disk or holding the input in memory.
type phillyRowSource struct {
	target  int64 // bytes to emit, at least
	emitted int64
	row     int64
	buf     []byte
}

func newPhillyRowSource(targetBytes int64) *phillyRowSource {
	return &phillyRowSource{target: targetBytes, buf: []byte("jobid,submit_time,gpus,duration,status\n")}
}

func (s *phillyRowSource) Read(p []byte) (int, error) {
	if len(s.buf) == 0 {
		if s.emitted >= s.target {
			return 0, io.EOF
		}
		// Submit times walk a coprime stride so arrival order differs from
		// row order and the top-K heap keeps churning.
		submit := (s.row * 7919) % 1_000_003
		s.buf = fmt.Appendf(s.buf[:0], "job-%09d,%d,%d,%d,Pass\n", s.row, submit, 1+s.row%4, 30+s.row%90)
		s.row++
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	s.emitted += int64(n)
	return n, nil
}

// The streaming importer must hold a ≥100MB log in bounded memory: the top-K
// pass keeps O(MaxApps) apps, never the ~3.4M parsed rows (which would cost
// several hundred MB). Guarded by the memsmoke build tag because it pushes
// >100MB through the CSV layer; CI runs it as a dedicated step:
//
//	go test -tags memsmoke -run TestStreamingImportBoundedMemory ./internal/trace/
func TestStreamingImportBoundedMemory(t *testing.T) {
	const (
		inputBytes = 120 << 20 // ≥100MB of synthetic log
		maxApps    = 1000
		heapBudget = 192 << 20 // far below what materialising every row costs
	)
	var peak uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	sample()
	var final ImportProgress
	tr, err := ImportPhilly(newPhillyRowSource(inputBytes), ImportOptions{
		MaxApps:       maxApps,
		ProgressEvery: 100_000,
		Progress: func(p ImportProgress) {
			final = p
			sample()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sample()
	if len(tr.Apps) != maxApps {
		t.Fatalf("imported %d apps, want MaxApps=%d", len(tr.Apps), maxApps)
	}
	if !final.Done || final.Bytes < inputBytes {
		t.Fatalf("final progress %+v, want Done after >= %d input bytes", final, int64(inputBytes))
	}
	t.Logf("streamed %.1f MB / %d rows; peak HeapAlloc %.1f MB",
		float64(final.Bytes)/(1<<20), final.Rows, float64(peak)/(1<<20))
	if peak > heapBudget {
		t.Fatalf("peak HeapAlloc %.1f MB exceeds the %.0f MB streaming budget — the importer is materialising rows",
			float64(peak)/(1<<20), float64(heapBudget)/(1<<20))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
