package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// v2JSON is a hand-written v2 trace exercising the placement block: an
// app-level profile + constraint defaults, a per-job override, and a job
// with its own max_machines.
const v2JSON = `{
  "version": 2,
  "name": "v2-unit",
  "apps": [
    {
      "id": "a",
      "submit_time": 0,
      "model": "ResNet50",
      "placement": {"profile": "VGG16", "min_gpus_per_machine": 2, "max_machines": 1},
      "jobs": [
        {"total_work": 40, "gang_size": 4},
        {"total_work": 20, "gang_size": 2, "min_gpus_per_machine": 1, "max_machines": 3}
      ]
    },
    {
      "id": "b",
      "submit_time": 5,
      "model": "ResNet50",
      "jobs": [{"total_work": 10, "gang_size": 2, "max_machines": 2}]
    }
  ]
}`

func TestV2PlacementDecode(t *testing.T) {
	tr, err := Read(strings.NewReader(v2JSON))
	if err != nil {
		t.Fatal(err)
	}
	apps, err := tr.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	// The placement block's profile overrides Model.
	if apps[0].Profile.Name != "VGG16" {
		t.Errorf("app a profile %q, want placement-block VGG16", apps[0].Profile.Name)
	}
	if apps[1].Profile.Name != "ResNet50" {
		t.Errorf("app b profile %q, want model ResNet50", apps[1].Profile.Name)
	}
	// Job 0 inherits the block's constraint defaults.
	if j := apps[0].Jobs[0]; j.MinGPUsPerMachine != 2 || j.MaxMachines != 1 {
		t.Errorf("app a job 0 constraints %d/%d, want block defaults 2/1", j.MinGPUsPerMachine, j.MaxMachines)
	}
	// Job 1 keeps its own tighter values over the block's.
	if j := apps[0].Jobs[1]; j.MinGPUsPerMachine != 1 || j.MaxMachines != 3 {
		t.Errorf("app a job 1 constraints %d/%d, want per-job 1/3", j.MinGPUsPerMachine, j.MaxMachines)
	}
	// A job-level constraint without any placement block also lands.
	if j := apps[1].Jobs[0]; j.MinGPUsPerMachine != 0 || j.MaxMachines != 2 {
		t.Errorf("app b job 0 constraints %d/%d, want 0/2", j.MinGPUsPerMachine, j.MaxMachines)
	}
}

func TestV2ValidateRejects(t *testing.T) {
	job := `[{"total_work": 1, "gang_size": 1}]`
	cases := []struct {
		name string
		json string
		want interface{} // pointer to the expected typed error
	}{
		{"placement block in v1",
			`{"version":1,"apps":[{"id":"a","placement":{"max_machines":1},"jobs":` + job + `}]}`,
			new(*PlacementError)},
		{"negative block min",
			`{"version":2,"apps":[{"id":"a","placement":{"min_gpus_per_machine":-1},"jobs":` + job + `}]}`,
			new(*PlacementError)},
		{"negative block max",
			`{"version":2,"apps":[{"id":"a","placement":{"max_machines":-2},"jobs":` + job + `}]}`,
			new(*PlacementError)},
		{"unknown block profile",
			`{"version":2,"apps":[{"id":"a","placement":{"profile":"NoSuchNet"},"jobs":` + job + `}]}`,
			new(*PlacementError)},
		{"job max_machines in v1",
			`{"version":1,"apps":[{"id":"a","jobs":[{"total_work":1,"gang_size":1,"max_machines":2}]}]}`,
			new(*JobError)},
		{"negative job max_machines",
			`{"version":2,"apps":[{"id":"a","jobs":[{"total_work":1,"gang_size":1,"max_machines":-1}]}]}`,
			new(*JobError)},
		{"negative job min_gpus_per_machine",
			`{"version":2,"apps":[{"id":"a","jobs":[{"total_work":1,"gang_size":1,"min_gpus_per_machine":-1}]}]}`,
			new(*JobError)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.json))
			if err == nil {
				t.Fatalf("Read accepted %s", c.json)
			}
			if !errors.As(err, c.want) {
				t.Fatalf("error = %v (%T), want %T", err, err, c.want)
			}
		})
	}
}

// A v1 trace must decode losslessly under v2 code: same apps out of ToApps,
// version upgraded in place, and the re-encoded form a valid v2 trace.
func TestV1UpgradeOnRead(t *testing.T) {
	v1 := `{"version":1,"name":"old","apps":[
		{"id":"a","submit_time":3,"model":"VGG16","jobs":[
			{"total_work":10,"gang_size":4,"min_gpus_per_machine":2,"quality":0.5,"seed":7}]}]}`
	tr, err := Read(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version != FormatVersion {
		t.Errorf("Read left version %d, want upgrade to %d", tr.Version, FormatVersion)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version": 2`) {
		t.Errorf("re-encoded trace does not declare v2:\n%s", buf.String())
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v2 re-read failed: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("upgrade round trip changed the trace:\nfirst:  %+v\nsecond: %+v", tr, back)
	}
	apps, err := tr.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if j := apps[0].Jobs[0]; j.MinGPUsPerMachine != 2 || j.MaxMachines != 0 || j.Quality != 0.5 || j.Seed != 7 {
		t.Errorf("upgraded job lost v1 fields: %+v", j)
	}
}

// FromApps must carry the new constraint fields across a full write/read
// round trip.
func TestFromAppsCarriesConstraints(t *testing.T) {
	apps := genApps(t, 3)
	apps[0].Jobs[0].MinGPUsPerMachine = 2
	apps[0].Jobs[0].MaxMachines = 1
	tr := FromApps("constraints", apps)
	if tr.Version != FormatVersion {
		t.Fatalf("FromApps version %d, want %d", tr.Version, FormatVersion)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	apps2, err := back.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if j := apps2[0].Jobs[0]; j.MinGPUsPerMachine != 2 || j.MaxMachines != 1 {
		t.Errorf("constraints lost in round trip: %+v", j)
	}
}

// StripPlacement helper behaviour used by studies: clearing the block (and
// per-job constraints) must yield a still-valid trace whose apps are
// unconstrained.
func TestPlacementStampAndStrip(t *testing.T) {
	tr, err := ImportPhilly(strings.NewReader(phillyCSV), ImportOptions{
		Placement: &PlacementSpec{Profile: "VGG16", MinGPUsPerMachine: 2, MaxMachines: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range tr.Apps {
		if spec.Placement == nil || spec.Placement.Profile != "VGG16" {
			t.Fatalf("app %d missing stamped placement block: %+v", i, spec)
		}
	}
	// Blocks must not alias each other.
	tr.Apps[0].Placement.MaxMachines = 9
	if tr.Apps[1].Placement.MaxMachines == 9 {
		t.Fatal("stamped placement blocks alias one another")
	}
	tr.Apps[0].Placement.MaxMachines = 1
	apps, err := tr.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if j := apps[0].Jobs[0]; j.MinGPUsPerMachine != 2 || j.MaxMachines != 1 {
		t.Errorf("stamped constraints did not reach the jobs: %+v", j)
	}
	if apps[0].Profile.Name != "VGG16" {
		t.Errorf("stamped profile did not apply: %q", apps[0].Profile.Name)
	}
	for i := range tr.Apps {
		tr.Apps[i].Placement = nil
	}
	stripped, err := tr.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if j := stripped[0].Jobs[0]; j.MinGPUsPerMachine != 0 || j.MaxMachines != 0 {
		t.Errorf("stripped trace still constrained: %+v", j)
	}
}

func TestV2DomainFlavorAffinity(t *testing.T) {
	src := `{
	  "version": 2,
	  "apps": [
	    {
	      "id": "a",
	      "submit_time": 0,
	      "model": "ResNet50",
	      "placement": {"domain": "pod-a", "flavor": "V100"},
	      "jobs": [{"total_work": 10, "gang_size": 2}]
	    },
	    {
	      "id": "b",
	      "submit_time": 1,
	      "model": "ResNet50",
	      "jobs": [{"total_work": 10, "gang_size": 2}]
	    }
	  ]
	}`
	tr, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	apps, err := tr.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if j := apps[0].Jobs[0]; j.DomainAffinity != "pod-a" || j.FlavorAffinity != "V100" {
		t.Errorf("app a affinities %q/%q, want pod-a/V100", j.DomainAffinity, j.FlavorAffinity)
	}
	if j := apps[1].Jobs[0]; j.DomainAffinity != "" || j.FlavorAffinity != "" {
		t.Errorf("app b should be unconstrained, got %q/%q", j.DomainAffinity, j.FlavorAffinity)
	}

	// Affinities round-trip through FromApps.
	rt := FromApps("rt", apps)
	if p := rt.Apps[0].Placement; p == nil || p.Domain != "pod-a" || p.Flavor != "V100" {
		t.Errorf("FromApps placement = %+v", rt.Apps[0].Placement)
	}
	if rt.Apps[1].Placement != nil {
		t.Errorf("unconstrained app grew a placement block: %+v", rt.Apps[1].Placement)
	}
	var buf bytes.Buffer
	if err := rt.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Apps[0].Placement, rt.Apps[0].Placement) {
		t.Errorf("write/read round-trip changed placement: %+v vs %+v", back.Apps[0].Placement, rt.Apps[0].Placement)
	}

	// A v1 trace must not carry affinities (the whole block is v2-gated).
	v1 := `{"version":1,"apps":[{"id":"a","placement":{"domain":"pod-a"},"jobs":[{"total_work":1,"gang_size":1}]}]}`
	if _, err := Read(strings.NewReader(v1)); err == nil {
		t.Error("v1 trace with a domain affinity should be rejected")
	}
}
