package trace

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"themis/internal/workload"
)

// updateGolden regenerates the cross-version golden files:
//
//	go test ./internal/trace/ -run TestV1CrossVersionGolden -update-golden
//
// Only run it on a build whose ToApps output is known-good; the checked-in
// files pin the pre-v2-bump materialisation of every v1 trace.
var updateGolden = flag.Bool("update-golden", false, "rewrite the v1 cross-version golden files")

// dumpApps renders materialised apps in a stable, full-precision text form —
// every field ToApps is allowed to set — so the golden comparison is
// byte-exact.
func dumpApps(apps []*workload.App) string {
	var b strings.Builder
	for _, a := range apps {
		fmt.Fprintf(&b, "app %s submit=%v profile=%s network=%t\n", a.ID, a.SubmitTime, a.Profile.Name, a.Profile.NetworkIntensive)
		for _, j := range a.Jobs {
			fmt.Fprintf(&b, "  job %s work=%v gang=%d maxpar=%d mingpm=%d maxmach=%d iters=%d quality=%v seed=%d\n",
				j.ID, j.TotalWork, j.GangSize, j.MaxParallelism, j.MinGPUsPerMachine, j.MaxMachines, j.TotalIterations, j.Quality, j.Seed)
		}
	}
	return b.String()
}

// Every checked-in v1 trace must materialise byte-identically to its
// pre-version-bump ToApps output (the golden file), and its decoded form
// must re-encode as valid v2 accepted by Read.
func TestV1CrossVersionGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "v1", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no v1 golden traces found under testdata/v1")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Contains(raw, []byte(`"version": 1`)) {
				t.Fatalf("%s does not declare format version 1; the corpus must stay v1", path)
			}
			tr, err := Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("v1 trace no longer decodes: %v", err)
			}
			if tr.Version != FormatVersion {
				t.Errorf("Read left version %d, want lossless upgrade to %d", tr.Version, FormatVersion)
			}

			apps, err := tr.ToApps()
			if err != nil {
				t.Fatalf("v1 trace no longer materialises: %v", err)
			}
			got := dumpApps(apps)
			goldenPath := strings.TrimSuffix(path, ".json") + ".apps.golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("v1 trace materialises differently than before the v2 bump\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			// Write must emit valid v2 accepted by Read, losslessly.
			var buf bytes.Buffer
			if err := tr.Write(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("upgraded trace does not re-read as v2: %v", err)
			}
			if !reflect.DeepEqual(tr, back) {
				t.Fatalf("v1→v2 round trip changed the trace:\nfirst:  %+v\nsecond: %+v", tr, back)
			}
			apps2, err := back.ToApps()
			if err != nil {
				t.Fatal(err)
			}
			if dumpApps(apps2) != got {
				t.Error("materialisation differs after the v2 round trip")
			}
		})
	}
}
