package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// failingReader yields its payload and then fails with err instead of EOF —
// the shape of a network stream or pipe dying mid-transfer.
type failingReader struct {
	data []byte
	err  error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.err
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

// Regression: Import used to drop the Peek error during format sniffing, so
// a reader failing mid-sniff surfaced as a bogus "cannot detect trace
// format" misdetection instead of the I/O error.
func TestImportSurfacesSniffError(t *testing.T) {
	ioErr := errors.New("connection reset mid-transfer")
	cases := []struct {
		name string
		r    io.Reader
	}{
		{"fails immediately", &failingReader{err: ioErr}},
		{"fails after partial header", &failingReader{data: []byte("jobid,sub"), err: ioErr}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Import(c.r, FormatAuto, ImportOptions{})
			if !errors.Is(err, ioErr) {
				t.Fatalf("Import error = %v, want the underlying I/O error %v", err, ioErr)
			}
			if strings.Contains(fmt.Sprint(err), "cannot detect") {
				t.Fatalf("I/O failure misreported as format misdetection: %v", err)
			}
		})
	}
	// A short-but-healthy input (EOF inside the sniff window) must still
	// import: EOF is how every small file looks to Peek.
	tr, err := Import(strings.NewReader(phillyCSV), FormatAuto, ImportOptions{})
	if err != nil || len(tr.Apps) == 0 {
		t.Fatalf("short valid input failed auto import: %v", err)
	}
}

func TestImportOptionsValidate(t *testing.T) {
	cases := []struct {
		name   string
		opts   ImportOptions
		option string // expected OptionError.Option; "" means valid
	}{
		{"zero value", ImportOptions{}, ""},
		{"conventional scale", ImportOptions{TimeScale: 2.5, MaxApps: 10}, ""},
		{"negative TimeScale", ImportOptions{TimeScale: -1}, "TimeScale"},
		{"NaN TimeScale", ImportOptions{TimeScale: math.NaN()}, "TimeScale"},
		{"+Inf TimeScale", ImportOptions{TimeScale: math.Inf(1)}, "TimeScale"},
		{"-Inf TimeScale", ImportOptions{TimeScale: math.Inf(-1)}, "TimeScale"},
		{"negative MaxApps", ImportOptions{MaxApps: -5}, "MaxApps"},
		{"negative ProgressEvery", ImportOptions{ProgressEvery: -1}, "ProgressEvery"},
		{"negative placement constraint", ImportOptions{Placement: &PlacementSpec{MinGPUsPerMachine: -1}}, "Placement"},
		{"unknown placement profile", ImportOptions{Placement: &PlacementSpec{Profile: "NoSuchNet"}}, "Placement"},
		{"valid placement", ImportOptions{Placement: &PlacementSpec{Profile: "VGG16", MaxMachines: 1}}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate()
			if c.option == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var optErr *OptionError
			if !errors.As(err, &optErr) {
				t.Fatalf("Validate() = %v (%T), want OptionError", err, err)
			}
			if optErr.Option != c.option {
				t.Fatalf("OptionError.Option = %q, want %q", optErr.Option, c.option)
			}
			// Every import entry point must apply the same gate before
			// touching the stream.
			if _, err := Import(strings.NewReader(phillyCSV), FormatAuto, c.opts); !errors.As(err, &optErr) {
				t.Errorf("Import did not reject: %v", err)
			}
			if _, err := ImportPhilly(strings.NewReader(phillyCSV), c.opts); !errors.As(err, &optErr) {
				t.Errorf("ImportPhilly did not reject: %v", err)
			}
			if _, err := ImportAlibaba(strings.NewReader(alibabaCSV), c.opts); !errors.As(err, &optErr) {
				t.Errorf("ImportAlibaba did not reject: %v", err)
			}
		})
	}
}

// The importer contract must hold uniformly on native JSON input too: Name,
// Model and Placement stamp the decoded apps, MaxApps keeps the earliest by
// submit time without rebasing, and the Progress callback gets its final
// Done snapshot. (Regression: these options used to be silently ignored on
// the JSON branch.)
func TestImportJSONHonoursOptions(t *testing.T) {
	src := `{"version":2,"name":"orig","apps":[
		{"id":"late","submit_time":50,"model":"ResNet50","jobs":[{"total_work":10,"gang_size":1}]},
		{"id":"early","submit_time":10,"model":"ResNet50","jobs":[{"total_work":10,"gang_size":1}]},
		{"id":"mid","submit_time":20,"model":"ResNet50","jobs":[{"total_work":10,"gang_size":1}]}]}`
	var snaps []ImportProgress
	tr, err := Import(strings.NewReader(src), FormatAuto, ImportOptions{
		Name:      "renamed",
		Model:     "VGG16",
		MaxApps:   2,
		Placement: &PlacementSpec{MaxMachines: 1},
		Progress:  func(p ImportProgress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "renamed" {
		t.Errorf("Name not applied: %q", tr.Name)
	}
	if len(tr.Apps) != 2 || tr.Apps[0].ID != "early" || tr.Apps[1].ID != "mid" {
		t.Fatalf("MaxApps kept %+v, want the 2 earliest (early, mid)", tr.Apps)
	}
	// Native traces own their time base: no rebase to t = 0.
	if tr.Apps[0].SubmitTime != 10 || tr.Apps[1].SubmitTime != 20 {
		t.Errorf("JSON import rebased submit times: %+v", tr.Apps)
	}
	for i, spec := range tr.Apps {
		if spec.Model != "VGG16" {
			t.Errorf("app %d model not stamped: %q", i, spec.Model)
		}
		if spec.Placement == nil || spec.Placement.MaxMachines != 1 {
			t.Errorf("app %d placement not stamped: %+v", i, spec.Placement)
		}
	}
	if len(snaps) != 1 || !snaps[0].Done || snaps[0].Kept != 2 || snaps[0].Bytes == 0 {
		t.Errorf("progress snapshots: %+v, want one final Done with Kept=2 and bytes counted", snaps)
	}
	// With no options set the decode is untouched.
	plain, err := Import(strings.NewReader(src), FormatJSON, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Name != "orig" || len(plain.Apps) != 3 || plain.Apps[0].ID != "late" {
		t.Errorf("optionless JSON import altered the trace: %+v", plain)
	}
}

// syntheticPhilly emits a deterministic Philly-style CSV of n rows with
// shuffled submit times, so top-K selection has real work to do.
func syntheticPhilly(n int) string {
	var b strings.Builder
	b.WriteString("jobid,submit_time,gpus,duration,status\n")
	for i := 0; i < n; i++ {
		// A coprime stride walks every residue: submit order != row order.
		submit := (i * 7919) % n
		fmt.Fprintf(&b, "j-%04d,%d,%d,%d,Pass\n", i, submit, 1+i%4, 30+i%60)
	}
	return b.String()
}

// The online top-K selection must keep exactly the apps the old
// materialise-then-sort pass kept: the K earliest by (submit time, ID).
func TestTopKMatchesFullSort(t *testing.T) {
	const n = 500
	csv := syntheticPhilly(n)
	full, err := ImportPhilly(strings.NewReader(csv), ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 7, 100, n, n + 50} {
		capped, err := ImportPhilly(strings.NewReader(csv), ImportOptions{MaxApps: k})
		if err != nil {
			t.Fatalf("MaxApps=%d: %v", k, err)
		}
		want := full.Apps
		if k < len(want) {
			want = want[:k]
		}
		if !reflect.DeepEqual(capped.Apps, want) {
			t.Fatalf("MaxApps=%d selection diverged from sort-then-truncate\ngot:  %+v\nwant: %+v",
				k, capped.Apps[:min(3, len(capped.Apps))], want[:min(3, len(want))])
		}
	}
}

func TestImportProgress(t *testing.T) {
	var snaps []ImportProgress
	tr, err := ImportPhilly(strings.NewReader(syntheticPhilly(10)), ImportOptions{
		MaxApps:       4,
		ProgressEvery: 3,
		Progress:      func(p ImportProgress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Apps) != 4 {
		t.Fatalf("imported %d apps, want 4", len(tr.Apps))
	}
	// 10 rows at interval 3 → snapshots at rows 3, 6, 9 plus the Done one.
	if len(snaps) != 4 {
		t.Fatalf("got %d progress snapshots, want 4: %+v", len(snaps), snaps)
	}
	for i, p := range snaps {
		if p.Format != FormatPhilly {
			t.Errorf("snapshot %d format %q", i, p.Format)
		}
		if p.Kept > 4 {
			t.Errorf("snapshot %d retains %d apps despite MaxApps=4", i, p.Kept)
		}
		if i > 0 && (p.Rows < snaps[i-1].Rows || p.Bytes < snaps[i-1].Bytes) {
			t.Errorf("snapshot %d went backwards: %+v -> %+v", i, snaps[i-1], p)
		}
	}
	last := snaps[len(snaps)-1]
	if !last.Done || last.Rows != 10 || last.Bytes == 0 {
		t.Errorf("final snapshot %+v, want Done with 10 rows and non-zero bytes", last)
	}
	for _, p := range snaps[:len(snaps)-1] {
		if p.Done {
			t.Errorf("non-final snapshot marked Done: %+v", p)
		}
	}

	// The grouping adapter reports progress too.
	snaps = nil
	if _, err := ImportAlibaba(strings.NewReader(alibabaCSV), ImportOptions{
		ProgressEvery: 1,
		Progress:      func(p ImportProgress) { snaps = append(snaps, p) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 || !snaps[len(snaps)-1].Done {
		t.Fatalf("alibaba progress snapshots: %+v", snaps)
	}
}
