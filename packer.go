package themis

import (
	"fmt"
	"sort"
	"sync"

	"themis/internal/pack"
	"themis/internal/topology"
)

// PackerPackToEmpty is the built-in deterministic pack-to-empty placement
// engine: it re-materialises every grant next to the app's held GPUs, then
// onto the best-fit fabric domain, spilling across domains by free capacity.
const PackerPackToEmpty = "pack-to-empty"

// PackerFactory builds a Packer for the topology a simulation runs on.
type PackerFactory func(topo *Topology) Packer

type packerEntry struct {
	description string
	factory     PackerFactory
}

var (
	packerMu       sync.RWMutex
	packerRegistry = map[string]packerEntry{}
)

// RegisterPacker adds a named placement engine, making it available to
// WithPacker and cmd/themis-sim's -packer flag. Registering a name twice is
// an error.
func RegisterPacker(name, description string, factory PackerFactory) error {
	if name == "" || factory == nil {
		return fmt.Errorf("themis: packer registration needs a name and a factory")
	}
	packerMu.Lock()
	defer packerMu.Unlock()
	if _, dup := packerRegistry[name]; dup {
		return fmt.Errorf("themis: packer %q already registered", name)
	}
	packerRegistry[name] = packerEntry{description: description, factory: factory}
	return nil
}

// Packers lists the registered packer names, sorted.
func Packers() []string {
	packerMu.RLock()
	defer packerMu.RUnlock()
	names := make([]string, 0, len(packerRegistry))
	for name := range packerRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DescribePacker returns a registered packer's one-line description.
func DescribePacker(name string) (string, error) {
	packerMu.RLock()
	defer packerMu.RUnlock()
	entry, ok := packerRegistry[name]
	if !ok {
		return "", fmt.Errorf("themis: unknown packer %q (registered: %v)", name, Packers())
	}
	return entry.description, nil
}

// buildPacker constructs a registered packer for a concrete topology.
func buildPacker(name string, topo *Topology) (Packer, error) {
	packerMu.RLock()
	entry, ok := packerRegistry[name]
	packerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("themis: unknown packer %q (registered: %v)", name, Packers())
	}
	return entry.factory(topo), nil
}

// WithPacker routes every grant the policy makes through a registered
// placement engine (see Packers): the policy still decides how many GPUs
// each app gets, the packer decides which GPUs. The paper's policies place
// greedily on their own; PackerPackToEmpty instead packs gangs machine- and
// domain-local, which shows up in Report.Fragmentation and the apps'
// placement scores.
func WithPacker(name string) Option {
	return func(s *settings) error {
		if name == "" {
			s.packerName = ""
			return nil
		}
		if _, err := DescribePacker(name); err != nil {
			return err
		}
		s.packerName = name
		return nil
	}
}

func init() {
	if err := RegisterPacker(PackerPackToEmpty,
		"deterministic pack-to-empty: anchor to held GPUs, best-fit domain, spill by free capacity",
		func(topo *Topology) Packer { return pack.New(topology.Lift(topo)) },
	); err != nil {
		panic(err)
	}
}
