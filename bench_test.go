package themis

// The benchmarks in this file regenerate the paper's evaluation: one
// benchmark per figure (the benchmark's reported custom metrics are the
// figure's headline numbers), plus the §8.3.2 overhead microbenchmarks and
// ablations of the design decisions called out in DESIGN.md.
//
// Figures are run at the Quick() experiment scale so the full suite
// completes in minutes; cmd/expdriver regenerates them at paper-fidelity
// scale. Absolute numbers differ from the paper (the substrate is a
// simulator, not the authors' Azure testbed) but the qualitative shapes —
// who wins, by roughly what factor, where trends bend — are preserved and
// recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/experiments"
	"themis/internal/hyperparam"
	"themis/internal/metrics"
	"themis/internal/placement"
	"themis/internal/schedulers"
	"themis/internal/sim"
	"themis/internal/solver"
	"themis/internal/workload"
)

func benchOpts() experiments.Options { return experiments.Quick() }

// BenchmarkFigure1TaskDurationCDF regenerates Figure 1 (trace task-duration
// distribution).
func BenchmarkFigure1TaskDurationCDF(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		median = res.Stats.TaskDurationP50
	}
	b.ReportMetric(median, "task-p50-min")
}

// BenchmarkFigure2PlacementThroughput regenerates Figure 2 (placement
// sensitivity of model throughput).
func BenchmarkFigure2PlacementThroughput(b *testing.B) {
	var vggSlowdown, resnetSlowdown float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Figure2() {
			switch r.Model {
			case "VGG16":
				vggSlowdown = r.Slowdown
			case "ResNet50":
				resnetSlowdown = r.Slowdown
			}
		}
	}
	b.ReportMetric(vggSlowdown, "vgg16-2x2-slowdown")
	b.ReportMetric(resnetSlowdown, "resnet50-2x2-slowdown")
}

// BenchmarkFigure4aFairnessKnob regenerates Figure 4a (fairness vs f).
func BenchmarkFigure4aFairnessKnob(b *testing.B) {
	var atLow, atHigh float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		atLow, atHigh = rows[0].MaxFairness, rows[len(rows)-1].MaxFairness
	}
	b.ReportMetric(atLow, "max-rho-f0")
	b.ReportMetric(atHigh, "max-rho-f1")
}

// BenchmarkFigure4bGPUTimeVsKnob regenerates Figure 4b (GPU time vs f).
func BenchmarkFigure4bGPUTimeVsKnob(b *testing.B) {
	var atLow, atHigh float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		atLow, atHigh = rows[0].GPUTime, rows[len(rows)-1].GPUTime
	}
	b.ReportMetric(atLow, "gpu-min-f0")
	b.ReportMetric(atHigh, "gpu-min-f1")
}

// BenchmarkFigure4cLeaseTime regenerates Figure 4c (fairness vs lease length).
func BenchmarkFigure4cLeaseTime(b *testing.B) {
	var shortLease, longLease float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4c(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		shortLease, longLease = rows[0].MaxFairness, rows[len(rows)-1].MaxFairness
	}
	b.ReportMetric(shortLease, "max-rho-lease5")
	b.ReportMetric(longLease, "max-rho-lease40")
}

// benchComparison runs the §8.3 four-scheme comparison once per iteration
// and hands each iteration's result to report.
func benchComparison(b *testing.B, report func(*experiments.Comparison)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunComparison(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		report(cmp)
	}
}

// BenchmarkFigure5aMaxFairness regenerates Figure 5a (max finish-time
// fairness across schemes).
func BenchmarkFigure5aMaxFairness(b *testing.B) {
	vals := map[string]float64{}
	benchComparison(b, func(cmp *experiments.Comparison) {
		for _, r := range cmp.Figure5a() {
			vals[r.Scheme] = r.MaxFairness
		}
	})
	for scheme, v := range vals {
		b.ReportMetric(v, "max-rho-"+scheme)
	}
}

// BenchmarkFigure5bJainsIndex regenerates Figure 5b (Jain's index across
// schemes).
func BenchmarkFigure5bJainsIndex(b *testing.B) {
	vals := map[string]float64{}
	benchComparison(b, func(cmp *experiments.Comparison) {
		for _, r := range cmp.Figure5b() {
			vals[r.Scheme] = r.JainsIndex
		}
	})
	for scheme, v := range vals {
		b.ReportMetric(v, "jains-"+scheme)
	}
}

// BenchmarkFigure6AppCompletionCDF regenerates Figure 6 (app completion time
// CDFs) and reports Themis's mean-JCT improvements.
func BenchmarkFigure6AppCompletionCDF(b *testing.B) {
	impr := map[string]float64{}
	benchComparison(b, func(cmp *experiments.Comparison) {
		cmp.Figure6(20)
		impr = cmp.MeanJCTImprovement()
	})
	for scheme, pct := range impr {
		b.ReportMetric(pct, "jct-improvement-pct-vs-"+scheme)
	}
}

// BenchmarkFigure7PlacementScoreCDF regenerates Figure 7 (placement score
// CDFs) and reports each scheme's mean placement score.
func BenchmarkFigure7PlacementScoreCDF(b *testing.B) {
	vals := map[string]float64{}
	benchComparison(b, func(cmp *experiments.Comparison) {
		cmp.Figure7(20)
		for scheme, res := range cmp.Results {
			vals[scheme] = metrics.Mean(metrics.PlacementScores(res))
		}
	})
	for scheme, v := range vals {
		b.ReportMetric(v, "placement-"+scheme)
	}
}

// BenchmarkFigure8AllocationTimeline regenerates Figure 8 (short vs long app
// allocation timeline).
func BenchmarkFigure8AllocationTimeline(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		events = len(res.Short) + len(res.Long)
	}
	b.ReportMetric(float64(events), "timeline-events")
}

// BenchmarkFigure9aPlacementSensitivityFairness regenerates Figure 9a
// (factor of improvement over Tiresias vs % network-intensive apps).
func BenchmarkFigure9aPlacementSensitivityFairness(b *testing.B) {
	var at0, at100 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		at0, at100 = rows[0].FactorOfImprovement, rows[len(rows)-1].FactorOfImprovement
	}
	b.ReportMetric(at0, "improvement-0pct-network")
	b.ReportMetric(at100, "improvement-100pct-network")
}

// BenchmarkFigure9bPlacementSensitivityGPUTime regenerates Figure 9b (GPU
// time vs % network-intensive apps).
func BenchmarkFigure9bPlacementSensitivityGPUTime(b *testing.B) {
	var themisAt100, tiresiasAt100 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		themisAt100, tiresiasAt100 = last.GPUTime["themis"], last.GPUTime["tiresias"]
	}
	b.ReportMetric(themisAt100, "gpu-min-themis-100pct")
	b.ReportMetric(tiresiasAt100, "gpu-min-tiresias-100pct")
}

// BenchmarkFigure10Contention regenerates Figure 10 (Jain's index vs
// contention).
func BenchmarkFigure10Contention(b *testing.B) {
	var themis4x, tiresias4x float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		themis4x, tiresias4x = last.ThemisJains, last.TiresiasJains
	}
	b.ReportMetric(themis4x, "jains-themis-4x")
	b.ReportMetric(tiresias4x, "jains-tiresias-4x")
}

// BenchmarkFigure11BidError regenerates Figure 11 (robustness to bid
// valuation error).
func BenchmarkFigure11BidError(b *testing.B) {
	var at0, at20 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		at0, at20 = rows[0].MaxFairness, rows[len(rows)-1].MaxFairness
	}
	b.ReportMetric(at0, "max-rho-0pct-error")
	b.ReportMetric(at20, "max-rho-20pct-error")
}

// --- §8.3.2 overhead microbenchmarks -------------------------------------

// overheadFixture builds a loaded agent and offer of the given size for the
// bid-preparation and auction overhead benchmarks.
func overheadFixture(machines, jobs int) (*cluster.Topology, *core.Agent, cluster.Alloc) {
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: machines, GPUs: 4, SlotSize: 2}},
		MachinesPerRack: 16,
	}.Build()
	if err != nil {
		panic(err)
	}
	var trials []*workload.Job
	for i := 0; i < jobs; i++ {
		j := workload.NewJob("bench-app", i, 400, 4)
		j.Quality = float64(i) / float64(jobs)
		j.Seed = int64(i)
		trials = append(trials, j)
	}
	app := workload.NewApp("bench-app", 0, placement.VGG16, trials)
	agent := core.NewAgent(topo, app, hyperparam.ForApp(app), nil)
	offer := cluster.NewAlloc()
	for m := 0; m < machines; m++ {
		offer[cluster.MachineID(m)] = 4
	}
	return topo, agent, offer
}

// BenchmarkAgentBidPreparation measures the Agent-side bid computation the
// paper reports at 29 ms median / 334 ms p95 (§8.3.2).
func BenchmarkAgentBidPreparation(b *testing.B) {
	for _, size := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("machines-%d", size), func(b *testing.B) {
			_, agent, offer := overheadFixture(size, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bid := agent.PrepareBid(10, offer, cluster.NewAlloc())
				if len(bid.Entries) == 0 {
					b.Fatal("empty bid")
				}
			}
		})
	}
}

// BenchmarkArbiterPartialAllocation measures the Arbiter-side partial
// allocation the paper reports at 354 ms median / 1398 ms p95 (§8.3.2).
func BenchmarkArbiterPartialAllocation(b *testing.B) {
	for _, bidders := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("bidders-%d", bidders), func(b *testing.B) {
			topo, _, offer := overheadFixture(32, 4)
			var bids []core.BidTable
			for k := 0; k < bidders; k++ {
				_, agent, _ := overheadFixture(32, 8)
				bid := agent.PrepareBid(10, offer, cluster.NewAlloc())
				bid.App = workload.AppID(fmt.Sprintf("app-%d", k))
				bids = append(bids, bid)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunPartialAllocation(topo, offer, bids, core.AuctionOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationNoHiddenPayments compares max fairness with and without
// the truth-telling hidden payments (DESIGN.md decision 3).
func BenchmarkAblationNoHiddenPayments(b *testing.B) {
	opts := benchOpts()
	topo := cluster.TestbedCluster()
	run := func(disable bool, seed int64) float64 {
		cfg := core.DefaultConfig()
		cfg.Auction.DisableHiddenPayments = disable
		apps := benchWorkload(b, opts, seed, 0.4)
		policy, err := schedulers.NewThemis(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := runBenchSim(topo, apps, policy, opts)
		if err != nil {
			b.Fatal(err)
		}
		return metrics.MaxFairness(res)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(false, opts.Seed)
		without = run(true, opts.Seed)
	}
	b.ReportMetric(with, "max-rho-with-payments")
	b.ReportMetric(without, "max-rho-without-payments")
}

// BenchmarkAblationValuationModes compares placement-aware and
// placement-blind bid valuations (DESIGN.md decision 1).
func BenchmarkAblationValuationModes(b *testing.B) {
	opts := benchOpts()
	topo := cluster.TestbedCluster()
	run := func(blind bool) (float64, float64) {
		apps := benchWorkload(b, opts, opts.Seed, 0.6)
		policy, err := schedulers.NewThemis(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		policy.PlacementBlind = blind
		res, err := runBenchSim(topo, apps, policy, opts)
		if err != nil {
			b.Fatal(err)
		}
		return metrics.GPUTime(res), metrics.Mean(metrics.PlacementScores(res))
	}
	var awareGPU, blindGPU, awareScore, blindScore float64
	for i := 0; i < b.N; i++ {
		awareGPU, awareScore = run(false)
		blindGPU, blindScore = run(true)
	}
	b.ReportMetric(awareGPU, "gpu-min-placement-aware")
	b.ReportMetric(blindGPU, "gpu-min-placement-blind")
	b.ReportMetric(awareScore, "score-placement-aware")
	b.ReportMetric(blindScore, "score-placement-blind")
}

// BenchmarkSolverExactVsGreedy quantifies the winner-determination quality
// gap between the exact branch-and-bound and the local-search heuristic
// (DESIGN.md decision 4).
func BenchmarkSolverExactVsGreedy(b *testing.B) {
	topo, _, offer := overheadFixture(8, 4)
	var bids []core.BidTable
	for k := 0; k < 5; k++ {
		_, agent, _ := overheadFixture(8, 6)
		bid := agent.PrepareBid(10, offer, cluster.NewAlloc())
		bid.App = workload.AppID(fmt.Sprintf("app-%d", k))
		bids = append(bids, bid)
	}
	_ = topo
	var exactObj, greedyObj float64
	for i := 0; i < b.N; i++ {
		exact, err := core.RunPartialAllocation(topo, offer, bids, core.AuctionOptions{})
		if err != nil {
			b.Fatal(err)
		}
		greedy, err := core.RunPartialAllocation(topo, offer, bids, core.AuctionOptions{
			Solver: solver.Options{ExactLimit: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		exactObj, greedyObj = exact.Objective, greedy.Objective
	}
	b.ReportMetric(exactObj, "log-objective-exact")
	b.ReportMetric(greedyObj, "log-objective-greedy")
}

// runBenchSim mirrors experiments.Options.runSim for the ablation benchmarks
// (which need custom workloads outside the figure constructors).
func runBenchSim(topo *cluster.Topology, apps []*workload.App, policy sim.Policy, opts experiments.Options) (*sim.Result, error) {
	s, err := sim.New(sim.Config{
		Topology:        topo,
		Apps:            apps,
		Policy:          policy,
		LeaseDuration:   opts.LeaseDuration,
		RestartOverhead: opts.RestartOverhead,
		Horizon:         opts.Horizon,
	})
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background())
}

// benchWorkload builds a testbed-scale workload for the ablation benchmarks.
func benchWorkload(b *testing.B, opts experiments.Options, seed int64, networkFraction float64) []*workload.App {
	b.Helper()
	cfg := workload.DefaultGeneratorConfig()
	cfg.Seed = seed
	cfg.NumApps = opts.TestbedApps
	cfg.MeanInterArrival = opts.MeanInterArrival
	cfg.FractionNetworkIntensive = networkFraction
	cfg.JobsPerAppMedian = opts.JobsPerAppMedian
	cfg.MaxJobsPerApp = opts.MaxJobsPerApp
	cfg.DurationScale = opts.TestbedDurationScale
	apps, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return apps
}
